# Attack-soak smoke: the forged-flood plan (hostile MAC floods + a
# flash crowd on top of a link flap) must (1) emit a schema-valid
# survivability JSON whose attack section carries every field the A/B
# dashboards key on, (2) be byte-identical across two separate same-seed
# processes (attack generation replays from the seed like every other
# chaos event), and (3) prove the defenses earn their keep: with the
# in-path LightningFilters, router admission classes, and SCMP
# suppression enabled, legitimate-traffic delivery must STRICTLY beat
# the same run with --no-defenses, and no hostile packet may reach a
# socket.
#
# Expected variables: BIN (sciera_chaos binary), OUT_DIR (scratch dir).
if(NOT DEFINED BIN OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "BIN and OUT_DIR must be defined")
endif()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(on_first "${OUT_DIR}/defended1.json")
set(on_second "${OUT_DIR}/defended2.json")
set(off "${OUT_DIR}/undefended.json")

foreach(out IN ITEMS "${on_first}" "${on_second}")
  execute_process(
    COMMAND "${BIN}" forged-flood --seed 7 --self-healing
            --duration-ms 8000 --out "${out}"
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "sciera_chaos forged-flood failed: ${status}")
  endif()
endforeach()
execute_process(
  COMMAND "${BIN}" forged-flood --seed 7 --self-healing
          --duration-ms 8000 --no-defenses --out "${off}"
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "sciera_chaos forged-flood --no-defenses failed: ${status}")
endif()

# Schema: the attack section and its A/B fields must be present.
file(READ "${on_first}" report)
foreach(field
        "\"schema\": \"sciera.chaos.soak.v1\""
        "\"plan\": \"forged-flood\""
        "\"attack\""
        "\"attack_plan\": true"
        "\"defenses\": true"
        "\"legit_ratio\""
        "\"filter_verdicts\""
        "\"host_drops\""
        "\"router_admission_drops\""
        "\"scmp_suppressed\""
        "\"reconverge_under_flood_ms\"")
  string(FIND "${report}" "${field}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "attack soak JSON is missing ${field}:\n${report}")
  endif()
endforeach()

# Replayability: two separate same-seed processes, byte-identical.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${on_first}" "${on_second}"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "attack soak reports differ between two same-seed runs "
          "(${on_first} vs ${on_second})")
endif()

# Defenses on: the filter must shut out every hostile packet.
string(REGEX MATCH "\"attack_delivered\": ([0-9]+)" _ "${report}")
if(NOT CMAKE_MATCH_1 EQUAL 0)
  message(FATAL_ERROR
          "defended run delivered ${CMAKE_MATCH_1} hostile packets:\n${report}")
endif()
string(REGEX MATCH "\"attack_sent\": ([0-9]+)" _ "${report}")
if(NOT CMAKE_MATCH_1 OR CMAKE_MATCH_1 EQUAL 0)
  message(FATAL_ERROR "attack plan sent no hostile traffic:\n${report}")
endif()

# The A/B ordering gate: defended legitimate delivery strictly beats
# undefended under the identical flood.
string(REGEX MATCH "\"legit_ratio\": ([0-9.]+)" _ "${report}")
set(ratio_on "${CMAKE_MATCH_1}")
file(READ "${off}" off_report)
string(REGEX MATCH "\"legit_ratio\": ([0-9.]+)" _ "${off_report}")
set(ratio_off "${CMAKE_MATCH_1}")
if(NOT ratio_on GREATER ratio_off)
  message(FATAL_ERROR
          "defenses-on legit delivery (${ratio_on}) does not strictly beat "
          "defenses-off (${ratio_off})")
endif()

# Undefended, the flood must actually have hurt: hostile deliveries and
# host-queue overload both nonzero, so the gate above is meaningful.
string(REGEX MATCH "\"attack_delivered\": ([0-9]+)" _ "${off_report}")
if(NOT CMAKE_MATCH_1 OR CMAKE_MATCH_1 EQUAL 0)
  message(FATAL_ERROR
          "undefended run delivered no hostile packets — flood is a no-op:"
          "\n${off_report}")
endif()
