# Runs sciera_metrics_dump twice in separate processes and requires the
# dumps to be byte-identical — the observability layer's determinism
# contract (ISSUE: same seed => identical exported snapshot). Separate
# processes matter: instance-label allocation is per-process, so an
# in-process rerun would shift "#N" suffixes instead of testing replay.
#
# Expected variables: BIN (dump binary), OUT_DIR (scratch dir),
# SCENARIO (scenario name).
if(NOT DEFINED BIN OR NOT DEFINED OUT_DIR OR NOT DEFINED SCENARIO)
  message(FATAL_ERROR "BIN, OUT_DIR and SCENARIO must be defined")
endif()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(first "${OUT_DIR}/${SCENARIO}-run1.txt")
set(second "${OUT_DIR}/${SCENARIO}-run2.txt")

foreach(out IN ITEMS "${first}" "${second}")
  execute_process(
    COMMAND "${BIN}" "${SCENARIO}" --both
    OUTPUT_FILE "${out}"
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "sciera_metrics_dump ${SCENARIO} failed: ${status}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${first}" "${second}"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "sciera_metrics_dump '${SCENARIO}' output differs between two "
          "same-seed runs (${first} vs ${second})")
endif()
