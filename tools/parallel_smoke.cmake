# bench.parallel_smoke: runs the sharded parallel benchmark in --quick
# --parallel-only mode and validates the parallel-scaling contract:
#   - the harness exits 0 (the merged ScheduleDigest is identical at every
#     thread count and the workload delivered traffic),
#   - the JSON carries the parallel_scaling section with the schema
#     marker, shard geometry, host_cores, the serial baseline, and one
#     curve entry per thread count,
#   - digest_parity is reported true,
#   - a second independent process reproduces the exact event counts and
#     schedule hashes (wall-clock throughput may differ; the schedule must
#     not — cross-process byte-identity of every deterministic field).
# Invoked by ctest with -DBIN=<sciera_bench> -DOUT_DIR=<scratch dir>.
file(MAKE_DIRECTORY ${OUT_DIR})

foreach(run IN ITEMS 1 2)
  execute_process(
    COMMAND ${BIN} --quick --parallel-only --shards 8
            --out ${OUT_DIR}/parallel_run${run}.json
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE stdout_${run}
    ERROR_VARIABLE stderr_${run})
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "sciera_bench --parallel-only run ${run} failed (rc=${rc}):\n"
            "${stdout_${run}}\n${stderr_${run}}")
  endif()
endforeach()

file(READ ${OUT_DIR}/parallel_run1.json json1)
file(READ ${OUT_DIR}/parallel_run2.json json2)

# Schema validation: the marker and every field the scaling tooling reads.
foreach(field
    "\"schema\": \"sciera.bench.simcore.v2\""
    "\"parallel_scaling\""
    "\"shards\": 8"
    "\"policy\": \"per-as\""
    "\"host_cores\""
    "\"serial\""
    "\"curve\""
    "\"threads\": 1"
    "\"threads\": 2"
    "\"threads\": 4"
    "\"threads\": 8"
    "\"events_per_sec\""
    "\"speedup\""
    "\"executed_events\""
    "\"schedule_hash\""
    "\"digest_parity\": true")
  string(FIND "${json1}" "${field}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
            "parallel_scaling section missing field ${field}:\n${json1}")
  endif()
endforeach()

# Thread parity inside one process: every curve entry must report the
# same schedule hash (digest_parity above asserts it too; this check
# keeps the gate honest if the flag's computation ever drifts).
string(REGEX MATCHALL "\"threads\": [0-9]+, [^}]*\"schedule_hash\": \"[0-9a-f]+\""
       curve_entries "${json1}")
list(LENGTH curve_entries entry_count)
if(NOT entry_count EQUAL 4)
  message(FATAL_ERROR "expected 4 curve entries, found ${entry_count}:\n${json1}")
endif()
set(common_hash "")
foreach(entry IN LISTS curve_entries)
  string(REGEX MATCH "\"schedule_hash\": \"[0-9a-f]+\"" hash_kv "${entry}")
  if("${common_hash}" STREQUAL "")
    set(common_hash "${hash_kv}")
  elseif(NOT "${common_hash}" STREQUAL "${hash_kv}")
    message(FATAL_ERROR "curve entries disagree on schedule hash:\n${json1}")
  endif()
endforeach()

# Determinism: event counts and schedule hashes must be identical across
# two separate processes. Strip the timing-dependent fields and compare.
foreach(run IN ITEMS 1 2)
  string(REGEX MATCHALL "\"(executed_events|schedule_hash)\": \"?[0-9a-f]+\"?"
         stable_${run} "${json${run}}")
endforeach()
if(NOT "${stable_1}" STREQUAL "${stable_2}")
  message(FATAL_ERROR "nondeterministic parallel runs across processes:\n"
                      "run1: ${stable_1}\nrun2: ${stable_2}")
endif()
if("${stable_1}" STREQUAL "")
  message(FATAL_ERROR "no executed_events fields found:\n${json1}")
endif()
