// sciera_chaos: soak the full SCIERA topology under a named fault plan
// and emit a survivability report as JSON (delivery ratio, delivery-gap
// distribution, the daemons' lookup error budget, and the executed
// ScheduleDigest). Output is fully determined by (plan, seed, duration,
// resilience flag): two same-seed runs are byte-identical, and the
// chaos.soak_smoke ctest enforces that across processes.
//
// Usage: sciera_chaos <plan> [--seed N] [--duration-ms N]
//                            [--no-resilience] [--out FILE]
//        sciera_chaos --list
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chaos/soak.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: sciera_chaos <plan> [--seed N] [--duration-ms N] "
               "[--no-resilience] [--out FILE]\n"
               "       sciera_chaos --list\n");
  return 2;
}

int list_plans() {
  for (const std::string& name : sciera::chaos::plan_names()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "--list") == 0) return list_plans();

  const std::string plan_name = argv[1];
  sciera::chaos::SoakOptions options;
  const char* out_path = nullptr;
  for (int i = 2; i < argc; ++i) {
    const auto has_value = [&](const char* flag) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "sciera_chaos: %s needs a value\n", flag);
        std::exit(2);
      }
      return true;
    };
    if (has_value("--seed")) {
      options.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (has_value("--duration-ms")) {
      options.duration =
          std::strtoll(argv[++i], nullptr, 0) * sciera::kMillisecond;
    } else if (std::strcmp(argv[i], "--no-resilience") == 0) {
      options.resilience = false;
    } else if (has_value("--out")) {
      out_path = argv[++i];
    } else {
      return usage();
    }
  }

  auto plan = sciera::chaos::plan_by_name(plan_name);
  if (!plan.ok()) {
    std::fprintf(stderr, "sciera_chaos: %s (try --list)\n",
                 plan.error().message.c_str());
    return 2;
  }
  auto report = sciera::chaos::run_soak(*plan, options);
  if (!report.ok()) {
    std::fprintf(stderr, "sciera_chaos: soak failed: %s\n",
                 report.error().message.c_str());
    return 1;
  }
  const std::string json = report->to_json();
  if (out_path != nullptr) {
    std::FILE* file = std::fopen(out_path, "w");
    if (file == nullptr) {
      std::fprintf(stderr, "sciera_chaos: cannot open %s\n", out_path);
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
  } else {
    std::fwrite(json.data(), 1, json.size(), stdout);
  }
  return 0;
}
