// sciera_chaos: soak the full SCIERA topology under a named fault plan
// and emit a survivability report as JSON (delivery ratio, delivery-gap
// distribution, the daemons' lookup error budget, the self-healing
// reconvergence section, and the executed ScheduleDigest). Output is
// fully determined by (plan, seed, duration, resilience/self-healing
// flags): two same-seed runs are byte-identical, and the chaos.soak_smoke
// and chaos.reconverge_smoke ctests enforce that across processes.
//
// Exit codes: 0 success, 1 soak or report-schema failure, 2 usage error
// (including an unknown plan name or a degenerate scheduler geometry).
//
// Usage: sciera_chaos <plan> [--seed N] [--duration-ms N]
//                            [--no-resilience] [--self-healing]
//                            [--scalar-router] [--shards N] [--threads N]
//                            [--attack-plan NAME] [--no-defenses]
//                            [--out FILE]
//        sciera_chaos --list-plans
//        sciera_chaos --thread-smoke
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "chaos/soak.h"
#include "cli.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace {

constexpr const char* kUsage =
    "usage: sciera_chaos <plan> [--seed N] [--duration-ms N] "
    "[--no-resilience] [--self-healing] [--scalar-router] "
    "[--shards N] [--threads N] [--attack-plan NAME] [--no-defenses] "
    "[--out FILE]\n"
    "       sciera_chaos --list-plans\n"
    "       sciera_chaos --thread-smoke";

int list_plans() {
  for (const std::string& name : sciera::chaos::plan_names()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

// Hammers the genuinely thread-safe observability surfaces from
// concurrent threads: MetricsRegistry series registration /
// instance_label and the FlightRecorder ring (record, snapshot, size are
// all mutex-protected). Counter cells themselves are single-writer by
// design — each worker increments only its own series, and the verifying
// registry snapshot happens after the join. Run under
// SCIERA_SANITIZE=thread this checks the sciera::Mutex discipline the
// thread-safety annotations promise.
int thread_smoke() {
  using sciera::obs::FlightRecorder;
  using sciera::obs::Labels;
  using sciera::obs::MetricsRegistry;
  using sciera::obs::TraceType;

  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kIterations = 2000;
  constexpr std::size_t kRecorderCapacity = 512;

  MetricsRegistry registry;
  FlightRecorder recorder(kRecorderCapacity);

  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&registry, &recorder, w] {
      const std::string worker = "w" + std::to_string(w);
      for (std::size_t i = 0; i < kIterations; ++i) {
        // Registration path: same key re-resolved every iteration, plus a
        // rotating slot label so fresh series keep being created while
        // other threads snapshot the recorder.
        auto& total = registry.counter(
            "sciera_smoke_total", Labels{{"worker", worker}});
        total.inc();
        auto& slot = registry.counter(
            "sciera_smoke_slot_total",
            Labels{{"worker", worker},
                   {"slot", std::to_string(i % 8)}});
        slot.inc();
        (void)registry.instance_label("smoke", "smoke-" + worker);
        recorder.record(TraceType::kProbeBurst, static_cast<sciera::SimTime>(i),
                        i, worker, "thread-smoke");
        if (i % 64 == 0) {
          (void)recorder.snapshot();
          (void)recorder.size();
          (void)registry.series();
        }
      }
    });
  }
  for (auto& t : workers) t.join();

  // Single-threaded verification: every increment and record must have
  // landed exactly once.
  std::uint64_t total = 0;
  std::uint64_t slot_total = 0;
  for (const auto& sample : registry.snapshot()) {
    if (sample.name == "sciera_smoke_total") total += sample.counter_value;
    if (sample.name == "sciera_smoke_slot_total") {
      slot_total += sample.counter_value;
    }
  }
  const std::uint64_t expected = kWorkers * kIterations;
  bool ok = total == expected && slot_total == expected;
  if (recorder.recorded() != expected) ok = false;
  if (recorder.size() != kRecorderCapacity) ok = false;
  if (recorder.overwritten() != expected - kRecorderCapacity) ok = false;
  std::printf(
      "thread smoke: workers=%zu iterations=%zu counted=%llu/%llu "
      "recorded=%llu retained=%zu %s\n",
      kWorkers, kIterations, static_cast<unsigned long long>(total),
      static_cast<unsigned long long>(expected),
      static_cast<unsigned long long>(recorder.recorded()), recorder.size(),
      ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  sciera::cli::FlagSet flags("sciera_chaos", kUsage);
  if (argc < 2) return flags.usage();
  // --list is the original spelling; --list-plans the documented one.
  if (std::strcmp(argv[1], "--list") == 0 ||
      std::strcmp(argv[1], "--list-plans") == 0) {
    return list_plans();
  }
  if (std::strcmp(argv[1], "--thread-smoke") == 0) {
    return thread_smoke();
  }

  const std::string plan_name = argv[1];
  sciera::chaos::SoakOptions options;
  std::int64_t duration_ms = options.duration / sciera::kMillisecond;
  bool no_resilience = false;
  std::string out_path;
  std::string attack_plan_name;
  flags.flag("--seed", &options.seed);
  flags.flag("--duration-ms", &duration_ms);
  flags.flag("--no-resilience", &no_resilience);
  flags.flag("--self-healing", &options.self_healing);
  // Layer a named attack plan's events on top of the base plan (so every
  // legacy incident can be rerun with hostile traffic on top).
  flags.flag("--attack-plan", &attack_plan_name);
  // Defenses A/B: drop the in-path filters / router overload control
  // while keeping the offered traffic identical.
  flags.flag("--no-defenses", [&options] { options.defenses = false; });
  // Fast-path A/B: scalar frame-by-frame border routers. The report must
  // be byte-identical to the batched default.
  flags.flag("--scalar-router",
             [&options] { options.batched_router = false; });
  // Sharded parallel core: partition the topology into N shards and run
  // them on up to N worker threads. The report must be byte-identical to
  // the single-shard default — the soak parity smoke gates on it.
  flags.flag("--shards", &options.scheduler.shards);
  flags.flag("--threads", &options.scheduler.threads);
  flags.flag("--out", &out_path);
  if (!flags.parse(argc, argv, 2)) return 2;
  if (!flags.positionals().empty()) return flags.usage();
  options.duration = duration_ms * sciera::kMillisecond;
  options.resilience = !no_resilience;
  if (auto valid = sciera::simnet::validate_scheduler_config(options.scheduler);
      !valid.ok()) {
    std::fprintf(stderr, "sciera_chaos: %s\n",
                 valid.error().message.c_str());
    return 2;
  }

  auto plan = sciera::chaos::plan_by_name(plan_name);
  if (!plan.ok()) {
    std::fprintf(stderr, "sciera_chaos: %s (try --list-plans)\n",
                 plan.error().message.c_str());
    return 2;
  }
  if (!attack_plan_name.empty()) {
    auto attack_plan = sciera::chaos::plan_by_name(attack_plan_name);
    if (!attack_plan.ok()) {
      std::fprintf(stderr, "sciera_chaos: %s (try --list-plans)\n",
                   attack_plan.error().message.c_str());
      return 2;
    }
    for (const auto& event : attack_plan->events) plan->add(event);
    plan->name += "+" + attack_plan->name;
  }
  auto report = sciera::chaos::run_soak(*plan, options);
  if (!report.ok()) {
    std::fprintf(stderr, "sciera_chaos: soak failed: %s\n",
                 report.error().message.c_str());
    return 1;
  }
  const std::string json = report->to_json();
  // Schema self-check: a report that lost a required section must fail
  // the run, not ship a silently truncated artifact.
  if (!sciera::chaos::validate_report_json(json)) {
    std::fprintf(stderr,
                 "sciera_chaos: report failed sciera.chaos.soak.v1 schema "
                 "self-check\n");
    return 1;
  }
  if (!out_path.empty()) {
    std::FILE* file = std::fopen(out_path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "sciera_chaos: cannot open %s\n",
                   out_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
  } else {
    std::fwrite(json.data(), 1, json.size(), stdout);
  }
  return 0;
}
