// Unified NOLINT suppression grammar shared by sciera_lint and
// sciera_analyze. One syntax covers every rule of both tools:
//
//   // NOLINT(rule-name)             suppress `rule-name` on this line
//   // NOLINT(rule-a, rule-b)        suppress several rules
//   // NOLINT(sciera-rule-name)      legacy spelling, same meaning
//   // NOLINTNEXTLINE(rule-name)     suppress on the following line
//   // NOLINT                        legacy bare form: suppresses every
//                                    rule on the line, but is itself
//                                    reported as a `legacy-nolint` warning
//                                    — name the rule you are silencing.
//
// Rule names match with or without the `sciera-` prefix, so existing
// `NOLINT(sciera-deprecated-api)` markers keep working against the rule
// registered as `deprecated-api` (and vice versa).
#pragma once

#include <cctype>
#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sciera::lintutil {

struct NolintSpec {
  bool present = false;   // any NOLINT marker on the line
  bool bare = false;      // legacy bare NOLINT (no rule list)
  bool nextline = false;  // marker was NOLINTNEXTLINE
  std::vector<std::string> rules;
};

inline bool nolint_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '-' || c == '*';
}

// Parses every NOLINT / NOLINTNEXTLINE marker in `text` (typically one
// raw source line). Multiple markers merge: rules accumulate, and the
// bare flag is set if any marker lacks a rule list.
inline std::vector<NolintSpec> parse_nolint(std::string_view text) {
  std::vector<NolintSpec> specs;
  std::size_t pos = 0;
  while ((pos = text.find("NOLINT", pos)) != std::string_view::npos) {
    // Reject identifiers that merely contain NOLINT (e.g. kNolintFoo).
    if (pos > 0 && (std::isalnum(static_cast<unsigned char>(text[pos - 1])) ||
                    text[pos - 1] == '_')) {
      pos += 6;
      continue;
    }
    NolintSpec spec;
    spec.present = true;
    std::size_t end = pos + 6;
    if (text.substr(end).starts_with("NEXTLINE")) {
      spec.nextline = true;
      end += 8;
    }
    if (end < text.size() && text[end] == '(') {
      const std::size_t close = text.find(')', end);
      if (close != std::string_view::npos) {
        std::string rule;
        for (std::size_t i = end + 1; i <= close; ++i) {
          const char c = i < close ? text[i] : ',';
          if (c == ',' || c == ')') {
            if (!rule.empty()) spec.rules.push_back(rule);
            rule.clear();
          } else if (nolint_ident_char(c)) {
            rule.push_back(c);
          }
        }
        end = close + 1;
      } else {
        spec.bare = true;  // malformed list: treat as bare
      }
    } else {
      spec.bare = true;
    }
    if (spec.rules.empty() && !spec.bare) spec.bare = true;
    specs.push_back(std::move(spec));
    pos = end;
  }
  return specs;
}

// True when `entry` (a name from a NOLINT rule list) addresses `rule`.
inline bool nolint_entry_matches(std::string_view entry,
                                 std::string_view rule) {
  if (entry == "*" || entry == rule) return true;
  constexpr std::string_view kPrefix = "sciera-";
  if (entry.starts_with(kPrefix) && entry.substr(kPrefix.size()) == rule) {
    return true;
  }
  if (rule.starts_with(kPrefix) && rule.substr(kPrefix.size()) == entry) {
    return true;
  }
  return false;
}

// Per-file suppression index: feed it each line's raw text, then ask
// whether a (line, rule) finding is suppressed.
class SuppressionIndex {
 public:
  void add_line(std::size_t line, std::string_view raw_text) {
    for (auto& spec : parse_nolint(raw_text)) {
      const std::size_t target = spec.nextline ? line + 1 : line;
      if (spec.bare) bare_lines_.push_back(target);
      for (auto& rule : spec.rules) {
        rule_lines_.emplace_back(target, std::move(rule));
      }
      if (spec.bare) legacy_lines_.push_back(line);
    }
  }

  [[nodiscard]] bool suppressed(std::size_t line,
                                std::string_view rule) const {
    for (const std::size_t l : bare_lines_) {
      if (l == line) return true;
    }
    for (const auto& [l, entry] : rule_lines_) {
      if (l == line && nolint_entry_matches(entry, rule)) return true;
    }
    return false;
  }

  // Lines carrying a legacy bare NOLINT (reported as `legacy-nolint`).
  [[nodiscard]] const std::vector<std::size_t>& legacy_lines() const {
    return legacy_lines_;
  }

 private:
  std::vector<std::size_t> bare_lines_;
  std::vector<std::pair<std::size_t, std::string>> rule_lines_;
  std::vector<std::size_t> legacy_lines_;
};

}  // namespace sciera::lintutil
