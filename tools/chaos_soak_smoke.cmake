# Runs sciera_chaos twice in separate processes under the same plan and
# seed and requires (1) a schema-valid survivability JSON with the fields
# downstream dashboards key on, and (2) byte-identical reports — the
# chaos engine's replayability contract. Separate processes matter:
# in-process reruns would share registry instance labels instead of
# proving replay from the seed.
#
# Expected variables: BIN (sciera_chaos binary), OUT_DIR (scratch dir).
if(NOT DEFINED BIN OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "BIN and OUT_DIR must be defined")
endif()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(first "${OUT_DIR}/run1.json")
set(second "${OUT_DIR}/run2.json")

foreach(out IN ITEMS "${first}" "${second}")
  execute_process(
    COMMAND "${BIN}" kreonet-ring-cut --seed 7 --duration-ms 4000
            --out "${out}"
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "sciera_chaos kreonet-ring-cut failed: ${status}")
  endif()
endforeach()

file(READ "${first}" report)
foreach(field
        "\"schema\": \"sciera.chaos.soak.v1\""
        "\"plan\": \"kreonet-ring-cut\""
        "\"delivery\""
        "\"ratio\""
        "\"delivery_gaps_ms\""
        "\"lookup_error_budget\""
        "\"faults_injected\""
        "\"schedule_hash\"")
  string(FIND "${report}" "${field}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "survivability JSON is missing ${field}:\n${report}")
  endif()
endforeach()

# The smoke plan must actually have injected faults.
string(REGEX MATCH "\"faults_injected\": ([0-9]+)" _ "${report}")
if(NOT CMAKE_MATCH_1 OR CMAKE_MATCH_1 EQUAL 0)
  message(FATAL_ERROR "soak run injected no faults:\n${report}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${first}" "${second}"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "sciera_chaos reports differ between two same-seed runs "
          "(${first} vs ${second})")
endif()
