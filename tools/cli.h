// Shared command-line flag parsing for the sciera_* tools. Each tool used
// to hand-roll its own argv loop with slightly different conventions
// (some exited mid-parse, some returned, value-taking flags duplicated
// their bounds checks); this helper gives them one typed registry with a
// uniform contract:
//
//   - "--name value" flags bind to std::string / unsigned / signed
//     integers (integers accept 0x-prefixed hex, full-token validated);
//   - bare "--name" flags bind to bool (set true) or run a callback (for
//     tri-state modes like --text/--json/--both);
//   - anything unrecognized, a flag missing its value, or a malformed
//     number prints the tool's usage text to stderr and makes parse()
//     return false — callers exit 2, the uniform usage-error status.
//
// Header-only on purpose: tools link the libraries they benchmark, not a
// tools-support library.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace sciera::cli {

class FlagSet {
 public:
  // `usage` is the full multi-line usage text, printed verbatim (plus a
  // trailing newline) on any parse error and by usage().
  FlagSet(std::string program, std::string usage)
      : program_(std::move(program)), usage_(std::move(usage)) {}

  // Bare switch: presence sets *out to true.
  void flag(const char* name, bool* out) { specs_.emplace_back(name, out); }
  // Bare switch with a side effect (mode selectors, e.g. --json).
  void flag(const char* name, std::function<void()> on_set) {
    specs_.emplace_back(name, Callback{std::move(on_set)});
  }
  // Value-taking flags: "--name value".
  void flag(const char* name, std::string* out) {
    specs_.emplace_back(name, out);
  }
  void flag(const char* name, std::uint64_t* out) {
    specs_.emplace_back(name, out);
  }
  void flag(const char* name, std::int64_t* out) {
    specs_.emplace_back(name, out);
  }

  // Parses argv[first..argc); returns false (after printing usage) on any
  // unknown flag, missing value, or malformed number. Arguments that do
  // not start with '-' are collected as positionals.
  [[nodiscard]] bool parse(int argc, char** argv, int first = 1) {
    for (int i = first; i < argc; ++i) {
      const char* arg = argv[i];
      if (arg[0] != '-') {
        positionals_.emplace_back(arg);
        continue;
      }
      Spec* spec = find(arg);
      if (spec == nullptr) {
        return error("unknown flag '%s'", arg);
      }
      if (std::holds_alternative<bool*>(spec->target)) {
        *std::get<bool*>(spec->target) = true;
        continue;
      }
      if (std::holds_alternative<Callback>(spec->target)) {
        std::get<Callback>(spec->target).fn();
        continue;
      }
      if (i + 1 >= argc) {
        return error("%s needs a value", arg);
      }
      const char* value = argv[++i];
      if (auto** out = std::get_if<std::string*>(&spec->target)) {
        **out = value;
        continue;
      }
      if (!parse_number(*spec, value)) {
        return error("%s: '%s' is not a valid number", arg, value);
      }
    }
    return true;
  }

  // Prints the usage text to stderr and returns 2, so tools can write
  // `return flags.usage();` at their bail-out points.
  [[nodiscard]] int usage() const {
    std::fprintf(stderr, "%s\n", usage_.c_str());
    return 2;
  }

  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }

 private:
  struct Callback {
    std::function<void()> fn;
  };
  struct Spec {
    template <typename Target>
    Spec(const char* name, Target target) : name(name), target(target) {}
    std::string name;
    std::variant<bool*, Callback, std::string*, std::uint64_t*, std::int64_t*>
        target;
  };

  Spec* find(const char* arg) {
    for (Spec& spec : specs_) {
      if (spec.name == arg) return &spec;
    }
    return nullptr;
  }

  bool parse_number(Spec& spec, const char* value) {
    char* end = nullptr;
    if (auto** out = std::get_if<std::uint64_t*>(&spec.target)) {
      const std::uint64_t parsed = std::strtoull(value, &end, 0);
      if (end == value || *end != '\0') return false;
      **out = parsed;
      return true;
    }
    if (auto** out = std::get_if<std::int64_t*>(&spec.target)) {
      const std::int64_t parsed = std::strtoll(value, &end, 0);
      if (end == value || *end != '\0') return false;
      **out = parsed;
      return true;
    }
    return false;
  }

  template <typename... Args>
  bool error(const char* format, Args... args) {
    std::string line = program_ + ": ";
    line += format;
    line += "\n";
    std::fprintf(stderr, line.c_str(), args...);
    std::fprintf(stderr, "%s\n", usage_.c_str());
    return false;
  }

  std::string program_;
  std::string usage_;
  std::vector<Spec> specs_;
  std::vector<std::string> positionals_;
};

}  // namespace sciera::cli
