// Minimal C++ lexer for the in-repo static analysis tools. Produces a
// token stream (identifiers, numbers, string/char literals, punctuation)
// with line numbers, plus per-line comment text (for NOLINT markers) and
// the file's #include directives. Comment-, string-, raw-string- and
// digit-separator-aware, so rules never fire on documentation or literal
// contents. Not a full C++ front end — no preprocessing, no semantic
// analysis — but exact enough for token-pattern rules over a codebase
// that compiles.
#pragma once

#include <cctype>
#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace sciera::lintutil {

struct Token {
  enum class Kind { kIdent, kNumber, kString, kChar, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;
  std::size_t line = 0;
};

struct IncludeDirective {
  std::size_t line = 0;
  std::string path;
  bool quoted = false;  // "path" vs <path>
};

struct LexedFile {
  std::vector<Token> tokens;
  // Raw comment text per line (both // and /* */; a block comment
  // spanning lines contributes to each line it covers).
  std::map<std::size_t, std::string> comments;
  std::vector<IncludeDirective> includes;
  std::size_t line_count = 0;
};

namespace lexer_detail {

inline bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
inline bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Multi-character punctuators the analysis rules care about; maximal
// munch over this list, single characters otherwise.
inline constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "+=",  "-=",  "*=", "/=", "%=", "&=", "|=", "^=",
    "&&",  "||",  "++",  "--",
};

}  // namespace lexer_detail

inline LexedFile lex(std::string_view src) {
  using lexer_detail::ident_char;
  using lexer_detail::ident_start;
  LexedFile out;
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto comment_append = [&](std::size_t at, char c) {
    out.comments[at].push_back(c);
  };

  // Pre-pass per physical line for #include directives (they never span
  // lines in this codebase; continuations are not needed).
  {
    std::size_t ln = 1;
    std::size_t start = 0;
    while (start <= n) {
      std::size_t end = src.find('\n', start);
      if (end == std::string_view::npos) end = n;
      std::string_view text = src.substr(start, end - start);
      std::size_t p = 0;
      while (p < text.size() &&
             std::isspace(static_cast<unsigned char>(text[p])) != 0) {
        ++p;
      }
      if (p < text.size() && text[p] == '#') {
        ++p;
        while (p < text.size() &&
               std::isspace(static_cast<unsigned char>(text[p])) != 0) {
          ++p;
        }
        if (text.substr(p).starts_with("include")) {
          p += 7;
          while (p < text.size() && text[p] != '"' && text[p] != '<') ++p;
          if (p < text.size()) {
            const bool quoted = text[p] == '"';
            const char close = quoted ? '"' : '>';
            const std::size_t stop = text.find(close, p + 1);
            if (stop != std::string_view::npos) {
              out.includes.push_back(IncludeDirective{
                  ln, std::string{text.substr(p + 1, stop - p - 1)}, quoted});
            }
          }
        }
      }
      ln++;
      if (end == n) break;
      start = end + 1;
    }
  }

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') comment_append(line, src[i++]);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      comment_append(line, ' ');
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') {
          ++line;
        } else {
          comment_append(line, src[i]);
        }
        ++i;
      }
      i = i + 2 <= n ? i + 2 : n;
      continue;
    }
    // Identifier (possibly a raw-string prefix).
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      std::string_view word = src.substr(i, j - i);
      // Raw string literal: R"delim( ... )delim" with optional encoding
      // prefix, glued directly to the opening quote.
      if (j < n && src[j] == '"' &&
          (word == "R" || word == "u8R" || word == "uR" || word == "UR" ||
           word == "LR")) {
        std::size_t k = j + 1;
        std::string delim;
        while (k < n && src[k] != '(' && src[k] != '\n') delim.push_back(src[k++]);
        const std::string closer = ")" + delim + "\"";
        const std::size_t close = src.find(closer, k);
        const std::size_t stop =
            close == std::string_view::npos ? n : close + closer.size();
        const std::size_t start_line = line;
        for (std::size_t p = i; p < stop; ++p) {
          if (src[p] == '\n') ++line;
        }
        out.tokens.push_back({Token::Kind::kString,
                              std::string{src.substr(i, stop - i)},
                              start_line});
        i = stop;
        continue;
      }
      // Ordinary string with encoding prefix (u8"x", L"x", ...) is handled
      // below when the quote is reached; emit the prefix as an identifier
      // only if it is a real identifier (prefixes are consumed with the
      // string for cleanliness).
      if (j < n && src[j] == '"' &&
          (word == "u8" || word == "u" || word == "U" || word == "L")) {
        i = j;  // fall through to string scanning; prefix dropped
        continue;
      }
      out.tokens.push_back({Token::Kind::kIdent, std::string{word}, line});
      i = j;
      continue;
    }
    // Number (with C++14 digit separators and suffixes).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])) != 0)) {
      std::size_t j = i;
      while (j < n && (ident_char(src[j]) || src[j] == '.' ||
                       (src[j] == '\'' && j + 1 < n && ident_char(src[j + 1])) ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                         src[j - 1] == 'p' || src[j - 1] == 'P')))) {
        ++j;
      }
      out.tokens.push_back(
          {Token::Kind::kNumber, std::string{src.substr(i, j - i)}, line});
      i = j;
      continue;
    }
    // String literal.
    if (c == '"') {
      std::size_t j = i + 1;
      while (j < n && src[j] != '"' && src[j] != '\n') {
        if (src[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      j = j < n ? j + 1 : n;
      out.tokens.push_back(
          {Token::Kind::kString, std::string{src.substr(i, j - i)}, line});
      i = j;
      continue;
    }
    // Character literal.
    if (c == '\'') {
      std::size_t j = i + 1;
      while (j < n && src[j] != '\'' && src[j] != '\n') {
        if (src[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      j = j < n ? j + 1 : n;
      out.tokens.push_back(
          {Token::Kind::kChar, std::string{src.substr(i, j - i)}, line});
      i = j;
      continue;
    }
    // Punctuation, maximal munch.
    bool matched = false;
    for (const std::string_view p : lexer_detail::kPuncts) {
      if (src.substr(i).starts_with(p)) {
        out.tokens.push_back({Token::Kind::kPunct, std::string{p}, line});
        i += p.size();
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.tokens.push_back({Token::Kind::kPunct, std::string(1, c), line});
      ++i;
    }
  }
  out.line_count = line;
  return out;
}

}  // namespace sciera::lintutil
