// sciera_analyze: multi-pass determinism & concurrency static analyzer.
//
// Where sciera_lint enforces per-line style conventions with text
// matching, sciera_analyze runs on a real token stream (tools/cpp_lexer.h)
// with a per-file symbol table of container declarations, so it can
// reason about *what* is being iterated, not just what a line looks
// like. Three rule families guard the project's determinism contract
// (ROADMAP: the parallel simulation core needs a statically-enforced
// floor before shards can interleave):
//
// determinism hazards
//   unordered-iteration   (error) iterating a std::unordered_map/set —
//                         range-for, explicit .begin()/.cbegin(), or
//                         std::erase_if over a hash container. Iteration
//                         order depends on hashing/libstdc++ internals,
//                         so anything digest-visible must use an ordered
//                         container or a sorted view. Membership lookups
//                         (find/count/contains/operator[]) are fine and
//                         never flagged. A pure-predicate erase_if is
//                         set-like and may be suppressed with
//                         justification.
//   pointer-key-container (error) a map/set keyed by a pointer type:
//                         even std::map iterates in address order, which
//                         varies run to run.
//   float-accumulation    (warn) `+=`/`-=` on a float/double variable in
//                         digest-visible directories (src/simnet,
//                         src/dataplane, src/controlplane, src/chaos) —
//                         accumulation order changes the result once the
//                         parallel core reorders work. Integers (Duration)
//                         are associative; use them, or suppress with a
//                         justification that the value never reaches a
//                         digest.
//   unseeded-rng          (error) std::mt19937 & friends or
//                         std::random_device outside src/common/rng.* —
//                         all randomness flows from sciera::Rng so every
//                         run replays from an explicit seed.
//
// hot-path hygiene
//   percall-keyschedule   (error) constructing crypto::AesCmac or
//                         crypto::Aes128 inside src/dataplane/ or
//                         src/endhost/ — each construction reruns the
//                         AES key expansion and CMAC subkey derivation,
//                         which is exactly the per-packet cost the
//                         cached per-key contexts (dataplane::HopVerifier,
//                         hopfield's context cache, LightningFilter's
//                         per-source contexts) exist to avoid. A
//                         construction that is provably once-per-key
//                         (cache fill, rollover) is suppressible with
//                         justification.
//
// concurrency readiness
//   std-mutex-member      (error) naming std::mutex / std::lock_guard /
//                         std::scoped_lock / std::unique_lock (or
//                         including <mutex>) outside
//                         src/common/thread_annotations.h. Those types
//                         are invisible to Clang thread-safety analysis
//                         under libstdc++; use sciera::Mutex +
//                         sciera::MutexLock, which carry the capability
//                         annotations.
//
// layering
//   simnet-layering       (error) src/simnet may include only common/,
//                         obs/ and simnet/ project headers. The event
//                         core must not know about the layers above it.
//
// suppression hygiene
//   legacy-nolint         (warn) a bare `// NOLINT` (no rule list). It
//                         still suppresses everything on its line, but
//                         name the rule: `// NOLINT(rule-name)`.
//
// Suppressions use the unified grammar of tools/nolint.h:
// NOLINT(rule), NOLINT(rule-a, rule-b), NOLINTNEXTLINE(rule), with
// `sciera-` prefixes accepted. Symbols are resolved per file; a foo.cc
// also sees the container members declared in its companion foo.h.
//
// Usage: sciera_analyze [--json] [--werror] <repo_root> [subdir ...]
//        (default subdirs: src)
// Exit: 0 clean (warnings allowed unless --werror), 1 findings, 2 usage.
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "cpp_lexer.h"
#include "nolint.h"

namespace fs = std::filesystem;
using sciera::lintutil::LexedFile;
using sciera::lintutil::SuppressionIndex;
using sciera::lintutil::Token;

namespace {

enum class Severity { kError, kWarning };

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  Severity severity = Severity::kError;
  std::string message;
};

// ---------------------------------------------------------------------------
// Symbol table: container-typed declarations visible in one file.

struct SymbolTable {
  std::set<std::string> unordered_vars;     // variables of hash-container type
  std::set<std::string> unordered_aliases;  // using-aliases to such types
  std::set<std::string> float_vars;         // variables declared float/double
};

bool is_unordered_container(std::string_view name) {
  return name == "unordered_map" || name == "unordered_set" ||
         name == "unordered_multimap" || name == "unordered_multiset";
}

bool is_assoc_container(std::string_view name) {
  return is_unordered_container(name) || name == "map" || name == "set" ||
         name == "multimap" || name == "multiset";
}

struct TokenCursor {
  const std::vector<Token>& toks;
  [[nodiscard]] bool ident(std::size_t i, std::string_view text) const {
    return i < toks.size() && toks[i].kind == Token::Kind::kIdent &&
           toks[i].text == text;
  }
  [[nodiscard]] bool punct(std::size_t i, std::string_view text) const {
    return i < toks.size() && toks[i].kind == Token::Kind::kPunct &&
           toks[i].text == text;
  }
  [[nodiscard]] bool any_ident(std::size_t i) const {
    return i < toks.size() && toks[i].kind == Token::Kind::kIdent;
  }
};

// Walks the template argument list starting at the `<` token; returns the
// index one past the matching `>`, or npos. `first_arg` receives the
// tokens of the first top-level argument.
std::size_t skip_template_args(const std::vector<Token>& toks,
                               std::size_t open, std::vector<Token>* first_arg) {
  int depth = 0;
  bool in_first = true;
  for (std::size_t i = open; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == Token::Kind::kPunct) {
      if (t.text == "<") {
        ++depth;
        if (depth == 1) continue;  // don't record the opening bracket
      } else if (t.text == ">") {
        --depth;
        if (depth == 0) return i + 1;
        if (depth < 0) return std::string::npos;
      } else if (t.text == ">>") {
        depth -= 2;
        if (depth <= 0) return i + 1;
      } else if (t.text == "," && depth == 1) {
        in_first = false;
        continue;
      } else if (t.text == ";") {
        return std::string::npos;  // statement ended: not a template
      }
    }
    if (depth >= 1 && in_first && first_arg != nullptr) {
      first_arg->push_back(t);
    }
  }
  return std::string::npos;
}

bool first_arg_is_pointer(const std::vector<Token>& first_arg) {
  return !first_arg.empty() && first_arg.back().kind == Token::Kind::kPunct &&
         first_arg.back().text == "*";
}

// After a complete type (index of the token following the closing `>`),
// find the declared variable name, skipping cv/ref/ptr decorations.
// Returns npos if this type mention is not a declaration (e.g. a function
// parameter type in a call expression, a return type of `&` expression).
std::size_t declared_name_index(const TokenCursor& cur, std::size_t i) {
  while (i < cur.toks.size() &&
         (cur.punct(i, "&") || cur.punct(i, "*") || cur.ident(i, "const"))) {
    ++i;
  }
  if (!cur.any_ident(i)) return std::string::npos;
  // The next token decides whether this is a declaration: initializers,
  // terminators and separators qualify; `(` means a function call or
  // declaration of a function — skip those.
  const std::size_t after = i + 1;
  if (after >= cur.toks.size()) return i;
  const Token& t = cur.toks[after];
  if (t.kind == Token::Kind::kPunct &&
      (t.text == ";" || t.text == "=" || t.text == "{" || t.text == "," ||
       t.text == ")" || t.text == "[")) {
    return i;
  }
  return std::string::npos;
}

// Builds the symbol table and reports pointer-keyed containers (they are
// findings at the declaration site, not at iteration sites).
void scan_declarations(const LexedFile& lexed, SymbolTable& table,
                       const std::string& rel, bool in_scope_src,
                       std::vector<Finding>& findings) {
  const TokenCursor cur{lexed.tokens};
  const auto& toks = lexed.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    // using Alias = std::unordered_map<...>;
    if (cur.ident(i, "using") && cur.any_ident(i + 1) && cur.punct(i + 2, "=")) {
      const std::string alias = toks[i + 1].text;
      for (std::size_t j = i + 3;
           j < toks.size() && !cur.punct(j, ";"); ++j) {
        if (toks[j].kind == Token::Kind::kIdent &&
            is_assoc_container(toks[j].text) && cur.punct(j + 1, "<")) {
          std::vector<Token> first_arg;
          skip_template_args(toks, j + 1, &first_arg);
          if (is_unordered_container(toks[j].text)) {
            table.unordered_aliases.insert(alias);
          }
          if (in_scope_src && first_arg_is_pointer(first_arg)) {
            findings.push_back(
                {rel, toks[j].line, "pointer-key-container", Severity::kError,
                 "associative container keyed by a pointer — iteration order "
                 "is address order, which varies run to run; key by a stable "
                 "identifier instead"});
          }
          break;
        }
      }
      continue;
    }
    // std::unordered_map<...> name  /  std::map<...> name
    if (toks[i].kind == Token::Kind::kIdent &&
        is_assoc_container(toks[i].text) && cur.punct(i + 1, "<") && i >= 2 &&
        cur.ident(i - 2, "std") && cur.punct(i - 1, "::")) {
      std::vector<Token> first_arg;
      const std::size_t after = skip_template_args(toks, i + 1, &first_arg);
      if (after == std::string::npos) continue;
      if (in_scope_src && first_arg_is_pointer(first_arg)) {
        findings.push_back(
            {rel, toks[i].line, "pointer-key-container", Severity::kError,
             "associative container keyed by a pointer — iteration order is "
             "address order, which varies run to run; key by a stable "
             "identifier instead"});
      }
      if (is_unordered_container(toks[i].text)) {
        const std::size_t name = declared_name_index(cur, after);
        if (name != std::string::npos) {
          table.unordered_vars.insert(toks[name].text);
        }
      }
      continue;
    }
    // AliasOfUnordered name;  (declaration through a tracked alias)
    if (toks[i].kind == Token::Kind::kIdent &&
        table.unordered_aliases.count(toks[i].text) != 0) {
      const std::size_t name = declared_name_index(cur, i + 1);
      if (name != std::string::npos) {
        table.unordered_vars.insert(toks[name].text);
      }
      continue;
    }
    // double name / float name
    if ((cur.ident(i, "double") || cur.ident(i, "float"))) {
      const std::size_t name = declared_name_index(cur, i + 1);
      if (name != std::string::npos) {
        table.float_vars.insert(toks[name].text);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rules over the token stream.

struct RuleContext {
  const LexedFile& lexed;
  const SymbolTable& table;
  std::string rel;           // path relative to the scan root
  std::vector<Finding>* out;

  void add(std::size_t line, std::string rule, Severity sev,
           std::string message) const {
    out->push_back({rel, line, std::move(rule), sev, std::move(message)});
  }
};

// unordered-iteration: range-for over a hash container, explicit
// begin()/cbegin()/rbegin(), or std::erase_if on one.
void rule_unordered_iteration(const RuleContext& ctx) {
  const TokenCursor cur{ctx.lexed.tokens};
  const auto& toks = ctx.lexed.tokens;
  const auto known = [&](const Token& t) {
    return t.kind == Token::Kind::kIdent &&
           ctx.table.unordered_vars.count(t.text) != 0;
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    // Range-for: for ( decl : range-expr )
    if (cur.ident(i, "for") && cur.punct(i + 1, "(")) {
      int depth = 0;
      std::size_t colon = std::string::npos;
      std::size_t close = std::string::npos;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (toks[j].kind != Token::Kind::kPunct) continue;
        if (toks[j].text == "(") {
          ++depth;
        } else if (toks[j].text == ")") {
          --depth;
          if (depth == 0) {
            close = j;
            break;
          }
        } else if (depth == 1 && toks[j].text == ";") {
          break;  // classic three-clause for
        } else if (depth == 1 && toks[j].text == ":" &&
                   colon == std::string::npos) {
          colon = j;
        }
      }
      if (colon != std::string::npos && close != std::string::npos &&
          close > colon + 1) {
        // The range expression's *last* token decides: `m` or `obj.m_`
        // iterates the container itself; `m[key]` (ends in `]`) or
        // `sorted(m)` (ends in `)`) does not.
        const Token& last = toks[close - 1];
        if (known(last)) {
          ctx.add(last.line, "unordered-iteration", Severity::kError,
                  "range-for over hash container '" + last.text +
                      "' — iteration order is not deterministic; use an "
                      "ordered container or a sorted view");
        }
      }
    }
    // x.begin() / x.cbegin() / x.rbegin()
    if (known(toks[i]) && (cur.punct(i + 1, ".") || cur.punct(i + 1, "->")) &&
        i + 2 < toks.size() && toks[i + 2].kind == Token::Kind::kIdent &&
        (toks[i + 2].text == "begin" || toks[i + 2].text == "cbegin" ||
         toks[i + 2].text == "rbegin") &&
        cur.punct(i + 3, "(")) {
      ctx.add(toks[i].line, "unordered-iteration", Severity::kError,
              "iterator walk over hash container '" + toks[i].text +
                  "' — iteration order is not deterministic; use an ordered "
                  "container or a sorted view");
    }
    // std::erase_if(x, ...) — iterates internally; order-independent only
    // when the predicate is pure, hence suppressible with justification.
    if (cur.ident(i, "erase_if") && cur.punct(i + 1, "(") &&
        i + 2 < toks.size() && known(toks[i + 2]) &&
        (cur.punct(i + 3, ",") || cur.punct(i + 3, ")"))) {
      ctx.add(toks[i].line, "unordered-iteration", Severity::kError,
              "std::erase_if over hash container '" + toks[i + 2].text +
                  "' — set-like and safe only if the predicate is pure; "
                  "suppress with '// NOLINT(unordered-iteration)' plus a "
                  "justification, or use an ordered container");
    }
  }
}

void rule_float_accumulation(const RuleContext& ctx) {
  const auto& toks = ctx.lexed.tokens;
  const TokenCursor cur{toks};
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind == Token::Kind::kIdent &&
        ctx.table.float_vars.count(toks[i].text) != 0 &&
        (cur.punct(i + 1, "+=") || cur.punct(i + 1, "-="))) {
      ctx.add(toks[i].line, "float-accumulation", Severity::kWarning,
              "accumulation into floating-point '" + toks[i].text +
                  "' in a digest-visible path — the result depends on "
                  "summation order; accumulate in integers (Duration) or "
                  "suppress with a justification that the value never "
                  "reaches a digest");
    }
  }
}

void rule_unseeded_rng(const RuleContext& ctx) {
  static constexpr std::string_view kEngines[] = {
      "mt19937",    "mt19937_64",        "minstd_rand", "minstd_rand0",
      "ranlux24",   "ranlux48",          "knuth_b",     "default_random_engine",
      "random_device",
  };
  for (const Token& t : ctx.lexed.tokens) {
    if (t.kind != Token::Kind::kIdent) continue;
    for (const std::string_view engine : kEngines) {
      if (t.text == engine) {
        ctx.add(t.line, "unseeded-rng", Severity::kError,
                "std::" + t.text +
                    " outside src/common/rng.* — all randomness must flow "
                    "from sciera::Rng so runs replay from an explicit seed");
      }
    }
  }
}

void rule_std_mutex_member(const RuleContext& ctx) {
  static constexpr std::string_view kTypes[] = {
      "mutex",        "recursive_mutex", "timed_mutex", "shared_mutex",
      "lock_guard",   "scoped_lock",     "unique_lock", "shared_lock",
      "condition_variable",
  };
  const auto& toks = ctx.lexed.tokens;
  const TokenCursor cur{toks};
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!cur.ident(i, "std") || !cur.punct(i + 1, "::")) continue;
    for (const std::string_view type : kTypes) {
      if (toks[i + 2].kind == Token::Kind::kIdent && toks[i + 2].text == type) {
        ctx.add(toks[i].line, "std-mutex-member", Severity::kError,
                "std::" + toks[i + 2].text +
                    " is invisible to thread-safety analysis — use "
                    "sciera::Mutex / sciera::MutexLock "
                    "(src/common/thread_annotations.h)");
      }
    }
  }
  for (const auto& inc : ctx.lexed.includes) {
    if (!inc.quoted && inc.path == "mutex") {
      ctx.add(inc.line, "std-mutex-member", Severity::kError,
              "#include <mutex> outside src/common/thread_annotations.h — "
              "include \"common/thread_annotations.h\" and use sciera::Mutex");
    }
  }
}

void rule_simnet_layering(const RuleContext& ctx) {
  static constexpr std::string_view kAllowed[] = {"common/", "obs/", "simnet/"};
  for (const auto& inc : ctx.lexed.includes) {
    if (!inc.quoted) continue;  // system/vendor headers are fine
    bool ok = false;
    for (const std::string_view prefix : kAllowed) {
      if (std::string_view{inc.path}.starts_with(prefix)) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      ctx.add(inc.line, "simnet-layering", Severity::kError,
              "src/simnet may not include '" + inc.path +
                  "' — the event core depends only on common/, obs/ and "
                  "simnet/; upper layers hook in via callbacks");
    }
  }
}

// percall-keyschedule: constructing crypto::AesCmac or crypto::Aes128 in
// dataplane code reruns the AES key schedule. Per-packet paths must go
// through a cached per-key context; once-per-key constructions (cache
// fill, key rollover) suppress with justification.
void rule_percall_keyschedule(const RuleContext& ctx) {
  const auto& toks = ctx.lexed.tokens;
  const TokenCursor cur{toks};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent ||
        (toks[i].text != "AesCmac" && toks[i].text != "Aes128")) {
      continue;
    }
    // Nested-name uses (AesCmac::Mac, Aes128::Key) are not constructions.
    if (cur.punct(i + 1, "::")) continue;
    bool constructs = false;
    if (cur.punct(i + 1, "(") || cur.punct(i + 1, "{")) {
      // Temporary / direct-initialization: AesCmac{key}, AesCmac(key).
      constructs = true;
    } else if (i + 2 < toks.size() &&
               toks[i + 1].kind == Token::Kind::kIdent &&
               (cur.punct(i + 2, "(") || cur.punct(i + 2, "{") ||
                cur.punct(i + 2, "="))) {
      // Named declaration with an initializer: AesCmac cmac{key};
      // A bare member declaration (`AesCmac cmac_;`) never runs the
      // schedule by itself and is not flagged.
      constructs = true;
    } else if (cur.punct(i + 1, ">") && cur.punct(i + 2, "(")) {
      // make_unique<crypto::AesCmac>(key) and friends.
      constructs = true;
    }
    if (!constructs) continue;
    ctx.add(toks[i].line, "percall-keyschedule", Severity::kError,
            "constructing crypto::" + toks[i].text +
                " in packet-path code reruns the AES key schedule — "
                "per-packet paths must reuse a cached per-key context "
                "(dataplane::HopVerifier / compute_hop_mac's context "
                "cache / LightningFilter's per-source contexts); if this "
                "site is provably once-per-key, suppress with "
                "'// NOLINT(percall-keyschedule)' plus a justification");
  }
}

// ---------------------------------------------------------------------------
// Driver.

bool is_header(const fs::path& p) {
  const auto ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".hh";
}

bool is_source(const fs::path& p) {
  const auto ext = p.extension().string();
  return ext == ".cc" || ext == ".cpp" || ext == ".cxx";
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

struct FileAnalysis {
  std::vector<Finding> findings;
  std::size_t suppressed = 0;
};

// Analyzes one file; `rel` is forward-slash relative to the scan root.
FileAnalysis analyze_file(const fs::path& file, const std::string& rel) {
  FileAnalysis result;
  const std::string content = read_file(file);
  const LexedFile lexed = sciera::lintutil::lex(content);

  SymbolTable table;
  std::vector<Finding> raw;

  const bool in_src = std::string_view{rel}.starts_with("src/");
  scan_declarations(lexed, table, rel, in_src, raw);

  // Companion header: foo.cc sees the members declared in foo.h (same
  // directory). Its declarations feed the symbol table only — findings in
  // the header are reported when the header itself is scanned.
  if (is_source(file)) {
    fs::path companion = file;
    companion.replace_extension(".h");
    if (fs::exists(companion)) {
      const LexedFile header = sciera::lintutil::lex(read_file(companion));
      std::vector<Finding> ignored;
      scan_declarations(header, table, rel, false, ignored);
    }
  }

  const RuleContext ctx{lexed, table, rel, &raw};
  if (in_src) {
    rule_unordered_iteration(ctx);
    const bool digest_visible = std::string_view{rel}.starts_with("src/simnet/") ||
                                std::string_view{rel}.starts_with("src/dataplane/") ||
                                std::string_view{rel}.starts_with("src/controlplane/") ||
                                std::string_view{rel}.starts_with("src/chaos/");
    if (digest_visible) rule_float_accumulation(ctx);
    if (rel != "src/common/rng.cc" && rel != "src/common/rng.h") {
      rule_unseeded_rng(ctx);
    }
    if (rel != "src/common/thread_annotations.h") rule_std_mutex_member(ctx);
    if (std::string_view{rel}.starts_with("src/simnet/")) {
      rule_simnet_layering(ctx);
    }
    if (std::string_view{rel}.starts_with("src/dataplane/") ||
        std::string_view{rel}.starts_with("src/endhost/")) {
      rule_percall_keyschedule(ctx);
    }
  }

  // Suppression pass: NOLINT markers live in comments.
  SuppressionIndex index;
  for (const auto& [line, text] : lexed.comments) {
    index.add_line(line, text);
  }
  for (const Finding& f : raw) {
    if (index.suppressed(f.line, f.rule)) {
      ++result.suppressed;
    } else {
      result.findings.push_back(f);
    }
  }
  // legacy-nolint is a meta rule about the marker itself, so the bare
  // marker does not suppress it.
  for (const std::size_t line : index.legacy_lines()) {
    result.findings.push_back(
        {rel, line, "legacy-nolint", Severity::kWarning,
         "bare NOLINT suppresses every rule — name the rule: "
         "'// NOLINT(rule-name)'"});
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool werror = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg.starts_with("--")) {
      std::cerr << "sciera_analyze: unknown flag " << arg << "\n";
      return 2;
    } else {
      positional.emplace_back(arg);
    }
  }
  if (positional.empty()) {
    std::cerr << "usage: sciera_analyze [--json] [--werror] <repo_root> "
                 "[subdir ...]\n";
    return 2;
  }
  const fs::path root = positional.front();
  std::vector<std::string> subdirs(positional.begin() + 1, positional.end());
  if (subdirs.empty()) subdirs = {"src"};

  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  std::size_t suppressed = 0;
  for (const auto& subdir : subdirs) {
    const fs::path dir = root / subdir;
    if (!fs::exists(dir)) {
      std::cerr << "sciera_analyze: no such directory: " << dir << "\n";
      return 2;
    }
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      if (is_header(entry.path()) || is_source(entry.path())) {
        files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end());
    for (const auto& p : files) {
      FileAnalysis fa =
          analyze_file(p, fs::relative(p, root).generic_string());
      suppressed += fa.suppressed;
      findings.insert(findings.end(), fa.findings.begin(), fa.findings.end());
      ++files_scanned;
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });

  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const Finding& f : findings) {
    (f.severity == Severity::kError ? errors : warnings) += 1;
  }

  if (json) {
    std::cout << "{\n  \"schema\": \"sciera.analyze.v1\",\n";
    std::cout << "  \"files_scanned\": " << files_scanned << ",\n";
    std::cout << "  \"suppressed\": " << suppressed << ",\n";
    std::cout << "  \"errors\": " << errors << ",\n";
    std::cout << "  \"warnings\": " << warnings << ",\n";
    std::cout << "  \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      std::cout << (i == 0 ? "\n" : ",\n");
      std::cout << "    {\"file\": \"" << json_escape(f.file)
                << "\", \"line\": " << f.line << ", \"rule\": \"" << f.rule
                << "\", \"severity\": \""
                << (f.severity == Severity::kError ? "error" : "warning")
                << "\", \"message\": \"" << json_escape(f.message) << "\"}";
    }
    std::cout << (findings.empty() ? "]\n" : "\n  ]\n") << "}\n";
  } else {
    for (const Finding& f : findings) {
      std::cout << f.file << ":" << f.line << ": "
                << (f.severity == Severity::kError ? "error" : "warning")
                << " [" << f.rule << "] " << f.message << "\n";
    }
    std::cout << "sciera_analyze: " << files_scanned << " files, " << errors
              << " error" << (errors == 1 ? "" : "s") << ", " << warnings
              << " warning" << (warnings == 1 ? "" : "s") << " (" << suppressed
              << " suppressed)\n";
  }
  if (errors > 0) return 1;
  if (werror && warnings > 0) return 1;
  return 0;
}
