// sciera_lint: in-repo static checker enforcing the project's correctness
// conventions over src/, tests/, and bench/. Registered as a ctest so a
// violation fails tier-1. Rules:
//
//   banned-function    rand/srand/random, strcpy/strcat/sprintf/vsprintf/
//                      gets, and raw array new[] (outside the owning
//                      buffer abstraction in src/common/buffer.*)
//   wall-clock-seed    no wall-clock or entropy sources (time(...),
//                      std::chrono clocks, random_device, gettimeofday,
//                      clock_gettime) outside src/common/rng.cc — every
//                      run must replay from an explicit seed
//   pragma-once        every header starts include-guarding via
//                      `#pragma once`
//   using-namespace    no `using namespace` in headers (any scope — it
//                      leaks into every includer)
//   own-header-first   foo.cc's first #include is its own header foo.h
//                      (IWYU-style: proves each header is self-contained)
//   adhoc-stats        no ad-hoc `struct Stats` under src/ outside
//                      src/obs/: components report through the metrics
//                      registry. A snapshot struct whose values are read
//                      back from the registry, or mirrored into it by a
//                      publish method, is allowed when marked
//                      `// registry-backed snapshot` on the declaring line
//   raw-retry-loop     no ad-hoc retry loops under src/ outside the
//                      shared policy (src/common/backoff.*) and the chaos
//                      engine (src/chaos/): a loop header naming
//                      retry/attempt state must go through BackoffPolicy +
//                      CircuitBreaker so timeout/backoff/jitter behaviour
//                      is uniform and deterministic. Suppress deliberate
//                      cases with `// NOLINT(sciera-raw-retry-loop)`
//   deprecated-api     no `HostEnvironment` outside src/endhost/pan.{h,cc}:
//                      the raw struct is a one-PR migration shim — build
//                      contexts with endhost::PanContext::Builder. Also no
//                      legacy Simulator at()/after() calls in src/ (one-PR
//                      shims over the shard-aware schedule()/
//                      schedule_after() — name the event's domain).
//                      Suppress intentional uses (e.g. a shim's own
//                      regression test) with
//                      `// NOLINT(sciera-deprecated-api)`
//   direct-control-lookup
//                      no `control_service(...)` calls under src/endhost/:
//                      end-host lookups go through the replicated
//                      ControlServiceSet (replica failover + per-replica
//                      breakers). Suppress with
//                      `// NOLINT(sciera-direct-control-lookup)`
//
// Comments and string/char literals are stripped before matching, so
// documentation may mention banned names freely.
//
// Every rule is suppressible through the unified grammar of
// tools/nolint.h (shared with sciera_analyze): `// NOLINT(rule-name)` on
// the offending line or `// NOLINTNEXTLINE(rule-name)` above it, with
// rule names accepted with or without the historical `sciera-` prefix.
// A bare `// NOLINT` still suppresses everything on its line but is
// reported as a (non-fatal) legacy-nolint warning — name the rule.
//
// Usage: sciera_lint <repo_root> [subdir ...]   (default: src tests bench)
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "nolint.h"

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct LineOfCode {
  std::size_t number = 0;
  std::string text;  // comments and literals stripped
  std::string raw;   // the line as written (for #include paths)
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Strips // and /* */ comments plus string and character literals,
// preserving line structure so violation line numbers stay accurate.
std::vector<LineOfCode> strip_source(const std::string& content) {
  std::vector<LineOfCode> lines;
  std::string current;
  std::string raw;
  std::size_t line_number = 1;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c != '\n') raw.push_back(c);
    if (c == '\n') {
      lines.push_back({line_number++, current, raw});
      current.clear();
      raw.clear();
      // Literals cannot span a raw newline; a dangling state here is a
      // digit separator (1'000) or malformed input — recover per line.
      if (state != State::kBlockComment) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          state = State::kString;
          current.push_back('"');
        } else if (c == '\'') {
          // An apostrophe right after an identifier character is a C++14
          // digit separator (1'000), not a character literal.
          if (!current.empty() && is_ident_char(current.back())) {
            current.push_back('\'');
          } else {
            state = State::kChar;
            current.push_back('\'');
          }
        } else {
          current.push_back(c);
        }
        break;
      case State::kLineComment:
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          current.push_back('"');
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          current.push_back('\'');
        }
        break;
    }
  }
  if (!current.empty() || !raw.empty()) {
    lines.push_back({line_number, current, raw});
  }
  return lines;
}

// True when `line` contains `word` as a whole identifier token.
bool contains_word(std::string_view line, std::string_view word) {
  std::size_t pos = 0;
  while ((pos = line.find(word, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= line.size() || !is_ident_char(line[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

// Like contains_word, but the token must be followed by '(' (after
// optional whitespace) — distinguishes a call to time() from the many
// identifiers that merely contain the word.
bool contains_call(std::string_view line, std::string_view word) {
  std::size_t pos = 0;
  while ((pos = line.find(word, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    std::size_t end = pos + word.size();
    while (end < line.size() &&
           std::isspace(static_cast<unsigned char>(line[end])) != 0) {
      ++end;
    }
    if (left_ok && end < line.size() && line[end] == '(') return true;
    pos = pos + word.size();
  }
  return false;
}

struct FileReport {
  std::vector<Violation> violations;
  std::vector<Violation> warnings;  // non-fatal (legacy-nolint)
  void add(const fs::path& file, std::size_t line, std::string rule,
           std::string message) {
    violations.push_back(
        {file.generic_string(), line, std::move(rule), std::move(message)});
  }
};

constexpr std::string_view kBannedCalls[] = {
    "rand",   "srand",    "random", "rand_r", "drand48",
    "strcpy", "stpcpy",   "strcat", "sprintf", "vsprintf",
    "gets",   "alloca",
};

constexpr std::string_view kWallClockCalls[] = {
    "gettimeofday", "clock_gettime", "ftime", "localtime", "gmtime",
};
constexpr std::string_view kWallClockWords[] = {
    "system_clock", "steady_clock", "high_resolution_clock", "random_device",
};

bool is_header(const fs::path& p) {
  const auto ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".hh";
}

bool is_source(const fs::path& p) {
  const auto ext = p.extension().string();
  return ext == ".cc" || ext == ".cpp" || ext == ".cxx";
}

// rel: path relative to the repo root, used for allowlists.
void lint_file(const fs::path& file, const fs::path& rel, FileReport& report) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    report.add(rel, 0, "io", "cannot open file");
    return;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  const auto lines = strip_source(content);
  const std::string rel_str = rel.generic_string();

  // Unified suppression grammar (tools/nolint.h): markers are parsed from
  // the raw lines, violations filtered at the end of the scan.
  sciera::lintutil::SuppressionIndex nolint;
  for (const auto& line : lines) nolint.add_line(line.number, line.raw);
  FileReport local;

  const bool is_rng = rel_str == "src/common/rng.cc";
  const bool is_buffer_code = rel_str == "src/common/buffer.cc" ||
                              rel_str == "src/common/buffer.h";
  const bool is_pan_library = rel_str == "src/endhost/pan.h" ||
                              rel_str == "src/endhost/pan.cc";
  const bool owns_retry_policy = rel_str.starts_with("src/chaos/") ||
                                 rel_str == "src/common/backoff.h" ||
                                 rel_str == "src/common/backoff.cc";

  for (const auto& line : lines) {
    for (const auto banned : kBannedCalls) {
      if (contains_call(line.text, banned)) {
        local.add(rel, line.number, "banned-function",
                   "call to banned function '" + std::string{banned} + "'");
      }
    }
    if (!is_buffer_code) {
      // Raw array new: `new T[n]` (the owning-buffer abstraction in
      // src/common/buffer.* is the one allowed user).
      const std::size_t pos = line.text.find("new ");
      if (pos != std::string::npos &&
          (pos == 0 || !is_ident_char(line.text[pos - 1]))) {
        const std::size_t bracket = line.text.find('[', pos + 4);
        const std::size_t stop = line.text.find_first_of(";,)({", pos + 4);
        if (bracket != std::string::npos &&
            (stop == std::string::npos || bracket < stop)) {
          local.add(rel, line.number, "banned-function",
                     "raw array new[] outside src/common/buffer.*");
        }
      }
    }
    if (!is_rng) {
      for (const auto banned : kWallClockCalls) {
        if (contains_call(line.text, banned)) {
          local.add(rel, line.number, "wall-clock-seed",
                     "wall-clock source '" + std::string{banned} +
                         "' outside src/common/rng.cc");
        }
      }
      if (contains_call(line.text, "time")) {
        local.add(rel, line.number, "wall-clock-seed",
                   "call to time() outside src/common/rng.cc");
      }
      for (const auto banned : kWallClockWords) {
        if (contains_word(line.text, banned)) {
          local.add(rel, line.number, "wall-clock-seed",
                     "nondeterministic clock/entropy '" + std::string{banned} +
                         "' outside src/common/rng.cc");
        }
      }
    }
    if (is_header(rel) && contains_word(line.text, "using") &&
        line.text.find("using namespace") != std::string::npos) {
      local.add(rel, line.number, "using-namespace",
                 "'using namespace' in a header leaks into every includer");
    }
    // HostEnvironment is deprecated in favor of the validated
    // PanContext::Builder; only the PAN library itself (which implements
    // the shim) may name it. NOLINT is checked on the raw line because
    // the marker lives in a comment.
    if (!is_pan_library && contains_word(line.text, "HostEnvironment")) {
      local.add(rel, line.number, "deprecated-api",
                 "HostEnvironment is deprecated — build contexts with "
                 "endhost::PanContext::Builder (suppress with "
                 "'// NOLINT(sciera-deprecated-api)')");
    }
    // The legacy Simulator::at()/after() entry points are one-PR shims
    // over the shard-aware schedule()/schedule_after(): library code must
    // name the domain an event belongs to. Receiver-specific patterns
    // (sim./sim()./sim_.) keep std::map::at() and friends out of scope;
    // src/ only — tests exercise the shims legitimately, and the
    // simulator header implements them.
    if (rel_str.starts_with("src/") &&
        rel_str != "src/simnet/simulator.h") {
      static constexpr std::string_view kLegacySchedule[] = {
          "sim().at(",  "sim().after(", "sim_.at(",
          "sim_.after(", "sim.at(",     "sim.after(",
      };
      for (const auto pattern : kLegacySchedule) {
        if (line.text.find(pattern) != std::string::npos) {
          local.add(rel, line.number, "deprecated-api",
                     "legacy Simulator::at()/after() shim — use "
                     "schedule(Domain, ...) / schedule_after(Domain, ...) "
                     "with an explicit shard domain (suppress with "
                     "'// NOLINT(sciera-deprecated-api)')");
          break;
        }
      }
    }
    // End-host code must not fetch paths from a ControlService directly:
    // lookups go through the replicated ControlServiceSet so failover and
    // the per-replica breakers apply. `control_service_set(...)` does not
    // match — contains_call requires '(' right after the token.
    if (rel_str.starts_with("src/endhost/") &&
        contains_call(line.text, "control_service")) {
      local.add(rel, line.number, "direct-control-lookup",
                 "direct ControlService lookup from endhost code — use "
                 "ScionNetwork::control_service_set() so replica failover "
                 "applies (suppress with "
                 "'// NOLINT(sciera-direct-control-lookup)')");
    }
    // Ad-hoc retry loops scatter resilience policy: a loop header driving
    // retry/attempt state must go through sciera::BackoffPolicy (with its
    // deterministic jitter) and CircuitBreaker instead of hand-rolling
    // timing. Only the shared policy and the chaos engine may loop on
    // retry state directly.
    if (rel_str.starts_with("src/") && !owns_retry_policy &&
        (contains_word(line.text, "for") ||
         contains_word(line.text, "while"))) {
      std::string lowered = line.text;
      std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (lowered.find("retry") != std::string::npos ||
          lowered.find("retries") != std::string::npos ||
          lowered.find("attempt") != std::string::npos) {
        local.add(rel, line.number, "raw-retry-loop",
                   "ad-hoc retry loop — use sciera::BackoffPolicy / "
                   "CircuitBreaker (src/common/backoff.h); suppress "
                   "deliberate cases with '// NOLINT(sciera-raw-retry-loop)'");
      }
    }
    // Ad-hoc per-component stats structs fragment observability: metrics
    // belong in the obs registry. The marker comment (checked on the raw
    // line — comments are stripped from .text) exempts legacy-shaped
    // snapshot structs that are thin reads over registry cells.
    if (rel_str.starts_with("src/") && !rel_str.starts_with("src/obs/") &&
        contains_word(line.text, "struct") &&
        contains_word(line.text, "Stats") &&
        line.raw.find("registry-backed snapshot") == std::string::npos) {
      local.add(rel, line.number, "adhoc-stats",
                 "ad-hoc 'struct Stats' outside src/obs/ — report through "
                 "obs::MetricsRegistry (mark registry-backed snapshot "
                 "structs with '// registry-backed snapshot')");
    }
  }

  if (is_header(rel)) {
    const bool has_pragma =
        std::any_of(lines.begin(), lines.end(), [](const LineOfCode& l) {
          return l.text.find("#pragma once") != std::string::npos;
        });
    if (!has_pragma) {
      local.add(rel, 1, "pragma-once", "header is missing '#pragma once'");
    }
  }

  if (is_source(rel)) {
    fs::path own_header = file;
    own_header.replace_extension(".h");
    if (fs::exists(own_header)) {
      // Project-style include: "dir/stem.h" relative to the source root,
      // or just "stem.h" for top-level files.
      const std::string stem = file.stem().string();
      std::string first_include;
      std::size_t first_line = 0;
      for (const auto& line : lines) {
        // Only lines that are #include directives in actual code (the
        // stripped text keeps the directive, the raw text keeps the path).
        const std::size_t inc = line.text.find("#include");
        if (inc == std::string::npos) continue;
        const std::size_t open = line.raw.find_first_of("\"<");
        if (open == std::string::npos) break;
        const char close_ch = line.raw[open] == '"' ? '"' : '>';
        const std::size_t close = line.raw.find(close_ch, open + 1);
        if (close == std::string::npos) break;
        first_include = line.raw.substr(open + 1, close - open - 1);
        first_line = line.number;
        break;
      }
      const std::string expected_suffix = stem + ".h";
      const bool matches =
          first_include == expected_suffix ||
          (first_include.size() > expected_suffix.size() &&
           first_include.ends_with("/" + expected_suffix));
      if (!matches) {
        local.add(rel, first_line == 0 ? 1 : first_line, "own-header-first",
                   "first #include must be the file's own header '" +
                       expected_suffix + "' (found '" + first_include + "')");
      }
    }
  }

  // Apply suppressions and surface legacy bare-NOLINT markers.
  for (auto& v : local.violations) {
    if (!nolint.suppressed(v.line, v.rule)) {
      report.violations.push_back(std::move(v));
    }
  }
  for (const std::size_t legacy_line : nolint.legacy_lines()) {
    report.warnings.push_back(
        {rel.generic_string(), legacy_line, "legacy-nolint",
         "bare NOLINT suppresses every rule — name the rule: "
         "'// NOLINT(rule-name)'"});
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: sciera_lint <repo_root> [subdir ...]\n";
    return 2;
  }
  const fs::path root = argv[1];
  std::vector<std::string> subdirs;
  for (int i = 2; i < argc; ++i) subdirs.emplace_back(argv[i]);
  if (subdirs.empty()) subdirs = {"src", "tests", "bench"};

  FileReport report;
  std::size_t files_scanned = 0;
  for (const auto& subdir : subdirs) {
    const fs::path dir = root / subdir;
    if (!fs::exists(dir)) {
      std::cerr << "sciera_lint: no such directory: " << dir << "\n";
      return 2;
    }
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const auto& p = entry.path();
      if (is_header(p) || is_source(p)) files.push_back(p);
    }
    std::sort(files.begin(), files.end());
    for (const auto& p : files) {
      lint_file(p, fs::relative(p, root), report);
      ++files_scanned;
    }
  }

  for (const auto& w : report.warnings) {
    std::cout << w.file << ":" << w.line << ": warning [" << w.rule << "] "
              << w.message << "\n";
  }
  for (const auto& v : report.violations) {
    std::cout << v.file << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
  }
  std::cout << "sciera_lint: " << files_scanned << " files, "
            << report.violations.size() << " violation"
            << (report.violations.size() == 1 ? "" : "s") << " ("
            << report.warnings.size() << " warning"
            << (report.warnings.size() == 1 ? "" : "s") << ")\n";
  return report.violations.empty() ? 0 : 1;
}
