# Runs the self-healing soak (sciera_chaos --self-healing) twice in
# separate processes under the same plan and seed and requires (1) the
# self_healing report section with a finite, positive time_to_reconverge,
# and (2) byte-identical reports — the reconvergence measurement must
# replay from the seed like everything else. Separate processes matter:
# in-process reruns would share registry instance labels instead of
# proving replay from the seed.
#
# Expected variables: BIN (sciera_chaos binary), OUT_DIR (scratch dir).
if(NOT DEFINED BIN OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "BIN and OUT_DIR must be defined")
endif()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(first "${OUT_DIR}/run1.json")
set(second "${OUT_DIR}/run2.json")

foreach(out IN ITEMS "${first}" "${second}")
  execute_process(
    COMMAND "${BIN}" kreonet-ring-cut --seed 7 --duration-ms 4000
            --self-healing --out "${out}"
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR
            "sciera_chaos kreonet-ring-cut --self-healing failed: ${status}")
  endif()
endforeach()

file(READ "${first}" report)
foreach(field
        "\"schema\": \"sciera.chaos.soak.v1\""
        "\"self_healing\""
        "\"enabled\": true"
        "\"sweeps\""
        "\"segments_revoked\""
        "\"time_to_reconverge_ms\""
        "\"stale_window_ms\"")
  string(FIND "${report}" "${field}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "self-healing JSON is missing ${field}:\n${report}")
  endif()
endforeach()

# The ring cut must have produced a measured, finite reconvergence: the
# -1 sentinel here means the healing loop never detected the link cut.
string(REGEX MATCH "\"time_to_reconverge_ms\": ([-0-9.]+)" _ "${report}")
if(NOT CMAKE_MATCH_1)
  message(FATAL_ERROR "time_to_reconverge_ms not parseable:\n${report}")
endif()
if(CMAKE_MATCH_1 LESS_EQUAL 0)
  message(FATAL_ERROR
          "expected a positive time_to_reconverge_ms, got ${CMAKE_MATCH_1}:"
          "\n${report}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${first}" "${second}"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "self-healing soak reports differ between two same-seed runs "
          "(${first} vs ${second})")
endif()
