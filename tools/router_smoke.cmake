# bench.router_smoke: runs the border-router fast-path benchmark alone
# (--router-only --quick) and validates its contract:
#   - the harness exits 0 (the scalar-legacy and batched-cached runs
#     executed the identical event schedule),
#   - the JSON carries the router_fastpath schema fields,
#   - the batched run performed ZERO AES key schedules and zero heap
#     allocations per packet in the measured window — the two hot-path
#     regressions this PR fixed, both exactly countable and therefore
#     gated exactly (throughput is timing, these are not),
#   - a second process reproduces every deterministic field byte for byte.
# Invoked by ctest with -DBIN=<sciera_bench> -DOUT_DIR=<scratch dir>.
file(MAKE_DIRECTORY ${OUT_DIR})

foreach(run IN ITEMS 1 2)
  execute_process(
    COMMAND ${BIN} --router-only --quick --out ${OUT_DIR}/router_run${run}.json
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE stdout_${run}
    ERROR_VARIABLE stderr_${run})
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "sciera_bench --router-only run ${run} failed (rc=${rc}):\n"
            "${stdout_${run}}\n${stderr_${run}}")
  endif()
endforeach()

file(READ ${OUT_DIR}/router_run1.json json1)
file(READ ${OUT_DIR}/router_run2.json json2)

foreach(field
    "\"schema\": \"sciera.bench.simcore.v2\""
    "\"router_fastpath\""
    "\"scalar_legacy\""
    "\"batched_cached\""
    "\"packets_per_sec\""
    "\"allocs_per_packet\""
    "\"mac_cache_hit_rate\""
    "\"key_schedules\""
    "\"speedup\""
    "\"hashes_match\": true")
  string(FIND "${json1}" "${field}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "router bench JSON missing field ${field}:\n${json1}")
  endif()
endforeach()

# The batched fast path must run the measured window with zero key
# schedules and zero allocations per packet. Both counts are exact and
# deterministic, so the gate is exact string presence inside the
# batched_cached object (scalar_legacy serializes first, so a regex
# anchored at batched_cached sees only the fast-path numbers).
string(REGEX MATCH "\"batched_cached\": \\{[^}]*\\}" batched "${json1}")
if("${batched}" STREQUAL "")
  message(FATAL_ERROR "no batched_cached object found:\n${json1}")
endif()
string(FIND "${batched}" "\"key_schedules\": 0," ks_pos)
if(ks_pos EQUAL -1)
  message(FATAL_ERROR "batched router ran per-packet key schedules:\n${batched}")
endif()
string(FIND "${batched}" "\"allocs_per_packet\": 0.000," alloc_pos)
if(alloc_pos EQUAL -1)
  message(FATAL_ERROR "batched router allocates on the hot path:\n${batched}")
endif()

# Cross-process determinism: everything except wall-clock throughput must
# be byte-identical — executed events, schedule hashes, key schedules,
# cache hit rate, packet counts.
foreach(run IN ITEMS 1 2)
  string(REGEX MATCHALL "\"(executed_events|schedule_hash|key_schedules|mac_cache_hit_rate|allocs_per_packet|packets)\": \"?[0-9a-f.]+\"?"
         stable_${run} "${json${run}}")
endforeach()
if(NOT "${stable_1}" STREQUAL "${stable_2}")
  message(FATAL_ERROR "nondeterministic router bench fields across runs:\n"
                      "run1: ${stable_1}\nrun2: ${stable_2}")
endif()
if("${stable_1}" STREQUAL "")
  message(FATAL_ERROR "no deterministic fields found in router bench JSON")
endif()
