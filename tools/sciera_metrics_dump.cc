// sciera_metrics_dump: runs a named scenario against the full SCIERA
// topology and emits the observability layer's view of it — the metrics
// registry (Prometheus exposition text and/or JSON) and the flight
// recorder's trace ring. Output is fully determined by the scenario seed:
// two runs of the same scenario produce byte-identical dumps, and ctest
// enforces that (tools.metrics_dump_deterministic).
//
// Exit codes: 0 success, 2 usage error (unknown flag or scenario).
//
// Usage: sciera_metrics_dump [failover|campaign] [--text|--json|--both]
#include <cstdio>
#include <cstring>
#include <string>

#include "bgp/bgp.h"
#include "cli.h"
#include "endhost/pan.h"
#include "measure/campaign.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "topology/sciera_net.h"

namespace sciera {
namespace {

namespace a = topology::ases;

// A cross-Atlantic flow that survives a mid-flight link failure: traffic
// flows UVa -> OVGU, the active path's second link is cut while a packet
// is on the wire (exercising the in-flight cancellation path), the border
// router answers the next send with SCMP ExternalInterfaceDown, the
// daemon quarantines the path, and traffic fails over to an alternative.
void run_failover_scenario() {
  controlplane::ScionNetwork network{topology::build_sciera()};

  endhost::Daemon src_daemon{network, a::uva()};
  auto src_ctx = endhost::PanContext::Builder{}
                     .net(network)
                     .address({a::uva(), 0x0A0000C8})
                     .daemon(src_daemon)
                     .build(Rng{42});
  if (!src_ctx.ok()) return;

  endhost::Daemon dst_daemon{network, a::ovgu()};
  auto dst_ctx = endhost::PanContext::Builder{}
                     .net(network)
                     .address({a::ovgu(), 0x0A0000C9})
                     .daemon(dst_daemon)
                     .build(Rng{43});
  if (!dst_ctx.ok()) return;

  endhost::PanSocket* echo_ptr = nullptr;
  auto echo = endhost::PanSocket::open(
      **dst_ctx, 4242,
      [&](const dataplane::Address& src, std::uint16_t port,
          const Bytes& data, SimTime) {
        (void)echo_ptr->send_to(src, port, data);
      });
  if (!echo.ok()) return;
  echo_ptr = echo->get();

  auto sock = endhost::PanSocket::open(
      **src_ctx, 0,
      [](const dataplane::Address&, std::uint16_t, const Bytes&, SimTime) {});
  if (!sock.ok()) return;

  // Data-plane failure feedback: SCMP errors quarantine the active path.
  std::string active_fingerprint;
  (*src_ctx)->stack().set_scmp_receiver(
      [&](const dataplane::ScionPacket&, const dataplane::ScmpMessage& message,
          SimTime) {
        if (message.is_error() && !active_fingerprint.empty()) {
          (*src_ctx)->report_path_down(active_fingerprint);
        }
      });

  const dataplane::Address peer{a::ovgu(), 0x0A0000C9};
  (void)(*sock)->send_to(peer, 4242, bytes_of("ping"));
  network.sim().run_for(3 * kSecond);

  // Cut the active path's second link while a fresh packet is in flight.
  auto path = (*sock)->current_path(a::ovgu());
  if (path.ok() && path->links.size() > 1) {
    active_fingerprint = path->fingerprint();
    simnet::Link* cut = network.link(path->links[1]);
    (void)(*sock)->send_to(peer, 4242, bytes_of("mid-flight"));
    // ~1.1ms to clear the first hop, ~50ms across the Atlantic: 10ms in
    // catches the frame on the wire of the cut link.
    network.sim().after(10 * kMillisecond, [cut] { cut->set_up(false); });
    // Sent just before the cut, arriving at the failed egress just after:
    // the border router answers with SCMP ExternalInterfaceDown and the
    // daemon quarantines the path.
    network.sim().after(9500 * kMicrosecond, [&] {
      (void)(*sock)->send_to(peer, 4242, bytes_of("probe"));
    });
    network.sim().run_for(3 * kSecond);
    // Failover: the quarantined path is excluded, traffic takes another.
    (void)(*sock)->send_to(peer, 4242, bytes_of("failover"));
    network.sim().run_for(3 * kSecond);
  }
}

// A compressed multiping campaign (Section 5.4): three hours at the
// paper's ten-minute aggregation granularity, full incident machinery.
void run_campaign_scenario() {
  controlplane::ScionNetwork network{topology::build_sciera()};
  bgp::BgpNetwork bgp{network.topology()};
  measure::CampaignOptions options;
  options.duration = 3 * kHour;
  measure::Campaign campaign{network, bgp, options};
  (void)campaign.run();
}

}  // namespace
}  // namespace sciera

int main(int argc, char** argv) {
  std::string scenario = "failover";
  bool text = true;
  bool json = false;
  sciera::cli::FlagSet flags(
      "sciera_metrics_dump",
      "usage: sciera_metrics_dump [failover|campaign] "
      "[--text|--json|--both]");
  // Output-mode selectors are tri-state (text xor json xor both), so they
  // bind as callbacks rather than independent booleans.
  flags.flag("--text", [&] { text = true; json = false; });
  flags.flag("--json", [&] { text = false; json = true; });
  flags.flag("--both", [&] { text = true; json = true; });
  if (!flags.parse(argc, argv)) return 2;
  if (flags.positionals().size() > 1) return flags.usage();
  if (!flags.positionals().empty()) scenario = flags.positionals().front();

  if (scenario == "failover") {
    sciera::run_failover_scenario();
  } else if (scenario == "campaign") {
    sciera::run_campaign_scenario();
  } else {
    std::fprintf(stderr, "sciera_metrics_dump: unknown scenario '%s'\n",
                 scenario.c_str());
    return flags.usage();
  }

  const auto& registry = sciera::obs::MetricsRegistry::global();
  const auto& recorder = sciera::obs::FlightRecorder::global();
  std::string out;
  if (text) {
    out += sciera::obs::export_text(registry);
    out += sciera::obs::export_trace_text(recorder);
  }
  if (json) {
    out += "{\"metrics\":";
    out += sciera::obs::export_json(registry);
    out += ",\"trace\":";
    out += sciera::obs::export_trace_json(recorder);
    out += "}\n";
  }
  std::fwrite(out.data(), 1, out.size(), stdout);
  return 0;
}
