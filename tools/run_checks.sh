#!/usr/bin/env bash
# Correctness gate: builds the tree under ASan+UBSan with warnings as
# errors and runs the full tier-1 ctest suite (which includes the
# sciera_lint static checks and the simnet determinism audit). This is
# what CI should run; it is slower than the plain build but catches
# memory-safety bugs, UB, and lint violations in one pass.
#
# Usage: tools/run_checks.sh [build-dir]        (default: build-checks)
#   SCIERA_SANITIZE=thread tools/run_checks.sh  to run the TSan flavor.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build-checks}"
SANITIZE="${SCIERA_SANITIZE:-address;undefined}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

SUPP_DIR="$ROOT/tools/sanitizers"
export ASAN_OPTIONS="suppressions=$SUPP_DIR/asan.supp:detect_stack_use_after_return=1:strict_string_checks=1:${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="suppressions=$SUPP_DIR/ubsan.supp:print_stacktrace=1:halt_on_error=1:${UBSAN_OPTIONS:-}"
export LSAN_OPTIONS="suppressions=$SUPP_DIR/lsan.supp:${LSAN_OPTIONS:-}"

# Static analysis runs before any build: the determinism/concurrency
# analyzer (sciera_analyze) must report zero unsuppressed findings over
# src/, warnings included. A tiny host-compiler build of the two lint
# tools is enough — they have no dependency on the sciera library.
echo "== sciera_analyze (determinism & concurrency static analysis) =="
ANALYZE_DIR="$BUILD_DIR-analyze"
mkdir -p "$ANALYZE_DIR"
c++ -std=c++20 -O1 -o "$ANALYZE_DIR/sciera_analyze" \
  "$ROOT/tools/sciera_analyze.cc"
"$ANALYZE_DIR/sciera_analyze" --werror --json "$ROOT" src \
  > "$ANALYZE_DIR/ANALYZE_findings.json" \
  || { cat "$ANALYZE_DIR/ANALYZE_findings.json"; exit 1; }

echo "== configure (sanitize: $SANITIZE, -Werror on) =="
cmake -B "$BUILD_DIR" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSCIERA_SANITIZE="$SANITIZE" \
  -DSCIERA_WERROR=ON

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== ctest (tier-1 suite under sanitizers, incl. lint + determinism) =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# Throughput numbers from a sanitized build are meaningless, but the bench
# still validates the load-bearing contracts: heap and calendar backends
# must execute identical schedules (digest parity) and the frame pool must
# balance its books. Exits non-zero on any mismatch.
echo "== sciera_bench --quick (scheduler digest parity under sanitizers) =="
"$BUILD_DIR/tools/sciera_bench" --quick \
  --out "$BUILD_DIR/BENCH_simcore_quick.json"

# Sharded parallel core in isolation: the merged digest must be identical
# at every worker-thread count, and the cross-shard outbox/barrier
# machinery gets a memory-safety pass (a stale ExecCtx or a frame freed on
# the wrong shard would surface here).
echo "== sciera_bench --parallel-only --quick (thread parity, sanitized) =="
"$BUILD_DIR/tools/sciera_bench" --parallel-only --quick --shards 8 \
  --out "$BUILD_DIR/BENCH_parallel_quick.json"

# Router fast-path in isolation: the scalar/batched digest-parity and
# zero-key-schedule contracts hold under sanitizers too, and a sanitized
# pass over the batched parse/verify/forward pipeline is exactly where a
# scratch-reuse bug (stale spans, buffer aliasing) would surface.
echo "== sciera_bench --router-only --quick (batched fast path, sanitized) =="
"$BUILD_DIR/tools/sciera_bench" --router-only --quick \
  --out "$BUILD_DIR/BENCH_router_quick.json"

# Batched vs scalar A/B at the soak level: the full KREONET ring-cut
# report must be byte-identical whichever router fast path is in play.
echo "== sciera_chaos batched vs scalar router report parity =="
"$BUILD_DIR/tools/sciera_chaos" kreonet-ring-cut --seed 7 --duration-ms 2000 \
  --out "$BUILD_DIR/CHAOS_router_batched.json"
"$BUILD_DIR/tools/sciera_chaos" kreonet-ring-cut --seed 7 --duration-ms 2000 \
  --scalar-router --out "$BUILD_DIR/CHAOS_router_scalar.json"
cmp "$BUILD_DIR/CHAOS_router_batched.json" "$BUILD_DIR/CHAOS_router_scalar.json"

# A short chaos soak under sanitizers: fault injection, the daemons'
# retry/degradation machinery, and the survivability reporting all get a
# memory-safety pass beyond what the smoke ctest already proved.
echo "== sciera_chaos kreonet-ring-cut --quick soak (sanitized) =="
"$BUILD_DIR/tools/sciera_chaos" kreonet-ring-cut --seed 7 --duration-ms 3000 \
  --out "$BUILD_DIR/CHAOS_soak_quick.json"

# The same soak with the self-healing control plane on: timer-driven
# re-beaconing, segment expiry/revocation, replica failover, and the
# reconvergence measurement all run under ASan+UBSan.
echo "== sciera_chaos kreonet-ring-cut --self-healing reconvergence soak (sanitized) =="
"$BUILD_DIR/tools/sciera_chaos" kreonet-ring-cut --self-healing --seed 7 \
  --duration-ms 3000 --out "$BUILD_DIR/CHAOS_reconverge_quick.json"

# The adversarial-robustness soak under sanitizers: forged/spoofed MAC
# floods plus a flash crowd stress the in-path LightningFilters, router
# admission classes, and SCMP suppression — and the defended arm must
# strictly beat the --no-defenses arm on legitimate-traffic delivery
# (the smoke ctest gates the ordering; here both arms get the
# memory-safety pass).
echo "== sciera_chaos forged-flood attack soak, defenses A/B (sanitized) =="
"$BUILD_DIR/tools/sciera_chaos" forged-flood --self-healing --seed 7 \
  --duration-ms 3000 --out "$BUILD_DIR/CHAOS_attack_on.json"
"$BUILD_DIR/tools/sciera_chaos" forged-flood --self-healing --seed 7 \
  --duration-ms 3000 --no-defenses --out "$BUILD_DIR/CHAOS_attack_off.json"

# TSan flavor of the concurrency surfaces. When this script is already
# running the thread flavor (SCIERA_SANITIZE=thread), the full suite above
# covered it; otherwise build just the chaos CLI in a separate TSan tree
# and run the soak smoke plus the multithreaded observability smoke, so
# the sciera::Mutex discipline the thread-safety annotations promise is
# checked dynamically on every gate run.
if [[ "$SANITIZE" != *thread* ]]; then
  TSAN_DIR="$BUILD_DIR-tsan"
  echo "== TSan flavor: sciera_chaos soak + thread smoke =="
  cmake -B "$TSAN_DIR" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSCIERA_SANITIZE=thread \
    -DSCIERA_WERROR=ON
  cmake --build "$TSAN_DIR" -j "$JOBS" --target sciera_chaos_cli
  "$TSAN_DIR/tools/sciera_chaos" kreonet-ring-cut --seed 7 \
    --duration-ms 2000 --out "$TSAN_DIR/CHAOS_soak_tsan.json"
  "$TSAN_DIR/tools/sciera_chaos" --thread-smoke
  # Attack soak under TSan: the flood generator's atomic delivery
  # counters and the shared filter/admission counters run with real
  # concurrency when sharded.
  echo "== TSan flavor: forged-flood attack soak =="
  "$TSAN_DIR/tools/sciera_chaos" forged-flood --self-healing --seed 7 \
    --duration-ms 3000 --out "$TSAN_DIR/CHAOS_attack_tsan.json"
  # The parallel soak under TSan: 8 shards on 4 worker threads exercises
  # the window barrier, cross-shard outboxes, per-direction link RNGs, and
  # the atomic workload counters with real concurrency — and the report
  # must stay byte-identical to the 1-thread run of the same config.
  echo "== TSan flavor: sharded parallel soak (8 shards x 4 threads) =="
  "$TSAN_DIR/tools/sciera_chaos" kreonet-ring-cut --seed 7 \
    --duration-ms 2000 --shards 8 --threads 4 \
    --out "$TSAN_DIR/CHAOS_soak_parallel_tsan.json"
  "$TSAN_DIR/tools/sciera_chaos" kreonet-ring-cut --seed 7 \
    --duration-ms 2000 --shards 8 --threads 1 \
    --out "$TSAN_DIR/CHAOS_soak_parallel_1t.json"
  cmp "$TSAN_DIR/CHAOS_soak_parallel_tsan.json" \
    "$TSAN_DIR/CHAOS_soak_parallel_1t.json"
fi

echo "== run_checks: all clean =="
