# bench.simcore_smoke: runs the simulation-core benchmark in --quick mode
# and validates the BENCH_simcore.json contract:
#   - the harness exits 0 (heap/calendar digests and event counts agree),
#   - the JSON carries the expected schema marker and fields,
#   - a second run reproduces the exact event counts and schedule hashes
#     (wall-clock throughput may differ; the schedule must not).
# Invoked by ctest with -DBIN=<sciera_bench> -DOUT_DIR=<scratch dir>.
file(MAKE_DIRECTORY ${OUT_DIR})

foreach(run IN ITEMS 1 2)
  execute_process(
    COMMAND ${BIN} --quick --out ${OUT_DIR}/bench_run${run}.json
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE stdout_${run}
    ERROR_VARIABLE stderr_${run})
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "sciera_bench --quick run ${run} failed (rc=${rc}):\n"
                        "${stdout_${run}}\n${stderr_${run}}")
  endif()
endforeach()

file(READ ${OUT_DIR}/bench_run1.json json1)
file(READ ${OUT_DIR}/bench_run2.json json2)

# Schema validation: the marker and every field the roadmap tooling reads.
foreach(field
    "\"schema\": \"sciera.bench.simcore.v1\""
    "\"baseline_scheduler\": \"binary-heap\""
    "\"micro_hold\""
    "\"macro_sciera\""
    "\"binary_heap\""
    "\"calendar_queue\""
    "\"events_per_sec\""
    "\"allocs_per_event\""
    "\"executed_events\""
    "\"schedule_hash\""
    "\"speedup\""
    "\"frame_pool\"")
  string(FIND "${json1}" "${field}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "BENCH_simcore.json missing field ${field}:\n${json1}")
  endif()
endforeach()

string(FIND "${json1}" "\"hashes_match\": false" bad_pos)
if(NOT bad_pos EQUAL -1)
  message(FATAL_ERROR "scheduler backends produced mismatching digests:\n${json1}")
endif()

# Determinism: event counts and schedule hashes must be identical across
# two separate processes. Strip the timing-dependent fields and compare.
foreach(run IN ITEMS 1 2)
  string(REGEX MATCHALL "\"(executed_events|schedule_hash|packets_sent|packets_delivered)\": \"?[0-9a-f]+\"?"
         stable_${run} "${json${run}}")
endforeach()
if(NOT "${stable_1}" STREQUAL "${stable_2}")
  message(FATAL_ERROR "nondeterministic event counts across runs:\n"
                      "run1: ${stable_1}\nrun2: ${stable_2}")
endif()
if("${stable_1}" STREQUAL "")
  message(FATAL_ERROR "no executed_events fields found in BENCH_simcore.json")
endif()
