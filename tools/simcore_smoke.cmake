# bench.simcore_smoke: runs the simulation-core benchmark in --quick mode
# and validates the BENCH_simcore.json contract:
#   - the harness exits 0 (heap/calendar digests and event counts agree,
#     and the scalar/batched router runs agree),
#   - the JSON carries the expected schema marker and fields,
#   - the calendar queue is not slower than the binary heap on the macro
#     workload (the regression this guards: a default wheel horizon
#     shorter than the workload's own timescale double-handles every
#     control-plane timer through the overflow heap),
#   - a second run reproduces the exact event counts and schedule hashes
#     (wall-clock throughput may differ; the schedule must not).
# Invoked by ctest with -DBIN=<sciera_bench> -DOUT_DIR=<scratch dir>.
file(MAKE_DIRECTORY ${OUT_DIR})

foreach(run IN ITEMS 1 2)
  execute_process(
    COMMAND ${BIN} --quick --out ${OUT_DIR}/bench_run${run}.json
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE stdout_${run}
    ERROR_VARIABLE stderr_${run})
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "sciera_bench --quick run ${run} failed (rc=${rc}):\n"
                        "${stdout_${run}}\n${stderr_${run}}")
  endif()
endforeach()

file(READ ${OUT_DIR}/bench_run1.json json1)
file(READ ${OUT_DIR}/bench_run2.json json2)

# Schema validation: the marker and every field the roadmap tooling reads.
foreach(field
    "\"schema\": \"sciera.bench.simcore.v2\""
    "\"baseline_scheduler\": \"binary-heap\""
    "\"router_fastpath\""
    "\"scalar_legacy\""
    "\"batched_cached\""
    "\"packets_per_sec\""
    "\"allocs_per_packet\""
    "\"mac_cache_hit_rate\""
    "\"key_schedules\""
    "\"micro_hold\""
    "\"macro_sciera\""
    "\"binary_heap\""
    "\"calendar_queue\""
    "\"events_per_sec\""
    "\"allocs_per_event\""
    "\"executed_events\""
    "\"schedule_hash\""
    "\"speedup\""
    "\"frame_pool\"")
  string(FIND "${json1}" "${field}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "BENCH_simcore.json missing field ${field}:\n${json1}")
  endif()
endforeach()

string(FIND "${json1}" "\"hashes_match\": false" bad_pos)
if(NOT bad_pos EQUAL -1)
  message(FATAL_ERROR "paired runs produced mismatching digests:\n${json1}")
endif()

# Macro speedup gate: the calendar queue must not lose to the baseline it
# replaced on the end-to-end workload. The bench takes the best of three
# alternating-order reps per backend, so this is a genuine geometry/
# algorithm signal, not one noisy wall-clock sample. Speedups are X.YY
# with a threshold of 1.0, so VERSION_LESS compares them correctly.
# Sanitized builds (-DSANITIZED=1) skip this one gate: instrumentation
# changes the relative cost of the two schedulers, so the ratio stops
# measuring wheel geometry. All exact gates above and below still run.
# Both bench runs measure independently; the best of the two gates, so
# one sample taken while the machine was briefly loaded does not fail a
# correct geometry (a real regression depresses every sample).
set(macro_speedup "")
foreach(run IN ITEMS 1 2)
  string(REGEX MATCH "\"macro_sciera\": [^#]*" macro_section "${json${run}}")
  string(REGEX MATCH "\"speedup\": [0-9.]+" macro_speedup_kv "${macro_section}")
  string(REGEX MATCH "[0-9.]+" run_speedup "${macro_speedup_kv}")
  if("${run_speedup}" STREQUAL "")
    message(FATAL_ERROR "no macro speedup found in BENCH_simcore.json:\n${json${run}}")
  endif()
  if("${macro_speedup}" STREQUAL "" OR "${macro_speedup}" VERSION_LESS "${run_speedup}")
    set(macro_speedup "${run_speedup}")
  endif()
endforeach()
if(SANITIZED)
  message(STATUS "sanitized build: macro speedup ${macro_speedup} recorded, "
                 "wall-clock gate skipped")
elseif("${macro_speedup}" VERSION_LESS "1.0")
  message(FATAL_ERROR "macro calendar-queue speedup ${macro_speedup} < 1.0 "
                      "— the default wheel geometry is regressing the "
                      "end-to-end workload:\n${json1}")
endif()

# Determinism: event counts and schedule hashes must be identical across
# two separate processes. Strip the timing-dependent fields and compare.
foreach(run IN ITEMS 1 2)
  string(REGEX MATCHALL "\"(executed_events|schedule_hash|packets_sent|packets_delivered|key_schedules)\": \"?[0-9a-f]+\"?"
         stable_${run} "${json${run}}")
endforeach()
if(NOT "${stable_1}" STREQUAL "${stable_2}")
  message(FATAL_ERROR "nondeterministic event counts across runs:\n"
                      "run1: ${stable_1}\nrun2: ${stable_2}")
endif()
if("${stable_1}" STREQUAL "")
  message(FATAL_ERROR "no executed_events fields found in BENCH_simcore.json")
endif()
