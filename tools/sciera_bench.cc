// sciera_bench: the simulation-core benchmark harness.
//
// Three workloads. The first two run under BOTH scheduler backends so the
// calendar queue is always measured against the binary-heap baseline it
// replaced, with the schedule digests cross-checked (the ordering
// contract is not negotiable — a faster scheduler that reorders events is
// wrong):
//
//   micro:  a classic hold-model queue benchmark — a self-perpetuating
//           event population where every executed event schedules one
//           successor at a random future offset. Isolates raw scheduler
//           throughput and allocations per event (global operator new is
//           instrumented in this binary).
//   macro:  the full SCIERA topology under a synthetic many-flow PAN
//           workload (src/workload), end to end: path lookup,
//           serialization through the frame pool, link batching, SCMP.
//           Best-of-N reps per backend, alternating order, so a one-off
//           scheduling hiccup cannot flip the speedup sign.
//   router: the border-router MAC fast path — one transit router fed
//           same-tick frame batches, measured in packets/sec, heap
//           allocations per packet, and MAC-cache hit rate. The
//           pre-fix configuration (scalar frame-by-frame processing,
//           per-packet AES key schedule) is the baseline; the digests of
//           both configurations must match (batching is a perf
//           restructuring, not a behavior change).
//
// A fourth workload gates the sharded parallel core:
//
//   parallel: the macro workload again, but with the topology partitioned
//           into shards and executed by 1/2/4/8 worker threads. The
//           merged ScheduleDigest must be identical at every thread
//           count (the ordering contract extends to the parallel core);
//           the events/sec curve plus the host's core count are recorded
//           so scaling claims stay honest on small containers.
//
// Results land in BENCH_simcore.json (see --out). Exit status is nonzero
// if the heap and calendar runs disagree on digests or event counts, if
// the scalar and batched router runs do, or if the parallel digests
// diverge across thread counts.
//
// Usage: sciera_bench [--quick] [--router-only] [--parallel-only]
//                     [--shards N] [--out PATH]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "cli.h"
#include "crypto/aes128.h"
#include "dataplane/frame_pool.h"
#include "dataplane/router.h"
#include "simnet/link.h"
#include "simnet/simulator.h"
#include "topology/sciera_net.h"
#include "workload/workload.h"

// --- allocation instrumentation ---------------------------------------------
// Replacing global operator new lets the micro bench report real
// allocations per event, not a proxy. Relaxed atomic: the parallel
// workload allocates from shard worker threads, and a torn plain counter
// would corrupt the per-event numbers of every later section.
// The replacement set must be COMPLETE (throwing, nothrow, array, sized):
// a partial set leaves some variants to the runtime — under ASan that
// splits one logical allocation family across two allocators, and e.g.
// stable_sort's nothrow-new temporary buffer trips alloc-dealloc-mismatch.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace sciera {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double>(elapsed).count();
}

// --- micro: hold model -------------------------------------------------------

struct HoldResult {
  double events_per_sec = 0.0;
  double allocs_per_event = 0.0;
  std::uint64_t executed = 0;
  std::uint64_t schedule_hash = 0;
};

// Every executed event schedules one successor at now + U(0, horizon], so
// the pending population stays at `population` until the event budget
// drains. The lambda captures a single pointer and stays within
// std::function's small-buffer optimization — scheduling itself is what
// gets measured, not closure allocation.
// Hold horizon: a power of two (~1.07 simulated seconds) so offsets come
// from one raw RNG draw and a mask — the per-event workload cost stays
// negligible next to the scheduler operation being measured.
constexpr Duration kHoldHorizon = Duration{1} << 30;

struct HoldModel {
  simnet::Simulator& sim;
  Rng& rng;
  std::uint64_t remaining;

  void tick() {
    if (remaining == 0) return;
    --remaining;
    schedule_one();
  }
  void schedule_one() {
    const auto offset =
        1 + static_cast<Duration>(rng.next_u64() &
                                  static_cast<std::uint64_t>(kHoldHorizon - 1));
    sim.after(offset, [this] { tick(); });
  }
};

HoldResult run_hold(simnet::SchedulerKind kind, std::size_t population,
                    std::uint64_t budget) {
  simnet::SchedulerConfig config;
  config.kind = kind;
  // Sized so the steady-state population spreads to a handful of events
  // per bucket: 64k buckets x ~16us covers the ~1.07s hold horizon.
  config.bucket_width = Duration{1} << 14;
  config.bucket_count = std::size_t{1} << 16;
  simnet::Simulator sim{config};
  Rng rng{0xB31C, "hold"};
  HoldModel hold{sim, rng, budget};
  for (std::size_t i = 0; i < population; ++i) hold.schedule_one();

  const std::uint64_t allocs_before = g_alloc_count;
  const auto start = std::chrono::steady_clock::now();
  sim.run_all();
  const double elapsed = seconds_since(start);
  const std::uint64_t allocs = g_alloc_count - allocs_before;

  HoldResult result;
  result.executed = sim.executed_events();
  result.events_per_sec =
      elapsed > 0 ? static_cast<double>(result.executed) / elapsed : 0.0;
  result.allocs_per_event =
      static_cast<double>(allocs) / static_cast<double>(result.executed);
  result.schedule_hash = sim.schedule_hash();
  return result;
}

// --- macro: SCIERA topology + many-flow workload -----------------------------

struct MacroResult {
  double events_per_sec = 0.0;
  std::uint64_t executed = 0;
  std::uint64_t schedule_hash = 0;
  workload::WorkloadReport traffic;
};

MacroResult run_macro(const simnet::SchedulerConfig& scheduler,
                      const workload::WorkloadConfig& wconfig) {
  controlplane::ScionNetwork::Options options;
  options.scheduler = scheduler;
  controlplane::ScionNetwork net{topology::build_sciera(), options};
  auto matrix = workload::TrafficMatrix::Builder{}
                    .net(net)
                    .config(wconfig)
                    .build();
  if (!matrix.ok()) {
    std::fprintf(stderr, "workload build failed: %s\n",
                 matrix.error().to_string().c_str());
    std::exit(1);
  }
  if (auto status = (*matrix)->launch(); !status.ok()) {
    std::fprintf(stderr, "workload launch failed: %s\n",
                 status.error().to_string().c_str());
    std::exit(1);
  }
  const auto start = std::chrono::steady_clock::now();
  net.sim().run_all();
  const double elapsed = seconds_since(start);

  MacroResult result;
  result.executed = net.sim().executed_events();
  result.events_per_sec =
      elapsed > 0 ? static_cast<double>(result.executed) / elapsed : 0.0;
  result.schedule_hash = net.sim().schedule_hash();
  result.traffic = (*matrix)->report();
  return result;
}

MacroResult run_macro(simnet::SchedulerKind kind,
                      const workload::WorkloadConfig& wconfig) {
  simnet::SchedulerConfig scheduler;
  scheduler.kind = kind;
  return run_macro(scheduler, wconfig);
}

// --- parallel: sharded macro workload ---------------------------------------

struct ParallelScaling {
  std::size_t shards = 0;
  // Serial baseline: the identical workload on the single-shard legacy
  // core. Its digest intentionally differs from the sharded runs' (the
  // sharded core delivers cross-shard frames individually and enforces
  // the lookahead floor, so it executes a different — equally valid —
  // schedule); the parity contract is across THREAD COUNTS at a fixed
  // shard count.
  MacroResult serial;
  std::vector<std::size_t> threads;
  std::vector<MacroResult> runs;
  [[nodiscard]] bool parity() const {
    for (const MacroResult& run : runs) {
      if (run.schedule_hash != runs.front().schedule_hash ||
          run.executed != runs.front().executed) {
        return false;
      }
    }
    return !runs.empty();
  }
};

ParallelScaling run_parallel_scaling(std::size_t shards,
                                     const workload::WorkloadConfig& wconfig) {
  ParallelScaling scaling;
  scaling.shards = shards;
  scaling.serial = run_macro(simnet::SchedulerKind::kCalendarQueue, wconfig);
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    if (threads > shards) break;
    simnet::SchedulerConfig scheduler;
    scheduler.shards = shards;
    scheduler.threads = threads;
    scaling.threads.push_back(threads);
    scaling.runs.push_back(run_macro(scheduler, wconfig));
  }
  return scaling;
}

// --- router: border-router MAC fast path -------------------------------------

// The far end of the egress link: counts deliveries, parses nothing.
class BenchSink final : public simnet::Node {
 public:
  BenchSink() : simnet::Node("bench-sink") {}
  void receive(const simnet::MessagePtr&, const simnet::Arrival&) override {
    ++received_;
  }
  [[nodiscard]] std::uint64_t received() const { return received_; }

 private:
  std::uint64_t received_ = 0;
};

struct RouterResult {
  double packets_per_sec = 0.0;
  double allocs_per_packet = 0.0;
  double cache_hit_rate = 0.0;
  std::uint64_t packets = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t key_schedules = 0;
  std::uint64_t executed = 0;
  std::uint64_t schedule_hash = 0;
};

// One transit border router: pre-serialized packets across `flows`
// distinct segment timestamps (distinct MAC input blocks) arrive as
// same-tick batches on iface 1 and forward out iface 2 to a sink. The
// measured window starts after a warmup that fills the frame pool, the
// router's batch scratch, and the MAC cache — steady state is what
// campaigns run in. Scalar-legacy mode (batched=false plus a per-packet
// key schedule) reproduces the pre-fix hot path; both modes must execute
// the identical event schedule.
RouterResult run_router(bool batched, bool per_packet_keyschedule,
                        std::size_t flows, std::size_t rounds,
                        std::size_t batch_size) {
  using namespace dataplane;
  // Binary-heap scheduler: its event storage is one flat vector whose
  // capacity survives rounds, so steady-state scheduling is allocation-
  // free. The calendar wheel would charge first-touch bucket-vector
  // growth to the router as sim time walks across fresh buckets (~6
  // allocs per 5ms round until the wheel wraps once) — scheduler costs
  // belong to the scheduler benches above, not the router's alloc gate.
  simnet::SchedulerConfig sched;
  sched.kind = simnet::SchedulerKind::kBinaryHeap;
  simnet::Simulator sim{sched};
  const IsdAs ia = IsdAs::parse("71-225").value();
  const IsdAs dst_ia = IsdAs::parse("71-2:0:5c").value();
  const FwdKey key = derive_fwd_key(bytes_of("router-bench-master-secret"));

  BorderRouter::Config config;
  config.batched = batched;
  config.mac.per_packet_keyschedule = per_packet_keyschedule;
  BorderRouter router{sim, ia, key, config};
  BenchSink sink;
  simnet::Link egress{sim, simnet::LinkConfig{}, Rng{0xBE7C, "router-bench"}};
  egress.attach(0, &router, 2);
  egress.attach(1, &sink, 1);
  router.attach_iface(2, &egress, 0);

  std::vector<Bytes> wire;
  wire.reserve(flows);
  for (std::size_t f = 0; f < flows; ++f) {
    ScionPacket pkt;
    pkt.flow_id = static_cast<std::uint32_t>(f);
    pkt.dst = Address{dst_ia, 0x0A000001};
    pkt.src = Address{ia, 0x0A000002};
    InfoField info;
    info.construction_dir = true;
    info.seg_id = static_cast<std::uint16_t>(0x4000 + f);
    info.timestamp = 1'700'000'000 + static_cast<std::uint32_t>(f);
    HopField here;  // this router's hop: in over iface 1, out over iface 2
    here.exp_time = 255;
    here.cons_ingress = 1;
    here.cons_egress = 2;
    here.mac = compute_hop_mac(key, info.seg_id, info.timestamp, here);
    HopField next;  // the neighbor's final hop, never verified here
    next.exp_time = 255;
    next.cons_ingress = 7;
    next.cons_egress = 0;
    pkt.path.info = {info};
    pkt.path.seg_len = {2, 0, 0};
    pkt.path.hops = {here, next};
    pkt.payload = bytes_of("router-bench-payload");
    auto bytes = pkt.serialize();
    if (!bytes.ok()) {
      std::fprintf(stderr, "router bench packet serialization failed: %s\n",
                   bytes.error().to_string().c_str());
      std::exit(1);
    }
    wire.push_back(std::move(bytes.value()));
  }

  std::vector<simnet::MessagePtr> frame_batch;
  frame_batch.reserve(batch_size);
  std::size_t next_flow = 0;
  const auto fire_batch = [&] {
    frame_batch.clear();
    for (std::size_t i = 0; i < batch_size; ++i) {
      auto frame = FramePool::global().acquire();
      frame->scion_bytes.assign(wire[next_flow].begin(),
                                wire[next_flow].end());
      next_flow = (next_flow + 1) % flows;
      frame_batch.push_back(std::move(frame));
    }
    router.receive_batch(frame_batch,
                         simnet::Arrival{nullptr, 1, sim.now()});
    frame_batch.clear();  // drop our frame refs before draining deliveries
    sim.run_all();
  };
  for (int i = 0; i < 4; ++i) fire_batch();  // warmup

  const auto stats_before = router.stats();
  const std::uint64_t schedules_before = crypto::Aes128::key_schedules_run();
  const std::uint64_t allocs_before = g_alloc_count;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) fire_batch();
  const double elapsed = seconds_since(start);
  const std::uint64_t allocs = g_alloc_count - allocs_before;
  const auto stats = router.stats();

  RouterResult result;
  result.packets = rounds * batch_size;
  result.forwarded = stats.forwarded - stats_before.forwarded;
  result.key_schedules =
      crypto::Aes128::key_schedules_run() - schedules_before;
  const std::uint64_t hits = stats.mac_cache_hits - stats_before.mac_cache_hits;
  const std::uint64_t misses =
      stats.mac_cache_misses - stats_before.mac_cache_misses;
  result.cache_hit_rate =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;
  result.packets_per_sec =
      elapsed > 0 ? static_cast<double>(result.packets) / elapsed : 0.0;
  result.allocs_per_packet =
      static_cast<double>(allocs) / static_cast<double>(result.packets);
  result.executed = sim.executed_events();
  result.schedule_hash = sim.schedule_hash();
  if (sink.received() == 0 || result.forwarded != result.packets) {
    std::fprintf(stderr,
                 "router bench sanity failure: forwarded %llu of %llu, "
                 "sink saw %llu\n",
                 static_cast<unsigned long long>(result.forwarded),
                 static_cast<unsigned long long>(result.packets),
                 static_cast<unsigned long long>(sink.received()));
    std::exit(1);
  }
  return result;
}

void append_router_json(std::string& out, const char* name,
                        const RouterResult& r) {
  char buf[384];
  std::snprintf(
      buf, sizeof(buf),
      "    \"%s\": {\"packets_per_sec\": %.0f, \"allocs_per_packet\": %.3f, "
      "\"mac_cache_hit_rate\": %.3f, \"key_schedules\": %llu, "
      "\"executed_events\": %llu, \"schedule_hash\": \"%016llx\"}",
      name, r.packets_per_sec, r.allocs_per_packet, r.cache_hit_rate,
      static_cast<unsigned long long>(r.key_schedules),
      static_cast<unsigned long long>(r.executed),
      static_cast<unsigned long long>(r.schedule_hash));
  out += buf;
}

// The parallel_scaling section: shard geometry, the host's core count
// (so a flat curve on a one-core container reads as what it is), the
// serial single-shard baseline, and one curve entry per thread count with
// speedup relative to the one-thread sharded run. digest_parity is the
// gate the parallel smoke test enforces.
void append_parallel_json(std::string& out, const ParallelScaling& scaling,
                          const workload::WorkloadConfig& wconfig) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "  \"parallel_scaling\": {\n    \"shards\": %zu,\n"
      "    \"policy\": \"%s\",\n    \"host_cores\": %u,\n"
      "    \"hosts\": %zu,\n    \"flows\": %zu,\n"
      "    \"packets_per_flow\": %zu,\n",
      scaling.shards, simnet::shard_policy_name(simnet::ShardPolicy::kPerAs),
      std::thread::hardware_concurrency(), wconfig.hosts, wconfig.flows,
      wconfig.packets_per_flow);
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "    \"serial\": {\"events_per_sec\": %.0f, \"executed_events\": %llu, "
      "\"schedule_hash\": \"%016llx\"},\n",
      scaling.serial.events_per_sec,
      static_cast<unsigned long long>(scaling.serial.executed),
      static_cast<unsigned long long>(scaling.serial.schedule_hash));
  out += buf;
  out += "    \"curve\": [\n";
  const double base = scaling.runs.front().events_per_sec;
  for (std::size_t i = 0; i < scaling.runs.size(); ++i) {
    const MacroResult& run = scaling.runs[i];
    std::snprintf(
        buf, sizeof(buf),
        "      {\"threads\": %zu, \"events_per_sec\": %.0f, "
        "\"speedup\": %.2f, \"executed_events\": %llu, "
        "\"schedule_hash\": \"%016llx\"}%s\n",
        scaling.threads[i], run.events_per_sec,
        base > 0 ? run.events_per_sec / base : 0.0,
        static_cast<unsigned long long>(run.executed),
        static_cast<unsigned long long>(run.schedule_hash),
        i + 1 < scaling.runs.size() ? "," : "");
    out += buf;
  }
  out += "    ],\n";
  out += std::string("    \"digest_parity\": ") +
         (scaling.parity() ? "true" : "false") + "\n";
  out += "  }";
}

void print_parallel(const ParallelScaling& scaling) {
  std::printf("parallel sciera: %zu shards, host has %u core(s)...\n",
              scaling.shards, std::thread::hardware_concurrency());
  std::printf("  serial 1-shard: %12.0f events/s (%llu events)\n",
              scaling.serial.events_per_sec,
              static_cast<unsigned long long>(scaling.serial.executed));
  for (std::size_t i = 0; i < scaling.runs.size(); ++i) {
    const double base = scaling.runs.front().events_per_sec;
    std::printf("  %zu thread(s):    %12.0f events/s (%.2fx, %llu events)\n",
                scaling.threads[i], scaling.runs[i].events_per_sec,
                base > 0 ? scaling.runs[i].events_per_sec / base : 0.0,
                static_cast<unsigned long long>(scaling.runs[i].executed));
  }
  std::printf("  digest parity across thread counts: %s\n",
              scaling.parity() ? "OK" : "BROKEN");
}

void append_backend_json(std::string& out, const char* name, double eps,
                         std::uint64_t executed, std::uint64_t hash,
                         double allocs_per_event, bool with_allocs) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "    \"%s\": {\"events_per_sec\": %.0f, "
                "\"executed_events\": %llu, \"schedule_hash\": \"%016llx\"",
                name, eps, static_cast<unsigned long long>(executed),
                static_cast<unsigned long long>(hash));
  out += buf;
  if (with_allocs) {
    std::snprintf(buf, sizeof(buf), ", \"allocs_per_event\": %.3f",
                  allocs_per_event);
    out += buf;
  }
  out += "}";
}

}  // namespace
}  // namespace sciera

int main(int argc, char** argv) {
  using namespace sciera;
  bool quick = false;
  bool router_only = false;
  bool parallel_only = false;
  std::size_t shards = 8;
  std::string out_path = "BENCH_simcore.json";
  cli::FlagSet flags("sciera_bench",
                     "usage: sciera_bench [--quick] [--router-only] "
                     "[--parallel-only] [--shards N] [--out PATH]");
  flags.flag("--quick", &quick);
  flags.flag("--router-only", &router_only);
  flags.flag("--parallel-only", &parallel_only);
  flags.flag("--shards", &shards);
  flags.flag("--out", &out_path);
  if (!flags.parse(argc, argv)) return 2;
  if (!flags.positionals().empty()) return flags.usage();
  if (router_only && parallel_only) return flags.usage();
  {
    // Degenerate shard requests (zero shards) fail up front with the
    // simulator's own validation message rather than deep in a run.
    simnet::SchedulerConfig probe;
    probe.shards = shards;
    if (auto valid = simnet::validate_scheduler_config(probe); !valid.ok()) {
      std::fprintf(stderr, "sciera_bench: %s\n",
                   valid.error().message.c_str());
      return 2;
    }
  }

  workload::WorkloadConfig wconfig;
  wconfig.hosts = quick ? 8 : 16;
  wconfig.flows = quick ? 32 : 96;
  wconfig.packets_per_flow = quick ? 16 : 40;

  if (parallel_only) {
    std::printf("== sciera_bench (%s, parallel-only) ==\n",
                quick ? "quick" : "full");
    const auto scaling = run_parallel_scaling(shards, wconfig);
    print_parallel(scaling);
    std::string json;
    json += "{\n";
    json += "  \"schema\": \"sciera.bench.simcore.v2\",\n";
    json += std::string("  \"quick\": ") + (quick ? "true" : "false") + ",\n";
    append_parallel_json(json, scaling, wconfig);
    json += "\n}\n";
    if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    if (!scaling.parity() ||
        scaling.runs.front().traffic.packets_delivered == 0) {
      std::fprintf(stderr,
                   "FAIL: parallel digests diverge across thread counts "
                   "or the workload delivered nothing\n");
      return 1;
    }
    return 0;
  }

  // Router fast-path workload: 64 distinct MAC input blocks cycled
  // through same-tick batches of 32 — enough distinct flows that the
  // direct-mapped cache sees real (deterministic) collision evictions
  // rather than a single always-hot entry.
  const std::size_t router_flows = 64;
  const std::size_t router_batch = 32;
  const std::size_t router_rounds = quick ? 120 : 1500;

  std::printf("== sciera_bench (%s%s) ==\n", quick ? "quick" : "full",
              router_only ? ", router-only" : "");

  std::printf("router fast path: %zu flows, %zu rounds x %zu frames...\n",
              router_flows, router_rounds, router_batch);
  const auto router_scalar =
      run_router(/*batched=*/false, /*per_packet_keyschedule=*/true,
                 router_flows, router_rounds, router_batch);
  const auto router_batched =
      run_router(/*batched=*/true, /*per_packet_keyschedule=*/false,
                 router_flows, router_rounds, router_batch);
  const double router_speedup =
      router_scalar.packets_per_sec > 0
          ? router_batched.packets_per_sec / router_scalar.packets_per_sec
          : 0.0;
  const bool router_ok =
      router_scalar.schedule_hash == router_batched.schedule_hash &&
      router_scalar.executed == router_batched.executed &&
      router_batched.key_schedules == 0;
  std::printf(
      "  scalar-legacy:  %12.0f packets/s, %.3f allocs/packet, "
      "%llu key schedules\n",
      router_scalar.packets_per_sec, router_scalar.allocs_per_packet,
      static_cast<unsigned long long>(router_scalar.key_schedules));
  std::printf(
      "  batched-cached: %12.0f packets/s, %.3f allocs/packet, "
      "%llu key schedules, %.1f%% cache hits\n",
      router_batched.packets_per_sec, router_batched.allocs_per_packet,
      static_cast<unsigned long long>(router_batched.key_schedules),
      100.0 * router_batched.cache_hit_rate);
  std::printf("  speedup: %.2fx, digests %s\n", router_speedup,
              router_ok ? "match" : "MISMATCH");

  if (router_only) {
    std::string json;
    json += "{\n";
    json += "  \"schema\": \"sciera.bench.simcore.v2\",\n";
    json += std::string("  \"quick\": ") + (quick ? "true" : "false") + ",\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"router_fastpath\": {\n    \"flows\": %zu,\n"
                  "    \"batch_size\": %zu,\n    \"packets\": %llu,\n",
                  router_flows, router_batch,
                  static_cast<unsigned long long>(router_batched.packets));
    json += buf;
    append_router_json(json, "scalar_legacy", router_scalar);
    json += ",\n";
    append_router_json(json, "batched_cached", router_batched);
    std::snprintf(buf, sizeof(buf),
                  ",\n    \"speedup\": %.2f,\n    \"hashes_match\": %s\n"
                  "  }\n}\n",
                  router_speedup, router_ok ? "true" : "false");
    json += buf;
    if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    if (!router_ok) {
      std::fprintf(stderr,
                   "FAIL: scalar and batched router runs disagree\n");
      return 1;
    }
    return 0;
  }

  // Campaign-scale pending-event population (Section 5.4 runs hold
  // hundreds of thousands of in-flight probes): this is where the binary
  // heap's O(log n) pointer-chasing over a multi-megabyte array loses to
  // the wheel's O(1) bucket appends.
  const std::size_t hold_population = quick ? 20'000 : 2'000'000;
  const std::uint64_t hold_budget = quick ? 200'000 : 4'000'000;
  // Best-of-N per backend: one run's wall clock on a shared machine is
  // noise-bound; the best of three alternating-order reps is a stable
  // estimate of what each backend can do. Digests are unaffected (every
  // rep of a backend executes the identical schedule).
  const int macro_reps = 3;

  std::printf("micro hold model: population %zu, %llu events...\n",
              hold_population, static_cast<unsigned long long>(hold_budget));
  const auto micro_heap =
      run_hold(simnet::SchedulerKind::kBinaryHeap, hold_population, hold_budget);
  const auto micro_cal = run_hold(simnet::SchedulerKind::kCalendarQueue,
                                  hold_population, hold_budget);
  const double micro_speedup =
      micro_heap.events_per_sec > 0
          ? micro_cal.events_per_sec / micro_heap.events_per_sec
          : 0.0;
  std::printf("  binary-heap:    %12.0f events/s, %.3f allocs/event\n",
              micro_heap.events_per_sec, micro_heap.allocs_per_event);
  std::printf("  calendar-queue: %12.0f events/s, %.3f allocs/event\n",
              micro_cal.events_per_sec, micro_cal.allocs_per_event);
  std::printf("  speedup: %.2fx, digests %s\n", micro_speedup,
              micro_heap.schedule_hash == micro_cal.schedule_hash ? "match"
                                                                  : "MISMATCH");

  std::printf("macro SCIERA: %zu hosts, %zu flows x %zu packets, "
              "best of %d...\n",
              wconfig.hosts, wconfig.flows, wconfig.packets_per_flow,
              macro_reps);
  const auto pool_before = dataplane::FramePool::global().stats();
  MacroResult macro_heap;
  MacroResult macro_cal;
  for (int rep = 0; rep < macro_reps; ++rep) {
    const bool heap_first = rep % 2 == 0;
    const auto first = run_macro(heap_first
                                     ? simnet::SchedulerKind::kBinaryHeap
                                     : simnet::SchedulerKind::kCalendarQueue,
                                 wconfig);
    const auto second = run_macro(heap_first
                                      ? simnet::SchedulerKind::kCalendarQueue
                                      : simnet::SchedulerKind::kBinaryHeap,
                                  wconfig);
    const MacroResult& heap_rep = heap_first ? first : second;
    const MacroResult& cal_rep = heap_first ? second : first;
    if (rep == 0 || heap_rep.events_per_sec > macro_heap.events_per_sec) {
      macro_heap = heap_rep;
    }
    if (rep == 0 || cal_rep.events_per_sec > macro_cal.events_per_sec) {
      macro_cal = cal_rep;
    }
  }
  const auto pool_after = dataplane::FramePool::global().stats();
  const double macro_speedup =
      macro_heap.events_per_sec > 0
          ? macro_cal.events_per_sec / macro_heap.events_per_sec
          : 0.0;
  const std::uint64_t pool_acquired = pool_after.acquired - pool_before.acquired;
  const std::uint64_t pool_allocated =
      pool_after.allocated - pool_before.allocated;
  const double pool_reuse =
      pool_acquired > 0 ? 1.0 - static_cast<double>(pool_allocated) /
                                    static_cast<double>(pool_acquired)
                        : 0.0;
  std::printf("  binary-heap:    %12.0f events/s (%llu events)\n",
              macro_heap.events_per_sec,
              static_cast<unsigned long long>(macro_heap.executed));
  std::printf("  calendar-queue: %12.0f events/s (%llu events)\n",
              macro_cal.events_per_sec,
              static_cast<unsigned long long>(macro_cal.executed));
  std::printf(
      "  speedup: %.2fx, digests %s; frame pool reuse %.1f%% "
      "(%llu acquired, %llu allocated)\n",
      macro_speedup,
      macro_heap.schedule_hash == macro_cal.schedule_hash ? "match"
                                                          : "MISMATCH",
      100.0 * pool_reuse, static_cast<unsigned long long>(pool_acquired),
      static_cast<unsigned long long>(pool_allocated));

  const bool micro_ok = micro_heap.schedule_hash == micro_cal.schedule_hash &&
                        micro_heap.executed == micro_cal.executed;
  const bool macro_ok = macro_heap.schedule_hash == macro_cal.schedule_hash &&
                        macro_heap.executed == macro_cal.executed &&
                        macro_cal.traffic.packets_delivered > 0;

  const auto scaling = run_parallel_scaling(shards, wconfig);
  print_parallel(scaling);
  const bool parallel_ok =
      scaling.parity() && scaling.runs.front().traffic.packets_delivered > 0;

  // --- BENCH_simcore.json ----------------------------------------------------
  std::string json;
  json += "{\n";
  json += "  \"schema\": \"sciera.bench.simcore.v2\",\n";
  json += std::string("  \"quick\": ") + (quick ? "true" : "false") + ",\n";
  json += "  \"baseline_scheduler\": \"binary-heap\",\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"router_fastpath\": {\n    \"flows\": %zu,\n"
                "    \"batch_size\": %zu,\n    \"packets\": %llu,\n",
                router_flows, router_batch,
                static_cast<unsigned long long>(router_batched.packets));
  json += buf;
  append_router_json(json, "scalar_legacy", router_scalar);
  json += ",\n";
  append_router_json(json, "batched_cached", router_batched);
  std::snprintf(buf, sizeof(buf),
                ",\n    \"speedup\": %.2f,\n    \"hashes_match\": %s\n  },\n",
                router_speedup, router_ok ? "true" : "false");
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"micro_hold\": {\n    \"population\": %zu,\n",
                hold_population);
  json += buf;
  append_backend_json(json, "binary_heap", micro_heap.events_per_sec,
                      micro_heap.executed, micro_heap.schedule_hash,
                      micro_heap.allocs_per_event, true);
  json += ",\n";
  append_backend_json(json, "calendar_queue", micro_cal.events_per_sec,
                      micro_cal.executed, micro_cal.schedule_hash,
                      micro_cal.allocs_per_event, true);
  std::snprintf(buf, sizeof(buf),
                ",\n    \"speedup\": %.2f,\n    \"hashes_match\": %s\n  },\n",
                micro_speedup, micro_ok ? "true" : "false");
  json += buf;
  std::snprintf(
      buf, sizeof(buf),
      "  \"macro_sciera\": {\n    \"hosts\": %zu,\n    \"flows\": %zu,\n"
      "    \"reps\": %d,\n"
      "    \"packets_sent\": %llu,\n    \"packets_delivered\": %llu,\n"
      "    \"send_failures\": %llu,\n    \"failover_sends\": %llu,\n",
      wconfig.hosts, wconfig.flows, macro_reps,
      static_cast<unsigned long long>(macro_cal.traffic.packets_sent),
      static_cast<unsigned long long>(macro_cal.traffic.packets_delivered),
      static_cast<unsigned long long>(macro_cal.traffic.send_failures),
      static_cast<unsigned long long>(macro_cal.traffic.failover_sends));
  json += buf;
  append_backend_json(json, "binary_heap", macro_heap.events_per_sec,
                      macro_heap.executed, macro_heap.schedule_hash, 0.0,
                      false);
  json += ",\n";
  append_backend_json(json, "calendar_queue", macro_cal.events_per_sec,
                      macro_cal.executed, macro_cal.schedule_hash, 0.0, false);
  std::snprintf(
      buf, sizeof(buf),
      ",\n    \"speedup\": %.2f,\n    \"hashes_match\": %s,\n"
      "    \"frame_pool\": {\"acquired\": %llu, \"allocated\": %llu, "
      "\"reuse_rate\": %.3f}\n  },\n",
      macro_speedup, macro_ok ? "true" : "false",
      static_cast<unsigned long long>(pool_acquired),
      static_cast<unsigned long long>(pool_allocated), pool_reuse);
  json += buf;
  append_parallel_json(json, scaling, wconfig);
  json += "\n}\n";

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  if (!micro_ok || !macro_ok || !router_ok || !parallel_ok) {
    std::fprintf(stderr,
                 "FAIL: paired runs disagree (micro_ok=%d macro_ok=%d "
                 "router_ok=%d parallel_ok=%d)\n",
                 micro_ok, macro_ok, router_ok, parallel_ok);
    return 1;
  }
  return 0;
}
