// sciera_bench: the simulation-core benchmark harness.
//
// Two workloads, each run under BOTH scheduler backends so the calendar
// queue is always measured against the binary-heap baseline it replaced,
// with the schedule digests cross-checked (the ordering contract is not
// negotiable — a faster scheduler that reorders events is wrong):
//
//   micro: a classic hold-model queue benchmark — a self-perpetuating
//          event population where every executed event schedules one
//          successor at a random future offset. Isolates raw scheduler
//          throughput and allocations per event (global operator new is
//          instrumented in this binary).
//   macro: the full SCIERA topology under a synthetic many-flow PAN
//          workload (src/workload), end to end: path lookup, serialization
//          through the frame pool, link batching, SCMP.
//
// Results land in BENCH_simcore.json (see --out). Exit status is nonzero
// if the heap and calendar runs disagree on digests or event counts.
//
// Usage: sciera_bench [--quick] [--out PATH]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "dataplane/frame_pool.h"
#include "simnet/simulator.h"
#include "topology/sciera_net.h"
#include "workload/workload.h"

// --- allocation instrumentation ---------------------------------------------
// Replacing global operator new lets the micro bench report real
// allocations per event, not a proxy. Single-threaded tool; plain counter.
// The replacement set must be COMPLETE (throwing, nothrow, array, sized):
// a partial set leaves some variants to the runtime — under ASan that
// splits one logical allocation family across two allocators, and e.g.
// stable_sort's nothrow-new temporary buffer trips alloc-dealloc-mismatch.
namespace {
std::uint64_t g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_alloc_count;
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace sciera {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double>(elapsed).count();
}

// --- micro: hold model -------------------------------------------------------

struct HoldResult {
  double events_per_sec = 0.0;
  double allocs_per_event = 0.0;
  std::uint64_t executed = 0;
  std::uint64_t schedule_hash = 0;
};

// Every executed event schedules one successor at now + U(0, horizon], so
// the pending population stays at `population` until the event budget
// drains. The lambda captures a single pointer and stays within
// std::function's small-buffer optimization — scheduling itself is what
// gets measured, not closure allocation.
// Hold horizon: a power of two (~1.07 simulated seconds) so offsets come
// from one raw RNG draw and a mask — the per-event workload cost stays
// negligible next to the scheduler operation being measured.
constexpr Duration kHoldHorizon = Duration{1} << 30;

struct HoldModel {
  simnet::Simulator& sim;
  Rng& rng;
  std::uint64_t remaining;

  void tick() {
    if (remaining == 0) return;
    --remaining;
    schedule_one();
  }
  void schedule_one() {
    const auto offset =
        1 + static_cast<Duration>(rng.next_u64() &
                                  static_cast<std::uint64_t>(kHoldHorizon - 1));
    sim.after(offset, [this] { tick(); });
  }
};

HoldResult run_hold(simnet::SchedulerKind kind, std::size_t population,
                    std::uint64_t budget) {
  simnet::SchedulerConfig config;
  config.kind = kind;
  // Sized so the steady-state population spreads to a handful of events
  // per bucket: 64k buckets x ~16us covers the ~1.07s hold horizon.
  config.bucket_width = Duration{1} << 14;
  config.bucket_count = std::size_t{1} << 16;
  simnet::Simulator sim{config};
  Rng rng{0xB31C, "hold"};
  HoldModel hold{sim, rng, budget};
  for (std::size_t i = 0; i < population; ++i) hold.schedule_one();

  const std::uint64_t allocs_before = g_alloc_count;
  const auto start = std::chrono::steady_clock::now();
  sim.run_all();
  const double elapsed = seconds_since(start);
  const std::uint64_t allocs = g_alloc_count - allocs_before;

  HoldResult result;
  result.executed = sim.executed_events();
  result.events_per_sec =
      elapsed > 0 ? static_cast<double>(result.executed) / elapsed : 0.0;
  result.allocs_per_event =
      static_cast<double>(allocs) / static_cast<double>(result.executed);
  result.schedule_hash = sim.schedule_hash();
  return result;
}

// --- macro: SCIERA topology + many-flow workload -----------------------------

struct MacroResult {
  double events_per_sec = 0.0;
  std::uint64_t executed = 0;
  std::uint64_t schedule_hash = 0;
  workload::WorkloadReport traffic;
};

MacroResult run_macro(simnet::SchedulerKind kind,
                      const workload::WorkloadConfig& wconfig) {
  controlplane::ScionNetwork::Options options;
  options.scheduler.kind = kind;
  controlplane::ScionNetwork net{topology::build_sciera(), options};
  workload::TrafficMatrix matrix{net, wconfig};
  if (auto status = matrix.launch(); !status.ok()) {
    std::fprintf(stderr, "workload launch failed: %s\n",
                 status.error().to_string().c_str());
    std::exit(1);
  }
  const auto start = std::chrono::steady_clock::now();
  net.sim().run_all();
  const double elapsed = seconds_since(start);

  MacroResult result;
  result.executed = net.sim().executed_events();
  result.events_per_sec =
      elapsed > 0 ? static_cast<double>(result.executed) / elapsed : 0.0;
  result.schedule_hash = net.sim().schedule_hash();
  result.traffic = matrix.report();
  return result;
}

void append_backend_json(std::string& out, const char* name, double eps,
                         std::uint64_t executed, std::uint64_t hash,
                         double allocs_per_event, bool with_allocs) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "    \"%s\": {\"events_per_sec\": %.0f, "
                "\"executed_events\": %llu, \"schedule_hash\": \"%016llx\"",
                name, eps, static_cast<unsigned long long>(executed),
                static_cast<unsigned long long>(hash));
  out += buf;
  if (with_allocs) {
    std::snprintf(buf, sizeof(buf), ", \"allocs_per_event\": %.3f",
                  allocs_per_event);
    out += buf;
  }
  out += "}";
}

}  // namespace
}  // namespace sciera

int main(int argc, char** argv) {
  using namespace sciera;
  bool quick = false;
  std::string out_path = "BENCH_simcore.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: sciera_bench [--quick] [--out PATH]\n");
      return 2;
    }
  }

  // Campaign-scale pending-event population (Section 5.4 runs hold
  // hundreds of thousands of in-flight probes): this is where the binary
  // heap's O(log n) pointer-chasing over a multi-megabyte array loses to
  // the wheel's O(1) bucket appends.
  const std::size_t hold_population = quick ? 20'000 : 2'000'000;
  const std::uint64_t hold_budget = quick ? 200'000 : 4'000'000;
  workload::WorkloadConfig wconfig;
  wconfig.hosts = quick ? 8 : 16;
  wconfig.flows = quick ? 24 : 96;
  wconfig.packets_per_flow = quick ? 10 : 40;

  std::printf("== sciera_bench (%s) ==\n", quick ? "quick" : "full");

  std::printf("micro hold model: population %zu, %llu events...\n",
              hold_population, static_cast<unsigned long long>(hold_budget));
  const auto micro_heap =
      run_hold(simnet::SchedulerKind::kBinaryHeap, hold_population, hold_budget);
  const auto micro_cal = run_hold(simnet::SchedulerKind::kCalendarQueue,
                                  hold_population, hold_budget);
  const double micro_speedup =
      micro_heap.events_per_sec > 0
          ? micro_cal.events_per_sec / micro_heap.events_per_sec
          : 0.0;
  std::printf("  binary-heap:    %12.0f events/s, %.3f allocs/event\n",
              micro_heap.events_per_sec, micro_heap.allocs_per_event);
  std::printf("  calendar-queue: %12.0f events/s, %.3f allocs/event\n",
              micro_cal.events_per_sec, micro_cal.allocs_per_event);
  std::printf("  speedup: %.2fx, digests %s\n", micro_speedup,
              micro_heap.schedule_hash == micro_cal.schedule_hash ? "match"
                                                                  : "MISMATCH");

  std::printf("macro SCIERA: %zu hosts, %zu flows x %zu packets...\n",
              wconfig.hosts, wconfig.flows, wconfig.packets_per_flow);
  const auto pool_before = dataplane::FramePool::global().stats();
  const auto macro_heap = run_macro(simnet::SchedulerKind::kBinaryHeap, wconfig);
  const auto macro_cal =
      run_macro(simnet::SchedulerKind::kCalendarQueue, wconfig);
  const auto pool_after = dataplane::FramePool::global().stats();
  const double macro_speedup =
      macro_heap.events_per_sec > 0
          ? macro_cal.events_per_sec / macro_heap.events_per_sec
          : 0.0;
  const std::uint64_t pool_acquired = pool_after.acquired - pool_before.acquired;
  const std::uint64_t pool_allocated =
      pool_after.allocated - pool_before.allocated;
  const double pool_reuse =
      pool_acquired > 0 ? 1.0 - static_cast<double>(pool_allocated) /
                                    static_cast<double>(pool_acquired)
                        : 0.0;
  std::printf("  binary-heap:    %12.0f events/s (%llu events)\n",
              macro_heap.events_per_sec,
              static_cast<unsigned long long>(macro_heap.executed));
  std::printf("  calendar-queue: %12.0f events/s (%llu events)\n",
              macro_cal.events_per_sec,
              static_cast<unsigned long long>(macro_cal.executed));
  std::printf(
      "  speedup: %.2fx, digests %s; frame pool reuse %.1f%% "
      "(%llu acquired, %llu allocated)\n",
      macro_speedup,
      macro_heap.schedule_hash == macro_cal.schedule_hash ? "match"
                                                          : "MISMATCH",
      100.0 * pool_reuse, static_cast<unsigned long long>(pool_acquired),
      static_cast<unsigned long long>(pool_allocated));

  const bool micro_ok = micro_heap.schedule_hash == micro_cal.schedule_hash &&
                        micro_heap.executed == micro_cal.executed;
  const bool macro_ok = macro_heap.schedule_hash == macro_cal.schedule_hash &&
                        macro_heap.executed == macro_cal.executed &&
                        macro_cal.traffic.packets_delivered > 0;

  // --- BENCH_simcore.json ----------------------------------------------------
  std::string json;
  json += "{\n";
  json += "  \"schema\": \"sciera.bench.simcore.v1\",\n";
  json += std::string("  \"quick\": ") + (quick ? "true" : "false") + ",\n";
  json += "  \"baseline_scheduler\": \"binary-heap\",\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"micro_hold\": {\n    \"population\": %zu,\n",
                hold_population);
  json += buf;
  append_backend_json(json, "binary_heap", micro_heap.events_per_sec,
                      micro_heap.executed, micro_heap.schedule_hash,
                      micro_heap.allocs_per_event, true);
  json += ",\n";
  append_backend_json(json, "calendar_queue", micro_cal.events_per_sec,
                      micro_cal.executed, micro_cal.schedule_hash,
                      micro_cal.allocs_per_event, true);
  std::snprintf(buf, sizeof(buf),
                ",\n    \"speedup\": %.2f,\n    \"hashes_match\": %s\n  },\n",
                micro_speedup, micro_ok ? "true" : "false");
  json += buf;
  std::snprintf(
      buf, sizeof(buf),
      "  \"macro_sciera\": {\n    \"hosts\": %zu,\n    \"flows\": %zu,\n"
      "    \"packets_sent\": %llu,\n    \"packets_delivered\": %llu,\n"
      "    \"send_failures\": %llu,\n    \"failover_sends\": %llu,\n",
      wconfig.hosts, wconfig.flows,
      static_cast<unsigned long long>(macro_cal.traffic.packets_sent),
      static_cast<unsigned long long>(macro_cal.traffic.packets_delivered),
      static_cast<unsigned long long>(macro_cal.traffic.send_failures),
      static_cast<unsigned long long>(macro_cal.traffic.failover_sends));
  json += buf;
  append_backend_json(json, "binary_heap", macro_heap.events_per_sec,
                      macro_heap.executed, macro_heap.schedule_hash, 0.0,
                      false);
  json += ",\n";
  append_backend_json(json, "calendar_queue", macro_cal.events_per_sec,
                      macro_cal.executed, macro_cal.schedule_hash, 0.0, false);
  std::snprintf(
      buf, sizeof(buf),
      ",\n    \"speedup\": %.2f,\n    \"hashes_match\": %s,\n"
      "    \"frame_pool\": {\"acquired\": %llu, \"allocated\": %llu, "
      "\"reuse_rate\": %.3f}\n  }\n}\n",
      macro_speedup, macro_ok ? "true" : "false",
      static_cast<unsigned long long>(pool_acquired),
      static_cast<unsigned long long>(pool_allocated), pool_reuse);
  json += buf;

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  if (!micro_ok || !macro_ok) {
    std::fprintf(stderr,
                 "FAIL: scheduler backends disagree (micro_ok=%d macro_ok=%d)\n",
                 micro_ok, macro_ok);
    return 1;
  }
  return 0;
}
