# Analyzer self-test: sciera_analyze over the golden fixture tree
# (tests/analyze_fixtures) must produce byte-identical JSON to the
# checked-in expected.json — one positive and one suppressed case per
# rule, so both detection and the NOLINT grammar are covered. The run
# must exit 1 (fixtures contain real findings); a 0 exit means detection
# silently broke.
#
# Expected variables: BIN (sciera_analyze), FIXTURES (fixture root),
# OUT_DIR (scratch dir).
if(NOT DEFINED BIN OR NOT DEFINED FIXTURES OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "BIN, FIXTURES and OUT_DIR must be defined")
endif()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(actual "${OUT_DIR}/findings.json")

execute_process(
  COMMAND "${BIN}" --json "${FIXTURES}" src
  OUTPUT_FILE "${actual}"
  RESULT_VARIABLE status)
if(NOT status EQUAL 1)
  message(FATAL_ERROR
          "sciera_analyze over the fixture tree exited ${status}, expected 1 "
          "(fixtures contain deliberate findings; 0 means detection broke)")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${actual}" "${FIXTURES}/expected.json"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  file(READ "${actual}" got)
  message(FATAL_ERROR
          "analyzer findings diverge from tests/analyze_fixtures/expected.json"
          " — if a rule legitimately changed, regenerate with\n"
          "  sciera_analyze --json <repo>/tests/analyze_fixtures src > "
          "tests/analyze_fixtures/expected.json\ngot:\n${got}")
endif()
