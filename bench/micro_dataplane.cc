// Data-plane microbenchmarks: the per-packet work a border router does —
// hop-field MAC computation/verification (the fast path), full header
// serialization/parsing, and end-to-end per-hop processing. Also the raw
// crypto primitives underneath.
#include <benchmark/benchmark.h>

#include "controlplane/control_plane.h"
#include "crypto/ed25519.h"
#include "crypto/sha256.h"
#include "topology/sciera_net.h"

namespace {

using namespace sciera;

dataplane::FwdKey bench_key() {
  return dataplane::derive_fwd_key(bytes_of("bench-master-secret"));
}

void BM_HopMacCompute(benchmark::State& state) {
  const auto key = bench_key();
  dataplane::HopField hop;
  hop.cons_ingress = 3;
  hop.cons_egress = 7;
  std::uint16_t beta = 0x1234;
  for (auto _ : state) {
    auto mac = dataplane::compute_hop_mac(key, beta, 1700000000, hop);
    benchmark::DoNotOptimize(mac);
    beta = dataplane::chain_beta(beta, mac);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HopMacCompute);

void BM_HopMacVerify(benchmark::State& state) {
  const auto key = bench_key();
  dataplane::HopField hop;
  hop.cons_ingress = 3;
  hop.cons_egress = 7;
  hop.mac = dataplane::compute_hop_mac(key, 0x1234, 1700000000, hop);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dataplane::verify_hop_mac(key, 0x1234, 1700000000, hop));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HopMacVerify);

dataplane::ScionPacket make_packet(std::size_t hops, std::size_t payload) {
  dataplane::ScionPacket pkt;
  pkt.dst = {IsdAs::parse("71-2:0:5c").value(), 1};
  pkt.src = {IsdAs::parse("71-225").value(), 2};
  pkt.path.info.push_back({true, false, 1, 1700000000});
  pkt.path.seg_len[0] = static_cast<std::uint8_t>(hops);
  for (std::size_t i = 0; i < hops; ++i) {
    dataplane::HopField hop;
    hop.cons_ingress = static_cast<IfaceId>(i);
    hop.cons_egress = static_cast<IfaceId>(i + 1);
    pkt.path.hops.push_back(hop);
  }
  pkt.payload.assign(payload, 0xAB);
  return pkt;
}

void BM_PacketSerialize(benchmark::State& state) {
  const auto pkt = make_packet(static_cast<std::size_t>(state.range(0)), 1200);
  for (auto _ : state) {
    auto bytes = pkt.serialize();
    benchmark::DoNotOptimize(bytes);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pkt.wire_size()));
}
BENCHMARK(BM_PacketSerialize)->Arg(3)->Arg(8)->Arg(16);

void BM_PacketParse(benchmark::State& state) {
  const auto bytes =
      make_packet(static_cast<std::size_t>(state.range(0)), 1200)
          .serialize()
          .value();
  for (auto _ : state) {
    auto pkt = dataplane::ScionPacket::parse(bytes);
    benchmark::DoNotOptimize(pkt);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_PacketParse)->Arg(3)->Arg(8)->Arg(16);

// Full end-to-end echo over the real SCIERA data plane: cost of one ping
// through every router on a transatlantic path (control-plane excluded).
void BM_EndToEndEcho(benchmark::State& state) {
  static controlplane::ScionNetwork net{topology::build_sciera()};
  namespace a = topology::ases;
  static const auto paths = net.paths(a::uva(), a::ovgu());
  const auto& path = paths.front();
  int received = 0;
  const dataplane::Address host{a::uva(), 77};
  (void)net.register_host(host, [&](const dataplane::ScionPacket&, SimTime) {
    ++received;
  });
  std::uint16_t seq = 0;
  for (auto _ : state) {
    dataplane::ScionPacket pkt;
    pkt.src = host;
    pkt.dst = {a::ovgu(), 1};
    pkt.next_hdr = dataplane::kProtoScmp;
    pkt.path = path.dataplane_path;
    pkt.payload = dataplane::make_echo_request(1, seq++).serialize();
    (void)net.send_from_host(pkt);
    net.sim().run_for(kSecond);
  }
  net.unregister_host(host);
  state.SetItemsProcessed(state.iterations());
  state.counters["replies"] = received;
}
BENCHMARK(BM_EndToEndEcho)->Unit(benchmark::kMicrosecond);

void BM_Sha256(benchmark::State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)), 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Ed25519Sign(benchmark::State& state) {
  crypto::Ed25519::Seed seed{};
  seed[0] = 42;
  const Bytes msg = bytes_of("pcb entry payload for signing benchmarks");
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Ed25519::sign(seed, msg));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Ed25519Sign)->Unit(benchmark::kMicrosecond);

void BM_Ed25519Verify(benchmark::State& state) {
  crypto::Ed25519::Seed seed{};
  seed[0] = 42;
  const Bytes msg = bytes_of("pcb entry payload for signing benchmarks");
  const auto pk = crypto::Ed25519::public_key(seed);
  const auto sig = crypto::Ed25519::sign(seed, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Ed25519::verify(pk, msg, sig));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Ed25519Verify)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
