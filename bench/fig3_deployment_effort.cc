// Figure 3: SCIERA deployment and estimated effort over time — the
// learning-curve story of Section 5.3 / Appendix C.
#include "bench_common.h"
#include "deploy/effort.h"

using namespace sciera;
using namespace sciera::deploy;

int main() {
  bench::print_header(
      "Figure 3 — SCIERA deployment and estimated effort over time",
      "initial setups demanded significant effort; subsequent deployments "
      "of the same type were simplified (experience + automation + NSP "
      "familiarity)");

  const auto timeline = effort_timeline(sciera_deployments());

  analysis::Series effort_series{"effort", {}};
  std::printf("%-20s %-9s %-22s %8s\n", "deployment", "date", "kind",
              "effort");
  for (const auto& point : timeline) {
    std::printf("%-20s %04d-%02d  %-22s %8.2f\n",
                point.deployment.name.c_str(), point.deployment.year,
                point.deployment.month,
                connection_kind_name(point.deployment.kind), point.effort);
    effort_series.points.emplace_back(point.deployment.timeline_month(),
                                      point.effort);
  }
  std::printf("\n%s\n",
              analysis::render_chart({effort_series},
                                     "months since Jan 2022",
                                     "estimated effort (person-weeks)")
                  .c_str());

  // Shape checks.
  double first_year_total = 0, last_year_total = 0;
  int first_year_n = 0, last_year_n = 0;
  double max_effort = 0;
  std::string max_name;
  for (const auto& point : timeline) {
    if (point.deployment.year <= 2023 && point.deployment.month <= 12 &&
        point.deployment.year == 2022) {
      first_year_total += point.effort;
      ++first_year_n;
    }
    if (point.deployment.year == 2025) {
      last_year_total += point.effort;
      ++last_year_n;
    }
    if (point.effort > max_effort) {
      max_effort = point.effort;
      max_name = point.deployment.name;
    }
  }
  const double first_mean = first_year_n ? first_year_total / first_year_n : 0;
  const double last_mean = last_year_n ? last_year_total / last_year_n : 0;
  std::printf("mean effort 2022: %.1f | mean effort 2025: %.1f\n\n",
              first_mean, last_mean);

  bench::print_check(max_name == "GEANT",
                     "the first core deployment (GEANT) cost the most");
  bench::print_check(last_mean < first_mean / 2,
                     "2025 deployments are far cheaper than 2022 ones");
  bench::print_check(timeline.size() >= 20, "all Figure 3 sites present");
  return 0;
}
