// Section 5.6: the operator survey — regenerates every percentage the
// paper reports from the encoded response records.
#include "bench_common.h"
#include "deploy/survey.h"

using namespace sciera;
using namespace sciera::deploy;

int main() {
  bench::print_header(
      "Section 5.6 — operator survey (CAPEX/OPEX/deployment experience)",
      "37.5% set up within a month; 75% spent <20k USD on hardware; 75% "
      "rate OPEX comparable or lower; 87.5% spend <10% of workload on "
      "SCIERA");

  const auto responses = survey_responses();
  const auto summary = summarize(responses);
  std::printf("%s\n", render_summary(summary).c_str());

  bench::print_check(summary.respondents == 8, "eight respondents");
  bench::print_check(summary.pct_setup_under_month == 37.5,
                     "37.5% completed setup within one month");
  bench::print_check(summary.pct_hardware_under_20k == 75.0,
                     "75% spent under 20k USD on hardware");
  bench::print_check(summary.pct_no_licensing == 62.5,
                     "62.5% incurred no licensing costs (open source + L2)");
  bench::print_check(summary.pct_opex_comparable_or_lower == 75.0,
                     "75% rate OPEX comparable or lower");
  bench::print_check(summary.pct_under_10pct_workload == 87.5,
                     "87.5% spend <10% of their workload on SCIERA");
  bench::print_check(summary.pct_vendor_support_rare == 62.5,
                     "62.5% needed vendor support fewer than 3 times/year");
  return 0;
}
