// Figure 10c: impact of random link failures on AS connectivity —
// multipath vs a single-(shortest-)path alternative, 100 runs.
#include "analysis/resilience.h"
#include "bench_common.h"

using namespace sciera;

int main() {
  bench::print_header(
      "Figure 10c — AS pairs with connectivity vs fraction of links removed",
      "multipath keeps ~90% of pairs connected at 20% links removed, "
      "single-path drops to ~50%");

  const topology::Topology topo = topology::build_sciera();
  analysis::ResilienceOptions options;
  options.runs = 100;
  const auto points = analysis::link_failure_resilience(topo, options);

  analysis::Series multi{"Multipath", {}};
  analysis::Series single{"Singlepath", {}};
  for (const auto& point : points) {
    multi.points.emplace_back(100.0 * point.fraction_links_removed,
                              100.0 * point.multipath_connectivity);
    single.points.emplace_back(100.0 * point.fraction_links_removed,
                               100.0 * point.singlepath_connectivity);
  }
  std::printf("%s\n", analysis::render_chart(
                          {multi, single}, "fraction of links removed (%)",
                          "AS pairs with connectivity (%)")
                          .c_str());

  auto at = [&](double fraction) {
    const analysis::ResiliencePoint* best = &points.front();
    for (const auto& point : points) {
      if (std::abs(point.fraction_links_removed - fraction) <
          std::abs(best->fraction_links_removed - fraction)) {
        best = &point;
      }
    }
    return *best;
  };

  std::printf("%-10s %12s %12s\n", "removed", "multipath", "singlepath");
  for (double f : {0.1, 0.2, 0.3, 0.5, 0.7}) {
    const auto point = at(f);
    std::printf("%9.0f%% %11.1f%% %11.1f%%\n",
                100 * point.fraction_links_removed,
                100 * point.multipath_connectivity,
                100 * point.singlepath_connectivity);
  }
  std::printf("\n");

  const auto p20 = at(0.2);
  bench::print_check(p20.multipath_connectivity > 0.75,
                     "multipath: most pairs still connected at 20% removed");
  bench::print_check(
      p20.singlepath_connectivity < p20.multipath_connectivity - 0.2,
      "single-path loses far more pairs at 20% removed");
  bench::print_check(points.front().multipath_connectivity == 1.0 &&
                         points.back().multipath_connectivity == 0.0,
                     "curves span full connectivity to none");
  return 0;
}
