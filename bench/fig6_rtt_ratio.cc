// Figure 6: CDF of per-AS-pair mean RTT ratio (SCION / IP), with the three
// outlier sets the paper annotates.
#include "bench_common.h"

using namespace sciera;

int main() {
  bench::print_header(
      "Figure 6 — CDF of the RTT ratio of SCION compared to IP per AS pair",
      "a sizable set of pairs faster over SCION; ~80% below 1.25x; "
      "outliers: KREONET link outage detours, BRIDGES instability "
      "(UVa/Princeton/Equinix), UFMS->Equinix routed through GEANT");

  bench::World world;
  const auto result = bench::run_standard_campaign(world);
  const auto ratios = analysis::pair_ratios(result);

  std::vector<double> values;
  for (const auto& ratio : ratios) values.push_back(ratio.ratio);
  const analysis::Cdf cdf{values};

  std::printf("%s\n",
              analysis::render_chart(
                  {analysis::cdf_series("SCION/IP ratio", cdf.sorted_samples())},
                  "RTT ratio (SCION / IP)", "CDF over AS pairs")
                  .c_str());

  std::printf("pairs: %zu | below 1.0: %.1f%% | below 1.25: %.1f%% | max "
              "%.2f\n\n",
              cdf.size(), 100.0 * cdf.fraction_below(1.0),
              100.0 * cdf.fraction_below(1.25), cdf.max());

  std::printf("top outlier pairs (the paper's annotated sets):\n");
  namespace a = topology::ases;
  for (std::size_t i = ratios.size() > 8 ? ratios.size() - 8 : 0;
       i < ratios.size(); ++i) {
    std::printf("  %-12s -> %-12s ratio %5.2f  (scion %6.1f ms, ip %6.1f ms)\n",
                ratios[i].src.to_string().c_str(),
                ratios[i].dst.to_string().c_str(), ratios[i].ratio,
                ratios[i].mean_scion_ms, ratios[i].mean_ip_ms);
  }
  std::printf("\n");

  double ufms_equinix = 0;
  bool bridges_outlier = false;
  for (const auto& ratio : ratios) {
    if (ratio.src == a::ufms() && ratio.dst == a::equinix()) {
      ufms_equinix = ratio.ratio;
    }
    const bool bridges_pair =
        (ratio.src == a::uva() && ratio.dst == a::equinix()) ||
        (ratio.src == a::equinix() && ratio.dst == a::uva());
    if (bridges_pair && ratio.ratio > cdf.median()) bridges_outlier = true;
  }

  bench::print_check(cdf.fraction_below(1.0) > 0.25,
                     "a sizable set of pairs sees lower latency over SCION");
  bench::print_check(cdf.fraction_below(1.25) > 0.75,
                     "~80% of pairs below 1.25x inflation");
  bench::print_check(cdf.max() > 1.5, "outlier pairs exist (>1.5x)");
  bench::print_check(ufms_equinix > std::max(1.2, cdf.median()),
                     "UFMS->Equinix (SCION via GEANT) is an outlier");
  bench::print_check(bridges_outlier,
                     "BRIDGES-instability pairs sit above the median");
  return 0;
}
