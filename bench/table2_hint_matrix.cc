// Table 2 (Appendix A): preferred hinting mechanisms vs the technologies
// present in the target network.
#include "bench_common.h"
#include "endhost/hints.h"

using namespace sciera;
using namespace sciera::endhost;

int main() {
  bench::print_header(
      "Table 2 — hinting mechanisms vs existing network technologies",
      "DHCP options need DHCP leases; DNS mechanisms need a search domain; "
      "mDNS works even on static-IP networks; IPv6 NDP needs RAs");

  struct Column {
    const char* name;
    NetworkEnvironment env;
  };
  NetworkEnvironment static_ips;
  static_ips.static_ips_only = true;
  static_ips.dhcp_leases = false;
  static_ips.local_dns_search_domain = false;
  static_ips.mdns_responder_present = true;

  NetworkEnvironment dhcp;
  dhcp.local_dns_search_domain = false;
  dhcp.mdns_responder_present = true;

  NetworkEnvironment dhcpv6;
  dhcpv6.dhcp_leases = false;
  dhcpv6.dhcpv6_leases = true;
  dhcpv6.dhcpv6_hint_configured = true;
  dhcpv6.local_dns_search_domain = false;
  dhcpv6.mdns_responder_present = true;

  NetworkEnvironment ipv6_ra;
  ipv6_ra.dhcp_leases = false;
  ipv6_ra.ipv6_ras = true;
  ipv6_ra.mdns_responder_present = true;

  NetworkEnvironment dns;
  dns.dhcp_leases = false;
  dns.mdns_responder_present = true;

  const Column columns[] = {
      {"StaticIPs", static_ips}, {"DHCP", dhcp},       {"DHCPv6", dhcpv6},
      {"IPv6-RA", ipv6_ra},      {"DNS-domain", dns},
  };

  std::printf("%-14s", "mechanism");
  for (const auto& column : columns) std::printf(" %10s", column.name);
  std::printf("\n");
  for (HintMechanism mechanism : all_hint_mechanisms()) {
    std::printf("%-14s", hint_mechanism_name(mechanism));
    for (const auto& column : columns) {
      std::printf(" %10s",
                  mechanism_available(mechanism, column.env) ? "Y" : "N");
    }
    std::printf("\n");
  }
  std::printf("\n");

  bench::print_check(
      mechanism_available(HintMechanism::kMdns, static_ips) &&
          !mechanism_available(HintMechanism::kDhcpVivo, static_ips),
      "static-IP networks: only mDNS remains");
  bench::print_check(
      mechanism_available(HintMechanism::kDhcpVivo, dhcp) &&
          !mechanism_available(HintMechanism::kDnsSrv, dhcp),
      "DHCP column matches Table 2");
  bench::print_check(
      mechanism_available(HintMechanism::kIpv6Ndp, ipv6_ra) &&
          !mechanism_available(HintMechanism::kIpv6Ndp, dhcp),
      "IPv6 NDP requires router advertisements");
  return 0;
}
