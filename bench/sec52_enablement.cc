// Section 5.2: application enablement effort — the bat / Caddy / Java
// netcat case studies (diff sizes from Appendices E-G), plus a live
// demonstration that the drop-in PAN socket carries an application-level
// request/response across SCIERA with a handful of lines.
#include "bench_common.h"
#include "endhost/pan.h"

using namespace sciera;
using namespace sciera::endhost;

int main() {
  bench::print_header(
      "Section 5.2 — application enablement effort",
      "bat SCIONabled with <20 lines; JPAN DatagramSocket is a drop-in "
      "replacement; Caddy needs only a plugin module");

  struct CaseStudy {
    const char* application;
    const char* mechanism;
    int lines_added;  // from the appendix diffs
    int files_touched;
  };
  const CaseStudy cases[] = {
      {"bat (Go web client)", "shttp.NewTransport + PAN policy flags", 19, 1},
      {"Caddy reverse proxy", "scion network plugin module", 120, 3},
      {"Java netcat", "ScionDatagramSocket drop-in", 6, 2},
  };
  std::printf("%-24s %-42s %8s %6s\n", "application", "integration", "LoC",
              "files");
  for (const auto& cs : cases) {
    std::printf("%-24s %-42s %8d %6d\n", cs.application, cs.mechanism,
                cs.lines_added, cs.files_touched);
  }
  std::printf("\n");

  // Live demonstration: a request/reply application on the drop-in socket.
  // The entire SCION-specific part is: create context, open socket — the
  // send/receive code is shaped exactly like a UDP app.
  bench::World world;
  namespace a = topology::ases;
  Daemon daemon_client{world.net, a::ovgu()};
  Daemon daemon_server{world.net, a::sidn()};

  auto client_ctx = PanContext::Builder{}
                        .net(world.net)
                        .address({a::ovgu(), 0x0A000001})
                        .daemon(daemon_client)
                        .build(Rng{1});
  auto server_ctx = PanContext::Builder{}
                        .net(world.net)
                        .address({a::sidn(), 0x0A000002})
                        .daemon(daemon_server)
                        .build(Rng{2});
  if (!client_ctx.ok() || !server_ctx.ok()) return 1;

  int requests_served = 0;
  PanSocket* server_ptr = nullptr;
  auto server_sock = PanSocket::open(
      **server_ctx, 80,
      [&](const dataplane::Address& src, std::uint16_t src_port,
          const Bytes& data, SimTime) {
        ++requests_served;
        Bytes response = bytes_of("HTTP/1.1 200 OK\r\n\r\nSCION-served: ");
        response.insert(response.end(), data.begin(), data.end());
        (void)server_ptr->send_to(src, src_port, response);
      });
  server_ptr = server_sock->get();

  std::string reply;
  auto client_sock = PanSocket::open(
      **client_ctx, 0,
      [&](const dataplane::Address&, std::uint16_t, const Bytes& data,
          SimTime) { reply.assign(data.begin(), data.end()); });

  (void)(*client_sock)
      ->send_to({a::sidn(), 0x0A000002}, 80, bytes_of("GET /index.html"));
  world.net.sim().run_for(2 * kSecond);

  std::printf("live demo: OVGU client -> SIDN server over SCIERA\n");
  std::printf("  requests served: %d\n  reply: %s\n\n", requests_served,
              reply.c_str());

  bench::print_check(cases[0].lines_added < 20,
                     "bat integration stays under 20 lines");
  bench::print_check(requests_served == 1 && !reply.empty(),
                     "drop-in socket round-trips an application request");
  bench::print_check(reply.find("SCION-served") != std::string::npos,
                     "payload integrity end to end");
  return 0;
}
