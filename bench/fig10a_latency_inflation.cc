// Figure 10a: CDF of path latency inflation d2/d1 — how close the
// second-best path is to the best, per AS pair.
#include "bench_common.h"

using namespace sciera;

int main() {
  bench::print_header(
      "Figure 10a — CDF of path latency inflation (d2/d1) across AS pairs",
      "~40% of pairs have a second path with nearly identical RTT "
      "(inflation ~1.0); 80% below 1.2");

  bench::World world;
  const auto result = bench::run_standard_campaign(world);
  const auto inflation = analysis::latency_inflation(result);
  const analysis::Cdf cdf{inflation};

  std::printf("%s\n", analysis::render_chart(
                          {analysis::cdf_series("d2/d1", cdf.sorted_samples())},
                          "latency inflation (d2/d1)", "CDF over AS pairs")
                          .c_str());

  std::printf("pairs: %zu | <=1.05: %.1f%% | <=1.2: %.1f%% | median %.3f | "
              "max %.2f\n\n",
              cdf.size(), 100.0 * cdf.fraction_below(1.05),
              100.0 * cdf.fraction_below(1.2), cdf.median(), cdf.max());

  bench::print_check(cdf.fraction_below(1.05) > 0.30,
                     "a large share of pairs has a near-equal second path");
  bench::print_check(cdf.fraction_below(1.2) > 0.70,
                     "~80% of pairs below 20% inflation");
  bench::print_check(cdf.min() >= 1.0, "inflation is >= 1 by construction");
  return 0;
}
