// Figure 8: maximum number of active paths between the nine matrix ASes.
#include "bench_common.h"

using namespace sciera;

int main() {
  bench::print_header(
      "Figure 8 — maximum number of active paths between AS pairs",
      "at least 2 paths per pair; >100 for extreme pairs (UVa<->UFMS); "
      "Daejeon->Singapore has multiple options despite a single BGP path");

  bench::World world;
  const auto result = bench::run_standard_campaign(world);
  const auto ases = topology::path_matrix_ases();
  const auto matrix = analysis::path_matrices(result, ases);

  std::printf("%s\n", analysis::render_matrix(
                          ases, matrix.max_paths,
                          "max active paths (src row, dst column)")
                          .c_str());

  namespace a = topology::ases;
  auto cell = [&](IsdAs src, IsdAs dst) {
    for (std::size_t i = 0; i < ases.size(); ++i) {
      for (std::size_t j = 0; j < ases.size(); ++j) {
        if (ases[i] == src && ases[j] == dst) return matrix.max_paths[i][j];
      }
    }
    return -1;
  };

  int minimum = INT32_MAX, maximum = 0;
  for (std::size_t i = 0; i < ases.size(); ++i) {
    for (std::size_t j = 0; j < ases.size(); ++j) {
      if (i == j || matrix.max_paths[i][j] < 0) continue;
      minimum = std::min(minimum, matrix.max_paths[i][j]);
      maximum = std::max(maximum, matrix.max_paths[i][j]);
    }
  }
  std::printf("min %d, max %d across the matrix\n", minimum, maximum);
  std::printf("UVa -> UFMS: %d paths | DJ -> SG: %d paths | single BGP path "
              "DJ->SG: %s\n\n",
              cell(a::uva(), a::ufms()), cell(a::kisti_dj(), a::kisti_sg()),
              world.bgp.route(a::kisti_dj(), a::kisti_sg()) ? "yes" : "no");

  bench::print_check(minimum >= 2, "every pair has at least 2 paths");
  bench::print_check(maximum > 100, "extreme pairs exceed 100 path options");
  bench::print_check(cell(a::uva(), a::ufms()) > 50,
                     "UVa<->UFMS is among the richest pairs");
  bench::print_check(cell(a::kisti_dj(), a::kisti_sg()) >= 3,
                     "Daejeon->Singapore: ring gives multiple paths");
  return 0;
}
