// Figure 5: CDF of ping latency for SCION and IP over the 20-day campaign.
#include <cmath>

#include "bench_common.h"

using namespace sciera;

int main() {
  bench::print_header(
      "Figure 5 — CDF of ping RTT, SCION (min over 3 paths) vs IP (BGP)",
      "similar trend for the first ~50%; median reduced 6.9% (160.9 -> "
      "149.8 ms); p90 reduced 23.7% (376 -> 287 ms)");

  bench::World world;
  const auto result = bench::run_standard_campaign(world);
  const auto dist = analysis::rtt_distributions(result);

  std::printf("%s\n",
              analysis::render_chart(
                  {analysis::cdf_series("SCION", dist.scion_ms.sorted_samples()),
                   analysis::cdf_series("IP", dist.ip_ms.sorted_samples())},
                  "RTT (ms)", "Proportion of pings")
                  .c_str());

  std::printf("samples: SCION %zu, IP %zu\n", dist.scion_ms.size(),
              dist.ip_ms.size());
  std::printf("%-12s %10s %10s %10s\n", "percentile", "SCION(ms)", "IP(ms)",
              "reduction");
  for (double p : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99}) {
    const double s = dist.scion_ms.percentile(p);
    const double i = dist.ip_ms.percentile(p);
    std::printf("%-12.2f %10.1f %10.1f %9.1f%%\n", p, s, i,
                100.0 * (1.0 - s / i));
  }
  std::printf("\n");

  const double median_gain =
      1.0 - dist.scion_ms.median() / dist.ip_ms.median();
  const double p90_gain =
      1.0 - dist.scion_ms.percentile(0.9) / dist.ip_ms.percentile(0.9);
  const double p25_gap =
      std::abs(1.0 - dist.scion_ms.percentile(0.25) /
                         dist.ip_ms.percentile(0.25));

  bench::print_check(median_gain > 0.0, "SCION median below IP median");
  bench::print_check(p90_gain > median_gain,
                     "improvement more pronounced for the slowest pings");
  bench::print_check(p25_gap < 0.15,
                     "similar trend in the first half of the distribution");
  return 0;
}
