// Figure 9: median deviation from the highest number of active paths —
// how consistently the maximum path diversity was actually usable.
#include "bench_common.h"

using namespace sciera;

int main() {
  bench::print_header(
      "Figure 9 — median deviation from the maximum number of active paths",
      "mostly 0 (the maximum is usable most of the time); elevated for "
      "Daejeon<->Singapore (cable outage) and UVa<->Equinix (BRIDGES "
      "instability)");

  bench::World world;
  const auto result = bench::run_standard_campaign(world);
  const auto ases = topology::path_matrix_ases();
  const auto matrix = analysis::path_matrices(result, ases);

  std::printf("%s\n", analysis::render_matrix(
                          ases, matrix.median_deviation,
                          "median deviation from max active paths")
                          .c_str());

  namespace a = topology::ases;
  auto cell = [&](IsdAs src, IsdAs dst) {
    for (std::size_t i = 0; i < ases.size(); ++i) {
      for (std::size_t j = 0; j < ases.size(); ++j) {
        if (ases[i] == src && ases[j] == dst) {
          return matrix.median_deviation[i][j];
        }
      }
    }
    return -1;
  };

  // The long KREONET outage removes the whole eastern (HK) corridor; in
  // our simulator that corridor carries a larger share of path variants
  // than in the real deployment, so pairs touching Daejeon / Korea Univ
  // deviate more broadly (divergence documented in EXPERIMENTS.md). Away
  // from that corridor, the paper's "median deviation is mostly 0" holds.
  int small = 0, cells = 0;
  for (std::size_t i = 0; i < ases.size(); ++i) {
    for (std::size_t j = 0; j < ases.size(); ++j) {
      if (i == j || matrix.median_deviation[i][j] < 0) continue;
      const bool corridor = ases[i] == a::kisti_dj() ||
                            ases[j] == a::kisti_dj() ||
                            ases[i] == a::korea_univ() ||
                            ases[j] == a::korea_univ();
      if (corridor) continue;
      ++cells;
      // "Sustains its maximum": deviation is zero or a small fraction of
      // the pair's path count.
      const int max_paths = matrix.max_paths[i][j];
      if (matrix.median_deviation[i][j] * 4 <= max_paths) ++small;
    }
  }
  const int dj_sg = cell(a::kisti_dj(), a::kisti_sg());
  const int uva_equinix = std::max(cell(a::uva(), a::equinix()),
                                   cell(a::equinix(), a::uva()));
  std::printf("off-corridor cells with small deviation (<=25%% of max): "
              "%d/%d | DJ<->SG: %d | UVa<->Equinix: %d\n\n",
              small, cells, dj_sg, uva_equinix);

  bench::print_check(small > cells * 2 / 3,
                     "most pairs sustain (near) their maximum most of the time");
  bench::print_check(dj_sg > 0,
                     "Daejeon<->Singapore deviates (KREONET link outage)");
  bench::print_check(uva_equinix > 0,
                     "UVa<->Equinix deviates (BRIDGES instability)");
  return 0;
}
