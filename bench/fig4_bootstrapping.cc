// Figure 4: end-host bootstrapping latency — hint retrieval, configuration
// retrieval, and total, per OS (Windows/Linux/Mac), 30 runs per hinting
// mechanism, boxes over the pooled runs.
#include "bench_common.h"
#include "endhost/bootstrapper.h"

using namespace sciera;
using namespace sciera::endhost;

int main() {
  bench::print_header(
      "Figure 4 — network hint retrieval, configuration retrieval, and "
      "overall bootstrapping latency per platform",
      "median total < 150 ms on every OS; hint step cheaper than config "
      "step; Windows slowest, Linux fastest");

  bench::World world;
  namespace a = topology::ases;
  const auto* creds = world.net.pki(71)->credentials(a::ovgu());
  const std::vector<cppki::Trc> trcs{world.net.pki(71)->trc()};
  const BootstrapServer server{
      a::ovgu(), local_topology_view(world.net.topology(), a::ovgu()), *creds,
      trcs};

  // All hinting environments of Appendix A, exercised per OS.
  NetworkEnvironment env;
  env.dhcpv6_leases = true;
  env.dhcpv6_hint_configured = true;
  env.ipv6_ras = true;
  env.mdns_responder_present = true;

  constexpr int kRunsPerMechanism = 30;
  std::vector<analysis::BoxGroup> groups;
  std::vector<double> all_totals;
  double windows_median = 0, linux_median = 0;

  for (const char* step : {"Hint retrieval", "Config retrieval", "Total"}) {
    analysis::BoxGroup group;
    group.group = step;
    for (const OsProfile& os : all_os_profiles()) {
      std::vector<double> samples;
      Rng rng{2025, os.name};
      for (HintMechanism mechanism : all_hint_mechanisms()) {
        if (!mechanism_available(mechanism, env)) continue;
        Bootstrapper::Config config;
        config.preference = {mechanism};
        Bootstrapper bootstrapper{env, os, config};
        for (int run = 0; run < kRunsPerMechanism; ++run) {
          auto result = bootstrapper.run(server, rng, 0);
          if (!result) continue;
          const auto& t = result->timings;
          const Duration value = std::string{step} == "Hint retrieval"
                                     ? t.hint_retrieval
                                 : std::string{step} == "Config retrieval"
                                     ? t.config_retrieval
                                     : t.total();
          samples.push_back(to_ms(value));
        }
      }
      analysis::Cdf cdf{samples};
      if (std::string{step} == "Total") {
        for (double s : samples) all_totals.push_back(s);
        if (os.name == "Windows") windows_median = cdf.median();
        if (os.name == "Linux") linux_median = cdf.median();
      }
      group.boxes.emplace_back(os.name, std::move(cdf));
    }
    groups.push_back(std::move(group));
  }

  std::printf("%s\n", analysis::render_boxes(groups, "ms").c_str());

  const analysis::Cdf totals{all_totals};
  std::printf("pooled total: median %.1f ms, p90 %.1f ms, max %.1f ms\n\n",
              totals.median(), totals.percentile(0.9), totals.max());

  bench::print_check(totals.median() < 150.0,
                     "median total bootstrap < 150 ms (imperceptible)");
  bench::print_check(groups[0].boxes[1].second.median() <
                         groups[1].boxes[1].second.median() + 50.0,
                     "hint and config steps are both sub-perceptible");
  bench::print_check(windows_median > linux_median,
                     "Windows slower than Linux (service indirection)");
  return 0;
}
