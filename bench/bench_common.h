// Shared scaffolding for the figure/table reproduction binaries: builds
// the SCIERA network + BGP baseline once, runs the standard campaign, and
// provides uniform headers so every bench prints a comparable report.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "analysis/charts.h"
#include "analysis/stats.h"
#include "bgp/bgp.h"
#include "measure/campaign.h"
#include "topology/sciera_net.h"

namespace sciera::bench {

inline void print_header(const char* experiment, const char* paper_claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("================================================================\n");
}

inline void print_check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "SHAPE-OK" : "SHAPE-MISS", what.c_str());
}

struct World {
  controlplane::ScionNetwork net;
  bgp::BgpNetwork bgp;

  World() : net(topology::build_sciera()), bgp(net.topology()) {}
};

// The standard campaign most figure benches consume. Interval coarser than
// the paper's 60s aggregation; the distributions it feeds are identical in
// shape (same per-interval minimum statistics).
inline measure::CampaignResult run_standard_campaign(World& world) {
  measure::CampaignOptions options;
  options.duration = 20 * kDay;
  options.interval = 30 * kMinute;
  measure::Campaign campaign{world.net, world.bgp, options};
  return campaign.run();
}

}  // namespace sciera::bench
