// Table 1: SCIERA PoPs and collaborating networks, cross-checked against
// the topology's geography.
#include "bench_common.h"

using namespace sciera;

int main() {
  bench::print_header("Table 1 — SCIERA PoPs and collaborating networks",
                      "16 PoPs across five continents, anchored by GEANT "
                      "and KREONET's global footprints");

  const auto pops = topology::sciera_pops();
  std::printf("%-18s %-20s %-26s\n", "Location", "Peering NRENs",
              "Partner Networks");
  for (const auto& pop : pops) {
    std::printf("%-18s %-20s %-26s\n", pop.location.c_str(),
                pop.peering_nrens.c_str(), pop.partner_networks.c_str());
  }
  std::printf("\n");

  int geant = 0, kreonet = 0;
  for (const auto& pop : pops) {
    if (pop.peering_nrens.find("GEANT") != std::string::npos) ++geant;
    if (pop.peering_nrens.find("KREONET") != std::string::npos) ++kreonet;
  }
  std::printf("PoPs: %zu | with GEANT: %d | with KREONET: %d\n\n", pops.size(),
              geant, kreonet);

  bench::print_check(pops.size() == 16, "16 PoPs as in Table 1");
  bench::print_check(geant >= 7 && kreonet >= 5,
                     "the two Tier-1 footprints anchor most PoPs");
  return 0;
}
