// Control-plane microbenchmarks: beaconing sweeps, path combination as the
// option space grows toward the >100-path pairs of Figure 8, PCB
// verification, and path-server lookups (cold vs cached) — the ablations
// behind the DESIGN.md design-choice list.
#include <benchmark/benchmark.h>

#include "controlplane/control_plane.h"
#include "topology/sciera_net.h"

namespace {

using namespace sciera;
using namespace sciera::controlplane;

ScionNetwork& net() {
  static ScionNetwork network{topology::build_sciera()};
  return network;
}

void BM_BeaconingSweep(benchmark::State& state) {
  auto& network = net();
  for (auto _ : state) {
    network.run_beaconing();
  }
  state.counters["segments"] = static_cast<double>(network.segments().size());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(network.segments().size()));
}
BENCHMARK(BM_BeaconingSweep)->Unit(benchmark::kMillisecond);

void BM_PathCombination(benchmark::State& state) {
  namespace a = topology::ases;
  struct Case {
    IsdAs src, dst;
  };
  const Case cases[] = {
      {a::sec(), a::nus()},        // trivial: peering pair
      {a::uva(), a::princeton()},  // small
      {a::kisti_dj(), a::kisti_sg()},  // ring diversity
      {a::uva(), a::ufms()},       // the >100-path pair
  };
  const Case chosen = cases[state.range(0)];
  std::size_t n_paths = 0;
  for (auto _ : state) {
    const auto paths = net().paths(chosen.src, chosen.dst);
    n_paths = paths.size();
    benchmark::DoNotOptimize(paths);
  }
  state.counters["paths"] = static_cast<double>(n_paths);
  state.SetLabel(chosen.src.to_string() + "->" + chosen.dst.to_string());
}
BENCHMARK(BM_PathCombination)->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_PcbVerification(benchmark::State& state) {
  auto& network = net();
  auto* pki71 = network.pki(71);
  auto* pki64 = network.pki(64);
  const KeyLookup keys = [&](IsdAs as) -> const crypto::Ed25519::PublicKey* {
    auto* pki = as.isd() == 71 ? pki71 : pki64;
    const auto* creds = pki->credentials(as);
    return creds == nullptr ? nullptr : &creds->as_cert.subject_key;
  };
  // Pick a long segment.
  const PathSegment* longest = nullptr;
  for (const auto& segment : network.segments().all()) {
    if (longest == nullptr || segment.pcb.length() > longest->pcb.length()) {
      longest = &segment;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_pcb(longest->pcb, keys).ok());
  }
  state.counters["entries"] = static_cast<double>(longest->pcb.length());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(longest->pcb.length()));
}
BENCHMARK(BM_PcbVerification)->Unit(benchmark::kMicrosecond);

void BM_PathLookupCold(benchmark::State& state) {
  namespace a = topology::ases;
  auto* cs = net().control_service(a::sidn());
  for (auto _ : state) {
    cs->flush_cache();
    benchmark::DoNotOptimize(cs->lookup_paths_now(a::ufms()));
  }
}
BENCHMARK(BM_PathLookupCold)->Unit(benchmark::kMillisecond);

void BM_PathLookupCached(benchmark::State& state) {
  namespace a = topology::ases;
  auto* cs = net().control_service(a::sidn());
  benchmark::DoNotOptimize(cs->lookup_paths_now(a::ufms()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cs->lookup_paths_now(a::ufms()));
  }
}
BENCHMARK(BM_PathLookupCached);

void BM_CertificateRenewalSweep(benchmark::State& state) {
  auto& network = net();
  SimTime fake_now = 0;
  for (auto _ : state) {
    // Advance far enough that every short-lived cert wants renewal.
    fake_now += 3 * kDay;
    auto* pki = network.pki(71);
    benchmark::DoNotOptimize(pki->renew_expiring(fake_now));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(
                              network.topology().core_ases(71).size()));
}
BENCHMARK(BM_CertificateRenewalSweep)->Unit(benchmark::kMillisecond);


// Ablation: beacon-selection policy — how many core segments to keep per
// (origin, terminus) pair. More candidates -> richer Figure-8 matrices but
// heavier control plane; the sweep shows the path-diversity/work tradeoff.
void BM_BeaconingKBest(benchmark::State& state) {
  auto& network = net();
  BeaconingOptions options;
  options.max_core_segments_per_pair = static_cast<std::size_t>(state.range(0));
  std::size_t segments = 0, paths = 0;
  namespace a = topology::ases;
  for (auto _ : state) {
    const auto store = network.beacon_with(options);
    segments = store.size();
    Combinator combinator{network.topology(), store};
    paths = combinator.combine(a::uva(), a::ufms()).size();
    benchmark::DoNotOptimize(store);
  }
  state.counters["segments"] = static_cast<double>(segments);
  state.counters["uva_ufms_paths"] = static_cast<double>(paths);
}
BENCHMARK(BM_BeaconingKBest)->Arg(4)->Arg(12)->Arg(24)->Arg(48)
    ->Unit(benchmark::kMillisecond);

// Ablation: beaconing depth cap (how far core beacons may travel).
void BM_BeaconingPathLengthCap(benchmark::State& state) {
  auto& network = net();
  BeaconingOptions options;
  options.max_core_path_length = static_cast<std::size_t>(state.range(0));
  std::size_t segments = 0;
  for (auto _ : state) {
    const auto store = network.beacon_with(options);
    segments = store.size();
    benchmark::DoNotOptimize(store);
  }
  state.counters["segments"] = static_cast<double>(segments);
}
BENCHMARK(BM_BeaconingPathLengthCap)->Arg(3)->Arg(5)->Arg(7)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
