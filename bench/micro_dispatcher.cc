// Ablation: the dispatcher bottleneck of Section 4.8 and the Science-DMZ
// datapath (Section 4.7.1). Quantifies why SCIERA migrated to a
// dispatcherless end-host stack, why Hercules reached for XDP, and what
// RSS buys LightningFilter.
#include <benchmark/benchmark.h>

#include "endhost/hercules.h"
#include "endhost/lightning_filter.h"
#include "topology/sciera_net.h"

namespace {

using namespace sciera;
using namespace sciera::endhost;

controlplane::ScionNetwork& net() {
  static controlplane::ScionNetwork network{topology::build_sciera()};
  return network;
}

dataplane::ScionPacket local_packet(const dataplane::Address& dst,
                                    std::uint16_t port) {
  dataplane::ScionPacket pkt;
  pkt.path_type = dataplane::PathType::kEmpty;
  pkt.dst = dst;
  pkt.src = {dst.ia, dst.host + 1};
  dataplane::UdpDatagram dg;
  dg.dst_port = port;
  dg.data = bytes_of("x");
  pkt.payload = dg.serialize();
  return pkt;
}

// Packets-per-burst delivered through the host stack, dispatcher vs
// dispatcherless, at a burst size that saturates the single dispatcher.
void BM_HostStackBurst(benchmark::State& state) {
  const bool dispatcher = state.range(0) == 1;
  const auto burst = static_cast<int>(state.range(1));
  namespace a = topology::ases;
  HostStack::Config cfg;
  cfg.mode = dispatcher ? HostMode::kDispatcher : HostMode::kDispatcherless;
  cfg.dispatcher_pps = 250'000;
  std::uint64_t delivered_total = 0;
  std::uint64_t dropped_total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    HostStack stack{net(), {a::uva(), 0x0B000001}, cfg};
    int received = 0;
    (void)stack.bind(6000, [&](auto&&...) { ++received; });
    const auto pkt = local_packet({a::uva(), 0x0B000001}, 6000);
    state.ResumeTiming();
    for (int i = 0; i < burst; ++i) (void)net().send_from_host(pkt);
    net().sim().run_for(kSecond);
    delivered_total += stack.stats().delivered;
    dropped_total += stack.stats().dropped_overload;
  }
  state.counters["delivered/burst"] =
      static_cast<double>(delivered_total) / state.iterations();
  state.counters["dropped/burst"] =
      static_cast<double>(dropped_total) / state.iterations();
  state.SetLabel(dispatcher ? "dispatcher" : "dispatcherless");
}
BENCHMARK(BM_HostStackBurst)
    ->Args({1, 2000})
    ->Args({0, 2000})
    ->Unit(benchmark::kMillisecond);

// Hercules receive-throughput model across datapath generations.
void BM_HerculesHostLimit(benchmark::State& state) {
  HerculesConfig cfg;
  switch (state.range(0)) {
    case 0:
      cfg.receiver_mode = HostMode::kDispatcher;
      cfg.use_xdp = false;
      break;
    case 1:
      cfg.receiver_mode = HostMode::kDispatcherless;
      cfg.use_xdp = false;
      break;
    default:
      cfg.use_xdp = true;
      break;
  }
  const Hercules hercules{net().topology(), cfg};
  double gbps = 0;
  for (auto _ : state) {
    gbps = hercules.host_limit_bps() / 1e9;
    benchmark::DoNotOptimize(gbps);
  }
  state.counters["host_limit_gbps"] = gbps;
  state.SetLabel(state.range(0) == 0   ? "dispatcher"
                 : state.range(0) == 1 ? "dispatcherless"
                                       : "xdp");
}
BENCHMARK(BM_HerculesHostLimit)->Arg(0)->Arg(1)->Arg(2);

// Multipath transfer planning over the KREONET ring (progressive filling).
void BM_HerculesPlan(benchmark::State& state) {
  namespace a = topology::ases;
  const auto paths = net().paths(a::kisti_dj(), a::kisti_ams());
  const std::size_t use =
      std::min(paths.size(), static_cast<std::size_t>(state.range(0)));
  std::vector<controlplane::Path> chosen(paths.begin(),
                                         paths.begin() + static_cast<long>(use));
  HerculesConfig cfg;
  cfg.use_xdp = true;
  const Hercules hercules{net().topology(), cfg};
  double gbps = 0;
  for (auto _ : state) {
    const auto report = hercules.plan(chosen, 100'000'000'000ULL);
    gbps = report.aggregate_bps / 1e9;
    benchmark::DoNotOptimize(report);
  }
  state.counters["aggregate_gbps"] = gbps;
}
BENCHMARK(BM_HerculesPlan)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// LightningFilter per-packet check (one CMAC + rules).
void BM_LightningFilterCheck(benchmark::State& state) {
  LightningFilter filter{bytes_of("dmz-secret")};
  namespace a = topology::ases;
  dataplane::ScionPacket pkt;
  pkt.src = {a::kisti_dj(), 1};
  Bytes payload(static_cast<std::size_t>(state.range(0)), 0x42);
  const Bytes tag = filter.make_authenticator(pkt.src.ia, payload);
  pkt.payload = payload;
  pkt.payload.insert(pkt.payload.end(), tag.begin(), tag.end());
  SimTime now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.check(pkt, now));
    now += kMicrosecond;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_LightningFilterCheck)->Arg(200)->Arg(1500);

void BM_LightningFilterLineRate(benchmark::State& state) {
  const LightningFilter filter{bytes_of("s")};
  const bool rss = state.range(0) == 1;
  double gbps = 0;
  for (auto _ : state) {
    gbps = filter.throughput_bps(1500, rss) / 1e9;
    benchmark::DoNotOptimize(gbps);
  }
  state.counters["gbps"] = gbps;
  state.SetLabel(rss ? "rss-8-cores" : "single-queue");
}
BENCHMARK(BM_LightningFilterLineRate)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
