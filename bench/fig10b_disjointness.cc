// Figure 10b: CDF of path disjointness over all path combinations of all
// AS pairs (1.0 = fully disjoint).
#include "bench_common.h"

using namespace sciera;

int main() {
  bench::print_header(
      "Figure 10b — CDF of pairwise path disjointness",
      "~30% of path combinations fully disjoint; ~80% of combinations at "
      "disjointness >= 0.7 (only 30% of links in common)");

  bench::World world;
  const auto result = bench::run_standard_campaign(world);
  const auto disjointness = analysis::pairwise_disjointness(
      result, 8, topology::path_matrix_ases());
  const analysis::Cdf cdf{disjointness};

  std::printf("%s\n",
              analysis::render_chart(
                  {analysis::cdf_series("disjointness", cdf.sorted_samples())},
                  "path disjointness", "CDF over path combinations")
                  .c_str());

  const double fully = 1.0 - cdf.fraction_below(0.999);
  const double above_07 = 1.0 - cdf.fraction_below(0.7 - 1e-9);
  std::printf("combinations: %zu | fully disjoint: %.1f%% | >= 0.7: %.1f%% | "
              "median %.3f\n\n",
              cdf.size(), 100.0 * fully, 100.0 * above_07, cdf.median());

  bench::print_check(fully > 0.05, "a substantial share is fully disjoint");
  bench::print_check(above_07 > 0.6,
                     "most combinations reach disjointness >= 0.7");
  bench::print_check(cdf.min() >= 0.5 && cdf.max() <= 1.0,
                     "metric bounded in [0.5, 1] (union/total definition)");
  return 0;
}
