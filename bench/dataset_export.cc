// Dataset artifact: the paper publishes its multiping dataset and setup
// instructions in a public repository [19, 20]. This bench regenerates the
// equivalent CSV dataset from the simulated campaign and writes it next to
// the binary (sciera_intervals.csv / sciera_probes.csv), then prints
// integrity statistics.
#include <fstream>

#include "bench_common.h"

using namespace sciera;

int main() {
  bench::print_header(
      "Dataset export — the public scion-go-multiping dataset equivalent",
      "~265M ping measurements and 3M path statistics over 20 days, "
      "published as CSV [19, 20]");

  bench::World world;
  measure::CampaignOptions options;
  options.duration = 20 * kDay;
  options.interval = 30 * kMinute;
  measure::Campaign campaign{world.net, world.bgp, options};
  const auto result = campaign.run();

  const std::string intervals = result.intervals_csv();
  const std::string probes = result.probes_csv();
  {
    std::ofstream out{"sciera_intervals.csv"};
    out << intervals;
  }
  {
    std::ofstream out{"sciera_probes.csv"};
    out << probes;
  }

  std::uint64_t pings = 0;
  for (const auto& record : result.intervals) {
    pings += static_cast<std::uint64_t>(record.scion_ok + record.ip_ok);
  }
  std::printf("wrote sciera_intervals.csv (%zu rows, %.1f MB) and "
              "sciera_probes.csv (%zu rows, %.1f MB)\n",
              result.intervals.size(),
              static_cast<double>(intervals.size()) / 1e6,
              result.probes.size(),
              static_cast<double>(probes.size()) / 1e6);
  std::printf("represented ping measurements: %llu | path statistics: %zu\n\n",
              static_cast<unsigned long long>(pings), result.probes.size());

  bench::print_check(!result.intervals.empty() && !result.probes.empty(),
                     "dataset is non-empty and loadable");
  bench::print_check(pings > 1'000'000,
                     "millions of represented ping measurements");
  return 0;
}
