// Figure 7: RTT ratio of SCION compared to IP over the campaign timeline,
// with the January 21 maintenance spike, the January 25 stabilization
// (new EU-US links), and the February 6 upgrade spike.
#include <cmath>

#include "bench_common.h"

using namespace sciera;

int main() {
  bench::print_header(
      "Figure 7 — SCION/IP RTT ratio over time",
      "baseline episodes around 15-20% lower SCION RTTs; spike on Jan 21 "
      "(maintenance); stabilization after Jan 25 (new EU-US links); spike "
      "again after Feb 6 (upgrades)");

  bench::World world;
  const auto result = bench::run_standard_campaign(world);
  const auto timeline = analysis::ratio_timeline(result, 6 * kHour);

  analysis::Series ratio_series{"SCION/IP ratio", {}};
  analysis::Series baseline{"IP baseline (1.0)", {}};
  for (const auto& point : timeline) {
    ratio_series.points.emplace_back(point.day, point.ratio);
    baseline.points.emplace_back(point.day, 1.0);
  }
  std::printf("%s\n", analysis::render_chart({ratio_series, baseline},
                                             "campaign day (day 0 = Jan 17)",
                                             "SCION/IP RTT ratio")
                          .c_str());

  auto window_mean = [&](double from_day, double to_day) {
    double sum = 0;
    int n = 0;
    for (const auto& point : timeline) {
      if (point.day >= from_day && point.day < to_day) {
        sum += point.ratio;
        ++n;
      }
    }
    return n == 0 ? 0.0 : sum / n;
  };
  auto window_max = [&](double from_day, double to_day) {
    double best = 0;
    for (const auto& point : timeline) {
      if (point.day >= from_day && point.day < to_day) {
        best = std::max(best, point.ratio);
      }
    }
    return best;
  };

  const double before_jan21 = window_mean(0.5, 4);
  const double jan21_spike = window_max(4, 5.5);
  const double stable = window_mean(12, 19);
  const double feb6_spike = window_max(19.4, 20);
  std::printf("mean ratio days 0-4: %.3f | Jan21 max: %.3f | days 9-19 mean: "
              "%.3f | Feb6 max: %.3f\n\n",
              before_jan21, jan21_spike, stable, feb6_spike);

  bench::print_check(before_jan21 < 1.0,
                     "baseline ratio below 1.0 (SCION faster on average)");
  bench::print_check(jan21_spike > before_jan21 + 0.03,
                     "Jan 21 maintenance produces a visible spike");
  bench::print_check(feb6_spike > stable + 0.03,
                     "Feb 6 upgrades produce a second spike");
  // Stability: standard deviation after Jan 25 lower than before.
  auto stddev = [&](double from_day, double to_day) {
    double sum = 0, sumsq = 0;
    int n = 0;
    for (const auto& point : timeline) {
      if (point.day >= from_day && point.day < to_day) {
        sum += point.ratio;
        sumsq += point.ratio * point.ratio;
        ++n;
      }
    }
    if (n < 2) return 0.0;
    const double mean = sum / n;
    return std::sqrt(std::max(0.0, sumsq / n - mean * mean));
  };
  bench::print_check(stddev(12, 19) < stddev(3.5, 8),
                     "ratio stabilizes after the maintenance window");
  return 0;
}
