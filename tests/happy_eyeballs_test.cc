// Happy Eyeballs with SCION as the third option (Section 4.2.2).
#include <gtest/gtest.h>

#include "endhost/happy_eyeballs.h"
#include "topology/sciera_net.h"

namespace sciera::endhost {
namespace {

namespace a = topology::ases;

struct Nets {
  controlplane::ScionNetwork net{topology::build_sciera()};
  bgp::BgpNetwork bgp{net.topology()};
};

Nets& nets() {
  static Nets shared;
  return shared;
}

TEST(HappyEyeballs, PrefersScionWhenCompetitive) {
  auto& s = nets();
  HappyEyeballs dialer{s.net, s.bgp};
  Rng rng{1};
  int scion_wins = 0;
  const int trials = 50;
  for (int i = 0; i < trials; ++i) {
    auto result = dialer.dial(a::ovgu(), a::sidn(), rng);
    ASSERT_TRUE(result.ok());
    scion_wins += result->chosen == Transport::kScion;
  }
  // SCION starts first and the paths are comparable: it should win the
  // large majority of dials.
  EXPECT_GT(scion_wins, trials * 2 / 3);
}

TEST(HappyEyeballs, FallsBackToIpWhenScionDown) {
  auto& s = nets();
  HappyEyeballs dialer{s.net, s.bgp};
  Rng rng{2};
  // Cut OVGU's only SCION uplink; its BGP route survives (the failure is
  // modelled as SCION-service loss, BGP still has the physical circuit).
  s.net.set_link_up("geant-ovgu", false);
  auto result = dialer.dial(a::ovgu(), a::sidn(), rng);
  s.net.set_link_up("geant-ovgu", true);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->chosen, Transport::kScion);
}

TEST(HappyEyeballs, ScionDisabledNeverChoosesScion) {
  auto& s = nets();
  HappyEyeballs::Config config;
  config.scion_enabled = false;
  HappyEyeballs dialer{s.net, s.bgp, config};
  Rng rng{3};
  for (int i = 0; i < 10; ++i) {
    auto result = dialer.dial(a::uva(), a::princeton(), rng);
    ASSERT_TRUE(result.ok());
    EXPECT_NE(result->chosen, Transport::kScion);
  }
}

TEST(HappyEyeballs, StaggerDelayGivesScionHeadStart) {
  auto& s = nets();
  // With an enormous stagger, even a slowish SCION path wins because v4
  // starts half a second later.
  HappyEyeballs::Config config;
  config.attempt_delay = 500 * kMillisecond;
  HappyEyeballs dialer{s.net, s.bgp, config};
  Rng rng{4};
  auto result = dialer.dial(a::kisti_dj(), a::kisti_ams(), rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->chosen, Transport::kScion);
  // With zero stagger, the fastest transport wins on merit.
  config.attempt_delay = 0;
  HappyEyeballs merit{s.net, s.bgp, config};
  auto result2 = merit.dial(a::kisti_dj(), a::kisti_ams(), rng);
  ASSERT_TRUE(result2.ok());
  EXPECT_EQ(result2->connect_time, result2->first_rtt);
}

TEST(HappyEyeballs, UnreachableEverywhereFails) {
  auto& s = nets();
  HappyEyeballs dialer{s.net, s.bgp};
  Rng rng{5};
  // Fully isolate UFMS on both planes.
  s.net.set_link_up("rnp-ufms", false);
  s.net.set_link_up("rnp-ufms-2", false);
  s.bgp.set_link_up("rnp-ufms", false);
  s.bgp.set_link_up("rnp-ufms-2", false);
  auto result = dialer.dial(a::uva(), a::ufms(), rng);
  s.net.set_link_up("rnp-ufms", true);
  s.net.set_link_up("rnp-ufms-2", true);
  s.bgp.set_link_up("rnp-ufms", true);
  s.bgp.set_link_up("rnp-ufms-2", true);
  EXPECT_FALSE(result.ok());
}

TEST(HappyEyeballs, AttemptCountMatchesConfig) {
  auto& s = nets();
  HappyEyeballs dialer{s.net, s.bgp};
  Rng rng{6};
  auto result = dialer.dial(a::uva(), a::princeton(), rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->attempts_started, 3);  // scion + v6 + v4
  HappyEyeballs::Config v4_only;
  v4_only.scion_enabled = false;
  v4_only.ipv6_enabled = false;
  HappyEyeballs legacy{s.net, s.bgp, v4_only};
  auto result2 = legacy.dial(a::uva(), a::princeton(), rng);
  ASSERT_TRUE(result2.ok());
  EXPECT_EQ(result2->attempts_started, 1);
  EXPECT_EQ(result2->chosen, Transport::kIpv4);
}

}  // namespace
}  // namespace sciera::endhost
