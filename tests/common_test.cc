#include <gtest/gtest.h>

#include "common/buffer.h"
#include "common/isd_as.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/time.h"

namespace sciera {
namespace {

// --- ISD-AS addressing -----------------------------------------------------

TEST(IsdAs, ParsesBgpStyle) {
  auto ia = IsdAs::parse("64-559");
  ASSERT_TRUE(ia.has_value());
  EXPECT_EQ(ia->isd(), 64);
  EXPECT_EQ(ia->as().value(), 559u);
  EXPECT_EQ(ia->to_string(), "64-559");
}

TEST(IsdAs, ParsesScionStyle) {
  auto ia = IsdAs::parse("71-2:0:3b");
  ASSERT_TRUE(ia.has_value());
  EXPECT_EQ(ia->isd(), 71);
  EXPECT_EQ(ia->as().value(), (std::uint64_t{2} << 32) | 0x3b);
  EXPECT_EQ(ia->to_string(), "71-2:0:3b");
}

TEST(IsdAs, RoundTripsThroughPacked) {
  const auto ia = IsdAs::parse("71-2:0:48").value();
  EXPECT_EQ(IsdAs::from_packed(ia.packed()), ia);
}

TEST(IsdAs, RejectsMalformedInput) {
  EXPECT_FALSE(IsdAs::parse("").has_value());
  EXPECT_FALSE(IsdAs::parse("71").has_value());
  EXPECT_FALSE(IsdAs::parse("71-").has_value());
  EXPECT_FALSE(IsdAs::parse("-559").has_value());
  EXPECT_FALSE(IsdAs::parse("71-1:2").has_value());
  EXPECT_FALSE(IsdAs::parse("71-1:2:3:4").has_value());
  EXPECT_FALSE(IsdAs::parse("99999-559").has_value());
  EXPECT_FALSE(IsdAs::parse("71-10000:0:0").has_value());
  EXPECT_FALSE(IsdAs::parse("71-xyz").has_value());
}

TEST(IsdAs, HexGroupsParse) {
  auto as = As::parse("ffff:ffff:ffff");
  ASSERT_TRUE(as.has_value());
  EXPECT_EQ(as->value(), As::kMaxValue);
  EXPECT_EQ(as->to_string(), "ffff:ffff:ffff");
}

TEST(IsdAs, DecimalAboveBgpRangeRejected) {
  EXPECT_FALSE(As::parse("4294967296").has_value());
  EXPECT_TRUE(As::parse("4294967295").has_value());
}

TEST(IsdAs, GlobalIfaceIdFormatsAndCompares) {
  const auto ia = IsdAs::parse("71-225").value();
  GlobalIfaceId a{ia, 4};
  GlobalIfaceId b{ia, 5};
  EXPECT_LT(a, b);
  EXPECT_EQ(a.to_string(), "71-225#4");
}

// --- Buffers -----------------------------------------------------------------

TEST(Buffer, WriteReadRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0102030405060708ULL);
  w.str("hello");
  Reader r{w.bytes()};
  EXPECT_EQ(r.u8().value(), 0xAB);
  EXPECT_EQ(r.u16().value(), 0x1234);
  EXPECT_EQ(r.u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64().value(), 0x0102030405060708ULL);
  EXPECT_EQ(r.str().value(), "hello");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Buffer, ReaderDetectsUnderrun) {
  Writer w;
  w.u16(7);
  Reader r{w.bytes()};
  EXPECT_TRUE(r.u8().ok());
  EXPECT_TRUE(r.u8().ok());
  auto bad = r.u32();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, Errc::kParseError);
}

TEST(Buffer, HexRoundTrip) {
  const Bytes data = {0x00, 0x7F, 0x80, 0xFF};
  EXPECT_EQ(to_hex(data), "007f80ff");
  auto back = from_hex("007f80ff");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), data);
}

TEST(Buffer, HexRejectsBadInput) {
  EXPECT_FALSE(from_hex("abc").ok());
  EXPECT_FALSE(from_hex("zz").ok());
}

TEST(Buffer, PatchU16) {
  Writer w;
  w.u16(0);
  w.u8(9);
  w.patch_u16(0, 0xBEEF);
  Reader r{w.bytes()};
  EXPECT_EQ(r.u16().value(), 0xBEEF);
}

// --- Result ------------------------------------------------------------------

Result<int> parse_positive(int x) {
  if (x <= 0) return Error{Errc::kInvalidArgument, "not positive"};
  return x;
}

TEST(Result, PropagatesValuesAndErrors) {
  EXPECT_TRUE(parse_positive(3).ok());
  EXPECT_EQ(parse_positive(3).value(), 3);
  const auto err = parse_positive(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.error().code, Errc::kInvalidArgument);
  EXPECT_EQ(parse_positive(-1).value_or(42), 42);
}

TEST(Result, StatusWorks) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  Status bad{Errc::kTimeout, "slow"};
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, Errc::kTimeout);
}

// --- RNG ---------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, StreamsDiffer) {
  Rng a{123, "alpha"}, b{123, "beta"};
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) any_diff |= (a.next_u64() != b.next_u64());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, NextBelowIsInRange) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, UniformBounds) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, NormalHasRoughlyCorrectMoments) {
  Rng rng{99};
  double sum = 0, sumsq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, ExponentialMean) {
  Rng rng{5};
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, ChanceProbability) {
  Rng rng{11};
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

// --- strings / time ----------------------------------------------------------

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(Strings, SplitWs) {
  const auto parts = split_ws("  alpha\tbeta  gamma ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "beta");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\n"), "");
}

TEST(Strings, Format) {
  EXPECT_EQ(strformat("%d-%s", 7, "x"), "7-x");
}

TEST(Time, Formatting) {
  const SimTime t = 2 * kDay + 3 * kHour + 4 * kMinute + 5 * kSecond +
                    678 * kMillisecond;
  EXPECT_EQ(format_time(t), "2d 03:04:05.678");
  EXPECT_DOUBLE_EQ(to_ms(1500 * kMicrosecond), 1.5);
  EXPECT_EQ(from_ms(2.5), 2'500'000);
}

}  // namespace
}  // namespace sciera
