// Adversarial robustness sweeps: random byte-level corruption of packets,
// SCMP messages, topology files and PCBs must never crash a parser or a
// router, and MAC/signature protection must hold under every single-byte
// mutation of protected fields.
#include <gtest/gtest.h>

#include "controlplane/control_plane.h"
#include "sig/sig.h"
#include "topology/parser.h"
#include "topology/sciera_net.h"

namespace sciera {
namespace {

namespace a = topology::ases;

controlplane::ScionNetwork& net() {
  static controlplane::ScionNetwork network{topology::build_sciera()};
  return network;
}

Bytes valid_packet_bytes() {
  const auto paths = net().paths(a::uva(), a::ufms());
  dataplane::ScionPacket pkt;
  pkt.src = {a::uva(), 1};
  pkt.dst = {a::ufms(), 2};
  pkt.next_hdr = dataplane::kProtoScmp;
  pkt.path = paths.front().dataplane_path;
  pkt.payload = dataplane::make_echo_request(1, 1).serialize();
  return pkt.serialize().value();
}

// Parsers survive arbitrary random bytes.
class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, RandomBytesNeverCrashParsers) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 7919 + 13};
  Bytes junk(rng.next_below(300));
  for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
  // The parsers must return errors, not crash; success on random bytes is
  // allowed only if the payload happens to be self-consistent.
  (void)dataplane::ScionPacket::parse(junk);
  (void)dataplane::ScmpMessage::parse(junk);
  (void)dataplane::UdpDatagram::parse(junk);
  (void)sig::IpPacket::parse(junk);
  (void)topology::parse(std::string(junk.begin(), junk.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(0, 30));

// Truncation at every boundary is an error, never UB.
TEST(ParserFuzz, EveryTruncationRejected) {
  const Bytes bytes = valid_packet_bytes();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    Bytes truncated(bytes.begin(), bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(dataplane::ScionPacket::parse(truncated).ok())
        << "cut=" << cut;
  }
  // And the untruncated packet parses.
  EXPECT_TRUE(dataplane::ScionPacket::parse(bytes).ok());
}

// Single-byte mutations of a valid in-flight packet must never produce a
// successful echo: either a parser rejects it, a router drops it (MAC,
// ingress, bounds), or — for bytes outside the protected region, like the
// payload or flow id — the reply must come back unchanged semantics aside.
class MutationFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MutationFuzz, MutatedPathBytesNeverReachDestination) {
  auto& network = net();
  const auto paths = network.paths(a::uva(), a::princeton());
  ASSERT_FALSE(paths.empty());

  int delivered = 0;
  const dataplane::Address host{a::uva(), 0x0A0F0001};
  ASSERT_TRUE(network
                  .register_host(host, [&](const dataplane::ScionPacket&,
                                           SimTime) { ++delivered; })
                  .ok());

  Rng rng{static_cast<std::uint64_t>(GetParam()) * 104729 + 7};
  for (int trial = 0; trial < 20; ++trial) {
    dataplane::ScionPacket pkt;
    pkt.src = host;
    pkt.dst = {a::princeton(), 2};
    pkt.next_hdr = dataplane::kProtoScmp;
    pkt.path = paths.front().dataplane_path;
    pkt.payload = dataplane::make_echo_request(
                      9, static_cast<std::uint16_t>(trial))
                      .serialize();
    // Flip one random bit inside the path header region (info+hop fields):
    // offsets [40, 40 + path bytes).
    const std::size_t path_bytes =
        4 + pkt.path.info.size() * 8 + pkt.path.hops.size() * 12;
    auto bytes = pkt.serialize().value();
    const std::size_t offset = 36 + rng.next_below(path_bytes);
    bytes[offset] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));

    auto mutated = dataplane::ScionPacket::parse(bytes);
    if (!mutated.ok()) continue;  // parser rejected: fine
    // Inject through the source router like a malicious host would.
    (void)network.send_from_host(mutated.value());
  }
  network.sim().run_for(5 * kSecond);
  network.unregister_host(host);
  // No mutated packet may complete the round trip. (Bit flips in the
  // curr_inf/curr_hf pointers or seg_id are caught by MAC verification;
  // iface flips by ingress checks; expiry flips by MAC too.)
  EXPECT_EQ(delivered, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzz, ::testing::Range(0, 10));

// Routers never crash on totally random frames arriving from a link.
TEST(RouterFuzz, RandomFramesAreDiscarded) {
  auto& network = net();
  auto* router = network.router(a::geant());
  const auto before = router->stats().delivered;
  Rng rng{99};
  // Feed junk through the router's receive path via a real link arrival:
  // easiest is to parse-reject; emulate by calling receive with a frame.
  for (int i = 0; i < 200; ++i) {
    auto frame = std::make_shared<dataplane::UnderlayFrame>();
    frame->scion_bytes.resize(rng.next_below(200));
    for (auto& b : frame->scion_bytes) {
      b = static_cast<std::uint8_t>(rng.next_u64());
    }
    router->receive(frame, simnet::Arrival{nullptr, 1, network.sim().now()});
  }
  network.sim().run_for(kSecond);
  EXPECT_EQ(router->stats().delivered, before);
  EXPECT_GT(router->stats().drop_malformed, 0u);
}

// Sanitizer-friendly corpus for the packet parser: each case targets a
// specific bounds/validation path in src/dataplane/packet.cc, so an ASan/
// UBSan run exercises exactly the arithmetic those paths perform.
TEST(PacketCorpusFuzz, OversizedHopCountsRejected) {
  // PathMeta sits at offset 36 (12-byte common + 24-byte address header).
  // Rewrite it to claim maximal segments (3 x 63 hops): the hop-field loop
  // must hit "truncated hop field", never read past the buffer.
  Bytes bytes = valid_packet_bytes();
  ASSERT_GT(bytes.size(), 40u);
  const std::uint32_t meta = (63u << 12) | (63u << 6) | 63u;
  for (int i = 0; i < 4; ++i) {
    bytes[36 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(meta >> (24 - 8 * i));
  }
  const auto parsed = dataplane::ScionPacket::parse(bytes);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, Errc::kParseError);
}

TEST(PacketCorpusFuzz, SegLenGapRejected) {
  // seg_len = {k, 0, k}: a zero-length middle segment must fail
  // validate()'s "seg_len set for missing segment" rule even though the
  // total byte count can look plausible.
  Bytes bytes = valid_packet_bytes();
  const std::uint32_t meta = (2u << 12) | (0u << 6) | 2u;
  for (int i = 0; i < 4; ++i) {
    bytes[36 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(meta >> (24 - 8 * i));
  }
  EXPECT_FALSE(dataplane::ScionPacket::parse(bytes).ok());
}

TEST(PacketCorpusFuzz, CurrPointersPastEndRejected) {
  // curr_inf = 3 (no such segment) and curr_hf = 63: validate() must
  // reject the pointers before any router dereferences them.
  Bytes bytes = valid_packet_bytes();
  bytes[36] = static_cast<std::uint8_t>((3u << 6) | 63u);
  EXPECT_FALSE(dataplane::ScionPacket::parse(bytes).ok());
}

TEST(PacketCorpusFuzz, PayloadLengthOverrunRejected) {
  // A payload_len larger than the remaining bytes (offset 8..11 of the
  // common header) must fail the final bounds-checked read.
  Bytes bytes = valid_packet_bytes();
  bytes[8] = 0xFF;
  bytes[9] = 0xFF;
  EXPECT_FALSE(dataplane::ScionPacket::parse(bytes).ok());
}

TEST(PacketCorpusFuzz, TruncatedL4PayloadsRejected) {
  // Every truncation of the L4 payload parsers, mirroring the packet-level
  // sweep: SCMP echo and UDP datagrams.
  const Bytes scmp = dataplane::make_echo_request(5, 9).serialize();
  for (std::size_t cut = 0; cut < scmp.size(); ++cut) {
    Bytes t(scmp.begin(), scmp.begin() + static_cast<long>(cut));
    EXPECT_FALSE(dataplane::ScmpMessage::parse(t).ok()) << "scmp cut=" << cut;
  }
  dataplane::UdpDatagram dg;
  dg.src_port = 4242;
  dg.dst_port = 53;
  dg.data = bytes_of("sciera");
  const Bytes udp = dg.serialize();
  for (std::size_t cut = 0; cut < udp.size(); ++cut) {
    Bytes t(udp.begin(), udp.begin() + static_cast<long>(cut));
    EXPECT_FALSE(dataplane::UdpDatagram::parse(t).ok()) << "udp cut=" << cut;
  }
}

// Malformed-topology corpus for src/topology/parser.cc: every case must
// come back as a parse error, never a crash or a partially built topology.
TEST(TopologyCorpusFuzz, MalformedTopologiesRejected) {
  const char* corpus[] = {
      // 'as' declarations.
      "as",                                    // missing ISD-AS
      "as not-an-ia",                          // unparseable ISD-AS
      "as 71-559 lat=abc",                     // non-numeric coordinate
      "as 71-559 lon=12..5",                   // malformed double
      "as 71-559 name=\"unterminated",         // unterminated quote
      "as 99999999999999999999-1",             // ISD overflow
      "as 71-559\nas 71-559",                  // duplicate AS
      // 'link' declarations.
      "link",                                  // nothing at all
      "link l1 71-559",                        // missing peer + type
      "as 71-559\nas 64-1\nlink l1 71-559 64-1 wormhole",  // bad type
      "as 71-559\nas 64-1\nlink l1 71-559 64-1 core delay_us=ten",
      "as 71-559\nas 64-1\nlink l1 71-559 64-1 core bw_mbps=1e3",
      "as 71-559\nas 64-1\nlink l1 71-559 64-1 core ifaces=1",
      "as 71-559\nas 64-1\nlink l1 71-559 64-1 core ifaces=1:2:3",
      "as 71-559\nas 64-1\nlink l1 71-559 64-1 core ifaces=x:y",
      "link l1 71-559 64-1 core",              // both ASes undeclared
      "as 71-559\nlink l1 71-559 64-1 core",   // one AS undeclared
  };
  for (const char* text : corpus) {
    const auto parsed = topology::parse(text);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << text;
  }
}

TEST(TopologyCorpusFuzz, ParserRoundTripsTheRealTopology) {
  // The serializer and parser must agree on the deployed topology — the
  // corpus above proves rejection, this proves acceptance.
  const auto topo = topology::build_sciera();
  const auto reparsed = topology::parse(topology::serialize(topo));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->ases().size(), topo.ases().size());
  EXPECT_EQ(reparsed->links().size(), topo.links().size());
}

// Tampered PCB entries never verify, for every entry and field class.
TEST(PcbFuzz, EveryFieldMutationBreaksSignature) {
  auto& network = net();
  auto* pki71 = network.pki(71);
  auto* pki64 = network.pki(64);
  const controlplane::KeyLookup keys =
      [&](IsdAs as) -> const crypto::Ed25519::PublicKey* {
    auto* pki = as.isd() == 71 ? pki71 : pki64;
    const auto* creds = pki->credentials(as);
    return creds == nullptr ? nullptr : &creds->as_cert.subject_key;
  };
  const controlplane::PathSegment* segment = nullptr;
  for (const auto& candidate : network.segments().all()) {
    if (candidate.pcb.entries.size() >= 3) {
      segment = &candidate;
      break;
    }
  }
  ASSERT_NE(segment, nullptr);
  ASSERT_TRUE(verify_pcb(segment->pcb, keys).ok());

  for (std::size_t entry = 0; entry < segment->pcb.entries.size(); ++entry) {
    {
      auto tampered = segment->pcb;
      tampered.entries[entry].hop.cons_ingress ^= 1;
      EXPECT_FALSE(verify_pcb(tampered, keys).ok());
    }
    {
      auto tampered = segment->pcb;
      tampered.entries[entry].hop.cons_egress ^= 1;
      EXPECT_FALSE(verify_pcb(tampered, keys).ok());
    }
    {
      auto tampered = segment->pcb;
      tampered.entries[entry].beta ^= 0x0100;
      EXPECT_FALSE(verify_pcb(tampered, keys).ok());
    }
    {
      auto tampered = segment->pcb;
      tampered.entries[entry].hop.mac[0] ^= 1;
      EXPECT_FALSE(verify_pcb(tampered, keys).ok());
    }
    {
      auto tampered = segment->pcb;
      tampered.entries[entry].signature[10] ^= 1;
      EXPECT_FALSE(verify_pcb(tampered, keys).ok());
    }
  }
  // Reordering entries breaks the chain.
  auto reordered = segment->pcb;
  std::swap(reordered.entries[0], reordered.entries[1]);
  EXPECT_FALSE(verify_pcb(reordered, keys).ok());
  // Changing the header (timestamp) invalidates everything.
  auto reheaded = segment->pcb;
  reheaded.timestamp += 1;
  EXPECT_FALSE(verify_pcb(reheaded, keys).ok());
}

}  // namespace
}  // namespace sciera
