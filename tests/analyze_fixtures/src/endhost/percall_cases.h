// Golden fixture for the percall-keyschedule rule's end-host scope: the
// analyzer treats this tree as src/, so this file sits under
// src/endhost/ where the rule armed alongside src/dataplane/ when the
// LightningFilter moved in-path. One unsuppressed construction and one
// suppressed once-per-source construction. Scanned, never compiled;
// line numbers are load-bearing — append, don't reshuffle.
#pragma once

namespace fixtures {

class EndhostPercallCases {
 public:
  // percall-keyschedule: a fresh AesCmac per filter check reruns the
  // AES key expansion on every inbound packet — the PR 7 router bug,
  // reincarnated at the host boundary.
  void positive_per_packet_filter_check() {
    crypto::AesCmac cmac{key_};
    (void)cmac;
  }

  // Once-per-admitted-source fills suppress with a justification.
  void suppressed_source_admission() {
    // NOLINTNEXTLINE(percall-keyschedule) fixture: once per source AS
    const crypto::AesCmac cmac{key_};
    (void)cmac;
  }

  crypto::Aes128::Key key_{};
};

}  // namespace fixtures
