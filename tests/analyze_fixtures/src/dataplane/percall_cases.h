// Golden fixture for the directory-scoped percall-keyschedule rule: the
// analyzer treats this tree as src/, so this file sits under
// src/dataplane/ where the rule is armed. One unsuppressed construction
// and one suppressed once-per-key construction. Scanned, never
// compiled; line numbers are load-bearing — append, don't reshuffle.
#pragma once

namespace fixtures {

class PercallCases {
 public:
  // percall-keyschedule: a fresh AesCmac per call reruns the AES key
  // expansion and subkey derivation on every packet.
  void positive_per_packet_mac() {
    crypto::AesCmac cmac{key_};
    (void)cmac;
  }

  // Once-per-key fills suppress with a justification.
  void suppressed_cache_fill() {
    // NOLINTNEXTLINE(percall-keyschedule) fixture: fill-once per key
    const crypto::Aes128 cipher{key_};
    (void)cipher;
  }

  // Nested-name uses (types, statics) must NOT be flagged.
  crypto::AesCmac::Mac last_mac_{};
  // A bare member declaration runs no schedule and must NOT be flagged.
  crypto::Aes128::Key key_{};
};

}  // namespace fixtures
