// Golden fixture for sciera_analyze (lint.analyze_fixtures ctest): one
// unsuppressed and one suppressed case for each determinism/concurrency
// rule that is not directory-scoped. The file is scanned, never
// compiled; tools/analyze_fixture_check.cmake diffs the analyzer's JSON
// findings against tests/analyze_fixtures/expected.json, so line numbers
// here are load-bearing — append, don't reshuffle.
#pragma once

#include <map>
#include <random>
#include <string>
#include <unordered_map>

namespace fixtures {

class DeterminismCases {
 public:
  // unordered-iteration: range-for over a hash container.
  int positive_range_for() const {
    int sum = 0;
    for (const auto& [key, value] : table_) {
      sum += value;
    }
    return sum;
  }

  int suppressed_range_for() const {
    int sum = 0;
    // NOLINTNEXTLINE(unordered-iteration) fixture: suppression grammar
    for (const auto& [key, value] : table_) {
      sum += value;
    }
    return sum;
  }

  // Membership lookups on the same container must NOT be flagged.
  bool lookup_is_fine(int key) const { return table_.find(key) != table_.end(); }

 private:
  std::unordered_map<int, int> table_;

  // pointer-key-container: even ordered maps iterate in address order
  // when keyed by a pointer.
  std::map<const char*, int> by_pointer_;
  std::map<const char*, int> by_pointer_ok_;  // NOLINT(pointer-key-container)

  // unseeded-rng: std engines bypass sciera::Rng's replay-from-seed
  // contract.
  std::mt19937 raw_engine_;
  std::mt19937 raw_engine_ok_;  // NOLINT(unseeded-rng)

  // std-mutex-member: invisible to thread-safety analysis.
  std::mutex raw_mutex_;
  std::mutex raw_mutex_ok_;  // NOLINT(std-mutex-member)

  // legacy-nolint: bare marker still suppresses, but warns.
  int legacy_marker_ = 0;  // NOLINT
};

}  // namespace fixtures
