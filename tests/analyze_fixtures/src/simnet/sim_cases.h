// Golden fixture for sciera_analyze's directory-scoped rules: this file
// pretends to live in src/simnet/, so simnet-layering (the event core
// may include only common/, obs/ and simnet/) and float-accumulation
// (digest-visible directories accumulate in integers) apply. Scanned,
// never compiled; line numbers are pinned by expected.json.
#pragma once

#include "common/time.h"
#include "simnet/simulator.h"
#include "topology/topology.h"
#include "controlplane/beaconing.h"  // NOLINT(simnet-layering) fixture

namespace fixtures {

class SimCases {
 public:
  void accumulate(double sample) {
    jitter_acc_ += sample;
    budget_acc_ += sample;  // NOLINT(float-accumulation) fixture
    ticks_ += 1;            // integer accumulation is associative: not flagged
  }

 private:
  double jitter_acc_ = 0.0;
  double budget_acc_ = 0.0;
  long ticks_ = 0;
};

}  // namespace fixtures
