#include <gtest/gtest.h>

#include <map>

#include "deploy/effort.h"
#include "deploy/survey.h"

namespace sciera::deploy {
namespace {

TEST(Deployments, MatchesFigure3Timeline) {
  const auto deployments = sciera_deployments();
  EXPECT_GE(deployments.size(), 20u);
  // Chronology anchors from Figure 3.
  EXPECT_EQ(deployments.front().name, "GEANT");
  EXPECT_EQ(deployments.front().year, 2022);
  bool found_nus = false;
  for (const auto& d : deployments) {
    if (d.name == "NUS") {
      found_nus = true;
      EXPECT_EQ(d.year, 2025);
      EXPECT_EQ(d.month, 6);
    }
    EXPECT_GE(d.year, 2022);
    EXPECT_LE(d.year, 2025);
    EXPECT_GE(d.month, 1);
    EXPECT_LE(d.month, 12);
  }
  EXPECT_TRUE(found_nus);
}

TEST(Effort, LearningCurveReducesSameKindEffort) {
  const auto timeline = effort_timeline(sciera_deployments());
  std::map<ConnectionKind, double> last_effort;
  for (const auto& point : timeline) {
    const auto it = last_effort.find(point.deployment.kind);
    if (it != last_effort.end()) {
      // Later deployments of the same kind are never more expensive,
      // modulo per-party coordination overhead.
      EXPECT_LE(point.effort, it->second + 2.5)
          << point.deployment.name << " ("
          << connection_kind_name(point.deployment.kind) << ")";
    }
    last_effort[point.deployment.kind] = point.effort;
  }
}

TEST(Effort, FirstCoreSetupsDominante) {
  const auto timeline = effort_timeline(sciera_deployments());
  double max_effort = 0;
  std::string max_name;
  for (const auto& point : timeline) {
    if (point.effort > max_effort) {
      max_effort = point.effort;
      max_name = point.deployment.name;
    }
  }
  // "initial SCION network setups demanded significant effort" — the GEANT
  // greenfield deployment is the most expensive of all.
  EXPECT_EQ(max_name, "GEANT");
}

TEST(Effort, RecentDeploymentsAreCheap) {
  const auto timeline = effort_timeline(sciera_deployments());
  // "the most recent SCION deployments in 2025 ... took considerably less
  // effort than previous comparable setups."
  double first_reinstall = -1, last_reinstall = -1;
  for (const auto& point : timeline) {
    if (point.deployment.kind == ConnectionKind::kCoreReinstall) {
      if (first_reinstall < 0) first_reinstall = point.effort;
      last_reinstall = point.effort;
    }
  }
  ASSERT_GT(first_reinstall, 0);
  EXPECT_LT(last_reinstall, first_reinstall / 2);
}

TEST(Survey, EightRespondents) {
  EXPECT_EQ(survey_responses().size(), 8u);
}

TEST(Survey, MatchesEverySection56Percentage) {
  const auto summary = summarize(survey_responses());
  EXPECT_DOUBLE_EQ(summary.pct_over_decade_experience, 50.0);
  EXPECT_DOUBLE_EQ(summary.pct_engineers, 50.0);
  EXPECT_DOUBLE_EQ(summary.pct_setup_under_month, 37.5);
  EXPECT_DOUBLE_EQ(summary.pct_setup_under_six_months, 50.0);
  EXPECT_DOUBLE_EQ(summary.pct_no_vendor_support_needed, 62.5);
  EXPECT_DOUBLE_EQ(summary.pct_hardware_under_20k, 75.0);
  EXPECT_DOUBLE_EQ(summary.pct_no_licensing, 62.5);
  EXPECT_DOUBLE_EQ(summary.pct_no_hiring, 75.0);
  EXPECT_DOUBLE_EQ(summary.pct_opex_comparable_or_lower, 75.0);
  EXPECT_DOUBLE_EQ(summary.pct_driver_hardware, 62.5);
  EXPECT_DOUBLE_EQ(summary.pct_driver_staff, 50.0);
  EXPECT_DOUBLE_EQ(summary.pct_driver_monitoring, 25.0);
  EXPECT_DOUBLE_EQ(summary.pct_driver_power, 12.5);
  EXPECT_DOUBLE_EQ(summary.pct_under_10pct_workload, 87.5);
  EXPECT_DOUBLE_EQ(summary.pct_vendor_support_rare, 62.5);
}

TEST(Survey, RenderIncludesHeadlineNumbers) {
  const std::string text = render_summary(summarize(survey_responses()));
  EXPECT_NE(text.find("n=8"), std::string::npos);
  EXPECT_NE(text.find("37.5"), std::string::npos);
  EXPECT_NE(text.find("87.5"), std::string::npos);
}

TEST(Survey, EmptySurveyIsSafe) {
  const auto summary = summarize({});
  EXPECT_EQ(summary.respondents, 0);
  EXPECT_DOUBLE_EQ(summary.pct_engineers, 0.0);
}

}  // namespace
}  // namespace sciera::deploy
