// Sharded parallel core suite: the N-thread contract. A sharded run's
// merged ScheduleDigest must be a pure function of the scenario —
// independent of how many worker threads execute the shards — on the
// full-network failover scenario, the many-flow traffic matrix, and the
// kreonet-ring-cut chaos soak (whose serialized report must stay
// byte-identical). Plus the shard-aware API surface itself: ShardMap
// partitioning, Domain handles, scheduler-geometry validation, and the
// TrafficMatrix builder's input validation.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/soak.h"
#include "controlplane/control_plane.h"
#include "simnet/audit.h"
#include "simnet/shard.h"
#include "simnet/simulator.h"
#include "topology/sciera_net.h"
#include "workload/workload.h"

namespace sciera {
namespace {

namespace a = topology::ases;

// --- Domain & ShardMap -----------------------------------------------------

TEST(Domain, SentinelsAndEquality) {
  EXPECT_TRUE(simnet::Domain::global().is_global());
  EXPECT_FALSE(simnet::Domain::global().is_shard());
  EXPECT_TRUE(simnet::Domain::current().is_current());
  EXPECT_FALSE(simnet::Domain::current().is_shard());
  const auto three = simnet::Domain::shard(3);
  EXPECT_TRUE(three.is_shard());
  EXPECT_EQ(three.id(), 3u);
  EXPECT_EQ(three, simnet::Domain::shard(3));
  EXPECT_NE(three, simnet::Domain::shard(4));
  EXPECT_NE(three, simnet::Domain::global());
}

std::vector<IsdAs> topology_ases() {
  std::vector<IsdAs> ases;
  for (const auto& as_info : topology::build_sciera().ases()) {
    ases.push_back(as_info.ia);
  }
  return ases;
}

TEST(ShardMap, PartitionsEveryAsDeterministically) {
  const auto ases = topology_ases();
  const simnet::ShardMap first(ases, 4, simnet::ShardPolicy::kPerAs);
  const simnet::ShardMap second(ases, 4, simnet::ShardPolicy::kPerAs);
  EXPECT_EQ(first.shard_count(), 4u);
  for (const IsdAs ia : ases) {
    const auto domain = first.domain_of(ia);
    ASSERT_TRUE(domain.is_shard()) << ia.to_string();
    EXPECT_LT(domain.id(), first.shard_count());
    // Same inputs, same partition — the map must not depend on anything
    // but the AS list and the policy.
    EXPECT_EQ(domain, second.domain_of(ia)) << ia.to_string();
  }
}

TEST(ShardMap, PerIsdKeepsAnIsdOnOneShard) {
  const auto ases = topology_ases();
  const simnet::ShardMap map(ases, 4, simnet::ShardPolicy::kPerIsd);
  for (const IsdAs lhs : ases) {
    for (const IsdAs rhs : ases) {
      if (lhs.isd() != rhs.isd()) continue;
      EXPECT_EQ(map.domain_of(lhs), map.domain_of(rhs))
          << lhs.to_string() << " vs " << rhs.to_string();
    }
  }
}

TEST(ShardMap, UnknownAsFallsBackToGlobal) {
  const simnet::ShardMap map(topology_ases(), 4,
                             simnet::ShardPolicy::kPerAs);
  const IsdAs unknown = IsdAs::parse("99-99").value();
  EXPECT_TRUE(map.domain_of(unknown).is_global());
}

TEST(ShardMap, ClampsShardCountToKeyCount) {
  const std::vector<IsdAs> two{IsdAs::parse("1-5").value(),
                               IsdAs::parse("1-6").value()};
  const simnet::ShardMap map(two, 16, simnet::ShardPolicy::kPerAs);
  EXPECT_EQ(map.shard_count(), 2u);
}

// --- Scheduler-config validation -------------------------------------------

TEST(SchedulerConfigValidation, RejectsDegenerateGeometry) {
  simnet::SchedulerConfig config;
  config.bucket_width = 0;
  EXPECT_FALSE(simnet::validate_scheduler_config(config).ok());
  config = simnet::SchedulerConfig{};
  config.bucket_width = 3;  // not a power of two
  EXPECT_FALSE(simnet::validate_scheduler_config(config).ok());
  config = simnet::SchedulerConfig{};
  config.bucket_count = 0;
  EXPECT_FALSE(simnet::validate_scheduler_config(config).ok());
  config = simnet::SchedulerConfig{};
  config.bucket_count = 48;  // not a power of two
  EXPECT_FALSE(simnet::validate_scheduler_config(config).ok());
}

TEST(SchedulerConfigValidation, RejectsZeroShardsOrThreads) {
  simnet::SchedulerConfig config;
  config.shards = 0;
  EXPECT_FALSE(simnet::validate_scheduler_config(config).ok());
  config = simnet::SchedulerConfig{};
  config.threads = 0;
  EXPECT_FALSE(simnet::validate_scheduler_config(config).ok());
}

TEST(SchedulerConfigValidation, AcceptsDefaultAndShardedConfigs) {
  EXPECT_TRUE(simnet::validate_scheduler_config({}).ok());
  simnet::SchedulerConfig config;
  config.shards = 8;
  config.threads = 4;
  EXPECT_TRUE(simnet::validate_scheduler_config(config).ok());
}

// --- TrafficMatrix builder validation --------------------------------------

TEST(TrafficMatrixBuilder, RequiresNet) {
  const auto result = workload::TrafficMatrix::Builder{}.build();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::kInvalidArgument);
}

TEST(TrafficMatrixBuilder, RejectsDegenerateMatrices) {
  controlplane::ScionNetwork net{topology::build_sciera()};
  const auto reject = [&net](workload::WorkloadConfig config) {
    return workload::TrafficMatrix::Builder{}
        .net(net)
        .config(std::move(config))
        .build();
  };
  workload::WorkloadConfig config;
  config.hosts = 1;
  EXPECT_FALSE(reject(config).ok());
  config = workload::WorkloadConfig{};
  config.flows = 0;
  EXPECT_FALSE(reject(config).ok());
  config = workload::WorkloadConfig{};
  config.packets_per_flow = 0;
  EXPECT_FALSE(reject(config).ok());
  config = workload::WorkloadConfig{};
  config.mean_interval = 0;
  EXPECT_FALSE(reject(config).ok());
  config = workload::WorkloadConfig{};
  config.mean_interval = -5;
  EXPECT_FALSE(reject(config).ok());
  config = workload::WorkloadConfig{};
  config.start_window = -1;
  EXPECT_FALSE(reject(config).ok());
}

TEST(TrafficMatrixBuilder, RejectsUnknownPlacementAs) {
  controlplane::ScionNetwork net{topology::build_sciera()};
  workload::WorkloadConfig config;
  config.ases = {a::uva(), IsdAs::parse("99-99").value()};
  const auto result = workload::TrafficMatrix::Builder{}
                          .net(net)
                          .config(config)
                          .build();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::kNotFound);
}

TEST(TrafficMatrixBuilder, BuildsAndLaunchesValidatedMatrix) {
  controlplane::ScionNetwork net{topology::build_sciera()};
  workload::WorkloadConfig config;
  config.hosts = 4;
  config.flows = 6;
  config.packets_per_flow = 3;
  auto matrix = workload::TrafficMatrix::Builder{}
                    .net(net)
                    .config(config)
                    .build();
  ASSERT_TRUE(matrix.ok());
  ASSERT_TRUE((*matrix)->launch().ok());
  net.sim().run_all();
  EXPECT_GT((*matrix)->report().packets_delivered, 0u);
}

// --- N-thread digest parity ------------------------------------------------

constexpr std::size_t kShards = 8;
const std::vector<std::size_t> kThreadCounts{1, 2, 4, 8};

simnet::SchedulerConfig sharded_config(std::size_t threads) {
  simnet::SchedulerConfig config;
  config.shards = kShards;
  config.threads = threads;
  return config;
}

simnet::ScheduleDigest run_parallel_failover(std::size_t threads) {
  controlplane::ScionNetwork::Options options;
  options.seed = 0x5EED;
  options.scheduler = sharded_config(threads);
  controlplane::ScionNetwork net{topology::build_sciera(), options};

  const dataplane::Address host{a::uva(), 0x0A000001};
  int delivered = 0;
  EXPECT_TRUE(net.register_host(host, [&](const dataplane::ScionPacket&,
                                          SimTime) { ++delivered; })
                  .ok());
  const auto paths = net.paths(a::uva(), a::ufms());
  EXPECT_FALSE(paths.empty());
  auto send_burst = [&] {
    for (int i = 0; i < 5; ++i) {
      dataplane::ScionPacket pkt;
      pkt.src = host;
      pkt.dst = {a::ufms(), 2};
      pkt.next_hdr = dataplane::kProtoScmp;
      pkt.path = paths.front().dataplane_path;
      pkt.payload =
          dataplane::make_echo_request(7, static_cast<std::uint16_t>(i))
              .serialize();
      EXPECT_TRUE(net.send_from_host(pkt).ok());
    }
  };
  send_burst();
  net.sim().run_for(kSecond);
  const std::string label = net.topology().links().front().label;
  net.set_link_up(label, false);
  send_burst();
  net.sim().run_for(kSecond);
  net.set_link_up(label, true);
  send_burst();
  net.sim().run_for(2 * kSecond);
  EXPECT_GT(delivered, 0);
  return net.sim().schedule_digest();
}

TEST(ThreadParity, FailoverScenario) {
  const auto report = simnet::audit_thread_parity(
      [](std::size_t threads) { return run_parallel_failover(threads); },
      kThreadCounts);
  EXPECT_TRUE(report.parity()) << report.to_string();
  EXPECT_GT(report.digests.front().executed, 0u);
}

simnet::ScheduleDigest run_parallel_many_flow(std::size_t threads) {
  controlplane::ScionNetwork::Options options;
  options.seed = 0xCA4FA16;
  options.scheduler = sharded_config(threads);
  controlplane::ScionNetwork net{topology::build_sciera(), options};
  workload::WorkloadConfig wconfig;
  wconfig.hosts = 6;
  wconfig.flows = 18;
  wconfig.packets_per_flow = 8;
  auto matrix = workload::TrafficMatrix::Builder{}
                    .net(net)
                    .config(wconfig)
                    .build();
  EXPECT_TRUE(matrix.ok());
  EXPECT_TRUE((*matrix)->launch().ok());
  net.sim().run_all();
  EXPECT_GT((*matrix)->report().packets_delivered, 0u);
  return net.sim().schedule_digest();
}

TEST(ThreadParity, ManyFlowWorkload) {
  const auto report = simnet::audit_thread_parity(
      [](std::size_t threads) { return run_parallel_many_flow(threads); },
      kThreadCounts);
  EXPECT_TRUE(report.parity()) << report.to_string();
}

// The legacy single-shard core must be untouched by the refactor: a
// sharded-with-one-shard config collapses to the legacy queue, and its
// digest matches a plain default-config run of the same scenario.
TEST(ThreadParity, SingleShardMatchesLegacyCore) {
  const auto legacy = run_parallel_many_flow(1);
  controlplane::ScionNetwork::Options options;
  options.seed = 0xCA4FA16;
  controlplane::ScionNetwork net{topology::build_sciera(), options};
  workload::WorkloadConfig wconfig;
  wconfig.hosts = 6;
  wconfig.flows = 18;
  wconfig.packets_per_flow = 8;
  workload::TrafficMatrix matrix{net, wconfig};
  ASSERT_TRUE(matrix.launch().ok());
  net.sim().run_all();
  // Different shard counts execute different (equally valid) schedules;
  // only the 1-shard sharded config is defined to collapse to legacy.
  simnet::SchedulerConfig one_shard;
  one_shard.shards = 1;
  one_shard.threads = 8;  // clamped to shards
  controlplane::ScionNetwork::Options collapsed_options;
  collapsed_options.seed = 0xCA4FA16;
  collapsed_options.scheduler = one_shard;
  controlplane::ScionNetwork collapsed{topology::build_sciera(),
                                       collapsed_options};
  workload::TrafficMatrix collapsed_matrix{collapsed, wconfig};
  ASSERT_TRUE(collapsed_matrix.launch().ok());
  collapsed.sim().run_all();
  EXPECT_EQ(net.sim().schedule_digest(), collapsed.sim().schedule_digest());
  (void)legacy;
}

// --- Chaos soak byte parity ------------------------------------------------

TEST(ThreadParity, RingCutSoakReportBytesIdentical) {
  const auto report_for = [](std::size_t threads) {
    chaos::SoakOptions options;
    options.duration = 4 * kSecond;
    options.scheduler = sharded_config(threads);
    const auto report =
        chaos::run_soak(chaos::kreonet_ring_cut_plan(), options);
    EXPECT_TRUE(report.ok());
    return report.ok() ? report->to_json() : std::string{};
  };
  const std::string baseline = report_for(1);
  ASSERT_FALSE(baseline.empty());
  EXPECT_TRUE(chaos::validate_report_json(baseline));
  for (const std::size_t threads : {2, 4, 8}) {
    EXPECT_EQ(baseline, report_for(threads)) << threads << " threads";
  }
}

}  // namespace
}  // namespace sciera
