// SCION-IP Gateway tests: legacy IP hosts communicating transparently
// across continents through paired SIGs (the Edge model of Appendix B).
#include <gtest/gtest.h>

#include "sig/sig.h"
#include "topology/sciera_net.h"

namespace sciera::sig {
namespace {

namespace a = topology::ases;

controlplane::ScionNetwork& net() {
  static controlplane::ScionNetwork network{topology::build_sciera()};
  return network;
}

TEST(IpPacket, SerializeParseRoundTrip) {
  IpPacket packet;
  packet.src_ip = 0xC0A80001;  // 192.168.0.1
  packet.dst_ip = 0x0A141E28;
  packet.protocol = 6;
  packet.payload = bytes_of("tcp-ish payload");
  const auto parsed = IpPacket::parse(packet.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), packet);
}

TEST(IpPacket, ParseRejectsTruncation) {
  const auto bytes = IpPacket{1, 2, 17, bytes_of("x")}.serialize();
  Bytes cut(bytes.begin(), bytes.begin() + 6);
  EXPECT_FALSE(IpPacket::parse(cut).ok());
}

TEST(IpPrefix, ContainmentSemantics) {
  const IpPrefix net24{0xC0A80100, 24};  // 192.168.1.0/24
  EXPECT_TRUE(net24.contains(0xC0A80101));
  EXPECT_TRUE(net24.contains(0xC0A801FF));
  EXPECT_FALSE(net24.contains(0xC0A80201));
  const IpPrefix host{0xC0A80101, 32};
  EXPECT_TRUE(host.contains(0xC0A80101));
  EXPECT_FALSE(host.contains(0xC0A80102));
  const IpPrefix any{0, 0};
  EXPECT_TRUE(any.contains(0xDEADBEEF));
}

class SigPairFixture : public ::testing::Test {
 protected:
  SigPairFixture()
      : campus_sig_(net(), {a::kaust(), 0x0A000001},
                    [this](const IpPacket& packet, SimTime t) {
                      campus_rx_.emplace_back(packet, t);
                    }),
        hq_sig_(net(), {a::eth(), 0x0A000001},
                [this](const IpPacket& packet, SimTime t) {
                  hq_rx_.emplace_back(packet, t);
                }) {
    // KAUST campus LAN is 10.1.0.0/16, ETH side is 10.2.0.0/16.
    campus_sig_.add_rule(IpPrefix{0x0A020000, 16}, hq_sig_.address());
    hq_sig_.add_rule(IpPrefix{0x0A010000, 16}, campus_sig_.address());
  }

  ScionIpGateway campus_sig_;
  ScionIpGateway hq_sig_;
  std::vector<std::pair<IpPacket, SimTime>> campus_rx_;
  std::vector<std::pair<IpPacket, SimTime>> hq_rx_;
};

TEST_F(SigPairFixture, LegacyHostsCommunicateAcrossContinents) {
  IpPacket packet;
  packet.src_ip = 0x0A010005;  // 10.1.0.5 at KAUST
  packet.dst_ip = 0x0A020009;  // 10.2.0.9 at ETH
  packet.payload = bytes_of("legacy application data");
  const SimTime t0 = net().sim().now();
  ASSERT_TRUE(campus_sig_.send_ip(packet).ok());
  net().sim().run_for(3 * kSecond);
  ASSERT_EQ(hq_rx_.size(), 1u);
  EXPECT_EQ(hq_rx_[0].first, packet);  // byte-identical after the tunnel
  // Jeddah -> Zurich: tens of ms over SCIERA.
  const Duration latency = hq_rx_[0].second - t0;
  EXPECT_GT(to_ms(latency), 10.0);
  EXPECT_LT(to_ms(latency), 400.0);
  EXPECT_EQ(campus_sig_.stats().encapsulated, 1u);
  EXPECT_EQ(hq_sig_.stats().decapsulated, 1u);
}

TEST_F(SigPairFixture, BidirectionalFlow) {
  IpPacket request;
  request.src_ip = 0x0A010005;
  request.dst_ip = 0x0A020009;
  request.payload = bytes_of("GET /");
  ASSERT_TRUE(campus_sig_.send_ip(request).ok());
  net().sim().run_for(2 * kSecond);
  ASSERT_EQ(hq_rx_.size(), 1u);
  IpPacket response;
  response.src_ip = hq_rx_[0].first.dst_ip;
  response.dst_ip = hq_rx_[0].first.src_ip;
  response.payload = bytes_of("200 OK");
  ASSERT_TRUE(hq_sig_.send_ip(response).ok());
  net().sim().run_for(2 * kSecond);
  ASSERT_EQ(campus_rx_.size(), 1u);
  EXPECT_EQ(campus_rx_[0].first.payload, bytes_of("200 OK"));
}

TEST_F(SigPairFixture, UnknownDestinationRejected) {
  IpPacket packet;
  packet.src_ip = 0x0A010005;
  packet.dst_ip = 0x08080808;  // no rule
  const auto status = campus_sig_.send_ip(packet);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, Errc::kNotFound);
  EXPECT_EQ(campus_sig_.stats().no_rule, 1u);
}

TEST_F(SigPairFixture, FailoverWhenPrimaryLinkDies) {
  // Cut KAUST's KREONET uplink: the tunnel must re-path via GEANT.
  net().set_link_up("kisti-sg-kaust", false);
  IpPacket packet;
  packet.src_ip = 0x0A010005;
  packet.dst_ip = 0x0A020009;
  packet.payload = bytes_of("after failover");
  ASSERT_TRUE(campus_sig_.send_ip(packet).ok());
  net().sim().run_for(3 * kSecond);
  net().set_link_up("kisti-sg-kaust", true);
  ASSERT_EQ(hq_rx_.size(), 1u);
  EXPECT_EQ(hq_rx_[0].first.payload, bytes_of("after failover"));
}

TEST_F(SigPairFixture, GeofencingPolicyBlocksTunnel) {
  // Forbid ISD 64 entirely: ETH (64-2:0:9) becomes unreachable for the
  // tunnel, so the SIG reports it rather than violating the policy.
  campus_sig_.set_policy(endhost::geofence_policy({64}));
  IpPacket packet;
  packet.src_ip = 0x0A010005;
  packet.dst_ip = 0x0A020009;
  const auto status = campus_sig_.send_ip(packet);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, Errc::kUnreachable);
}

}  // namespace
}  // namespace sciera::sig
