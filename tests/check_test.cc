// Covers the SCIERA_CHECK/SCIERA_DCHECK invariant machinery (counters,
// fatal vs. debug behavior) and the simnet determinism auditor: the same
// seed must reproduce the exact event schedule (hash over every executed
// (time, seq) pair), and a perturbed seed must not.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>

#include "common/check.h"
#include "common/rng.h"
#include "controlplane/control_plane.h"
#include "dataplane/scmp.h"
#include "simnet/audit.h"
#include "simnet/simulator.h"
#include "topology/sciera_net.h"

namespace sciera {
namespace {

namespace a = topology::ases;

// Restores the process-default abort mode even when a test fails early.
class CountModeGuard {
 public:
  CountModeGuard() {
    CheckRegistry::instance().set_fail_mode(CheckFailMode::kCount);
  }
  ~CountModeGuard() {
    CheckRegistry::instance().set_fail_mode(CheckFailMode::kAbort);
  }
};

TEST(CheckRegistryTest, CountViolationIncrements) {
  auto& registry = CheckRegistry::instance();
  const auto before = registry.count("test.counter_a");
  count_violation("test.counter_a");
  count_violation("test.counter_a");
  count_violation("test.counter_b");
  EXPECT_EQ(registry.count("test.counter_a"), before + 2);
  EXPECT_GE(registry.count("test.counter_b"), 1u);
  EXPECT_GE(registry.total(), before + 3);
}

TEST(CheckRegistryTest, SnapshotIsSortedByCategory) {
  count_violation("test.zzz");
  count_violation("test.aaa");
  const auto snapshot = CheckRegistry::instance().snapshot();
  ASSERT_GE(snapshot.size(), 2u);
  EXPECT_TRUE(std::is_sorted(
      snapshot.begin(), snapshot.end(),
      [](const auto& x, const auto& y) { return x.first < y.first; }));
}

TEST(CheckMacroTest, FailureCountsWithoutDyingInCountMode) {
  CountModeGuard guard;
  auto& registry = CheckRegistry::instance();
  const auto before = registry.count("test.check_macro");
  const int value = 3;
  SCIERA_CHECK(value == 3, "test.check_macro");  // passes: no count
  EXPECT_EQ(registry.count("test.check_macro"), before);
  SCIERA_CHECK(value == 4, "test.check_macro");  // fails: counted, survives
  SCIERA_CHECK(value == 5, "test.check_macro");
  EXPECT_EQ(registry.count("test.check_macro"), before + 2);
}

using CheckMacroDeathTest = ::testing::Test;

TEST(CheckMacroDeathTest, FailureAbortsInDefaultMode) {
  ASSERT_EQ(CheckRegistry::instance().fail_mode(), CheckFailMode::kAbort);
  EXPECT_DEATH(SCIERA_CHECK(1 == 2, "test.fatal"), "invariant violated");
}

TEST(CheckMacroTest, DcheckMatchesBuildMode) {
  CountModeGuard guard;
  auto& registry = CheckRegistry::instance();
  const auto before = registry.count("test.dcheck");
  int evaluations = 0;
  SCIERA_DCHECK((++evaluations, false), "test.dcheck");
#if SCIERA_DCHECK_IS_ON
  // Debug flavor: the condition ran and the failure was recorded.
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(registry.count("test.dcheck"), before + 1);
#else
  // Release flavor: compiled out entirely — no evaluation, no count.
  EXPECT_EQ(evaluations, 0);
  EXPECT_EQ(registry.count("test.dcheck"), before);
#endif
}

// --- Schedule digest on the raw simulator --------------------------------

// A small seeded workload: chained timers with RNG-driven delays.
simnet::ScheduleDigest run_timer_scenario(std::uint64_t seed) {
  simnet::Simulator sim;
  auto rng = std::make_shared<Rng>(seed);
  std::function<void(int)> tick = [&sim, rng, &tick](int remaining) {
    if (remaining <= 0) return;
    sim.after(static_cast<Duration>(rng->next_below(kMillisecond) + 1),
              [&tick, remaining] { tick(remaining - 1); });
  };
  for (int chain = 0; chain < 8; ++chain) tick(50);
  sim.run_all();
  return sim.schedule_digest();
}

TEST(ScheduleDigestTest, IdenticalRunsProduceIdenticalDigests) {
  const auto first = run_timer_scenario(42);
  const auto second = run_timer_scenario(42);
  EXPECT_EQ(first, second);
  EXPECT_GT(first.executed, 0u);
}

TEST(ScheduleDigestTest, DifferentSeedsDiverge) {
  EXPECT_NE(run_timer_scenario(42).hash, run_timer_scenario(43).hash);
}

TEST(ScheduleDigestTest, DigestCoversOrderNotJustCount) {
  // Two simulators executing the same number of events at different times
  // must not collide.
  simnet::Simulator early;
  early.after(1 * kMillisecond, [] {});
  early.run_all();
  simnet::Simulator late;
  late.after(2 * kMillisecond, [] {});
  late.run_all();
  EXPECT_EQ(early.executed_events(), late.executed_events());
  EXPECT_NE(early.schedule_hash(), late.schedule_hash());
}

TEST(SimulatorInvariantTest, SchedulingInThePastIsClampedAndAudited) {
  CountModeGuard guard;
  auto& registry = CheckRegistry::instance();
  const auto before = registry.count("simnet.schedule_in_past");
  simnet::Simulator sim;
  sim.after(5 * kMillisecond, [&sim] {
    // Absolute time 1ms is already in the past at 5ms.
    sim.at(1 * kMillisecond, [] {});
  });
  sim.run_all();
  EXPECT_EQ(registry.count("simnet.schedule_in_past"), before + 1);
  EXPECT_EQ(sim.now(), 5 * kMillisecond);  // clamped, not rewound
}

// --- Determinism auditor on the full SCIERA network ----------------------

simnet::ScheduleDigest run_network_scenario(std::uint64_t seed) {
  controlplane::ScionNetwork::Options options;
  options.seed = seed;
  controlplane::ScionNetwork net{topology::build_sciera(), options};

  const dataplane::Address host{a::uva(), 0x0A000001};
  int delivered = 0;
  EXPECT_TRUE(net.register_host(host, [&](const dataplane::ScionPacket&,
                                          SimTime) { ++delivered; })
                  .ok());
  const auto paths = net.paths(a::uva(), a::ufms());
  EXPECT_FALSE(paths.empty());
  for (int i = 0; i < 5; ++i) {
    dataplane::ScionPacket pkt;
    pkt.src = host;
    pkt.dst = {a::ufms(), 2};
    pkt.next_hdr = dataplane::kProtoScmp;
    pkt.path = paths.front().dataplane_path;
    pkt.payload =
        dataplane::make_echo_request(7, static_cast<std::uint16_t>(i))
            .serialize();
    EXPECT_TRUE(net.send_from_host(pkt).ok());
  }
  net.sim().run_for(2 * kSecond);
  EXPECT_GT(delivered, 0);
  return net.sim().schedule_digest();
}

TEST(DeterminismAuditTest, SameSeedReplaysIdenticalSchedule) {
  const auto report = simnet::audit_determinism(
      [] { return run_network_scenario(0x5C1E2A); });
  EXPECT_TRUE(report.deterministic()) << report.to_string();
  EXPECT_GT(report.first.executed, 0u);
  EXPECT_NE(report.to_string().find("deterministic"), std::string::npos);
}

TEST(DeterminismAuditTest, PerturbedSeedDivergesSchedule) {
  const auto base = run_network_scenario(0x5C1E2A);
  const auto perturbed = run_network_scenario(0x5C1E2B);
  EXPECT_NE(base.hash, perturbed.hash);
}

TEST(DeterminismAuditTest, MismatchIsReportedAndAudited) {
  CountModeGuard guard;
  auto& registry = CheckRegistry::instance();
  const auto before = registry.count("simnet.nondeterministic_schedule");
  // A deliberately nondeterministic scenario: the seed changes per run.
  std::uint64_t next_seed = 1;
  const auto report = simnet::audit_determinism(
      [&next_seed] { return run_timer_scenario(next_seed++); });
  EXPECT_FALSE(report.deterministic());
  EXPECT_NE(report.to_string().find("NONDETERMINISTIC"), std::string::npos);
  EXPECT_EQ(registry.count("simnet.nondeterministic_schedule"), before + 1);
}

}  // namespace
}  // namespace sciera
