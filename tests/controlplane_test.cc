// Integration tests: beaconing over the SCIERA topology, PCB signature
// verification, path combination (joins, shortcuts, peering), and real
// end-to-end forwarding of SCMP echoes through every border router on a
// combined path.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "controlplane/control_plane.h"
#include "simnet/audit.h"
#include "topology/sciera_net.h"

namespace sciera::controlplane {
namespace {

namespace a = topology::ases;

// Synthetic two-entry segment for SegmentStore unit tests. Distinct
// origin/terminus pairs give distinct fingerprints.
PathSegment make_segment(std::uint16_t origin, std::uint16_t terminus,
                         std::vector<topology::LinkId> links,
                         SimTime expires_at) {
  PathSegment segment;
  segment.type = SegType::kCore;
  AsEntry first;
  first.ia = IsdAs{71, As{origin}};
  AsEntry second;
  second.ia = IsdAs{71, As{terminus}};
  segment.pcb.entries = {first, second};
  segment.links = std::move(links);
  segment.expires_at = expires_at;
  return segment;
}

class ScieraFixture : public ::testing::Test {
 protected:
  static ScionNetwork& net() {
    // Building the network (PKI keygen + beaconing) is expensive; share one
    // instance across the suite and never mutate link state in these tests.
    static ScionNetwork network{topology::build_sciera()};
    return network;
  }
};

TEST_F(ScieraFixture, BeaconingProducesAllSegmentTypes) {
  const auto& store = net().segments();
  EXPECT_GT(store.count(SegType::kCore), 50u);
  EXPECT_GT(store.count(SegType::kUp), 15u);
  EXPECT_EQ(store.count(SegType::kUp), store.count(SegType::kDown));
}

// --- Segment expiry and the self-healing refresh sweep ----------------------

TEST(SegmentStore, PruneExpiredDropsAgedKeepsImmortal) {
  SegmentStore store;
  store.add(make_segment(1, 2, {}, 0));  // expires_at 0 = never
  store.add(make_segment(1, 3, {}, 5 * kSecond));
  store.add(make_segment(1, 4, {}, 9 * kSecond));
  EXPECT_EQ(store.prune_expired(4 * kSecond), 0u);
  // Boundary: a segment aged exactly to expires_at is gone (<= now).
  EXPECT_EQ(store.prune_expired(5 * kSecond), 1u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.prune_expired(100 * kSecond), 1u);
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.all()[0].terminus(), (IsdAs{71, As{2}}));
}

TEST(SegmentStore, RefreshAccountsEveryFateDeterministically) {
  const SimTime now = 2 * kSecond;
  const SimTime new_expiry = 8 * kSecond;
  SegmentStore store;
  store.add(make_segment(1, 2, {0}, 3 * kSecond));  // refreshed: in fresh
  store.add(make_segment(1, 3, {7}, 3 * kSecond));  // revoked: link 7 down
  store.add(make_segment(1, 4, {}, 1 * kSecond));   // expired: absent + aged
  store.add(make_segment(1, 5, {}, 10 * kSecond));  // kept: absent, in-life
  SegmentStore fresh;
  fresh.add(make_segment(1, 2, {0}, 0));
  fresh.add(make_segment(1, 6, {1}, 0));  // added
  const RefreshDelta delta =
      store.refresh(fresh, now, new_expiry,
                    [](topology::LinkId id) { return id != 7; });
  EXPECT_EQ(delta.refreshed, 1u);
  EXPECT_EQ(delta.revoked, 1u);
  EXPECT_EQ(delta.expired, 1u);
  EXPECT_EQ(delta.added, 1u);
  ASSERT_EQ(store.size(), 3u);
  // Survivors keep their relative order; additions follow in beaconing
  // order. The refreshed segment carries the new expiry, the merely-kept
  // one its original.
  EXPECT_EQ(store.all()[0].terminus(), (IsdAs{71, As{2}}));
  EXPECT_EQ(store.all()[0].expires_at, new_expiry);
  EXPECT_EQ(store.all()[1].terminus(), (IsdAs{71, As{5}}));
  EXPECT_EQ(store.all()[1].expires_at, 10 * kSecond);
  EXPECT_EQ(store.all()[2].terminus(), (IsdAs{71, As{6}}));
  EXPECT_EQ(store.all()[2].expires_at, new_expiry);
}

TEST(SegmentStore, RefreshWithNullLinkPredicateRevokesNothing) {
  SegmentStore store;
  store.add(make_segment(1, 2, {7}, 3 * kSecond));
  SegmentStore fresh;
  const RefreshDelta delta = store.refresh(fresh, 0, 8 * kSecond, nullptr);
  EXPECT_EQ(delta.revoked, 0u);
  EXPECT_EQ(store.size(), 1u);  // absent from fresh but not yet expired
}

TEST_F(ScieraFixture, PcbSignaturesVerify) {
  auto* pki71 = net().pki(71);
  auto* pki64 = net().pki(64);
  ASSERT_NE(pki71, nullptr);
  ASSERT_NE(pki64, nullptr);
  const KeyLookup keys = [&](IsdAs as) -> const crypto::Ed25519::PublicKey* {
    auto* pki = as.isd() == 71 ? pki71 : pki64;
    const auto* creds = pki->credentials(as);
    return creds == nullptr ? nullptr : &creds->as_cert.subject_key;
  };
  int checked = 0;
  for (const auto& segment : net().segments().all()) {
    ASSERT_TRUE(verify_pcb(segment.pcb, keys).ok())
        << segment.fingerprint();
    if (++checked >= 200) break;  // spot check a representative sample
  }
  EXPECT_GE(checked, 100);
}

TEST_F(ScieraFixture, TamperedPcbFailsVerification) {
  auto* pki71 = net().pki(71);
  const KeyLookup keys = [&](IsdAs as) -> const crypto::Ed25519::PublicKey* {
    if (as.isd() != 71) return nullptr;
    const auto* creds = pki71->credentials(as);
    return creds == nullptr ? nullptr : &creds->as_cert.subject_key;
  };
  for (const auto& segment : net().segments().all()) {
    if (segment.pcb.entries.size() < 2 || segment.origin().isd() != 71) {
      continue;
    }
    Pcb tampered = segment.pcb;
    tampered.entries[0].hop.cons_egress ^= 1;  // prefix hijack attempt
    EXPECT_FALSE(verify_pcb(tampered, keys).ok());
    Pcb dropped = segment.pcb;
    dropped.entries.erase(dropped.entries.begin() + 1);  // splice out an AS
    EXPECT_FALSE(verify_pcb(dropped, keys).ok());
    return;
  }
  FAIL() << "no multi-entry ISD-71 segment found";
}

TEST_F(ScieraFixture, LeafPairsHaveAtLeastTwoPaths) {
  // Section 5.5: "for each source-destination AS pair, there are at least
  // 2 distinct paths available".
  const auto ms = topology::path_matrix_ases();
  for (IsdAs src : ms) {
    for (IsdAs dst : ms) {
      if (src == dst) continue;
      const auto paths = net().paths(src, dst);
      EXPECT_GE(paths.size(), 2u)
          << src.to_string() << " -> " << dst.to_string();
    }
  }
}

TEST_F(ScieraFixture, PathsAreLoopFreeAndDeduplicated) {
  const auto paths = net().paths(a::uva(), a::ufms());
  EXPECT_GE(paths.size(), 10u);
  std::set<std::string> fps;
  for (const auto& path : paths) {
    std::set<IsdAs> unique(path.as_sequence.begin(), path.as_sequence.end());
    EXPECT_EQ(unique.size(), path.as_sequence.size()) << path.to_string();
    EXPECT_TRUE(fps.insert(path.fingerprint()).second) << path.to_string();
    EXPECT_TRUE(path.dataplane_path.validate().ok());
    EXPECT_EQ(path.as_sequence.front(), a::uva());
    EXPECT_EQ(path.as_sequence.back(), a::ufms());
    // links/interfaces bookkeeping is consistent.
    EXPECT_EQ(path.interfaces.size(), 2 * path.links.size());
  }
}

TEST_F(ScieraFixture, SingleBgpPathButManyScionPathsDaejeonSingapore) {
  // Section 5.5: "while there is only a single BGP path from the Daejeon
  // core to the Singapore core, SCIERA also provides paths around the
  // globe via Chicago and Amsterdam."
  const auto paths = net().paths(a::kisti_dj(), a::kisti_sg());
  ASSERT_GE(paths.size(), 3u);
  bool direct = false, around_the_globe = false;
  for (const auto& path : paths) {
    if (path.as_sequence.size() == 3 &&
        path.as_sequence[1] == a::kisti_hk()) {
      direct = true;
    }
    bool via_chicago = false;
    for (IsdAs ia : path.as_sequence) {
      if (ia == a::kisti_chg()) via_chicago = true;
    }
    if (via_chicago) around_the_globe = true;
  }
  EXPECT_TRUE(direct);
  EXPECT_TRUE(around_the_globe);
}

TEST_F(ScieraFixture, CrossIsdPathsExist) {
  const auto paths = net().paths(a::ovgu(), a::eth());
  ASSERT_GE(paths.size(), 1u);
  for (const auto& path : paths) {
    EXPECT_EQ(path.as_sequence.front().isd(), 71);
    EXPECT_EQ(path.as_sequence.back().isd(), 64);
  }
}

TEST_F(ScieraFixture, PeeringShortcutFound) {
  // SEC and NUS peer directly at the SingAREN open exchange; the two-hop
  // peering path must be offered alongside the path via KISTI SG.
  const auto paths = net().paths(a::sec(), a::nus());
  ASSERT_GE(paths.size(), 2u);
  const auto& best = paths.front();
  EXPECT_EQ(best.as_sequence.size(), 2u) << best.to_string();
  EXPECT_TRUE(best.dataplane_path.info[0].peering);
}

TEST_F(ScieraFixture, DisjointnessMetricBounds) {
  const auto paths = net().paths(a::uva(), a::ufms());
  ASSERT_GE(paths.size(), 2u);
  for (std::size_t i = 0; i < std::min<std::size_t>(paths.size(), 6); ++i) {
    for (std::size_t j = 0; j < std::min<std::size_t>(paths.size(), 6); ++j) {
      const double d = path_disjointness(paths[i], paths[j]);
      EXPECT_GE(d, 0.5);  // identical paths floor at 0.5 (union/total)
      EXPECT_LE(d, 1.0);
      if (i == j) {
        EXPECT_DOUBLE_EQ(d, 0.5);
      }
    }
  }
}


// --- End-to-end forwarding over the real data plane -------------------------

class EchoHost {
 public:
  EchoHost(ScionNetwork& net, dataplane::Address addr)
      : net_(net), addr_(addr) {
    const auto status = net_.register_host(
        addr_, [this](const dataplane::ScionPacket& pkt, SimTime t) {
          on_packet(pkt, t);
        });
    EXPECT_TRUE(status.ok());
  }
  ~EchoHost() { net_.unregister_host(addr_); }

  // Sends one SCMP echo over the given path; returns via reply_times.
  void ping(const dataplane::Address& dst, const Path& path,
            std::uint16_t seq) {
    dataplane::ScionPacket pkt;
    pkt.src = addr_;
    pkt.dst = dst;
    pkt.next_hdr = dataplane::kProtoScmp;
    pkt.path = path.dataplane_path;
    pkt.payload = dataplane::make_echo_request(1, seq).serialize();
    send_times_[seq] = net_.sim().now();
    const auto status = net_.send_from_host(pkt);
    EXPECT_TRUE(status.ok());
  }

  std::map<std::uint16_t, Duration> rtts;

 private:
  void on_packet(const dataplane::ScionPacket& pkt, SimTime t) {
    if (pkt.next_hdr != dataplane::kProtoScmp) return;
    const auto msg = dataplane::ScmpMessage::parse(pkt.payload);
    ASSERT_TRUE(msg.ok());
    if (msg->type == dataplane::ScmpType::kEchoReply) {
      rtts[msg->sequence] = t - send_times_.at(msg->sequence);
    }
  }

  ScionNetwork& net_;
  dataplane::Address addr_;
  std::map<std::uint16_t, SimTime> send_times_;
};

TEST_F(ScieraFixture, DestinationOnUpSegmentUsesSingleSegment) {
  // UFMS -> RNP: the destination lies on UFMS's up segment; the best path
  // must be the one-segment cut, not a detour through a core.
  const auto paths = net().paths(a::ufms(), a::rnp());
  ASSERT_FALSE(paths.empty());
  const auto& best = paths.front();
  EXPECT_EQ(best.as_sequence.size(), 2u) << best.to_string();
  EXPECT_EQ(best.dataplane_path.num_segments(), 1u);
  // And it actually works on the data plane.
  EchoHost host{net(), {a::ufms(), 0x0A111111}};
  host.ping({a::rnp(), 7}, best, 0);
  net().sim().run_for(kSecond);
  EXPECT_EQ(host.rtts.size(), 1u);
}

TEST_F(ScieraFixture, SourceOnDownSegmentUsesSingleSegment) {
  const auto paths = net().paths(a::rnp(), a::ufms());
  ASSERT_FALSE(paths.empty());
  const auto& best = paths.front();
  EXPECT_EQ(best.as_sequence.size(), 2u) << best.to_string();
  EXPECT_EQ(best.dataplane_path.num_segments(), 1u);
  EchoHost host{net(), {a::rnp(), 0x0A111112}};
  host.ping({a::ufms(), 7}, best, 0);
  net().sim().run_for(kSecond);
  EXPECT_EQ(host.rtts.size(), 1u);
}

TEST(CombinatorShortcut, CommonAncestorShortcutBelowCore) {
  // With UFPR included, UFMS -> UFPR must offer the RNP shortcut (two
  // segments meeting at RNP) rather than only core detours.
  controlplane::ScionNetwork net{
      topology::build_sciera({.include_under_construction = true})};
  const auto paths = net.paths(a::ufms(), a::ufpr());
  ASSERT_FALSE(paths.empty());
  const auto& best = paths.front();
  ASSERT_EQ(best.as_sequence.size(), 3u) << best.to_string();
  EXPECT_EQ(best.as_sequence[1], a::rnp());
  // No core AS on the best path: it is a genuine shortcut.
  for (IsdAs ia : best.as_sequence) {
    EXPECT_FALSE(net.topology().find_as(ia)->core) << ia.to_string();
  }
  // Echo over the shortcut exercises the mid-segment seg_id splice.
  EchoHost host{net, {a::ufms(), 0x0A111113}};
  host.ping({a::ufpr(), 7}, best, 0);
  net.sim().run_for(kSecond);
  EXPECT_EQ(host.rtts.size(), 1u);
  // Disabling shortcuts removes the 3-hop option.
  controlplane::CombinatorOptions no_shortcuts;
  no_shortcuts.allow_shortcuts = false;
  const auto without = net.paths(a::ufms(), a::ufpr(), no_shortcuts);
  for (const auto& path : without) {
    bool has_core = false;
    for (IsdAs ia : path.as_sequence) {
      has_core |= net.topology().find_as(ia)->core;
    }
    EXPECT_TRUE(has_core) << path.to_string();
  }
}

TEST_F(ScieraFixture, PeeringDisabledRemovesTwoHopPath) {
  controlplane::CombinatorOptions no_peering;
  no_peering.allow_peering = false;
  const auto paths = net().paths(a::sec(), a::nus(), no_peering);
  for (const auto& path : paths) {
    EXPECT_GT(path.as_sequence.size(), 2u) << path.to_string();
  }
}

TEST_F(ScieraFixture, MaxPathsCapRespected) {
  controlplane::CombinatorOptions capped;
  capped.max_paths = 5;
  const auto paths = net().paths(a::uva(), a::ufms(), capped);
  EXPECT_LE(paths.size(), 5u);
  ASSERT_FALSE(paths.empty());
  // The cap keeps the best (fewest-hop) paths.
  const auto all = net().paths(a::uva(), a::ufms());
  EXPECT_EQ(paths.front().fingerprint(), all.front().fingerprint());
}

TEST_F(ScieraFixture, StaticRttConsistentWithLinkDelays) {
  const auto paths = net().paths(a::ovgu(), a::sidn());
  ASSERT_FALSE(paths.empty());
  for (const auto& path : paths) {
    Duration sum = 0;
    for (topology::LinkId id : path.links) {
      sum += net().topology().find_link(id)->delay;
    }
    EXPECT_EQ(path.static_rtt, 2 * sum + 2 * 600 * kMicrosecond)
        << path.to_string();
  }
}

TEST_F(ScieraFixture, EchoOverEveryPathUvaToUfms) {
  auto& net = ScieraFixture::net();
  EchoHost host{net, {a::uva(), 0x0A000001}};
  const auto paths = net.paths(a::uva(), a::ufms());
  ASSERT_GE(paths.size(), 4u);
  const std::size_t n = std::min<std::size_t>(paths.size(), 25);
  for (std::size_t i = 0; i < n; ++i) {
    host.ping({a::ufms(), 2}, paths[i], static_cast<std::uint16_t>(i));
  }
  net.sim().run_for(10 * kSecond);
  ASSERT_EQ(host.rtts.size(), n) << "every path must complete the echo";
  for (std::size_t i = 0; i < n; ++i) {
    const Duration rtt = host.rtts.at(static_cast<std::uint16_t>(i));
    // RTT within a factor of the static estimate (jitter + serialization).
    EXPECT_GT(rtt, paths[i].static_rtt / 2) << paths[i].to_string();
    EXPECT_LT(rtt, paths[i].static_rtt * 3) << paths[i].to_string();
  }
}

TEST_F(ScieraFixture, EchoOverPeeringPath) {
  auto& net = ScieraFixture::net();
  EchoHost host{net, {a::sec(), 0x0A000001}};
  const auto paths = net.paths(a::sec(), a::nus());
  ASSERT_FALSE(paths.empty());
  // The first path is the 2-hop peering shortcut.
  host.ping({a::nus(), 9}, paths.front(), 0);
  net.sim().run_for(kSecond);
  ASSERT_EQ(host.rtts.size(), 1u);
  EXPECT_LT(host.rtts.at(0), 10 * kMillisecond);
}

TEST_F(ScieraFixture, EchoAcrossIsds) {
  auto& net = ScieraFixture::net();
  EchoHost host{net, {a::ovgu(), 0x0A000001}};
  const auto paths = net.paths(a::ovgu(), a::eth());
  ASSERT_FALSE(paths.empty());
  host.ping({a::eth(), 3}, paths.front(), 0);
  net.sim().run_for(kSecond);
  EXPECT_EQ(host.rtts.size(), 1u);
}

TEST_F(ScieraFixture, ForgedPathIsDroppedByRouters) {
  auto& net = ScieraFixture::net();
  EchoHost host{net, {a::uva(), 0x0A000001}};
  auto paths = net.paths(a::uva(), a::princeton());
  ASSERT_FALSE(paths.empty());
  Path forged = paths.front();
  // Attacker flips an interface in a hop field without the AS key.
  forged.dataplane_path.hops[1].cons_egress ^= 0x1;
  auto mac_drops_on_path = [&] {
    std::uint64_t total = 0;
    for (IsdAs ia : forged.as_sequence) {
      total += net.router(ia)->stats().drop_mac;
    }
    return total;
  };
  const auto before = mac_drops_on_path();
  host.ping({a::princeton(), 5}, forged, 0);
  net.sim().run_for(kSecond);
  EXPECT_TRUE(host.rtts.empty());
  EXPECT_EQ(mac_drops_on_path(), before + 1);
}

TEST_F(ScieraFixture, WrongIngressIsDropped) {
  auto& net = ScieraFixture::net();
  // Craft a packet that claims a path via one BRIDGES interface but is
  // checked against the hop field of another: take a valid UVa->Princeton
  // path and ping; then break by swapping two UVa up-segments' first hops.
  const auto paths = net.paths(a::uva(), a::princeton());
  ASSERT_GE(paths.size(), 2u);
  // Splice: use path0 but replace its first hop field with path1's (a
  // different UVa uplink): MACs are valid per-hop, but the ingress at
  // BRIDGES no longer matches the link the packet arrives on.
  Path spliced = paths[0];
  if (paths[1].dataplane_path.hops[0] == spliced.dataplane_path.hops[0]) {
    GTEST_SKIP() << "paths share the first hop";
  }
  spliced.dataplane_path.hops[0] = paths[1].dataplane_path.hops[0];
  spliced.dataplane_path.info[0].seg_id = paths[1].dataplane_path.info[0].seg_id;
  EchoHost host{net, {a::uva(), 0x0A000001}};
  host.ping({a::princeton(), 5}, spliced, 0);
  net.sim().run_for(kSecond);
  EXPECT_TRUE(host.rtts.empty());
}

TEST_F(ScieraFixture, ControlServiceCachesLookups) {
  auto& net = ScieraFixture::net();
  auto* cs = net.control_service(a::sidn());
  ASSERT_NE(cs, nullptr);
  std::vector<SimTime> completions;
  const SimTime t0 = net.sim().now();
  cs->lookup_paths(a::ufms(), [&](const std::vector<Path>& paths) {
    EXPECT_FALSE(paths.empty());
    completions.push_back(net.sim().now());
  });
  net.sim().run_for(kSecond);
  const SimTime t1 = net.sim().now();
  cs->lookup_paths(a::ufms(), [&](const std::vector<Path>& paths) {
    EXPECT_FALSE(paths.empty());
    completions.push_back(net.sim().now());
  });
  net.sim().run_for(kSecond);
  ASSERT_EQ(completions.size(), 2u);
  const Duration cold = completions[0] - t0;
  const Duration warm = completions[1] - t1;
  EXPECT_LT(warm, cold);
  EXPECT_GE(cs->cache_hits(), 1u);
}

// Regression: ControlService treated an entry aged exactly cache_ttl as
// stale while the daemon treated it as fresh. The shared convention is
// "stale at age >= ttl" — this pins the control-service side.
TEST_F(ScieraFixture, ControlServiceCacheEntryAgedExactlyTtlIsStale) {
  auto& net = ScieraFixture::net();
  auto* cs = net.control_service(a::ufms());
  ASSERT_NE(cs, nullptr);
  cs->flush_cache();
  const auto misses0 = cs->cache_misses();
  const auto hits0 = cs->cache_hits();
  (void)cs->lookup_paths_now(a::uva());
  EXPECT_EQ(cs->cache_misses() - misses0, 1u);
  (void)cs->lookup_paths_now(a::uva());
  EXPECT_EQ(cs->cache_hits() - hits0, 1u);
  // Exactly the TTL later the entry must be refetched, not served.
  net.sim().run_for(ControlService::Config{}.cache_ttl);
  (void)cs->lookup_paths_now(a::uva());
  EXPECT_EQ(cs->cache_misses() - misses0, 2u);
  EXPECT_EQ(cs->cache_hits() - hits0, 1u);
}

TEST_F(ScieraFixture, TrcAvailableFromControlService) {
  auto& net = ScieraFixture::net();
  auto* cs = net.control_service(a::uva());
  ASSERT_NE(cs, nullptr);
  ASSERT_NE(cs->local_trc(), nullptr);
  EXPECT_EQ(cs->local_trc()->isd, 71);
  EXPECT_TRUE(cs->local_trc()->verify_base().ok());
}

// Perturbed-insertion-order regression for the analyzer's determinism
// contract: services_ is an ordered map populated lazily in first-lookup
// order, and the beaconing/healing sweeps walk it. Whatever order hosts
// first touch their control services, the executed schedule must come
// out identical — and each ordering must itself replay bit-identically
// under simnet::audit_determinism.
TEST(ControlPlane, ServiceLookupOrderDoesNotPerturbSchedule) {
  const auto scenario = [](bool reversed) {
    return [reversed]() -> simnet::ScheduleDigest {
      ScionNetwork::Options options;
      options.healing.enabled = true;
      options.healing.refresh_interval = 500 * kMillisecond;
      options.healing.segment_lifetime = 1500 * kMillisecond;
      options.healing.detection_delay = 100 * kMillisecond;
      ScionNetwork net{topology::build_sciera(), options};
      std::vector<IsdAs> order = {a::uva(), a::princeton(), a::kisti_dj(),
                                  a::geant(), a::rnp()};
      if (reversed) std::reverse(order.begin(), order.end());
      for (const IsdAs ia : order) {
        EXPECT_NE(net.control_service_set(ia), nullptr) << ia.to_string();
      }
      net.set_link_up("kisti-sg-kaust", false);
      net.sim().run_until(2 * kSecond);
      net.set_link_up("kisti-sg-kaust", true);
      net.sim().run_until(4 * kSecond);
      return net.sim().schedule_digest();
    };
  };
  const auto forward = simnet::audit_determinism(scenario(false));
  EXPECT_TRUE(forward.deterministic()) << forward.to_string();
  const auto reversed = simnet::audit_determinism(scenario(true));
  EXPECT_TRUE(reversed.deterministic()) << reversed.to_string();
  EXPECT_TRUE(forward.first == reversed.first)
      << "lookup order leaked into the schedule: forward "
      << forward.to_string() << " vs reversed " << reversed.to_string();
}

}  // namespace
}  // namespace sciera::controlplane
