// Orchestrator tests (Section 4.4): the guided setup workflow, management
// tasks, the status dashboard, and the continuous connectivity monitor
// with its alerting state machine.
#include <gtest/gtest.h>

#include "orchestrator/orchestrator.h"
#include "topology/sciera_net.h"

namespace sciera::orchestrator {
namespace {

namespace a = topology::ases;

controlplane::ScionNetwork& net() {
  static controlplane::ScionNetwork network{topology::build_sciera()};
  return network;
}

TEST(Orchestrator, SetupWorkflowSucceedsForLeaf) {
  Orchestrator orchestrator{net(), a::ufms()};
  const auto report = orchestrator.run_setup();
  EXPECT_TRUE(report.succeeded());
  EXPECT_EQ(report.steps.size(), 7u);
  for (const auto& [step, ok] : report.steps) {
    EXPECT_TRUE(ok) << setup_step_name(step);
  }
  // The setup deployed a usable bootstrap server.
  ASSERT_NE(orchestrator.bootstrap_server(), nullptr);
  EXPECT_EQ(orchestrator.bootstrap_server()->topology().as, a::ufms());
}

TEST(Orchestrator, SetupWorkflowSucceedsForCore) {
  Orchestrator orchestrator{net(), a::geant()};
  const auto report = orchestrator.run_setup();
  EXPECT_TRUE(report.succeeded());
}

TEST(Orchestrator, CertificateRenewalWorks) {
  Orchestrator orchestrator{net(), a::sidn()};
  const auto renewed_before = net().pki(71)->ca().stats().renewed;
  EXPECT_TRUE(orchestrator.renew_certificate().ok());
  EXPECT_GT(net().pki(71)->ca().stats().renewed, renewed_before);
}

TEST(Orchestrator, DashboardHealthyOnCleanNetwork) {
  Orchestrator orchestrator{net(), a::ovgu()};
  (void)orchestrator.run_setup();
  const auto dash = orchestrator.dashboard();
  EXPECT_TRUE(dash.all_healthy()) << dash.render();
  const std::string text = dash.render();
  EXPECT_NE(text.find("control-service"), std::string::npos);
  EXPECT_NE(text.find("border-router"), std::string::npos);
  EXPECT_NE(text.find("as-certificate"), std::string::npos);
}

TEST(Orchestrator, DashboardFlagsDownLinks) {
  Orchestrator orchestrator{net(), a::sidn()};
  (void)orchestrator.run_setup();
  net().set_link_up("geant-sidn", false);
  const auto dash = orchestrator.dashboard();
  EXPECT_FALSE(dash.all_healthy());
  bool links_flagged = false;
  for (const auto& service : dash.services) {
    if (service.service == "links") {
      links_flagged = service.health == ServiceHealth::kDown;
    }
  }
  EXPECT_TRUE(links_flagged) << dash.render();
  net().set_link_up("geant-sidn", true);
}

TEST(Monitor, NoAlertsOnHealthyNetwork) {
  Monitor monitor{net(), a::geant()};
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(monitor.probe_all().empty());
  }
  EXPECT_EQ(monitor.open_alerts(), 0u);
}

TEST(Monitor, AlertsAfterThresholdAndClears) {
  Monitor::Config config;
  config.failure_threshold = 3;
  Monitor monitor{net(), a::geant()};
  // Isolate UFMS by cutting both of its uplinks.
  net().set_link_up("rnp-ufms", false);
  net().set_link_up("rnp-ufms-2", false);

  // Two failed probes: below the threshold, no mail yet.
  EXPECT_TRUE(monitor.probe_all().empty());
  EXPECT_TRUE(monitor.probe_all().empty());
  // Third: alert raised for exactly the affected AS.
  const auto raised = monitor.probe_all();
  ASSERT_EQ(raised.size(), 1u);
  EXPECT_EQ(raised[0].affected, a::ufms());
  EXPECT_EQ(monitor.open_alerts(), 1u);
  // No duplicate alert on subsequent failures.
  EXPECT_TRUE(monitor.probe_all().empty());
  EXPECT_EQ(monitor.open_alerts(), 1u);

  // Repair: alert clears.
  net().set_link_up("rnp-ufms", true);
  net().set_link_up("rnp-ufms-2", true);
  EXPECT_TRUE(monitor.probe_all().empty());
  EXPECT_EQ(monitor.open_alerts(), 0u);
  ASSERT_EQ(monitor.alert_log().size(), 1u);
  EXPECT_TRUE(monitor.alert_log()[0].cleared);
}

TEST(Monitor, FlappingDoesNotAlertBelowThreshold) {
  Monitor monitor{net(), a::kisti_dj()};
  for (int i = 0; i < 4; ++i) {
    net().set_link_up("kisti-dj-korea-univ", false);
    net().set_link_up("kisti-dj-korea-univ-2", false);
    EXPECT_TRUE(monitor.probe_all().empty());  // 1 failure
    net().set_link_up("kisti-dj-korea-univ", true);
    net().set_link_up("kisti-dj-korea-univ-2", true);
    EXPECT_TRUE(monitor.probe_all().empty());  // reset
  }
  EXPECT_EQ(monitor.open_alerts(), 0u);
}

}  // namespace
}  // namespace sciera::orchestrator
