// The deployment journey, end to end — the whole paper in one test file.
// A new institution (UFMS) comes online exactly the way Section 4
// describes: the orchestrator runs the guided setup, a host bootstraps
// with zero configuration, applications get native connectivity, the
// operators' monitor watches it, an incident strikes and heals, and the
// SIG carries the legacy hosts that are not SCION-aware yet.
#include <gtest/gtest.h>

#include "endhost/pan.h"
#include "endhost/traceroute.h"
#include "orchestrator/orchestrator.h"
#include "sig/sig.h"
#include "topology/sciera_net.h"

namespace sciera {
namespace {

namespace a = topology::ases;

class Journey : public ::testing::Test {
 protected:
  static controlplane::ScionNetwork& net() {
    static controlplane::ScionNetwork network{topology::build_sciera()};
    return network;
  }
};

TEST_F(Journey, FullStackStory) {
  auto& network = net();

  // --- Act 1: the orchestrator onboards UFMS (Section 4.4). -----------------
  orchestrator::Orchestrator orchestrator{network, a::ufms()};
  const auto setup = orchestrator.run_setup();
  ASSERT_TRUE(setup.succeeded());
  ASSERT_NE(orchestrator.bootstrap_server(), nullptr);
  EXPECT_TRUE(orchestrator.dashboard().all_healthy());

  // --- Act 2: a student laptop joins with nothing installed (4.1/4.2). ------
  endhost::NetworkEnvironment laptop_net_env;
  laptop_net_env.mdns_responder_present = true;
  auto laptop = endhost::PanContext::Builder{}
                    .net(network)
                    .address({a::ufms(), 0x0A0000C8})
                    .bootstrap_server(*orchestrator.bootstrap_server())
                    .network_env(laptop_net_env)
                    .build(Rng{42});
  ASSERT_TRUE(laptop.ok());
  EXPECT_EQ((*laptop)->mode(), endhost::StackMode::kStandalone);
  EXPECT_LT(to_ms((*laptop)->bootstrap_time()), 1000.0);

  // --- Act 3: native connectivity to a peer on another continent. -----------
  endhost::Daemon ovgu_daemon{network, a::ovgu()};
  auto peer = endhost::PanContext::Builder{}
                  .net(network)
                  .address({a::ovgu(), 0x0A0000C9})
                  .daemon(ovgu_daemon)
                  .build(Rng{43});
  ASSERT_TRUE(peer.ok());

  int peer_received = 0;
  endhost::PanSocket* peer_sock_ptr = nullptr;
  auto peer_sock = endhost::PanSocket::open(
      **peer, 4242,
      [&](const dataplane::Address& src, std::uint16_t port,
          const Bytes& data, SimTime) {
        ++peer_received;
        (void)peer_sock_ptr->send_to(src, port, data);
      });
  ASSERT_TRUE(peer_sock.ok());
  peer_sock_ptr = peer_sock->get();

  int laptop_received = 0;
  auto laptop_sock = endhost::PanSocket::open(
      **laptop, 0,
      [&](const dataplane::Address&, std::uint16_t, const Bytes&, SimTime) {
        ++laptop_received;
      });
  ASSERT_TRUE(laptop_sock.ok());
  ASSERT_TRUE((*laptop_sock)
                  ->send_to({a::ovgu(), 0x0A0000C9}, 4242,
                            bytes_of("research data request"))
                  .ok());
  network.sim().run_for(3 * kSecond);
  EXPECT_EQ(peer_received, 1);
  EXPECT_EQ(laptop_received, 1);

  // --- Act 4: an operator debugs the path with traceroute. ------------------
  endhost::HostStack ops_stack{network, {a::ufms(), 0x0A0000CA}};
  const auto paths = network.paths(a::ufms(), a::ovgu());
  ASSERT_FALSE(paths.empty());
  endhost::Traceroute traceroute{ops_stack};
  const auto hops = traceroute.run({a::ovgu(), 0x0A0000C9}, paths.front());
  ASSERT_EQ(hops.size(), paths.front().as_sequence.size());
  EXPECT_TRUE(hops.back().is_destination);

  // --- Act 5: an incident, the monitor alarm, and recovery (4.4). -----------
  orchestrator::Monitor monitor{network, a::geant()};
  network.set_link_up("rnp-ufms", false);
  network.set_link_up("rnp-ufms-2", false);
  (void)monitor.probe_all();
  (void)monitor.probe_all();
  const auto alerts = monitor.probe_all();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].affected, a::ufms());
  // "Operators can then check the orchestrator's status page".
  const auto dash = orchestrator.dashboard();
  EXPECT_FALSE(dash.all_healthy());
  // The circuit comes back; the alert clears and traffic flows again.
  network.set_link_up("rnp-ufms", true);
  network.set_link_up("rnp-ufms-2", true);
  (void)monitor.probe_all();
  EXPECT_EQ(monitor.open_alerts(), 0u);
  ASSERT_TRUE((*laptop_sock)
                  ->send_to({a::ovgu(), 0x0A0000C9}, 4242, bytes_of("again"))
                  .ok());
  network.sim().run_for(3 * kSecond);
  EXPECT_EQ(peer_received, 2);

  // --- Act 6: the legacy lab machines ride the SIG (Appendix B). ------------
  std::vector<sig::IpPacket> lab_rx;
  sig::ScionIpGateway campus_sig{network, {a::ufms(), 0x0A0000FE},
                                 [&](const sig::IpPacket& packet, SimTime) {
                                   lab_rx.push_back(packet);
                                 }};
  std::vector<sig::IpPacket> remote_rx;
  sig::ScionIpGateway remote_sig{network, {a::ovgu(), 0x0A0000FE},
                                 [&](const sig::IpPacket& packet, SimTime) {
                                   remote_rx.push_back(packet);
                                 }};
  campus_sig.add_rule(sig::IpPrefix{0x0A640000, 16}, remote_sig.address());
  remote_sig.add_rule(sig::IpPrefix{0x0A320000, 16}, campus_sig.address());
  sig::IpPacket legacy;
  legacy.src_ip = 0x0A320001;
  legacy.dst_ip = 0x0A640001;
  legacy.payload = bytes_of("legacy instrument readout");
  ASSERT_TRUE(campus_sig.send_ip(legacy).ok());
  network.sim().run_for(3 * kSecond);
  ASSERT_EQ(remote_rx.size(), 1u);
  EXPECT_EQ(remote_rx[0], legacy);
}

}  // namespace
}  // namespace sciera
