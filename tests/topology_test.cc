#include <gtest/gtest.h>

#include <set>

#include "topology/parser.h"
#include "topology/sciera_net.h"
#include "topology/topology.h"

namespace sciera::topology {
namespace {

namespace a = ases;

TEST(Topology, AddAsRejectsDuplicates) {
  Topology topo;
  AsInfo info;
  info.ia = a::geant();
  EXPECT_TRUE(topo.add_as(info).ok());
  EXPECT_FALSE(topo.add_as(info).ok());
}

TEST(Topology, AddLinkAssignsDistinctIfaceIds) {
  Topology topo;
  for (auto ia : {a::geant(), a::bridges(), a::switch71()}) {
    AsInfo info;
    info.ia = ia;
    ASSERT_TRUE(topo.add_as(info).ok());
  }
  auto l1 = topo.add_link("l1", a::geant(), a::bridges(), LinkType::kCore,
                          kMillisecond);
  auto l2 = topo.add_link("l2", a::geant(), a::switch71(), LinkType::kCore,
                          kMillisecond);
  ASSERT_TRUE(l1.ok());
  ASSERT_TRUE(l2.ok());
  const auto* link1 = topo.find_link(*l1);
  const auto* link2 = topo.find_link(*l2);
  EXPECT_NE(link1->a_iface, link2->a_iface);  // both on GEANT's side
  EXPECT_NE(link1->a_iface, 0);
}

TEST(Topology, AddLinkValidatesEndpoints) {
  Topology topo;
  AsInfo info;
  info.ia = a::geant();
  ASSERT_TRUE(topo.add_as(info).ok());
  EXPECT_FALSE(
      topo.add_link("x", a::geant(), a::bridges(), LinkType::kCore, 1).ok());
  EXPECT_FALSE(
      topo.add_link("y", a::geant(), a::geant(), LinkType::kCore, 1).ok());
}

TEST(Topology, GreatCircleDistances) {
  // Frankfurt <-> Singapore is ~10,260 km.
  const double d = great_circle_km({50.11, 8.68}, {1.35, 103.82});
  EXPECT_NEAR(d, 10260, 150);
  // Symmetric and zero on the diagonal.
  EXPECT_DOUBLE_EQ(great_circle_km({50.11, 8.68}, {50.11, 8.68}), 0.0);
}

TEST(Topology, FiberDelayScalesWithDistance) {
  const Duration transatlantic = fiber_delay(6200);
  // ~6200km * 1.5 / 204 km/ms = ~45ms one way.
  EXPECT_NEAR(to_ms(transatlantic), 45.6, 2.0);
  // Co-located sites get the floor.
  EXPECT_EQ(fiber_delay(0), 150 * kMicrosecond);
}

TEST(ScieraNet, HasAllFigureOneAses) {
  const Topology topo = build_sciera();
  for (auto ia :
       {a::geant(), a::bridges(), a::switch71(), a::kisti_dj(), a::kisti_hk(),
        a::kisti_sg(), a::kisti_ams(), a::kisti_chg(), a::kisti_stl(),
        a::switch64(), a::eth(), a::sidn(), a::demokritos(), a::ovgu(),
        a::cybexer(), a::ccdcoe(), a::wacren(), a::uva(), a::princeton(),
        a::equinix(), a::fabric(), a::rnp(), a::ufms(), a::kaust(), a::sec(),
        a::nus(), a::korea_univ(), a::cityu()}) {
    EXPECT_NE(topo.find_as(ia), nullptr) << ia.to_string();
  }
  // UFPR is under construction and excluded by default.
  EXPECT_EQ(topo.find_as(a::ufpr()), nullptr);
  EXPECT_NE(build_sciera({.include_under_construction = true})
                .find_as(a::ufpr()),
            nullptr);
}

TEST(ScieraNet, CoreAsesMatchPaper) {
  const Topology topo = build_sciera();
  const auto cores71 = topo.core_ases(71);
  EXPECT_EQ(cores71.size(), 9u);  // GEANT, BRIDGES, SWITCH, 6x KISTI
  const auto cores64 = topo.core_ases(64);
  ASSERT_EQ(cores64.size(), 1u);
  EXPECT_EQ(cores64[0], a::switch64());
}

TEST(ScieraNet, TwoIsds) {
  const Topology topo = build_sciera();
  const auto isds = topo.isds();
  EXPECT_EQ(isds.size(), 2u);
}

TEST(ScieraNet, KreonetRingIsClosed) {
  const Topology topo = build_sciera();
  // Follow the ring labels end to end.
  const char* ring[] = {"kreonet-ams-chg", "kreonet-chg-stl", "kreonet-stl-dj",
                        "kreonet-dj-hk", "kreonet-hk-sg", "kreonet-sg-ams"};
  std::set<IsdAs> touched;
  for (const char* label : ring) {
    const auto* link = topo.find_link_by_label(label);
    ASSERT_NE(link, nullptr) << label;
    touched.insert(link->a);
    touched.insert(link->b);
  }
  EXPECT_EQ(touched.size(), 6u);
}

TEST(ScieraNet, FourSingaporeAmsterdamChannels) {
  // Section 3.2: KREONET ring + CAE-1 + KAUST I & II.
  const Topology topo = build_sciera();
  int channels = 0;
  for (const auto& link : topo.links()) {
    if ((link.a == a::kisti_sg() && link.b == a::kisti_ams()) ||
        (link.a == a::kisti_ams() && link.b == a::kisti_sg())) {
      ++channels;
    }
  }
  EXPECT_EQ(channels, 4);
}

TEST(ScieraNet, MeasurementAsesMatchRegionalSplit) {
  const Topology topo = build_sciera();
  const auto mps = measurement_ases();
  EXPECT_EQ(mps.size(), 11u);
  for (auto ia : mps) {
    const auto* info = topo.find_as(ia);
    ASSERT_NE(info, nullptr);
    EXPECT_TRUE(info->measurement_point) << ia.to_string();
  }
}

TEST(ScieraNet, PathMatrixAsesMatchFigure8) {
  const auto ms = path_matrix_ases();
  ASSERT_EQ(ms.size(), 9u);
  EXPECT_EQ(ms.front(), a::ufms());
  EXPECT_EQ(ms.back(), a::geant());
}

TEST(ScieraNet, PopsMatchTable1) {
  const auto pops = sciera_pops();
  EXPECT_EQ(pops.size(), 16u);
  EXPECT_EQ(pops.front().location, "Amsterdam, NL");
  EXPECT_EQ(pops.back().location, "Singapore, SG");
}

TEST(ScieraNet, EveryAsReachableFromGeant) {
  // Sanity: the link graph is connected (ignoring link types).
  const Topology topo = build_sciera();
  std::set<IsdAs> seen{a::geant()};
  std::vector<IsdAs> frontier{a::geant()};
  while (!frontier.empty()) {
    const IsdAs cur = frontier.back();
    frontier.pop_back();
    for (LinkId id : topo.links_of(cur)) {
      const IsdAs next = topo.find_link(id)->other(cur);
      if (seen.insert(next).second) frontier.push_back(next);
    }
  }
  EXPECT_EQ(seen.size(), topo.ases().size());
}

TEST(ScieraNet, TransoceanicDelaysAreRealistic) {
  const Topology topo = build_sciera();
  const auto* transatlantic = topo.find_link_by_label("geant-bridges");
  ASSERT_NE(transatlantic, nullptr);
  EXPECT_GT(to_ms(transatlantic->delay), 30.0);
  EXPECT_LT(to_ms(transatlantic->delay), 70.0);
  const auto* sg_ams = topo.find_link_by_label("kreonet-sg-ams");
  ASSERT_NE(sg_ams, nullptr);
  EXPECT_GT(to_ms(sg_ams->delay), 60.0);
  EXPECT_LT(to_ms(sg_ams->delay), 110.0);
}

TEST(TopologyParser, RoundTripsSciera) {
  const Topology original = build_sciera();
  const std::string text = serialize(original);
  const auto reparsed = parse(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().to_string();
  const Topology& copy = reparsed.value();
  ASSERT_EQ(copy.ases().size(), original.ases().size());
  ASSERT_EQ(copy.links().size(), original.links().size());
  for (std::size_t i = 0; i < original.ases().size(); ++i) {
    EXPECT_EQ(copy.ases()[i].ia, original.ases()[i].ia);
    EXPECT_EQ(copy.ases()[i].name, original.ases()[i].name);
    EXPECT_EQ(copy.ases()[i].core, original.ases()[i].core);
  }
  for (std::size_t i = 0; i < original.links().size(); ++i) {
    EXPECT_EQ(copy.links()[i].label, original.links()[i].label);
    EXPECT_EQ(copy.links()[i].a_iface, original.links()[i].a_iface);
    EXPECT_EQ(copy.links()[i].b_iface, original.links()[i].b_iface);
    EXPECT_EQ(copy.links()[i].type, original.links()[i].type);
    EXPECT_EQ(copy.links()[i].encap, original.links()[i].encap);
    // Delay round-trips at microsecond resolution.
    EXPECT_NEAR(static_cast<double>(copy.links()[i].delay),
                static_cast<double>(original.links()[i].delay),
                static_cast<double>(kMicrosecond));
  }
}

TEST(TopologyParser, RejectsMalformedInput) {
  EXPECT_FALSE(parse("bogus 1 2 3").ok());
  EXPECT_FALSE(parse("as not-an-ia").ok());
  EXPECT_FALSE(parse("as 71-1\nlink \"l\" 71-1 71-2 core").ok());  // unknown AS
  EXPECT_FALSE(parse("as 71-1\nas 71-2\nlink \"l\" 71-1 71-2 warp").ok());
  EXPECT_FALSE(parse("as 71-1 name=\"unterminated").ok());
}

TEST(TopologyParser, CommentsAndBlankLinesIgnored)
{
  const auto topo = parse("# header\n\n  as 64-559 core name=\"S\"  # trail\n");
  ASSERT_TRUE(topo.ok()) << topo.error().to_string();
  EXPECT_EQ(topo->ases().size(), 1u);
  EXPECT_TRUE(topo->ases()[0].core);
}

TEST(Topology, AsForIfaceResolvesNeighbors) {
  const Topology topo = build_sciera();
  const auto* link = topo.find_link_by_label("geant-bridges");
  ASSERT_NE(link, nullptr);
  EXPECT_EQ(topo.as_for_iface(a::geant(), link->a_iface), a::bridges());
  EXPECT_EQ(topo.as_for_iface(a::bridges(), link->b_iface), a::geant());
  EXPECT_FALSE(topo.as_for_iface(a::geant(), 9999).has_value());
}

TEST(Topology, ChildrenOfGeant) {
  const Topology topo = build_sciera();
  const auto kids = topo.children_of(a::geant());
  // SIDN, Demokritos, OVGU, CybExer, CCDCoE, WACREN (x2 links -> listed
  // twice), RNP, KAUST.
  std::set<IsdAs> unique(kids.begin(), kids.end());
  EXPECT_TRUE(unique.contains(a::sidn()));
  EXPECT_TRUE(unique.contains(a::rnp()));
  EXPECT_TRUE(unique.contains(a::kaust()));
  EXPECT_FALSE(unique.contains(a::uva()));
}


TEST(ScieraNet, SecCircuitIsVxlan) {
  // Appendix C: SEC could only get a VXLAN over SingAREN.
  const Topology topo = build_sciera();
  const auto* sec_link = topo.find_link_by_label("kisti-sg-sec");
  ASSERT_NE(sec_link, nullptr);
  EXPECT_EQ(sec_link->encap, Encap::kVxlan);
  EXPECT_EQ(encap_overhead(Encap::kVxlan), 50u);
  EXPECT_EQ(encap_overhead(Encap::kVlan), 4u);
  // Everything else defaults to plain VLANs.
  const auto* other = topo.find_link_by_label("geant-sidn");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->encap, Encap::kVlan);
}

TEST(TopologyParser, EncapRoundTripsAndRejectsUnknown) {
  Topology topo;
  AsInfo a1, a2;
  a1.ia = IsdAs::parse("71-1").value();
  a2.ia = IsdAs::parse("71-2").value();
  ASSERT_TRUE(topo.add_as(a1).ok());
  ASSERT_TRUE(topo.add_as(a2).ok());
  ASSERT_TRUE(topo.add_link("t", a1.ia, a2.ia, LinkType::kCore, kMillisecond).ok());
  ASSERT_TRUE(topo.set_link_encap("t", Encap::kMpls).ok());
  EXPECT_FALSE(topo.set_link_encap("missing", Encap::kMpls).ok());
  const auto reparsed = parse(serialize(topo));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->links()[0].encap, Encap::kMpls);
  EXPECT_FALSE(
      parse("as 71-1\nas 71-2\nlink \"l\" 71-1 71-2 core encap=warp").ok());
}

}  // namespace
}  // namespace sciera::topology
