// End-host stack tests: hint discovery (Table 2), bootstrapping with
// signature verification, the three PAN library modes with automatic
// fallback, the drop-in socket, path policies (geofencing, green routing,
// no-commercial-transit), the dispatcher bottleneck, Hercules planning,
// and LightningFilter authentication.
#include <gtest/gtest.h>

#include <algorithm>

#include "crypto/aes128.h"
#include "endhost/bootstrapper.h"
#include "endhost/hercules.h"
#include "endhost/hints.h"
#include "endhost/lightning_filter.h"
#include "endhost/pan.h"
#include "topology/sciera_net.h"

namespace sciera::endhost {
namespace {

namespace a = topology::ases;
using controlplane::ScionNetwork;

ScionNetwork& shared_net() {
  static ScionNetwork network{topology::build_sciera()};
  return network;
}

std::unique_ptr<BootstrapServer> make_server(ScionNetwork& net, IsdAs ia) {
  const auto* creds = net.pki(ia.isd())->credentials(ia);
  std::vector<cppki::Trc> trcs{net.pki(ia.isd())->trc()};
  return std::make_unique<BootstrapServer>(
      ia, local_topology_view(net.topology(), ia), *creds, trcs);
}

// --- Hint discovery -----------------------------------------------------------

TEST(Hints, Table2AvailabilityMatrix) {
  // Column "dyn. DHCP leases": DHCP mechanisms Y, DNS M, mDNS M.
  NetworkEnvironment dhcp_only;
  dhcp_only.dhcp_leases = true;
  dhcp_only.local_dns_search_domain = false;
  dhcp_only.mdns_responder_present = false;
  EXPECT_TRUE(mechanism_available(HintMechanism::kDhcpVivo, dhcp_only));
  EXPECT_FALSE(mechanism_available(HintMechanism::kDnsSrv, dhcp_only));
  EXPECT_FALSE(mechanism_available(HintMechanism::kDhcpv6Vsio, dhcp_only));

  // Column "Static IPs only": only mDNS remains viable.
  NetworkEnvironment static_net;
  static_net.static_ips_only = true;
  static_net.dhcp_leases = false;
  static_net.local_dns_search_domain = false;
  static_net.mdns_responder_present = true;
  EXPECT_FALSE(mechanism_available(HintMechanism::kDhcpVivo, static_net));
  EXPECT_TRUE(mechanism_available(HintMechanism::kMdns, static_net));

  // Column "DNS search domain": all DNS mechanisms available.
  NetworkEnvironment dns_net;
  dns_net.dhcp_leases = false;
  dns_net.local_dns_search_domain = true;
  for (auto m : {HintMechanism::kDnsSrv, HintMechanism::kDnsNaptr,
                 HintMechanism::kDnsSd}) {
    EXPECT_TRUE(mechanism_available(m, dns_net));
  }

  // IPv6 NDP needs RAs and DNS.
  NetworkEnvironment v6;
  v6.ipv6_ras = true;
  EXPECT_TRUE(mechanism_available(HintMechanism::kIpv6Ndp, v6));
  v6.ipv6_ras = false;
  EXPECT_FALSE(mechanism_available(HintMechanism::kIpv6Ndp, v6));
}

TEST(Hints, LatencySamplesArePositiveAndOsOrdered) {
  NetworkEnvironment env;
  Rng rng{7};
  double win = 0, lin = 0;
  for (int i = 0; i < 200; ++i) {
    win += to_ms(sample_hint_latency(HintMechanism::kDhcpVivo, env,
                                     windows_profile(), rng));
    lin += to_ms(sample_hint_latency(HintMechanism::kDhcpVivo, env,
                                     linux_profile(), rng));
  }
  EXPECT_GT(lin, 0);
  EXPECT_GT(win, lin);  // Windows service indirection costs more
}

TEST(Hints, MdnsSlowestDhcpFast) {
  NetworkEnvironment env;
  env.mdns_responder_present = true;
  Rng rng{8};
  double dhcp = 0, mdns = 0;
  for (int i = 0; i < 200; ++i) {
    dhcp += to_ms(sample_hint_latency(HintMechanism::kDhcpVivo, env,
                                      linux_profile(), rng));
    mdns += to_ms(sample_hint_latency(HintMechanism::kMdns, env,
                                      linux_profile(), rng));
  }
  EXPECT_GT(mdns, dhcp);
}

// --- Bootstrapping --------------------------------------------------------------

TEST(Bootstrap, FullRunVerifiesAndParses) {
  auto& net = shared_net();
  const auto server = make_server(net, a::ovgu());
  Bootstrapper bootstrapper{NetworkEnvironment{}, linux_profile()};
  Rng rng{3};
  auto result = bootstrapper.run(*server, rng, net.sim().now());
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result->local_ia, a::ovgu());
  EXPECT_NE(result->local_topology.find_as(a::ovgu()), nullptr);
  EXPECT_NE(result->local_topology.find_as(a::geant()), nullptr);
  EXPECT_NE(result->trust_store.latest(71), nullptr);
  EXPECT_GT(result->timings.hint_retrieval, 0);
  EXPECT_GT(result->timings.config_retrieval, 0);
  // "median < 150ms" scale: a single run lands well under a second.
  EXPECT_LT(to_ms(result->timings.total()), 1000.0);
}

TEST(Bootstrap, OutOfBandTrcAnchor) {
  auto& net = shared_net();
  const auto server = make_server(net, a::sidn());
  const cppki::Trc oob = net.pki(71)->trc();
  Bootstrapper bootstrapper{NetworkEnvironment{}, macos_profile()};
  Rng rng{4};
  auto result = bootstrapper.run(*server, rng, net.sim().now(), &oob);
  ASSERT_TRUE(result.ok());
}

TEST(Bootstrap, TamperedTopologyRejected) {
  auto& net = shared_net();
  auto server = make_server(net, a::sidn());
  // A rogue bootstrapping server (the rogue-DHCP analogue of Section
  // 4.1.1) serves a modified topology without a valid signature.
  const auto* creds = net.pki(71)->credentials(a::sidn());
  std::vector<cppki::Trc> trcs{net.pki(71)->trc()};
  BootstrapServer rogue{a::sidn(),
                        local_topology_view(net.topology(), a::uva()),
                        *creds, trcs};
  SignedTopology bad = rogue.topology();
  bad.topology_text += "\n# malicious edit";
  cppki::TrustStore store;
  ASSERT_TRUE(store.anchor(net.pki(71)->trc()).ok());
  EXPECT_FALSE(verify_signed_topology(bad, store, net.sim().now()).ok());
}

TEST(Bootstrap, FailsWhenNoMechanismAvailable) {
  auto& net = shared_net();
  const auto server = make_server(net, a::sidn());
  NetworkEnvironment dead;
  dead.static_ips_only = true;
  dead.dhcp_leases = false;
  dead.local_dns_search_domain = false;
  dead.mdns_responder_present = false;
  Bootstrapper bootstrapper{dead, linux_profile()};
  Rng rng{5};
  auto result = bootstrapper.run(*server, rng, net.sim().now());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::kUnreachable);
}

// --- PAN modes -------------------------------------------------------------------

TEST(Pan, DaemonModeSelectedWhenDaemonPresent) {
  auto& net = shared_net();
  Daemon daemon{net, a::uva()};
  auto ctx = PanContext::Builder{}
                 .net(net)
                 .address({a::uva(), 0x0A010101})
                 .daemon(daemon)
                 .build(Rng{1});
  ASSERT_TRUE(ctx.ok());
  EXPECT_EQ((*ctx)->mode(), StackMode::kDaemonDependent);
  EXPECT_EQ((*ctx)->bootstrap_time(), 0);
  EXPECT_FALSE((*ctx)->paths(a::ufms()).empty());
}

TEST(Pan, BootstrapperModeWhenStatePresent) {
  auto& net = shared_net();
  const auto server = make_server(net, a::uva());
  Bootstrapper bootstrapper{NetworkEnvironment{}, linux_profile()};
  Rng rng{6};
  auto boot = bootstrapper.run(*server, rng, net.sim().now());
  ASSERT_TRUE(boot.ok());
  auto ctx = PanContext::Builder{}
                 .net(net)
                 .address({a::uva(), 0x0A010102})
                 .bootstrapper_state(boot.value())
                 .build(Rng{2});
  ASSERT_TRUE(ctx.ok());
  EXPECT_EQ((*ctx)->mode(), StackMode::kBootstrapperDependent);
}

TEST(Pan, StandaloneModeBootstrapsItself) {
  auto& net = shared_net();
  const auto server = make_server(net, a::uva());
  auto ctx = PanContext::Builder{}
                 .net(net)
                 .address({a::uva(), 0x0A010103})
                 .bootstrap_server(*server)
                 .build(Rng{3});
  ASSERT_TRUE(ctx.ok()) << ctx.error().to_string();
  EXPECT_EQ((*ctx)->mode(), StackMode::kStandalone);
  EXPECT_GT((*ctx)->bootstrap_time(), 0);
  // Network change: standalone must re-bootstrap (cost > 0).
  Rng rng{9};
  auto cost = (*ctx)->handle_network_change(rng);
  ASSERT_TRUE(cost.ok());
  EXPECT_GT(cost.value(), 0);
}

TEST(Pan, StandaloneWithoutServerFails) {
  auto& net = shared_net();
  auto ctx = PanContext::Builder{}
                 .net(net)
                 .address({a::uva(), 0x0A010104})
                 .build(Rng{4});
  EXPECT_FALSE(ctx.ok());
}

TEST(Pan, BuilderRejectsMissingNetwork) {
  auto ctx = PanContext::Builder{}.address({a::uva(), 1}).build(Rng{5});
  ASSERT_FALSE(ctx.ok());
  EXPECT_EQ(ctx.error().code, Errc::kInvalidArgument);
}

TEST(Pan, BuilderRejectsAddressOutsideTopology) {
  auto& net = shared_net();
  auto ctx = PanContext::Builder{}
                 .net(net)
                 .address({IsdAs{99, As{0xDEAD}}, 1})
                 .build(Rng{5});
  ASSERT_FALSE(ctx.ok());
  EXPECT_EQ(ctx.error().code, Errc::kInvalidArgument);
}

TEST(Pan, BuilderRejectsDaemonForOtherAs) {
  auto& net = shared_net();
  Daemon daemon{net, a::ovgu()};
  auto ctx = PanContext::Builder{}
                 .net(net)
                 .address({a::uva(), 0x0A010105})
                 .daemon(daemon)
                 .build(Rng{6});
  ASSERT_FALSE(ctx.ok());
  EXPECT_EQ(ctx.error().code, Errc::kInvalidArgument);
}

// The deprecated shim applies the same validation as the Builder.
TEST(Pan, DeprecatedCreateShimStillValidates) {
  auto& net = shared_net();
  Daemon daemon{net, a::ovgu()};
  HostEnvironment env;  // NOLINT(sciera-deprecated-api) migration shim test
  env.net = &net;
  env.address = {a::uva(), 0x0A010106};
  env.daemon = &daemon;
  auto ctx = PanContext::create(env, Rng{7});
  EXPECT_FALSE(ctx.ok());
}

// --- Drop-in socket over the real network ------------------------------------------

TEST(Pan, SocketSendsAndReceivesAcrossAtlantic) {
  auto& net = shared_net();
  Daemon d_uva{net, a::uva()};
  Daemon d_ovgu{net, a::ovgu()};
  auto ctx_a = PanContext::Builder{}
                   .net(net)
                   .address({a::uva(), 0x0A020201})
                   .daemon(d_uva)
                   .build(Rng{10});
  auto ctx_b = PanContext::Builder{}
                   .net(net)
                   .address({a::ovgu(), 0x0A020202})
                   .daemon(d_ovgu)
                   .build(Rng{11});
  ASSERT_TRUE(ctx_a.ok());
  ASSERT_TRUE(ctx_b.ok());

  // Echo server at OVGU.
  std::vector<Bytes> server_rx;
  PanSocket* server_sock_raw = nullptr;
  auto server_sock = PanSocket::open(
      **ctx_b, 8888,
      [&](const dataplane::Address& src, std::uint16_t src_port,
          const Bytes& data, SimTime) {
        server_rx.push_back(data);
        (void)server_sock_raw->send_to(src, src_port, data);  // echo
      });
  ASSERT_TRUE(server_sock.ok());
  server_sock_raw = server_sock->get();

  std::vector<Bytes> client_rx;
  std::vector<SimTime> rx_times;
  auto client_sock = PanSocket::open(
      **ctx_a, 0,
      [&](const dataplane::Address&, std::uint16_t, const Bytes& data,
          SimTime t) {
        client_rx.push_back(data);
        rx_times.push_back(t);
      });
  ASSERT_TRUE(client_sock.ok());

  const SimTime t0 = net.sim().now();
  ASSERT_TRUE((*client_sock)
                  ->send_to({a::ovgu(), 0x0A020202}, 8888,
                            bytes_of("hello sciera"))
                  .ok());
  net.sim().run_for(5 * kSecond);
  ASSERT_EQ(server_rx.size(), 1u);
  ASSERT_EQ(client_rx.size(), 1u);
  EXPECT_EQ(client_rx[0], bytes_of("hello sciera"));
  const Duration rtt = rx_times[0] - t0;
  // Transatlantic round trip: tens of ms, under a second.
  EXPECT_GT(to_ms(rtt), 40.0);
  EXPECT_LT(to_ms(rtt), 500.0);
}

TEST(Pan, InteractivePathSelectionPins) {
  auto& net = shared_net();
  Daemon daemon{net, a::kisti_dj()};
  auto ctx = PanContext::Builder{}
                 .net(net)
                 .address({a::kisti_dj(), 0x0A030301})
                 .daemon(daemon)
                 .build(Rng{12});
  ASSERT_TRUE(ctx.ok());
  auto sock = PanSocket::open(**ctx, 0, [](auto&&...) {});
  ASSERT_TRUE(sock.ok());
  const auto options = (*ctx)->paths(a::kisti_sg());
  ASSERT_GE(options.size(), 2u);
  ASSERT_TRUE((*sock)->select_path(a::kisti_sg(), 1).ok());
  auto current = (*sock)->current_path(a::kisti_sg());
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(current->fingerprint(), options[1].fingerprint());
  EXPECT_FALSE((*sock)->select_path(a::kisti_sg(), 10'000).ok());
  (*sock)->clear_selection(a::kisti_sg());
  auto after = (*sock)->current_path(a::kisti_sg());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->fingerprint(), options[0].fingerprint());
}

// Regression: a path pinned via select_path survived its own down report —
// pinned_ was never invalidated, so the moment the link flapped back up the
// socket silently returned to the reported-down path, overriding the
// quarantine the report had just installed.
TEST(Pan, DownReportUnpinsSelectedPath) {
  auto& net = shared_net();
  Daemon daemon{net, a::kisti_dj()};
  auto ctx = PanContext::Builder{}
                 .net(net)
                 .address({a::kisti_dj(), 0x0A030302})
                 .daemon(daemon)
                 .build(Rng{13});
  ASSERT_TRUE(ctx.ok());
  auto sock = PanSocket::open(**ctx, 0, [](auto&&...) {});
  ASSERT_TRUE(sock.ok());
  const auto options = (*ctx)->paths(a::kisti_sg());
  ASSERT_GE(options.size(), 2u);
  ASSERT_TRUE((*sock)->select_path(a::kisti_sg(), 1).ok());
  const std::string pinned_fp = options[1].fingerprint();

  (*ctx)->report_path_down(pinned_fp);
  // The pin is gone: even after the quarantine penalty expires (when the
  // path is offered again), the socket does not snap back to it.
  net.sim().run_for(Daemon::Config{}.down_path_penalty);
  auto current = (*sock)->current_path(a::kisti_sg());
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(current->fingerprint(), options[0].fingerprint());
}

// --- Send receipts ----------------------------------------------------------------

TEST(Pan, SendReceiptReportsPathAndBytes) {
  auto& net = shared_net();
  Daemon daemon{net, a::uva()};
  auto ctx = PanContext::Builder{}
                 .net(net)
                 .address({a::uva(), 0x0A040401})
                 .daemon(daemon)
                 .build(Rng{14});
  ASSERT_TRUE(ctx.ok());
  auto sock = PanSocket::open(**ctx, 0, [](auto&&...) {});
  ASSERT_TRUE(sock.ok());

  auto receipt = (*sock)->send_to({a::ovgu(), 0x0A040402}, 9999,
                                  bytes_of("receipt me"));
  ASSERT_TRUE(receipt.ok());
  EXPECT_EQ(receipt->mode, StackMode::kDaemonDependent);
  EXPECT_FALSE(receipt->failover);
  EXPECT_GT(receipt->bytes_queued, 10u);  // headers + payload
  auto current = (*sock)->current_path(a::ovgu());
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(receipt->path_fingerprint, current->fingerprint());

  // Intra-AS sends take the empty path: no fingerprint.
  auto local = (*sock)->send_to({a::uva(), 0x0A040403}, 9999, bytes_of("hi"));
  ASSERT_TRUE(local.ok());
  EXPECT_TRUE(local->path_fingerprint.empty());
  net.sim().run_all();
}

TEST(Pan, SendReceiptFlagsFailoverOffPinnedPath) {
  auto& net = shared_net();
  Daemon daemon{net, a::kisti_dj()};
  auto ctx = PanContext::Builder{}
                 .net(net)
                 .address({a::kisti_dj(), 0x0A040404})
                 .daemon(daemon)
                 .build(Rng{15});
  ASSERT_TRUE(ctx.ok());
  auto sock = PanSocket::open(**ctx, 0, [](auto&&...) {});
  ASSERT_TRUE(sock.ok());
  const auto options = (*ctx)->paths(a::kisti_sg());
  ASSERT_GE(options.size(), 2u);
  ASSERT_TRUE((*sock)->select_path(a::kisti_sg(), 0).ok());

  // Pinned path up: receipt carries its fingerprint, no failover.
  const dataplane::Address peer{a::kisti_sg(), 0x0A040405};
  auto pinned_send = (*sock)->send_to(peer, 7000, bytes_of("a"));
  ASSERT_TRUE(pinned_send.ok());
  EXPECT_EQ(pinned_send->path_fingerprint, options[0].fingerprint());
  EXPECT_FALSE(pinned_send->failover);

  // Cut a link unique to the pinned path (so an alternative stays usable):
  // the next send substitutes and says so.
  topology::LinkId unique_link = options[0].links.front();
  for (const auto& link_id : options[0].links) {
    if (std::find(options[1].links.begin(), options[1].links.end(), link_id) ==
        options[1].links.end()) {
      unique_link = link_id;
      break;
    }
  }
  simnet::Link* cut = net.link(unique_link);
  ASSERT_NE(cut, nullptr);
  cut->set_up(false);
  auto failover_send = (*sock)->send_to(peer, 7000, bytes_of("b"));
  ASSERT_TRUE(failover_send.ok());
  EXPECT_TRUE(failover_send->failover);
  EXPECT_NE(failover_send->path_fingerprint, options[0].fingerprint());
  cut->set_up(true);
  net.sim().run_all();
}

// --- Daemon cache and path liveness ------------------------------------------

// Regression: the daemon used to treat an entry aged exactly
// path_cache_ttl as fresh (`age > ttl` to expire) while the control
// service already treated it as stale — the two stacks disagreed at the
// boundary. Unified convention: stale at age >= ttl.
TEST(Daemon, CacheEntryAgedExactlyTtlIsStale) {
  auto& net = shared_net();
  Daemon daemon{net, a::uva()};
  (void)daemon.paths(a::ovgu());
  EXPECT_EQ(daemon.cache_misses(), 1u);
  (void)daemon.paths(a::ovgu());
  EXPECT_EQ(daemon.cache_hits(), 1u);
  EXPECT_EQ(daemon.lookups(), 2u);
  // Advance the sim clock by exactly the TTL: no longer a hit.
  net.sim().run_for(Daemon::Config{}.path_cache_ttl);
  (void)daemon.paths(a::ovgu());
  EXPECT_EQ(daemon.cache_misses(), 2u);
  EXPECT_EQ(daemon.cache_hits(), 1u);
}

// Regression (satellite of the chaos PR): paths_async used its own
// freshness check (`age > ttl`) and skipped quarantine pruning, so the
// async and sync entry points disagreed at the exact-TTL tick and the
// async path let the quarantine map grow. Both now route through one
// begin_lookup helper: stale at age >= ttl, prune on every lookup.
TEST(Daemon, AsyncLookupSharesSyncTtlBoundaryAndPruning) {
  auto& net = shared_net();
  Daemon daemon{net, a::uva()};
  // Sync warm fetch: fetched_at is exactly now.
  (void)daemon.paths(a::ovgu());

  // One tick before the TTL: still a cache hit, even async. Freshness is
  // decided synchronously at call time; the answer arrives via after(0).
  net.sim().run_for(Daemon::Config{}.path_cache_ttl - 1);
  bool hit = false;
  daemon.paths_async_detailed(a::ovgu(), [&](PathLookup lookup) {
    hit = true;
    EXPECT_EQ(lookup.source, PathSource::kFreshCache);
    EXPECT_FALSE(lookup.stale);
  });
  net.sim().run_for(1);
  ASSERT_TRUE(hit);

  // Re-anchor: now at age == ttl the sync path refetches, stamping
  // fetched_at = now. Exactly ttl later the async path must also treat
  // the entry as stale and refetch — the same boundary, one helper.
  (void)daemon.paths(a::ovgu());
  net.sim().run_for(Daemon::Config{}.path_cache_ttl);
  bool refetched = false;
  daemon.paths_async_detailed(a::ovgu(), [&](PathLookup lookup) {
    refetched = true;
    EXPECT_EQ(lookup.source, PathSource::kFetched);
  });
  net.sim().run_for(1 * kSecond);
  ASSERT_TRUE(refetched);

  // And the async entry point prunes expired quarantine entries too.
  daemon.report_path_down("fp-async");
  EXPECT_EQ(daemon.quarantined(), 1u);
  net.sim().run_for(Daemon::Config{}.down_path_penalty);
  daemon.paths_async_detailed(a::ovgu(), [](PathLookup) {});
  EXPECT_EQ(daemon.quarantined(), 0u);
}

// Regression: down_until_ grew without bound — every SCMP report left an
// entry behind forever. Expired entries are pruned on lookups and reports.
TEST(Daemon, QuarantineMapIsPrunedAndBounded) {
  auto& net = shared_net();
  Daemon daemon{net, a::uva()};
  for (int i = 0; i < 100; ++i) {
    daemon.report_path_down("fp-" + std::to_string(i));
  }
  EXPECT_EQ(daemon.quarantined(), 100u);
  net.sim().run_for(Daemon::Config{}.down_path_penalty);
  // The next report prunes all 100 expired entries before inserting.
  daemon.report_path_down("fp-fresh");
  EXPECT_EQ(daemon.quarantined(), 1u);
  // And lookups prune too: once fp-fresh expires the map is empty.
  net.sim().run_for(Daemon::Config{}.down_path_penalty);
  (void)daemon.paths(a::ovgu());
  EXPECT_EQ(daemon.quarantined(), 0u);
}

// End-to-end failover: a mid-path link dies, the border router answers
// the next packet with SCMP ExternalInterfaceDown, the daemon quarantines
// the path (excluded from paths()), and it reappears once
// down_path_penalty elapses on the sim clock.
TEST(Pan, ScmpFailoverQuarantinesPathAndRecovers) {
  auto& net = shared_net();
  Daemon daemon{net, a::uva()};
  auto ctx = PanContext::Builder{}
                 .net(net)
                 .address({a::uva(), 0x0A020210})
                 .daemon(daemon)
                 .build(Rng{20});
  ASSERT_TRUE(ctx.ok());
  auto sock = PanSocket::open(**ctx, 0, [](auto&&...) {});
  ASSERT_TRUE(sock.ok());

  const auto first = (*sock)->current_path(a::ovgu());
  ASSERT_TRUE(first.ok());
  const std::string fp = first->fingerprint();
  ASSERT_GT(first->links.size(), 1u);

  // The data-plane feedback loop: SCMP errors quarantine the active path.
  int scmp_errors = 0;
  (*ctx)->stack().set_scmp_receiver(
      [&](const dataplane::ScionPacket&, const dataplane::ScmpMessage& m,
          SimTime) {
        if (m.is_error()) {
          ++scmp_errors;
          (*ctx)->report_path_down(fp);
        }
      });

  // Cut the path's second link; the packet sent just before the cut
  // reaches the failed egress just after and triggers the SCMP error.
  simnet::Link* cut = net.link(first->links[1]);
  ASSERT_NE(cut, nullptr);
  net.sim().after(10 * kMillisecond, [cut] { cut->set_up(false); });
  net.sim().after(9500 * kMicrosecond, [&] {
    (void)(*sock)->send_to({a::ovgu(), 0x0A020211}, 8888, bytes_of("probe"));
  });
  net.sim().run_for(3 * kSecond);
  EXPECT_EQ(scmp_errors, 1);
  EXPECT_EQ(daemon.quarantined(), 1u);

  // paths() excludes the quarantined fingerprint; failover picks another.
  for (const auto& path : daemon.paths(a::ovgu())) {
    EXPECT_NE(path.fingerprint(), fp);
  }
  const auto failover = (*sock)->current_path(a::ovgu());
  ASSERT_TRUE(failover.ok());
  EXPECT_NE(failover->fingerprint(), fp);

  // The circuit heals and the penalty elapses: the path reappears.
  cut->set_up(true);
  net.sim().run_for(Daemon::Config{}.down_path_penalty);
  bool reappeared = false;
  for (const auto& path : daemon.paths(a::ovgu())) {
    reappeared = reappeared || path.fingerprint() == fp;
  }
  EXPECT_TRUE(reappeared);
  EXPECT_EQ(daemon.quarantined(), 0u);
}

// --- Policies -----------------------------------------------------------------------

TEST(Policy, GeofencingExcludesIsd) {
  auto& net = shared_net();
  auto paths = net.paths(a::ovgu(), a::sidn());
  ASSERT_FALSE(paths.empty());
  auto fenced = geofence_policy({64}).apply(paths);
  for (const auto& path : fenced) {
    for (IsdAs ia : path.as_sequence) EXPECT_NE(ia.isd(), 64);
  }
}

TEST(Policy, CommercialTransitForbidden) {
  // Build a synthetic path crossing ISD 64 in the middle and check the
  // Section 4.9 rule rejects it while endpoint use is allowed.
  auto& net = shared_net();
  PathPolicy policy;
  policy.forbid_commercial_transit = true;
  auto to_eth = net.paths(a::ovgu(), a::eth());  // terminates in ISD 64: OK
  ASSERT_FALSE(to_eth.empty());
  EXPECT_TRUE(policy.admits(to_eth.front()));
  controlplane::Path transit = to_eth.front();
  transit.as_sequence.push_back(a::eth());  // fake: now ISD-64 is interior
  transit.as_sequence.push_back(a::ovgu());
  std::rotate(transit.as_sequence.rbegin(), transit.as_sequence.rbegin() + 2,
              transit.as_sequence.rend());
  // Simpler: construct explicitly.
  transit.as_sequence = {a::ovgu(), a::switch64(), a::uva()};
  EXPECT_FALSE(policy.admits(transit));
}

TEST(Policy, GreenRoutingPrefersCleanGrids) {
  auto& net = shared_net();
  auto paths = net.paths(a::uva(), a::ufms());
  ASSERT_GE(paths.size(), 2u);
  const auto green = green_policy().apply(paths);
  const auto fast = lowest_latency_policy().apply(paths);
  ASSERT_FALSE(green.empty());
  const CarbonMap carbon = CarbonMap::sciera_defaults();
  EXPECT_LE(path_carbon_score(green.front(), carbon),
            path_carbon_score(fast.front(), carbon));
  // Ordering is actually sorted by carbon.
  for (std::size_t i = 1; i < green.size(); ++i) {
    EXPECT_LE(path_carbon_score(green[i - 1], carbon),
              path_carbon_score(green[i], carbon) + 1e-9);
  }
}

TEST(Policy, MaxHopsAndDenyLists) {
  auto& net = shared_net();
  auto paths = net.paths(a::uva(), a::ufms());
  PathPolicy policy;
  policy.max_hops = 4;
  for (const auto& path : policy.apply(paths)) {
    EXPECT_LE(path.as_sequence.size(), 4u);
  }
  PathPolicy deny;
  deny.deny_ases = {a::bridges()};
  for (const auto& path : deny.apply(paths)) {
    for (IsdAs ia : path.as_sequence) EXPECT_NE(ia, a::bridges());
  }
  PathPolicy require;
  require.require_ases = {a::geant()};
  const auto required = require.apply(paths);
  ASSERT_FALSE(required.empty());
  for (const auto& path : required) {
    EXPECT_NE(std::find(path.as_sequence.begin(), path.as_sequence.end(),
                        a::geant()),
              path.as_sequence.end());
  }
}

// --- Dispatcher bottleneck (Section 4.8) ----------------------------------------------

TEST(Dispatcher, SharedQueueDropsUnderLoad) {
  auto& net = shared_net();
  HostStack::Config cfg;
  cfg.mode = HostMode::kDispatcher;
  cfg.dispatcher_pps = 1000;  // tiny on purpose
  cfg.dispatcher_queue = 16;
  HostStack stack{net, {a::uva(), 0x0A040401}, cfg};
  int received = 0;
  ASSERT_TRUE(stack.bind(5000, [&](auto&&...) { ++received; }).ok());
  // Blast 500 local packets within one instant.
  for (int i = 0; i < 500; ++i) {
    dataplane::ScionPacket pkt;
    pkt.path_type = dataplane::PathType::kEmpty;
    pkt.dst = {a::uva(), 0x0A040401};
    pkt.src = {a::uva(), 0x0A040402};
    dataplane::UdpDatagram dg;
    dg.dst_port = 5000;
    dg.data = bytes_of("x");
    pkt.payload = dg.serialize();
    ASSERT_TRUE(net.send_from_host(pkt).ok());
  }
  net.sim().run_for(10 * kSecond);
  EXPECT_GT(stack.stats().dropped_overload, 0u);
  EXPECT_LT(received, 500);
  EXPECT_EQ(static_cast<std::uint64_t>(received), stack.stats().delivered);
}

TEST(Dispatcher, DispatcherlessHandlesSameLoad) {
  auto& net = shared_net();
  HostStack::Config cfg;
  cfg.mode = HostMode::kDispatcherless;
  HostStack stack{net, {a::uva(), 0x0A040403}, cfg};
  int received = 0;
  ASSERT_TRUE(stack.bind(5000, [&](auto&&...) { ++received; }).ok());
  for (int i = 0; i < 500; ++i) {
    dataplane::ScionPacket pkt;
    pkt.path_type = dataplane::PathType::kEmpty;
    pkt.dst = {a::uva(), 0x0A040403};
    pkt.src = {a::uva(), 0x0A040404};
    dataplane::UdpDatagram dg;
    dg.dst_port = 5000;
    dg.data = bytes_of("x");
    pkt.payload = dg.serialize();
    ASSERT_TRUE(net.send_from_host(pkt).ok());
  }
  net.sim().run_for(10 * kSecond);
  EXPECT_EQ(received, 500);
  EXPECT_EQ(stack.stats().dropped_overload, 0u);
}

TEST(Dispatcher, PortManagement) {
  auto& net = shared_net();
  HostStack stack{net, {a::uva(), 0x0A040405}};
  auto p1 = stack.bind(7000, [](auto&&...) {});
  ASSERT_TRUE(p1.ok());
  EXPECT_FALSE(stack.bind(7000, [](auto&&...) {}).ok());  // taken
  auto eph1 = stack.bind(0, [](auto&&...) {});
  auto eph2 = stack.bind(0, [](auto&&...) {});
  ASSERT_TRUE(eph1.ok());
  ASSERT_TRUE(eph2.ok());
  EXPECT_NE(eph1.value(), eph2.value());
  stack.unbind(7000);
  EXPECT_TRUE(stack.bind(7000, [](auto&&...) {}).ok());
}

// --- Hercules ---------------------------------------------------------------------------

TEST(Hercules, MultipathBeatsSinglePath) {
  auto& net = shared_net();
  auto paths = net.paths(a::kisti_dj(), a::kisti_ams());
  ASSERT_GE(paths.size(), 2u);
  HerculesConfig cfg;
  cfg.use_xdp = true;
  Hercules hercules{net.topology(), cfg};
  const auto single = hercules.plan({paths[0]}, 1'000'000'000);
  // Pick disjoint paths for aggregation.
  std::vector<controlplane::Path> chosen{paths[0]};
  for (const auto& path : paths) {
    if (path_disjointness(path, paths[0]) == 1.0) {
      chosen.push_back(path);
      break;
    }
  }
  ASSERT_GE(chosen.size(), 2u) << "need a disjoint path pair";
  const auto multi = hercules.plan(chosen, 1'000'000'000);
  EXPECT_GT(multi.aggregate_bps, single.aggregate_bps * 1.5);
  EXPECT_LT(multi.transfer_time, single.transfer_time);
}

TEST(Hercules, DispatcherCapsThroughput) {
  auto& net = shared_net();
  auto paths = net.paths(a::kisti_dj(), a::kisti_ams());
  ASSERT_FALSE(paths.empty());
  HerculesConfig via_dispatcher;
  via_dispatcher.receiver_mode = HostMode::kDispatcher;
  via_dispatcher.use_xdp = false;
  HerculesConfig via_xdp;
  via_xdp.use_xdp = true;
  Hercules slow{net.topology(), via_dispatcher};
  Hercules fast{net.topology(), via_xdp};
  const auto r_slow = slow.plan({paths[0]}, 10'000'000'000ULL);
  const auto r_fast = fast.plan({paths[0]}, 10'000'000'000ULL);
  // The dispatcher pins the transfer to single-core pps ("performance hit
  // a wall"), XDP restores multi-Gbps.
  EXPECT_LT(r_slow.aggregate_bps, 4e9);
  EXPECT_GT(r_fast.aggregate_bps, 3 * r_slow.aggregate_bps);
}

TEST(Hercules, SharedLinksNotDoubleCounted) {
  auto& net = shared_net();
  auto paths = net.paths(a::sec(), a::nus());
  ASSERT_FALSE(paths.empty());
  // Same path twice: the shared links must cap the total at one path's
  // bandwidth, not double it.
  HerculesConfig cfg;
  cfg.use_xdp = true;
  Hercules hercules{net.topology(), cfg};
  const auto once = hercules.plan({paths[0]}, 1'000'000);
  const auto twice = hercules.plan({paths[0], paths[0]}, 1'000'000);
  EXPECT_NEAR(twice.network_limit_bps, once.network_limit_bps,
              once.network_limit_bps * 0.01);
}

// --- LightningFilter -----------------------------------------------------------------------

TEST(LightningFilter, AuthenticatedTrafficAccepted) {
  LightningFilter filter{bytes_of("dmz-secret")};
  dataplane::ScionPacket pkt;
  pkt.src = {a::kisti_dj(), 1};
  pkt.dst = {a::kisti_ams(), 2};
  pkt.path_type = dataplane::PathType::kEmpty;
  Bytes payload = bytes_of("science data");
  const Bytes tag = filter.make_authenticator(pkt.src.ia, payload);
  pkt.payload = payload;
  pkt.payload.insert(pkt.payload.end(), tag.begin(), tag.end());
  EXPECT_EQ(filter.check(pkt, 0), LightningFilter::Verdict::kAccept);
  EXPECT_EQ(filter.stats().accepted, 1u);
}

TEST(LightningFilter, ForgedAuthenticatorDropped) {
  LightningFilter filter{bytes_of("dmz-secret")};
  dataplane::ScionPacket pkt;
  pkt.src = {a::kisti_dj(), 1};
  Bytes payload = bytes_of("science data");
  Bytes tag = filter.make_authenticator(pkt.src.ia, payload);
  tag[0] ^= 1;
  pkt.payload = payload;
  pkt.payload.insert(pkt.payload.end(), tag.begin(), tag.end());
  EXPECT_EQ(filter.check(pkt, 0), LightningFilter::Verdict::kDropAuth);
  // A different source AS's key must not validate either.
  LightningFilter filter2{bytes_of("dmz-secret")};
  Bytes tag2 = filter2.make_authenticator(a::uva(), payload);
  pkt.payload = payload;
  pkt.payload.insert(pkt.payload.end(), tag2.begin(), tag2.end());
  EXPECT_EQ(filter2.check(pkt, 0), LightningFilter::Verdict::kDropAuth);
}

TEST(LightningFilter, AllowListEnforced) {
  LightningFilter::Config cfg;
  cfg.allowed_sources = {a::kisti_dj()};
  cfg.require_auth = false;
  LightningFilter filter{bytes_of("s"), cfg};
  dataplane::ScionPacket ok;
  ok.src = {a::kisti_dj(), 1};
  dataplane::ScionPacket bad;
  bad.src = {a::uva(), 1};
  EXPECT_EQ(filter.check(ok, 0), LightningFilter::Verdict::kAccept);
  EXPECT_EQ(filter.check(bad, 0), LightningFilter::Verdict::kDropRule);
}

TEST(LightningFilter, RateLimitKicksIn) {
  LightningFilter::Config cfg;
  cfg.require_auth = false;
  cfg.rate_pps = 10;
  cfg.burst = 5;
  LightningFilter filter{bytes_of("s"), cfg};
  dataplane::ScionPacket pkt;
  pkt.src = {a::uva(), 1};
  int accepted = 0;
  for (int i = 0; i < 50; ++i) {
    if (filter.check(pkt, kSecond) == LightningFilter::Verdict::kAccept) {
      ++accepted;
    }
  }
  EXPECT_LE(accepted, 11);
  EXPECT_GT(filter.stats().dropped_rate, 0u);
  // After a pause the bucket refills.
  EXPECT_EQ(filter.check(pkt, 10 * kSecond),
            LightningFilter::Verdict::kAccept);
}

TEST(LightningFilter, RssScalesThroughput) {
  LightningFilter filter{bytes_of("s")};
  const double single = filter.throughput_bps(1500, /*rss=*/false);
  const double rss = filter.throughput_bps(1500, /*rss=*/true);
  EXPECT_NEAR(rss / single, 8.0, 0.01);  // default 8 cores
  EXPECT_GT(rss, 100e9);  // line rate at 100G+ (the paper's figure)
}

// The PR 7 router regression, at the host boundary: the per-source CMAC
// context is derived once at admission, and the steady-state check path
// runs zero key schedules (the counter is exact, not sampled).
TEST(LightningFilter, SteadyStateChecksRunZeroKeySchedules) {
  LightningFilter filter{bytes_of("dmz-secret")};
  const IsdAs src = a::kisti_dj();
  const Bytes payload = bytes_of("bulk science data");
  const Bytes tag = filter.make_authenticator(src, payload);
  Bytes wire = payload;
  wire.insert(wire.end(), tag.begin(), tag.end());
  // First packet admits the source (one key schedule, off the books).
  ASSERT_EQ(filter.check(src, wire, 0), LightningFilter::Verdict::kAccept);
  const auto before = crypto::Aes128::key_schedules_run();
  for (int i = 1; i <= 200; ++i) {
    ASSERT_EQ(filter.check(src, wire, i * kMillisecond),
              LightningFilter::Verdict::kAccept);
  }
  EXPECT_EQ(crypto::Aes128::key_schedules_run(), before);
}

// Spoofed-source floods fabricate ASes to exhaust per-source state: the
// table is capped, overflow is shed before any key derivation, and idle
// residue is reclaimed so real sources get back in.
TEST(LightningFilter, BoundedSourceTableOverflowsThenReclaims) {
  LightningFilter::Config cfg;
  cfg.require_auth = false;
  cfg.max_sources = 2;
  cfg.idle_timeout = kSecond;
  LightningFilter filter{bytes_of("s"), cfg};
  const Bytes none;
  EXPECT_EQ(filter.check(a::uva(), none, 0),
            LightningFilter::Verdict::kAccept);
  EXPECT_EQ(filter.check(a::geant(), none, 0),
            LightningFilter::Verdict::kAccept);
  EXPECT_EQ(filter.source_count(), 2u);
  // Table full of live sources: the next fabricated AS is shed, and no
  // key schedule ran for it.
  const auto schedules = crypto::Aes128::key_schedules_run();
  EXPECT_EQ(filter.check(a::princeton(), none, 100 * kMillisecond),
            LightningFilter::Verdict::kDropOverflow);
  EXPECT_EQ(crypto::Aes128::key_schedules_run(), schedules);
  EXPECT_EQ(filter.stats().dropped_overflow, 1u);
  EXPECT_EQ(filter.source_count(), 2u);
  // Once the residents go idle the same source is admitted via reclaim.
  EXPECT_EQ(filter.check(a::princeton(), none, 2 * kSecond),
            LightningFilter::Verdict::kAccept);
  EXPECT_LE(filter.source_count(), cfg.max_sources);
}

// Reclamation evicts never-authenticated residue before authenticated
// sources: after a spoofed squatter is pushed out, the paying customer's
// cached context survives (no fresh key schedule on its next packet).
TEST(LightningFilter, ReclaimEvictsNeverAuthenticatedFirst) {
  LightningFilter::Config cfg;
  cfg.max_sources = 2;
  cfg.idle_timeout = kSecond;
  LightningFilter filter{bytes_of("s"), cfg};
  const Bytes payload = bytes_of("x");
  const Bytes tag = filter.make_authenticator(a::uva(), payload);
  Bytes wire = payload;
  wire.insert(wire.end(), tag.begin(), tag.end());
  ASSERT_EQ(filter.check(a::uva(), wire, 0),
            LightningFilter::Verdict::kAccept);  // authenticated resident
  ASSERT_EQ(filter.check(a::geant(), payload, 0),
            LightningFilter::Verdict::kDropAuth);  // admitted, never valid
  ASSERT_EQ(filter.source_count(), 2u);
  // Both idle now; the new source's admission must evict the squatter.
  ASSERT_EQ(filter.check(a::princeton(), payload, 2 * kSecond),
            LightningFilter::Verdict::kDropAuth);
  const auto schedules = crypto::Aes128::key_schedules_run();
  EXPECT_EQ(filter.check(a::uva(), wire, 2 * kSecond + kMillisecond),
            LightningFilter::Verdict::kAccept);
  EXPECT_EQ(crypto::Aes128::key_schedules_run(), schedules);
}

// The sender-side sealer and the filter derive the same per-source key
// from the shared secret — a sealed payload passes the in-path check.
TEST(LightningFilter, SealerMatchesFilterAuthenticator) {
  const Bytes secret = bytes_of("dmz-secret");
  LightningFilter filter{secret};
  const LightningSealer sealer{secret, a::kisti_dj()};
  EXPECT_EQ(sealer.source(), a::kisti_dj());
  const Bytes payload = bytes_of("science data");
  const Bytes tag = sealer.seal(payload);
  EXPECT_EQ(tag, filter.make_authenticator(a::kisti_dj(), payload));
  Bytes wire = payload;
  wire.insert(wire.end(), tag.begin(), tag.end());
  EXPECT_EQ(filter.check(a::kisti_dj(), wire, 0),
            LightningFilter::Verdict::kAccept);
  // Sealed under the wrong secret, the same wire format is rejected.
  const LightningSealer wrong{bytes_of("other-secret"), a::kisti_dj()};
  Bytes forged = payload;
  const Bytes bad = wrong.seal(payload);
  forged.insert(forged.end(), bad.begin(), bad.end());
  EXPECT_EQ(filter.check(a::kisti_dj(), forged, kMillisecond),
            LightningFilter::Verdict::kDropAuth);
}

}  // namespace
}  // namespace sciera::endhost
