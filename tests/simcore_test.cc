// Scheduler-equivalence suite: the calendar-queue backend must reproduce
// the binary heap's exact event schedule — identical ScheduleDigest on the
// same seeded scenario — on raw timer workloads, sparse far-future
// schedules, full-network failover, and a many-flow traffic matrix. Plus
// FramePool reuse/leak assertions (run under ASan in the sanitizer job).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>

#include "common/rng.h"
#include "controlplane/control_plane.h"
#include "dataplane/frame_pool.h"
#include "dataplane/scmp.h"
#include "simnet/simulator.h"
#include "topology/sciera_net.h"
#include "workload/workload.h"

namespace sciera {
namespace {

namespace a = topology::ases;

simnet::SchedulerConfig config_for(simnet::SchedulerKind kind) {
  simnet::SchedulerConfig config;
  config.kind = kind;
  return config;
}

// Runs the same seeded scenario under both backends and expects identical
// digests; returns the (common) digest for further assertions.
simnet::ScheduleDigest expect_backends_agree(
    const std::function<simnet::ScheduleDigest(simnet::SchedulerConfig)>&
        scenario) {
  const auto heap = scenario(config_for(simnet::SchedulerKind::kBinaryHeap));
  const auto calendar =
      scenario(config_for(simnet::SchedulerKind::kCalendarQueue));
  EXPECT_EQ(heap, calendar)
      << "heap hash " << heap.hash << " (" << heap.executed
      << " events) vs calendar hash " << calendar.hash << " ("
      << calendar.executed << " events)";
  return heap;
}

// --- Raw simulator workloads ---------------------------------------------

TEST(SchedulerEquivalence, SeededTimerChains) {
  const auto digest =
      expect_backends_agree([](simnet::SchedulerConfig config) {
        simnet::Simulator sim{config};
        Rng rng{0xD16E57, "chains"};
        std::function<void(int)> tick = [&](int remaining) {
          if (remaining <= 0) return;
          sim.after(static_cast<Duration>(rng.next_below(kMillisecond) + 1),
                    [&tick, remaining] { tick(remaining - 1); });
        };
        for (int chain = 0; chain < 16; ++chain) tick(200);
        sim.run_all();
        return sim.schedule_digest();
      });
  EXPECT_EQ(digest.executed, 16u * 200u);
}

TEST(SchedulerEquivalence, SameTickEventsKeepFifoOrder) {
  // Many events at identical timestamps: ordering must fall back to
  // insertion sequence in both backends.
  expect_backends_agree([](simnet::SchedulerConfig config) {
    simnet::Simulator sim{config};
    for (int round = 0; round < 50; ++round) {
      for (int i = 0; i < 20; ++i) {
        sim.at(round * kMillisecond, [] {});
      }
    }
    sim.run_all();
    return sim.schedule_digest();
  });
}

TEST(SchedulerEquivalence, SparseFarFutureSchedule) {
  // Probe-campaign shape: events minutes apart, far beyond the wheel
  // horizon, forcing the overflow heap and cursor teleport paths.
  expect_backends_agree([](simnet::SchedulerConfig config) {
    simnet::Simulator sim{config};
    Rng rng{0xFA5, "sparse"};
    for (int i = 0; i < 64; ++i) {
      const auto when = static_cast<SimTime>(rng.next_below(20 * kMinute));
      sim.at(when, [&sim, &rng] {
        sim.after(static_cast<Duration>(rng.next_below(kMinute) + 1), [] {});
      });
    }
    sim.run_all();
    return sim.schedule_digest();
  });
}

TEST(SchedulerEquivalence, TinyWheelStressesRotation) {
  // A deliberately undersized wheel (4 buckets x ~1us) makes every push
  // wrap the cursor and spill to the overflow heap; ordering must survive.
  expect_backends_agree([](simnet::SchedulerConfig config) {
    config.bucket_width = Duration{1} << 10;
    config.bucket_count = 4;
    simnet::Simulator sim{config};
    Rng rng{0x71AF, "tiny"};
    std::function<void(int)> tick = [&](int remaining) {
      if (remaining <= 0) return;
      sim.after(static_cast<Duration>(rng.next_below(100 * kMicrosecond) + 1),
                [&tick, remaining] { tick(remaining - 1); });
    };
    for (int chain = 0; chain < 8; ++chain) tick(100);
    sim.run_all();
    return sim.schedule_digest();
  });
}

TEST(SchedulerEquivalence, RunUntilDeadlineAgrees) {
  // Partial drains: the deadline cut must land between the same two
  // events under both backends.
  expect_backends_agree([](simnet::SchedulerConfig config) {
    simnet::Simulator sim{config};
    Rng rng{0xDEAD11, "deadline"};
    for (int i = 0; i < 500; ++i) {
      sim.at(static_cast<SimTime>(rng.next_below(10 * kMillisecond)), [] {});
    }
    sim.run_until(5 * kMillisecond);
    sim.run_all();
    return sim.schedule_digest();
  });
}

// --- Full-network scenarios ----------------------------------------------

simnet::ScheduleDigest run_failover_with(
    controlplane::ScionNetwork::Options options) {
  controlplane::ScionNetwork net{topology::build_sciera(), options};

  const dataplane::Address host{a::uva(), 0x0A000001};
  int delivered = 0;
  EXPECT_TRUE(net.register_host(host, [&](const dataplane::ScionPacket&,
                                          SimTime) { ++delivered; })
                  .ok());
  const auto paths = net.paths(a::uva(), a::ufms());
  EXPECT_FALSE(paths.empty());
  auto send_burst = [&] {
    for (int i = 0; i < 5; ++i) {
      dataplane::ScionPacket pkt;
      pkt.src = host;
      pkt.dst = {a::ufms(), 2};
      pkt.next_hdr = dataplane::kProtoScmp;
      pkt.path = paths.front().dataplane_path;
      pkt.payload =
          dataplane::make_echo_request(7, static_cast<std::uint16_t>(i))
              .serialize();
      EXPECT_TRUE(net.send_from_host(pkt).ok());
    }
  };
  send_burst();
  net.sim().run_for(kSecond);
  // Cut a link on the path mid-experiment, keep sending into the outage,
  // then restore: exercises SCMP generation and link-down event paths.
  const std::string label = net.topology().links().front().label;
  net.set_link_up(label, false);
  send_burst();
  net.sim().run_for(kSecond);
  net.set_link_up(label, true);
  send_burst();
  net.sim().run_for(2 * kSecond);
  EXPECT_GT(delivered, 0);
  return net.sim().schedule_digest();
}

simnet::ScheduleDigest run_failover_scenario(simnet::SchedulerConfig config) {
  controlplane::ScionNetwork::Options options;
  options.seed = 0x5EED;
  options.scheduler = config;
  return run_failover_with(options);
}

TEST(SchedulerEquivalence, FailoverScenario) {
  const auto digest = expect_backends_agree(run_failover_scenario);
  EXPECT_GT(digest.executed, 0u);
}

simnet::ScheduleDigest run_many_flow_with(
    controlplane::ScionNetwork::Options options) {
  // Campaign-scale shape: many concurrent flows across every AS, the
  // population the calendar queue exists for.
  controlplane::ScionNetwork net{topology::build_sciera(), options};
  workload::WorkloadConfig wconfig;
  wconfig.hosts = 6;
  wconfig.flows = 18;
  wconfig.packets_per_flow = 8;
  workload::TrafficMatrix matrix{net, wconfig};
  EXPECT_TRUE(matrix.launch().ok());
  net.sim().run_all();
  EXPECT_GT(matrix.report().packets_delivered, 0u);
  return net.sim().schedule_digest();
}

simnet::ScheduleDigest run_many_flow_scenario(simnet::SchedulerConfig config) {
  controlplane::ScionNetwork::Options options;
  options.seed = 0xCA4FA16;
  options.scheduler = config;
  return run_many_flow_with(options);
}

TEST(SchedulerEquivalence, ManyFlowWorkload) {
  const auto digest = expect_backends_agree(run_many_flow_scenario);
  EXPECT_GT(digest.executed, 0u);
}

// --- Batched router equivalence -------------------------------------------
// The batched border-router fast path (parse the whole same-tick batch,
// then verify/forward it) must be schedule-invisible: a full seeded
// scenario run with batching on and off produces the identical
// ScheduleDigest, not merely the same delivery counts. Parsing schedules
// no events, so staging it per-batch cannot reorder anything — these
// tests pin that argument against future batch-stage changes.

controlplane::ScionNetwork::Options router_mode_options(std::uint64_t seed,
                                                        bool batched) {
  controlplane::ScionNetwork::Options options;
  options.seed = seed;
  options.router.batched = batched;
  return options;
}

TEST(BatchedRouterEquivalence, FailoverScenarioDigestsMatch) {
  const auto scalar = run_failover_with(router_mode_options(0x5EED, false));
  const auto batched = run_failover_with(router_mode_options(0x5EED, true));
  EXPECT_EQ(scalar, batched)
      << "scalar hash " << scalar.hash << " (" << scalar.executed
      << " events) vs batched hash " << batched.hash << " ("
      << batched.executed << " events)";
  EXPECT_GT(scalar.executed, 0u);
}

TEST(BatchedRouterEquivalence, ManyFlowWorkloadDigestsMatch) {
  const auto scalar = run_many_flow_with(router_mode_options(0xCA4FA16, false));
  const auto batched = run_many_flow_with(router_mode_options(0xCA4FA16, true));
  EXPECT_EQ(scalar, batched)
      << "scalar hash " << scalar.hash << " (" << scalar.executed
      << " events) vs batched hash " << batched.hash << " ("
      << batched.executed << " events)";
  EXPECT_GT(scalar.executed, 0u);
}

TEST(BatchedRouterEquivalence, BatchedModeAgreesAcrossSchedulers) {
  // Batching composes with the scheduler-equivalence contract: the
  // batched fast path under the calendar queue still reproduces the
  // binary heap's schedule.
  expect_backends_agree([](simnet::SchedulerConfig config) {
    auto options = router_mode_options(0x5EED, true);
    options.scheduler = config;
    return run_failover_with(options);
  });
}

// --- FramePool ------------------------------------------------------------

TEST(FramePoolTest, ForwardingReusesFramesAndLeaksNothing) {
  auto& pool = dataplane::FramePool::global();
  const auto before = pool.stats();
  // Two identical runs: the second draws from frames the first released.
  for (int run = 0; run < 2; ++run) {
    (void)run_failover_scenario(
        config_for(simnet::SchedulerKind::kCalendarQueue));
  }
  const auto after = pool.stats();
  EXPECT_GT(after.acquired, before.acquired);
  EXPECT_GT(after.reused, before.reused);
  // Leak check: every frame acquired during the runs was released back
  // (ASan additionally verifies no frame memory was lost or double-freed).
  EXPECT_EQ(after.outstanding, before.outstanding);
  EXPECT_EQ(after.acquired - before.acquired,
            (after.allocated - before.allocated) +
                (after.reused - before.reused));
  EXPECT_GE(after.pooled, 0);
}

TEST(FramePoolTest, DedicatedPoolRecyclesBufferCapacity) {
  dataplane::FramePool pool{{.max_pooled = 2}};
  const dataplane::UnderlayFrame* first_frame = nullptr;
  {
    auto frame = pool.acquire();
    first_frame = frame.get();
    frame->scion_bytes.resize(1200);  // grow the payload buffer
    frame->src_ip = 0x0A000001;
  }
  EXPECT_EQ(pool.stats().pooled, 1);
  {
    auto frame = pool.acquire();
    // Same arena slot back, scrubbed, with its capacity intact.
    EXPECT_EQ(frame.get(), first_frame);
    EXPECT_EQ(frame->scion_bytes.size(), 0u);
    EXPECT_GE(frame->scion_bytes.capacity(), 1200u);
    EXPECT_EQ(frame->src_ip, 0u);
  }
  EXPECT_EQ(pool.stats().reused, 1u);
  EXPECT_EQ(pool.stats().outstanding, 0);
}

TEST(FramePoolTest, ControlBlocksRecycleWithTheFrames) {
  // The shared_ptr control block must recycle alongside the frame:
  // steady-state acquire/release cycles may not touch the allocator at
  // all. One node is minted on the cold first acquire; every later
  // acquire reuses it.
  dataplane::FramePool pool{{.max_pooled = 2}};
  { auto frame = pool.acquire(); }
  const auto cold = pool.stats();
  EXPECT_EQ(cold.ctrl_allocated, 1u);
  EXPECT_EQ(cold.ctrl_reused, 0u);
  for (int cycle = 0; cycle < 8; ++cycle) {
    auto frame = pool.acquire();
    frame->scion_bytes.assign(64, std::uint8_t{0xAB});
  }
  const auto warm = pool.stats();
  EXPECT_EQ(warm.ctrl_allocated, 1u);  // no new allocator hits
  EXPECT_EQ(warm.ctrl_reused, 8u);
  EXPECT_EQ(warm.outstanding, 0);
}

TEST(FramePoolTest, MaxPooledBoundsTheFreeList) {
  dataplane::FramePool pool{{.max_pooled = 2}};
  {
    auto a1 = pool.acquire();
    auto a2 = pool.acquire();
    auto a3 = pool.acquire();
    auto a4 = pool.acquire();
  }
  EXPECT_EQ(pool.stats().pooled, 2);  // the rest were freed, not hoarded
  pool.trim();
  EXPECT_EQ(pool.stats().pooled, 0);
}

}  // namespace
}  // namespace sciera
