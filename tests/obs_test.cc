// The observability layer: registry semantics (cell identity, label
// canonicalization, histogram bucketing), flight-recorder ring behaviour,
// exporter formats, and the determinism contract — the same seed must
// export a byte-identical snapshot, verified alongside the simnet
// schedule-digest auditor.
#include <gtest/gtest.h>

#include "endhost/dispatcher.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "simnet/audit.h"
#include "topology/sciera_net.h"

namespace sciera {
namespace {

namespace a = topology::ases;

using obs::FlightRecorder;
using obs::Labels;
using obs::MetricsRegistry;
using obs::TraceType;

TEST(MetricsRegistryTest, SameKeyReturnsSameCell) {
  MetricsRegistry registry;
  auto& c1 = registry.counter("requests_total", {{"svc", "a"}});
  auto& c2 = registry.counter("requests_total", {{"svc", "a"}});
  EXPECT_EQ(&c1, &c2);
  c1.inc();
  c2.inc(2);
  EXPECT_EQ(c1.value(), 3u);
  EXPECT_EQ(registry.series(), 1u);
}

TEST(MetricsRegistryTest, LabelOrderIsCanonicalized) {
  MetricsRegistry registry;
  auto& c1 = registry.counter("x", {{"b", "2"}, {"a", "1"}});
  auto& c2 = registry.counter("x", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&c1, &c2);
  const auto samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 1u);
  const Labels expected{{"a", "1"}, {"b", "2"}};
  EXPECT_EQ(samples[0].labels, expected);
}

TEST(MetricsRegistryTest, DistinctLabelsAreDistinctSeries) {
  MetricsRegistry registry;
  auto& c1 = registry.counter("x", {{"svc", "a"}});
  auto& c2 = registry.counter("x", {{"svc", "b"}});
  EXPECT_NE(&c1, &c2);
  EXPECT_EQ(registry.series(), 2u);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  auto& g = registry.gauge("depth");
  g.set(5);
  g.add(-7);
  EXPECT_EQ(g.value(), -2);
}

TEST(MetricsRegistryTest, HistogramBucketBoundariesAreInclusive) {
  MetricsRegistry registry;
  auto& h = registry.histogram("rtt_ms", {10, 20, 50});
  h.observe(9);    // bucket 0
  h.observe(10);   // bucket 0 (le semantics: 10 <= 10)
  h.observe(11);   // bucket 1
  h.observe(50);   // bucket 2
  h.observe(51);   // overflow
  h.observe(-3);   // bucket 0
  EXPECT_EQ(h.bucket(0), 3u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);  // overflow bucket
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 9 + 10 + 11 + 50 + 51 - 3);
}

TEST(MetricsRegistryTest, InstanceLabelsAreUniquePerKind) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.instance_label("link", "geant-bridges"), "geant-bridges");
  EXPECT_EQ(registry.instance_label("link", "geant-bridges"),
            "geant-bridges#2");
  EXPECT_EQ(registry.instance_label("link", "geant-bridges"),
            "geant-bridges#3");
  // A different kind has its own namespace.
  EXPECT_EQ(registry.instance_label("router", "geant-bridges"),
            "geant-bridges");
}

TEST(MetricsRegistryTest, ZeroAllKeepsHandlesValid) {
  MetricsRegistry registry;
  auto& c = registry.counter("events_total");
  auto& g = registry.gauge("depth");
  auto& h = registry.histogram("size", {1, 2});
  c.inc(7);
  g.set(3);
  h.observe(1);
  registry.zero_all();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0);
  c.inc();  // handle still live
  EXPECT_EQ(c.value(), 1u);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByNameThenLabels) {
  MetricsRegistry registry;
  registry.counter("b_total");
  registry.counter("a_total", {{"k", "2"}});
  registry.counter("a_total", {{"k", "1"}});
  const auto samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "a_total");
  EXPECT_EQ(samples[0].labels[0].second, "1");
  EXPECT_EQ(samples[1].name, "a_total");
  EXPECT_EQ(samples[1].labels[0].second, "2");
  EXPECT_EQ(samples[2].name, "b_total");
}

TEST(MetricsExportTest, TextFormatIsPrometheusExposition) {
  MetricsRegistry registry;
  registry.counter("requests_total", {{"svc", "a"}}).inc(3);
  registry.gauge("depth").set(-2);
  auto& h = registry.histogram("rtt_ms", {10, 20});
  h.observe(5);
  h.observe(15);
  h.observe(99);
  const std::string text = obs::export_text(registry);
  EXPECT_NE(text.find("# TYPE requests_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("requests_total{svc=\"a\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("depth -2\n"), std::string::npos);
  // Histogram buckets are cumulative in the exposition.
  EXPECT_NE(text.find("rtt_ms_bucket{le=\"10\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("rtt_ms_bucket{le=\"20\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("rtt_ms_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("rtt_ms_sum 119\n"), std::string::npos);
  EXPECT_NE(text.find("rtt_ms_count 3\n"), std::string::npos);
}

TEST(MetricsExportTest, JsonEscapesAndRoundTrips) {
  MetricsRegistry registry;
  registry.counter("total", {{"path", "a\"b\\c"}}).inc();
  const std::string json = obs::export_json(registry);
  EXPECT_NE(json.find("a\\\"b\\\\c"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(FlightRecorderTest, RingIsBoundedAndKeepsNewest) {
  FlightRecorder recorder{4};
  for (int i = 0; i < 10; ++i) {
    recorder.record(TraceType::kPacketHop, i * 100, static_cast<unsigned>(i),
                    "br", "egress=1");
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.overwritten(), 6u);
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first: the four newest events in recording order.
  EXPECT_EQ(events.front().seq, 6u);
  EXPECT_EQ(events.back().seq, 9u);
  EXPECT_EQ(events.back().time, 900);
}

TEST(FlightRecorderTest, ClearEmptiesTheRing) {
  FlightRecorder recorder{4};
  recorder.record(TraceType::kLinkTransition, 1, 1, "link", "down");
  recorder.clear();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_TRUE(recorder.snapshot().empty());
}

TEST(FlightRecorderTest, TraceExportCarriesAllFields) {
  FlightRecorder recorder{8};
  recorder.record(TraceType::kScmpEmitted, 42, 7, "br-71-225",
                  "external_iface_down", 5);
  const std::string text = obs::export_trace_text(recorder);
  EXPECT_NE(text.find("scmp_emitted"), std::string::npos);
  EXPECT_NE(text.find("br-71-225"), std::string::npos);
  EXPECT_NE(text.find("external_iface_down"), std::string::npos);
  const std::string json = obs::export_trace_json(recorder);
  EXPECT_NE(json.find("\"seq\":7"), std::string::npos);
  EXPECT_NE(json.find("\"time\":42"), std::string::npos);
}

// The tentpole contract: a seeded scenario exports a byte-identical
// metrics + trace snapshot on replay, and the schedule digest agrees.
// Uses the global registry/recorder the instrumented components feed, so
// each run resets them — safe here because the scenario constructs (and
// destroys) every registered component within the callback.
TEST(ObsDeterminismTest, SameSeedExportsIdenticalSnapshot) {
  std::vector<std::string> exports;
  const auto scenario = [&]() -> simnet::ScheduleDigest {
    MetricsRegistry::global().reset();
    FlightRecorder::global().clear();
    controlplane::ScionNetwork network{topology::build_sciera()};
    endhost::HostStack sender{network, {a::uva(), 0x0A000001}};
    endhost::HostStack receiver{network, {a::ovgu(), 0x0A000002}};
    (void)receiver.bind(4242, [](const dataplane::ScionPacket&,
                                 const dataplane::UdpDatagram&, SimTime) {});
    const auto paths = network.paths(a::uva(), a::ovgu());
    EXPECT_FALSE(paths.empty());
    for (int i = 0; i < 3; ++i) {
      dataplane::ScionPacket packet;
      packet.dst = {a::ovgu(), 0x0A000002};
      packet.next_hdr = dataplane::kProtoUdp;
      packet.path = paths.front().dataplane_path;
      dataplane::UdpDatagram datagram;
      datagram.src_port = 9999;
      datagram.dst_port = 4242;
      datagram.data = bytes_of("probe");
      packet.payload = datagram.serialize();
      (void)sender.send(packet);
      network.sim().run_for(kSecond);
    }
    network.set_link_up(network.topology().links().front().label, false);
    network.sim().run_for(kSecond);
    exports.push_back(obs::export_text(MetricsRegistry::global()) +
                      obs::export_trace_text(FlightRecorder::global()));
    return network.sim().schedule_digest();
  };
  const auto report = simnet::audit_determinism(scenario);
  EXPECT_TRUE(report.deterministic()) << report.to_string();
  ASSERT_EQ(exports.size(), 2u);
  EXPECT_EQ(exports[0], exports[1]);
  EXPECT_NE(exports[0].find("sciera_link_delivered_total"), std::string::npos);
  EXPECT_NE(exports[0].find("link_transition"), std::string::npos);
}

}  // namespace
}  // namespace sciera
