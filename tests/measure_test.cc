#include <gtest/gtest.h>

#include "analysis/stats.h"
#include "measure/campaign.h"
#include "topology/sciera_net.h"

namespace sciera::measure {
namespace {

namespace a = topology::ases;

struct SharedNets {
  controlplane::ScionNetwork net{topology::build_sciera()};
  bgp::BgpNetwork bgp{net.topology()};
};

SharedNets& nets() {
  static SharedNets shared;
  return shared;
}

TEST(ThreePaths, SelectionFollowsDefinitions) {
  auto& s = nets();
  const auto paths = s.net.paths(a::uva(), a::ufms());
  ASSERT_GE(paths.size(), 3u);
  std::vector<const controlplane::Path*> usable;
  for (const auto& path : paths) usable.push_back(&path);

  std::map<std::string, Duration> probe_rtts;
  // Make an arbitrary non-shortest path the measured-fastest.
  const controlplane::Path* forced_fastest = usable.back();
  for (const auto* path : usable) {
    probe_rtts[path->fingerprint()] =
        path == forced_fastest ? kMillisecond : kSecond;
  }
  const ThreePaths chosen = select_three_paths(usable, probe_rtts);
  ASSERT_NE(chosen.shortest, nullptr);
  ASSERT_NE(chosen.fastest, nullptr);
  ASSERT_NE(chosen.disjoint, nullptr);
  // Shortest has globally minimal hop count.
  for (const auto* path : usable) {
    EXPECT_LE(chosen.shortest->as_sequence.size(), path->as_sequence.size());
  }
  // Fastest follows the probe measurements.
  EXPECT_EQ(chosen.fastest->fingerprint(), forced_fastest->fingerprint());
  // Most-disjoint minimizes shared interfaces with shortest+fastest.
  std::set<GlobalIfaceId> reference;
  for (const auto* p : {chosen.shortest, chosen.fastest}) {
    reference.insert(p->interfaces.begin(), p->interfaces.end());
  }
  auto shared_count = [&](const controlplane::Path* path) {
    std::size_t shared = 0;
    for (const auto& gid : path->interfaces) {
      shared += reference.contains(gid) ? 1 : 0;
    }
    return shared;
  };
  for (const auto* path : usable) {
    EXPECT_LE(shared_count(chosen.disjoint), shared_count(path));
  }
}

TEST(ThreePaths, EmptyUsableSetYieldsNothing) {
  const ThreePaths chosen = select_three_paths({}, {});
  EXPECT_EQ(chosen.shortest, nullptr);
  EXPECT_TRUE(chosen.all().empty());
}

TEST(Sampling, RttJitterIsMultiplicativeAndPositive) {
  Rng rng{5};
  const Duration base = 100 * kMillisecond;
  double sum = 0;
  Duration lo = INT64_MAX, hi = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const Duration sample = sample_rtt(base, 4, 0.02, rng);
    sum += to_ms(sample);
    lo = std::min(lo, sample);
    hi = std::max(hi, sample);
  }
  EXPECT_NEAR(sum / n, 100.0, 2.0);       // median-centered
  EXPECT_GT(lo, 80 * kMillisecond);       // tight sigma
  EXPECT_LT(hi, 130 * kMillisecond);
  EXPECT_LT(lo, hi);
}

class CampaignFixture : public ::testing::Test {
 protected:
  static const CampaignResult& result() {
    static const CampaignResult r = [] {
      auto& s = nets();
      CampaignOptions options;
      options.duration = 20 * kDay;
      options.interval = kHour;  // coarse for tests; benches go finer
      options.samples_per_path = 4;
      Campaign campaign{s.net, s.bgp, options};
      return campaign.run();
    }();
    return r;
  }
};

TEST_F(CampaignFixture, ProducesRecordsForAllPairsAndIntervals) {
  const auto& r = result();
  EXPECT_FALSE(r.intervals.empty());
  EXPECT_EQ(r.intervals.size(), r.probes.size());
  // 11 sources x (targets - self) pairs per interval tick.
  std::set<std::pair<std::uint64_t, std::uint64_t>> pairs;
  for (const auto& record : r.intervals) {
    pairs.insert({record.src.packed(), record.dst.packed()});
  }
  EXPECT_GT(pairs.size(), 100u);
  for (const auto& record : r.intervals) {
    EXPECT_NE(record.src, record.dst);
  }
}

TEST_F(CampaignFixture, ScionAndIpMostlyReachable) {
  const auto& r = result();
  std::size_t scion_ok = 0, ip_ok = 0;
  for (const auto& record : r.intervals) {
    scion_ok += record.scion_min_rtt.has_value();
    ip_ok += record.ip_min_rtt.has_value();
  }
  EXPECT_GT(static_cast<double>(scion_ok), 0.95 * r.intervals.size());
  EXPECT_GT(static_cast<double>(ip_ok), 0.95 * r.intervals.size());
}

TEST_F(CampaignFixture, RttsAreGloballyPlausible) {
  const auto& r = result();
  for (const auto& record : r.intervals) {
    if (record.scion_min_rtt) {
      EXPECT_GT(to_ms(*record.scion_min_rtt), 0.5);
      EXPECT_LT(to_ms(*record.scion_min_rtt), 1500.0);
    }
    if (record.ip_min_rtt) {
      EXPECT_LT(to_ms(*record.ip_min_rtt), 1500.0);
    }
  }
}

TEST_F(CampaignFixture, MedianScionBeatsIp) {
  // The headline Figure 5 result: SCION's median min-RTT is lower, and the
  // tail improvement is larger than the median improvement.
  const auto dist = analysis::rtt_distributions(result());
  EXPECT_LT(dist.scion_ms.median(), dist.ip_ms.median());
  const double median_gain = 1.0 - dist.scion_ms.median() / dist.ip_ms.median();
  const double p90_gain =
      1.0 - dist.scion_ms.percentile(0.9) / dist.ip_ms.percentile(0.9);
  EXPECT_GT(median_gain, 0.0);
  EXPECT_GT(p90_gain, median_gain);
}

TEST_F(CampaignFixture, UfmsEquinixIsAnOutlier) {
  // The SCION-only missing RNP<->BRIDGES VLAN forces SCION through GEANT
  // while IP goes direct: that pair's ratio must sit far above the median.
  const auto ratios = analysis::pair_ratios(result());
  ASSERT_FALSE(ratios.empty());
  double ufms_equinix = 0;
  std::vector<double> all;
  for (const auto& ratio : ratios) {
    all.push_back(ratio.ratio);
    if (ratio.src == a::ufms() && ratio.dst == a::equinix()) {
      ufms_equinix = ratio.ratio;
    }
  }
  ASSERT_GT(ufms_equinix, 0);
  const analysis::Cdf cdf{all};
  // One of the Figure 6 outlier sets: well above the bulk of the pairs.
  EXPECT_GT(ufms_equinix, cdf.percentile(0.75));
  EXPECT_GT(ufms_equinix, 1.1);
}

TEST_F(CampaignFixture, PathCountsDropDuringKreonetOutage) {
  const auto& r = result();
  // Daejeon <-> Singapore: the dj-hk outage (days 10..16.5) removes the
  // short ring direction; active path count must dip in that window.
  std::size_t before_max = 0, during_min = SIZE_MAX;
  for (const auto& probe : r.probes) {
    if (!(probe.src == a::kisti_dj() && probe.dst == a::kisti_sg())) continue;
    const double day = static_cast<double>(probe.time) / kDay;
    if (day < 8.0) before_max = std::max(before_max, probe.active_paths);
    if (day > 10.5 && day < 16.0) {
      during_min = std::min(during_min, probe.active_paths);
    }
  }
  ASSERT_NE(during_min, SIZE_MAX);
  EXPECT_LT(during_min, before_max);
}

TEST_F(CampaignFixture, CsvExportsParse) {
  const auto& r = result();
  const std::string intervals = r.intervals_csv();
  const std::string probes = r.probes_csv();
  EXPECT_NE(intervals.find("scion_min_rtt_ms"), std::string::npos);
  EXPECT_NE(probes.find("active_paths"), std::string::npos);
  // Row counts match (+1 header, +1 trailing newline split artifact).
  const auto count_lines = [](const std::string& text) {
    return static_cast<std::size_t>(
        std::count(text.begin(), text.end(), '\n'));
  };
  EXPECT_EQ(count_lines(intervals), r.intervals.size() + 1);
  EXPECT_EQ(count_lines(probes), r.probes.size() + 1);
}

TEST_F(CampaignFixture, LinkStateRestoredAfterRun) {
  auto& s = nets();
  // The campaign must leave the shared networks clean.
  for (const auto& link : s.net.topology().links()) {
    EXPECT_TRUE(s.net.link(link.id)->is_up()) << link.label;
    EXPECT_TRUE(s.bgp.link_up(link.id)) << link.label;
  }
}

TEST(CampaignIncidents, PaperScheduleIsWellFormed) {
  const auto incidents = Campaign::paper_incidents();
  EXPECT_GE(incidents.size(), 10u);
  const topology::Topology topo = topology::build_sciera();
  for (const auto& incident : incidents) {
    EXPECT_LT(incident.from, incident.to) << incident.label;
    for (const auto& label : incident.links) {
      EXPECT_NE(topo.find_link_by_label(label), nullptr)
          << incident.label << " references unknown link " << label;
    }
  }
}


TEST(CampaignDeterminism, SameSeedSameResult) {
  auto& s = nets();
  CampaignOptions options;
  options.duration = 2 * kDay;
  options.interval = kHour;
  Campaign first{s.net, s.bgp, options};
  const auto a1 = first.run();
  Campaign second{s.net, s.bgp, options};
  const auto a2 = second.run();
  ASSERT_EQ(a1.intervals.size(), a2.intervals.size());
  for (std::size_t i = 0; i < a1.intervals.size(); ++i) {
    EXPECT_EQ(a1.intervals[i].scion_min_rtt, a2.intervals[i].scion_min_rtt);
    EXPECT_EQ(a1.intervals[i].ip_min_rtt, a2.intervals[i].ip_min_rtt);
  }
  EXPECT_EQ(a1.probes_csv(), a2.probes_csv());
}

TEST(CampaignDeterminism, DifferentSeedDifferentSamples) {
  auto& s = nets();
  CampaignOptions options;
  options.duration = kDay;
  options.interval = kHour;
  Campaign first{s.net, s.bgp, options};
  const auto a1 = first.run();
  options.seed = 999;
  Campaign second{s.net, s.bgp, options};
  const auto a2 = second.run();
  ASSERT_EQ(a1.intervals.size(), a2.intervals.size());
  bool any_diff = false;
  for (std::size_t i = 0; i < a1.intervals.size(); ++i) {
    any_diff |= a1.intervals[i].scion_min_rtt != a2.intervals[i].scion_min_rtt;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace sciera::measure
