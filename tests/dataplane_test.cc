#include <gtest/gtest.h>

#include "common/rng.h"
#include "dataplane/hopfield.h"
#include "dataplane/packet.h"
#include "dataplane/scmp.h"

namespace sciera::dataplane {
namespace {

ScionPath sample_path() {
  ScionPath path;
  path.info = {InfoField{false, false, 0x1234, 1700000000},
               InfoField{true, false, 0x9999, 1700000100}};
  path.seg_len = {2, 3, 0};
  for (int i = 0; i < 5; ++i) {
    HopField hop;
    hop.exp_time = static_cast<std::uint8_t>(100 + i);
    hop.cons_ingress = static_cast<IfaceId>(i);
    hop.cons_egress = static_cast<IfaceId>(i + 10);
    hop.mac = {1, 2, 3, 4, 5, static_cast<std::uint8_t>(i)};
    path.hops.push_back(hop);
  }
  return path;
}

ScionPacket sample_packet() {
  ScionPacket pkt;
  pkt.traffic_class = 7;
  pkt.flow_id = 0xABCDE;
  pkt.next_hdr = kProtoUdp;
  pkt.dst = Address{IsdAs::parse("71-2:0:5c").value(), 0x0A000001};
  pkt.src = Address{IsdAs::parse("71-225").value(), 0x0A000002};
  pkt.path = sample_path();
  pkt.payload = bytes_of("payload-bytes");
  return pkt;
}

TEST(Packet, SerializeParseRoundTrip) {
  const ScionPacket pkt = sample_packet();
  const auto bytes = pkt.serialize();
  ASSERT_TRUE(bytes.ok()) << bytes.error().to_string();
  const auto parsed = ScionPacket::parse(bytes.value());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value(), pkt);
}

TEST(Packet, WireSizeMatchesSerialization) {
  const ScionPacket pkt = sample_packet();
  const auto bytes = pkt.serialize();
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes->size(), pkt.wire_size());
}

TEST(Packet, ParseRejectsTruncation) {
  const auto bytes = sample_packet().serialize().value();
  for (std::size_t cut : {1ul, 8ul, 20ul, 40ul, bytes.size() - 1}) {
    auto truncated = Bytes(bytes.begin(), bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(ScionPacket::parse(truncated).ok()) << "cut=" << cut;
  }
}

TEST(Packet, ParseRejectsTrailingGarbage) {
  auto bytes = sample_packet().serialize().value();
  bytes.push_back(0xAA);
  EXPECT_FALSE(ScionPacket::parse(bytes).ok());
}

TEST(Packet, EmptyPathPacketRoundTrips) {
  ScionPacket pkt = sample_packet();
  pkt.path_type = PathType::kEmpty;
  pkt.path = {};
  const auto bytes = pkt.serialize();
  ASSERT_TRUE(bytes.ok());
  const auto parsed = ScionPacket::parse(bytes.value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), pkt);
}

TEST(Packet, SerializeIntoMatchesSerializeAndReplacesContents) {
  const ScionPacket pkt = sample_packet();
  Bytes out = bytes_of("stale bytes from the buffer's previous life");
  ASSERT_TRUE(pkt.serialize_into(out).ok());
  EXPECT_EQ(out, pkt.serialize().value());
  // Round again into the same (now larger-capacity) buffer: identical.
  const auto first = out;
  ASSERT_TRUE(pkt.serialize_into(out).ok());
  EXPECT_EQ(out, first);
}

TEST(Packet, ParseIntoMatchesParseAcrossReusedScratch) {
  // The batched router parses every packet of a batch into the same
  // scratch ScionPacket; whatever the previous packet left behind must
  // never leak into the next parse.
  ScionPacket scratch;
  const ScionPacket big = sample_packet();
  ASSERT_TRUE(
      ScionPacket::parse_into(big.serialize().value(), scratch).ok());
  EXPECT_EQ(scratch, big);

  ScionPacket small = sample_packet();
  small.flow_id = 0x11111;
  small.payload = bytes_of("x");  // shorter than big's payload
  ASSERT_TRUE(
      ScionPacket::parse_into(small.serialize().value(), scratch).ok());
  EXPECT_EQ(scratch, small);

  // Empty-path packet after a full-path one: the stale 5-hop path must
  // be cleared, not merely overwritten.
  ScionPacket empty = sample_packet();
  empty.path_type = PathType::kEmpty;
  empty.path = {};
  ASSERT_TRUE(
      ScionPacket::parse_into(empty.serialize().value(), scratch).ok());
  EXPECT_EQ(scratch, empty);
}

TEST(Packet, ParseIntoRejectsWhatParseRejects) {
  const auto bytes = sample_packet().serialize().value();
  ScionPacket scratch;
  for (std::size_t cut : {1ul, 8ul, 20ul, 40ul, bytes.size() - 1}) {
    Bytes truncated(bytes.begin(), bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(ScionPacket::parse_into(truncated, scratch).ok())
        << "cut=" << cut;
  }
  Bytes trailing = bytes;
  trailing.push_back(0xAA);
  EXPECT_FALSE(ScionPacket::parse_into(trailing, scratch).ok());
  // The scratch still works after error paths left it unspecified.
  ASSERT_TRUE(ScionPacket::parse_into(bytes, scratch).ok());
  EXPECT_EQ(scratch, sample_packet());
}

TEST(Packet, ValidateCatchesBadSegLens) {
  ScionPath path = sample_path();
  path.seg_len = {2, 2, 0};  // sum != hops
  EXPECT_FALSE(path.validate().ok());
  path = sample_path();
  path.seg_len = {5, 0, 0};  // second segment missing but info present
  EXPECT_FALSE(path.validate().ok());
  path = sample_path();
  path.info.clear();
  EXPECT_FALSE(path.validate().ok());
}

TEST(Path, AdvanceWalksSegments) {
  ScionPath path = sample_path();
  EXPECT_EQ(path.curr_inf, 0);
  EXPECT_FALSE(path.at_segment_end());
  path.advance();  // hop 1, last of segment 0
  EXPECT_EQ(path.curr_inf, 0);
  EXPECT_TRUE(path.at_segment_end());
  path.advance();  // hop 2, first of segment 1
  EXPECT_EQ(path.curr_inf, 1);
  path.advance();
  path.advance();  // hop 4, last
  EXPECT_TRUE(path.at_segment_end());
  EXPECT_FALSE(path.at_end());
  path.advance();
  EXPECT_TRUE(path.at_end());
}

TEST(Path, ReversedFlipsEverything) {
  const ScionPath path = sample_path();
  const ScionPath rev = path.reversed();
  EXPECT_EQ(rev.info.size(), 2u);
  EXPECT_EQ(rev.info[0].construction_dir, false);  // was segment 1, C=1
  EXPECT_EQ(rev.info[1].construction_dir, true);   // was segment 0, C=0
  EXPECT_EQ(rev.seg_len[0], 3);
  EXPECT_EQ(rev.seg_len[1], 2);
  EXPECT_EQ(rev.hops.front(), path.hops.back());
  EXPECT_EQ(rev.hops.back(), path.hops.front());
  // Reversing twice restores the hop order.
  const ScionPath twice = rev.reversed();
  EXPECT_EQ(twice.hops, path.hops);
}

TEST(HopMac, ComputeVerifyRoundTrip) {
  const FwdKey key = derive_fwd_key(bytes_of("master-secret"));
  HopField hop;
  hop.exp_time = 63;
  hop.cons_ingress = 3;
  hop.cons_egress = 9;
  hop.mac = compute_hop_mac(key, 0xBEEF, 1700000000, hop);
  EXPECT_TRUE(verify_hop_mac(key, 0xBEEF, 1700000000, hop));
  EXPECT_FALSE(verify_hop_mac(key, 0xBEEE, 1700000000, hop));
  EXPECT_FALSE(verify_hop_mac(key, 0xBEEF, 1700000001, hop));
  HopField tampered = hop;
  tampered.cons_egress = 10;
  EXPECT_FALSE(verify_hop_mac(key, 0xBEEF, 1700000000, tampered));
}

TEST(HopMac, DifferentKeysDifferentMacs) {
  const FwdKey k1 = derive_fwd_key(bytes_of("as-one"));
  const FwdKey k2 = derive_fwd_key(bytes_of("as-two"));
  HopField hop;
  hop.mac = compute_hop_mac(k1, 1, 1, hop);
  EXPECT_FALSE(verify_hop_mac(k2, 1, 1, hop));
}

TEST(HopMac, ChainBetaIsInvolutive) {
  Rng rng{3};
  for (int i = 0; i < 100; ++i) {
    const auto beta = static_cast<std::uint16_t>(rng.next_u64());
    Mac6 mac;
    for (auto& b : mac) b = static_cast<std::uint8_t>(rng.next_u64());
    EXPECT_EQ(chain_beta(chain_beta(beta, mac), mac), beta);
  }
}

TEST(HopMac, ExpiryRespectsExpTime)
{
  HopField hop;
  hop.exp_time = 0;  // (0+1)*24h/256 = 337.5s
  EXPECT_FALSE(hop_expired(hop, 1000, 1000 + 300));
  EXPECT_TRUE(hop_expired(hop, 1000, 1000 + 400));
  hop.exp_time = 255;  // full 24h
  EXPECT_FALSE(hop_expired(hop, 1000, 1000 + 86000));
  EXPECT_TRUE(hop_expired(hop, 1000, 1000 + 86500));
}

// --- HopVerifier (cached per-key MAC context) ------------------------------

HopField verifier_hop(IfaceId in, IfaceId out) {
  HopField hop;
  hop.exp_time = 63;
  hop.cons_ingress = in;
  hop.cons_egress = out;
  return hop;
}

TEST(HopVerifier, MatchesFreeFunctionsAndPerPacketMode) {
  // Three implementations of the same function — the cached verifier,
  // the per-packet-keyschedule baseline, and the free functions' context
  // cache — must agree bit for bit on every MAC.
  const FwdKey key = derive_fwd_key(bytes_of("verifier-equivalence"));
  HopVerifier cached{key};
  HopVerifier legacy{key, {.cache_entries = 0, .per_packet_keyschedule = true}};
  Rng rng{0x600D, "verifier"};
  for (int i = 0; i < 64; ++i) {
    const auto beta = static_cast<std::uint16_t>(rng.next_u64());
    const auto ts = static_cast<std::uint32_t>(rng.next_u64());
    const auto hop = verifier_hop(static_cast<IfaceId>(i), IfaceId{2});
    const Mac6 mac = cached.compute(beta, ts, hop);
    EXPECT_EQ(mac, legacy.compute(beta, ts, hop));
    EXPECT_EQ(mac, compute_hop_mac(key, beta, ts, hop));
    auto stamped = hop;
    stamped.mac = mac;
    EXPECT_TRUE(cached.verify(beta, ts, stamped));
  }
}

TEST(HopVerifier, OneKeySchedulePerKeyNotPerPacket) {
  // The regression this PR fixed: MAC-ing N packets used to run N AES
  // key schedules. A verifier runs exactly one (at construction) no
  // matter how many packets it processes.
  const FwdKey key = derive_fwd_key(bytes_of("one-schedule-per-key"));
  const auto before = crypto::Aes128::key_schedules_run();
  HopVerifier verifier{key};
  const auto constructed = crypto::Aes128::key_schedules_run();
  EXPECT_EQ(constructed - before, 1u);
  for (int i = 0; i < 128; ++i) {
    (void)verifier.compute(static_cast<std::uint16_t>(i), 1700000000,
                           verifier_hop(IfaceId{1}, IfaceId{2}));
  }
  EXPECT_EQ(crypto::Aes128::key_schedules_run(), constructed);
}

TEST(HopVerifier, PerPacketModeSchedulesEveryCall) {
  // The measurable baseline really does what its name says — otherwise
  // the micro-bench's "speedup" would be comparing the fix to itself.
  const FwdKey key = derive_fwd_key(bytes_of("per-packet-baseline"));
  HopVerifier legacy{key, {.cache_entries = 0, .per_packet_keyschedule = true}};
  const auto before = crypto::Aes128::key_schedules_run();
  for (int i = 0; i < 16; ++i) {
    (void)legacy.compute(static_cast<std::uint16_t>(i), 1700000000,
                         verifier_hop(IfaceId{1}, IfaceId{2}));
  }
  EXPECT_EQ(crypto::Aes128::key_schedules_run() - before, 16u);
}

TEST(HopVerifier, MacCacheHitsRepeatedBlocks) {
  const FwdKey key = derive_fwd_key(bytes_of("cache-hit-counting"));
  HopVerifier verifier{key, {.cache_entries = 16}};
  const auto hop = verifier_hop(IfaceId{3}, IfaceId{9});
  const Mac6 cold = verifier.compute(0xBEEF, 1700000000, hop);
  EXPECT_EQ(verifier.cache_counters().hits, 0u);
  EXPECT_EQ(verifier.cache_counters().misses, 1u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(verifier.compute(0xBEEF, 1700000000, hop), cold);
  }
  EXPECT_EQ(verifier.cache_counters().hits, 5u);
  EXPECT_EQ(verifier.cache_counters().misses, 1u);
}

TEST(HopVerifier, RekeyInvalidatesCacheAndChangesMacs) {
  const FwdKey k1 = derive_fwd_key(bytes_of("rollover-epoch-1"));
  const FwdKey k2 = derive_fwd_key(bytes_of("rollover-epoch-2"));
  HopVerifier verifier{k1};
  const auto hop = verifier_hop(IfaceId{1}, IfaceId{2});
  const Mac6 old_mac = verifier.compute(0x1234, 1700000000, hop);
  (void)verifier.compute(0x1234, 1700000000, hop);  // now cached
  EXPECT_EQ(verifier.cache_counters().hits, 1u);

  verifier.rekey(k2);
  EXPECT_EQ(verifier.key(), k2);
  // Same input block, new key: a stale cache entry would replay old_mac.
  const Mac6 new_mac = verifier.compute(0x1234, 1700000000, hop);
  EXPECT_NE(new_mac, old_mac);
  EXPECT_EQ(new_mac, compute_hop_mac(k2, 0x1234, 1700000000, hop));
  // The lookup after rekey() must have been a miss, not a poisoned hit.
  EXPECT_EQ(verifier.cache_counters().hits, 1u);
  auto stamped = hop;
  stamped.mac = old_mac;
  EXPECT_FALSE(verifier.verify(0x1234, 1700000000, stamped));
}

TEST(HopVerifier, SingleSlotCacheEvictsDeterministically) {
  // cache_entries = 1: every distinct input block maps to slot 0, so
  // alternating two blocks evicts on every call (all misses), while a
  // repeated block stays resident (all hits). Eviction is pure
  // overwrite — bounded, clock-free, identical across runs.
  const FwdKey key = derive_fwd_key(bytes_of("single-slot-eviction"));
  HopVerifier verifier{key, {.cache_entries = 1}};
  const auto hop_a = verifier_hop(IfaceId{1}, IfaceId{2});
  const auto hop_b = verifier_hop(IfaceId{7}, IfaceId{8});
  const Mac6 mac_a = verifier.compute(1, 1700000000, hop_a);
  const Mac6 mac_b = verifier.compute(1, 1700000000, hop_b);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(verifier.compute(1, 1700000000, hop_a), mac_a);
    EXPECT_EQ(verifier.compute(1, 1700000000, hop_b), mac_b);
  }
  EXPECT_EQ(verifier.cache_counters().hits, 0u);
  EXPECT_EQ(verifier.cache_counters().misses, 10u);

  HopVerifier resident{key, {.cache_entries = 1}};
  (void)resident.compute(1, 1700000000, hop_a);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(resident.compute(1, 1700000000, hop_a), mac_a);
  }
  EXPECT_EQ(resident.cache_counters().hits, 4u);
  EXPECT_EQ(resident.cache_counters().misses, 1u);
}

TEST(HopVerifier, DisabledCacheStillComputesCorrectly) {
  const FwdKey key = derive_fwd_key(bytes_of("cache-disabled"));
  HopVerifier verifier{key, {.cache_entries = 0}};
  const auto hop = verifier_hop(IfaceId{4}, IfaceId{5});
  const Mac6 mac = verifier.compute(7, 1700000000, hop);
  EXPECT_EQ(mac, compute_hop_mac(key, 7, 1700000000, hop));
  EXPECT_EQ(verifier.compute(7, 1700000000, hop), mac);
  EXPECT_EQ(verifier.cache_counters().hits, 0u);
  EXPECT_EQ(verifier.cache_counters().misses, 0u);
}

TEST(HopMac, FreeFunctionsReuseCachedContexts) {
  // The free functions route through a process-wide per-key context
  // cache: repeated calls under keys this process has already seen run
  // zero new key schedules.
  const FwdKey k1 = derive_fwd_key(bytes_of("ctx-cache-one"));
  const FwdKey k2 = derive_fwd_key(bytes_of("ctx-cache-two"));
  const auto hop = verifier_hop(IfaceId{1}, IfaceId{2});
  (void)compute_hop_mac(k1, 1, 1700000000, hop);  // warm both contexts
  (void)compute_hop_mac(k2, 1, 1700000000, hop);
  const auto warm = crypto::Aes128::key_schedules_run();
  for (int i = 0; i < 32; ++i) {
    (void)compute_hop_mac(i % 2 ? k1 : k2, static_cast<std::uint16_t>(i),
                          1700000000, hop);
  }
  EXPECT_EQ(crypto::Aes128::key_schedules_run(), warm);
}

TEST(Scmp, EchoRoundTrip) {
  const auto request = make_echo_request(7, 42, bytes_of("ping"));
  const auto bytes = request.serialize();
  const auto parsed = ScmpMessage::parse(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->type, ScmpType::kEchoRequest);
  EXPECT_EQ(parsed->identifier, 7);
  EXPECT_EQ(parsed->sequence, 42);
  EXPECT_EQ(parsed->data, bytes_of("ping"));
  const auto reply = make_echo_reply(parsed.value());
  EXPECT_EQ(reply.type, ScmpType::kEchoReply);
  EXPECT_EQ(reply.sequence, 42);
  EXPECT_FALSE(reply.is_error());
}

TEST(Scmp, ExternalIfaceDownCarriesOrigin) {
  const auto ia = IsdAs::parse("71-2:0:35").value();
  const auto msg = make_external_iface_down(ia, 4);
  EXPECT_TRUE(msg.is_error());
  const auto parsed = ScmpMessage::parse(msg.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(IsdAs::from_packed(parsed->origin_ia), ia);
  EXPECT_EQ(parsed->failed_iface, 4u);
}

TEST(Scmp, ParseRejectsTruncated) {
  const auto bytes = make_echo_request(1, 2).serialize();
  Bytes cut(bytes.begin(), bytes.begin() + 5);
  EXPECT_FALSE(ScmpMessage::parse(cut).ok());
}

TEST(Udp, DatagramRoundTrip) {
  UdpDatagram dg;
  dg.src_port = 40001;
  dg.dst_port = 8080;
  dg.data = bytes_of("hello scion");
  const auto parsed = UdpDatagram::parse(dg.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->src_port, 40001);
  EXPECT_EQ(parsed->dst_port, 8080);
  EXPECT_EQ(parsed->data, bytes_of("hello scion"));
}

// Property sweep: random path shapes round-trip through bytes.
class PacketProperty : public ::testing::TestWithParam<int> {};

TEST_P(PacketProperty, RandomPathsRoundTrip) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 31 + 7};
  ScionPacket pkt;
  pkt.dst = Address{IsdAs{71, As{rng.next_u64() & 0xFFFF}}, 1};
  pkt.src = Address{IsdAs{64, As{rng.next_u64() & 0xFFFF}}, 2};
  const std::size_t segments = 1 + rng.next_below(3);
  for (std::size_t s = 0; s < segments; ++s) {
    InfoField inf;
    inf.construction_dir = rng.chance(0.5);
    inf.peering = rng.chance(0.2);
    inf.seg_id = static_cast<std::uint16_t>(rng.next_u64());
    inf.timestamp = static_cast<std::uint32_t>(rng.next_u64());
    pkt.path.info.push_back(inf);
    const std::size_t hops = 1 + rng.next_below(5);
    pkt.path.seg_len[s] = static_cast<std::uint8_t>(hops);
    for (std::size_t h = 0; h < hops; ++h) {
      HopField hop;
      hop.peering = rng.chance(0.1);
      hop.exp_time = static_cast<std::uint8_t>(rng.next_u64());
      hop.cons_ingress = static_cast<IfaceId>(rng.next_u64());
      hop.cons_egress = static_cast<IfaceId>(rng.next_u64());
      for (auto& b : hop.mac) b = static_cast<std::uint8_t>(rng.next_u64());
      pkt.path.hops.push_back(hop);
    }
  }
  pkt.payload.resize(rng.next_below(100));
  for (auto& b : pkt.payload) b = static_cast<std::uint8_t>(rng.next_u64());
  const auto bytes = pkt.serialize();
  ASSERT_TRUE(bytes.ok());
  const auto parsed = ScionPacket::parse(bytes.value());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value(), pkt);
}

INSTANTIATE_TEST_SUITE_P(Shapes, PacketProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace sciera::dataplane
