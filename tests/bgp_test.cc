#include <gtest/gtest.h>

#include "bgp/bgp.h"
#include "topology/sciera_net.h"

namespace sciera::bgp {
namespace {

namespace a = topology::ases;

class BgpFixture : public ::testing::Test {
 protected:
  BgpFixture() : topo_(topology::build_sciera()), bgp_(topo_) {}
  topology::Topology topo_;
  BgpNetwork bgp_;
};

TEST_F(BgpFixture, ConvergesQuickly) {
  EXPECT_GT(bgp_.last_convergence_rounds(), 0);
  EXPECT_LT(bgp_.last_convergence_rounds(), 20);
}

TEST_F(BgpFixture, AllPairsReachable) {
  for (const auto& src : topo_.ases()) {
    for (const auto& dst : topo_.ases()) {
      EXPECT_NE(bgp_.route(src.ia, dst.ia), nullptr)
          << src.ia.to_string() << " -> " << dst.ia.to_string();
    }
  }
}

TEST_F(BgpFixture, SinglePathPerPair) {
  const auto* route = bgp_.route(a::uva(), a::ufms());
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->as_path.front(), a::uva());
  EXPECT_EQ(route->as_path.back(), a::ufms());
  // Loop-free.
  std::set<IsdAs> unique(route->as_path.begin(), route->as_path.end());
  EXPECT_EQ(unique.size(), route->as_path.size());
}

TEST_F(BgpFixture, PrefersPeeringOverProviderDetour) {
  // UVa and Princeton peer directly over the Internet2 multipoint VLAN;
  // BGP must pick the 1-hop peer route, not the route via BRIDGES.
  const auto* route = bgp_.route(a::uva(), a::princeton());
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->as_path.size(), 2u) << "expected direct peering route";
}

TEST_F(BgpFixture, ValleyFreeNoPeerTransit) {
  // The SEC<->NUS peering link must never transit traffic for third
  // parties: routes between other ASes cannot contain SEC->NUS.
  for (const auto& src : topo_.ases()) {
    for (const auto& dst : topo_.ases()) {
      const auto* route = bgp_.route(src.ia, dst.ia);
      if (route == nullptr) continue;
      for (std::size_t i = 0; i + 1 < route->as_path.size(); ++i) {
        const bool crosses_peering =
            (route->as_path[i] == a::sec() &&
             route->as_path[i + 1] == a::nus()) ||
            (route->as_path[i] == a::nus() &&
             route->as_path[i + 1] == a::sec());
        if (crosses_peering) {
          EXPECT_TRUE((src.ia == a::sec() || src.ia == a::nus()) ||
                      (dst.ia == a::sec() || dst.ia == a::nus()))
              << src.ia.to_string() << "->" << dst.ia.to_string()
              << " transits the SEC/NUS peering";
        }
      }
    }
  }
}

TEST_F(BgpFixture, RttIsSymmetricEnough) {
  const auto fwd = bgp_.rtt(a::uva(), a::ufms());
  const auto rev = bgp_.rtt(a::ufms(), a::uva());
  ASSERT_TRUE(fwd.has_value());
  ASSERT_TRUE(rev.has_value());
  // Same topology, deterministic tie-breaks: paths should match closely.
  EXPECT_NEAR(to_ms(*fwd), to_ms(*rev), 30.0);
}

TEST_F(BgpFixture, LinkFailureTriggersReroute) {
  const auto* before = bgp_.route(a::kisti_dj(), a::kisti_sg());
  ASSERT_NE(before, nullptr);
  const auto before_len = before->as_path.size();
  const Duration before_delay = before->one_way_delay;
  // Cut the Korea-Singapore side of the ring (the August 2024 cable cut).
  bgp_.set_link_up("kreonet-dj-hk", false);
  bgp_.set_link_up("kreonet-hk-sg", false);
  const auto* after = bgp_.route(a::kisti_dj(), a::kisti_sg());
  ASSERT_NE(after, nullptr) << "backup route must exist";
  EXPECT_GT(after->one_way_delay, before_delay);
  EXPECT_GE(after->as_path.size(), before_len);
  // Restore.
  bgp_.set_link_up("kreonet-dj-hk", true);
  bgp_.set_link_up("kreonet-hk-sg", true);
  const auto* restored = bgp_.route(a::kisti_dj(), a::kisti_sg());
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->one_way_delay, before_delay);
}

TEST_F(BgpFixture, PartitionMakesUnreachable) {
  // UFMS hangs off RNP only: cutting both RNP uplinks and both UFMS links'
  // parent... cutting RNP's uplinks isolates the RNP subtree.
  bgp_.set_link_up("geant-rnp", false);
  bgp_.set_link_up("bridges-rnp", false);
  EXPECT_EQ(bgp_.route(a::uva(), a::ufms()), nullptr);
  EXPECT_NE(bgp_.route(a::rnp(), a::ufms()), nullptr);  // intra-subtree ok
  bgp_.set_link_up("geant-rnp", true);
  bgp_.set_link_up("bridges-rnp", true);
  EXPECT_NE(bgp_.route(a::uva(), a::ufms()), nullptr);
}

TEST_F(BgpFixture, RttMatchesPathDelays) {
  const auto* route = bgp_.route(a::sidn(), a::ovgu());
  ASSERT_NE(route, nullptr);
  Duration sum = 0;
  for (auto id : route->links) sum += topo_.find_link(id)->delay;
  EXPECT_EQ(route->one_way_delay, sum);
  EXPECT_EQ(bgp_.rtt(a::sidn(), a::ovgu()).value(),
            2 * sum + 2 * 600 * kMicrosecond);
}

}  // namespace
}  // namespace sciera::bgp
