#include <gtest/gtest.h>

#include "simnet/link.h"
#include "simnet/node.h"
#include "simnet/simulator.h"

namespace sciera::simnet {
namespace {

struct TestMessage : Message {
  explicit TestMessage(std::size_t size, int id = 0) : size(size), id(id) {}
  std::size_t size;
  int id;
  [[nodiscard]] std::size_t wire_size() const override { return size; }
  [[nodiscard]] std::string tag() const override { return "test"; }
};

class Sink : public Node {
 public:
  explicit Sink(std::string name) : Node(std::move(name)) {}
  void receive(const MessagePtr& message, const Arrival& arrival) override {
    arrivals.push_back(arrival);
    messages.push_back(message);
  }
  std::vector<Arrival> arrivals;
  std::vector<MessagePtr> messages;
};

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(30, [&] { order.push_back(3); });
  sim.at(10, [&] { order.push_back(1); });
  sim.at(20, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.executed_events(), 3u);
}

TEST(Simulator, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.at(5, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.at(10, [&] { ++fired; });
  sim.at(100, [&] { ++fired; });
  sim.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_all();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, NestedSchedulingWorks) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.at(10, [&] {
    times.push_back(sim.now());
    sim.after(5, [&] { times.push_back(sim.now()); });
  });
  sim.run_all();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(Link, DeliversAfterPropagationAndSerialization) {
  Simulator sim;
  Sink a{"a"}, b{"b"};
  LinkConfig cfg;
  cfg.propagation_delay = 10 * kMillisecond;
  cfg.bandwidth_bps = 8e6;  // 1 byte per microsecond
  cfg.encap_overhead_bytes = 0;
  Link link{sim, cfg, Rng{1}};
  link.attach(0, &a, 1);
  link.attach(1, &b, 7);

  link.send(0, std::make_shared<TestMessage>(1000));
  sim.run_all();
  ASSERT_EQ(b.arrivals.size(), 1u);
  // 1000 bytes at 1 B/us = 1ms serialization + 10ms propagation.
  EXPECT_EQ(b.arrivals[0].time, 11 * kMillisecond);
  EXPECT_EQ(b.arrivals[0].local_iface, 7);
  EXPECT_EQ(link.stats().delivered, 1u);
}

TEST(Link, SerializationQueuesBackToBack) {
  Simulator sim;
  Sink a{"a"}, b{"b"};
  LinkConfig cfg;
  cfg.propagation_delay = 0;
  cfg.bandwidth_bps = 8e6;
  cfg.encap_overhead_bytes = 0;
  Link link{sim, cfg, Rng{1}};
  link.attach(0, &a, 1);
  link.attach(1, &b, 1);
  // Two 1000-byte packets sent at t=0 serialize sequentially.
  link.send(0, std::make_shared<TestMessage>(1000, 1));
  link.send(0, std::make_shared<TestMessage>(1000, 2));
  sim.run_all();
  ASSERT_EQ(b.arrivals.size(), 2u);
  EXPECT_EQ(b.arrivals[0].time, 1 * kMillisecond);
  EXPECT_EQ(b.arrivals[1].time, 2 * kMillisecond);
}

TEST(Link, DownLinkDropsTraffic) {
  Simulator sim;
  Sink a{"a"}, b{"b"};
  Link link{sim, LinkConfig{}, Rng{1}};
  link.attach(0, &a, 1);
  link.attach(1, &b, 1);
  link.set_up(false);
  link.send(0, std::make_shared<TestMessage>(100));
  sim.run_all();
  EXPECT_TRUE(b.arrivals.empty());
  EXPECT_EQ(link.stats().dropped_down, 1u);
  link.set_up(true);
  link.send(0, std::make_shared<TestMessage>(100));
  sim.run_all();
  EXPECT_EQ(b.arrivals.size(), 1u);
}

// Regression: set_up(false) used to drop only at send time — a frame
// already on the wire would still be delivered after the circuit died.
// A down transition must cancel in-flight deliveries.
TEST(Link, DownTransitionCancelsInFlightDeliveries) {
  Simulator sim;
  Sink a{"a"}, b{"b"};
  LinkConfig cfg;
  cfg.propagation_delay = 10 * kMillisecond;
  Link link{sim, cfg, Rng{1}};
  link.attach(0, &a, 1);
  link.attach(1, &b, 1);

  link.send(0, std::make_shared<TestMessage>(100));
  // The failure hits mid-flight: after the send, before the delivery.
  sim.after(5 * kMillisecond, [&] { link.set_up(false); });
  sim.run_all();
  EXPECT_TRUE(b.arrivals.empty());
  EXPECT_EQ(link.stats().dropped_down, 1u);
  EXPECT_EQ(link.stats().delivered, 0u);
}

// A frame sent before a down/up flap is lost even though the link is up
// again at its scheduled delivery time: the circuit it was riding died.
TEST(Link, FlapDuringFlightStillDropsTheFrame) {
  Simulator sim;
  Sink a{"a"}, b{"b"};
  LinkConfig cfg;
  cfg.propagation_delay = 10 * kMillisecond;
  Link link{sim, cfg, Rng{1}};
  link.attach(0, &a, 1);
  link.attach(1, &b, 1);

  link.send(0, std::make_shared<TestMessage>(100));
  sim.after(2 * kMillisecond, [&] { link.set_up(false); });
  sim.after(4 * kMillisecond, [&] { link.set_up(true); });
  link.send(0, std::make_shared<TestMessage>(100));  // also pre-flap
  sim.run_all();
  EXPECT_TRUE(b.arrivals.empty());
  EXPECT_EQ(link.stats().dropped_down, 2u);

  // Traffic sent after the link recovered flows normally.
  link.send(0, std::make_shared<TestMessage>(100));
  sim.run_all();
  EXPECT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(link.stats().delivered, 1u);
}

// Regression: re-upping a link immediately after a cut must start from an
// empty pipe. The cut drains the serializer backlog and counts every
// cancelled frame exactly once at cut time — cancelled frames must not
// resurrect, must not be double-counted when their old delivery events
// fire, and their ghost backlog must neither delay nor tail-drop traffic
// sent after the recovery.
TEST(Link, ReUpAfterCutStartsFromEmptyPipe) {
  Simulator sim;
  Sink a{"a"}, b{"b"};
  LinkConfig cfg;
  cfg.propagation_delay = 10 * kMillisecond;
  cfg.bandwidth_bps = 8e6;  // 1 byte per microsecond
  cfg.encap_overhead_bytes = 0;
  cfg.queue_capacity = 4;
  Link link{sim, cfg, Rng{1}};
  link.attach(0, &a, 1);
  link.attach(1, &b, 1);

  // Five 1000-byte frames at t=0: 5ms of serializer backlog, and the
  // first several are already propagating when the cut lands.
  for (int i = 0; i < 5; ++i) {
    link.send(0, std::make_shared<TestMessage>(1000, i));
  }
  sim.at(5500 * kMicrosecond, [&] {
    link.set_up(false);
    // Every queued/in-flight frame is cancelled and counted at cut time.
    EXPECT_EQ(link.stats().dropped_down, 5u);
    link.set_up(true);  // same-tick recovery
    link.send(0, std::make_shared<TestMessage>(1000, 99));
  });
  sim.run_all();

  // Only the post-recovery frame arrives, at clean-pipe latency (1ms
  // serialization + 10ms propagation after the 5.5ms cut) — the 5ms ghost
  // backlog from before the cut is gone.
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals[0].time, 5500 * kMicrosecond + 11 * kMillisecond);
  EXPECT_EQ(link.stats().delivered, 1u);
  // The stale delivery events fired without double-counting the drops.
  EXPECT_EQ(link.stats().dropped_down, 5u);
  EXPECT_EQ(link.stats().dropped_queue, 0u);
}

// Same-tick batched frames cancelled by a cut stay cancelled when the
// link re-ups before their shared delivery event fires.
TEST(Link, CutCancelsSameTickBatchDespiteReUp) {
  Simulator sim;
  Sink a{"a"}, b{"b"};
  LinkConfig cfg;
  cfg.propagation_delay = 10 * kMillisecond;
  cfg.encap_overhead_bytes = 0;
  Link link{sim, cfg, Rng{1}};
  link.attach(0, &a, 1);
  link.attach(1, &b, 1);

  // Two zero-size frames serialize instantly, so both land in the same
  // delivery batch at t=10ms.
  link.send(0, std::make_shared<TestMessage>(0, 1));
  link.send(0, std::make_shared<TestMessage>(0, 2));
  sim.after(2 * kMillisecond, [&] {
    link.set_up(false);
    link.set_up(true);
  });
  // A post-flap frame from the same sender still flows.
  sim.after(3 * kMillisecond, [&] {
    link.send(0, std::make_shared<TestMessage>(0, 3));
  });
  sim.run_all();
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals[0].time, 13 * kMillisecond);
  EXPECT_EQ(link.stats().dropped_down, 2u);
  EXPECT_EQ(link.stats().delivered, 1u);
}

// A scheduled mid-flight failure replays deterministically (the drop is
// part of the audited event schedule, not a wall-clock race).
TEST(Link, MidFlightFailureScheduleIsDeterministic) {
  const auto scenario = [] {
    Simulator sim;
    Sink a{"a"}, b{"b"};
    LinkConfig cfg;
    cfg.propagation_delay = 10 * kMillisecond;
    Link link{sim, cfg, Rng{3}};
    link.attach(0, &a, 1);
    link.attach(1, &b, 1);
    for (int i = 0; i < 5; ++i) {
      sim.at(i * kMillisecond, [&link, i] {
        link.send(0, std::make_shared<TestMessage>(200, i));
      });
    }
    sim.at(7 * kMillisecond, [&] { link.set_up(false); });
    sim.run_all();
    EXPECT_EQ(link.stats().dropped_down, 5u);
    return sim.schedule_digest();
  };
  const auto first = scenario();
  const auto second = scenario();
  EXPECT_EQ(first, second);
}

TEST(Link, LossProbabilityDropsStatistically) {
  Simulator sim;
  Sink a{"a"}, b{"b"};
  LinkConfig cfg;
  cfg.loss_probability = 0.5;
  cfg.queue_capacity = 2000;  // all sent at t=0; don't tail-drop here
  Link link{sim, cfg, Rng{42}};
  link.attach(0, &a, 1);
  link.attach(1, &b, 1);
  for (int i = 0; i < 1000; ++i) link.send(0, std::make_shared<TestMessage>(10));
  sim.run_all();
  EXPECT_GT(b.arrivals.size(), 400u);
  EXPECT_LT(b.arrivals.size(), 600u);
  EXPECT_EQ(b.arrivals.size() + link.stats().dropped_loss, 1000u);
}

TEST(Link, QueueOverflowTailDrops) {
  Simulator sim;
  Sink a{"a"}, b{"b"};
  LinkConfig cfg;
  cfg.propagation_delay = 0;
  cfg.bandwidth_bps = 8e6;  // slow: 1 B/us
  cfg.queue_capacity = 4;
  Link link{sim, cfg, Rng{1}};
  link.attach(0, &a, 1);
  link.attach(1, &b, 1);
  for (int i = 0; i < 100; ++i) link.send(0, std::make_shared<TestMessage>(1000));
  sim.run_all();
  EXPECT_GT(link.stats().dropped_queue, 0u);
  EXPECT_LT(b.arrivals.size(), 100u);
}

TEST(Link, IsBidirectional) {
  Simulator sim;
  Sink a{"a"}, b{"b"};
  Link link{sim, LinkConfig{}, Rng{1}};
  link.attach(0, &a, 3);
  link.attach(1, &b, 4);
  link.send(0, std::make_shared<TestMessage>(10));
  link.send(1, std::make_shared<TestMessage>(10));
  sim.run_all();
  EXPECT_EQ(a.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(a.arrivals[0].local_iface, 3);
  EXPECT_EQ(link.peer_of(0), &b);
  EXPECT_EQ(link.peer_of(1), &a);
}

TEST(Link, JitterSpreadsDeliveryTimes) {
  Simulator sim;
  Sink a{"a"}, b{"b"};
  LinkConfig cfg;
  cfg.propagation_delay = 10 * kMillisecond;
  cfg.jitter_sigma = 0.1;
  Link link{sim, cfg, Rng{7}};
  link.attach(0, &a, 1);
  link.attach(1, &b, 1);
  for (int i = 0; i < 50; ++i) link.send(0, std::make_shared<TestMessage>(10));
  sim.run_all();
  ASSERT_EQ(b.arrivals.size(), 50u);
  SimTime min_t = b.arrivals[0].time, max_t = b.arrivals[0].time;
  for (const auto& arr : b.arrivals) {
    min_t = std::min(min_t, arr.time);
    max_t = std::max(max_t, arr.time);
  }
  EXPECT_LT(min_t, max_t);                       // jitter varies
  EXPECT_GT(min_t, 5 * kMillisecond);            // but stays sane
  EXPECT_LT(max_t, 30 * kMillisecond);
}


TEST(Link, EncapOverheadSlowsSerialization) {
  Simulator sim;
  Sink a{"a"}, b{"b"};
  LinkConfig vlan;
  vlan.propagation_delay = 0;
  vlan.bandwidth_bps = 8e6;  // 1 byte per microsecond
  vlan.encap_overhead_bytes = 4;
  LinkConfig vxlan = vlan;
  vxlan.encap_overhead_bytes = 50;
  Link vlan_link{sim, vlan, Rng{1}};
  vlan_link.attach(0, &a, 1);
  vlan_link.attach(1, &b, 1);
  Link vxlan_link{sim, vxlan, Rng{1}};
  Sink c{"c"}, d{"d"};
  vxlan_link.attach(0, &c, 1);
  vxlan_link.attach(1, &d, 1);
  vlan_link.send(0, std::make_shared<TestMessage>(1000));
  vxlan_link.send(0, std::make_shared<TestMessage>(1000));
  sim.run_all();
  ASSERT_EQ(b.arrivals.size(), 1u);
  ASSERT_EQ(d.arrivals.size(), 1u);
  // VXLAN adds 46 extra bytes of serialization at 1 B/us (floating-point
  // bandwidth math may be a nanosecond off).
  EXPECT_NEAR(static_cast<double>(d.arrivals[0].time - b.arrivals[0].time),
              static_cast<double>(46 * kMicrosecond), 10.0);
}

}  // namespace
}  // namespace sciera::simnet
