#include <gtest/gtest.h>

#include "analysis/charts.h"
#include "analysis/resilience.h"
#include "analysis/stats.h"
#include "topology/sciera_net.h"

namespace sciera::analysis {
namespace {

TEST(Cdf, PercentilesNearestRank) {
  Cdf cdf{{5.0, 1.0, 3.0, 2.0, 4.0}};
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 5.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 3.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(0.2), 1.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 3.0);
}

TEST(Cdf, FractionBelow) {
  Cdf cdf{{1, 2, 3, 4}};
  EXPECT_DOUBLE_EQ(cdf.fraction_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(10), 1.0);
}

TEST(Cdf, EmptyIsSafe) {
  Cdf cdf{{}};
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.median(), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_below(1.0), 0.0);
}

TEST(Charts, CdfSeriesIsMonotonic) {
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(i * 0.1);
  const Series series = cdf_series("x", samples);
  ASSERT_GE(series.points.size(), 2u);
  for (std::size_t i = 1; i < series.points.size(); ++i) {
    EXPECT_GE(series.points[i].first, series.points[i - 1].first);
    EXPECT_GE(series.points[i].second, series.points[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(series.points.back().second, 1.0);
}

TEST(Charts, RenderChartContainsLegendAndAxes) {
  Series s1{"alpha", {{0, 0}, {1, 1}}};
  Series s2{"beta", {{0, 1}, {1, 0}}};
  const std::string chart = render_chart({s1, s2}, "x", "y");
  EXPECT_NE(chart.find("alpha"), std::string::npos);
  EXPECT_NE(chart.find("beta"), std::string::npos);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('o'), std::string::npos);
}

TEST(Charts, RenderChartHandlesEmpty) {
  EXPECT_EQ(render_chart({}, "x", "y"), "(no data)\n");
}

TEST(Charts, RenderMatrixShowsDiagonalDash) {
  const auto ia = topology::ases::geant();
  const auto ib = topology::ases::uva();
  std::vector<std::vector<int>> values = {{-1, 5}, {7, -1}};
  const std::string out = render_matrix({ia, ib}, values, "test");
  EXPECT_NE(out.find("test"), std::string::npos);
  EXPECT_NE(out.find('5'), std::string::npos);
  EXPECT_NE(out.find('-'), std::string::npos);
}

TEST(Charts, RenderBoxes) {
  BoxGroup group;
  group.group = "Hint";
  group.boxes.emplace_back("Linux", Cdf{{1, 2, 3, 4, 5}});
  const std::string out = render_boxes({group}, "ms");
  EXPECT_NE(out.find("Hint"), std::string::npos);
  EXPECT_NE(out.find("Linux"), std::string::npos);
}

TEST(Resilience, MultipathDominatesSinglePath) {
  const topology::Topology topo = topology::build_sciera();
  ResilienceOptions options;
  options.runs = 20;  // fast for tests; benches run the paper's 100
  const auto points = link_failure_resilience(topo, options);
  ASSERT_GT(points.size(), 10u);
  // Boundary conditions.
  EXPECT_DOUBLE_EQ(points.front().fraction_links_removed, 0.0);
  EXPECT_NEAR(points.front().multipath_connectivity, 1.0, 1e-9);
  EXPECT_NEAR(points.back().multipath_connectivity, 0.0, 1e-9);
  EXPECT_NEAR(points.back().singlepath_connectivity, 0.0, 1e-9);
  // Multipath >= single path everywhere; strictly better in the middle.
  double gap_sum = 0;
  for (const auto& point : points) {
    EXPECT_GE(point.multipath_connectivity,
              point.singlepath_connectivity - 1e-9);
    gap_sum += point.multipath_connectivity - point.singlepath_connectivity;
  }
  EXPECT_GT(gap_sum, 1.0);
  // Paper shape: at ~20% removed, multipath keeps most pairs connected
  // while single-path loses far more.
  for (const auto& point : points) {
    if (point.fraction_links_removed >= 0.195 &&
        point.fraction_links_removed <= 0.25) {
      EXPECT_GT(point.multipath_connectivity, 0.6);
      EXPECT_LT(point.singlepath_connectivity,
                point.multipath_connectivity - 0.15);
    }
  }
}

TEST(Resilience, MonotoneNonIncreasing) {
  const topology::Topology topo = topology::build_sciera();
  ResilienceOptions options;
  options.runs = 10;
  const auto points = link_failure_resilience(topo, options);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].multipath_connectivity,
              points[i - 1].multipath_connectivity + 1e-9);
    EXPECT_LE(points[i].singlepath_connectivity,
              points[i - 1].singlepath_connectivity + 1e-9);
  }
}

}  // namespace
}  // namespace sciera::analysis
