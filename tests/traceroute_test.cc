// Traceroute over the real data plane: hop-limit expiry at each AS.
#include <gtest/gtest.h>

#include "endhost/traceroute.h"
#include "topology/sciera_net.h"

namespace sciera::endhost {
namespace {

namespace a = topology::ases;

controlplane::ScionNetwork& net() {
  static controlplane::ScionNetwork network{topology::build_sciera()};
  return network;
}

TEST(Traceroute, WalksEveryAsOnThePath) {
  auto& network = net();
  HostStack stack{network, {a::uva(), 0x0A0A0001}};
  const auto paths = network.paths(a::uva(), a::ufms());
  ASSERT_FALSE(paths.empty());
  const auto& path = paths.front();

  Traceroute traceroute{stack};
  const auto hops = traceroute.run({a::ufms(), 0x0A0A0002}, path);

  // One answer per forwarding AS plus the destination echo.
  ASSERT_EQ(hops.size(), path.as_sequence.size());
  for (std::size_t i = 0; i < hops.size(); ++i) {
    EXPECT_FALSE(hops[i].timed_out) << "hop " << i + 1;
    EXPECT_EQ(hops[i].ia, path.as_sequence[i]) << "hop " << i + 1;
  }
  EXPECT_TRUE(hops.back().is_destination);
  // RTTs are monotone-ish: each hop at least as far as two hops earlier
  // (allowing jitter to reorder adjacent hops).
  for (std::size_t i = 2; i < hops.size(); ++i) {
    EXPECT_GT(hops[i].rtt, hops[i - 2].rtt / 2);
  }
}

TEST(Traceroute, ShortPeeringPath) {
  auto& network = net();
  HostStack stack{network, {a::sec(), 0x0A0A0003}};
  const auto paths = network.paths(a::sec(), a::nus());
  ASSERT_FALSE(paths.empty());
  Traceroute traceroute{stack};
  const auto hops = traceroute.run({a::nus(), 0x0A0A0004}, paths.front());
  ASSERT_EQ(hops.size(), 2u);
  EXPECT_EQ(hops[0].ia, a::sec());
  EXPECT_EQ(hops[1].ia, a::nus());
  EXPECT_TRUE(hops[1].is_destination);
}

TEST(Traceroute, BrokenLinkShowsAsTimeout) {
  auto& network = net();
  HostStack stack{network, {a::uva(), 0x0A0A0005}};
  const auto paths = network.paths(a::uva(), a::princeton());
  ASSERT_FALSE(paths.empty());
  // Pick a path via BRIDGES (3 ASes), then break its last link.
  const controlplane::Path* via_bridges = nullptr;
  for (const auto& path : paths) {
    if (path.as_sequence.size() == 3) {
      via_bridges = &path;
      break;
    }
  }
  ASSERT_NE(via_bridges, nullptr);
  network.link(via_bridges->links.back())->set_up(false);
  Traceroute traceroute{stack};
  const auto hops = traceroute.run({a::princeton(), 2}, *via_bridges);
  network.link(via_bridges->links.back())->set_up(true);
  // First two hops answer; the destination probe dies on the dark link
  // (the BRIDGES router emits interface-down toward the source, which the
  // traceroute ignores as it is not a hop answer).
  ASSERT_GE(hops.size(), 3u);
  EXPECT_EQ(hops[0].ia, a::uva());
  EXPECT_EQ(hops[1].ia, a::bridges());
  EXPECT_TRUE(hops[2].timed_out);
}

TEST(HostStack, ScmpReceiverGetsEchoReplies) {
  auto& network = net();
  HostStack stack{network, {a::ovgu(), 0x0A0A0006}};
  int replies = 0;
  stack.set_scmp_receiver([&](const dataplane::ScionPacket&,
                              const dataplane::ScmpMessage& message,
                              SimTime) {
    replies += message.type == dataplane::ScmpType::kEchoReply;
  });
  const auto paths = network.paths(a::ovgu(), a::sidn());
  ASSERT_FALSE(paths.empty());
  dataplane::ScionPacket ping;
  ping.dst = {a::sidn(), 9};
  ping.next_hdr = dataplane::kProtoScmp;
  ping.path = paths.front().dataplane_path;
  ping.payload = dataplane::make_echo_request(7, 1).serialize();
  ASSERT_TRUE(stack.send(std::move(ping)).ok());
  network.sim().run_for(kSecond);
  EXPECT_EQ(replies, 1);
}

}  // namespace
}  // namespace sciera::endhost
