// Chaos engine and resilience tests: backoff/circuit-breaker primitives,
// fault-plan validation and application (link flaps, regional outages,
// control-service outages/slowdowns, router crashes), daemon degradation
// under control-plane loss, bit-identical replay of armed plans, and the
// headline A/B: survivability of the KREONET ring cut with the
// retry/stale-serving machinery on versus off.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "chaos/chaos_engine.h"
#include "chaos/fault_plan.h"
#include "chaos/soak.h"
#include "endhost/pan.h"
#include "simnet/audit.h"
#include "topology/sciera_net.h"
#include "workload/workload.h"

namespace sciera::chaos {
namespace {

namespace a = topology::ases;
using controlplane::ScionNetwork;

// --- Backoff / circuit breaker ------------------------------------------------

TEST(Backoff, DelayGrowsGeometricallyAndClamps) {
  BackoffPolicy policy;
  policy.initial = 100 * kMillisecond;
  policy.multiplier = 2.0;
  policy.max_delay = 500 * kMillisecond;
  policy.jitter_frac = 0.2;
  Rng rng{7};
  for (std::size_t attempt = 1; attempt <= 6; ++attempt) {
    double nominal = static_cast<double>(100 * kMillisecond);
    for (std::size_t i = 1; i < attempt; ++i) nominal *= 2.0;
    nominal = std::min(nominal, static_cast<double>(500 * kMillisecond));
    const auto delay = policy.delay(attempt, rng);
    EXPECT_GE(delay, static_cast<Duration>(nominal * 0.8)) << attempt;
    EXPECT_LE(delay, static_cast<Duration>(nominal * 1.2)) << attempt;
  }
}

TEST(Backoff, ZeroJitterIsExactAndDeterministic) {
  BackoffPolicy policy;
  policy.initial = 10 * kMillisecond;
  policy.multiplier = 3.0;
  policy.max_delay = 1 * kSecond;
  policy.jitter_frac = 0.0;
  Rng rng{1};
  EXPECT_EQ(policy.delay(1, rng), 10 * kMillisecond);
  EXPECT_EQ(policy.delay(2, rng), 30 * kMillisecond);
  EXPECT_EQ(policy.delay(3, rng), 90 * kMillisecond);
  EXPECT_EQ(policy.delay(10, rng), 1 * kSecond);  // clamped
}

TEST(Backoff, JitteredDelaysReplayFromTheSeed) {
  BackoffPolicy policy;
  Rng rng1{42}, rng2{42};
  for (std::size_t attempt = 1; attempt <= 4; ++attempt) {
    EXPECT_EQ(policy.delay(attempt, rng1), policy.delay(attempt, rng2));
  }
}

TEST(Backoff, CircuitBreakerLifecycle) {
  CircuitBreaker::Config config;
  config.failure_threshold = 3;
  config.open_for = 10 * kSecond;
  CircuitBreaker breaker{config};

  EXPECT_TRUE(breaker.allow(0));
  breaker.record_failure(0);
  breaker.record_failure(1 * kSecond);
  EXPECT_TRUE(breaker.allow(1 * kSecond));  // below threshold
  breaker.record_failure(2 * kSecond);      // third strike: opens
  EXPECT_FALSE(breaker.allow(5 * kSecond));
  EXPECT_EQ(breaker.times_opened(), 1u);

  // The window elapses: half-open, one probe allowed. A failed probe
  // re-opens from now.
  EXPECT_TRUE(breaker.allow(12 * kSecond));
  breaker.record_failure(12 * kSecond);
  EXPECT_FALSE(breaker.allow(21 * kSecond));
  EXPECT_EQ(breaker.times_opened(), 2u);

  // A successful probe closes it and clears the failure streak.
  EXPECT_TRUE(breaker.allow(22 * kSecond));
  breaker.record_success();
  EXPECT_TRUE(breaker.allow(22 * kSecond));
  breaker.record_failure(23 * kSecond);
  breaker.record_failure(23 * kSecond);
  EXPECT_TRUE(breaker.allow(23 * kSecond));  // streak restarted from zero
}

// --- Fault plan validation and application -----------------------------------

TEST(Chaos, ArmRejectsUnknownTargetsWithoutScheduling) {
  ScionNetwork net{topology::build_sciera()};
  ChaosEngine engine{net, 1};

  FaultPlan bad_link;
  bad_link.add({0, FaultKind::kLinkFlap, "no-such-link", 0.0, kSecond});
  EXPECT_FALSE(engine.arm(bad_link).ok());

  FaultPlan bad_region;
  bad_region.add({0, FaultKind::kRegionOutage, "Atlantis", 0.0, kSecond});
  EXPECT_FALSE(engine.arm(bad_region).ok());

  FaultPlan bad_router;
  bad_router.add({0, FaultKind::kRouterCrash, "99-999", 0.0, kSecond});
  EXPECT_FALSE(engine.arm(bad_router).ok());

  // Nothing was scheduled by the failed arms.
  net.sim().run_for(5 * kSecond);
  EXPECT_EQ(engine.faults_injected(), 0u);
}

TEST(Chaos, RegionOutageCutsEveryIncidentLinkAndReverts) {
  ScionNetwork net{topology::build_sciera()};
  ChaosEngine engine{net, 1};
  FaultPlan plan;
  plan.name = "sg-out";
  plan.add({1 * kSecond, FaultKind::kRegionOutage, a::kisti_sg().to_string(),
            0.0, 2 * kSecond});
  ASSERT_TRUE(engine.arm(plan).ok());

  std::vector<std::string> incident;
  for (const auto& link : net.topology().links()) {
    if (link.a == a::kisti_sg() || link.b == a::kisti_sg()) {
      incident.push_back(link.label);
    }
  }
  ASSERT_GT(incident.size(), 4u);  // ring x2, parallel bundle, leaves

  net.sim().run_for(1500 * kMillisecond);  // mid-outage
  for (const auto& label : incident) {
    EXPECT_FALSE(net.link(label)->is_up()) << label;
  }
  EXPECT_TRUE(net.link("geant-bridges")->is_up());  // uncorrelated link

  net.sim().run_for(2 * kSecond);  // past the hold
  for (const auto& label : incident) {
    EXPECT_TRUE(net.link(label)->is_up()) << label;
  }
  EXPECT_EQ(engine.faults_injected(), 1u);
}

TEST(Chaos, ControlOutageAndSlowdownApplyAndRevert) {
  ScionNetwork net{topology::build_sciera()};
  ChaosEngine engine{net, 1};
  FaultPlan plan;
  plan.name = "cs-maintenance";
  plan.add({1 * kSecond, FaultKind::kControlOutage, a::uva().to_string(),
            0.0, 2 * kSecond});
  plan.add({1 * kSecond, FaultKind::kControlSlowdown, a::geant().to_string(),
            4.0, 2 * kSecond});
  ASSERT_TRUE(engine.arm(plan).ok());

  auto* uva_cs = net.control_service(a::uva());
  auto* geant_cs = net.control_service(a::geant());
  EXPECT_TRUE(uva_cs->available());

  net.sim().run_for(1500 * kMillisecond);
  EXPECT_FALSE(uva_cs->available());
  EXPECT_DOUBLE_EQ(geant_cs->slowdown(), 4.0);
  // An unavailable service drops sync lookups without caching anything.
  EXPECT_TRUE(uva_cs->lookup_paths_now(a::ovgu()).empty());
  EXPECT_GT(uva_cs->lookups_dropped(), 0u);

  net.sim().run_for(2 * kSecond);
  EXPECT_TRUE(uva_cs->available());
  EXPECT_DOUBLE_EQ(geant_cs->slowdown(), 1.0);
  EXPECT_FALSE(uva_cs->lookup_paths_now(a::ovgu()).empty());
}

TEST(Chaos, RouterCrashBlackholesUntilRestart) {
  ScionNetwork net{topology::build_sciera()};
  ChaosEngine engine{net, 1};
  FaultPlan plan;
  plan.name = "crash";
  plan.add({1 * kSecond, FaultKind::kRouterCrash, a::geant().to_string(),
            0.0, 2 * kSecond});
  ASSERT_TRUE(engine.arm(plan).ok());

  auto* router = net.router(a::geant());
  EXPECT_TRUE(router->online());
  net.sim().run_for(1500 * kMillisecond);
  EXPECT_FALSE(router->online());
  EXPECT_EQ(router->stats().crashes, 1u);
  net.sim().run_for(2 * kSecond);
  EXPECT_TRUE(router->online());
}

TEST(Chaos, LossStormRevertsToPriorLinkConditions) {
  ScionNetwork net{topology::build_sciera()};
  ChaosEngine engine{net, 1};
  const double before = net.link("kreonet-sg-ams")->config().loss_probability;
  FaultPlan plan;
  plan.name = "storm";
  plan.add({1 * kSecond, FaultKind::kLossStorm, "kreonet-sg-ams", 0.25,
            2 * kSecond});
  ASSERT_TRUE(engine.arm(plan).ok());
  net.sim().run_for(1500 * kMillisecond);
  EXPECT_DOUBLE_EQ(net.link("kreonet-sg-ams")->config().loss_probability,
                   0.25);
  net.sim().run_for(2 * kSecond);
  EXPECT_DOUBLE_EQ(net.link("kreonet-sg-ams")->config().loss_probability,
                   before);
}

// --- Daemon resilience under control-plane loss ------------------------------

TEST(Daemon, AsyncLookupTimesOutBacksOffAndDegrades) {
  ScionNetwork net{topology::build_sciera()};
  endhost::Daemon::Config config;
  config.resilience.lookup_timeout = 100 * kMillisecond;
  config.resilience.backoff.initial = 50 * kMillisecond;
  config.resilience.backoff.max_attempts = 3;
  endhost::Daemon daemon{net, a::uva(), config};

  net.control_service(a::uva())->set_available(false);
  bool answered = false;
  daemon.paths_async_detailed(a::ovgu(), [&](endhost::PathLookup lookup) {
    answered = true;
    // Nothing cached yet, so exhaustion degrades to an explicit empty.
    EXPECT_EQ(lookup.source, endhost::PathSource::kUnavailable);
    EXPECT_TRUE(lookup.paths.empty());
    EXPECT_FALSE(lookup.stale);
  });
  net.sim().run_for(2 * kSecond);
  EXPECT_TRUE(answered);
  EXPECT_EQ(daemon.lookup_timeouts(), 3u);  // every attempt timed out
  EXPECT_EQ(daemon.lookup_retries(), 2u);   // two backoff retries
  EXPECT_EQ(daemon.breaker_trips(), 1u);
  EXPECT_GT(daemon.degraded_empty(), 0u);

  // With the breaker now open, the next lookup fails fast (no timeout
  // burn) and the service recovering + window elapsing heals everything.
  bool fast = false;
  daemon.paths_async_detailed(a::ovgu(),
                              [&](endhost::PathLookup) { fast = true; });
  net.sim().run_for(1 * kMillisecond);
  EXPECT_TRUE(fast);

  net.control_service(a::uva())->set_available(true);
  net.sim().run_for(config.resilience.breaker.open_for);
  bool fetched = false;
  daemon.paths_async_detailed(a::ovgu(), [&](endhost::PathLookup lookup) {
    fetched = true;
    EXPECT_EQ(lookup.source, endhost::PathSource::kFetched);
    EXPECT_FALSE(lookup.paths.empty());
  });
  net.sim().run_for(1 * kSecond);
  EXPECT_TRUE(fetched);
}

TEST(Daemon, SyncLookupServesStaleMarkedPathsDuringOutage) {
  ScionNetwork net{topology::build_sciera()};
  endhost::Daemon::Config config;
  config.path_cache_ttl = 1 * kSecond;
  endhost::Daemon daemon{net, a::uva(), config};

  // Warm the cache, then let it expire during a control outage.
  const auto warm = daemon.paths_detailed(a::ovgu());
  EXPECT_EQ(warm.source, endhost::PathSource::kFetched);
  net.control_service(a::uva())->set_available(false);
  net.sim().run_for(2 * kSecond);

  const auto degraded = daemon.paths_detailed(a::ovgu());
  EXPECT_EQ(degraded.source, endhost::PathSource::kStaleCache);
  EXPECT_TRUE(degraded.stale);
  EXPECT_FALSE(degraded.paths.empty());
  EXPECT_GT(daemon.stale_served(), 0u);

  // The legacy configuration answers empty instead.
  endhost::Daemon::Config legacy;
  legacy.path_cache_ttl = 1 * kSecond;
  legacy.resilience.enabled = false;
  endhost::Daemon blunt{net, a::uva(), legacy};
  const auto empty = blunt.paths_detailed(a::ovgu());
  EXPECT_EQ(empty.source, endhost::PathSource::kUnavailable);
  EXPECT_TRUE(empty.paths.empty());
}

// --- End-to-end: correlated dual-link outage (ISSUE satellite) ---------------

// The paper's failure story end to end: the active transatlantic path
// dies mid-flight together with its parallel circuit while every control
// service is in an outage window. SCMP quarantines the dead path, the
// daemon's cache has expired so path resolution rides stale-but-marked
// entries, and traffic keeps flowing over the Amsterdam detour. When the
// plan re-ups the links and the penalty lapses, fresh fetches resume.
TEST(Chaos, ScmpFailoverSurvivesCorrelatedOutageOnStalePaths) {
  ScionNetwork net{topology::build_sciera()};
  endhost::Daemon::Config config;
  config.path_cache_ttl = 500 * kMillisecond;
  config.down_path_penalty = 2 * kSecond;
  endhost::Daemon daemon{net, a::uva(), config};
  auto ctx = endhost::PanContext::Builder{}
                 .net(net)
                 .address({a::uva(), 0x0A020220})
                 .daemon(daemon)
                 .build(Rng{20});
  ASSERT_TRUE(ctx.ok());
  int delivered = 0;
  endhost::Daemon dst_daemon{net, a::ovgu()};
  auto dst_ctx = endhost::PanContext::Builder{}
                     .net(net)
                     .address({a::ovgu(), 0x0A020221})
                     .daemon(dst_daemon)
                     .build(Rng{21});
  ASSERT_TRUE(dst_ctx.ok());
  auto sink = endhost::PanSocket::open(**dst_ctx, 8888,
                                       [&](auto&&...) { ++delivered; });
  ASSERT_TRUE(sink.ok());
  auto sock = endhost::PanSocket::open(**ctx, 0, [](auto&&...) {});
  ASSERT_TRUE(sock.ok());

  const auto primary = (*sock)->current_path(a::ovgu());
  ASSERT_TRUE(primary.ok());
  const std::string primary_fp = primary->fingerprint();
  ASSERT_GT(primary->links.size(), 1u);
  const std::string cut_label =
      net.topology().find_link(primary->links[1])->label;
  // The circuit's parallel twin, cut in the same correlated event. The
  // primary path rides one of the two GEANT<->BRIDGES circuits.
  const std::string twin_label =
      cut_label == "geant-bridges" ? "geant-bridges-2" : "geant-bridges";

  (*ctx)->stack().set_scmp_receiver(
      [&](const dataplane::ScionPacket&, const dataplane::ScmpMessage& m,
          SimTime) {
        if (m.is_error()) (*ctx)->report_path_down(primary_fp);
      });

  ChaosEngine engine{net, 42};
  FaultPlan plan;
  plan.name = "dual-cut";
  plan.add({1 * kSecond, FaultKind::kControlOutage, "*", 0.0, 4 * kSecond});
  plan.add({1 * kSecond, FaultKind::kLinkDown, cut_label, 0.0, 3 * kSecond});
  plan.add({1 * kSecond, FaultKind::kLinkDown, twin_label, 0.0, 3 * kSecond});
  ASSERT_TRUE(engine.arm(plan).ok());

  // Baseline delivery over the primary path.
  ASSERT_TRUE((*sock)->send_to({a::ovgu(), 0x0A020221}, 8888,
                               bytes_of("pre")).ok());
  net.sim().run_for(500 * kMillisecond);
  EXPECT_EQ(delivered, 1);

  // A packet in flight when the correlated cut lands draws the SCMP
  // error that quarantines the primary path.
  net.sim().at(999500 * kMicrosecond, [&] {
    (void)(*sock)->send_to({a::ovgu(), 0x0A020221}, 8888, bytes_of("mid"));
  });
  net.sim().run_until(2 * kSecond);
  EXPECT_EQ(daemon.quarantined(), 1u);

  // Mid-outage: cache stale, control plane dark, primary quarantined —
  // the send still succeeds over a surviving detour on stale paths.
  auto receipt = (*sock)->send_to({a::ovgu(), 0x0A020221}, 8888,
                                  bytes_of("detour"));
  ASSERT_TRUE(receipt.ok());
  EXPECT_NE(receipt->path_fingerprint, primary_fp);
  EXPECT_GT(daemon.stale_served(), 0u);
  net.sim().run_for(1 * kSecond);
  EXPECT_EQ(delivered, 2);

  // Recovery: links re-up at 4s, services at 5s, the quarantine penalty
  // lapses, and lookups go back to fresh fetches.
  net.sim().run_until(6 * kSecond);
  const auto recovered = daemon.paths_detailed(a::ovgu());
  EXPECT_EQ(recovered.source, endhost::PathSource::kFetched);
  bool primary_back = false;
  for (const auto& path : recovered.paths) {
    primary_back = primary_back || path.fingerprint() == primary_fp;
  }
  EXPECT_TRUE(primary_back);
}

// --- Replayability and the survivability A/B ---------------------------------

TEST(Chaos, ArmedPlanReplaysBitIdentically) {
  const auto scenario = [] {
    ScionNetwork net{topology::build_sciera()};
    workload::WorkloadConfig config = soak_default_workload();
    config.hosts = 6;
    config.flows = 12;
    config.packets_per_flow = 30;
    workload::TrafficMatrix workload{net, config};
    EXPECT_TRUE(workload.launch().ok());
    ChaosEngine engine{net, 99};
    EXPECT_TRUE(engine.arm(mixed_mayhem_plan()).ok());
    net.sim().run_for(3 * kSecond);
    return net.sim().schedule_digest();
  };
  const auto report = simnet::audit_determinism(scenario);
  EXPECT_TRUE(report.deterministic()) << report.to_string();
}

TEST(Chaos, SoakReportIsDeterministic) {
  SoakOptions options;
  options.seed = 11;
  options.duration = 2 * kSecond;
  options.workload.hosts = 6;
  options.workload.flows = 12;
  options.workload.packets_per_flow = 40;
  const auto first = run_soak(kreonet_ring_cut_plan(), options);
  const auto second = run_soak(kreonet_ring_cut_plan(), options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->schedule_hash, second->schedule_hash);
  EXPECT_EQ(first->executed_events, second->executed_events);
  EXPECT_EQ(first->to_json(), second->to_json());
  EXPECT_GT(first->faults_injected, 0u);
}

// The acceptance regression: under the KREONET ring cut, delivery ratio
// with backoff + stale-serving enabled must beat the same seed with the
// resilience machinery disabled.
TEST(Chaos, RingCutSurvivabilityBetterWithResilience) {
  SoakOptions with_resilience;
  with_resilience.seed = 7;
  with_resilience.duration = 4 * kSecond;
  with_resilience.workload.hosts = 8;
  with_resilience.workload.flows = 24;
  with_resilience.workload.packets_per_flow = 60;
  SoakOptions without = with_resilience;
  without.resilience = false;

  const auto resilient = run_soak(kreonet_ring_cut_plan(), with_resilience);
  const auto blunt = run_soak(kreonet_ring_cut_plan(), without);
  ASSERT_TRUE(resilient.ok());
  ASSERT_TRUE(blunt.ok());

  EXPECT_GT(resilient->delivery_ratio, blunt->delivery_ratio);
  EXPECT_GT(resilient->stale_served, 0u);
  EXPECT_EQ(blunt->stale_served, 0u);
  // The legacy stack surfaces the outage as hard-empty lookups instead.
  EXPECT_GT(blunt->degraded_empty, 0u);
  EXPECT_GT(resilient->faults_injected, 0u);
}

// --- Self-healing control plane (ISSUE 5) ------------------------------------

// Boundary regression for Resilience::max_stale_age: an entry aged just
// below the cap still rides the stale ladder; aged exactly to the cap it
// answers kUnavailable (age >= cap, the same >= convention every other
// boundary in the stack uses). A zero cap disables the ceiling.
TEST(Daemon, StaleServingCapsAtMaxStaleAge) {
  ScionNetwork net{topology::build_sciera()};
  endhost::Daemon::Config config;
  config.path_cache_ttl = 1 * kSecond;
  config.resilience.max_stale_age = 5 * kSecond;
  endhost::Daemon capped{net, a::uva(), config};
  endhost::Daemon::Config unbounded_config = config;
  unbounded_config.resilience.max_stale_age = 0;
  endhost::Daemon unbounded{net, a::uva(), unbounded_config};

  // Warm both caches at t=0, then hold the outage past the cap.
  ASSERT_EQ(capped.paths_detailed(a::ovgu()).source,
            endhost::PathSource::kFetched);
  ASSERT_EQ(unbounded.paths_detailed(a::ovgu()).source,
            endhost::PathSource::kFetched);
  net.control_service(a::uva())->set_available(false);

  net.sim().run_for(4999 * kMillisecond);  // age just below the cap
  const auto near_cap = capped.paths_detailed(a::ovgu());
  EXPECT_EQ(near_cap.source, endhost::PathSource::kStaleCache);
  EXPECT_TRUE(near_cap.stale);
  EXPECT_EQ(capped.first_stale_at(), net.sim().now());

  net.sim().run_for(1 * kMillisecond);  // age == max_stale_age
  const auto at_cap = capped.paths_detailed(a::ovgu());
  EXPECT_EQ(at_cap.source, endhost::PathSource::kUnavailable);
  EXPECT_TRUE(at_cap.paths.empty());
  // The cap did not retroactively erase the stale-window evidence.
  EXPECT_EQ(capped.last_stale_at(), net.sim().now() - 1 * kMillisecond);
  // With the cap disabled the same entry still serves, however old.
  const auto still_stale = unbounded.paths_detailed(a::ovgu());
  EXPECT_EQ(still_stale.source, endhost::PathSource::kStaleCache);
  EXPECT_FALSE(still_stale.paths.empty());
}

// Replica failover: with the primary in an outage the daemon's sync
// lookup silently moves to replica 1 and still answers kFetched — no
// stale serving, no degradation. With every replica down and nothing
// cached for the destination, the ladder bottoms out at kUnavailable.
TEST(Daemon, FailsOverAcrossControlReplicas) {
  ScionNetwork::Options options;
  options.control_replicas = 3;
  ScionNetwork net{topology::build_sciera(), options};
  auto* set = net.control_service_set(a::uva());
  ASSERT_NE(set, nullptr);
  ASSERT_EQ(set->size(), 3u);
  endhost::Daemon daemon{net, a::uva()};

  ChaosEngine engine{net, 5};
  FaultPlan plan;
  plan.name = "primary-out";
  plan.add({1 * kSecond, FaultKind::kControlOutage,
            a::uva().to_string() + "#r0", 0.0, 2 * kSecond});
  ASSERT_TRUE(engine.arm(plan).ok());

  net.sim().run_for(1500 * kMillisecond);  // mid-outage
  EXPECT_FALSE(set->replica(0)->available());
  EXPECT_TRUE(set->replica(1)->available());
  const auto before = set->replica(1)->lookups_total();
  const auto lookup = daemon.paths_detailed(a::ovgu());
  EXPECT_EQ(lookup.source, endhost::PathSource::kFetched);
  EXPECT_FALSE(lookup.stale);
  EXPECT_FALSE(lookup.paths.empty());
  EXPECT_GT(set->replica(1)->lookups_total(), before);

  // Every replica dark + cold cache for this destination: kUnavailable.
  set->replica(1)->set_available(false);
  set->replica(2)->set_available(false);
  const auto exhausted = daemon.paths_detailed(a::kisti_sg());
  EXPECT_EQ(exhausted.source, endhost::PathSource::kUnavailable);
  EXPECT_GT(daemon.degraded_empty(), 0u);

  // The outage reverts on schedule and the primary serves again.
  net.sim().run_for(2 * kSecond);
  EXPECT_TRUE(set->replica(0)->available());
}

// The chaos replica-target grammar: "<as>#rK" must name an existing
// replica, "<as>#*" hits the whole set, and the legacy plain/"*" forms
// keep their pre-replication meaning (primary only), so existing plans
// leave the secondaries alive to absorb failover.
TEST(Chaos, ReplicaTargetsValidateAndApply) {
  ScionNetwork::Options options;
  options.control_replicas = 2;
  ScionNetwork net{topology::build_sciera(), options};
  ChaosEngine engine{net, 9};

  FaultPlan bad_index;
  bad_index.add({0, FaultKind::kControlOutage,
                 a::uva().to_string() + "#r5", 0.0, kSecond});
  EXPECT_FALSE(engine.arm(bad_index).ok());
  FaultPlan malformed;
  malformed.add({0, FaultKind::kControlSlowdown,
                 a::uva().to_string() + "#rx", 2.0, kSecond});
  EXPECT_FALSE(engine.arm(malformed).ok());

  FaultPlan plan;
  plan.name = "replica-scopes";
  plan.add({1 * kSecond, FaultKind::kControlOutage, "*", 0.0, 1 * kSecond});
  plan.add({3 * kSecond, FaultKind::kControlOutage,
            a::uva().to_string() + "#*", 0.0, 1 * kSecond});
  ASSERT_TRUE(engine.arm(plan).ok());

  net.sim().run_for(1500 * kMillisecond);  // wildcard window: primaries only
  auto* uva = net.control_service_set(a::uva());
  auto* geant = net.control_service_set(a::geant());
  EXPECT_FALSE(uva->replica(0)->available());
  EXPECT_TRUE(uva->replica(1)->available());
  EXPECT_FALSE(geant->replica(0)->available());
  EXPECT_TRUE(geant->replica(1)->available());

  net.sim().run_for(2 * kSecond);  // "#*" window: the whole UVa set
  EXPECT_FALSE(uva->replica(0)->available());
  EXPECT_FALSE(uva->replica(1)->available());
  EXPECT_TRUE(geant->replica(0)->available());

  net.sim().run_for(2 * kSecond);  // everything reverted
  EXPECT_TRUE(uva->replica(0)->available());
  EXPECT_TRUE(uva->replica(1)->available());
}

// The healing loop end to end against a real cut: segments over the dead
// circuit are revoked one detection delay after the transition, the
// reconvergence clock reads exactly that delay, and after the restore
// (plus one expiry horizon for any cut-era alternates beaconing learned)
// the store converges back to exactly the baseline segment set.
TEST(Chaos, HealingRevokesCutSegmentsAndRestoresThem) {
  ScionNetwork::Options options;
  options.healing.enabled = true;
  options.healing.refresh_interval = 1 * kSecond;
  options.healing.segment_lifetime = 2500 * kMillisecond;
  options.healing.detection_delay = 200 * kMillisecond;
  ScionNetwork net{topology::build_sciera(), options};
  const auto fingerprints = [&] {
    std::set<std::string> fps;
    for (const auto& segment : net.segments().all()) {
      fps.insert(segment.fingerprint());
    }
    return fps;
  };
  const std::set<std::string> baseline = fingerprints();
  const auto* info = net.topology().find_link_by_label("kreonet-sg-ams");
  ASSERT_NE(info, nullptr);
  const topology::LinkId cut_id = info->id;
  const auto over_cut_link = [&] {
    std::size_t n = 0;
    for (const auto& segment : net.segments().all()) {
      for (topology::LinkId id : segment.links) {
        if (id == cut_id) {
          ++n;
          break;
        }
      }
    }
    return n;
  };
  ASSERT_GT(over_cut_link(), 0u);

  net.sim().run_for(500 * kMillisecond);
  net.set_link_up("kreonet-sg-ams", false);
  net.sim().run_for(300 * kMillisecond);  // past the detection-delay sweep
  EXPECT_EQ(over_cut_link(), 0u);
  const auto cut_snap = net.healing_snapshot();
  EXPECT_GT(cut_snap.segments_revoked, 0u);
  EXPECT_EQ(cut_snap.last_reconverge, options.healing.detection_delay);

  // Restore at t=800ms; run past t=4s so periodic sweeps refresh the
  // re-originated baseline while anything learned only during the cut
  // window misses its refresh and expires (added at ~700ms + 2.5s life).
  net.set_link_up("kreonet-sg-ams", true);
  net.sim().run_for(3700 * kMillisecond);
  EXPECT_GT(over_cut_link(), 0u);
  EXPECT_EQ(fingerprints(), baseline);
  const auto restore_snap = net.healing_snapshot();
  EXPECT_GE(restore_snap.sweeps, 4u);
  EXPECT_GE(restore_snap.max_reconverge, options.healing.detection_delay);
}

// With healing disabled (the default) the stack is byte-for-byte the
// legacy one: beaconing stays one-shot, segments carry the "never
// expires" sentinel, a cut changes nothing in the store, and the healing
// snapshot reads all-zero/-1.
TEST(Chaos, HealingDisabledPreservesOneShotBeaconing) {
  ScionNetwork net{topology::build_sciera()};  // healing off by default
  const std::size_t baseline = net.segments().size();
  net.set_link_up("kreonet-sg-ams", false);
  net.sim().run_for(5 * kSecond);
  // No sweeps, no expiry, no revocation: the legacy one-shot store.
  EXPECT_EQ(net.segments().size(), baseline);
  const auto snap = net.healing_snapshot();
  EXPECT_EQ(snap.sweeps, 0u);
  EXPECT_EQ(snap.last_reconverge, -1);
  for (const auto& segment : net.segments().all()) {
    EXPECT_EQ(segment.expires_at, 0) << segment.fingerprint();
  }
  net.set_link_up("kreonet-sg-ams", true);
}

// The acceptance A/B: under the same KREONET ring cut and seed, the
// self-healing stack (replicated path services + healing loop) must beat
// the PR 4 resilient baseline on delivery ratio and report a finite,
// deterministic reconvergence time; the report stays byte-replayable.
TEST(Chaos, SelfHealingSoakBeatsResilientBaseline) {
  // The full default workload, same seed and window as the committed CLI
  // numbers: a slimmed-down matrix leaves the ring-cut wound without
  // enough lookups for healing to show up in the delivery ratio.
  SoakOptions base;
  base.seed = 7;
  base.duration = 4 * kSecond;
  SoakOptions healed = base;
  healed.self_healing = true;

  const auto resilient = run_soak(kreonet_ring_cut_plan(), base);
  const auto self_healed = run_soak(kreonet_ring_cut_plan(), healed);
  ASSERT_TRUE(resilient.ok());
  ASSERT_TRUE(self_healed.ok());

  EXPECT_GT(self_healed->delivery_ratio, resilient->delivery_ratio);
  EXPECT_TRUE(self_healed->self_healing);
  EXPECT_GT(self_healed->healing_sweeps, 0u);
  EXPECT_GT(self_healed->segments_revoked, 0u);
  EXPECT_GT(self_healed->time_to_reconverge, 0);
  EXPECT_GE(self_healed->max_reconverge, self_healed->time_to_reconverge);
  // Healing off preserves the legacy report shape: no sweeps, the -1
  // "never reconverged" sentinel, and stale serving doing the work.
  EXPECT_FALSE(resilient->self_healing);
  EXPECT_EQ(resilient->healing_sweeps, 0u);
  EXPECT_EQ(resilient->time_to_reconverge, -1);
  EXPECT_GT(resilient->stale_served, 0u);

  // Same options, same seed: byte-identical report, and it passes the
  // structural self-check the CLI applies to its own output.
  const auto replay = run_soak(kreonet_ring_cut_plan(), healed);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(self_healed->to_json(), replay->to_json());
  EXPECT_TRUE(validate_report_json(self_healed->to_json()));
  EXPECT_TRUE(validate_report_json(resilient->to_json()));
}

// Batched vs scalar border-router A/B under the full ring-cut soak:
// fault injection, SCMP error generation, retries, stale serving — the
// batched fast path must be invisible to all of it. Not just the same
// delivery ratio: the entire survivability report, byte for byte.
TEST(Chaos, BatchedRouterReportMatchesScalar) {
  SoakOptions batched;
  batched.seed = 7;
  batched.duration = 2 * kSecond;
  SoakOptions scalar = batched;
  scalar.batched_router = false;

  const auto on_batched = run_soak(kreonet_ring_cut_plan(), batched);
  const auto on_scalar = run_soak(kreonet_ring_cut_plan(), scalar);
  ASSERT_TRUE(on_batched.ok());
  ASSERT_TRUE(on_scalar.ok());
  EXPECT_GT(on_batched->packets_delivered, 0u);
  EXPECT_GT(on_batched->faults_injected, 0u);
  EXPECT_EQ(on_batched->schedule_hash, on_scalar->schedule_hash);
  EXPECT_EQ(on_batched->executed_events, on_scalar->executed_events);
  EXPECT_EQ(on_batched->to_json(), on_scalar->to_json());
}

// Chaos-plan replay across the calendar queue's jump_to_far teleport:
// plan events parked seconds in the future live in the overflow heap and
// are reached by cursor teleports once the wheel drains. The executed
// schedule and the whole soak report must be byte-identical to the
// binary-heap referee's.
TEST(Chaos, SoakReplaysAcrossSchedulerTeleport) {
  FaultPlan plan = kreonet_ring_cut_plan();
  plan.name = "kreonet-ring-cut-far";
  // Far-future events: ~10s beyond the wheel's ~1.07s horizon, landing in
  // a stretch where the workload has gone quiet and the only periodic
  // traffic is the healing tick.
  plan.add({10 * kSecond, FaultKind::kLinkDown, "geant-bridges", 0.0,
            2 * kSecond});
  plan.add({12 * kSecond, FaultKind::kControlOutage, "*", 0.0, 1 * kSecond});

  SoakOptions calendar;
  calendar.seed = 13;
  calendar.duration = 14 * kSecond;
  calendar.self_healing = true;
  calendar.workload.hosts = 4;
  calendar.workload.flows = 8;
  calendar.workload.packets_per_flow = 20;
  SoakOptions heap = calendar;
  heap.scheduler.kind = simnet::SchedulerKind::kBinaryHeap;

  const auto on_calendar = run_soak(plan, calendar);
  const auto on_heap = run_soak(plan, heap);
  ASSERT_TRUE(on_calendar.ok());
  ASSERT_TRUE(on_heap.ok());
  EXPECT_GT(on_calendar->faults_injected, 2u);  // the far events fired
  EXPECT_EQ(on_calendar->schedule_hash, on_heap->schedule_hash);
  EXPECT_EQ(on_calendar->executed_events, on_heap->executed_events);
  EXPECT_EQ(on_calendar->to_json(), on_heap->to_json());
}

// --- Adversarial robustness (ISSUE 10) ---------------------------------------

// Attack events cannot arm against a bare engine: without an attack
// generator bridged in (soak.cc installs workload::AttackMatrix hooks),
// validation fails and nothing is scheduled.
TEST(Chaos, AttackEventsRequireArmedGenerator) {
  ScionNetwork net{topology::build_sciera()};
  ChaosEngine engine{net, 1};
  EXPECT_FALSE(engine.arm(forged_flood_plan()).ok());
  net.sim().run_for(5 * kSecond);
  EXPECT_EQ(engine.faults_injected(), 0u);
}

// Arm-time validation of attack bursts: unknown origin AS, degenerate
// rate, and a flash crowd without the shared sealing secret all fail
// before anything is scheduled.
TEST(Chaos, AttackBurstValidationRejectsBadEvents) {
  ScionNetwork net{topology::build_sciera()};
  workload::WorkloadConfig config = soak_default_workload();
  config.hosts = 4;
  config.flows = 4;
  config.packets_per_flow = 4;
  workload::TrafficMatrix victims{net, config};
  ASSERT_TRUE(victims.launch().ok());
  workload::AttackMatrix attack{net, victims, {}};

  workload::AttackBurst bad;
  bad.kind = workload::AttackKind::kForgedFlood;
  bad.source = IsdAs::parse("99-99").value();
  EXPECT_FALSE(attack.validate(bad).ok());
  bad.source = a::geant();
  bad.pps = 0;
  EXPECT_FALSE(attack.validate(bad).ok());
  bad.pps = 100;
  EXPECT_TRUE(attack.validate(bad).ok());

  workload::AttackBurst crowd;
  crowd.kind = workload::AttackKind::kFlashCrowd;
  crowd.source = a::geant();
  // The default AttackConfig carries no filter secret, so a flash crowd
  // (which must seal valid authenticators) cannot validate.
  EXPECT_FALSE(attack.validate(crowd).ok());
}

// Router ingress admission: with a tiny data-class budget a data burst is
// shed at the first on-path router, while SCMP (the control class, left
// unlimited) keeps flowing — the priority inversion the flood would
// otherwise cause.
TEST(Router, AdmissionShedsDataButKeepsControl) {
  ScionNetwork::Options options;
  options.router.admission.data_pps = 10;
  options.router.admission.data_burst = 4;
  ScionNetwork net{topology::build_sciera(), options};
  const dataplane::Address src{a::uva(), 0x0A000001};
  int echoes = 0;
  ASSERT_TRUE(net.register_host(src,
                                [&](const dataplane::ScionPacket&, SimTime) {
                                  ++echoes;
                                })
                  .ok());
  const auto paths = net.paths(a::uva(), a::princeton());
  ASSERT_FALSE(paths.empty());
  for (int i = 0; i < 40; ++i) {
    dataplane::ScionPacket pkt;
    pkt.src = src;
    pkt.dst = {a::princeton(), 2};
    pkt.next_hdr = dataplane::kProtoUdp;
    pkt.path = paths.front().dataplane_path;
    pkt.payload = dataplane::UdpDatagram{40000, 40000, {0xA5}}.serialize();
    ASSERT_TRUE(net.send_from_host(pkt).ok());
  }
  for (int i = 0; i < 5; ++i) {
    dataplane::ScionPacket ping;
    ping.src = src;
    ping.dst = {a::princeton(), 2};
    ping.next_hdr = dataplane::kProtoScmp;
    ping.path = paths.front().dataplane_path;
    ping.payload =
        dataplane::make_echo_request(9, static_cast<std::uint16_t>(i))
            .serialize();
    ASSERT_TRUE(net.send_from_host(ping).ok());
  }
  net.sim().run_for(2 * kSecond);
  std::uint64_t data_drops = 0;
  std::uint64_t control_drops = 0;
  for (const topology::AsInfo& as : net.topology().ases()) {
    const auto stats = net.router(as.ia)->stats();
    data_drops += stats.admission_dropped_data;
    control_drops += stats.admission_dropped_control;
  }
  EXPECT_GT(data_drops, 0u);
  EXPECT_EQ(control_drops, 0u);
  EXPECT_EQ(echoes, 5);  // every echo survived the data shed
}

// Per-offender SCMP error budget: a source whose packets keep tripping
// ExternalInterfaceDown gets `burst` errors, then suppression — counted,
// and bounded regardless of the offered rate.
TEST(Router, ScmpErrorBudgetSuppressesPerOffender) {
  ScionNetwork::Options options;
  options.router.scmp_rate_pps = 1;
  options.router.scmp_burst = 2;
  ScionNetwork net{topology::build_sciera(), options};
  const auto paths = net.paths(a::uva(), a::princeton());
  ASSERT_FALSE(paths.empty());
  // Cut every UVa uplink so the origin router hits a down egress.
  for (const topology::LinkInfo& link : net.topology().links()) {
    if (link.a == a::uva() || link.b == a::uva()) {
      net.set_link_up(link.label, false);
    }
  }
  for (int i = 0; i < 6; ++i) {
    dataplane::ScionPacket pkt;
    pkt.src = {a::uva(), 0x0A000001};
    pkt.dst = {a::princeton(), 2};
    pkt.next_hdr = dataplane::kProtoUdp;
    pkt.path = paths.front().dataplane_path;
    pkt.payload = dataplane::UdpDatagram{40000, 40000, {0xA5}}.serialize();
    ASSERT_TRUE(net.send_from_host(pkt).ok());
  }
  net.sim().run_for(kSecond);
  const auto stats = net.router(a::uva())->stats();
  // scmp_errors_sent counts generation attempts; the budget (burst 2)
  // lets two through and suppresses the rest.
  EXPECT_EQ(stats.scmp_errors_sent, 6u);
  EXPECT_EQ(stats.scmp_suppressed, 4u);
}

// The headline A/B: under the forged-flood plan, the defended stack
// (in-path filters, admission classes, SCMP suppression) must strictly
// beat the undefended one on legitimate-traffic delivery — and no
// hostile packet may reach a socket.
TEST(Chaos, AttackSoakDefensesStrictlyBeatNoDefenses) {
  SoakOptions on;
  on.seed = 7;
  on.self_healing = true;
  // 5s covers the flood ramp (1s) plus the link flap (4s) whose
  // down-egress errors exercise SCMP suppression under flood.
  on.duration = 5 * kSecond;
  SoakOptions off = on;
  off.defenses = false;

  const auto defended = run_soak(forged_flood_plan(), on);
  const auto undefended = run_soak(forged_flood_plan(), off);
  ASSERT_TRUE(defended.ok());
  ASSERT_TRUE(undefended.ok());

  EXPECT_TRUE(defended->attack_plan);
  EXPECT_TRUE(defended->defenses);
  EXPECT_FALSE(undefended->defenses);
  EXPECT_GT(defended->attack_sent, 0u);
  EXPECT_EQ(defended->attack_delivered, 0u);
  EXPECT_GT(undefended->attack_delivered, 0u);
  EXPECT_GT(defended->legit_delivery_ratio,
            undefended->legit_delivery_ratio);
  // The defense layers each did real work.
  EXPECT_GT(defended->filter_dropped_auth, 0u);
  EXPECT_GT(defended->host_dropped_filtered, 0u);
  EXPECT_GT(defended->scmp_suppressed, 0u);
  // Undefended, the flood lands on the dispatcher's shared queue.
  EXPECT_GT(undefended->host_dropped_overload, 0u);
  EXPECT_LT(defended->host_dropped_overload,
            undefended->host_dropped_overload);
}

// Attack soaks replay byte-identically: the burst schedule, victim
// draws, and sealing are all functions of (plan, seed).
TEST(Chaos, AttackSoakReportIsDeterministic) {
  SoakOptions options;
  options.seed = 11;
  options.duration = 3 * kSecond;
  const auto first = run_soak(forged_flood_plan(), options);
  const auto second = run_soak(forged_flood_plan(), options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_GT(first->attack_sent, 0u);
  EXPECT_EQ(first->schedule_hash, second->schedule_hash);
  EXPECT_EQ(first->executed_events, second->executed_events);
  EXPECT_EQ(first->to_json(), second->to_json());
}

// Thread parity under hostile traffic: the sharded core must produce the
// identical attack-soak report at 1/2/4/8 worker threads.
TEST(Chaos, AttackSoakThreadParity) {
  const auto run = [](std::size_t threads) {
    SoakOptions options;
    options.seed = 7;
    options.duration = 3 * kSecond;
    options.scheduler.shards = 8;
    options.scheduler.threads = threads;
    const auto report = run_soak(forged_flood_plan(), options);
    EXPECT_TRUE(report.ok());
    return report.ok() ? report->to_json() : std::string{};
  };
  const std::string baseline = run(1);
  ASSERT_FALSE(baseline.empty());
  for (const std::size_t threads : {2u, 4u, 8u}) {
    EXPECT_EQ(run(threads), baseline) << threads << " threads";
  }
}

}  // namespace
}  // namespace sciera::chaos
