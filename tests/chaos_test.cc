// Chaos engine and resilience tests: backoff/circuit-breaker primitives,
// fault-plan validation and application (link flaps, regional outages,
// control-service outages/slowdowns, router crashes), daemon degradation
// under control-plane loss, bit-identical replay of armed plans, and the
// headline A/B: survivability of the KREONET ring cut with the
// retry/stale-serving machinery on versus off.
#include <gtest/gtest.h>

#include "chaos/chaos_engine.h"
#include "chaos/fault_plan.h"
#include "chaos/soak.h"
#include "endhost/pan.h"
#include "simnet/audit.h"
#include "topology/sciera_net.h"
#include "workload/workload.h"

namespace sciera::chaos {
namespace {

namespace a = topology::ases;
using controlplane::ScionNetwork;

// --- Backoff / circuit breaker ------------------------------------------------

TEST(Backoff, DelayGrowsGeometricallyAndClamps) {
  BackoffPolicy policy;
  policy.initial = 100 * kMillisecond;
  policy.multiplier = 2.0;
  policy.max_delay = 500 * kMillisecond;
  policy.jitter_frac = 0.2;
  Rng rng{7};
  for (std::size_t attempt = 1; attempt <= 6; ++attempt) {
    double nominal = static_cast<double>(100 * kMillisecond);
    for (std::size_t i = 1; i < attempt; ++i) nominal *= 2.0;
    nominal = std::min(nominal, static_cast<double>(500 * kMillisecond));
    const auto delay = policy.delay(attempt, rng);
    EXPECT_GE(delay, static_cast<Duration>(nominal * 0.8)) << attempt;
    EXPECT_LE(delay, static_cast<Duration>(nominal * 1.2)) << attempt;
  }
}

TEST(Backoff, ZeroJitterIsExactAndDeterministic) {
  BackoffPolicy policy;
  policy.initial = 10 * kMillisecond;
  policy.multiplier = 3.0;
  policy.max_delay = 1 * kSecond;
  policy.jitter_frac = 0.0;
  Rng rng{1};
  EXPECT_EQ(policy.delay(1, rng), 10 * kMillisecond);
  EXPECT_EQ(policy.delay(2, rng), 30 * kMillisecond);
  EXPECT_EQ(policy.delay(3, rng), 90 * kMillisecond);
  EXPECT_EQ(policy.delay(10, rng), 1 * kSecond);  // clamped
}

TEST(Backoff, JitteredDelaysReplayFromTheSeed) {
  BackoffPolicy policy;
  Rng rng1{42}, rng2{42};
  for (std::size_t attempt = 1; attempt <= 4; ++attempt) {
    EXPECT_EQ(policy.delay(attempt, rng1), policy.delay(attempt, rng2));
  }
}

TEST(Backoff, CircuitBreakerLifecycle) {
  CircuitBreaker::Config config;
  config.failure_threshold = 3;
  config.open_for = 10 * kSecond;
  CircuitBreaker breaker{config};

  EXPECT_TRUE(breaker.allow(0));
  breaker.record_failure(0);
  breaker.record_failure(1 * kSecond);
  EXPECT_TRUE(breaker.allow(1 * kSecond));  // below threshold
  breaker.record_failure(2 * kSecond);      // third strike: opens
  EXPECT_FALSE(breaker.allow(5 * kSecond));
  EXPECT_EQ(breaker.times_opened(), 1u);

  // The window elapses: half-open, one probe allowed. A failed probe
  // re-opens from now.
  EXPECT_TRUE(breaker.allow(12 * kSecond));
  breaker.record_failure(12 * kSecond);
  EXPECT_FALSE(breaker.allow(21 * kSecond));
  EXPECT_EQ(breaker.times_opened(), 2u);

  // A successful probe closes it and clears the failure streak.
  EXPECT_TRUE(breaker.allow(22 * kSecond));
  breaker.record_success();
  EXPECT_TRUE(breaker.allow(22 * kSecond));
  breaker.record_failure(23 * kSecond);
  breaker.record_failure(23 * kSecond);
  EXPECT_TRUE(breaker.allow(23 * kSecond));  // streak restarted from zero
}

// --- Fault plan validation and application -----------------------------------

TEST(Chaos, ArmRejectsUnknownTargetsWithoutScheduling) {
  ScionNetwork net{topology::build_sciera()};
  ChaosEngine engine{net, 1};

  FaultPlan bad_link;
  bad_link.add({0, FaultKind::kLinkFlap, "no-such-link", 0.0, kSecond});
  EXPECT_FALSE(engine.arm(bad_link).ok());

  FaultPlan bad_region;
  bad_region.add({0, FaultKind::kRegionOutage, "Atlantis", 0.0, kSecond});
  EXPECT_FALSE(engine.arm(bad_region).ok());

  FaultPlan bad_router;
  bad_router.add({0, FaultKind::kRouterCrash, "99-999", 0.0, kSecond});
  EXPECT_FALSE(engine.arm(bad_router).ok());

  // Nothing was scheduled by the failed arms.
  net.sim().run_for(5 * kSecond);
  EXPECT_EQ(engine.faults_injected(), 0u);
}

TEST(Chaos, RegionOutageCutsEveryIncidentLinkAndReverts) {
  ScionNetwork net{topology::build_sciera()};
  ChaosEngine engine{net, 1};
  FaultPlan plan;
  plan.name = "sg-out";
  plan.add({1 * kSecond, FaultKind::kRegionOutage, a::kisti_sg().to_string(),
            0.0, 2 * kSecond});
  ASSERT_TRUE(engine.arm(plan).ok());

  std::vector<std::string> incident;
  for (const auto& link : net.topology().links()) {
    if (link.a == a::kisti_sg() || link.b == a::kisti_sg()) {
      incident.push_back(link.label);
    }
  }
  ASSERT_GT(incident.size(), 4u);  // ring x2, parallel bundle, leaves

  net.sim().run_for(1500 * kMillisecond);  // mid-outage
  for (const auto& label : incident) {
    EXPECT_FALSE(net.link(label)->is_up()) << label;
  }
  EXPECT_TRUE(net.link("geant-bridges")->is_up());  // uncorrelated link

  net.sim().run_for(2 * kSecond);  // past the hold
  for (const auto& label : incident) {
    EXPECT_TRUE(net.link(label)->is_up()) << label;
  }
  EXPECT_EQ(engine.faults_injected(), 1u);
}

TEST(Chaos, ControlOutageAndSlowdownApplyAndRevert) {
  ScionNetwork net{topology::build_sciera()};
  ChaosEngine engine{net, 1};
  FaultPlan plan;
  plan.name = "cs-maintenance";
  plan.add({1 * kSecond, FaultKind::kControlOutage, a::uva().to_string(),
            0.0, 2 * kSecond});
  plan.add({1 * kSecond, FaultKind::kControlSlowdown, a::geant().to_string(),
            4.0, 2 * kSecond});
  ASSERT_TRUE(engine.arm(plan).ok());

  auto* uva_cs = net.control_service(a::uva());
  auto* geant_cs = net.control_service(a::geant());
  EXPECT_TRUE(uva_cs->available());

  net.sim().run_for(1500 * kMillisecond);
  EXPECT_FALSE(uva_cs->available());
  EXPECT_DOUBLE_EQ(geant_cs->slowdown(), 4.0);
  // An unavailable service drops sync lookups without caching anything.
  EXPECT_TRUE(uva_cs->lookup_paths_now(a::ovgu()).empty());
  EXPECT_GT(uva_cs->lookups_dropped(), 0u);

  net.sim().run_for(2 * kSecond);
  EXPECT_TRUE(uva_cs->available());
  EXPECT_DOUBLE_EQ(geant_cs->slowdown(), 1.0);
  EXPECT_FALSE(uva_cs->lookup_paths_now(a::ovgu()).empty());
}

TEST(Chaos, RouterCrashBlackholesUntilRestart) {
  ScionNetwork net{topology::build_sciera()};
  ChaosEngine engine{net, 1};
  FaultPlan plan;
  plan.name = "crash";
  plan.add({1 * kSecond, FaultKind::kRouterCrash, a::geant().to_string(),
            0.0, 2 * kSecond});
  ASSERT_TRUE(engine.arm(plan).ok());

  auto* router = net.router(a::geant());
  EXPECT_TRUE(router->online());
  net.sim().run_for(1500 * kMillisecond);
  EXPECT_FALSE(router->online());
  EXPECT_EQ(router->stats().crashes, 1u);
  net.sim().run_for(2 * kSecond);
  EXPECT_TRUE(router->online());
}

TEST(Chaos, LossStormRevertsToPriorLinkConditions) {
  ScionNetwork net{topology::build_sciera()};
  ChaosEngine engine{net, 1};
  const double before = net.link("kreonet-sg-ams")->config().loss_probability;
  FaultPlan plan;
  plan.name = "storm";
  plan.add({1 * kSecond, FaultKind::kLossStorm, "kreonet-sg-ams", 0.25,
            2 * kSecond});
  ASSERT_TRUE(engine.arm(plan).ok());
  net.sim().run_for(1500 * kMillisecond);
  EXPECT_DOUBLE_EQ(net.link("kreonet-sg-ams")->config().loss_probability,
                   0.25);
  net.sim().run_for(2 * kSecond);
  EXPECT_DOUBLE_EQ(net.link("kreonet-sg-ams")->config().loss_probability,
                   before);
}

// --- Daemon resilience under control-plane loss ------------------------------

TEST(Daemon, AsyncLookupTimesOutBacksOffAndDegrades) {
  ScionNetwork net{topology::build_sciera()};
  endhost::Daemon::Config config;
  config.resilience.lookup_timeout = 100 * kMillisecond;
  config.resilience.backoff.initial = 50 * kMillisecond;
  config.resilience.backoff.max_attempts = 3;
  endhost::Daemon daemon{net, a::uva(), config};

  net.control_service(a::uva())->set_available(false);
  bool answered = false;
  daemon.paths_async_detailed(a::ovgu(), [&](endhost::PathLookup lookup) {
    answered = true;
    // Nothing cached yet, so exhaustion degrades to an explicit empty.
    EXPECT_EQ(lookup.source, endhost::PathSource::kUnavailable);
    EXPECT_TRUE(lookup.paths.empty());
    EXPECT_FALSE(lookup.stale);
  });
  net.sim().run_for(2 * kSecond);
  EXPECT_TRUE(answered);
  EXPECT_EQ(daemon.lookup_timeouts(), 3u);  // every attempt timed out
  EXPECT_EQ(daemon.lookup_retries(), 2u);   // two backoff retries
  EXPECT_EQ(daemon.breaker_trips(), 1u);
  EXPECT_GT(daemon.degraded_empty(), 0u);

  // With the breaker now open, the next lookup fails fast (no timeout
  // burn) and the service recovering + window elapsing heals everything.
  bool fast = false;
  daemon.paths_async_detailed(a::ovgu(),
                              [&](endhost::PathLookup) { fast = true; });
  net.sim().run_for(1 * kMillisecond);
  EXPECT_TRUE(fast);

  net.control_service(a::uva())->set_available(true);
  net.sim().run_for(config.resilience.breaker.open_for);
  bool fetched = false;
  daemon.paths_async_detailed(a::ovgu(), [&](endhost::PathLookup lookup) {
    fetched = true;
    EXPECT_EQ(lookup.source, endhost::PathSource::kFetched);
    EXPECT_FALSE(lookup.paths.empty());
  });
  net.sim().run_for(1 * kSecond);
  EXPECT_TRUE(fetched);
}

TEST(Daemon, SyncLookupServesStaleMarkedPathsDuringOutage) {
  ScionNetwork net{topology::build_sciera()};
  endhost::Daemon::Config config;
  config.path_cache_ttl = 1 * kSecond;
  endhost::Daemon daemon{net, a::uva(), config};

  // Warm the cache, then let it expire during a control outage.
  const auto warm = daemon.paths_detailed(a::ovgu());
  EXPECT_EQ(warm.source, endhost::PathSource::kFetched);
  net.control_service(a::uva())->set_available(false);
  net.sim().run_for(2 * kSecond);

  const auto degraded = daemon.paths_detailed(a::ovgu());
  EXPECT_EQ(degraded.source, endhost::PathSource::kStaleCache);
  EXPECT_TRUE(degraded.stale);
  EXPECT_FALSE(degraded.paths.empty());
  EXPECT_GT(daemon.stale_served(), 0u);

  // The legacy configuration answers empty instead.
  endhost::Daemon::Config legacy;
  legacy.path_cache_ttl = 1 * kSecond;
  legacy.resilience.enabled = false;
  endhost::Daemon blunt{net, a::uva(), legacy};
  const auto empty = blunt.paths_detailed(a::ovgu());
  EXPECT_EQ(empty.source, endhost::PathSource::kUnavailable);
  EXPECT_TRUE(empty.paths.empty());
}

// --- End-to-end: correlated dual-link outage (ISSUE satellite) ---------------

// The paper's failure story end to end: the active transatlantic path
// dies mid-flight together with its parallel circuit while every control
// service is in an outage window. SCMP quarantines the dead path, the
// daemon's cache has expired so path resolution rides stale-but-marked
// entries, and traffic keeps flowing over the Amsterdam detour. When the
// plan re-ups the links and the penalty lapses, fresh fetches resume.
TEST(Chaos, ScmpFailoverSurvivesCorrelatedOutageOnStalePaths) {
  ScionNetwork net{topology::build_sciera()};
  endhost::Daemon::Config config;
  config.path_cache_ttl = 500 * kMillisecond;
  config.down_path_penalty = 2 * kSecond;
  endhost::Daemon daemon{net, a::uva(), config};
  auto ctx = endhost::PanContext::Builder{}
                 .net(net)
                 .address({a::uva(), 0x0A020220})
                 .daemon(daemon)
                 .build(Rng{20});
  ASSERT_TRUE(ctx.ok());
  int delivered = 0;
  endhost::Daemon dst_daemon{net, a::ovgu()};
  auto dst_ctx = endhost::PanContext::Builder{}
                     .net(net)
                     .address({a::ovgu(), 0x0A020221})
                     .daemon(dst_daemon)
                     .build(Rng{21});
  ASSERT_TRUE(dst_ctx.ok());
  auto sink = endhost::PanSocket::open(**dst_ctx, 8888,
                                       [&](auto&&...) { ++delivered; });
  ASSERT_TRUE(sink.ok());
  auto sock = endhost::PanSocket::open(**ctx, 0, [](auto&&...) {});
  ASSERT_TRUE(sock.ok());

  const auto primary = (*sock)->current_path(a::ovgu());
  ASSERT_TRUE(primary.ok());
  const std::string primary_fp = primary->fingerprint();
  ASSERT_GT(primary->links.size(), 1u);
  const std::string cut_label =
      net.topology().find_link(primary->links[1])->label;
  // The circuit's parallel twin, cut in the same correlated event. The
  // primary path rides one of the two GEANT<->BRIDGES circuits.
  const std::string twin_label =
      cut_label == "geant-bridges" ? "geant-bridges-2" : "geant-bridges";

  (*ctx)->stack().set_scmp_receiver(
      [&](const dataplane::ScionPacket&, const dataplane::ScmpMessage& m,
          SimTime) {
        if (m.is_error()) (*ctx)->report_path_down(primary_fp);
      });

  ChaosEngine engine{net, 42};
  FaultPlan plan;
  plan.name = "dual-cut";
  plan.add({1 * kSecond, FaultKind::kControlOutage, "*", 0.0, 4 * kSecond});
  plan.add({1 * kSecond, FaultKind::kLinkDown, cut_label, 0.0, 3 * kSecond});
  plan.add({1 * kSecond, FaultKind::kLinkDown, twin_label, 0.0, 3 * kSecond});
  ASSERT_TRUE(engine.arm(plan).ok());

  // Baseline delivery over the primary path.
  ASSERT_TRUE((*sock)->send_to({a::ovgu(), 0x0A020221}, 8888,
                               bytes_of("pre")).ok());
  net.sim().run_for(500 * kMillisecond);
  EXPECT_EQ(delivered, 1);

  // A packet in flight when the correlated cut lands draws the SCMP
  // error that quarantines the primary path.
  net.sim().at(999500 * kMicrosecond, [&] {
    (void)(*sock)->send_to({a::ovgu(), 0x0A020221}, 8888, bytes_of("mid"));
  });
  net.sim().run_until(2 * kSecond);
  EXPECT_EQ(daemon.quarantined(), 1u);

  // Mid-outage: cache stale, control plane dark, primary quarantined —
  // the send still succeeds over a surviving detour on stale paths.
  auto receipt = (*sock)->send_to({a::ovgu(), 0x0A020221}, 8888,
                                  bytes_of("detour"));
  ASSERT_TRUE(receipt.ok());
  EXPECT_NE(receipt->path_fingerprint, primary_fp);
  EXPECT_GT(daemon.stale_served(), 0u);
  net.sim().run_for(1 * kSecond);
  EXPECT_EQ(delivered, 2);

  // Recovery: links re-up at 4s, services at 5s, the quarantine penalty
  // lapses, and lookups go back to fresh fetches.
  net.sim().run_until(6 * kSecond);
  const auto recovered = daemon.paths_detailed(a::ovgu());
  EXPECT_EQ(recovered.source, endhost::PathSource::kFetched);
  bool primary_back = false;
  for (const auto& path : recovered.paths) {
    primary_back = primary_back || path.fingerprint() == primary_fp;
  }
  EXPECT_TRUE(primary_back);
}

// --- Replayability and the survivability A/B ---------------------------------

TEST(Chaos, ArmedPlanReplaysBitIdentically) {
  const auto scenario = [] {
    ScionNetwork net{topology::build_sciera()};
    workload::WorkloadConfig config = soak_default_workload();
    config.hosts = 6;
    config.flows = 12;
    config.packets_per_flow = 30;
    workload::TrafficMatrix workload{net, config};
    EXPECT_TRUE(workload.launch().ok());
    ChaosEngine engine{net, 99};
    EXPECT_TRUE(engine.arm(mixed_mayhem_plan()).ok());
    net.sim().run_for(3 * kSecond);
    return net.sim().schedule_digest();
  };
  const auto report = simnet::audit_determinism(scenario);
  EXPECT_TRUE(report.deterministic()) << report.to_string();
}

TEST(Chaos, SoakReportIsDeterministic) {
  SoakOptions options;
  options.seed = 11;
  options.duration = 2 * kSecond;
  options.workload.hosts = 6;
  options.workload.flows = 12;
  options.workload.packets_per_flow = 40;
  const auto first = run_soak(kreonet_ring_cut_plan(), options);
  const auto second = run_soak(kreonet_ring_cut_plan(), options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->schedule_hash, second->schedule_hash);
  EXPECT_EQ(first->executed_events, second->executed_events);
  EXPECT_EQ(first->to_json(), second->to_json());
  EXPECT_GT(first->faults_injected, 0u);
}

// The acceptance regression: under the KREONET ring cut, delivery ratio
// with backoff + stale-serving enabled must beat the same seed with the
// resilience machinery disabled.
TEST(Chaos, RingCutSurvivabilityBetterWithResilience) {
  SoakOptions with_resilience;
  with_resilience.seed = 7;
  with_resilience.duration = 4 * kSecond;
  with_resilience.workload.hosts = 8;
  with_resilience.workload.flows = 24;
  with_resilience.workload.packets_per_flow = 60;
  SoakOptions without = with_resilience;
  without.resilience = false;

  const auto resilient = run_soak(kreonet_ring_cut_plan(), with_resilience);
  const auto blunt = run_soak(kreonet_ring_cut_plan(), without);
  ASSERT_TRUE(resilient.ok());
  ASSERT_TRUE(blunt.ok());

  EXPECT_GT(resilient->delivery_ratio, blunt->delivery_ratio);
  EXPECT_GT(resilient->stale_served, 0u);
  EXPECT_EQ(blunt->stale_served, 0u);
  // The legacy stack surfaces the outage as hard-empty lookups instead.
  EXPECT_GT(blunt->degraded_empty, 0u);
  EXPECT_GT(resilient->faults_injected, 0u);
}

}  // namespace
}  // namespace sciera::chaos
