#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "cppki/ca.h"
#include "cppki/certificate.h"
#include "cppki/trc.h"
#include "topology/sciera_net.h"

namespace sciera::cppki {
namespace {

namespace a = topology::ases;

crypto::KeyPair make_key(int tag) {
  crypto::Ed25519::Seed seed{};
  seed[0] = static_cast<std::uint8_t>(tag);
  seed[1] = static_cast<std::uint8_t>(tag >> 8);
  return crypto::KeyPair::from_seed(seed);
}

Certificate make_cert(CertType type, IsdAs subject, IsdAs issuer,
                      const crypto::KeyPair& subject_key, SimTime from,
                      SimTime until) {
  Certificate cert;
  cert.type = type;
  cert.subject = subject;
  cert.issuer = issuer;
  cert.serial = 7;
  cert.subject_key = subject_key.pub;
  cert.valid_from = from;
  cert.valid_until = until;
  return cert;
}

TEST(Certificate, SignAndVerify) {
  const auto issuer_key = make_key(1);
  const auto subject_key = make_key(2);
  auto cert = make_cert(CertType::kAs, a::uva(), a::geant(), subject_key, 0,
                        3 * kDay);
  sign_certificate(cert, issuer_key.seed);
  EXPECT_TRUE(cert.verify(issuer_key.pub, kDay).ok());
}

TEST(Certificate, RejectsWrongIssuerKey) {
  const auto issuer_key = make_key(1);
  const auto other_key = make_key(3);
  auto cert = make_cert(CertType::kAs, a::uva(), a::geant(), make_key(2), 0,
                        3 * kDay);
  sign_certificate(cert, issuer_key.seed);
  const auto status = cert.verify(other_key.pub, kDay);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, Errc::kVerificationFailed);
}

TEST(Certificate, RejectsExpired) {
  const auto issuer_key = make_key(1);
  auto cert = make_cert(CertType::kAs, a::uva(), a::geant(), make_key(2), 0,
                        3 * kDay);
  sign_certificate(cert, issuer_key.seed);
  const auto status = cert.verify(issuer_key.pub, 4 * kDay);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, Errc::kExpired);
}

TEST(Certificate, RejectsTamperedFields) {
  const auto issuer_key = make_key(1);
  auto cert = make_cert(CertType::kAs, a::uva(), a::geant(), make_key(2), 0,
                        3 * kDay);
  sign_certificate(cert, issuer_key.seed);
  cert.subject = a::princeton();  // tamper after signing
  EXPECT_FALSE(cert.verify(issuer_key.pub, kDay).ok());
}

TEST(Certificate, RejectsEmptyValidity) {
  const auto issuer_key = make_key(1);
  auto cert = make_cert(CertType::kAs, a::uva(), a::geant(), make_key(2),
                        2 * kDay, 2 * kDay);
  sign_certificate(cert, issuer_key.seed);
  EXPECT_FALSE(cert.verify(issuer_key.pub, kDay).ok());
}

class PkiFixture : public ::testing::Test {
 protected:
  PkiFixture()
      : pki_(71, {a::geant(), a::bridges(), a::kisti_dj()}, 0, 365 * kDay,
             1234) {}
  IsdPki pki_;
};

TEST_F(PkiFixture, BaseTrcVerifies) {
  EXPECT_TRUE(pki_.trc().verify_base().ok());
  EXPECT_EQ(pki_.trc().isd, 71);
  EXPECT_EQ(pki_.trc().roots.size(), 3u);
  EXPECT_EQ(pki_.trc().voting_quorum, 2u);
}

TEST_F(PkiFixture, EnrollIssuesVerifiableChain) {
  ASSERT_TRUE(pki_.enroll(a::uva(), kDay).ok());
  const auto* creds = pki_.credentials(a::uva());
  ASSERT_NE(creds, nullptr);
  EXPECT_TRUE(
      verify_chain(creds->as_cert, creds->ca_cert, pki_.trc(), kDay).ok());
}

TEST_F(PkiFixture, EnrollRejectsForeignIsd) {
  EXPECT_FALSE(pki_.enroll(a::eth(), 0).ok());  // 64-2:0:9
}

TEST_F(PkiFixture, EnrollRejectsDuplicates) {
  ASSERT_TRUE(pki_.enroll(a::uva(), 0).ok());
  EXPECT_FALSE(pki_.enroll(a::uva(), 0).ok());
}

TEST_F(PkiFixture, ShortLivedCertsExpireWithoutRenewal) {
  ASSERT_TRUE(pki_.enroll(a::uva(), 0).ok());
  const auto* creds = pki_.credentials(a::uva());
  // At day 4 the 3-day cert has lapsed.
  const auto status =
      verify_chain(creds->as_cert, creds->ca_cert, pki_.trc(), 4 * kDay);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, Errc::kExpired);
}

TEST_F(PkiFixture, AutomatedRenewalKeepsCertsFresh) {
  ASSERT_TRUE(pki_.enroll(a::uva(), 0).ok());
  ASSERT_TRUE(pki_.enroll(a::princeton(), 0).ok());
  // Simulate the orchestrator's daily renewal sweep for a month.
  for (SimTime now = 0; now <= 30 * kDay; now += kDay) {
    pki_.renew_expiring(now);
    const auto* creds = pki_.credentials(a::uva());
    EXPECT_TRUE(
        verify_chain(creds->as_cert, creds->ca_cert, pki_.trc(), now).ok())
        << "day " << now / kDay;
  }
  EXPECT_GT(pki_.ca().stats().renewed, 10u);
}

TEST_F(PkiFixture, RenewalOnlyTouchesExpiring) {
  ASSERT_TRUE(pki_.enroll(a::uva(), 0).ok());
  EXPECT_EQ(pki_.renew_expiring(0), 0u);  // brand new, no renewal needed
  EXPECT_EQ(pki_.renew_expiring(2 * kDay + kHour), 1u);
}

TEST_F(PkiFixture, TrcUpdateChainsIntoTrustStore) {
  TrustStore store;
  ASSERT_TRUE(store.anchor(pki_.trc()).ok());
  const Trc updated = pki_.make_trc_update(10 * kDay, 365 * kDay);
  EXPECT_TRUE(store.update(updated).ok());
  EXPECT_EQ(store.latest(71)->version.serial, 2u);
  EXPECT_EQ(store.chain(71)->size(), 2u);
}

TEST_F(PkiFixture, TrustStoreRejectsSerialSkips) {
  TrustStore store;
  ASSERT_TRUE(store.anchor(pki_.trc()).ok());
  Trc skipped = pki_.make_trc_update(10 * kDay, 365 * kDay);
  skipped.version.serial = 5;
  EXPECT_FALSE(store.update(skipped).ok());
}

TEST_F(PkiFixture, TrustStoreRejectsForgedUpdate) {
  TrustStore store;
  ASSERT_TRUE(store.anchor(pki_.trc()).ok());
  // An attacker fabricates an update with its own keys.
  Trc forged = pki_.trc();
  forged.version.serial += 1;
  const auto attacker = make_key(66);
  forged.roots[0].voting_key = attacker.pub;
  forged.votes.clear();
  const Bytes payload = forged.signing_payload();
  forged.votes.push_back(
      TrcVote{forged.roots[0].as, crypto::Ed25519::sign(attacker.seed, payload)});
  EXPECT_FALSE(store.update(forged).ok());
}

TEST_F(PkiFixture, TrustStoreRejectsUnanchoredIsd) {
  TrustStore store;
  EXPECT_FALSE(store.update(pki_.trc()).ok());
  EXPECT_EQ(store.latest(71), nullptr);
}

TEST(Trc, BaseTrcQuorumEnforced) {
  IsdPki pki{64, {a::switch64()}, 0, 365 * kDay, 9};
  Trc trc = pki.trc();
  trc.votes.clear();  // strip signatures
  EXPECT_FALSE(trc.verify_base().ok());
}

TEST(Trc, DuplicateVotesDontCountTwice) {
  IsdPki pki{71, {a::geant(), a::bridges()}, 0, 365 * kDay, 5};
  Trc trc = pki.trc();  // quorum 2
  ASSERT_EQ(trc.votes.size(), 2u);
  trc.votes[1] = trc.votes[0];  // same voter twice
  EXPECT_FALSE(trc.verify_base().ok());
}

TEST(Ca, RefusesCrossIsdSubjects) {
  IsdPki pki{71, {a::geant()}, 0, 365 * kDay, 10};
  ASSERT_TRUE(pki.enroll(a::uva(), 0).ok());
  // ca() is GEANT's CA for ISD 71; an ISD-64 subject must be refused.
  auto& ca = const_cast<CertificateAuthority&>(pki.ca());
  const auto key = make_key(12);
  EXPECT_FALSE(ca.issue(a::eth(), key.pub, 0).ok());
}

TEST(Ca, ChainFailsWithWrongTrc) {
  IsdPki pki71{71, {a::geant()}, 0, 365 * kDay, 11};
  IsdPki pki64{64, {a::switch64()}, 0, 365 * kDay, 12};
  ASSERT_TRUE(pki71.enroll(a::uva(), 0).ok());
  const auto* creds = pki71.credentials(a::uva());
  EXPECT_TRUE(verify_chain(creds->as_cert, creds->ca_cert, pki71.trc(), 0).ok());
  EXPECT_FALSE(verify_chain(creds->as_cert, creds->ca_cert, pki64.trc(), 0).ok());
}

TEST(Ca, SignAsProducesVerifiableControlPlaneSignatures) {
  IsdPki pki{71, {a::geant()}, 0, 365 * kDay, 13};
  ASSERT_TRUE(pki.enroll(a::sidn(), 0).ok());
  const Bytes payload = bytes_of("pcb-entry");
  auto sig = pki.sign_as(a::sidn(), payload);
  ASSERT_TRUE(sig.ok());
  const auto* creds = pki.credentials(a::sidn());
  EXPECT_TRUE(crypto::Ed25519::verify(creds->as_cert.subject_key, payload,
                                      sig.value()));
  EXPECT_FALSE(pki.sign_as(a::uva(), payload).ok());  // not enrolled
}

// Perturbed-insertion-order regression for the analyzer's determinism
// contract: IsdPki::members_ is an ordered map, so the automated renewal
// sweep re-issues certificates by AS identifier — the CA serial each AS
// ends up with must not depend on the order operators happened to enroll.
// (With a hash map this walks the bucket chains, which DO reorder under
// reversed insertion.)
TEST(Pki, RenewalSerialsIndependentOfEnrollmentOrder) {
  const std::vector<IsdAs> members = {a::uva(), a::princeton(), a::sidn(),
                                      a::demokritos(), a::ovgu()};
  const auto build = [&members](bool reversed) {
    std::vector<IsdAs> order = members;
    if (reversed) std::reverse(order.begin(), order.end());
    auto pki = std::make_unique<IsdPki>(
        71, std::vector<IsdAs>{a::geant(), a::bridges()}, 0, 365 * kDay, 77);
    for (const IsdAs ia : order) {
      EXPECT_TRUE(pki->enroll(ia, 0).ok()) << ia.to_string();
    }
    // Inside the renewal margin: one sweep re-issues every member.
    EXPECT_EQ(pki->renew_expiring(2 * kDay + kHour), order.size());
    return pki;
  };
  const auto forward = build(false);
  const auto reversed = build(true);
  for (const IsdAs ia : members) {
    const auto* f = forward->credentials(ia);
    const auto* r = reversed->credentials(ia);
    ASSERT_NE(f, nullptr);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(f->as_cert.serial, r->as_cert.serial) << ia.to_string();
  }
}

}  // namespace
}  // namespace sciera::cppki
