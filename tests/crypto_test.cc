#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/aes128.h"
#include "crypto/cmac.h"
#include "crypto/ed25519.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/sha512.h"

namespace sciera::crypto {
namespace {

Bytes hex(std::string_view h) { return from_hex(h).value(); }

template <std::size_t N>
std::array<std::uint8_t, N> array_from_hex(std::string_view h) {
  const Bytes b = hex(h);
  EXPECT_EQ(b.size(), N);
  std::array<std::uint8_t, N> out{};
  std::copy(b.begin(), b.end(), out.begin());
  return out;
}

// --- SHA-256 (FIPS 180-4 / NIST CAVS vectors) --------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  const auto msg = bytes_of("abc");
  EXPECT_EQ(to_hex(Sha256::hash(msg)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  const auto msg =
      bytes_of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(to_hex(Sha256::hash(msg)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  const auto d = h.finish();
  EXPECT_EQ(to_hex(d),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Rng rng{42};
  Bytes data(4097);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  const auto oneshot = Sha256::hash(data);
  // Feed in awkward chunk sizes straddling block boundaries.
  Sha256 h;
  std::size_t pos = 0;
  const std::size_t chunks[] = {1, 63, 64, 65, 127, 128, 129, 1000};
  std::size_t ci = 0;
  while (pos < data.size()) {
    const std::size_t n = std::min(chunks[ci % 8], data.size() - pos);
    h.update(BytesView{data.data() + pos, n});
    pos += n;
    ++ci;
  }
  EXPECT_EQ(h.finish(), oneshot);
}

// --- SHA-512 ------------------------------------------------------------------

TEST(Sha512, EmptyString) {
  EXPECT_EQ(to_hex(Sha512::hash({})),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512, Abc) {
  EXPECT_EQ(to_hex(Sha512::hash(bytes_of("abc"))),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512, TwoBlockMessage) {
  const auto msg = bytes_of(
      "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
      "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu");
  EXPECT_EQ(to_hex(Sha512::hash(msg)),
            "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
            "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

TEST(Sha512, IncrementalMatchesOneShot) {
  Rng rng{43};
  Bytes data(10000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  const auto oneshot = Sha512::hash(data);
  Sha512 h;
  std::size_t pos = 0;
  std::size_t n = 1;
  while (pos < data.size()) {
    const std::size_t take = std::min(n, data.size() - pos);
    h.update(BytesView{data.data() + pos, take});
    pos += take;
    n = (n * 3 + 1) % 257 + 1;
  }
  EXPECT_EQ(h.finish(), oneshot);
}

// --- HMAC-SHA256 (RFC 4231) ----------------------------------------------------

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const auto mac = hmac_sha256(key, bytes_of("Hi There"));
  EXPECT_EQ(to_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const auto mac =
      hmac_sha256(bytes_of("Jefe"), bytes_of("what do ya want for nothing?"));
  EXPECT_EQ(to_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes msg(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  const auto mac = hmac_sha256(
      key, bytes_of("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(to_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DeriveKeyIsDeterministicAndLabelSensitive) {
  const Bytes secret = hex("000102030405060708090a0b0c0d0e0f");
  const auto k1 = derive_key(secret, "scion-forwarding-key");
  const auto k2 = derive_key(secret, "scion-forwarding-key");
  const auto k3 = derive_key(secret, "other");
  EXPECT_EQ(k1, k2);
  EXPECT_NE(k1, k3);
}

TEST(Hmac, ConstantTimeEqual) {
  const Bytes a = hex("00112233");
  const Bytes b = hex("00112233");
  const Bytes c = hex("00112234");
  const Bytes d = hex("001122");
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(a, d));
}

// --- AES-128 (FIPS 197 Appendix C.1) -------------------------------------------

TEST(Aes128, Fips197Vector) {
  const auto key = array_from_hex<16>("000102030405060708090a0b0c0d0e0f");
  const auto pt = array_from_hex<16>("00112233445566778899aabbccddeeff");
  Aes128 aes{key};
  const auto ct = aes.encrypt(pt);
  EXPECT_EQ(to_hex(BytesView{ct.data(), ct.size()}),
            "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, Sp800_38aVector) {
  // First block of the ECB-AES128 example from NIST SP 800-38A.
  const auto key = array_from_hex<16>("2b7e151628aed2a6abf7158809cf4f3c");
  const auto pt = array_from_hex<16>("6bc1bee22e409f96e93d7e117393172a");
  Aes128 aes{key};
  EXPECT_EQ(to_hex(aes.encrypt(pt)), "3ad77bb40d7a3660a89ecaf32466ef97");
}

// --- AES-CMAC (RFC 4493) --------------------------------------------------------

class CmacRfc4493 : public ::testing::Test {
 protected:
  AesCmac cmac_{array_from_hex<16>("2b7e151628aed2a6abf7158809cf4f3c")};
  Bytes msg_ = hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
};

TEST_F(CmacRfc4493, EmptyMessage) {
  EXPECT_EQ(to_hex(cmac_.compute({})), "bb1d6929e95937287fa37d129b756746");
}

TEST_F(CmacRfc4493, SixteenBytes) {
  EXPECT_EQ(to_hex(cmac_.compute(BytesView{msg_.data(), 16})),
            "070a16b46b4d4144f79bdd9dd04a287c");
}

TEST_F(CmacRfc4493, FortyBytes) {
  EXPECT_EQ(to_hex(cmac_.compute(BytesView{msg_.data(), 40})),
            "dfa66747de9ae63030ca32611497c827");
}

TEST_F(CmacRfc4493, SixtyFourBytes) {
  EXPECT_EQ(to_hex(cmac_.compute(msg_)),
            "51f0bebf7e3b9d92fc49741779363cfe");
}

TEST_F(CmacRfc4493, VerifyAcceptsTruncatedMac) {
  // Truncation is allowed down to kMinTagLen (the 6-byte SCION hop-field
  // tag) and up to the full 16-byte MAC — never below.
  const auto mac = cmac_.compute(msg_);
  for (std::size_t len = AesCmac::kMinTagLen; len <= mac.size(); ++len) {
    EXPECT_TRUE(cmac_.verify(msg_, BytesView{mac.data(), len}))
        << "genuine " << len << "-byte tag rejected";
  }
  auto tampered = mac;
  tampered[0] ^= 1;
  EXPECT_FALSE(cmac_.verify(msg_, BytesView{tampered.data(), 6}));
}

TEST_F(CmacRfc4493, VerifyRejectsEmptyAndShortMac) {
  // Regression: verify() used to accept any length <= 16, so an empty
  // tag compared zero bytes and "verified", and a 1-byte prefix gave a
  // 2^-8 forgery bound. Too-short tags — even byte-correct prefixes of
  // the genuine MAC — must be rejected before any comparison runs.
  const auto mac = cmac_.compute(msg_);
  EXPECT_FALSE(cmac_.verify(msg_, BytesView{}));
  for (std::size_t len = 1; len < AesCmac::kMinTagLen; ++len) {
    EXPECT_FALSE(cmac_.verify(msg_, BytesView{mac.data(), len}))
        << len << "-byte tag accepted below kMinTagLen";
  }
  // Over-long tags cannot match anything the algorithm produces either.
  std::array<std::uint8_t, 17> oversized{};
  std::copy(mac.begin(), mac.end(), oversized.begin());
  EXPECT_FALSE(cmac_.verify(msg_, oversized));
}

TEST_F(CmacRfc4493, ConstructionRunsExactlyOneKeySchedule) {
  // The key schedule (plus subkey derivation) happens once, at
  // construction; compute()/verify() afterwards never re-expand the key.
  // The dataplane fast path depends on this split: it caches AesCmac
  // contexts per forwarding key and expects MAC checks to be
  // schedule-free.
  const auto before = Aes128::key_schedules_run();
  const AesCmac fresh{array_from_hex<16>("000102030405060708090a0b0c0d0e0f")};
  const auto constructed = Aes128::key_schedules_run();
  EXPECT_EQ(constructed - before, 1u);
  for (int i = 0; i < 32; ++i) {
    const auto mac = fresh.compute(msg_);
    (void)fresh.verify(msg_, BytesView{mac.data(), AesCmac::kMinTagLen});
  }
  EXPECT_EQ(Aes128::key_schedules_run(), constructed);
}

// --- Ed25519 (RFC 8032 test vectors) ---------------------------------------------

TEST(Ed25519Sig, Rfc8032Vector1EmptyMessage) {
  const auto seed = array_from_hex<32>(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
  const auto pk = Ed25519::public_key(seed);
  EXPECT_EQ(to_hex(pk),
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a");
  const auto sig = Ed25519::sign(seed, {});
  EXPECT_EQ(to_hex(sig),
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
            "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b");
  EXPECT_TRUE(Ed25519::verify(pk, {}, sig));
}

TEST(Ed25519Sig, Rfc8032Vector2OneByte) {
  const auto seed = array_from_hex<32>(
      "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb");
  const auto pk = Ed25519::public_key(seed);
  EXPECT_EQ(to_hex(pk),
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c");
  const Bytes msg = hex("72");
  const auto sig = Ed25519::sign(seed, msg);
  EXPECT_EQ(to_hex(sig),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
            "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00");
  EXPECT_TRUE(Ed25519::verify(pk, msg, sig));
}

TEST(Ed25519Sig, RejectsTamperedMessage) {
  Rng rng{7};
  Ed25519::Seed seed{};
  for (auto& b : seed) b = static_cast<std::uint8_t>(rng.next_u64());
  const auto pk = Ed25519::public_key(seed);
  const Bytes msg = bytes_of("path segment payload");
  const auto sig = Ed25519::sign(seed, msg);
  EXPECT_TRUE(Ed25519::verify(pk, msg, sig));
  Bytes tampered = msg;
  tampered[0] ^= 1;
  EXPECT_FALSE(Ed25519::verify(pk, tampered, sig));
}

TEST(Ed25519Sig, RejectsTamperedSignature) {
  Ed25519::Seed seed{};
  seed[0] = 9;
  const auto pk = Ed25519::public_key(seed);
  const Bytes msg = bytes_of("x");
  auto sig = Ed25519::sign(seed, msg);
  sig[40] ^= 0x20;
  EXPECT_FALSE(Ed25519::verify(pk, msg, sig));
}

TEST(Ed25519Sig, RejectsWrongKey) {
  Ed25519::Seed seed_a{}, seed_b{};
  seed_a[0] = 1;
  seed_b[0] = 2;
  const auto pk_b = Ed25519::public_key(seed_b);
  const Bytes msg = bytes_of("trc payload");
  const auto sig = Ed25519::sign(seed_a, msg);
  EXPECT_FALSE(Ed25519::verify(pk_b, msg, sig));
}

// Property sweep: sign/verify round-trips across message sizes.
class Ed25519Property : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Ed25519Property, SignVerifyRoundTrip) {
  Rng rng{GetParam() * 977 + 3};
  Ed25519::Seed seed{};
  for (auto& b : seed) b = static_cast<std::uint8_t>(rng.next_u64());
  Bytes msg(GetParam());
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next_u64());
  const auto pk = Ed25519::public_key(seed);
  const auto sig = Ed25519::sign(seed, msg);
  EXPECT_TRUE(Ed25519::verify(pk, msg, sig));
  if (!msg.empty()) {
    msg[msg.size() / 2] ^= 0x80;
    EXPECT_FALSE(Ed25519::verify(pk, msg, sig));
  }
}

INSTANTIATE_TEST_SUITE_P(MessageSizes, Ed25519Property,
                         ::testing::Values(0, 1, 31, 32, 33, 63, 64, 100, 255,
                                           1024));

// Property sweep: CMAC over random messages, verify + tamper.
class CmacProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CmacProperty, ComputeVerifyTamper) {
  Rng rng{GetParam() + 101};
  Aes128::Key key{};
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u64());
  AesCmac cmac{key};
  Bytes msg(GetParam());
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next_u64());
  const auto mac = cmac.compute(msg);
  EXPECT_TRUE(cmac.verify(msg, mac));
  if (!msg.empty()) {
    Bytes bad = msg;
    bad[0] ^= 1;
    EXPECT_FALSE(cmac.verify(bad, mac));
  }
}

INSTANTIATE_TEST_SUITE_P(MessageSizes, CmacProperty,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 33, 48,
                                           64, 100, 256));

}  // namespace
}  // namespace sciera::crypto
