# Empty dependencies file for green_routing.
# This may be replaced when dependencies are built.
