# Empty compiler generated dependencies file for green_routing.
# This may be replaced when dependencies are built.
