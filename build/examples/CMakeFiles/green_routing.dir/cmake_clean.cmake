file(REMOVE_RECURSE
  "CMakeFiles/green_routing.dir/green_routing.cpp.o"
  "CMakeFiles/green_routing.dir/green_routing.cpp.o.d"
  "green_routing"
  "green_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/green_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
