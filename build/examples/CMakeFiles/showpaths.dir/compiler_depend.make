# Empty compiler generated dependencies file for showpaths.
# This may be replaced when dependencies are built.
