file(REMOVE_RECURSE
  "CMakeFiles/showpaths.dir/showpaths.cpp.o"
  "CMakeFiles/showpaths.dir/showpaths.cpp.o.d"
  "showpaths"
  "showpaths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/showpaths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
