# Empty compiler generated dependencies file for gaming_failover.
# This may be replaced when dependencies are built.
