file(REMOVE_RECURSE
  "CMakeFiles/gaming_failover.dir/gaming_failover.cpp.o"
  "CMakeFiles/gaming_failover.dir/gaming_failover.cpp.o.d"
  "gaming_failover"
  "gaming_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaming_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
