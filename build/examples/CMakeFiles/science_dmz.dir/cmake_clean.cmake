file(REMOVE_RECURSE
  "CMakeFiles/science_dmz.dir/science_dmz.cpp.o"
  "CMakeFiles/science_dmz.dir/science_dmz.cpp.o.d"
  "science_dmz"
  "science_dmz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/science_dmz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
