# Empty dependencies file for science_dmz.
# This may be replaced when dependencies are built.
