# Empty compiler generated dependencies file for fig9_path_deviation.
# This may be replaced when dependencies are built.
