file(REMOVE_RECURSE
  "CMakeFiles/fig9_path_deviation.dir/fig9_path_deviation.cc.o"
  "CMakeFiles/fig9_path_deviation.dir/fig9_path_deviation.cc.o.d"
  "fig9_path_deviation"
  "fig9_path_deviation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_path_deviation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
