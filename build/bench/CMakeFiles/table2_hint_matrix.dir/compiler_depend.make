# Empty compiler generated dependencies file for table2_hint_matrix.
# This may be replaced when dependencies are built.
