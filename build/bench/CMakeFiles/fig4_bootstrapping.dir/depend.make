# Empty dependencies file for fig4_bootstrapping.
# This may be replaced when dependencies are built.
