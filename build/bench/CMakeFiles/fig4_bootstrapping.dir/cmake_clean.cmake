file(REMOVE_RECURSE
  "CMakeFiles/fig4_bootstrapping.dir/fig4_bootstrapping.cc.o"
  "CMakeFiles/fig4_bootstrapping.dir/fig4_bootstrapping.cc.o.d"
  "fig4_bootstrapping"
  "fig4_bootstrapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_bootstrapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
