file(REMOVE_RECURSE
  "CMakeFiles/fig10b_disjointness.dir/fig10b_disjointness.cc.o"
  "CMakeFiles/fig10b_disjointness.dir/fig10b_disjointness.cc.o.d"
  "fig10b_disjointness"
  "fig10b_disjointness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10b_disjointness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
