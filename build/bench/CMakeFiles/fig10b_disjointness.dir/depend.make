# Empty dependencies file for fig10b_disjointness.
# This may be replaced when dependencies are built.
