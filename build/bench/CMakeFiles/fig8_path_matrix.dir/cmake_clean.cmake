file(REMOVE_RECURSE
  "CMakeFiles/fig8_path_matrix.dir/fig8_path_matrix.cc.o"
  "CMakeFiles/fig8_path_matrix.dir/fig8_path_matrix.cc.o.d"
  "fig8_path_matrix"
  "fig8_path_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_path_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
