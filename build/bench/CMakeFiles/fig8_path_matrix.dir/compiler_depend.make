# Empty compiler generated dependencies file for fig8_path_matrix.
# This may be replaced when dependencies are built.
