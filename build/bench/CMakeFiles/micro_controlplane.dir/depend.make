# Empty dependencies file for micro_controlplane.
# This may be replaced when dependencies are built.
