file(REMOVE_RECURSE
  "CMakeFiles/micro_controlplane.dir/micro_controlplane.cc.o"
  "CMakeFiles/micro_controlplane.dir/micro_controlplane.cc.o.d"
  "micro_controlplane"
  "micro_controlplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_controlplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
