# Empty dependencies file for fig7_ratio_timeline.
# This may be replaced when dependencies are built.
