file(REMOVE_RECURSE
  "CMakeFiles/fig7_ratio_timeline.dir/fig7_ratio_timeline.cc.o"
  "CMakeFiles/fig7_ratio_timeline.dir/fig7_ratio_timeline.cc.o.d"
  "fig7_ratio_timeline"
  "fig7_ratio_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_ratio_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
