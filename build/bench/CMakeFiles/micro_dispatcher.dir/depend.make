# Empty dependencies file for micro_dispatcher.
# This may be replaced when dependencies are built.
