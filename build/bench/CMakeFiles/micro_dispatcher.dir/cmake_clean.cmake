file(REMOVE_RECURSE
  "CMakeFiles/micro_dispatcher.dir/micro_dispatcher.cc.o"
  "CMakeFiles/micro_dispatcher.dir/micro_dispatcher.cc.o.d"
  "micro_dispatcher"
  "micro_dispatcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dispatcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
