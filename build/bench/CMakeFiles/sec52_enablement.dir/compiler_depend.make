# Empty compiler generated dependencies file for sec52_enablement.
# This may be replaced when dependencies are built.
