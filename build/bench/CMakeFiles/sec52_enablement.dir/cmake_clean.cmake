file(REMOVE_RECURSE
  "CMakeFiles/sec52_enablement.dir/sec52_enablement.cc.o"
  "CMakeFiles/sec52_enablement.dir/sec52_enablement.cc.o.d"
  "sec52_enablement"
  "sec52_enablement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec52_enablement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
