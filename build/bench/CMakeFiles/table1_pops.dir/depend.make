# Empty dependencies file for table1_pops.
# This may be replaced when dependencies are built.
