file(REMOVE_RECURSE
  "CMakeFiles/table1_pops.dir/table1_pops.cc.o"
  "CMakeFiles/table1_pops.dir/table1_pops.cc.o.d"
  "table1_pops"
  "table1_pops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_pops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
