# Empty dependencies file for fig3_deployment_effort.
# This may be replaced when dependencies are built.
