file(REMOVE_RECURSE
  "CMakeFiles/fig3_deployment_effort.dir/fig3_deployment_effort.cc.o"
  "CMakeFiles/fig3_deployment_effort.dir/fig3_deployment_effort.cc.o.d"
  "fig3_deployment_effort"
  "fig3_deployment_effort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_deployment_effort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
