file(REMOVE_RECURSE
  "CMakeFiles/fig10a_latency_inflation.dir/fig10a_latency_inflation.cc.o"
  "CMakeFiles/fig10a_latency_inflation.dir/fig10a_latency_inflation.cc.o.d"
  "fig10a_latency_inflation"
  "fig10a_latency_inflation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10a_latency_inflation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
