# Empty compiler generated dependencies file for fig10a_latency_inflation.
# This may be replaced when dependencies are built.
