file(REMOVE_RECURSE
  "CMakeFiles/fig6_rtt_ratio.dir/fig6_rtt_ratio.cc.o"
  "CMakeFiles/fig6_rtt_ratio.dir/fig6_rtt_ratio.cc.o.d"
  "fig6_rtt_ratio"
  "fig6_rtt_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_rtt_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
