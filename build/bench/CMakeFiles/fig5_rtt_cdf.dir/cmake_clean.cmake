file(REMOVE_RECURSE
  "CMakeFiles/fig5_rtt_cdf.dir/fig5_rtt_cdf.cc.o"
  "CMakeFiles/fig5_rtt_cdf.dir/fig5_rtt_cdf.cc.o.d"
  "fig5_rtt_cdf"
  "fig5_rtt_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_rtt_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
