file(REMOVE_RECURSE
  "CMakeFiles/fig10c_link_failures.dir/fig10c_link_failures.cc.o"
  "CMakeFiles/fig10c_link_failures.dir/fig10c_link_failures.cc.o.d"
  "fig10c_link_failures"
  "fig10c_link_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10c_link_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
