# Empty dependencies file for fig10c_link_failures.
# This may be replaced when dependencies are built.
