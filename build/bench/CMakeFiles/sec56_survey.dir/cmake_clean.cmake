file(REMOVE_RECURSE
  "CMakeFiles/sec56_survey.dir/sec56_survey.cc.o"
  "CMakeFiles/sec56_survey.dir/sec56_survey.cc.o.d"
  "sec56_survey"
  "sec56_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec56_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
