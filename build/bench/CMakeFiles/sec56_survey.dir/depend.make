# Empty dependencies file for sec56_survey.
# This may be replaced when dependencies are built.
