file(REMOVE_RECURSE
  "CMakeFiles/sciera_controlplane.dir/controlplane/beacon.cc.o"
  "CMakeFiles/sciera_controlplane.dir/controlplane/beacon.cc.o.d"
  "CMakeFiles/sciera_controlplane.dir/controlplane/beaconing.cc.o"
  "CMakeFiles/sciera_controlplane.dir/controlplane/beaconing.cc.o.d"
  "CMakeFiles/sciera_controlplane.dir/controlplane/combinator.cc.o"
  "CMakeFiles/sciera_controlplane.dir/controlplane/combinator.cc.o.d"
  "CMakeFiles/sciera_controlplane.dir/controlplane/control_plane.cc.o"
  "CMakeFiles/sciera_controlplane.dir/controlplane/control_plane.cc.o.d"
  "CMakeFiles/sciera_controlplane.dir/controlplane/path_server.cc.o"
  "CMakeFiles/sciera_controlplane.dir/controlplane/path_server.cc.o.d"
  "CMakeFiles/sciera_controlplane.dir/controlplane/segment.cc.o"
  "CMakeFiles/sciera_controlplane.dir/controlplane/segment.cc.o.d"
  "libsciera_controlplane.a"
  "libsciera_controlplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciera_controlplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
