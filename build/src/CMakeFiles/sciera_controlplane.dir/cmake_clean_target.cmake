file(REMOVE_RECURSE
  "libsciera_controlplane.a"
)
