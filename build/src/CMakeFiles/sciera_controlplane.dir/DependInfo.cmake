
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/controlplane/beacon.cc" "src/CMakeFiles/sciera_controlplane.dir/controlplane/beacon.cc.o" "gcc" "src/CMakeFiles/sciera_controlplane.dir/controlplane/beacon.cc.o.d"
  "/root/repo/src/controlplane/beaconing.cc" "src/CMakeFiles/sciera_controlplane.dir/controlplane/beaconing.cc.o" "gcc" "src/CMakeFiles/sciera_controlplane.dir/controlplane/beaconing.cc.o.d"
  "/root/repo/src/controlplane/combinator.cc" "src/CMakeFiles/sciera_controlplane.dir/controlplane/combinator.cc.o" "gcc" "src/CMakeFiles/sciera_controlplane.dir/controlplane/combinator.cc.o.d"
  "/root/repo/src/controlplane/control_plane.cc" "src/CMakeFiles/sciera_controlplane.dir/controlplane/control_plane.cc.o" "gcc" "src/CMakeFiles/sciera_controlplane.dir/controlplane/control_plane.cc.o.d"
  "/root/repo/src/controlplane/path_server.cc" "src/CMakeFiles/sciera_controlplane.dir/controlplane/path_server.cc.o" "gcc" "src/CMakeFiles/sciera_controlplane.dir/controlplane/path_server.cc.o.d"
  "/root/repo/src/controlplane/segment.cc" "src/CMakeFiles/sciera_controlplane.dir/controlplane/segment.cc.o" "gcc" "src/CMakeFiles/sciera_controlplane.dir/controlplane/segment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sciera_cppki.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sciera_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sciera_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sciera_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sciera_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sciera_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
