# Empty dependencies file for sciera_controlplane.
# This may be replaced when dependencies are built.
