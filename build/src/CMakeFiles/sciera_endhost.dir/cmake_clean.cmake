file(REMOVE_RECURSE
  "CMakeFiles/sciera_endhost.dir/endhost/bootstrap_server.cc.o"
  "CMakeFiles/sciera_endhost.dir/endhost/bootstrap_server.cc.o.d"
  "CMakeFiles/sciera_endhost.dir/endhost/bootstrapper.cc.o"
  "CMakeFiles/sciera_endhost.dir/endhost/bootstrapper.cc.o.d"
  "CMakeFiles/sciera_endhost.dir/endhost/daemon.cc.o"
  "CMakeFiles/sciera_endhost.dir/endhost/daemon.cc.o.d"
  "CMakeFiles/sciera_endhost.dir/endhost/dispatcher.cc.o"
  "CMakeFiles/sciera_endhost.dir/endhost/dispatcher.cc.o.d"
  "CMakeFiles/sciera_endhost.dir/endhost/happy_eyeballs.cc.o"
  "CMakeFiles/sciera_endhost.dir/endhost/happy_eyeballs.cc.o.d"
  "CMakeFiles/sciera_endhost.dir/endhost/hercules.cc.o"
  "CMakeFiles/sciera_endhost.dir/endhost/hercules.cc.o.d"
  "CMakeFiles/sciera_endhost.dir/endhost/hints.cc.o"
  "CMakeFiles/sciera_endhost.dir/endhost/hints.cc.o.d"
  "CMakeFiles/sciera_endhost.dir/endhost/lightning_filter.cc.o"
  "CMakeFiles/sciera_endhost.dir/endhost/lightning_filter.cc.o.d"
  "CMakeFiles/sciera_endhost.dir/endhost/pan.cc.o"
  "CMakeFiles/sciera_endhost.dir/endhost/pan.cc.o.d"
  "CMakeFiles/sciera_endhost.dir/endhost/policy.cc.o"
  "CMakeFiles/sciera_endhost.dir/endhost/policy.cc.o.d"
  "CMakeFiles/sciera_endhost.dir/endhost/traceroute.cc.o"
  "CMakeFiles/sciera_endhost.dir/endhost/traceroute.cc.o.d"
  "libsciera_endhost.a"
  "libsciera_endhost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciera_endhost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
