# Empty compiler generated dependencies file for sciera_endhost.
# This may be replaced when dependencies are built.
