
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/endhost/bootstrap_server.cc" "src/CMakeFiles/sciera_endhost.dir/endhost/bootstrap_server.cc.o" "gcc" "src/CMakeFiles/sciera_endhost.dir/endhost/bootstrap_server.cc.o.d"
  "/root/repo/src/endhost/bootstrapper.cc" "src/CMakeFiles/sciera_endhost.dir/endhost/bootstrapper.cc.o" "gcc" "src/CMakeFiles/sciera_endhost.dir/endhost/bootstrapper.cc.o.d"
  "/root/repo/src/endhost/daemon.cc" "src/CMakeFiles/sciera_endhost.dir/endhost/daemon.cc.o" "gcc" "src/CMakeFiles/sciera_endhost.dir/endhost/daemon.cc.o.d"
  "/root/repo/src/endhost/dispatcher.cc" "src/CMakeFiles/sciera_endhost.dir/endhost/dispatcher.cc.o" "gcc" "src/CMakeFiles/sciera_endhost.dir/endhost/dispatcher.cc.o.d"
  "/root/repo/src/endhost/happy_eyeballs.cc" "src/CMakeFiles/sciera_endhost.dir/endhost/happy_eyeballs.cc.o" "gcc" "src/CMakeFiles/sciera_endhost.dir/endhost/happy_eyeballs.cc.o.d"
  "/root/repo/src/endhost/hercules.cc" "src/CMakeFiles/sciera_endhost.dir/endhost/hercules.cc.o" "gcc" "src/CMakeFiles/sciera_endhost.dir/endhost/hercules.cc.o.d"
  "/root/repo/src/endhost/hints.cc" "src/CMakeFiles/sciera_endhost.dir/endhost/hints.cc.o" "gcc" "src/CMakeFiles/sciera_endhost.dir/endhost/hints.cc.o.d"
  "/root/repo/src/endhost/lightning_filter.cc" "src/CMakeFiles/sciera_endhost.dir/endhost/lightning_filter.cc.o" "gcc" "src/CMakeFiles/sciera_endhost.dir/endhost/lightning_filter.cc.o.d"
  "/root/repo/src/endhost/pan.cc" "src/CMakeFiles/sciera_endhost.dir/endhost/pan.cc.o" "gcc" "src/CMakeFiles/sciera_endhost.dir/endhost/pan.cc.o.d"
  "/root/repo/src/endhost/policy.cc" "src/CMakeFiles/sciera_endhost.dir/endhost/policy.cc.o" "gcc" "src/CMakeFiles/sciera_endhost.dir/endhost/policy.cc.o.d"
  "/root/repo/src/endhost/traceroute.cc" "src/CMakeFiles/sciera_endhost.dir/endhost/traceroute.cc.o" "gcc" "src/CMakeFiles/sciera_endhost.dir/endhost/traceroute.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sciera_controlplane.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sciera_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sciera_cppki.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sciera_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sciera_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sciera_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sciera_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sciera_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
