file(REMOVE_RECURSE
  "libsciera_endhost.a"
)
