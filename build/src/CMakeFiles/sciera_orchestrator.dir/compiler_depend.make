# Empty compiler generated dependencies file for sciera_orchestrator.
# This may be replaced when dependencies are built.
