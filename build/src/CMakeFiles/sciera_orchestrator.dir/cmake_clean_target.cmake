file(REMOVE_RECURSE
  "libsciera_orchestrator.a"
)
