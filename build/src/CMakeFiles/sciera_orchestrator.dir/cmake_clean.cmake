file(REMOVE_RECURSE
  "CMakeFiles/sciera_orchestrator.dir/orchestrator/orchestrator.cc.o"
  "CMakeFiles/sciera_orchestrator.dir/orchestrator/orchestrator.cc.o.d"
  "libsciera_orchestrator.a"
  "libsciera_orchestrator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciera_orchestrator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
