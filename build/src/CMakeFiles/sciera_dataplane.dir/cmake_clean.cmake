file(REMOVE_RECURSE
  "CMakeFiles/sciera_dataplane.dir/dataplane/hopfield.cc.o"
  "CMakeFiles/sciera_dataplane.dir/dataplane/hopfield.cc.o.d"
  "CMakeFiles/sciera_dataplane.dir/dataplane/packet.cc.o"
  "CMakeFiles/sciera_dataplane.dir/dataplane/packet.cc.o.d"
  "CMakeFiles/sciera_dataplane.dir/dataplane/router.cc.o"
  "CMakeFiles/sciera_dataplane.dir/dataplane/router.cc.o.d"
  "CMakeFiles/sciera_dataplane.dir/dataplane/scmp.cc.o"
  "CMakeFiles/sciera_dataplane.dir/dataplane/scmp.cc.o.d"
  "CMakeFiles/sciera_dataplane.dir/dataplane/underlay.cc.o"
  "CMakeFiles/sciera_dataplane.dir/dataplane/underlay.cc.o.d"
  "libsciera_dataplane.a"
  "libsciera_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciera_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
