file(REMOVE_RECURSE
  "libsciera_dataplane.a"
)
