# Empty dependencies file for sciera_dataplane.
# This may be replaced when dependencies are built.
