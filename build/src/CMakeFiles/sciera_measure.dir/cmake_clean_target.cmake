file(REMOVE_RECURSE
  "libsciera_measure.a"
)
