file(REMOVE_RECURSE
  "CMakeFiles/sciera_measure.dir/measure/campaign.cc.o"
  "CMakeFiles/sciera_measure.dir/measure/campaign.cc.o.d"
  "CMakeFiles/sciera_measure.dir/measure/multiping.cc.o"
  "CMakeFiles/sciera_measure.dir/measure/multiping.cc.o.d"
  "libsciera_measure.a"
  "libsciera_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciera_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
