# Empty dependencies file for sciera_measure.
# This may be replaced when dependencies are built.
