
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cppki/ca.cc" "src/CMakeFiles/sciera_cppki.dir/cppki/ca.cc.o" "gcc" "src/CMakeFiles/sciera_cppki.dir/cppki/ca.cc.o.d"
  "/root/repo/src/cppki/certificate.cc" "src/CMakeFiles/sciera_cppki.dir/cppki/certificate.cc.o" "gcc" "src/CMakeFiles/sciera_cppki.dir/cppki/certificate.cc.o.d"
  "/root/repo/src/cppki/trc.cc" "src/CMakeFiles/sciera_cppki.dir/cppki/trc.cc.o" "gcc" "src/CMakeFiles/sciera_cppki.dir/cppki/trc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sciera_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sciera_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
