file(REMOVE_RECURSE
  "CMakeFiles/sciera_cppki.dir/cppki/ca.cc.o"
  "CMakeFiles/sciera_cppki.dir/cppki/ca.cc.o.d"
  "CMakeFiles/sciera_cppki.dir/cppki/certificate.cc.o"
  "CMakeFiles/sciera_cppki.dir/cppki/certificate.cc.o.d"
  "CMakeFiles/sciera_cppki.dir/cppki/trc.cc.o"
  "CMakeFiles/sciera_cppki.dir/cppki/trc.cc.o.d"
  "libsciera_cppki.a"
  "libsciera_cppki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciera_cppki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
