file(REMOVE_RECURSE
  "libsciera_cppki.a"
)
