# Empty compiler generated dependencies file for sciera_cppki.
# This may be replaced when dependencies are built.
