file(REMOVE_RECURSE
  "libsciera_simnet.a"
)
