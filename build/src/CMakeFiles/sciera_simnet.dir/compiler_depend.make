# Empty compiler generated dependencies file for sciera_simnet.
# This may be replaced when dependencies are built.
