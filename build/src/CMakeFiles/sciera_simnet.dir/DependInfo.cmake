
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnet/link.cc" "src/CMakeFiles/sciera_simnet.dir/simnet/link.cc.o" "gcc" "src/CMakeFiles/sciera_simnet.dir/simnet/link.cc.o.d"
  "/root/repo/src/simnet/node.cc" "src/CMakeFiles/sciera_simnet.dir/simnet/node.cc.o" "gcc" "src/CMakeFiles/sciera_simnet.dir/simnet/node.cc.o.d"
  "/root/repo/src/simnet/simulator.cc" "src/CMakeFiles/sciera_simnet.dir/simnet/simulator.cc.o" "gcc" "src/CMakeFiles/sciera_simnet.dir/simnet/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sciera_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
