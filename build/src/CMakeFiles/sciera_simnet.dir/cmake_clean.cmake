file(REMOVE_RECURSE
  "CMakeFiles/sciera_simnet.dir/simnet/link.cc.o"
  "CMakeFiles/sciera_simnet.dir/simnet/link.cc.o.d"
  "CMakeFiles/sciera_simnet.dir/simnet/node.cc.o"
  "CMakeFiles/sciera_simnet.dir/simnet/node.cc.o.d"
  "CMakeFiles/sciera_simnet.dir/simnet/simulator.cc.o"
  "CMakeFiles/sciera_simnet.dir/simnet/simulator.cc.o.d"
  "libsciera_simnet.a"
  "libsciera_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciera_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
