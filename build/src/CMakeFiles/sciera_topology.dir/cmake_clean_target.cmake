file(REMOVE_RECURSE
  "libsciera_topology.a"
)
