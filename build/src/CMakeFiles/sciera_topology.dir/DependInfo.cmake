
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/parser.cc" "src/CMakeFiles/sciera_topology.dir/topology/parser.cc.o" "gcc" "src/CMakeFiles/sciera_topology.dir/topology/parser.cc.o.d"
  "/root/repo/src/topology/sciera_net.cc" "src/CMakeFiles/sciera_topology.dir/topology/sciera_net.cc.o" "gcc" "src/CMakeFiles/sciera_topology.dir/topology/sciera_net.cc.o.d"
  "/root/repo/src/topology/topology.cc" "src/CMakeFiles/sciera_topology.dir/topology/topology.cc.o" "gcc" "src/CMakeFiles/sciera_topology.dir/topology/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sciera_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
