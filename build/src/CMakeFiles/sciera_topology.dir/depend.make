# Empty dependencies file for sciera_topology.
# This may be replaced when dependencies are built.
