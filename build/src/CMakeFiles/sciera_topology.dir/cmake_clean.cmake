file(REMOVE_RECURSE
  "CMakeFiles/sciera_topology.dir/topology/parser.cc.o"
  "CMakeFiles/sciera_topology.dir/topology/parser.cc.o.d"
  "CMakeFiles/sciera_topology.dir/topology/sciera_net.cc.o"
  "CMakeFiles/sciera_topology.dir/topology/sciera_net.cc.o.d"
  "CMakeFiles/sciera_topology.dir/topology/topology.cc.o"
  "CMakeFiles/sciera_topology.dir/topology/topology.cc.o.d"
  "libsciera_topology.a"
  "libsciera_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciera_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
