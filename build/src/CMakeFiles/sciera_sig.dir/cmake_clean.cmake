file(REMOVE_RECURSE
  "CMakeFiles/sciera_sig.dir/sig/sig.cc.o"
  "CMakeFiles/sciera_sig.dir/sig/sig.cc.o.d"
  "libsciera_sig.a"
  "libsciera_sig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciera_sig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
