# Empty compiler generated dependencies file for sciera_sig.
# This may be replaced when dependencies are built.
