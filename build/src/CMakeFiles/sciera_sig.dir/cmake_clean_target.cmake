file(REMOVE_RECURSE
  "libsciera_sig.a"
)
