file(REMOVE_RECURSE
  "CMakeFiles/sciera_bgp.dir/bgp/bgp.cc.o"
  "CMakeFiles/sciera_bgp.dir/bgp/bgp.cc.o.d"
  "libsciera_bgp.a"
  "libsciera_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciera_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
