file(REMOVE_RECURSE
  "libsciera_bgp.a"
)
