# Empty compiler generated dependencies file for sciera_bgp.
# This may be replaced when dependencies are built.
