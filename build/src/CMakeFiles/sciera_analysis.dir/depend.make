# Empty dependencies file for sciera_analysis.
# This may be replaced when dependencies are built.
