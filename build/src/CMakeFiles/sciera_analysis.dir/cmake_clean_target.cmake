file(REMOVE_RECURSE
  "libsciera_analysis.a"
)
