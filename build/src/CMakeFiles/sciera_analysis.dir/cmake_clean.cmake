file(REMOVE_RECURSE
  "CMakeFiles/sciera_analysis.dir/analysis/charts.cc.o"
  "CMakeFiles/sciera_analysis.dir/analysis/charts.cc.o.d"
  "CMakeFiles/sciera_analysis.dir/analysis/resilience.cc.o"
  "CMakeFiles/sciera_analysis.dir/analysis/resilience.cc.o.d"
  "CMakeFiles/sciera_analysis.dir/analysis/stats.cc.o"
  "CMakeFiles/sciera_analysis.dir/analysis/stats.cc.o.d"
  "libsciera_analysis.a"
  "libsciera_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciera_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
