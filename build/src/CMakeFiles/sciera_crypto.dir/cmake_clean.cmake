file(REMOVE_RECURSE
  "CMakeFiles/sciera_crypto.dir/crypto/aes128.cc.o"
  "CMakeFiles/sciera_crypto.dir/crypto/aes128.cc.o.d"
  "CMakeFiles/sciera_crypto.dir/crypto/cmac.cc.o"
  "CMakeFiles/sciera_crypto.dir/crypto/cmac.cc.o.d"
  "CMakeFiles/sciera_crypto.dir/crypto/ed25519.cc.o"
  "CMakeFiles/sciera_crypto.dir/crypto/ed25519.cc.o.d"
  "CMakeFiles/sciera_crypto.dir/crypto/hmac.cc.o"
  "CMakeFiles/sciera_crypto.dir/crypto/hmac.cc.o.d"
  "CMakeFiles/sciera_crypto.dir/crypto/sha256.cc.o"
  "CMakeFiles/sciera_crypto.dir/crypto/sha256.cc.o.d"
  "CMakeFiles/sciera_crypto.dir/crypto/sha512.cc.o"
  "CMakeFiles/sciera_crypto.dir/crypto/sha512.cc.o.d"
  "libsciera_crypto.a"
  "libsciera_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciera_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
