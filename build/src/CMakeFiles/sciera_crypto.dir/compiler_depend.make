# Empty compiler generated dependencies file for sciera_crypto.
# This may be replaced when dependencies are built.
