file(REMOVE_RECURSE
  "libsciera_crypto.a"
)
