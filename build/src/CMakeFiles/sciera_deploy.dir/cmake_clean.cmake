file(REMOVE_RECURSE
  "CMakeFiles/sciera_deploy.dir/deploy/effort.cc.o"
  "CMakeFiles/sciera_deploy.dir/deploy/effort.cc.o.d"
  "CMakeFiles/sciera_deploy.dir/deploy/survey.cc.o"
  "CMakeFiles/sciera_deploy.dir/deploy/survey.cc.o.d"
  "libsciera_deploy.a"
  "libsciera_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciera_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
