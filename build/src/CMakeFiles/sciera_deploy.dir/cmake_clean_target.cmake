file(REMOVE_RECURSE
  "libsciera_deploy.a"
)
