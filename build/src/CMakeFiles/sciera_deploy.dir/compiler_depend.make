# Empty compiler generated dependencies file for sciera_deploy.
# This may be replaced when dependencies are built.
