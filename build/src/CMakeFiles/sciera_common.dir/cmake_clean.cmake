file(REMOVE_RECURSE
  "CMakeFiles/sciera_common.dir/common/buffer.cc.o"
  "CMakeFiles/sciera_common.dir/common/buffer.cc.o.d"
  "CMakeFiles/sciera_common.dir/common/isd_as.cc.o"
  "CMakeFiles/sciera_common.dir/common/isd_as.cc.o.d"
  "CMakeFiles/sciera_common.dir/common/log.cc.o"
  "CMakeFiles/sciera_common.dir/common/log.cc.o.d"
  "CMakeFiles/sciera_common.dir/common/rng.cc.o"
  "CMakeFiles/sciera_common.dir/common/rng.cc.o.d"
  "CMakeFiles/sciera_common.dir/common/strings.cc.o"
  "CMakeFiles/sciera_common.dir/common/strings.cc.o.d"
  "libsciera_common.a"
  "libsciera_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciera_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
