# Empty compiler generated dependencies file for sciera_common.
# This may be replaced when dependencies are built.
