file(REMOVE_RECURSE
  "libsciera_common.a"
)
