# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/simnet_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/cppki_test[1]_include.cmake")
include("/root/repo/build/tests/dataplane_test[1]_include.cmake")
include("/root/repo/build/tests/controlplane_test[1]_include.cmake")
include("/root/repo/build/tests/bgp_test[1]_include.cmake")
include("/root/repo/build/tests/endhost_test[1]_include.cmake")
include("/root/repo/build/tests/measure_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/deploy_test[1]_include.cmake")
include("/root/repo/build/tests/orchestrator_test[1]_include.cmake")
include("/root/repo/build/tests/sig_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/happy_eyeballs_test[1]_include.cmake")
include("/root/repo/build/tests/traceroute_test[1]_include.cmake")
include("/root/repo/build/tests/journey_test[1]_include.cmake")
