add_test([=[Journey.FullStackStory]=]  /root/repo/build/tests/journey_test [==[--gtest_filter=Journey.FullStackStory]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Journey.FullStackStory]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  journey_test_TESTS Journey.FullStackStory)
