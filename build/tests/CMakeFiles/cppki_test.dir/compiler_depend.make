# Empty compiler generated dependencies file for cppki_test.
# This may be replaced when dependencies are built.
