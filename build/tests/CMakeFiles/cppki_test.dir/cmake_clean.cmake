file(REMOVE_RECURSE
  "CMakeFiles/cppki_test.dir/cppki_test.cc.o"
  "CMakeFiles/cppki_test.dir/cppki_test.cc.o.d"
  "cppki_test"
  "cppki_test.pdb"
  "cppki_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cppki_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
