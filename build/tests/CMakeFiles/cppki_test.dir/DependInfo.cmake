
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cppki_test.cc" "tests/CMakeFiles/cppki_test.dir/cppki_test.cc.o" "gcc" "tests/CMakeFiles/cppki_test.dir/cppki_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sciera_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sciera_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sciera_deploy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sciera_orchestrator.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sciera_sig.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sciera_endhost.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sciera_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sciera_controlplane.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sciera_cppki.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sciera_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sciera_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sciera_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sciera_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sciera_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
