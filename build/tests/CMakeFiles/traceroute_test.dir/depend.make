# Empty dependencies file for traceroute_test.
# This may be replaced when dependencies are built.
