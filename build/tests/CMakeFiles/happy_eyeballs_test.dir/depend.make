# Empty dependencies file for happy_eyeballs_test.
# This may be replaced when dependencies are built.
