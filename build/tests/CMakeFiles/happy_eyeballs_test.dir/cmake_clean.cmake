file(REMOVE_RECURSE
  "CMakeFiles/happy_eyeballs_test.dir/happy_eyeballs_test.cc.o"
  "CMakeFiles/happy_eyeballs_test.dir/happy_eyeballs_test.cc.o.d"
  "happy_eyeballs_test"
  "happy_eyeballs_test.pdb"
  "happy_eyeballs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/happy_eyeballs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
