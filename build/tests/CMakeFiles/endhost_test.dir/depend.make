# Empty dependencies file for endhost_test.
# This may be replaced when dependencies are built.
