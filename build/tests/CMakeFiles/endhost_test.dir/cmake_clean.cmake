file(REMOVE_RECURSE
  "CMakeFiles/endhost_test.dir/endhost_test.cc.o"
  "CMakeFiles/endhost_test.dir/endhost_test.cc.o.d"
  "endhost_test"
  "endhost_test.pdb"
  "endhost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/endhost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
