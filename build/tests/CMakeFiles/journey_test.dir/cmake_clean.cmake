file(REMOVE_RECURSE
  "CMakeFiles/journey_test.dir/journey_test.cc.o"
  "CMakeFiles/journey_test.dir/journey_test.cc.o.d"
  "journey_test"
  "journey_test.pdb"
  "journey_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/journey_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
