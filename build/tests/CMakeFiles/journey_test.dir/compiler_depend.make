# Empty compiler generated dependencies file for journey_test.
# This may be replaced when dependencies are built.
