# Sanitizer wiring for the whole tree. Usage:
#
#   cmake -B build-asan -S . -DSCIERA_SANITIZE="address;undefined"
#   cmake -B build-tsan -S . -DSCIERA_SANITIZE=thread
#
# SCIERA_SANITIZE is a semicolon- (or comma-) separated list drawn from
# {address, undefined, leak, thread}. Flags are applied globally so every
# target in src/, tests/, bench/, examples/ and tools/ is instrumented.
# UBSan runs with -fno-sanitize-recover so any report fails the test that
# triggered it. Suppression files live in tools/sanitizers/ and are wired
# up by tools/run_checks.sh.

set(SCIERA_SANITIZE "" CACHE STRING
    "Sanitizers to enable: list of address;undefined;leak;thread")

if(SCIERA_SANITIZE)
  string(REPLACE "," ";" _sciera_san_list "${SCIERA_SANITIZE}")
  set(_sciera_san_names "")
  foreach(_san IN LISTS _sciera_san_list)
    string(STRIP "${_san}" _san)
    if(NOT _san MATCHES "^(address|undefined|leak|thread)$")
      message(FATAL_ERROR
        "SCIERA_SANITIZE: unknown sanitizer '${_san}' "
        "(expected address, undefined, leak, or thread)")
    endif()
    list(APPEND _sciera_san_names "${_san}")
  endforeach()

  if("thread" IN_LIST _sciera_san_names AND
     ("address" IN_LIST _sciera_san_names OR "leak" IN_LIST _sciera_san_names))
    message(FATAL_ERROR
      "SCIERA_SANITIZE: thread cannot be combined with address/leak")
  endif()

  list(JOIN _sciera_san_names "," _sciera_san_arg)
  message(STATUS "SCIERA: sanitizers enabled: ${_sciera_san_arg}")

  add_compile_options(
    -fsanitize=${_sciera_san_arg}
    -fno-omit-frame-pointer
    -fno-optimize-sibling-calls
    -g
  )
  add_link_options(-fsanitize=${_sciera_san_arg})

  if("undefined" IN_LIST _sciera_san_names)
    # Make every UBSan report fatal so instrumented tests fail loudly.
    add_compile_options(-fno-sanitize-recover=undefined)
  endif()
endif()

option(SCIERA_WERROR "Treat compiler warnings as errors" OFF)
if(SCIERA_WERROR)
  add_compile_options(-Werror)
endif()

# Clang thread-safety analysis, driven by the SCIERA_GUARDED_BY /
# SCIERA_REQUIRES annotations in src/common/thread_annotations.h. The
# annotations expand to nothing under GCC (which has no equivalent
# analysis), so the warning flags are gated on the compiler. Always an
# error when available: an unguarded access to annotated state is a bug,
# not a style note.
if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  add_compile_options(-Wthread-safety -Werror=thread-safety)
endif()
