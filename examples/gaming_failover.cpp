// Low-latency gaming (Section 4.7): a Seoul player on a Frankfurt game
// server. The PAN socket pins the lowest-latency path; when the submarine
// cable it uses gets cut mid-session, SCION fails over to the next path
// instantly — no BGP reconvergence, no dropped session.
//
//   $ ./gaming_failover
#include <cstdio>

#include "endhost/pan.h"
#include "topology/sciera_net.h"

using namespace sciera;
using namespace sciera::endhost;

int main() {
  std::printf("== competitive gaming over SCIERA: Seoul -> Frankfurt ==\n\n");
  controlplane::ScionNetwork net{topology::build_sciera()};
  namespace a = topology::ases;

  Daemon player_daemon{net, a::korea_univ()};
  Daemon server_daemon{net, a::geant()};

  auto player_ctx = PanContext::Builder{}
                        .net(net)
                        .address({a::korea_univ(), 0x0A0000AA})
                        .daemon(player_daemon)
                        .build(Rng{11});
  auto server_ctx = PanContext::Builder{}
                        .net(net)
                        .address({a::geant(), 0x0A0000BB})
                        .daemon(server_daemon)
                        .build(Rng{12});

  // Game server: echoes every input as a state update.
  PanSocket* server_ptr = nullptr;
  auto server = PanSocket::open(
      **server_ctx, 27015,
      [&](const dataplane::Address& src, std::uint16_t port,
          const Bytes& data, SimTime) {
        (void)server_ptr->send_to(src, port, data);
      });
  server_ptr = server->get();

  // Player socket with a latency-first policy.
  std::map<std::uint16_t, SimTime> sent;
  std::vector<double> rtts;
  int lost_in_flight = 0;
  auto player = PanSocket::open(
      **player_ctx, 0,
      [&](const dataplane::Address&, std::uint16_t, const Bytes& data,
          SimTime now) {
        const auto seq = static_cast<std::uint16_t>(data.at(0) | (data.at(1) << 8));
        rtts.push_back(to_ms(now - sent.at(seq)));
      });
  (*player)->set_policy(lowest_latency_policy());

  const auto options = (*player_ctx)->paths(a::geant(), lowest_latency_policy());
  std::printf("path options: %zu; playing on: %s\n\n", options.size(),
              options.front().to_string().c_str());
  // Pin the winner; the send receipts reveal when the library has to
  // substitute another path after the cable cut.
  (void)(*player)->select_path(a::geant(), 0);

  // 30 ticks, one every 100 ms; cut the cable after tick 10.
  const auto* first_link =
      net.topology().find_link(options.front().links.front());
  const std::string cut_label =
      net.topology().find_link(options.front().links[1])->label;
  (void)first_link;
  std::uint16_t seq = 0;
  for (int tick = 0; tick < 30; ++tick) {
    if (tick == 10) {
      std::printf("!! submarine cable cut: link '%s' goes dark\n",
                  cut_label.c_str());
      net.set_link_up(cut_label, false);
    }
    Bytes input = {static_cast<std::uint8_t>(seq),
                   static_cast<std::uint8_t>(seq >> 8)};
    input.insert(input.end(), {'m', 'o', 'v', 'e'});
    sent[seq] = net.sim().now();
    const auto receipt = (*player)->send_to({a::geant(), 0x0A0000BB}, 27015,
                                            input);
    if (!receipt.ok()) {
      ++lost_in_flight;
    } else if (receipt->failover) {
      std::printf("   tick %2d rerouted onto %s\n", tick,
                  receipt->path_fingerprint.c_str());
    }
    ++seq;
    net.sim().run_for(100 * kMillisecond);
  }
  net.sim().run_for(2 * kSecond);
  net.set_link_up(cut_label, true);

  std::printf("\ntick RTTs (ms):");
  for (std::size_t i = 0; i < rtts.size(); ++i) {
    if (i % 10 == 0) std::printf("\n  ");
    std::printf("%6.1f", rtts[i]);
  }
  std::printf("\n\nreceived %zu/30 state updates, %d sends failed\n",
              rtts.size(), lost_in_flight);

  // A couple of in-flight packets die with the link; every tick after the
  // daemon-free failover succeeds on the alternative path.
  if (rtts.size() >= 25) {
    std::printf("=> seamless failover: the session survived the cable cut\n");
  } else {
    std::printf("=> failover incomplete, session degraded\n");
  }
  return 0;
}
