// Green routing (Section 4.7): choosing paths by grid carbon intensity
// [Tabaeiaghdaei et al.]. Compares the lowest-latency and lowest-carbon
// path for a set of long-haul pairs and prints the latency premium a
// carbon-aware user pays.
//
//   $ ./green_routing
#include <cstdio>

#include "controlplane/control_plane.h"
#include "endhost/policy.h"
#include "topology/sciera_net.h"

using namespace sciera;
using namespace sciera::endhost;

int main() {
  std::printf("== green routing: carbon-aware path choice ==\n\n");
  controlplane::ScionNetwork net{topology::build_sciera()};
  namespace a = topology::ases;
  const CarbonMap carbon = CarbonMap::sciera_defaults();

  struct Route {
    const char* name;
    IsdAs src, dst;
  };
  const Route routes[] = {
      {"Seoul -> Frankfurt", a::korea_univ(), a::geant()},
      {"Daejeon -> Amsterdam", a::kisti_dj(), a::kisti_ams()},
      {"UVa -> UFMS", a::uva(), a::ufms()},
      {"Singapore -> Zurich", a::nus(), a::eth()},
  };

  std::printf("%-22s %28s %28s %9s %9s\n", "route", "fastest path via",
              "greenest path via", "dRTT", "dCO2");
  for (const auto& route : routes) {
    auto paths = net.paths(route.src, route.dst);
    if (paths.empty()) continue;
    const auto fast = lowest_latency_policy().apply(paths);
    const auto green = green_policy().apply(paths);
    const auto& f = fast.front();
    const auto& g = green.front();
    auto via = [](const controlplane::Path& path) {
      return path.as_sequence.size() > 2
                 ? path.as_sequence[path.as_sequence.size() / 2].to_string()
                 : std::string{"direct"};
    };
    const double f_carbon = path_carbon_score(f, carbon);
    const double g_carbon = path_carbon_score(g, carbon);
    std::printf("%-22s %28s %28s %+7.1fms %+7.0f%%\n", route.name,
                via(f).c_str(), via(g).c_str(),
                to_ms(g.static_rtt - f.static_rtt),
                100.0 * (g_carbon - f_carbon) / f_carbon);
  }

  // The aggregate view: how much carbon does the greenest choice save
  // across every measured pair, and at what latency premium?
  double carbon_saved = 0, latency_premium_ms = 0;
  int pairs = 0;
  for (IsdAs src : topology::measurement_ases()) {
    for (IsdAs dst : topology::path_matrix_ases()) {
      if (src == dst) continue;
      auto paths = net.paths(src, dst);
      if (paths.size() < 2) continue;
      const auto fast = lowest_latency_policy().apply(paths);
      const auto green = green_policy().apply(paths);
      carbon_saved += path_carbon_score(fast.front(), carbon) -
                      path_carbon_score(green.front(), carbon);
      latency_premium_ms += to_ms(green.front().static_rtt -
                                  fast.front().static_rtt);
      ++pairs;
    }
  }
  std::printf("\nacross %d pairs: greenest-vs-fastest saves %.0f intensity "
              "points total at +%.1f ms mean latency premium\n",
              pairs, carbon_saved, latency_premium_ms / pairs);
  std::printf("(positive savings with modest premiums is the incentive "
              "signal Section 4.7 describes)\n");
  return 0;
}
