// `scion showpaths` clone (Section 5.4 collects path statistics with it):
// lists every available path between two SCIERA ASes with hop interfaces,
// static RTT, carbon score, and data-plane usability.
//
//   $ ./showpaths                    # defaults: 71-225 -> 71-2:0:5c
//   $ ./showpaths 71-2:0:3b 71-2:0:3d
#include <cstdio>
#include <cstring>

#include "controlplane/control_plane.h"
#include "endhost/policy.h"
#include "topology/sciera_net.h"

using namespace sciera;

int main(int argc, char** argv) {
  auto src = topology::ases::uva();
  auto dst = topology::ases::ufms();
  if (argc >= 3) {
    const auto parsed_src = IsdAs::parse(argv[1]);
    const auto parsed_dst = IsdAs::parse(argv[2]);
    if (!parsed_src || !parsed_dst) {
      std::fprintf(stderr, "usage: %s <src isd-as> <dst isd-as>\n", argv[0]);
      return 2;
    }
    src = *parsed_src;
    dst = *parsed_dst;
  }

  controlplane::ScionNetwork net{topology::build_sciera()};
  const auto* src_info = net.topology().find_as(src);
  const auto* dst_info = net.topology().find_as(dst);
  if (src_info == nullptr || dst_info == nullptr) {
    std::fprintf(stderr, "unknown AS (see DESIGN.md for the SCIERA set)\n");
    return 2;
  }

  const auto paths = net.paths(src, dst);
  const endhost::CarbonMap carbon = endhost::CarbonMap::sciera_defaults();
  std::printf("Available paths %s (%s) -> %s (%s): %zu\n\n",
              src.to_string().c_str(), src_info->name.c_str(),
              dst.to_string().c_str(), dst_info->name.c_str(), paths.size());

  const std::size_t show = std::min<std::size_t>(paths.size(), 20);
  for (std::size_t i = 0; i < show; ++i) {
    const auto& path = paths[i];
    std::printf("[%2zu] hops: ", i);
    for (std::size_t h = 0; h < path.as_sequence.size(); ++h) {
      if (h > 0) {
        std::printf(" %u>%u ", path.interfaces[2 * (h - 1)].iface,
                    path.interfaces[2 * (h - 1) + 1].iface);
      }
      std::printf("%s", path.as_sequence[h].to_string().c_str());
    }
    std::printf("\n     rtt: %6.1f ms  carbon: %4.0f  segments: %zu  "
                "status: %s\n",
                to_ms(path.static_rtt),
                endhost::path_carbon_score(path, carbon),
                path.dataplane_path.num_segments(),
                net.path_usable(path) ? "alive" : "down");
  }
  if (paths.size() > show) {
    std::printf("... %zu more (capped display)\n", paths.size() - show);
  }
  return paths.empty() ? 1 : 0;
}
