// Science-DMZ (Section 4.7.1): a 500 GB dataset transfer from KISTI
// Daejeon to KISTI Amsterdam over the 20 Gbps KREONET ring, using
// Hercules-style multipath aggregation behind a LightningFilter that
// authenticates and geofences the flow. Shows why the legacy dispatcher
// forced the XDP bypass, and what multipath buys on top.
//
//   $ ./science_dmz
#include <cstdio>

#include "endhost/hercules.h"
#include "endhost/lightning_filter.h"
#include "endhost/policy.h"
#include "topology/sciera_net.h"

using namespace sciera;
using namespace sciera::endhost;

int main() {
  std::printf("== SCIERA Science-DMZ: Daejeon -> Amsterdam bulk transfer ==\n\n");
  controlplane::ScionNetwork net{topology::build_sciera()};
  namespace a = topology::ases;

  constexpr std::uint64_t kFileBytes = 500ull * 1000 * 1000 * 1000;  // 500 GB

  // Geofenced path set: the dataset must not cross the commercial ISD.
  PathPolicy policy = geofence_policy({64});
  auto paths = policy.apply(net.paths(a::kisti_dj(), a::kisti_ams()));
  std::printf("%zu geofenced paths Daejeon -> Amsterdam; using the 6 most "
              "diverse:\n", paths.size());
  // Greedy diverse selection: start from the fastest, add most-disjoint.
  std::vector<controlplane::Path> chosen{paths.front()};
  while (chosen.size() < 6 && chosen.size() < paths.size()) {
    double best_score = -1;
    std::size_t best = 0;
    for (std::size_t i = 0; i < paths.size(); ++i) {
      double score = 1e9;
      for (const auto& have : chosen) {
        score = std::min(score, path_disjointness(paths[i], have));
      }
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    chosen.push_back(paths[best]);
  }
  for (const auto& path : chosen) {
    std::printf("  %s\n", path.to_string().c_str());
  }

  // The three end-host datapath generations (Section 4.8).
  struct Scenario {
    const char* name;
    HerculesConfig config;
  };
  Scenario scenarios[3];
  scenarios[0].name = "legacy dispatcher (one shared UDP port)";
  scenarios[0].config.receiver_mode = HostMode::kDispatcher;
  scenarios[0].config.use_xdp = false;
  scenarios[1].name = "XDP bypass (the Hercules band-aid)";
  scenarios[1].config.use_xdp = true;
  scenarios[2].name = "dispatcherless stack (per-app sockets + RSS)";
  scenarios[2].config.receiver_mode = HostMode::kDispatcherless;
  scenarios[2].config.use_xdp = false;

  std::printf("\n%-45s %14s %14s %12s\n", "receiver datapath", "host cap",
              "achieved", "500GB time");
  for (const auto& scenario : scenarios) {
    Hercules hercules{net.topology(), scenario.config};
    const auto report = hercules.plan(chosen, kFileBytes);
    std::printf("%-45s %11.1f Gb/s %11.1f Gb/s %9.1f min\n", scenario.name,
                report.host_limit_bps / 1e9, report.aggregate_bps / 1e9,
                to_seconds(report.transfer_time) / 60.0);
  }

  // Single path vs multipath, with the XDP receiver.
  HerculesConfig xdp;
  xdp.use_xdp = true;
  Hercules hercules{net.topology(), xdp};
  const auto single = hercules.plan({chosen.front()}, kFileBytes);
  const auto multi = hercules.plan(chosen, kFileBytes);
  std::printf("\nmultipath aggregation: 1 path %.1f Gb/s -> %zu paths %.1f "
              "Gb/s (%.1fx)\n",
              single.aggregate_bps / 1e9, chosen.size(),
              multi.aggregate_bps / 1e9,
              multi.aggregate_bps / single.aggregate_bps);

  // LightningFilter in front of the transfer node.
  std::printf("\nLightningFilter at the Amsterdam transfer node:\n");
  LightningFilter::Config filter_config;
  filter_config.allowed_sources = {a::kisti_dj()};
  LightningFilter filter{bytes_of("ams-dmz-secret"), filter_config};
  std::printf("  line rate: %.0f Gb/s with RSS over 8 cores (%.0f Gb/s on "
              "one queue)\n",
              filter.throughput_bps(1500, true) / 1e9,
              filter.throughput_bps(1500, false) / 1e9);

  // Authenticated chunk accepted; forged and foreign traffic dropped.
  dataplane::ScionPacket chunk;
  chunk.src = {a::kisti_dj(), 1};
  chunk.dst = {a::kisti_ams(), 2};
  Bytes payload = bytes_of("chunk-000001");
  const Bytes tag = filter.make_authenticator(chunk.src.ia, payload);
  chunk.payload = payload;
  chunk.payload.insert(chunk.payload.end(), tag.begin(), tag.end());
  const auto ok = filter.check(chunk, 0);

  dataplane::ScionPacket forged = chunk;
  forged.payload[3] ^= 1;
  const auto bad = filter.check(forged, kMicrosecond);

  dataplane::ScionPacket foreign = chunk;
  foreign.src = {a::cityu(), 9};
  const auto outsider = filter.check(foreign, 2 * kMicrosecond);

  std::printf("  authenticated chunk: %s | tampered chunk: %s | foreign AS: "
              "%s\n",
              ok == LightningFilter::Verdict::kAccept ? "ACCEPT" : "DROP",
              bad == LightningFilter::Verdict::kDropAuth ? "DROP(auth)" : "?",
              outsider == LightningFilter::Verdict::kDropRule ? "DROP(rule)"
                                                              : "?");
  return 0;
}
