// Quickstart: stand up the SCIERA network, bootstrap an end host with zero
// configuration (standalone mode — no daemon, no pre-installed
// bootstrapper), inspect the path options to a destination on another
// continent, and exchange a message over the drop-in socket.
//
//   $ ./quickstart
#include <cstdio>

#include "endhost/pan.h"
#include "topology/sciera_net.h"

using namespace sciera;
using namespace sciera::endhost;

int main() {
  std::printf("== SCIERA quickstart ==\n\n");

  // 1. The network: ISD 71 + the Swiss ISD, PKIs, beaconing, routers.
  controlplane::ScionNetwork net{topology::build_sciera()};
  std::printf("network up: %zu ASes, %zu links, %zu path segments\n",
              net.topology().ases().size(), net.topology().links().size(),
              net.segments().size());

  // 2. A laptop joins the OVGU campus network. Nothing is installed: the
  //    application library bootstraps itself ("it will just work").
  namespace a = topology::ases;
  const auto* creds = net.pki(71)->credentials(a::ovgu());
  const std::vector<cppki::Trc> trcs{net.pki(71)->trc()};
  const BootstrapServer bootstrap_server{
      a::ovgu(), local_topology_view(net.topology(), a::ovgu()), *creds,
      trcs};

  auto ctx = PanContext::Builder{}
                 .net(net)
                 .address({a::ovgu(), 0x0A00002A})
                 .bootstrap_server(bootstrap_server)
                 .build(Rng{2025});
  if (!ctx.ok()) {
    std::printf("bootstrap failed: %s\n", ctx.error().to_string().c_str());
    return 1;
  }
  std::printf("host %s bootstrapped in %s mode, %.1f ms\n\n",
              (*ctx)->local_address().to_string().c_str(),
              stack_mode_name((*ctx)->mode()),
              to_ms((*ctx)->bootstrap_time()));

  // 3. Path awareness: the options to UFMS in Brazil.
  const auto paths = (*ctx)->paths(a::ufms());
  std::printf("%zu paths to UFMS (%s); the three best:\n", paths.size(),
              a::ufms().to_string().c_str());
  for (std::size_t i = 0; i < std::min<std::size_t>(3, paths.size()); ++i) {
    std::printf("  [%zu] %s\n", i, paths[i].to_string().c_str());
  }

  // 4. A server at UFMS and a message round trip over the drop-in socket.
  Daemon ufms_daemon{net, a::ufms()};
  auto server_ctx = PanContext::Builder{}
                        .net(net)
                        .address({a::ufms(), 0x0A000001})
                        .daemon(ufms_daemon)
                        .build(Rng{7});
  PanSocket* server_ptr = nullptr;
  auto server = PanSocket::open(
      **server_ctx, 7777,
      [&](const dataplane::Address& src, std::uint16_t port,
          const Bytes& data, SimTime) {
        std::printf("  [UFMS] got \"%s\" from %s\n",
                    std::string(data.begin(), data.end()).c_str(),
                    src.to_string().c_str());
        (void)server_ptr->send_to(src, port, bytes_of("ola from Campo Grande"));
      });
  server_ptr = server->get();

  SimTime sent_at = 0;
  auto client = PanSocket::open(
      **ctx, 0,
      [&](const dataplane::Address&, std::uint16_t, const Bytes& data,
          SimTime now) {
        std::printf("  [OVGU] reply \"%s\" after %.1f ms\n",
                    std::string(data.begin(), data.end()).c_str(),
                    to_ms(now - sent_at));
      });

  std::printf("\nsending over SCIERA (Magdeburg -> Campo Grande)...\n");
  sent_at = net.sim().now();
  auto receipt = (*client)->send_to({a::ufms(), 0x0A000001}, 7777,
                                    bytes_of("hello from Magdeburg"));
  if (receipt.ok()) {
    std::printf("  queued %zu bytes in %s mode, path %s\n",
                receipt->bytes_queued, stack_mode_name(receipt->mode),
                receipt->path_fingerprint.c_str());
  }
  net.sim().run_for(3 * kSecond);

  std::printf("\ndone.\n");
  return 0;
}
