// Path combination: joins up-, core-, and down-segments into end-to-end
// forwarding paths, including core joins, common-AS shortcuts and peering
// shortcuts (Section 2: "a collection of path segments typically allows
// for a variety of combinations, including shortcuts and utilization of
// peering links"). Produces ready-to-send data-plane paths plus the
// metadata the measurement tooling needs (AS sequence, globally unique
// interface IDs, link ids, static RTT estimate).
#pragma once

#include <string>
#include <vector>

#include "controlplane/segment.h"
#include "topology/topology.h"

namespace sciera::controlplane {

struct Path {
  dataplane::ScionPath dataplane_path;  // pointers at 0, seg_ids primed
  std::vector<IsdAs> as_sequence;       // src first, dst last
  // Every interface crossed, as globally unique IDs (Section 5.4's
  // disjointness metric operates on these).
  std::vector<GlobalIfaceId> interfaces;
  std::vector<topology::LinkId> links;
  Duration static_rtt = 0;  // 2x propagation, no queueing

  [[nodiscard]] std::size_t hop_count() const { return as_sequence.size(); }
  [[nodiscard]] std::string fingerprint() const;
  [[nodiscard]] std::string to_string() const;
};

// Paper metric (Section 5.5): |distinct interfaces| / |total interfaces|
// across two paths.
[[nodiscard]] double path_disjointness(const Path& a, const Path& b);

struct CombinatorOptions {
  std::size_t max_paths = 250;
  bool allow_shortcuts = true;
  bool allow_peering = true;
};

class Combinator {
 public:
  Combinator(const topology::Topology& topo, const SegmentStore& store)
      : topo_(topo), store_(store) {}

  // All loop-free paths from src to dst, sorted by (#hops, RTT, id).
  [[nodiscard]] std::vector<Path> combine(
      IsdAs src, IsdAs dst, const CombinatorOptions& options = {}) const;

 private:
  // A traversal-ordered slice of a segment.
  struct Piece {
    const PathSegment* seg = nullptr;
    std::size_t cut = 0;     // construction index where the slice starts/ends
    bool along = true;       // traversal along construction direction
    // Peer-entry index at the cut hop (-1: use the main hop field).
    int peer_index = -1;
  };

  [[nodiscard]] bool append_piece(Path& path, const Piece& piece) const;
  [[nodiscard]] std::vector<Path> assemble(
      const std::vector<std::vector<Piece>>& combos, IsdAs src, IsdAs dst,
      const CombinatorOptions& options) const;

  const topology::Topology& topo_;
  const SegmentStore& store_;
};

}  // namespace sciera::controlplane
