// ScionNetwork: the facade wiring everything together into a running
// network — per-ISD PKIs with automated certificate renewal, per-AS
// forwarding keys, border routers attached to simulated links, beaconing,
// path servers, and host attachment. This is the object experiments and
// examples instantiate.
#pragma once

#include <map>
#include <memory>

#include "controlplane/beaconing.h"
#include "controlplane/control_service_set.h"
#include "controlplane/path_server.h"
#include "dataplane/router.h"
#include "obs/metrics.h"
#include "simnet/shard.h"
#include "simnet/simulator.h"
#include "topology/topology.h"

namespace sciera::controlplane {

// Self-healing control plane (DESIGN.md §10). When enabled, beaconing
// becomes a simulator-driven process: periodic refresh sweeps re-originate
// PCBs over live links, segments carry an expiry and age out when not
// refreshed, and link up/down transitions trigger an incremental sweep
// after a detection delay — a cut circuit's segments are revoked and a
// restored circuit's segments reappear without any manual run_beaconing().
struct SelfHealingOptions {
  bool enabled = false;
  // Period of the timer-driven refresh sweep (beacon re-origination).
  Duration refresh_interval = 2 * kSecond;
  // Lifetime stamped on (re)originated segments; a segment that misses
  // `segment_lifetime / refresh_interval` consecutive sweeps expires.
  Duration segment_lifetime = 5 * kSecond;
  // Delay between a link state transition and the triggered sweep,
  // modelling keepalive/SCMP detection latency.
  Duration detection_delay = 200 * kMillisecond;
};

// Observable state of the healing loop, for reports and tests. Reconverge
// durations are -1 until the first event-triggered sweep completes.
struct HealingSnapshot {
  std::uint64_t sweeps = 0;
  std::uint64_t segments_expired = 0;
  std::uint64_t segments_revoked = 0;
  Duration last_reconverge = -1;
  Duration max_reconverge = -1;
};

class ScionNetwork {
 public:
  struct Options {
    std::uint64_t seed = 0x5C1E2A;
    BeaconingOptions beaconing{};
    // Multiplicative log-normal jitter applied per link traversal.
    double link_jitter_sigma = 0.015;
    double link_loss_probability = 0.0;
    Duration trc_validity = 365 * kDay;
    // Event-scheduler backend for the network's simulator. The calendar
    // queue is the production default; kBinaryHeap exists for equivalence
    // testing and as the referee for the ordering contract. scheduler
    // geometry also selects the parallel core: shards > 1 partitions the
    // network per shard_policy (shard count clamped to the partition key
    // count, threads clamped to shards).
    simnet::SchedulerConfig scheduler{};
    // How ASes fold into shards when scheduler.shards > 1 (see shard.h).
    simnet::ShardPolicy shard_policy = simnet::ShardPolicy::kPerAs;
    // Path-service replicas per AS (>= 1). Replica 0 keeps the legacy
    // metric naming, so 1 is byte-identical to the pre-replication stack.
    std::size_t control_replicas = 1;
    SelfHealingOptions healing{};
    // Border-router forwarding configuration (batched fast path, MAC
    // cache). Batched and scalar modes execute identical schedules; the
    // scalar referee exists for equivalence testing.
    dataplane::BorderRouter::Config router{};
  };

  ScionNetwork(topology::Topology topo, Options options);
  explicit ScionNetwork(topology::Topology topo)
      : ScionNetwork(std::move(topo), Options{}) {}

  [[nodiscard]] simnet::Simulator& sim() { return sim_; }
  [[nodiscard]] const topology::Topology& topology() const { return topo_; }
  [[nodiscard]] const Options& options() const { return options_; }

  // --- Sharding -------------------------------------------------------------
  [[nodiscard]] const simnet::ShardMap& shard_map() const { return shard_map_; }
  [[nodiscard]] bool sharded() const { return shard_map_.shard_count() > 1; }
  // Scheduling domain that owns an AS's events: its shard when the
  // network is sharded, the global domain otherwise (the single-queue
  // core ignores domains).
  [[nodiscard]] simnet::Domain domain_of(IsdAs ia) const {
    return sharded() ? shard_map_.domain_of(ia) : simnet::Domain::global();
  }

  // --- Control plane -------------------------------------------------------
  [[nodiscard]] cppki::IsdPki* pki(Isd isd);
  [[nodiscard]] const SegmentStore& segments() const { return segments_; }
  // Re-runs beaconing (e.g. after topology/link changes) and flushes the
  // path-server caches.
  void run_beaconing();
  // Runs a beaconing sweep with custom options WITHOUT installing the
  // result — for ablations of selection policy / k-best / depth caps.
  [[nodiscard]] SegmentStore beacon_with(const BeaconingOptions& options) const;
  [[nodiscard]] std::vector<Path> paths(
      IsdAs src, IsdAs dst, const CombinatorOptions& options = {}) const;
  // Legacy accessor: the primary replica of the AS's service set. Prefer
  // control_service_set() — endhost code must go through the set (lint
  // rule direct-control-lookup).
  [[nodiscard]] ControlService* control_service(IsdAs ia);
  [[nodiscard]] ControlServiceSet* control_service_set(IsdAs ia);

  // --- Self-healing ---------------------------------------------------------
  [[nodiscard]] HealingSnapshot healing_snapshot() const;

  // --- Data plane -----------------------------------------------------------
  [[nodiscard]] dataplane::BorderRouter* router(IsdAs ia);
  [[nodiscard]] simnet::Link* link(topology::LinkId id);
  [[nodiscard]] simnet::Link* link(std::string_view label);
  void set_link_up(std::string_view label, bool up);
  [[nodiscard]] const dataplane::FwdKey& fwd_key(IsdAs ia) const {
    return fwd_keys_.at(ia);
  }

  // A path is usable on the data plane iff all its links are up.
  [[nodiscard]] bool path_usable(const Path& path) const;

  // --- Hosts ----------------------------------------------------------------
  using HostHandler =
      std::function<void(const dataplane::ScionPacket&, SimTime)>;
  // Registers a host address within its AS; local deliveries for that
  // address are handed to the handler (the end-host stack demuxes further).
  Status register_host(const dataplane::Address& addr, HostHandler handler);
  void unregister_host(const dataplane::Address& addr);
  // Hands a packet from a host to its AS border router.
  Status send_from_host(const dataplane::ScionPacket& packet);

  // Runs the PKI renewal sweep (the orchestrator cron job).
  std::size_t renew_certificates();

 private:
  void build_data_plane();
  void dispatch_local(IsdAs ia, const dataplane::ScionPacket& packet,
                      SimTime arrival);
  void start_healing();
  void on_link_state_change(SimTime at);
  void healing_tick();
  void healing_sweep();
  void publish_segment_gauges();

  // Initialization order is load-bearing: the shard map is derived from
  // the topology and the requested shard count, and the normalized
  // options (shards clamped to the map's actual count) configure the
  // simulator's queue layout.
  topology::Topology topo_;
  simnet::ShardMap shard_map_;
  Options options_;
  simnet::Simulator sim_;
  Rng rng_;
  std::map<Isd, std::unique_ptr<cppki::IsdPki>> pkis_;
  std::unordered_map<IsdAs, dataplane::FwdKey> fwd_keys_;    // lookup-only
  std::unordered_map<IsdAs, std::unique_ptr<dataplane::BorderRouter>>
      routers_;  // lookup-only
  std::vector<std::unique_ptr<simnet::Link>> links_;
  SegmentStore segments_;
  // Ordered: beaconing sweeps walk every service to flush caches, and the
  // set is populated lazily in first-lookup order — hash-order flushes
  // would make the walk depend on which host asked first.
  std::map<IsdAs, std::unique_ptr<ControlServiceSet>> services_;
  std::map<std::pair<std::uint64_t, std::uint32_t>, HostHandler> hosts_;
  std::string metrics_label_;
  obs::Counter* beaconing_runs_ = nullptr;
  obs::Gauge* segments_up_ = nullptr;
  obs::Gauge* segments_core_ = nullptr;
  obs::Gauge* segments_down_ = nullptr;

  // Self-healing state (all inert unless options_.healing.enabled).
  bool change_pending_ = false;
  SimTime earliest_change_at_ = 0;
  Duration last_reconverge_ = -1;
  Duration max_reconverge_ = -1;
  obs::Counter* healing_sweeps_ = nullptr;
  obs::Counter* segments_expired_ = nullptr;
  obs::Counter* segments_revoked_ = nullptr;
  obs::Gauge* reconverge_ms_ = nullptr;
};

}  // namespace sciera::controlplane
