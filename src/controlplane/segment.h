// Path segments: PCBs that have been registered at path servers. A PCB
// terminating at AS X becomes an up-segment for X (registered locally)
// and/or a down-segment for X (registered at the origin's core path
// server); PCBs between core ASes become core segments.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/time.h"
#include "controlplane/beacon.h"
#include "topology/topology.h"

namespace sciera::controlplane {

enum class SegType : std::uint8_t { kUp = 0, kCore = 1, kDown = 2 };

[[nodiscard]] const char* seg_type_name(SegType type);

struct PathSegment {
  SegType type = SegType::kUp;
  Pcb pcb;
  // Topology links the PCB walked over, in construction order. Lets the
  // self-healing sweep revoke segments that traverse a cut circuit
  // without re-deriving the walk from interface ids.
  std::vector<topology::LinkId> links;
  // Absolute sim time after which the segment is no longer served;
  // 0 = never expires (one-shot beaconing keeps the legacy behavior).
  SimTime expires_at = 0;

  [[nodiscard]] IsdAs origin() const { return pcb.origin(); }
  [[nodiscard]] IsdAs terminus() const { return pcb.terminus(); }
  [[nodiscard]] std::string fingerprint() const {
    return std::string{seg_type_name(type)} + ":" + pcb.fingerprint();
  }
};

// Outcome of one refresh sweep: how the store changed.
struct RefreshDelta {
  std::size_t refreshed = 0;  // existing segments whose expiry was extended
  std::size_t added = 0;      // newly learned segments
  std::size_t expired = 0;    // dropped: not re-originated and past expiry
  std::size_t revoked = 0;    // dropped: traverse a link that is down
};

// Segment database used both by path servers and the combinator.
class SegmentStore {
 public:
  void add(PathSegment segment);

  // Up-segments for an AS: segments whose terminus is `leaf`.
  [[nodiscard]] std::vector<const PathSegment*> ups_of(IsdAs leaf) const;
  // Down-segments toward an AS.
  [[nodiscard]] std::vector<const PathSegment*> downs_to(IsdAs leaf) const;
  // Core segments usable to travel from core `from` to core `to`: the
  // construction origin is `to` and the terminus is `from` (core segments
  // are traversed against construction direction).
  [[nodiscard]] std::vector<const PathSegment*> cores_from_to(IsdAs from,
                                                              IsdAs to) const;
  // All core segments originated by `origin`.
  [[nodiscard]] std::vector<const PathSegment*> cores_of(IsdAs origin) const;

  [[nodiscard]] std::size_t size() const { return segments_.size(); }
  [[nodiscard]] const std::vector<PathSegment>& all() const {
    return segments_;
  }
  [[nodiscard]] std::size_t count(SegType type) const;

  // Drops segments whose expires_at is set and <= now. Returns how many
  // were removed. Relative order of survivors is preserved.
  std::size_t prune_expired(SimTime now);

  // One self-healing sweep: merges a freshly beaconed store into this one.
  //  - A current segment re-originated in `fresh` (same fingerprint) has
  //    its expiry extended to `new_expiry` (refreshed).
  //  - A current segment traversing any link for which `link_up` returns
  //    false is dropped (revoked). A null predicate revokes nothing.
  //  - A current segment absent from `fresh` with expires_at <= now is
  //    dropped (expired); if still within its lifetime it is kept, so a
  //    transient beaconing gap does not instantly erase the path set.
  //  - Segments only in `fresh` are appended with `new_expiry` (added).
  // Ordering is deterministic: surviving segments keep their relative
  // order, fresh additions follow in beaconing order.
  RefreshDelta refresh(const SegmentStore& fresh, SimTime now,
                       SimTime new_expiry,
                       const std::function<bool(topology::LinkId)>& link_up);

 private:
  std::vector<PathSegment> segments_;
};

}  // namespace sciera::controlplane
