// Path segments: PCBs that have been registered at path servers. A PCB
// terminating at AS X becomes an up-segment for X (registered locally)
// and/or a down-segment for X (registered at the origin's core path
// server); PCBs between core ASes become core segments.
#pragma once

#include <string>
#include <vector>

#include "controlplane/beacon.h"

namespace sciera::controlplane {

enum class SegType : std::uint8_t { kUp = 0, kCore = 1, kDown = 2 };

[[nodiscard]] const char* seg_type_name(SegType type);

struct PathSegment {
  SegType type = SegType::kUp;
  Pcb pcb;

  [[nodiscard]] IsdAs origin() const { return pcb.origin(); }
  [[nodiscard]] IsdAs terminus() const { return pcb.terminus(); }
  [[nodiscard]] std::string fingerprint() const {
    return std::string{seg_type_name(type)} + ":" + pcb.fingerprint();
  }
};

// Segment database used both by path servers and the combinator.
class SegmentStore {
 public:
  void add(PathSegment segment);

  // Up-segments for an AS: segments whose terminus is `leaf`.
  [[nodiscard]] std::vector<const PathSegment*> ups_of(IsdAs leaf) const;
  // Down-segments toward an AS.
  [[nodiscard]] std::vector<const PathSegment*> downs_to(IsdAs leaf) const;
  // Core segments usable to travel from core `from` to core `to`: the
  // construction origin is `to` and the terminus is `from` (core segments
  // are traversed against construction direction).
  [[nodiscard]] std::vector<const PathSegment*> cores_from_to(IsdAs from,
                                                              IsdAs to) const;
  // All core segments originated by `origin`.
  [[nodiscard]] std::vector<const PathSegment*> cores_of(IsdAs origin) const;

  [[nodiscard]] std::size_t size() const { return segments_.size(); }
  [[nodiscard]] const std::vector<PathSegment>& all() const {
    return segments_;
  }
  [[nodiscard]] std::size_t count(SegType type) const;

 private:
  std::vector<PathSegment> segments_;
};

}  // namespace sciera::controlplane
