// Replicated path service for an AS: N independent ControlService
// replicas sharing the segment store, each with its own cache,
// availability/slowdown fault hooks, and metric series. Replica 0 is the
// "primary" and keeps the legacy single-service metric naming; replica k
// is labelled "<ia>#rk". Clients (endhost::Daemon) fail over across
// replicas in deterministic index order — the set itself provides a
// simple first-available sync lookup for infrastructure tooling.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "controlplane/path_server.h"

namespace sciera::controlplane {

class ControlServiceSet {
 public:
  ControlServiceSet(simnet::Simulator& sim, IsdAs ia,
                    const topology::Topology& topo, const SegmentStore& store,
                    const cppki::Trc* local_trc, std::size_t replicas,
                    ControlService::Config config = {});

  [[nodiscard]] IsdAs isd_as() const { return ia_; }
  [[nodiscard]] std::size_t size() const { return replicas_.size(); }
  [[nodiscard]] ControlService* replica(std::size_t index) {
    return index < replicas_.size() ? replicas_[index].get() : nullptr;
  }
  [[nodiscard]] ControlService* primary() { return replicas_.front().get(); }

  // Sync lookup with replica failover: asks the first available replica
  // in index order. With every replica down it charges the miss to the
  // primary (one dropped lookup) and returns the empty set.
  [[nodiscard]] const std::vector<Path>& lookup_paths_now(IsdAs dst);

  void flush_caches() {
    for (auto& replica : replicas_) replica->flush_cache();
  }

  // Aggregates across replicas.
  [[nodiscard]] std::uint64_t lookups_dropped() const;
  [[nodiscard]] std::uint64_t lookups_total() const;

 private:
  IsdAs ia_;
  std::vector<std::unique_ptr<ControlService>> replicas_;
};

}  // namespace sciera::controlplane
