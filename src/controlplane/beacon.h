// Path-segment construction beacons (PCBs). Core ASes originate PCBs and
// every AS on the way appends a signed entry containing its hop field
// (Section 2, "beaconing"). Signatures cover the whole upstream chain, so
// a tampered entry anywhere invalidates the beacon.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/isd_as.h"
#include "common/result.h"
#include "crypto/ed25519.h"
#include "dataplane/hopfield.h"

namespace sciera::controlplane {

// A peering offer attached to an AS entry: "you may enter/leave the
// segment at this AS through this peering link".
struct PeerEntry {
  IsdAs peer_ia;
  IfaceId local_iface = 0;   // this AS's interface on the peering link
  IfaceId remote_iface = 0;  // the peer's interface (bookkeeping)
  dataplane::HopField hop;   // peering hop field (hop.peering == true)
};

struct AsEntry {
  IsdAs ia;
  dataplane::HopField hop;  // main hop field for this AS
  // Accumulator value the MAC was computed with; carried so path servers
  // and the combinator can splice segments mid-way (shortcuts).
  std::uint16_t beta = 0;
  std::vector<PeerEntry> peers;
  crypto::Ed25519::Signature signature{};

  // Canonical bytes covered by this entry's signature (excluding the
  // signature itself); `chain_hash` binds all upstream entries.
  [[nodiscard]] Bytes signing_payload(BytesView chain_hash) const;
  // Hash of this entry including its signature, input to the next link of
  // the chain.
  [[nodiscard]] Bytes chain_digest(BytesView prev_chain_hash) const;
};

struct Pcb {
  std::uint32_t timestamp = 0;     // origination time (unix seconds)
  std::uint16_t initial_beta = 0;  // beta_0 of the segment's MAC chain
  std::vector<AsEntry> entries;    // construction order; [0] is the origin

  [[nodiscard]] IsdAs origin() const { return entries.front().ia; }
  [[nodiscard]] IsdAs terminus() const { return entries.back().ia; }
  [[nodiscard]] std::size_t length() const { return entries.size(); }
  [[nodiscard]] bool contains(IsdAs ia) const;

  [[nodiscard]] Bytes header_payload() const;

  // Stable identity: origin, terminus and the interface chain.
  [[nodiscard]] std::string fingerprint() const;
};

// Key/cert lookup used during PCB verification.
using KeyLookup =
    std::function<const crypto::Ed25519::PublicKey*(IsdAs as)>;

// Verifies every entry's signature against the chain. Does not check hop
// MACs (those are AS-secret-keyed and checked by routers on forwarding).
[[nodiscard]] Status verify_pcb(const Pcb& pcb, const KeyLookup& keys);

// Signs entry `index` of the PCB in place (entries before it must already
// be signed — the chain hash depends on them).
void sign_entry(Pcb& pcb, std::size_t index,
                const crypto::Ed25519::Seed& seed);

}  // namespace sciera::controlplane
