#include "controlplane/segment.h"

#include "common/check.h"

namespace sciera::controlplane {

const char* seg_type_name(SegType type) {
  switch (type) {
    case SegType::kUp: return "up";
    case SegType::kCore: return "core";
    case SegType::kDown: return "down";
  }
  return "?";
}

void SegmentStore::add(PathSegment segment) {
  // A registered segment is always a materialized PCB: at least one entry,
  // and a real origin AS. Beaconing can only produce such segments, so an
  // empty one here means the registration pipeline corrupted it.
  SCIERA_CHECK(!segment.pcb.entries.empty(), "controlplane.empty_segment");
  // Drop exact duplicates (same type and interface chain).
  const std::string fp = segment.fingerprint();
  for (const auto& existing : segments_) {
    if (existing.fingerprint() == fp) return;
  }
  segments_.push_back(std::move(segment));
}

std::vector<const PathSegment*> SegmentStore::ups_of(IsdAs leaf) const {
  std::vector<const PathSegment*> out;
  for (const auto& segment : segments_) {
    if (segment.type == SegType::kUp && segment.terminus() == leaf) {
      out.push_back(&segment);
    }
  }
  return out;
}

std::vector<const PathSegment*> SegmentStore::downs_to(IsdAs leaf) const {
  std::vector<const PathSegment*> out;
  for (const auto& segment : segments_) {
    if (segment.type == SegType::kDown && segment.terminus() == leaf) {
      out.push_back(&segment);
    }
  }
  return out;
}

std::vector<const PathSegment*> SegmentStore::cores_from_to(IsdAs from,
                                                            IsdAs to) const {
  std::vector<const PathSegment*> out;
  for (const auto& segment : segments_) {
    if (segment.type == SegType::kCore && segment.origin() == to &&
        segment.terminus() == from) {
      out.push_back(&segment);
    }
  }
  return out;
}

std::vector<const PathSegment*> SegmentStore::cores_of(IsdAs origin) const {
  std::vector<const PathSegment*> out;
  for (const auto& segment : segments_) {
    if (segment.type == SegType::kCore && segment.origin() == origin) {
      out.push_back(&segment);
    }
  }
  return out;
}

std::size_t SegmentStore::count(SegType type) const {
  std::size_t n = 0;
  for (const auto& segment : segments_) {
    if (segment.type == type) ++n;
  }
  return n;
}

}  // namespace sciera::controlplane
