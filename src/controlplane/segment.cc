#include "controlplane/segment.h"

#include <unordered_set>

#include "common/check.h"

namespace sciera::controlplane {

const char* seg_type_name(SegType type) {
  switch (type) {
    case SegType::kUp: return "up";
    case SegType::kCore: return "core";
    case SegType::kDown: return "down";
  }
  return "?";
}

void SegmentStore::add(PathSegment segment) {
  // A registered segment is always a materialized PCB: at least one entry,
  // and a real origin AS. Beaconing can only produce such segments, so an
  // empty one here means the registration pipeline corrupted it.
  SCIERA_CHECK(!segment.pcb.entries.empty(), "controlplane.empty_segment");
  // Drop exact duplicates (same type and interface chain).
  const std::string fp = segment.fingerprint();
  for (const auto& existing : segments_) {
    if (existing.fingerprint() == fp) return;
  }
  segments_.push_back(std::move(segment));
}

std::vector<const PathSegment*> SegmentStore::ups_of(IsdAs leaf) const {
  std::vector<const PathSegment*> out;
  for (const auto& segment : segments_) {
    if (segment.type == SegType::kUp && segment.terminus() == leaf) {
      out.push_back(&segment);
    }
  }
  return out;
}

std::vector<const PathSegment*> SegmentStore::downs_to(IsdAs leaf) const {
  std::vector<const PathSegment*> out;
  for (const auto& segment : segments_) {
    if (segment.type == SegType::kDown && segment.terminus() == leaf) {
      out.push_back(&segment);
    }
  }
  return out;
}

std::vector<const PathSegment*> SegmentStore::cores_from_to(IsdAs from,
                                                            IsdAs to) const {
  std::vector<const PathSegment*> out;
  for (const auto& segment : segments_) {
    if (segment.type == SegType::kCore && segment.origin() == to &&
        segment.terminus() == from) {
      out.push_back(&segment);
    }
  }
  return out;
}

std::vector<const PathSegment*> SegmentStore::cores_of(IsdAs origin) const {
  std::vector<const PathSegment*> out;
  for (const auto& segment : segments_) {
    if (segment.type == SegType::kCore && segment.origin() == origin) {
      out.push_back(&segment);
    }
  }
  return out;
}

std::size_t SegmentStore::prune_expired(SimTime now) {
  const std::size_t before = segments_.size();
  std::erase_if(segments_, [now](const PathSegment& segment) {
    return segment.expires_at != 0 && segment.expires_at <= now;
  });
  return before - segments_.size();
}

RefreshDelta SegmentStore::refresh(
    const SegmentStore& fresh, SimTime now, SimTime new_expiry,
    const std::function<bool(topology::LinkId)>& link_up) {
  RefreshDelta delta;

  // Fingerprint index of the fresh sweep (membership only — iteration
  // order of the set is never consulted, so determinism is unaffected).
  std::unordered_set<std::string> fresh_fps;
  fresh_fps.reserve(fresh.segments_.size());
  for (const auto& segment : fresh.segments_) {
    fresh_fps.insert(segment.fingerprint());
  }

  // Pass 1 over the current set: revoke, refresh, or age out.
  std::vector<PathSegment> survivors;
  survivors.reserve(segments_.size());
  std::unordered_set<std::string> kept_fps;
  for (auto& segment : segments_) {
    bool dead_link = false;
    if (link_up) {
      for (topology::LinkId id : segment.links) {
        if (!link_up(id)) {
          dead_link = true;
          break;
        }
      }
    }
    if (dead_link) {
      ++delta.revoked;
      continue;
    }
    std::string fp = segment.fingerprint();
    if (fresh_fps.contains(fp)) {
      segment.expires_at = new_expiry;
      ++delta.refreshed;
    } else if (segment.expires_at != 0 && segment.expires_at <= now) {
      ++delta.expired;
      continue;
    }
    kept_fps.insert(std::move(fp));
    survivors.push_back(std::move(segment));
  }

  // Pass 2: append genuinely new segments in beaconing order.
  for (const auto& segment : fresh.segments_) {
    std::string fp = segment.fingerprint();
    if (kept_fps.contains(fp)) continue;
    kept_fps.insert(std::move(fp));
    PathSegment copy = segment;
    copy.expires_at = new_expiry;
    survivors.push_back(std::move(copy));
    ++delta.added;
  }

  segments_ = std::move(survivors);
  return delta;
}

std::size_t SegmentStore::count(SegType type) const {
  std::size_t n = 0;
  for (const auto& segment : segments_) {
    if (segment.type == type) ++n;
  }
  return n;
}

}  // namespace sciera::controlplane
