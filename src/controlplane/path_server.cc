#include "controlplane/path_server.h"

#include "obs/flight_recorder.h"

namespace sciera::controlplane {

ControlService::ControlService(simnet::Simulator& sim, IsdAs ia,
                               const topology::Topology& topo,
                               const SegmentStore& store,
                               const cppki::Trc* local_trc, Config config,
                               const std::string& instance_name)
    : sim_(sim),
      ia_(ia),
      topo_(topo),
      combinator_(topo, store),
      trc_(local_trc),
      config_(config) {
  auto& registry = obs::MetricsRegistry::global();
  const std::string& name =
      instance_name.empty() ? ia.to_string() : instance_name;
  const obs::Labels base{
      {"service", registry.instance_label("control_service", name)}};
  const auto cache = [&](const char* result) {
    obs::Labels labels = base;
    labels.emplace_back("result", result);
    return &registry.counter("sciera_control_service_cache_total", labels);
  };
  cache_hits_ = cache("hit");
  cache_misses_ = cache("miss");
  lookups_dropped_ =
      &registry.counter("sciera_control_service_lookups_dropped_total", base);
  lookups_total_ =
      &registry.counter("sciera_control_service_lookups_total", base);
  available_gauge_ =
      &registry.gauge("sciera_control_service_available", base);
  available_gauge_->set(1);
}

void ControlService::set_available(bool available) {
  if (available == available_) return;
  available_ = available;
  available_gauge_->set(available ? 1 : 0);
  obs::FlightRecorder::global().record(
      obs::TraceType::kChaosInject, sim_.now(), sim_.executed_events(),
      "cs-" + ia_.to_string(), available ? "service up" : "service outage");
}

Duration ControlService::cold_lookup_latency(IsdAs dst) const {
  // Local path server asks a core path server in its ISD, which may ask a
  // core path server in the destination ISD. Approximate each round trip
  // with the fastest core distance from this AS / between the ISDs.
  Duration budget = config_.processing;
  // Reaching the local core: one representative intra-ISD round trip.
  Duration to_core = 20 * kMillisecond;
  for (topology::LinkId id : topo_.links_of(ia_)) {
    const auto* link = topo_.find_link(id);
    to_core = std::min(to_core, 2 * link->delay);
  }
  budget += to_core;
  if (dst.isd() != ia_.isd()) {
    // Cross-ISD recursion: add a representative inter-core round trip.
    budget += 2 * 30 * kMillisecond;
  }
  return budget;
}

void ControlService::lookup_paths(
    IsdAs dst, std::function<void(const std::vector<Path>&)> callback) {
  lookups_total_->inc();
  if (!available_) {
    // The request reaches a dead service and is lost; the caller's
    // timeout (if any) is its only signal.
    lookups_dropped_->inc();
    obs::FlightRecorder::global().record(
        obs::TraceType::kPathLookup, sim_.now(), sim_.executed_events(),
        "cs-" + ia_.to_string(), dst.to_string() + " dropped");
    return;
  }
  const auto it = cache_.find(dst);
  const bool cached =
      it != cache_.end() &&
      sim_.now() - it->second.fetched_at < config_.cache_ttl;
  Duration latency = config_.intra_as_rtt + config_.processing;
  if (!cached) latency += cold_lookup_latency(dst);
  latency = static_cast<Duration>(static_cast<double>(latency) * slowdown_);
  // Lookups resolve on the asking AS's own shard (daemons query their
  // local service set), so the reply stays in the caller's domain.
  sim_.schedule_after(simnet::Domain::current(), latency,
                      [this, dst, callback = std::move(callback)] {
                        // The service may have gone down while the answer
                        // was in flight; a dead service answers nothing.
                        if (!available_) {
                          lookups_dropped_->inc();
                          return;
                        }
                        callback(lookup_paths_now(dst));
                      });
}

const std::vector<Path>& ControlService::lookup_paths_now(IsdAs dst) {
  lookups_total_->inc();
  if (!available_) {
    static const std::vector<Path> kNoAnswer;
    lookups_dropped_->inc();
    obs::FlightRecorder::global().record(
        obs::TraceType::kPathLookup, sim_.now(), sim_.executed_events(),
        "cs-" + ia_.to_string(), dst.to_string() + " dropped");
    return kNoAnswer;
  }
  auto it = cache_.find(dst);
  // Fresh iff age < ttl: an entry aged exactly cache_ttl is stale (the
  // same boundary convention the daemon uses).
  const bool hit = it != cache_.end() &&
                   sim_.now() - it->second.fetched_at < config_.cache_ttl;
  obs::FlightRecorder::global().record(
      obs::TraceType::kPathLookup, sim_.now(), sim_.executed_events(),
      "cs-" + ia_.to_string(), dst.to_string() + (hit ? " hit" : " miss"));
  if (hit) {
    cache_hits_->inc();
    return it->second.paths;
  }
  cache_misses_->inc();
  CacheEntry entry;
  entry.paths = combinator_.combine(ia_, dst);
  entry.fetched_at = sim_.now();
  auto [pos, _] = cache_.insert_or_assign(dst, std::move(entry));
  return pos->second.paths;
}

}  // namespace sciera::controlplane
