#include "controlplane/control_service_set.h"

#include <string>

#include "common/check.h"

namespace sciera::controlplane {

ControlServiceSet::ControlServiceSet(simnet::Simulator& sim, IsdAs ia,
                                     const topology::Topology& topo,
                                     const SegmentStore& store,
                                     const cppki::Trc* local_trc,
                                     std::size_t replicas,
                                     ControlService::Config config)
    : ia_(ia) {
  SCIERA_CHECK(replicas >= 1, "controlplane.empty_service_set");
  replicas_.reserve(replicas);
  for (std::size_t k = 0; k < replicas; ++k) {
    // Replica 0 keeps the legacy instance name so single-replica metric
    // series are byte-identical to the pre-replication stack.
    const std::string name =
        k == 0 ? ia.to_string() : ia.to_string() + "#r" + std::to_string(k);
    replicas_.push_back(std::make_unique<ControlService>(
        sim, ia, topo, store, local_trc, config, name));
  }
}

const std::vector<Path>& ControlServiceSet::lookup_paths_now(IsdAs dst) {
  for (auto& replica : replicas_) {
    if (replica->available()) return replica->lookup_paths_now(dst);
  }
  // Every replica down: let the primary record the failure.
  return primary()->lookup_paths_now(dst);
}

std::uint64_t ControlServiceSet::lookups_dropped() const {
  std::uint64_t total = 0;
  for (const auto& replica : replicas_) total += replica->lookups_dropped();
  return total;
}

std::uint64_t ControlServiceSet::lookups_total() const {
  std::uint64_t total = 0;
  for (const auto& replica : replicas_) total += replica->lookups_total();
  return total;
}

}  // namespace sciera::controlplane
