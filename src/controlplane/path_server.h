// Path lookup service (the "control service" of an AS). Hosts ask their
// local path server for segments toward a destination; the local server
// recursively consults core path servers (Section 2). The recursion is
// modelled as a latency budget derived from the actual core distances, and
// results are cached — matching the daemon behaviour the paper describes.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <unordered_map>

#include "controlplane/combinator.h"
#include "cppki/trc.h"
#include "obs/metrics.h"
#include "simnet/simulator.h"

namespace sciera::controlplane {

class ControlService {
 public:
  struct Config {
    Duration intra_as_rtt = 600 * kMicrosecond;  // host <-> control service
    Duration processing = 200 * kMicrosecond;
    // Cache freshness convention (shared with endhost::Daemon): an entry
    // aged exactly cache_ttl is stale.
    Duration cache_ttl = 10 * kMinute;
  };

  // `instance_name` labels this service's metric series; empty uses the
  // AS string (the single-service legacy naming). ControlServiceSet names
  // replica k > 0 as "<ia>#rk" so per-replica counters stay separable.
  ControlService(simnet::Simulator& sim, IsdAs ia,
                 const topology::Topology& topo, const SegmentStore& store,
                 const cppki::Trc* local_trc, Config config,
                 const std::string& instance_name = {});
  ControlService(simnet::Simulator& sim, IsdAs ia,
                 const topology::Topology& topo, const SegmentStore& store,
                 const cppki::Trc* local_trc)
      : ControlService(sim, ia, topo, store, local_trc, Config{}) {}

  [[nodiscard]] IsdAs isd_as() const { return ia_; }
  [[nodiscard]] const cppki::Trc* local_trc() const { return trc_; }

  // Asynchronous lookup with realistic latency: cached answers cost one
  // intra-AS round trip; cold lookups add core path-server round trips.
  // During an outage the request is dropped — the callback never fires,
  // exactly like an RPC into a dead service. Clients own the timeout
  // (endhost::Daemon wraps this with timeout/backoff/circuit-breaker).
  void lookup_paths(IsdAs dst,
                    std::function<void(const std::vector<Path>&)> callback);

  // Synchronous variant used by infrastructure tooling. During an outage
  // it fails fast: returns an empty path set without touching the cache.
  [[nodiscard]] const std::vector<Path>& lookup_paths_now(IsdAs dst);

  // Chaos fault model: service availability and processing slowdown.
  // While unavailable every lookup is dropped/failed; a slowdown factor
  // >= 1 multiplies the answer latency of async lookups (maintenance
  // windows, overload) without dropping them.
  void set_available(bool available);
  [[nodiscard]] bool available() const { return available_; }
  void set_slowdown(double factor) { slowdown_ = factor < 1.0 ? 1.0 : factor; }
  [[nodiscard]] double slowdown() const { return slowdown_; }

  // Thin reads of the registry-backed cache counters.
  [[nodiscard]] std::uint64_t cache_hits() const {
    return cache_hits_->value();
  }
  [[nodiscard]] std::uint64_t cache_misses() const {
    return cache_misses_->value();
  }
  // Lookups dropped or failed fast because the service was unavailable.
  [[nodiscard]] std::uint64_t lookups_dropped() const {
    return lookups_dropped_->value();
  }
  // Every lookup that reached this replica (served or dropped).
  [[nodiscard]] std::uint64_t lookups_total() const {
    return lookups_total_->value();
  }

  void flush_cache() { cache_.clear(); }

 private:
  struct CacheEntry {
    std::vector<Path> paths;
    SimTime fetched_at = 0;
  };

  [[nodiscard]] Duration cold_lookup_latency(IsdAs dst) const;

  simnet::Simulator& sim_;
  IsdAs ia_;
  const topology::Topology& topo_;
  Combinator combinator_;
  const cppki::Trc* trc_;
  Config config_;
  std::unordered_map<IsdAs, CacheEntry> cache_;
  bool available_ = true;
  double slowdown_ = 1.0;
  obs::Counter* cache_hits_ = nullptr;
  obs::Counter* cache_misses_ = nullptr;
  obs::Counter* lookups_dropped_ = nullptr;
  obs::Counter* lookups_total_ = nullptr;
  obs::Gauge* available_gauge_ = nullptr;
};

}  // namespace sciera::controlplane
