// Path lookup service (the "control service" of an AS). Hosts ask their
// local path server for segments toward a destination; the local server
// recursively consults core path servers (Section 2). The recursion is
// modelled as a latency budget derived from the actual core distances, and
// results are cached — matching the daemon behaviour the paper describes.
#pragma once

#include <functional>
#include <map>
#include <unordered_map>

#include "controlplane/combinator.h"
#include "cppki/trc.h"
#include "obs/metrics.h"
#include "simnet/simulator.h"

namespace sciera::controlplane {

class ControlService {
 public:
  struct Config {
    Duration intra_as_rtt = 600 * kMicrosecond;  // host <-> control service
    Duration processing = 200 * kMicrosecond;
    // Cache freshness convention (shared with endhost::Daemon): an entry
    // aged exactly cache_ttl is stale.
    Duration cache_ttl = 10 * kMinute;
  };

  ControlService(simnet::Simulator& sim, IsdAs ia,
                 const topology::Topology& topo, const SegmentStore& store,
                 const cppki::Trc* local_trc, Config config);
  ControlService(simnet::Simulator& sim, IsdAs ia,
                 const topology::Topology& topo, const SegmentStore& store,
                 const cppki::Trc* local_trc)
      : ControlService(sim, ia, topo, store, local_trc, Config{}) {}

  [[nodiscard]] IsdAs isd_as() const { return ia_; }
  [[nodiscard]] const cppki::Trc* local_trc() const { return trc_; }

  // Asynchronous lookup with realistic latency: cached answers cost one
  // intra-AS round trip; cold lookups add core path-server round trips.
  void lookup_paths(IsdAs dst,
                    std::function<void(const std::vector<Path>&)> callback);

  // Synchronous variant used by infrastructure tooling.
  [[nodiscard]] const std::vector<Path>& lookup_paths_now(IsdAs dst);

  // Thin reads of the registry-backed cache counters.
  [[nodiscard]] std::uint64_t cache_hits() const {
    return cache_hits_->value();
  }
  [[nodiscard]] std::uint64_t cache_misses() const {
    return cache_misses_->value();
  }

  void flush_cache() { cache_.clear(); }

 private:
  struct CacheEntry {
    std::vector<Path> paths;
    SimTime fetched_at = 0;
  };

  [[nodiscard]] Duration cold_lookup_latency(IsdAs dst) const;

  simnet::Simulator& sim_;
  IsdAs ia_;
  const topology::Topology& topo_;
  Combinator combinator_;
  const cppki::Trc* trc_;
  Config config_;
  std::unordered_map<IsdAs, CacheEntry> cache_;
  obs::Counter* cache_hits_ = nullptr;
  obs::Counter* cache_misses_ = nullptr;
};

}  // namespace sciera::controlplane
