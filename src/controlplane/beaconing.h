// The beaconing process (Section 2): core ASes originate PCBs over core
// links (inter-ISD included) to build core segments, and originate
// intra-ISD PCBs down parent-child links to build up-/down-segments.
// Every entry is signed with the AS's control-plane key and carries a
// hop field MAC'd with the AS's forwarding key; peering links are
// announced as peer entries on down-beacons.
//
// Faithfulness note (see DESIGN.md): propagation runs as deterministic
// rounds over the topology graph rather than as timed PCB packets — the
// paper does not evaluate beacon timing, and this keeps 20-day campaign
// replays fast while exercising identical segment-construction code.
#pragma once

#include <functional>
#include <map>
#include <unordered_map>

#include "controlplane/segment.h"
#include "cppki/ca.h"
#include "topology/topology.h"

namespace sciera::controlplane {

struct BeaconingOptions {
  std::uint32_t timestamp = 1'700'000'000;
  // k-best selection: core segments kept per (origin, terminus) pair.
  std::size_t max_core_segments_per_pair = 24;
  std::size_t max_core_path_length = 6;  // in ASes
  std::size_t max_down_depth = 5;
  std::uint8_t hop_expiry = 255;  // ~24h
  // Beacons only walk links for which this returns true; null = all links.
  // The self-healing sweep passes the live-link predicate so segments over
  // cut circuits are never re-originated.
  std::function<bool(topology::LinkId)> link_filter;
};

class Beaconing {
 public:
  Beaconing(const topology::Topology& topo,
            const std::map<Isd, cppki::IsdPki*>& pkis,
            const std::unordered_map<IsdAs, dataplane::FwdKey>& fwd_keys);

  // Runs a full beaconing sweep and returns the resulting segments.
  [[nodiscard]] SegmentStore run(const BeaconingOptions& options = {}) const;

 private:
  struct LinkStep {
    topology::LinkId link;
    IsdAs next;
  };

  [[nodiscard]] Pcb build_pcb(const std::vector<topology::LinkId>& links,
                              IsdAs origin, const BeaconingOptions& options,
                              bool add_peer_entries) const;
  void core_beaconing(SegmentStore& store,
                      const BeaconingOptions& options) const;
  void down_beaconing(SegmentStore& store,
                      const BeaconingOptions& options) const;

  const topology::Topology& topo_;
  const std::map<Isd, cppki::IsdPki*>& pkis_;
  const std::unordered_map<IsdAs, dataplane::FwdKey>& fwd_keys_;
};

}  // namespace sciera::controlplane
