#include "controlplane/beaconing.h"

#include <algorithm>

#include "crypto/sha256.h"

namespace sciera::controlplane {
namespace {

using topology::LinkId;
using topology::LinkInfo;
using topology::LinkType;

// Initial beta for a segment, derived from origin and timestamp (the
// origin core AS picks it; it only needs to be unpredictable per segment).
std::uint16_t initial_beta(IsdAs origin, std::uint32_t timestamp,
                           std::uint64_t salt) {
  Writer w;
  w.u64(origin.packed());
  w.u32(timestamp);
  w.u64(salt);
  const auto digest = crypto::Sha256::hash(w.bytes());
  return static_cast<std::uint16_t>((digest[0] << 8) | digest[1]);
}

}  // namespace

Beaconing::Beaconing(
    const topology::Topology& topo, const std::map<Isd, cppki::IsdPki*>& pkis,
    const std::unordered_map<IsdAs, dataplane::FwdKey>& fwd_keys)
    : topo_(topo), pkis_(pkis), fwd_keys_(fwd_keys) {}

Pcb Beaconing::build_pcb(const std::vector<LinkId>& links, IsdAs origin,
                         const BeaconingOptions& options,
                         bool add_peer_entries) const {
  Pcb pcb;
  pcb.timestamp = options.timestamp;
  // Salt with the first link id so parallel links yield distinct chains.
  pcb.initial_beta = initial_beta(origin, options.timestamp,
                                  links.empty() ? 0 : links.front() + 1);

  // Resolve the AS sequence from the link walk.
  std::vector<IsdAs> ases{origin};
  for (LinkId id : links) {
    const LinkInfo* link = topo_.find_link(id);
    ases.push_back(link->other(ases.back()));
  }

  std::uint16_t beta = pcb.initial_beta;
  for (std::size_t i = 0; i < ases.size(); ++i) {
    AsEntry entry;
    entry.ia = ases[i];
    entry.beta = beta;
    entry.hop.exp_time = options.hop_expiry;
    entry.hop.cons_ingress =
        i == 0 ? 0 : topo_.find_link(links[i - 1])->iface_of(ases[i]);
    entry.hop.cons_egress =
        i + 1 < ases.size() ? topo_.find_link(links[i])->iface_of(ases[i]) : 0;
    const auto key_it = fwd_keys_.find(entry.ia);
    entry.hop.mac = dataplane::compute_hop_mac(key_it->second, beta,
                                               pcb.timestamp, entry.hop);
    const std::uint16_t beta_after =
        dataplane::chain_beta(beta, entry.hop.mac);

    if (add_peer_entries) {
      for (LinkId lid : topo_.links_of(entry.ia)) {
        const LinkInfo* plink = topo_.find_link(lid);
        if (plink->type != LinkType::kPeering) continue;
        if (options.link_filter && !options.link_filter(lid)) continue;
        PeerEntry peer;
        peer.peer_ia = plink->other(entry.ia);
        peer.local_iface = plink->iface_of(entry.ia);
        peer.remote_iface = plink->iface_of_other(entry.ia);
        peer.hop.peering = true;
        peer.hop.exp_time = options.hop_expiry;
        peer.hop.cons_ingress = peer.local_iface;
        peer.hop.cons_egress = entry.hop.cons_egress;
        // Peer hop MACs are computed over the post-main-hop accumulator so
        // entering the segment sideways keeps downstream MACs verifiable.
        peer.hop.mac = dataplane::compute_hop_mac(key_it->second, beta_after,
                                                  pcb.timestamp, peer.hop);
        entry.peers.push_back(peer);
      }
    }

    pcb.entries.push_back(std::move(entry));
    const std::size_t index = pcb.entries.size() - 1;
    const auto pki_it = pkis_.find(pcb.entries[index].ia.isd());
    const auto* creds = pki_it->second->credentials(pcb.entries[index].ia);
    sign_entry(pcb, index, creds->signing_key.seed);

    beta = beta_after;
  }
  return pcb;
}

void Beaconing::core_beaconing(SegmentStore& store,
                               const BeaconingOptions& options) const {
  // Deterministic exhaustive exploration of simple core-link walks from
  // each origin, with k-best retention per (origin, terminus).
  struct Candidate {
    std::vector<LinkId> links;
    Duration delay = 0;
  };

  for (const auto& origin_info : topo_.ases()) {
    if (!origin_info.core) continue;
    const IsdAs origin = origin_info.ia;
    std::map<IsdAs, std::vector<Candidate>> per_terminus;

    std::vector<LinkId> walk;
    std::vector<IsdAs> visited{origin};
    Duration delay_acc = 0;

    // Iterative DFS over core links.
    struct Frame {
      IsdAs at;
      std::vector<LinkId> options;
      std::size_t next = 0;
    };
    auto core_links_at = [&](IsdAs at) {
      std::vector<LinkId> out;
      for (LinkId id : topo_.links_of(at)) {
        const LinkInfo* link = topo_.find_link(id);
        if (link->type != LinkType::kCore) continue;
        if (options.link_filter && !options.link_filter(id)) continue;
        const IsdAs other = link->other(at);
        if (std::find(visited.begin(), visited.end(), other) != visited.end())
          continue;
        out.push_back(id);
      }
      return out;
    };

    std::vector<Frame> stack;
    stack.push_back(Frame{origin, core_links_at(origin)});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next >= frame.options.size() ||
          visited.size() > options.max_core_path_length) {
        if (!walk.empty()) {
          delay_acc -= topo_.find_link(walk.back())->delay;
          walk.pop_back();
          visited.pop_back();
        }
        stack.pop_back();
        continue;
      }
      const LinkId id = frame.options[frame.next++];
      const LinkInfo* link = topo_.find_link(id);
      const IsdAs next = link->other(frame.at);
      if (std::find(visited.begin(), visited.end(), next) != visited.end()) {
        continue;
      }
      walk.push_back(id);
      visited.push_back(next);
      delay_acc += link->delay;
      per_terminus[next].push_back(Candidate{walk, delay_acc});
      stack.push_back(Frame{next, core_links_at(next)});
    }

    for (auto& [terminus, candidates] : per_terminus) {
      std::sort(candidates.begin(), candidates.end(),
                [](const Candidate& x, const Candidate& y) {
                  if (x.links.size() != y.links.size())
                    return x.links.size() < y.links.size();
                  if (x.delay != y.delay) return x.delay < y.delay;
                  return x.links < y.links;
                });
      if (candidates.size() > options.max_core_segments_per_pair) {
        candidates.resize(options.max_core_segments_per_pair);
      }
      for (const auto& cand : candidates) {
        PathSegment segment;
        segment.type = SegType::kCore;
        segment.pcb = build_pcb(cand.links, origin, options,
                                /*add_peer_entries=*/false);
        segment.links = cand.links;
        store.add(std::move(segment));
      }
    }
  }
}

void Beaconing::down_beaconing(SegmentStore& store,
                               const BeaconingOptions& options) const {
  for (const auto& origin_info : topo_.ases()) {
    if (!origin_info.core) continue;
    const IsdAs origin = origin_info.ia;

    // DFS down parent-child links inside the origin's ISD; every prefix of
    // the walk is a segment for the AS it reaches.
    std::vector<LinkId> walk;
    std::vector<IsdAs> visited{origin};

    auto child_links_at = [&](IsdAs at) {
      std::vector<LinkId> out;
      for (LinkId id : topo_.links_of(at)) {
        const LinkInfo* link = topo_.find_link(id);
        if (link->type != LinkType::kParentChild || link->a != at) continue;
        if (options.link_filter && !options.link_filter(id)) continue;
        if (link->b.isd() != origin.isd()) continue;
        if (std::find(visited.begin(), visited.end(), link->b) !=
            visited.end()) {
          continue;
        }
        out.push_back(id);
      }
      return out;
    };

    struct Frame {
      IsdAs at;
      std::vector<LinkId> options;
      std::size_t next = 0;
    };
    std::vector<Frame> stack;
    stack.push_back(Frame{origin, child_links_at(origin)});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next >= frame.options.size() ||
          visited.size() > options.max_down_depth) {
        if (!walk.empty()) {
          walk.pop_back();
          visited.pop_back();
        }
        stack.pop_back();
        continue;
      }
      const LinkId id = frame.options[frame.next++];
      const LinkInfo* link = topo_.find_link(id);
      const IsdAs child = link->b;
      if (std::find(visited.begin(), visited.end(), child) != visited.end()) {
        continue;
      }
      walk.push_back(id);
      visited.push_back(child);

      const Pcb pcb = build_pcb(walk, origin, options,
                                /*add_peer_entries=*/true);
      // The terminating AS registers the PCB both as its up-segment (at
      // the local path server) and as a down-segment (at the origin core).
      PathSegment up;
      up.type = SegType::kUp;
      up.pcb = pcb;
      up.links = walk;
      store.add(std::move(up));
      PathSegment down;
      down.type = SegType::kDown;
      down.pcb = pcb;
      down.links = walk;
      store.add(std::move(down));

      stack.push_back(Frame{child, child_links_at(child)});
    }
  }
}

SegmentStore Beaconing::run(const BeaconingOptions& options) const {
  SegmentStore store;
  core_beaconing(store, options);
  down_beaconing(store, options);
  return store;
}

}  // namespace sciera::controlplane
