#include "controlplane/control_plane.h"

#include "common/log.h"
#include "obs/flight_recorder.h"

namespace sciera::controlplane {

ScionNetwork::ScionNetwork(topology::Topology topo, Options options)
    : topo_(std::move(topo)),
      options_(options),
      sim_(options.scheduler),
      rng_(options.seed, "network") {
  auto& registry = obs::MetricsRegistry::global();
  metrics_label_ = registry.instance_label("network", "net");
  sim_.enable_metrics(metrics_label_);
  const obs::Labels base{{"network", metrics_label_}};
  beaconing_runs_ = &registry.counter("sciera_beaconing_runs_total", base);
  const auto segs = [&](const char* type) {
    obs::Labels labels = base;
    labels.emplace_back("type", type);
    return &registry.gauge("sciera_beaconing_segments", labels);
  };
  segments_up_ = segs("up");
  segments_core_ = segs("core");
  segments_down_ = segs("down");

  // --- PKI: one IsdPki per ISD, enrolling every member AS.
  for (Isd isd : topo_.isds()) {
    auto cores = topo_.core_ases(isd);
    pkis_.emplace(isd, std::make_unique<cppki::IsdPki>(
                           isd, cores, sim_.now(), options_.trc_validity,
                           options_.seed ^ isd));
  }
  for (const auto& as_info : topo_.ases()) {
    const auto status = pkis_.at(as_info.ia.isd())->enroll(as_info.ia, 0);
    if (!status.ok()) {
      log_error("scion-net") << "enroll failed: " << status.error().to_string();
    }
  }

  // --- Forwarding keys: derived from per-AS master secrets.
  for (const auto& as_info : topo_.ases()) {
    Rng key_rng = rng_.fork("fwdkey-" + as_info.ia.to_string());
    Bytes secret(32);
    for (auto& b : secret) b = static_cast<std::uint8_t>(key_rng.next_u64());
    fwd_keys_.emplace(as_info.ia, dataplane::derive_fwd_key(secret));
  }

  build_data_plane();
  run_beaconing();
}

void ScionNetwork::build_data_plane() {
  for (const auto& as_info : topo_.ases()) {
    routers_.emplace(as_info.ia,
                     std::make_unique<dataplane::BorderRouter>(
                         sim_, as_info.ia, fwd_keys_.at(as_info.ia)));
  }
  for (const auto& link_info : topo_.links()) {
    simnet::LinkConfig cfg;
    cfg.propagation_delay = link_info.delay;
    cfg.bandwidth_bps = link_info.bandwidth_bps;
    cfg.jitter_sigma = options_.link_jitter_sigma;
    cfg.loss_probability = options_.link_loss_probability;
    cfg.encap_overhead_bytes = topology::encap_overhead(link_info.encap);
    auto link = std::make_unique<simnet::Link>(
        sim_, cfg, rng_.fork("link-" + link_info.label));
    link->set_label(link_info.label);
    link->attach(0, routers_.at(link_info.a).get(), link_info.a_iface);
    link->attach(1, routers_.at(link_info.b).get(), link_info.b_iface);
    routers_.at(link_info.a)->attach_iface(link_info.a_iface, link.get(), 0);
    routers_.at(link_info.b)->attach_iface(link_info.b_iface, link.get(), 1);
    links_.push_back(std::move(link));
  }
  for (const auto& as_info : topo_.ases()) {
    const IsdAs ia = as_info.ia;
    routers_.at(ia)->set_local_delivery(
        [this, ia](const dataplane::ScionPacket& packet, SimTime arrival) {
          dispatch_local(ia, packet, arrival);
        });
  }
}

void ScionNetwork::run_beaconing() {
  segments_ = beacon_with(options_.beaconing);
  for (auto& [ia, service] : services_) service->flush_cache();
  beaconing_runs_->inc();
  segments_up_->set(static_cast<std::int64_t>(segments_.count(SegType::kUp)));
  segments_core_->set(
      static_cast<std::int64_t>(segments_.count(SegType::kCore)));
  segments_down_->set(
      static_cast<std::int64_t>(segments_.count(SegType::kDown)));
  obs::FlightRecorder::global().record(
      obs::TraceType::kBeaconOriginated, sim_.now(), sim_.executed_events(),
      metrics_label_, "beaconing sweep",
      static_cast<std::int64_t>(segments_.count(SegType::kUp) +
                                segments_.count(SegType::kCore) +
                                segments_.count(SegType::kDown)));
}

SegmentStore ScionNetwork::beacon_with(const BeaconingOptions& options) const {
  std::map<Isd, cppki::IsdPki*> pki_view;
  for (const auto& [isd, pki] : pkis_) pki_view.emplace(isd, pki.get());
  Beaconing beaconing{topo_, pki_view, fwd_keys_};
  return beaconing.run(options);
}

cppki::IsdPki* ScionNetwork::pki(Isd isd) {
  const auto it = pkis_.find(isd);
  return it == pkis_.end() ? nullptr : it->second.get();
}

std::vector<Path> ScionNetwork::paths(IsdAs src, IsdAs dst,
                                      const CombinatorOptions& options) const {
  Combinator combinator{topo_, segments_};
  return combinator.combine(src, dst, options);
}

ControlService* ScionNetwork::control_service(IsdAs ia) {
  auto it = services_.find(ia);
  if (it == services_.end()) {
    if (topo_.find_as(ia) == nullptr) return nullptr;
    const auto* trc = &pkis_.at(ia.isd())->trc();
    auto service = std::make_unique<ControlService>(sim_, ia, topo_,
                                                    segments_, trc);
    it = services_.emplace(ia, std::move(service)).first;
  }
  return it->second.get();
}

dataplane::BorderRouter* ScionNetwork::router(IsdAs ia) {
  const auto it = routers_.find(ia);
  return it == routers_.end() ? nullptr : it->second.get();
}

simnet::Link* ScionNetwork::link(topology::LinkId id) {
  return id < links_.size() ? links_[id].get() : nullptr;
}

simnet::Link* ScionNetwork::link(std::string_view label) {
  const auto* info = topo_.find_link_by_label(label);
  return info == nullptr ? nullptr : links_[info->id].get();
}

void ScionNetwork::set_link_up(std::string_view label, bool up) {
  if (auto* l = link(label)) l->set_up(up);
}

bool ScionNetwork::path_usable(const Path& path) const {
  for (topology::LinkId id : path.links) {
    if (id >= links_.size() || !links_[id]->is_up()) return false;
  }
  return true;
}

Status ScionNetwork::register_host(const dataplane::Address& addr,
                                   HostHandler handler) {
  if (topo_.find_as(addr.ia) == nullptr) {
    return Error{Errc::kNotFound, "unknown AS " + addr.ia.to_string()};
  }
  hosts_[{addr.ia.packed(), addr.host}] = std::move(handler);
  return {};
}

void ScionNetwork::unregister_host(const dataplane::Address& addr) {
  hosts_.erase({addr.ia.packed(), addr.host});
}

Status ScionNetwork::send_from_host(const dataplane::ScionPacket& packet) {
  auto* br = router(packet.src.ia);
  if (br == nullptr) {
    return Error{Errc::kNotFound, "no router for " + packet.src.ia.to_string()};
  }
  return br->inject(packet);
}

void ScionNetwork::dispatch_local(IsdAs ia,
                                  const dataplane::ScionPacket& packet,
                                  SimTime arrival) {
  const auto it = hosts_.find({packet.dst.ia.packed(), packet.dst.host});
  if (it == hosts_.end()) {
    log_debug("scion-net") << "no host " << packet.dst.to_string() << " in "
                           << ia.to_string();
    return;
  }
  it->second(packet, arrival);
}

std::size_t ScionNetwork::renew_certificates() {
  std::size_t renewed = 0;
  for (auto& [isd, pki] : pkis_) renewed += pki->renew_expiring(sim_.now());
  return renewed;
}

}  // namespace sciera::controlplane
