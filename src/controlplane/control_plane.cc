#include "controlplane/control_plane.h"

#include "common/log.h"
#include "obs/flight_recorder.h"

namespace sciera::controlplane {

namespace {

// Builds the AS partition for the requested shard count (single-shard
// when <= 1 — the classic core).
simnet::ShardMap make_shard_map(const topology::Topology& topo,
                                const ScionNetwork::Options& options) {
  if (options.scheduler.shards <= 1) return simnet::ShardMap{};
  std::vector<IsdAs> ases;
  ases.reserve(topo.ases().size());
  for (const auto& as_info : topo.ases()) ases.push_back(as_info.ia);
  return simnet::ShardMap{std::move(ases), options.scheduler.shards,
                          options.shard_policy};
}

// Clamps the scheduler geometry to what the partition actually supports:
// shards to the map's shard count, threads to [1, shards].
ScionNetwork::Options normalize_options(ScionNetwork::Options options,
                                        const simnet::ShardMap& map) {
  options.scheduler.shards = map.shard_count();
  if (options.scheduler.threads == 0) options.scheduler.threads = 1;
  if (options.scheduler.threads > options.scheduler.shards) {
    options.scheduler.threads = options.scheduler.shards;
  }
  return options;
}

}  // namespace

ScionNetwork::ScionNetwork(topology::Topology topo, Options options)
    : topo_(std::move(topo)),
      shard_map_(make_shard_map(topo_, options)),
      options_(normalize_options(options, shard_map_)),
      sim_(options_.scheduler),
      rng_(options.seed, "network") {
  auto& registry = obs::MetricsRegistry::global();
  metrics_label_ = registry.instance_label("network", "net");
  sim_.enable_metrics(metrics_label_);
  const obs::Labels base{{"network", metrics_label_}};
  beaconing_runs_ = &registry.counter("sciera_beaconing_runs_total", base);
  const auto segs = [&](const char* type) {
    obs::Labels labels = base;
    labels.emplace_back("type", type);
    return &registry.gauge("sciera_beaconing_segments", labels);
  };
  segments_up_ = segs("up");
  segments_core_ = segs("core");
  segments_down_ = segs("down");
  if (options_.healing.enabled) {
    healing_sweeps_ = &registry.counter("sciera_healing_sweeps_total", base);
    segments_expired_ =
        &registry.counter("sciera_segments_expired_total", base);
    segments_revoked_ =
        &registry.counter("sciera_segments_revoked_total", base);
    // Last measured reconvergence in ms; -1 until the first link-state
    // triggered sweep completes. (The registry holds integers, so the
    // metric is milliseconds rather than the fractional-seconds name the
    // literature uses — see DESIGN.md §10.)
    reconverge_ms_ = &registry.gauge("sciera_reconverge_ms", base);
    reconverge_ms_->set(-1);
  }

  // --- PKI: one IsdPki per ISD, enrolling every member AS.
  for (Isd isd : topo_.isds()) {
    auto cores = topo_.core_ases(isd);
    pkis_.emplace(isd, std::make_unique<cppki::IsdPki>(
                           isd, cores, sim_.now(), options_.trc_validity,
                           options_.seed ^ isd));
  }
  for (const auto& as_info : topo_.ases()) {
    const auto status = pkis_.at(as_info.ia.isd())->enroll(as_info.ia, 0);
    if (!status.ok()) {
      log_error("scion-net") << "enroll failed: " << status.error().to_string();
    }
  }

  // --- Forwarding keys: derived from per-AS master secrets.
  for (const auto& as_info : topo_.ases()) {
    Rng key_rng = rng_.fork("fwdkey-" + as_info.ia.to_string());
    Bytes secret(32);
    for (auto& b : secret) b = static_cast<std::uint8_t>(key_rng.next_u64());
    fwd_keys_.emplace(as_info.ia, dataplane::derive_fwd_key(secret));
  }

  build_data_plane();
  run_beaconing();
  start_healing();
}

void ScionNetwork::build_data_plane() {
  for (const auto& as_info : topo_.ases()) {
    routers_.emplace(as_info.ia,
                     std::make_unique<dataplane::BorderRouter>(
                         sim_, as_info.ia, fwd_keys_.at(as_info.ia),
                         options_.router));
  }
  for (const auto& link_info : topo_.links()) {
    simnet::LinkConfig cfg;
    cfg.propagation_delay = link_info.delay;
    cfg.bandwidth_bps = link_info.bandwidth_bps;
    cfg.jitter_sigma = options_.link_jitter_sigma;
    cfg.loss_probability = options_.link_loss_probability;
    cfg.encap_overhead_bytes = topology::encap_overhead(link_info.encap);
    auto link = std::make_unique<simnet::Link>(
        sim_, cfg, rng_.fork("link-" + link_info.label));
    link->set_label(link_info.label);
    link->attach(0, routers_.at(link_info.a).get(), link_info.a_iface);
    link->attach(1, routers_.at(link_info.b).get(), link_info.b_iface);
    routers_.at(link_info.a)->attach_iface(link_info.a_iface, link.get(), 0);
    routers_.at(link_info.b)->attach_iface(link_info.b_iface, link.get(), 1);
    if (sharded()) {
      link->set_domains(domain_of(link_info.a), domain_of(link_info.b));
    }
    links_.push_back(std::move(link));
  }
  if (sharded()) {
    // Conservative lookahead: the shortest guaranteed latency across any
    // shard boundary. Intra-shard links do not constrain the window.
    Duration lookahead = 0;
    for (const auto& link : links_) {
      if (!link->cross_shard()) continue;
      const Duration floor = link->cross_delay_floor();
      if (lookahead == 0 || floor < lookahead) lookahead = floor;
    }
    sim_.set_lookahead(lookahead);
    // Instantiate every AS's control-service set up front, in topology
    // order: lazy first-lookup creation would tie metric instance labels
    // (and registry snapshots) to which shard asked first.
    for (const auto& as_info : topo_.ases()) {
      (void)control_service_set(as_info.ia);
    }
  }
  for (const auto& as_info : topo_.ases()) {
    const IsdAs ia = as_info.ia;
    routers_.at(ia)->set_local_delivery(
        [this, ia](const dataplane::ScionPacket& packet, SimTime arrival) {
          dispatch_local(ia, packet, arrival);
        });
  }
}

void ScionNetwork::run_beaconing() {
  if (options_.healing.enabled) {
    // With healing on, a manual run is just an extra sweep of the same
    // machinery (live-link filter, expiry stamping, delta accounting).
    healing_sweep();
    return;
  }
  segments_ = beacon_with(options_.beaconing);
  for (auto& [ia, service] : services_) service->flush_caches();
  beaconing_runs_->inc();
  publish_segment_gauges();
  obs::FlightRecorder::global().record(
      obs::TraceType::kBeaconOriginated, sim_.now(), sim_.executed_events(),
      metrics_label_, "beaconing sweep",
      static_cast<std::int64_t>(segments_.size()));
}

void ScionNetwork::publish_segment_gauges() {
  segments_up_->set(static_cast<std::int64_t>(segments_.count(SegType::kUp)));
  segments_core_->set(
      static_cast<std::int64_t>(segments_.count(SegType::kCore)));
  segments_down_->set(
      static_cast<std::int64_t>(segments_.count(SegType::kDown)));
}

void ScionNetwork::start_healing() {
  if (!options_.healing.enabled) return;
  // Every link transition feeds the detection pipeline; detection delay
  // models keepalive/SCMP latency between the physical event and the
  // control plane noticing it.
  for (auto& link : links_) {
    link->set_on_state_change(
        [this](bool, SimTime at) { on_link_state_change(at); });
  }
  // Healing machinery sweeps cross-shard state (every link, every path
  // service), so its timers live in the global domain: the parallel core
  // runs global events exclusively, with all shards quiesced.
  sim_.schedule_after(simnet::Domain::global(),
                      options_.healing.refresh_interval,
                      [this] { healing_tick(); });
}

void ScionNetwork::on_link_state_change(SimTime at) {
  if (!change_pending_) {
    // Coalesce a burst of transitions into one reconvergence episode,
    // clocked from the earliest change.
    change_pending_ = true;
    earliest_change_at_ = at;
  }
  sim_.schedule_after(simnet::Domain::global(),
                      options_.healing.detection_delay, [this] {
                        // A sweep between scheduling and firing already
                        // absorbed this change.
                        if (change_pending_) healing_sweep();
                      });
}

void ScionNetwork::healing_tick() {
  healing_sweep();
  sim_.schedule_after(simnet::Domain::global(),
                      options_.healing.refresh_interval,
                      [this] { healing_tick(); });
}

void ScionNetwork::healing_sweep() {
  const auto link_up = [this](topology::LinkId id) {
    return id < links_.size() && links_[id]->is_up();
  };
  BeaconingOptions beacon_options = options_.beaconing;
  beacon_options.link_filter = link_up;
  const SegmentStore fresh = beacon_with(beacon_options);
  const SimTime now = sim_.now();
  const RefreshDelta delta = segments_.refresh(
      fresh, now, now + options_.healing.segment_lifetime, link_up);
  for (auto& [ia, service] : services_) service->flush_caches();
  beaconing_runs_->inc();
  healing_sweeps_->inc();
  segments_expired_->inc(delta.expired);
  segments_revoked_->inc(delta.revoked);
  publish_segment_gauges();
  // A pending link-state change settles only once the detection delay has
  // elapsed: a periodic sweep that lands at the very instant of the cut
  // may already revoke segments (re-origination over a dead circuit fails
  // immediately), but the control plane cannot claim to have *detected*
  // the event before its detection latency has passed.
  if (change_pending_ &&
      now >= earliest_change_at_ + options_.healing.detection_delay) {
    change_pending_ = false;
    const Duration took = now - earliest_change_at_;
    last_reconverge_ = took;
    if (took > max_reconverge_) max_reconverge_ = took;
    reconverge_ms_->set(took / kMillisecond);
  }
  obs::FlightRecorder::global().record(
      obs::TraceType::kBeaconOriginated, now, sim_.executed_events(),
      metrics_label_, "healing sweep",
      static_cast<std::int64_t>(segments_.size()));
}

HealingSnapshot ScionNetwork::healing_snapshot() const {
  HealingSnapshot snap;
  snap.sweeps = healing_sweeps_ != nullptr ? healing_sweeps_->value() : 0;
  snap.segments_expired =
      segments_expired_ != nullptr ? segments_expired_->value() : 0;
  snap.segments_revoked =
      segments_revoked_ != nullptr ? segments_revoked_->value() : 0;
  snap.last_reconverge = last_reconverge_;
  snap.max_reconverge = max_reconverge_;
  return snap;
}

SegmentStore ScionNetwork::beacon_with(const BeaconingOptions& options) const {
  std::map<Isd, cppki::IsdPki*> pki_view;
  for (const auto& [isd, pki] : pkis_) pki_view.emplace(isd, pki.get());
  Beaconing beaconing{topo_, pki_view, fwd_keys_};
  return beaconing.run(options);
}

cppki::IsdPki* ScionNetwork::pki(Isd isd) {
  const auto it = pkis_.find(isd);
  return it == pkis_.end() ? nullptr : it->second.get();
}

std::vector<Path> ScionNetwork::paths(IsdAs src, IsdAs dst,
                                      const CombinatorOptions& options) const {
  Combinator combinator{topo_, segments_};
  return combinator.combine(src, dst, options);
}

ControlService* ScionNetwork::control_service(IsdAs ia) {
  auto* set = control_service_set(ia);
  return set == nullptr ? nullptr : set->primary();
}

ControlServiceSet* ScionNetwork::control_service_set(IsdAs ia) {
  auto it = services_.find(ia);
  if (it == services_.end()) {
    if (topo_.find_as(ia) == nullptr) return nullptr;
    const auto* trc = &pkis_.at(ia.isd())->trc();
    const std::size_t replicas =
        options_.control_replicas < 1 ? 1 : options_.control_replicas;
    auto set = std::make_unique<ControlServiceSet>(sim_, ia, topo_, segments_,
                                                   trc, replicas);
    it = services_.emplace(ia, std::move(set)).first;
  }
  return it->second.get();
}

dataplane::BorderRouter* ScionNetwork::router(IsdAs ia) {
  const auto it = routers_.find(ia);
  return it == routers_.end() ? nullptr : it->second.get();
}

simnet::Link* ScionNetwork::link(topology::LinkId id) {
  return id < links_.size() ? links_[id].get() : nullptr;
}

simnet::Link* ScionNetwork::link(std::string_view label) {
  const auto* info = topo_.find_link_by_label(label);
  return info == nullptr ? nullptr : links_[info->id].get();
}

void ScionNetwork::set_link_up(std::string_view label, bool up) {
  if (auto* l = link(label)) l->set_up(up);
}

bool ScionNetwork::path_usable(const Path& path) const {
  for (topology::LinkId id : path.links) {
    if (id >= links_.size() || !links_[id]->is_up()) return false;
  }
  return true;
}

Status ScionNetwork::register_host(const dataplane::Address& addr,
                                   HostHandler handler) {
  if (topo_.find_as(addr.ia) == nullptr) {
    return Error{Errc::kNotFound, "unknown AS " + addr.ia.to_string()};
  }
  hosts_[{addr.ia.packed(), addr.host}] = std::move(handler);
  return {};
}

void ScionNetwork::unregister_host(const dataplane::Address& addr) {
  hosts_.erase({addr.ia.packed(), addr.host});
}

Status ScionNetwork::send_from_host(const dataplane::ScionPacket& packet) {
  auto* br = router(packet.src.ia);
  if (br == nullptr) {
    return Error{Errc::kNotFound, "no router for " + packet.src.ia.to_string()};
  }
  return br->inject(packet);
}

void ScionNetwork::dispatch_local(IsdAs ia,
                                  const dataplane::ScionPacket& packet,
                                  SimTime arrival) {
  const auto it = hosts_.find({packet.dst.ia.packed(), packet.dst.host});
  if (it == hosts_.end()) {
    log_debug("scion-net") << "no host " << packet.dst.to_string() << " in "
                           << ia.to_string();
    return;
  }
  it->second(packet, arrival);
}

std::size_t ScionNetwork::renew_certificates() {
  std::size_t renewed = 0;
  for (auto& [isd, pki] : pkis_) renewed += pki->renew_expiring(sim_.now());
  return renewed;
}

}  // namespace sciera::controlplane
