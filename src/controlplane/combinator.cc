#include "controlplane/combinator.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace sciera::controlplane {

std::string Path::fingerprint() const {
  std::string out;
  for (const auto& gid : interfaces) {
    out += gid.to_string();
    out += ' ';
  }
  return out;
}

std::string Path::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < as_sequence.size(); ++i) {
    if (i > 0) out += " > ";
    out += as_sequence[i].to_string();
  }
  out += strformat(" (%zu hops, %.1f ms)", as_sequence.size(),
                   to_ms(static_rtt));
  return out;
}

double path_disjointness(const Path& a, const Path& b) {
  // Section 5.5: "dividing the number of distinct interfaces by the total
  // number of interfaces for both paths" — |union| / |multiset total|.
  // 1.0 = fully disjoint; identical paths score 0.5; "disjointness 0.7"
  // means 30% of the combined interface occurrences are shared.
  std::set<GlobalIfaceId> in_a(a.interfaces.begin(), a.interfaces.end());
  std::size_t shared = 0;
  const std::size_t total = a.interfaces.size() + b.interfaces.size();
  if (total == 0) return 1.0;
  std::set<GlobalIfaceId> in_b(b.interfaces.begin(), b.interfaces.end());
  for (const auto& gid : in_a) {
    if (in_b.contains(gid)) ++shared;
  }
  return static_cast<double>(total - shared) / static_cast<double>(total);
}

bool Combinator::append_piece(Path& path, const Piece& piece) const {
  const auto& entries = piece.seg->pcb.entries;
  const std::size_t n = entries.size() - 1;
  const std::size_t hops_before = path.dataplane_path.hops.size();

  // Pick the hop field for a traversal position.
  auto hop_at = [&](std::size_t i) {
    if (i == piece.cut && piece.peer_index >= 0) {
      return entries[i].peers[static_cast<std::size_t>(piece.peer_index)].hop;
    }
    return entries[i].hop;
  };

  // Traversal-ordered construction indices.
  std::vector<std::size_t> order;
  if (piece.along) {
    for (std::size_t i = piece.cut; i <= n; ++i) order.push_back(i);
  } else {
    for (std::size_t i = n + 1; i-- > piece.cut;) order.push_back(i);
  }

  // Info field.
  dataplane::InfoField info;
  info.construction_dir = piece.along;
  info.timestamp = piece.seg->pcb.timestamp;
  if (piece.along) {
    info.seg_id = piece.peer_index >= 0
                      ? dataplane::chain_beta(entries[piece.cut].beta,
                                              entries[piece.cut].hop.mac)
                      : entries[piece.cut].beta;
  } else {
    info.seg_id = dataplane::chain_beta(entries[n].beta, entries[n].hop.mac);
  }

  // Crossing into this piece over a peering link?
  if (!path.as_sequence.empty() &&
      path.as_sequence.back() != entries[order.front()].ia) {
    if (piece.peer_index < 0) return false;
    const auto& peer =
        entries[piece.cut].peers[static_cast<std::size_t>(piece.peer_index)];
    const auto* link =
        topo_.link_at(entries[piece.cut].ia, peer.local_iface);
    if (link == nullptr || peer.peer_ia != path.as_sequence.back()) {
      return false;
    }
    path.interfaces.push_back(GlobalIfaceId{peer.peer_ia, peer.remote_iface});
    path.interfaces.push_back(
        GlobalIfaceId{entries[piece.cut].ia, peer.local_iface});
    path.links.push_back(link->id);
    path.static_rtt += 2 * link->delay;
  }

  for (std::size_t k = 0; k < order.size(); ++k) {
    const std::size_t i = order[k];
    const dataplane::HopField hop = hop_at(i);
    if (hop.peering) info.peering = true;
    path.dataplane_path.hops.push_back(hop);
    if (path.as_sequence.empty() || path.as_sequence.back() != entries[i].ia) {
      path.as_sequence.push_back(entries[i].ia);
    }
    // Intra-piece crossing to the next traversal hop.
    if (k + 1 < order.size()) {
      const std::size_t j = order[k + 1];
      // Construction-order neighbors: the link between min and min+1.
      const std::size_t lower = std::min(i, j);
      const IfaceId egress_lower = entries[lower].hop.cons_egress;
      const auto* link = topo_.link_at(entries[lower].ia, egress_lower);
      if (link == nullptr) return false;
      const std::size_t upper = lower + 1;
      path.interfaces.push_back(
          GlobalIfaceId{entries[lower].ia, egress_lower});
      path.interfaces.push_back(GlobalIfaceId{
          entries[upper].ia, entries[upper].hop.cons_ingress});
      path.links.push_back(link->id);
      path.static_rtt += 2 * link->delay;
    }
  }

  const std::size_t seg_index = path.dataplane_path.info.size();
  if (seg_index >= 3) return false;
  path.dataplane_path.info.push_back(info);
  path.dataplane_path.seg_len[seg_index] = static_cast<std::uint8_t>(
      path.dataplane_path.hops.size() - hops_before);
  return true;
}

std::vector<Path> Combinator::assemble(
    const std::vector<std::vector<Piece>>& combos, IsdAs src, IsdAs dst,
    const CombinatorOptions& options) const {
  std::vector<Path> paths;
  std::set<std::string> seen;
  for (const auto& combo : combos) {
    Path path;
    bool ok = !combo.empty();
    for (const auto& piece : combo) {
      if (!append_piece(path, piece)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    if (path.as_sequence.front() != src || path.as_sequence.back() != dst) {
      continue;
    }
    // Loop-free check.
    std::set<IsdAs> unique(path.as_sequence.begin(), path.as_sequence.end());
    if (unique.size() != path.as_sequence.size()) continue;
    if (!path.dataplane_path.validate().ok()) continue;
    // Endpoint intra-AS processing.
    path.static_rtt += 2 * 600 * kMicrosecond;
    const std::string fp = path.fingerprint();
    if (!seen.insert(fp).second) continue;
    paths.push_back(std::move(path));
  }
  std::sort(paths.begin(), paths.end(), [](const Path& x, const Path& y) {
    if (x.as_sequence.size() != y.as_sequence.size()) {
      return x.as_sequence.size() < y.as_sequence.size();
    }
    if (x.static_rtt != y.static_rtt) return x.static_rtt < y.static_rtt;
    return x.fingerprint() < y.fingerprint();
  });
  if (paths.size() > options.max_paths) paths.resize(options.max_paths);
  return paths;
}

std::vector<Path> Combinator::combine(IsdAs src, IsdAs dst,
                                      const CombinatorOptions& options) const {
  std::vector<std::vector<Piece>> combos;
  if (src == dst) return {};
  const auto* src_info = topo_.find_as(src);
  const auto* dst_info = topo_.find_as(dst);
  if (src_info == nullptr || dst_info == nullptr) return {};

  auto index_of = [](const PathSegment& seg, IsdAs ia) -> int {
    for (std::size_t i = 0; i < seg.pcb.entries.size(); ++i) {
      if (seg.pcb.entries[i].ia == ia) return static_cast<int>(i);
    }
    return -1;
  };

  const auto ups = src_info->core ? std::vector<const PathSegment*>{}
                                  : store_.ups_of(src);
  const auto downs = dst_info->core ? std::vector<const PathSegment*>{}
                                    : store_.downs_to(dst);

  if (src_info->core && dst_info->core) {
    for (const auto* core : store_.cores_from_to(src, dst)) {
      combos.push_back({Piece{core, 0, /*along=*/false, -1}});
    }
  } else if (src_info->core) {
    for (const auto* down : downs) {
      const IsdAs d_core = down->origin();
      const int src_idx = index_of(*down, src);
      if (src_idx >= 0) {
        combos.push_back(
            {Piece{down, static_cast<std::size_t>(src_idx), true, -1}});
        continue;
      }
      for (const auto* core : store_.cores_from_to(src, d_core)) {
        combos.push_back({Piece{core, 0, false, -1}, Piece{down, 0, true, -1}});
      }
    }
  } else if (dst_info->core) {
    for (const auto* up : ups) {
      const IsdAs u_core = up->origin();
      const int dst_idx = index_of(*up, dst);
      if (dst_idx >= 0) {
        combos.push_back(
            {Piece{up, static_cast<std::size_t>(dst_idx), false, -1}});
        continue;
      }
      for (const auto* core : store_.cores_from_to(u_core, dst)) {
        combos.push_back({Piece{up, 0, false, -1}, Piece{core, 0, false, -1}});
      }
    }
  } else {
    for (const auto* up : ups) {
      const IsdAs u_core = up->origin();
      // Destination already on the up segment: single cut segment.
      const int dst_idx = index_of(*up, dst);
      if (dst_idx >= 0) {
        combos.push_back(
            {Piece{up, static_cast<std::size_t>(dst_idx), false, -1}});
      }
      for (const auto* down : downs) {
        const IsdAs d_core = down->origin();
        const int src_idx = index_of(*down, src);
        if (src_idx > 0 && up == ups.front()) {
          // Source already on this down segment (emit once, not per-up).
          combos.push_back(
              {Piece{down, static_cast<std::size_t>(src_idx), true, -1}});
        }
        // Common-AS shortcut below the cores.
        if (options.allow_shortcuts) {
          for (std::size_t i = 1; i < up->pcb.entries.size(); ++i) {
            const IsdAs m = up->pcb.entries[i].ia;
            if (m == src || m == dst) continue;
            const int j = index_of(*down, m);
            if (j <= 0) continue;
            combos.push_back({Piece{up, i, false, -1},
                              Piece{down, static_cast<std::size_t>(j), true, -1}});
          }
        }
        // Peering shortcut: a peer entry on the up side pointing at an AS
        // on the down side (with its reciprocal peer entry).
        if (options.allow_peering) {
          for (std::size_t i = 0; i < up->pcb.entries.size(); ++i) {
            const auto& a_entry = up->pcb.entries[i];
            for (std::size_t pi = 0; pi < a_entry.peers.size(); ++pi) {
              const auto& peer = a_entry.peers[pi];
              const int j = index_of(*down, peer.peer_ia);
              if (j < 0) continue;
              const auto& b_entry =
                  down->pcb.entries[static_cast<std::size_t>(j)];
              for (std::size_t pj = 0; pj < b_entry.peers.size(); ++pj) {
                const auto& back = b_entry.peers[pj];
                if (back.peer_ia != a_entry.ia ||
                    back.local_iface != peer.remote_iface) {
                  continue;
                }
                combos.push_back(
                    {Piece{up, i, false, static_cast<int>(pi)},
                     Piece{down, static_cast<std::size_t>(j), true,
                           static_cast<int>(pj)}});
              }
            }
          }
        }
        // Standard joins.
        if (u_core == d_core) {
          combos.push_back({Piece{up, 0, false, -1}, Piece{down, 0, true, -1}});
        } else {
          for (const auto* core : store_.cores_from_to(u_core, d_core)) {
            combos.push_back({Piece{up, 0, false, -1},
                              Piece{core, 0, false, -1},
                              Piece{down, 0, true, -1}});
          }
        }
      }
    }
  }
  return assemble(combos, src, dst, options);
}

}  // namespace sciera::controlplane
