#include "controlplane/beacon.h"

#include "common/check.h"
#include "crypto/sha256.h"

namespace sciera::controlplane {
namespace {

void write_hop(Writer& w, const dataplane::HopField& hop) {
  w.u8(hop.peering ? 1 : 0);
  w.u8(hop.exp_time);
  w.u16(hop.cons_ingress);
  w.u16(hop.cons_egress);
  w.raw(BytesView{hop.mac.data(), hop.mac.size()});
}

}  // namespace

Bytes AsEntry::signing_payload(BytesView chain_hash) const {
  Writer w;
  w.str("sciera-pcb-entry-v1");
  w.raw(chain_hash);
  w.u64(ia.packed());
  write_hop(w, hop);
  w.u16(beta);
  w.u32(static_cast<std::uint32_t>(peers.size()));
  for (const auto& peer : peers) {
    w.u64(peer.peer_ia.packed());
    w.u16(peer.local_iface);
    w.u16(peer.remote_iface);
    write_hop(w, peer.hop);
  }
  return std::move(w).take();
}

Bytes AsEntry::chain_digest(BytesView prev_chain_hash) const {
  Writer w;
  w.raw(signing_payload(prev_chain_hash));
  w.raw(BytesView{signature.data(), signature.size()});
  const auto digest = crypto::Sha256::hash(w.bytes());
  return Bytes{digest.begin(), digest.end()};
}

bool Pcb::contains(IsdAs ia) const {
  for (const auto& entry : entries) {
    if (entry.ia == ia) return true;
  }
  return false;
}

Bytes Pcb::header_payload() const {
  Writer w;
  w.str("sciera-pcb-v1");
  w.u32(timestamp);
  w.u16(initial_beta);
  return std::move(w).take();
}

std::string Pcb::fingerprint() const {
  std::string out;
  for (const auto& entry : entries) {
    out += entry.ia.to_string();
    out += '[';
    out += std::to_string(entry.hop.cons_ingress);
    out += ',';
    out += std::to_string(entry.hop.cons_egress);
    out += ']';
  }
  return out;
}

Status verify_pcb(const Pcb& pcb, const KeyLookup& keys) {
  if (pcb.entries.empty()) {
    return Error{Errc::kVerificationFailed, "PCB has no entries"};
  }
  Bytes chain = pcb.header_payload();
  for (std::size_t i = 0; i < pcb.entries.size(); ++i) {
    const AsEntry& entry = pcb.entries[i];
    const auto* key = keys(entry.ia);
    if (key == nullptr) {
      return Error{Errc::kNotFound,
                   "no verified key for " + entry.ia.to_string()};
    }
    const Bytes payload = entry.signing_payload(chain);
    if (!crypto::Ed25519::verify(*key, payload, entry.signature)) {
      // Adversary-reachable (tampered beacons), so audited rather than
      // fatal; the counter proves the signature chain did its job.
      count_violation("controlplane.pcb_signature_rejected");
      return Error{Errc::kVerificationFailed,
                   "bad PCB entry signature from " + entry.ia.to_string()};
    }
    chain = entry.chain_digest(chain);
  }
  return {};
}

void sign_entry(Pcb& pcb, std::size_t index,
                const crypto::Ed25519::Seed& seed) {
  Bytes chain = pcb.header_payload();
  for (std::size_t i = 0; i < index; ++i) {
    chain = pcb.entries[i].chain_digest(chain);
  }
  pcb.entries[index].signature =
      crypto::Ed25519::sign(seed, pcb.entries[index].signing_payload(chain));
}

}  // namespace sciera::controlplane
