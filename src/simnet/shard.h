// Shard identity for the parallel simulation core. The network partitions
// along its natural isolation boundaries — per-AS or per-ISD, exactly the
// structure the SCION architecture already draws — and every partition
// ("shard") owns a private event queue. A `Domain` names the shard an
// event belongs to; `ShardMap` is the deterministic IsdAs -> Domain
// assignment the control plane builds once at construction.
//
// Determinism contract: the partition is a pure function of the *set* of
// ASes (sorted before assignment) and the shard count, never of container
// iteration order or pointer values, so the same topology always yields
// the same shard layout and therefore the same per-shard event schedules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/isd_as.h"

namespace sciera::simnet {

using ShardId = std::uint32_t;

// A scheduling domain: either one shard of the partitioned network, the
// global domain (control-plane machinery that spans shards: chaos
// injection, healing sweeps, beacon timers), or "current" — whatever
// domain the presently executing event belongs to (global when no event
// is executing). Plain value type; pass by value.
class Domain {
 public:
  static constexpr ShardId kGlobalId = 0xFFFFFFFFu;
  static constexpr ShardId kCurrentId = 0xFFFFFFFEu;

  constexpr Domain() = default;  // global

  [[nodiscard]] static constexpr Domain global() { return Domain{kGlobalId}; }
  [[nodiscard]] static constexpr Domain shard(ShardId id) {
    return Domain{id};
  }
  [[nodiscard]] static constexpr Domain current() {
    return Domain{kCurrentId};
  }

  [[nodiscard]] constexpr bool is_global() const { return id_ == kGlobalId; }
  [[nodiscard]] constexpr bool is_current() const { return id_ == kCurrentId; }
  [[nodiscard]] constexpr bool is_shard() const {
    return id_ < kCurrentId;
  }
  // Valid only when is_shard().
  [[nodiscard]] constexpr ShardId id() const { return id_; }

  friend constexpr bool operator==(Domain, Domain) = default;

 private:
  explicit constexpr Domain(ShardId id) : id_(id) {}
  ShardId id_ = kGlobalId;
};

// How the AS set folds into shards. kPerAs spreads individual ASes
// round-robin (finest grain, best load balance); kPerIsd keeps each
// isolation domain intact on one shard (intra-ISD links never cross a
// shard boundary, so only long-haul inter-ISD latency bounds the
// synchronization window).
enum class ShardPolicy : std::uint8_t { kPerAs, kPerIsd };

[[nodiscard]] const char* shard_policy_name(ShardPolicy policy);

// Deterministic IsdAs -> Domain partition. Built once from the topology's
// AS list; lookups are binary searches over a sorted table.
class ShardMap {
 public:
  // Single-shard map: every AS lands on shard 0.
  ShardMap() = default;

  // Partitions `ases` (deduplicated, sorted internally) into
  // min(shard_count, #keys) shards under `policy`. A shard_count of 0 is
  // treated as 1.
  ShardMap(std::vector<IsdAs> ases, std::size_t shard_count,
           ShardPolicy policy);

  [[nodiscard]] std::size_t shard_count() const { return shard_count_; }
  [[nodiscard]] ShardPolicy policy() const { return policy_; }

  // Domain of an AS. Unknown ASes map to the global domain — they were
  // not part of the partition, so no shard owns their events.
  [[nodiscard]] Domain domain_of(IsdAs ia) const;

 private:
  std::vector<std::pair<IsdAs, ShardId>> table_;  // sorted by IsdAs
  std::size_t shard_count_ = 1;
  ShardPolicy policy_ = ShardPolicy::kPerAs;
};

}  // namespace sciera::simnet
