// Simulated network elements: messages, ports, and nodes.
//
// A Message is any payload carried across a Link. SCION data-plane packets
// are real serialized bytes (see dataplane/packet.h); control-plane
// exchanges are structured messages — signatures still cover canonical
// byte encodings, so authenticity is enforced end to end.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "common/isd_as.h"
#include "common/time.h"

namespace sciera::simnet {

struct Message {
  virtual ~Message() = default;
  // Size on the wire, used for serialization/bandwidth modelling.
  [[nodiscard]] virtual std::size_t wire_size() const = 0;
  // Human-readable tag for logs.
  [[nodiscard]] virtual std::string tag() const = 0;
};

using MessagePtr = std::shared_ptr<const Message>;

class Link;

// Where a message arrived: the link it came over and the local interface id
// the owner assigned to its end of that link.
struct Arrival {
  Link* link = nullptr;
  IfaceId local_iface = 0;
  SimTime time = 0;
};

// A receiver endpoint. Nodes (routers, servers, hosts) implement this.
class Node {
 public:
  explicit Node(std::string name) : name_(std::move(name)) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  virtual void receive(const MessagePtr& message, const Arrival& arrival) = 0;

  // Batched delivery: every surviving message of one link's same-tick
  // batch in a single call (shared Arrival — same link, iface, time).
  // The default unrolls to receive() per message in order, so the two
  // entry points are behaviorally identical by construction; fast-path
  // nodes (the border router) override this to amortize per-batch work.
  virtual void receive_batch(std::span<const MessagePtr> batch,
                             const Arrival& arrival) {
    for (const MessagePtr& message : batch) receive(message, arrival);
  }

 private:
  std::string name_;
};

}  // namespace sciera::simnet
