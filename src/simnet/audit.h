// Simnet determinism auditor. Every figure in the reproduction rests on
// the claim that a seeded scenario replays bit-identically; this auditor
// makes that claim testable. A scenario callback builds a fresh simulation
// world, drives it, and returns the simulator's ScheduleDigest; the
// auditor runs the scenario twice and compares the full event-schedule
// digests. Hidden iteration-order nondeterminism (pointer-keyed maps),
// uninitialized memory feeding a branch, or wall-clock leakage all perturb
// the schedule and show up as a hash mismatch.
#pragma once

#include <functional>
#include <string>

#include "simnet/simulator.h"

namespace sciera::simnet {

struct DeterminismReport {
  ScheduleDigest first;
  ScheduleDigest second;

  [[nodiscard]] bool deterministic() const { return first == second; }
  // "deterministic: hash=... events=..." or a mismatch description.
  [[nodiscard]] std::string to_string() const;
};

// Builds a world, runs it, returns the executed-schedule digest. The
// callback must construct everything (network, hosts, traffic) from
// scratch so the two runs share no mutable state.
using Scenario = std::function<ScheduleDigest()>;

// Runs the scenario twice and compares digests.
[[nodiscard]] DeterminismReport audit_determinism(const Scenario& scenario);

}  // namespace sciera::simnet
