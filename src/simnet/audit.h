// Simnet determinism auditor. Every figure in the reproduction rests on
// the claim that a seeded scenario replays bit-identically; this auditor
// makes that claim testable. A scenario callback builds a fresh simulation
// world, drives it, and returns the simulator's ScheduleDigest; the
// auditor runs the scenario twice and compares the full event-schedule
// digests. Hidden iteration-order nondeterminism (pointer-keyed maps),
// uninitialized memory feeding a branch, or wall-clock leakage all perturb
// the schedule and show up as a hash mismatch.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "simnet/simulator.h"

namespace sciera::simnet {

struct DeterminismReport {
  ScheduleDigest first;
  ScheduleDigest second;

  [[nodiscard]] bool deterministic() const { return first == second; }
  // "deterministic: hash=... events=..." or a mismatch description.
  [[nodiscard]] std::string to_string() const;
};

// Builds a world, runs it, returns the executed-schedule digest. The
// callback must construct everything (network, hosts, traffic) from
// scratch so the two runs share no mutable state.
using Scenario = std::function<ScheduleDigest()>;

// Runs the scenario twice and compares digests.
[[nodiscard]] DeterminismReport audit_determinism(const Scenario& scenario);

// Thread-parity report: the sharded core's contract is that the merged
// ScheduleDigest is a pure function of the scenario, independent of how
// many worker threads execute the shards. Each entry pairs a thread count
// with the digest that run produced; parity holds when every digest
// matches the single-thread baseline (entry 0).
struct ThreadParityReport {
  std::vector<std::size_t> threads;
  std::vector<ScheduleDigest> digests;

  [[nodiscard]] bool parity() const;
  // "thread-parity: hash=... events=... threads=1,2,4" or the first
  // mismatching thread count with both digests.
  [[nodiscard]] std::string to_string() const;
};

// Builds a world with the given worker-thread count, runs it, returns the
// digest. The callback must construct everything from scratch — runs at
// different thread counts share no mutable state.
using ThreadedScenario = std::function<ScheduleDigest(std::size_t threads)>;

// Runs the scenario once per requested thread count (the first entry is
// the baseline, conventionally 1) and compares every digest against it.
[[nodiscard]] ThreadParityReport audit_thread_parity(
    const ThreadedScenario& scenario, const std::vector<std::size_t>& threads);

}  // namespace sciera::simnet
