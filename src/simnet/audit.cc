#include "simnet/audit.h"

#include "common/check.h"
#include "common/strings.h"

namespace sciera::simnet {

std::string DeterminismReport::to_string() const {
  if (deterministic()) {
    return strformat("deterministic: hash=%016llx events=%llu",
                     static_cast<unsigned long long>(first.hash),
                     static_cast<unsigned long long>(first.executed));
  }
  return strformat(
      "NONDETERMINISTIC: run1 hash=%016llx events=%llu vs "
      "run2 hash=%016llx events=%llu",
      static_cast<unsigned long long>(first.hash),
      static_cast<unsigned long long>(first.executed),
      static_cast<unsigned long long>(second.hash),
      static_cast<unsigned long long>(second.executed));
}

DeterminismReport audit_determinism(const Scenario& scenario) {
  DeterminismReport report;
  report.first = scenario();
  report.second = scenario();
  if (!report.deterministic()) {
    count_violation("simnet.nondeterministic_schedule");
  }
  return report;
}

bool ThreadParityReport::parity() const {
  for (const ScheduleDigest& digest : digests) {
    if (!(digest == digests.front())) return false;
  }
  return !digests.empty();
}

std::string ThreadParityReport::to_string() const {
  if (digests.empty()) return "thread-parity: no runs";
  if (parity()) {
    std::string counts;
    for (std::size_t i = 0; i < threads.size(); ++i) {
      if (i > 0) counts += ",";
      counts += std::to_string(threads[i]);
    }
    return strformat("thread-parity: hash=%016llx events=%llu threads=%s",
                     static_cast<unsigned long long>(digests.front().hash),
                     static_cast<unsigned long long>(digests.front().executed),
                     counts.c_str());
  }
  for (std::size_t i = 1; i < digests.size(); ++i) {
    if (digests[i] == digests.front()) continue;
    return strformat(
        "THREAD-PARITY BROKEN: threads=%llu hash=%016llx events=%llu vs "
        "baseline threads=%llu hash=%016llx events=%llu",
        static_cast<unsigned long long>(threads[i]),
        static_cast<unsigned long long>(digests[i].hash),
        static_cast<unsigned long long>(digests[i].executed),
        static_cast<unsigned long long>(threads.front()),
        static_cast<unsigned long long>(digests.front().hash),
        static_cast<unsigned long long>(digests.front().executed));
  }
  return "thread-parity: inconsistent report";
}

ThreadParityReport audit_thread_parity(
    const ThreadedScenario& scenario,
    const std::vector<std::size_t>& threads) {
  ThreadParityReport report;
  report.threads = threads;
  report.digests.reserve(threads.size());
  for (const std::size_t count : threads) {
    report.digests.push_back(scenario(count));
  }
  if (!report.parity()) {
    count_violation("simnet.thread_parity_broken");
  }
  return report;
}

}  // namespace sciera::simnet
