#include "simnet/audit.h"

#include "common/check.h"
#include "common/strings.h"

namespace sciera::simnet {

std::string DeterminismReport::to_string() const {
  if (deterministic()) {
    return strformat("deterministic: hash=%016llx events=%llu",
                     static_cast<unsigned long long>(first.hash),
                     static_cast<unsigned long long>(first.executed));
  }
  return strformat(
      "NONDETERMINISTIC: run1 hash=%016llx events=%llu vs "
      "run2 hash=%016llx events=%llu",
      static_cast<unsigned long long>(first.hash),
      static_cast<unsigned long long>(first.executed),
      static_cast<unsigned long long>(second.hash),
      static_cast<unsigned long long>(second.executed));
}

DeterminismReport audit_determinism(const Scenario& scenario) {
  DeterminismReport report;
  report.first = scenario();
  report.second = scenario();
  if (!report.deterministic()) {
    count_violation("simnet.nondeterministic_schedule");
  }
  return report;
}

}  // namespace sciera::simnet
