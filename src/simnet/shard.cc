#include "simnet/shard.h"

#include <algorithm>

namespace sciera::simnet {

const char* shard_policy_name(ShardPolicy policy) {
  switch (policy) {
    case ShardPolicy::kPerAs: return "per-as";
    case ShardPolicy::kPerIsd: return "per-isd";
  }
  return "?";
}

ShardMap::ShardMap(std::vector<IsdAs> ases, std::size_t shard_count,
                   ShardPolicy policy)
    : policy_(policy) {
  std::sort(ases.begin(), ases.end());
  ases.erase(std::unique(ases.begin(), ases.end()), ases.end());
  if (shard_count == 0) shard_count = 1;

  table_.reserve(ases.size());
  if (policy == ShardPolicy::kPerIsd) {
    // One key per isolation domain; ASes of an ISD share its shard.
    std::vector<Isd> isds;
    isds.reserve(ases.size());
    for (const IsdAs ia : ases) {
      if (isds.empty() || isds.back() != ia.isd()) isds.push_back(ia.isd());
    }
    shard_count_ = std::min(shard_count, std::max<std::size_t>(isds.size(), 1));
    for (const IsdAs ia : ases) {
      const auto it = std::lower_bound(isds.begin(), isds.end(), ia.isd());
      const auto index = static_cast<std::size_t>(it - isds.begin());
      table_.emplace_back(ia, static_cast<ShardId>(index % shard_count_));
    }
  } else {
    shard_count_ = std::min(shard_count, std::max<std::size_t>(ases.size(), 1));
    for (std::size_t i = 0; i < ases.size(); ++i) {
      table_.emplace_back(ases[i], static_cast<ShardId>(i % shard_count_));
    }
  }
}

Domain ShardMap::domain_of(IsdAs ia) const {
  const auto it = std::lower_bound(
      table_.begin(), table_.end(), ia,
      [](const std::pair<IsdAs, ShardId>& row, IsdAs key) {
        return row.first < key;
      });
  if (it == table_.end() || it->first != ia) return Domain::global();
  return Domain::shard(it->second);
}

}  // namespace sciera::simnet
