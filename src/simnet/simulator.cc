#include "simnet/simulator.h"

#include <algorithm>
#include <bit>
#include <string>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"

namespace sciera::simnet {

namespace obs_cells {
// Registry cells for one metrics-enabled simulator (see enable_metrics).
struct SimulatorGauges {
  obs::Gauge* pending = nullptr;
  obs::Gauge* executed = nullptr;
  obs::Gauge* overflow = nullptr;
};
}  // namespace obs_cells

const char* scheduler_kind_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kBinaryHeap: return "binary-heap";
    case SchedulerKind::kCalendarQueue: return "calendar-queue";
  }
  return "?";
}

Simulator::Simulator(SchedulerConfig config) : config_(config) {
  if (config_.kind == SchedulerKind::kCalendarQueue) {
    SCIERA_CHECK(config_.bucket_width > 0 &&
                     (config_.bucket_width & (config_.bucket_width - 1)) == 0,
                 "simnet.scheduler_config");
    SCIERA_CHECK(config_.bucket_count >= 2 &&
                     (config_.bucket_count & (config_.bucket_count - 1)) == 0,
                 "simnet.scheduler_config");
    width_shift_ =
        std::countr_zero(static_cast<std::uint64_t>(config_.bucket_width));
    buckets_.resize(config_.bucket_count);
    near_end_ = wheel_start_ + config_.bucket_width;
    horizon_end_ = wheel_start_ +
                   config_.bucket_width *
                       static_cast<Duration>(config_.bucket_count);
  }
}

Simulator::~Simulator() { delete gauges_; }

void Simulator::enable_metrics(const std::string& label) {
  sim_thread_role.assert_held();
  if (gauges_ != nullptr) return;
  auto& registry = obs::MetricsRegistry::global();
  const obs::Labels base{{"sim", registry.instance_label("sim", label)},
                         {"scheduler", scheduler_kind_name(config_.kind)}};
  gauges_ = new obs_cells::SimulatorGauges{
      &registry.gauge("sciera_sim_pending_events", base),
      &registry.gauge("sciera_sim_executed_events", base),
      &registry.gauge("sciera_sim_overflow_events", base)};
  update_gauges();
}

void Simulator::update_gauges() {
  if (gauges_ == nullptr) return;
  gauges_->pending->set(static_cast<std::int64_t>(size_));
  gauges_->executed->set(static_cast<std::int64_t>(executed_));
  gauges_->overflow->set(static_cast<std::int64_t>(far_.size()));
}

std::size_t Simulator::bucket_index(SimTime when) const {
  const auto offset =
      static_cast<std::uint64_t>(when - wheel_start_) >> width_shift_;
  return (cursor_ + offset) & (config_.bucket_count - 1);
}

void Simulator::push(Event event) {
  ++size_;
  if (config_.kind == SchedulerKind::kBinaryHeap) {
    heap_.push(std::move(event));
    return;
  }
  // The cursor bucket (and anything the wheel already rotated past, which
  // can only be times >= now_ after a deadline jump) goes straight into
  // the near heap; in-horizon times into their bucket; the rest overflows.
  if (event.when < near_end_) {
    near_.push_back(std::move(event));
    std::push_heap(near_.begin(), near_.end(), Later{});
  } else if (event.when < horizon_end_) {
    buckets_[bucket_index(event.when)].push_back(std::move(event));
    ++buckets_occupied_;
  } else {
    far_.push(std::move(event));
  }
}

void Simulator::advance_cursor() {
  cursor_ = (cursor_ + 1) & (config_.bucket_count - 1);
  wheel_start_ += config_.bucket_width;
  near_end_ += config_.bucket_width;
  horizon_end_ += config_.bucket_width;
  auto& slot = buckets_[cursor_];
  if (!slot.empty()) {
    buckets_occupied_ -= slot.size();
    if (near_.empty()) {
      // The common case (prepare_next only rotates once near_ drains):
      // adopt the whole slot by swap and heapify in O(n). The vectors'
      // capacities circulate between the slot and the near heap, so the
      // steady state allocates nothing.
      std::swap(near_, slot);
      std::make_heap(near_.begin(), near_.end(), Later{});
    } else {
      for (auto& event : slot) {
        near_.push_back(std::move(event));
        std::push_heap(near_.begin(), near_.end(), Later{});
      }
      slot.clear();
    }
  }
  // The rotation uncovered one bucket of new horizon; migrate overflow
  // events that now fit into the wheel.
  while (!far_.empty() && far_.top().when < horizon_end_) {
    Event event = std::move(const_cast<Event&>(far_.top()));
    far_.pop();
    if (event.when < near_end_) {
      near_.push_back(std::move(event));
      std::push_heap(near_.begin(), near_.end(), Later{});
    } else {
      buckets_[bucket_index(event.when)].push_back(std::move(event));
      ++buckets_occupied_;
    }
  }
}

void Simulator::jump_to_far() {
  // Nothing lives in the wheel: rather than rotating bucket by bucket
  // through empty time (a 20-day campaign at 10-minute probe intervals
  // would touch billions of empty slots), teleport the wheel to the
  // earliest overflow event.
  SCIERA_DCHECK(!far_.empty(), "simnet.scheduler_jump_empty");
  const SimTime t = far_.top().when;
  wheel_start_ = t & ~(config_.bucket_width - 1);
  near_end_ = wheel_start_ + config_.bucket_width;
  horizon_end_ = wheel_start_ +
                 config_.bucket_width *
                     static_cast<Duration>(config_.bucket_count);
  while (!far_.empty() && far_.top().when < horizon_end_) {
    Event event = std::move(const_cast<Event&>(far_.top()));
    far_.pop();
    if (event.when < near_end_) {
      near_.push_back(std::move(event));
      std::push_heap(near_.begin(), near_.end(), Later{});
    } else {
      buckets_[bucket_index(event.when)].push_back(std::move(event));
      ++buckets_occupied_;
    }
  }
}

bool Simulator::prepare_next() {
  if (config_.kind == SchedulerKind::kBinaryHeap) return !heap_.empty();
  if (size_ == 0) return false;
  while (near_.empty()) {
    if (buckets_occupied_ == 0) jump_to_far();
    if (near_.empty()) advance_cursor();
  }
  return true;
}

SimTime Simulator::peek_next_time() {
  return config_.kind == SchedulerKind::kBinaryHeap ? heap_.top().when
                                                    : near_.front().when;
}

void Simulator::at(SimTime when, Action action) {
  sim_thread_role.assert_held();
  SCIERA_DCHECK(when >= now_, "simnet.schedule_in_past");
  if (when < now_) {
    // Release builds clamp instead of dying, but the clamp is audited so
    // determinism sweeps can flag the offending component.
    count_violation("simnet.schedule_in_past");
    when = now_;
  }
  push(Event{when, next_seq_++, std::move(action)});
}

void Simulator::after(Duration delay, Action action) {
  sim_thread_role.assert_held();
  at(now_ + (delay < 0 ? 0 : delay), std::move(action));
}

Simulator::Event Simulator::take_next() {
  Event ev;
  if (config_.kind == SchedulerKind::kBinaryHeap) {
    // priority_queue::top() is const; moving through const_cast is fine
    // here because pop() discards the moved-from element immediately.
    ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
  } else {
    std::pop_heap(near_.begin(), near_.end(), Later{});
    ev = std::move(near_.back());
    near_.pop_back();
  }
  --size_;
  // Load-bearing invariant: simulated time never moves backwards. A
  // violation here means the scheduler ordering or an event's timestamp
  // was corrupted, which would silently reorder every downstream
  // experiment.
  SCIERA_CHECK(ev.when >= now_, "simnet.time_monotonic");
  now_ = ev.when;
  ++executed_;
  digest_.fold(static_cast<std::uint64_t>(ev.when));
  digest_.fold(ev.seq);
  digest_.executed = executed_;
  return ev;
}

void Simulator::run_until(SimTime deadline) {
  sim_thread_role.assert_held();
  while (prepare_next() && peek_next_time() <= deadline) {
    Event ev = take_next();
    ev.action();
  }
  if (now_ < deadline) now_ = deadline;
  update_gauges();
}

void Simulator::run_all() {
  sim_thread_role.assert_held();
  while (prepare_next()) {
    Event ev = take_next();
    ev.action();
  }
  update_gauges();
}

}  // namespace sciera::simnet
