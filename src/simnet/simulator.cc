#include "simnet/simulator.h"

#include <algorithm>
#include <bit>
#include <string>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"

namespace sciera::simnet {

namespace obs_cells {
// Registry cells for one metrics-enabled simulator (see enable_metrics).
struct SimulatorGauges {
  obs::Gauge* pending = nullptr;
  obs::Gauge* executed = nullptr;
  obs::Gauge* overflow = nullptr;
};
}  // namespace obs_cells

namespace {

// Identity of the event currently executing on this thread: which
// simulator, which queue, and the exclusive end of the window it may
// schedule same-shard work into. Null sim means "not inside an event"
// (setup code, the driver between windows) — such callers schedule with
// global-domain rights.
struct ExecCtx {
  const void* sim = nullptr;
  std::uint32_t qi = 0;
  SimTime window_end = 0;
};
thread_local ExecCtx t_exec{};

class ExecScope {
 public:
  ExecScope(const void* sim, std::uint32_t qi, SimTime window_end)
      : saved_(t_exec) {
    t_exec = ExecCtx{sim, qi, window_end};
  }
  ~ExecScope() { t_exec = saved_; }
  ExecScope(const ExecScope&) = delete;
  ExecScope& operator=(const ExecScope&) = delete;

 private:
  ExecCtx saved_;
};

SimTime saturating_add(SimTime a, Duration b) {
  if (a > std::numeric_limits<SimTime>::max() - b) {
    return std::numeric_limits<SimTime>::max();
  }
  return a + b;
}

}  // namespace

const char* scheduler_kind_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kBinaryHeap: return "binary-heap";
    case SchedulerKind::kCalendarQueue: return "calendar-queue";
  }
  return "?";
}

Status validate_scheduler_config(const SchedulerConfig& config) {
  if (config.kind == SchedulerKind::kCalendarQueue) {
    if (config.bucket_width <= 0 ||
        (config.bucket_width & (config.bucket_width - 1)) != 0) {
      return Error{Errc::kInvalidArgument,
                   "calendar bucket_width must be a positive power of two "
                   "nanoseconds, got " +
                       std::to_string(config.bucket_width)};
    }
    if (config.bucket_count < 2 ||
        (config.bucket_count & (config.bucket_count - 1)) != 0) {
      return Error{Errc::kInvalidArgument,
                   "calendar bucket_count must be a power of two >= 2, got " +
                       std::to_string(config.bucket_count)};
    }
  }
  if (config.shards == 0) {
    return Error{Errc::kInvalidArgument, "shards must be >= 1"};
  }
  if (config.threads == 0) {
    return Error{Errc::kInvalidArgument, "threads must be >= 1"};
  }
  return {};
}

Simulator::EventQueue::EventQueue(const SchedulerConfig& config)
    : kind(config.kind),
      bucket_width(config.bucket_width),
      bucket_count(config.bucket_count) {
  if (kind == SchedulerKind::kCalendarQueue) {
    width_shift = std::countr_zero(static_cast<std::uint64_t>(bucket_width));
    buckets_.resize(bucket_count);
    near_end_ = wheel_start_ + bucket_width;
    horizon_end_ =
        wheel_start_ + bucket_width * static_cast<Duration>(bucket_count);
  }
}

Simulator::Simulator(SchedulerConfig config) : config_(config) {
  const Status valid = validate_scheduler_config(config_);
  SCIERA_CHECK(valid.ok(), "simnet.scheduler_config");
  shards_ = config_.shards;
  thread_count_ = std::min(config_.threads, shards_);
  if (thread_count_ == 0) thread_count_ = 1;
  // Single shard: one queue, the classic core. Sharded: queue 0 is the
  // global domain, queues 1..shards are the shards.
  const std::size_t queue_count = shards_ <= 1 ? 1 : shards_ + 1;
  queues_.reserve(queue_count);
  for (std::size_t i = 0; i < queue_count; ++i) queues_.emplace_back(config_);
}

Simulator::~Simulator() {
  stop_workers();
  delete gauges_;
}

void Simulator::enable_metrics(const std::string& label) {
  sim_thread_role.assert_held();
  if (gauges_ != nullptr) return;
  auto& registry = obs::MetricsRegistry::global();
  const obs::Labels base{{"sim", registry.instance_label("sim", label)},
                         {"scheduler", scheduler_kind_name(config_.kind)}};
  gauges_ = new obs_cells::SimulatorGauges{
      &registry.gauge("sciera_sim_pending_events", base),
      &registry.gauge("sciera_sim_executed_events", base),
      &registry.gauge("sciera_sim_overflow_events", base)};
  update_gauges();
}

void Simulator::update_gauges() {
  if (gauges_ == nullptr) return;
  std::size_t pending = 0;
  std::uint64_t executed = 0;
  std::size_t overflow = 0;
  for (const EventQueue& q : queues_) {
    pending += q.size_;
    executed += q.executed_;
    overflow += q.far_.size();
  }
  gauges_->pending->set(static_cast<std::int64_t>(pending));
  gauges_->executed->set(static_cast<std::int64_t>(executed));
  gauges_->overflow->set(static_cast<std::int64_t>(overflow));
}

void Simulator::set_lookahead(Duration lookahead) {
  lookahead_ = lookahead < 1 ? 1 : lookahead;
}

std::size_t Simulator::EventQueue::bucket_index(SimTime when) const {
  const auto offset =
      static_cast<std::uint64_t>(when - wheel_start_) >> width_shift;
  return (cursor_ + offset) & (bucket_count - 1);
}

void Simulator::EventQueue::push(Event event) {
  ++size_;
  if (kind == SchedulerKind::kBinaryHeap) {
    heap_.push(std::move(event));
    return;
  }
  // The cursor bucket (and anything the wheel already rotated past, which
  // can only be times >= now_ after a deadline jump) goes straight into
  // the near heap; in-horizon times into their bucket; the rest overflows.
  if (event.when < near_end_) {
    near_.push_back(std::move(event));
    std::push_heap(near_.begin(), near_.end(), Later{});
  } else if (event.when < horizon_end_) {
    buckets_[bucket_index(event.when)].push_back(std::move(event));
    ++buckets_occupied_;
  } else {
    far_.push(std::move(event));
  }
}

void Simulator::EventQueue::advance_cursor() {
  cursor_ = (cursor_ + 1) & (bucket_count - 1);
  wheel_start_ += bucket_width;
  near_end_ += bucket_width;
  horizon_end_ += bucket_width;
  auto& slot = buckets_[cursor_];
  if (!slot.empty()) {
    buckets_occupied_ -= slot.size();
    if (near_.empty()) {
      // The common case (prepare_next only rotates once near_ drains):
      // adopt the whole slot by swap and heapify in O(n). The vectors'
      // capacities circulate between the slot and the near heap, so the
      // steady state allocates nothing.
      std::swap(near_, slot);
      std::make_heap(near_.begin(), near_.end(), Later{});
    } else {
      for (auto& event : slot) {
        near_.push_back(std::move(event));
        std::push_heap(near_.begin(), near_.end(), Later{});
      }
      slot.clear();
    }
  }
  // The rotation uncovered one bucket of new horizon; migrate overflow
  // events that now fit into the wheel.
  while (!far_.empty() && far_.top().when < horizon_end_) {
    Event event = std::move(const_cast<Event&>(far_.top()));
    far_.pop();
    if (event.when < near_end_) {
      near_.push_back(std::move(event));
      std::push_heap(near_.begin(), near_.end(), Later{});
    } else {
      buckets_[bucket_index(event.when)].push_back(std::move(event));
      ++buckets_occupied_;
    }
  }
}

void Simulator::EventQueue::jump_to_far() {
  // Nothing lives in the wheel: rather than rotating bucket by bucket
  // through empty time (a 20-day campaign at 10-minute probe intervals
  // would touch billions of empty slots), teleport the wheel to the
  // earliest overflow event.
  SCIERA_DCHECK(!far_.empty(), "simnet.scheduler_jump_empty");
  const SimTime t = far_.top().when;
  wheel_start_ = t & ~(bucket_width - 1);
  near_end_ = wheel_start_ + bucket_width;
  horizon_end_ =
      wheel_start_ + bucket_width * static_cast<Duration>(bucket_count);
  while (!far_.empty() && far_.top().when < horizon_end_) {
    Event event = std::move(const_cast<Event&>(far_.top()));
    far_.pop();
    if (event.when < near_end_) {
      near_.push_back(std::move(event));
      std::push_heap(near_.begin(), near_.end(), Later{});
    } else {
      buckets_[bucket_index(event.when)].push_back(std::move(event));
      ++buckets_occupied_;
    }
  }
}

bool Simulator::EventQueue::prepare_next() {
  if (kind == SchedulerKind::kBinaryHeap) return !heap_.empty();
  if (size_ == 0) return false;
  while (near_.empty()) {
    if (buckets_occupied_ == 0) jump_to_far();
    if (near_.empty()) advance_cursor();
  }
  return true;
}

SimTime Simulator::EventQueue::peek_next_time() const {
  return kind == SchedulerKind::kBinaryHeap ? heap_.top().when
                                            : near_.front().when;
}

Simulator::Event Simulator::EventQueue::take_next() {
  Event ev;
  if (kind == SchedulerKind::kBinaryHeap) {
    // priority_queue::top() is const; moving through const_cast is fine
    // here because pop() discards the moved-from element immediately.
    ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
  } else {
    std::pop_heap(near_.begin(), near_.end(), Later{});
    ev = std::move(near_.back());
    near_.pop_back();
  }
  --size_;
  // Load-bearing invariant: simulated time never moves backwards. A
  // violation here means the scheduler ordering or an event's timestamp
  // was corrupted, which would silently reorder every downstream
  // experiment.
  SCIERA_CHECK(ev.when >= now_, "simnet.time_monotonic");
  now_ = ev.when;
  ++executed_;
  digest_.fold(static_cast<std::uint64_t>(ev.when));
  digest_.fold(ev.seq);
  digest_.executed = executed_;
  return ev;
}

SimTime Simulator::now() const {
  if (!sharded()) return queues_.front().now_;
  if (t_exec.sim == this) return queues_[t_exec.qi].now_;
  return queues_.front().now_;
}

std::size_t Simulator::pending_events() const {
  if (sharded() && t_exec.sim == this) return queues_[t_exec.qi].size_;
  std::size_t total = 0;
  for (const EventQueue& q : queues_) total += q.size_;
  return total;
}

std::uint64_t Simulator::executed_events() const {
  if (sharded() && t_exec.sim == this) return queues_[t_exec.qi].executed_;
  std::uint64_t total = 0;
  for (const EventQueue& q : queues_) total += q.executed_;
  return total;
}

ScheduleDigest Simulator::schedule_digest() const {
  if (!sharded()) return queues_.front().digest_;
  ScheduleDigest merged;
  std::uint64_t executed = 0;
  for (const EventQueue& q : queues_) {
    merged.fold(q.digest_.hash);
    merged.fold(q.digest_.executed);
    executed += q.digest_.executed;
  }
  merged.executed = executed;
  return merged;
}

std::uint32_t Simulator::queue_index(Domain domain,
                                     std::uint32_t ctx_qi) const {
  if (domain.is_current()) {
    return ctx_qi == kNoContext ? 0 : ctx_qi;
  }
  if (domain.is_global()) return 0;
  const ShardId id = domain.id();
  if (id >= shards_) {
    // A shard id from a different partition (or a stale map). Audited and
    // routed to the global queue rather than corrupting a shard schedule.
    count_violation("simnet.bad_domain");
    return 0;
  }
  return 1 + id;
}

void Simulator::schedule(Domain domain, SimTime when, Action action) {
  if (!sharded()) {
    // Single-shard fast path: every domain is the one queue. Identical
    // event stream (sequence numbers included) to the pre-shard core.
    EventQueue& q = queues_.front();
    SCIERA_DCHECK(when >= q.now_, "simnet.schedule_in_past");
    if (when < q.now_) {
      // Release builds clamp instead of dying, but the clamp is audited so
      // determinism sweeps can flag the offending component.
      count_violation("simnet.schedule_in_past");
      when = q.now_;
    }
    q.push(Event{when, q.next_seq_++, std::move(action)});
    return;
  }

  const bool in_event = t_exec.sim == this;
  const std::uint32_t ctx_qi = in_event ? t_exec.qi : kNoContext;
  const std::uint32_t dst = queue_index(domain, ctx_qi);
  if (!in_event || ctx_qi == dst || ctx_qi == 0) {
    // Direct push: setup/driver code (all queues idle), same-queue
    // scheduling, or a global event (global events run exclusively while
    // every shard parks at the barrier, so they may seed any queue).
    EventQueue& q = queues_[dst];
    SCIERA_DCHECK(when >= q.now_, "simnet.schedule_in_past");
    if (when < q.now_) {
      count_violation("simnet.schedule_in_past");
      when = q.now_;
    }
    q.push(Event{when, q.next_seq_++, std::move(action)});
    return;
  }
  // Cross-shard from inside a shard event: park in the sender's outbox
  // until the window barrier. Conservative synchronization requires the
  // target time to be outside the current window; anything earlier would
  // have to rewind a queue that may already be past it.
  if (when < t_exec.window_end) {
    count_violation("simnet.cross_shard_lookahead");
    when = t_exec.window_end;
  }
  queues_[ctx_qi].outbox_.push_back(OutboundEvent{dst, when, std::move(action)});
}

void Simulator::schedule_after(Domain domain, Duration delay, Action action) {
  schedule(domain, now() + (delay < 0 ? 0 : delay), std::move(action));
}

SimTime Simulator::queue_peek(std::uint32_t qi) {
  EventQueue& q = queues_[qi];
  return q.prepare_next() ? q.peek_next_time() : kNever;
}

void Simulator::run_queue_window(std::uint32_t qi, SimTime window_end) {
  sim_thread_role.assert_held();
  ExecScope scope(this, qi, window_end);
  EventQueue& q = queues_[qi];
  while (q.prepare_next() && q.peek_next_time() < window_end) {
    Event ev = q.take_next();
    ev.action();
  }
}

void Simulator::merge_outboxes() {
  for (EventQueue& src : queues_) {
    for (OutboundEvent& out : src.outbox_) {
      EventQueue& dst = queues_[out.dst];
      SimTime when = out.when;
      if (when < dst.now_) {
        count_violation("simnet.schedule_in_past");
        when = dst.now_;
      }
      dst.push(Event{when, dst.next_seq_++, std::move(out.action)});
    }
    src.outbox_.clear();
  }
}

void Simulator::start_workers() {
  if (!workers_.empty()) return;
  workers_.reserve(thread_count_ - 1);
  for (std::size_t w = 1; w < thread_count_; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

void Simulator::stop_workers() {
  if (workers_.empty()) return;
  pool_mutex_.lock();
  pool_shutdown_ = true;
  pool_mutex_.unlock();
  pool_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

void Simulator::worker_main(std::size_t worker) {
  std::uint64_t seen_round = 0;
  pool_mutex_.lock();
  for (;;) {
    while (!pool_shutdown_ && pool_round_ == seen_round) {
      pool_cv_.wait(pool_mutex_);
    }
    if (pool_shutdown_) {
      pool_mutex_.unlock();
      return;
    }
    seen_round = pool_round_;
    const SimTime window_end = pool_window_end_;
    pool_mutex_.unlock();
    // Static shard->thread mapping: worker w owns shards s with
    // s % thread_count_ == w, in increasing shard order.
    for (std::uint32_t qi = 1 + static_cast<std::uint32_t>(worker);
         qi < queues_.size(); qi += static_cast<std::uint32_t>(thread_count_)) {
      run_queue_window(qi, window_end);
    }
    pool_mutex_.lock();
    if (--pool_pending_ == 0) done_cv_.notify_all();
  }
}

void Simulator::execute_window(SimTime window_end) {
  if (thread_count_ <= 1) {
    for (std::uint32_t qi = 1; qi < queues_.size(); ++qi) {
      run_queue_window(qi, window_end);
    }
    return;
  }
  start_workers();
  pool_mutex_.lock();
  pool_window_end_ = window_end;
  pool_pending_ = thread_count_ - 1;
  ++pool_round_;
  pool_mutex_.unlock();
  pool_cv_.notify_all();
  // The driver is worker 0.
  for (std::uint32_t qi = 1; qi < queues_.size();
       qi += static_cast<std::uint32_t>(thread_count_)) {
    run_queue_window(qi, window_end);
  }
  pool_mutex_.lock();
  while (pool_pending_ != 0) done_cv_.wait(pool_mutex_);
  pool_mutex_.unlock();
}

void Simulator::run_sharded(SimTime deadline) {
  for (;;) {
    const SimTime t_global = queue_peek(0);
    SimTime t_shard = kNever;
    for (std::uint32_t qi = 1; qi < queues_.size(); ++qi) {
      t_shard = std::min(t_shard, queue_peek(qi));
    }
    const SimTime t_min = std::min(t_global, t_shard);
    if (t_min == kNever || t_min > deadline) return;

    if (t_global <= t_shard) {
      // Global events run exclusively: every shard is parked, so the
      // event may touch cross-shard state (chaos cutting a link, a
      // healing sweep over all path services) and seed any queue
      // directly. Re-check the earliest shard event after every global
      // event — it may just have created one.
      ExecScope scope(this, 0, kNever);
      EventQueue& global = queues_.front();
      while (global.prepare_next()) {
        const SimTime t_next = global.peek_next_time();
        if (t_next > deadline) break;
        SimTime earliest_shard = kNever;
        for (std::uint32_t qi = 1; qi < queues_.size(); ++qi) {
          earliest_shard = std::min(earliest_shard, queue_peek(qi));
        }
        if (t_next > earliest_shard) break;
        Event ev = global.take_next();
        ev.action();
      }
      continue;
    }

    // Shard window: conservative bound from the lookahead (minimum
    // cross-shard latency), capped by the next global event (it must see
    // a quiesced network at its timestamp) and by the deadline
    // (+1 because the window end is exclusive and events *at* the
    // deadline must still run).
    SimTime window_end = saturating_add(t_shard, lookahead_);
    window_end = std::min(window_end, t_global);
    window_end = std::min(window_end, saturating_add(deadline, 1));
    execute_window(window_end);
    merge_outboxes();
  }
}

void Simulator::run_until(SimTime deadline) {
  sim_thread_role.assert_held();
  if (!sharded()) {
    EventQueue& q = queues_.front();
    while (q.prepare_next() && q.peek_next_time() <= deadline) {
      Event ev = q.take_next();
      ev.action();
    }
    if (q.now_ < deadline) q.now_ = deadline;
    update_gauges();
    return;
  }
  run_sharded(deadline);
  for (EventQueue& q : queues_) {
    if (q.now_ < deadline) q.now_ = deadline;
  }
  update_gauges();
}

void Simulator::run_all() {
  sim_thread_role.assert_held();
  if (!sharded()) {
    EventQueue& q = queues_.front();
    while (q.prepare_next()) {
      Event ev = q.take_next();
      ev.action();
    }
    update_gauges();
    return;
  }
  run_sharded(kNever);
  // Align the clocks: after a drain every queue reports the same "end of
  // simulation" time (the latest event executed anywhere).
  SimTime latest = 0;
  for (const EventQueue& q : queues_) latest = std::max(latest, q.now_);
  for (EventQueue& q : queues_) {
    if (q.now_ < latest) q.now_ = latest;
  }
  update_gauges();
}

}  // namespace sciera::simnet
