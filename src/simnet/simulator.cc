#include "simnet/simulator.h"

#include <utility>

#include "common/check.h"

namespace sciera::simnet {

void Simulator::at(SimTime when, Action action) {
  SCIERA_DCHECK(when >= now_, "simnet.schedule_in_past");
  if (when < now_) {
    // Release builds clamp instead of dying, but the clamp is audited so
    // determinism sweeps can flag the offending component.
    count_violation("simnet.schedule_in_past");
    when = now_;
  }
  queue_.push(Event{when, next_seq_++, std::move(action)});
}

void Simulator::after(Duration delay, Action action) {
  at(now_ + (delay < 0 ? 0 : delay), std::move(action));
}

Simulator::Event Simulator::take_next() {
  // priority_queue::top() is const; copying the function is cheap enough
  // and keeps this strictly well-defined.
  Event ev = queue_.top();
  queue_.pop();
  // Load-bearing invariant: simulated time never moves backwards. A
  // violation here means the heap ordering or an event's timestamp was
  // corrupted, which would silently reorder every downstream experiment.
  SCIERA_CHECK(ev.when >= now_, "simnet.time_monotonic");
  now_ = ev.when;
  ++executed_;
  digest_.fold(static_cast<std::uint64_t>(ev.when));
  digest_.fold(ev.seq);
  digest_.executed = executed_;
  return ev;
}

void Simulator::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Event ev = take_next();
    ev.action();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run_all() {
  while (!queue_.empty()) {
    Event ev = take_next();
    ev.action();
  }
}

}  // namespace sciera::simnet
