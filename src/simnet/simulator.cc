#include "simnet/simulator.h"

#include <cassert>
#include <utility>

namespace sciera::simnet {

void Simulator::at(SimTime when, Action action) {
  assert(when >= now_);
  queue_.push(Event{when < now_ ? now_ : when, next_seq_++, std::move(action)});
}

void Simulator::after(Duration delay, Action action) {
  at(now_ + (delay < 0 ? 0 : delay), std::move(action));
}

void Simulator::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    // priority_queue::top() is const; move via const_cast is the standard
    // idiom-free workaround, but copying the function is cheap enough and
    // keeps this strictly well-defined.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ++executed_;
    ev.action();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run_all() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ++executed_;
    ev.action();
  }
}

}  // namespace sciera::simnet
