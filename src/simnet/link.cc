#include "simnet/link.h"

#include <algorithm>
#include <cassert>

namespace sciera::simnet {

void Link::attach(int side, Node* node, IfaceId local_iface) {
  assert(side == 0 || side == 1);
  ends_[static_cast<std::size_t>(side)] = End{node, local_iface, 0};
}

void Link::send(int from_side, const MessagePtr& message) {
  assert(from_side == 0 || from_side == 1);
  End& tx = ends_[static_cast<std::size_t>(from_side)];
  End& rx = ends_[static_cast<std::size_t>(from_side ^ 1)];
  assert(tx.node != nullptr && rx.node != nullptr);

  if (!up_) {
    ++stats_.dropped_down;
    return;
  }
  if (config_.loss_probability > 0 && rng_.chance(config_.loss_probability)) {
    ++stats_.dropped_loss;
    return;
  }

  const auto serialization = static_cast<Duration>(
      static_cast<double>(message->wire_size() + config_.encap_overhead_bytes) * 8.0 /
      config_.bandwidth_bps * static_cast<double>(kSecond));

  // Tail-drop if the egress queue for this direction is over capacity.
  const SimTime now = sim_.now();
  const SimTime start = std::max(now, tx.tx_free_at);
  const auto queued_ahead = serialization > 0
      ? static_cast<std::size_t>((start - now) / std::max<Duration>(serialization, 1))
      : 0;
  if (queued_ahead > config_.queue_capacity) {
    ++stats_.dropped_queue;
    return;
  }
  tx.tx_free_at = start + serialization;

  Duration delay = config_.propagation_delay;
  if (config_.jitter_sigma > 0) {
    delay = static_cast<Duration>(static_cast<double>(delay) *
                                  rng_.lognormal_median(1.0, config_.jitter_sigma));
  }

  const SimTime deliver_at = tx.tx_free_at + delay;
  Node* receiver = rx.node;
  Link* self = this;
  const IfaceId rx_iface = rx.iface;
  sim_.at(deliver_at, [receiver, message, self, rx_iface, deliver_at] {
    ++self->stats_.delivered;
    receiver->receive(message, Arrival{self, rx_iface, deliver_at});
  });
}

}  // namespace sciera::simnet
