#include "simnet/link.h"

#include <algorithm>
#include <cassert>

#include "obs/flight_recorder.h"

namespace sciera::simnet {

void Link::attach(int side, Node* node, IfaceId local_iface) {
  sim_thread_role.assert_held();
  assert(side == 0 || side == 1);
  End& end = ends_[static_cast<std::size_t>(side)];
  end = End{};
  end.node = node;
  end.iface = local_iface;
}

void Link::set_label(std::string label) { label_ = std::move(label); }

void Link::set_domains(Domain side0, Domain side1) {
  sim_thread_role.assert_held();
  domains_ = {side0, side1};
  cross_shard_ = side0.is_shard() && side1.is_shard() && side0 != side1;
  if (cross_shard_) {
    dir_rng_ = {rng_.fork("dir0"), rng_.fork("dir1")};
  }
  // Deterministic metric instance labels under sharded execution require
  // registration in wiring order, not first-send order.
  (void)metrics();
}

const std::string& Link::display_name() const {
  static const std::string kUnnamed = "link";
  return label_.empty() ? kUnnamed : label_;
}

Link::Metrics& Link::metrics() const {
  if (metrics_.delivered == nullptr) {
    auto& registry = obs::MetricsRegistry::global();
    const obs::Labels base{
        {"link", registry.instance_label("link", display_name())}};
    metrics_.delivered = &registry.counter("sciera_link_delivered_total", base);
    const auto dropped = [&](const char* reason) {
      obs::Labels labels = base;
      labels.emplace_back("reason", reason);
      return &registry.counter("sciera_link_dropped_total", labels);
    };
    metrics_.dropped_down = dropped("down");
    metrics_.dropped_loss = dropped("loss");
    metrics_.dropped_queue = dropped("queue");
  }
  return metrics_;
}

Link::Stats Link::stats() const {
  const Metrics& m = metrics();
  return Stats{m.delivered->value(), m.dropped_down->value(),
               m.dropped_loss->value(), m.dropped_queue->value()};
}

void Link::set_up(bool up) {
  sim_thread_role.assert_held();
  if (up == up_) return;
  up_ = up;
  if (!up) {
    // Cutting the circuit invalidates everything on the wire right now:
    // drain both directions' pending batches (each frame counted dropped
    // exactly once) and reset the serializer backlog, so an immediate
    // re-up starts from an empty pipe. The already-scheduled delivery
    // events for the drained keys find no batch and do nothing; the
    // epoch bump below keeps any frame that escapes the drain (e.g. one
    // mid-delivery in the running batch) from being resurrected.
    ++down_epoch_;
    for (End& end : ends_) {
      for (TimeBatch& batch : end.batches) {
        for (std::size_t i = 0; i < batch.items.size(); ++i) {
          metrics().dropped_down->inc();
          obs::FlightRecorder::global().record(
              obs::TraceType::kPacketDrop, sim_.now(), sim_.executed_events(),
              display_name(), "cut-in-flight");
        }
        recycle_batch(std::move(batch.items));
      }
      end.batches.clear();
      end.tx_free_at = 0;
    }
  }
  obs::FlightRecorder::global().record(
      obs::TraceType::kLinkTransition, sim_.now(), sim_.executed_events(),
      display_name(), up ? "up" : "down");
  if (on_state_change_) on_state_change_(up, sim_.now());
}

void Link::send(int from_side, const MessagePtr& message) {
  sim_thread_role.assert_held();
  assert(from_side == 0 || from_side == 1);
  if (cross_shard_) {
    send_cross(from_side, message);
    return;
  }
  End& tx = ends_[static_cast<std::size_t>(from_side)];
  End& rx = ends_[static_cast<std::size_t>(from_side ^ 1)];
  assert(tx.node != nullptr && rx.node != nullptr);

  if (!up_) {
    metrics().dropped_down->inc();
    return;
  }
  if (config_.loss_probability > 0 && rng_.chance(config_.loss_probability)) {
    metrics().dropped_loss->inc();
    return;
  }

  const auto serialization = static_cast<Duration>(
      static_cast<double>(message->wire_size() + config_.encap_overhead_bytes) * 8.0 /
      config_.bandwidth_bps * static_cast<double>(kSecond));

  // Tail-drop if the egress queue for this direction is over capacity.
  const SimTime now = sim_.now();
  const SimTime start = std::max(now, tx.tx_free_at);
  const auto queued_ahead = serialization > 0
      ? static_cast<std::size_t>((start - now) / std::max<Duration>(serialization, 1))
      : 0;
  if (queued_ahead > config_.queue_capacity) {
    metrics().dropped_queue->inc();
    return;
  }
  tx.tx_free_at = start + serialization;

  Duration delay = config_.propagation_delay;
  if (config_.jitter_sigma > 0) {
    delay = static_cast<Duration>(static_cast<double>(delay) *
                                  rng_.lognormal_median(1.0, config_.jitter_sigma));
  }

  const SimTime deliver_at = tx.tx_free_at + delay;
  // Same-tick batching: frames due at the same instant on this direction
  // ride one scheduler event. The epoch is captured per frame — a down
  // transition can land between two sends of the same tick.
  const int to_side = from_side ^ 1;
  TimeBatch* batch = nullptr;
  for (TimeBatch& candidate : rx.batches) {
    if (candidate.when == deliver_at) {
      batch = &candidate;
      break;
    }
  }
  if (batch == nullptr) {
    TimeBatch& fresh = rx.batches.emplace_back();
    fresh.when = deliver_at;
    if (!spare_batches_.empty()) {
      fresh.items = std::move(spare_batches_.back());
      spare_batches_.pop_back();
    }
    batch = &fresh;
    // The closure captures {this, to_side} only — small enough for the
    // std::function small-buffer optimization, so scheduling a batch
    // does not heap-allocate. The event fires exactly at deliver_at, so
    // the simulator clock recovers the batch key.
    sim_.schedule(simnet::Domain::current(), deliver_at,
                  [this, to_side] { deliver_batch(to_side, sim_.now()); });
  }
  batch->items.push_back(Pending{message, down_epoch_});
}

void Link::deliver_batch(int to_side, SimTime deliver_at) {
  End& rx = ends_[static_cast<std::size_t>(to_side)];
  std::size_t index = rx.batches.size();
  for (std::size_t i = 0; i < rx.batches.size(); ++i) {
    if (rx.batches[i].when == deliver_at) {
      index = i;
      break;
    }
  }
  if (index == rx.batches.size()) return;
  std::vector<Pending> items = std::move(rx.batches[index].items);
  rx.batches[index] = std::move(rx.batches.back());
  rx.batches.pop_back();
  // Filter the batch down to the frames still alive, then hand the
  // survivors to the receiver in one call. Safety net: set_up(false)
  // drains pending batches at the cut, but a cut that lands after this
  // batch was moved out only shows up as an epoch mismatch here.
  delivery_scratch_.clear();
  for (Pending& item : items) {
    if (!up_ || item.epoch != down_epoch_) {
      metrics().dropped_down->inc();
      obs::FlightRecorder::global().record(
          obs::TraceType::kPacketDrop, sim_.now(), sim_.executed_events(),
          display_name(), "cut-in-flight");
      continue;
    }
    metrics().delivered->inc();
    delivery_scratch_.push_back(std::move(item.message));
  }
  items.clear();
  recycle_batch(std::move(items));
  if (!delivery_scratch_.empty()) {
    rx.node->receive_batch(delivery_scratch_,
                           Arrival{this, rx.iface, deliver_at});
  }
  // Drop the frame references promptly so pooled frames recycle at the
  // end of the tick, not at the next delivery on this link.
  delivery_scratch_.clear();
}

void Link::send_cross(int from_side, const MessagePtr& message) {
  End& tx = ends_[static_cast<std::size_t>(from_side)];
  // up_/config_ are only written from the global domain (runs exclusively
  // while shards park at the barrier), so these reads are ordered.
  if (!up_) {
    metrics().dropped_down->inc();
    return;
  }
  Rng& rng = dir_rng_[static_cast<std::size_t>(from_side)];
  if (config_.loss_probability > 0 && rng.chance(config_.loss_probability)) {
    metrics().dropped_loss->inc();
    return;
  }

  const auto serialization = static_cast<Duration>(
      static_cast<double>(message->wire_size() + config_.encap_overhead_bytes) *
      8.0 / config_.bandwidth_bps * static_cast<double>(kSecond));

  const SimTime now = sim_.now();
  const SimTime start = std::max(now, tx.tx_free_at);
  const auto queued_ahead =
      serialization > 0
          ? static_cast<std::size_t>(
                (start - now) / std::max<Duration>(serialization, 1))
          : 0;
  if (queued_ahead > config_.queue_capacity) {
    metrics().dropped_queue->inc();
    return;
  }
  tx.tx_free_at = start + serialization;

  Duration delay = config_.propagation_delay;
  if (config_.jitter_sigma > 0) {
    delay = static_cast<Duration>(
        static_cast<double>(delay) *
        rng.lognormal_median(1.0, config_.jitter_sigma));
  }
  // The window driver promised the receiving shard nothing arrives
  // earlier than the lookahead; hold jitter's low tail to that promise.
  const Duration floor = cross_delay_floor();
  if (delay < floor) delay = floor;

  const SimTime deliver_at = tx.tx_free_at + delay;
  const int to_side = from_side ^ 1;
  // One event per frame: same-tick batching would need a shared batch
  // table across shards. Cross-shard links are the long-haul WAN edges —
  // low frame rate per tick — so the per-frame capture (one MessagePtr,
  // heap-allocated closure) is the right trade against a lock.
  sim_.schedule(domains_[static_cast<std::size_t>(to_side)], deliver_at,
                [this, to_side, message, epoch = down_epoch_] {
                  deliver_cross(to_side, message, epoch);
                });
}

void Link::deliver_cross(int to_side, const MessagePtr& message,
                         std::uint64_t epoch) {
  End& rx = ends_[static_cast<std::size_t>(to_side)];
  if (!up_ || epoch != down_epoch_) {
    metrics().dropped_down->inc();
    obs::FlightRecorder::global().record(
        obs::TraceType::kPacketDrop, sim_.now(), sim_.executed_events(),
        display_name(), "cut-in-flight");
    return;
  }
  metrics().delivered->inc();
  rx.node->receive_batch(std::span<const MessagePtr>(&message, 1),
                         Arrival{this, rx.iface, sim_.now()});
}

void Link::recycle_batch(std::vector<Pending> items) {
  // Bounded: more retired vectors than this means a burst already paid
  // its allocations; keeping a few covers the steady state.
  constexpr std::size_t kMaxSpareBatches = 64;
  items.clear();
  if (spare_batches_.size() < kMaxSpareBatches) {
    spare_batches_.push_back(std::move(items));
  }
}

}  // namespace sciera::simnet
