#include "simnet/node.h"

// Node is an interface; the translation unit anchors its vtable.
