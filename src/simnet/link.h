// Duplex point-to-point link with propagation delay, serialization at a
// configured bandwidth, bounded egress queues, optional jitter/loss, and an
// up/down state driven by failure schedules. Models the L2 circuits
// (VLANs/MPLS) that carry SCIERA's inter-AS connectivity.
#pragma once

#include <array>
#include <cstdint>

#include "common/rng.h"
#include "simnet/node.h"
#include "simnet/simulator.h"

namespace sciera::simnet {

struct LinkConfig {
  Duration propagation_delay = 5 * kMillisecond;  // one-way
  double bandwidth_bps = 10e9;
  // Log-normal multiplicative jitter sigma applied to each traversal;
  // 0 disables jitter.
  double jitter_sigma = 0.0;
  double loss_probability = 0.0;
  // Egress queue bound per direction, in packets, on top of the one being
  // serialized. Exceeding it drops the packet (tail drop).
  std::size_t queue_capacity = 256;
  // Extra bytes the circuit's local encapsulation adds per frame.
  std::size_t encap_overhead_bytes = 4;
};

class Link {
 public:
  struct Stats {
    std::uint64_t delivered = 0;
    std::uint64_t dropped_down = 0;
    std::uint64_t dropped_loss = 0;
    std::uint64_t dropped_queue = 0;
  };

  Link(Simulator& sim, LinkConfig config, Rng jitter_rng)
      : sim_(sim), config_(config), rng_(jitter_rng) {}

  // Attaches endpoint `side` (0 or 1). The owner names its end of the link
  // with its own interface id.
  void attach(int side, Node* node, IfaceId local_iface);

  // Sends from endpoint `from_side` to the opposite endpoint.
  void send(int from_side, const MessagePtr& message);

  void set_up(bool up) { up_ = up; }
  [[nodiscard]] bool is_up() const { return up_; }

  [[nodiscard]] const LinkConfig& config() const { return config_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] Node* peer_of(int side) const { return ends_[side ^ 1].node; }
  [[nodiscard]] IfaceId iface_of(int side) const {
    return ends_[static_cast<std::size_t>(side)].iface;
  }

 private:
  struct End {
    Node* node = nullptr;
    IfaceId iface = 0;
    // Time the serializer for this direction becomes free.
    SimTime tx_free_at = 0;
  };

  Simulator& sim_;
  LinkConfig config_;
  Rng rng_;
  std::array<End, 2> ends_{};
  Stats stats_;
  bool up_ = true;
};

}  // namespace sciera::simnet
