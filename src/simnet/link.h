// Duplex point-to-point link with propagation delay, serialization at a
// configured bandwidth, bounded egress queues, optional jitter/loss, and an
// up/down state driven by failure schedules. Models the L2 circuits
// (VLANs/MPLS) that carry SCIERA's inter-AS connectivity.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "simnet/node.h"
#include "simnet/shard.h"
#include "simnet/simulator.h"

namespace sciera::simnet {

struct LinkConfig {
  Duration propagation_delay = 5 * kMillisecond;  // one-way
  double bandwidth_bps = 10e9;
  // Log-normal multiplicative jitter sigma applied to each traversal;
  // 0 disables jitter.
  double jitter_sigma = 0.0;
  double loss_probability = 0.0;
  // Egress queue bound per direction, in packets, on top of the one being
  // serialized. Exceeding it drops the packet (tail drop).
  std::size_t queue_capacity = 256;
  // Extra bytes the circuit's local encapsulation adds per frame.
  std::size_t encap_overhead_bytes = 4;
};

class Link {
 public:
  struct Stats {  // registry-backed snapshot
    std::uint64_t delivered = 0;
    std::uint64_t dropped_down = 0;
    std::uint64_t dropped_loss = 0;
    std::uint64_t dropped_queue = 0;
  };

  Link(Simulator& sim, LinkConfig config, Rng jitter_rng)
      : sim_(sim), config_(config), rng_(jitter_rng) {}

  // Attaches endpoint `side` (0 or 1). The owner names its end of the link
  // with its own interface id.
  void attach(int side, Node* node, IfaceId local_iface);

  // Names the scheduling domain of each endpoint (see shard.h). When the
  // two ends live on different shards the link switches to the
  // cross-shard delivery path: per-direction forked RNGs (the two
  // directions run on different threads), per-frame delivery events
  // scheduled into the receiving shard's queue, and a conservative floor
  // on the traversal delay (cross_delay_floor) so the window driver can
  // count the propagation delay as lookahead. Same-shard and unset
  // domains keep the classic batched path, byte-identical to the
  // pre-shard link. Also registers the metric series eagerly: lazy
  // registration order would depend on which shard sends first.
  // Call after set_label and before the first send.
  void set_domains(Domain side0, Domain side1);
  [[nodiscard]] bool cross_shard() const { return cross_shard_; }

  // Minimum delay any frame can experience on the cross-shard path: half
  // the nominal propagation delay (jitter is multiplicative log-normal
  // around 1, so halving is already a generous allowance), never below
  // one tick. The simulator's lookahead is the minimum of this over all
  // cross-shard links.
  [[nodiscard]] Duration cross_delay_floor() const {
    const Duration floor = config_.propagation_delay / 2;
    return floor < 1 ? 1 : floor;
  }

  // Names the link's metric series after the topology label. Must be set
  // before the first send (once the series is registered the name sticks);
  // unnamed links register as "link", "link#2", ...
  void set_label(std::string label);
  [[nodiscard]] const std::string& label() const { return label_; }

  // Sends from endpoint `from_side` to the opposite endpoint.
  void send(int from_side, const MessagePtr& message);

  // Admin state. Taking the link down cancels every frame currently
  // serialized or propagating on the circuit at the moment of the cut
  // (counted as dropped_down) and clears the serializer backlog: cutting
  // an L2 circuit loses what is on the wire, and a re-up starts from an
  // empty pipe — cancelled frames must not delay, tail-drop, or be
  // double-counted against traffic sent after the link recovers.
  void set_up(bool up);
  [[nodiscard]] bool is_up() const {
    sim_thread_role.assert_held();
    return up_;
  }

  // Admin-state observer: invoked synchronously from set_up on every real
  // transition (after the link's own cut bookkeeping), carrying the new
  // state and the sim time of the change. The self-healing control plane
  // hooks this to drive link-state detection; at most one observer.
  using StateObserver = std::function<void(bool up, SimTime at)>;
  void set_on_state_change(StateObserver observer) {
    on_state_change_ = std::move(observer);
  }

  // Runtime impairment knobs (chaos loss/jitter storms). Affect frames
  // sent after the call; frames already on the wire keep the conditions
  // they were sent under.
  void set_loss_probability(double probability) {
    sim_thread_role.assert_held();
    config_.loss_probability = probability;
  }
  void set_jitter_sigma(double sigma) {
    sim_thread_role.assert_held();
    config_.jitter_sigma = sigma;
  }

  [[nodiscard]] const LinkConfig& config() const {
    sim_thread_role.assert_held();
    return config_;
  }
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] Node* peer_of(int side) const {
    sim_thread_role.assert_held();
    return ends_[side ^ 1].node;
  }
  [[nodiscard]] IfaceId iface_of(int side) const {
    sim_thread_role.assert_held();
    return ends_[static_cast<std::size_t>(side)].iface;
  }

 private:
  // One frame waiting for its delivery tick, with the down-epoch it was
  // sent under (dropped on mismatch when the tick fires).
  struct Pending {
    MessagePtr message;
    std::uint64_t epoch = 0;
  };

  // Frames due at one delivery instant. Kept in a flat vector (a handful
  // of in-flight ticks per direction at most): exact-key linear scan, and
  // retired item vectors recycle through spare_batches_ so steady-state
  // batching does not allocate.
  struct TimeBatch {
    SimTime when = 0;
    std::vector<Pending> items;
  };

  struct End {
    Node* node = nullptr;
    IfaceId iface = 0;
    // Time the serializer for this direction becomes free.
    SimTime tx_free_at = 0;
    // Same-tick delivery batching: frames due at the same instant share
    // one scheduler event instead of one event each. Keyed by delivery
    // time; the simulator event for a key fires exactly once.
    std::vector<TimeBatch> batches;
  };

  // Fires every frame batched for `deliver_at` toward endpoint `to_side`.
  void deliver_batch(int to_side, SimTime deliver_at)
      SCIERA_REQUIRES(sim_thread_role);

  // Cross-shard path: serialization/queueing on the sender's shard, one
  // delivery event per frame in the receiver's shard queue.
  void send_cross(int from_side, const MessagePtr& message);
  void deliver_cross(int to_side, const MessagePtr& message,
                     std::uint64_t epoch);

  // Returns a retired per-tick item vector to the spare pool (capacity
  // kept) so the next batch reuses it.
  void recycle_batch(std::vector<Pending> items)
      SCIERA_REQUIRES(sim_thread_role);

  // Registry cells, registered lazily on first use so test-created links
  // without a topology label still get a unique instance name.
  struct Metrics {
    obs::Counter* delivered = nullptr;
    obs::Counter* dropped_down = nullptr;
    obs::Counter* dropped_loss = nullptr;
    obs::Counter* dropped_queue = nullptr;
  };
  Metrics& metrics() const;
  [[nodiscard]] const std::string& display_name() const;

  // Per-link mutable state is thread-affine to the driving simulation
  // thread; label_, metrics_, and on_state_change_ are wiring set before
  // traffic flows. On a cross-shard link the affinity splits per
  // direction: ends_[i] (serializer clock) belongs to side i's shard,
  // dir_rng_[i] to the sending side, while config_/up_/down_epoch_ are
  // only written from the global domain (chaos, admin) whose events run
  // exclusively — the window barrier orders those writes against every
  // shard read.
  Simulator& sim_;
  LinkConfig config_ SCIERA_GUARDED_BY(sim_thread_role);
  Rng rng_ SCIERA_GUARDED_BY(sim_thread_role);
  std::array<End, 2> ends_ SCIERA_GUARDED_BY(sim_thread_role){};
  std::array<Domain, 2> domains_{};
  bool cross_shard_ = false;
  // Per-direction jitter/loss streams for the cross-shard path: the two
  // directions execute on different threads, and a shared stream would
  // make draw order depend on the interleaving. Forked deterministically
  // from the link's seed stream in set_domains.
  std::array<Rng, 2> dir_rng_{Rng{0}, Rng{0}};
  std::string label_;
  mutable Metrics metrics_;
  bool up_ SCIERA_GUARDED_BY(sim_thread_role) = true;
  // Bumped on every up->down transition; deliveries scheduled before the
  // cut carry the epoch they were sent under and are dropped on mismatch.
  std::uint64_t down_epoch_ SCIERA_GUARDED_BY(sim_thread_role) = 0;
  // Capacity-recycling pools for the delivery path: retired per-tick item
  // vectors, and the scratch the survivors of a batch are handed to the
  // receiver in. Cleared after every delivery; never shrunk.
  std::vector<std::vector<Pending>> spare_batches_
      SCIERA_GUARDED_BY(sim_thread_role);
  std::vector<MessagePtr> delivery_scratch_ SCIERA_GUARDED_BY(sim_thread_role);
  StateObserver on_state_change_;
};

}  // namespace sciera::simnet
