// Discrete-event simulator core. This is the substrate that stands in for
// the physical SCIERA network: links with real propagation delays and
// failure schedules, and deterministic event ordering so every experiment
// replays exactly from its seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time.h"

namespace sciera::simnet {

class Simulator {
 public:
  using Action = std::function<void()>;

  [[nodiscard]] SimTime now() const { return now_; }

  // Schedules an action at an absolute time (>= now).
  void at(SimTime when, Action action);
  // Schedules an action after a relative delay (>= 0).
  void after(Duration delay, Action action);

  // Runs until the queue drains or the given time is passed.
  void run_until(SimTime deadline);
  void run_for(Duration span) { run_until(now_ + span); }
  // Runs until the queue drains completely.
  void run_all();

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // FIFO tie-break for same-time events
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace sciera::simnet
