// Discrete-event simulator core. This is the substrate that stands in for
// the physical SCIERA network: links with real propagation delays and
// failure schedules, and deterministic event ordering so every experiment
// replays exactly from its seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time.h"

namespace sciera::simnet {

// Order-sensitive digest of everything a simulator has executed: every
// (time, sequence-number) pair is folded into an FNV-1a style hash as the
// event fires. Two runs of the same seeded scenario must produce identical
// digests; a mismatch means hidden nondeterminism (iteration over
// pointer-keyed containers, uninitialized memory, wall-clock leakage).
struct ScheduleDigest {
  std::uint64_t hash = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  std::uint64_t executed = 0;

  void fold(std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (value >> shift) & 0xFF;
      hash *= 0x100000001B3ULL;  // FNV-1a prime
    }
  }

  friend bool operator==(const ScheduleDigest&, const ScheduleDigest&) =
      default;
};

class Simulator {
 public:
  using Action = std::function<void()>;

  [[nodiscard]] SimTime now() const { return now_; }

  // Schedules an action at an absolute time (>= now).
  void at(SimTime when, Action action);
  // Schedules an action after a relative delay (>= 0).
  void after(Duration delay, Action action);

  // Runs until the queue drains or the given time is passed.
  void run_until(SimTime deadline);
  void run_for(Duration span) { run_until(now_ + span); }
  // Runs until the queue drains completely.
  void run_all();

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  // Digest of the executed event schedule so far (see ScheduleDigest).
  [[nodiscard]] const ScheduleDigest& schedule_digest() const {
    return digest_;
  }
  [[nodiscard]] std::uint64_t schedule_hash() const { return digest_.hash; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // FIFO tie-break for same-time events
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  // Pops the next event, folds it into the digest, and advances time.
  Event take_next();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  ScheduleDigest digest_;
};

}  // namespace sciera::simnet
