// Discrete-event simulator core. This is the substrate that stands in for
// the physical SCIERA network: links with real propagation delays and
// failure schedules, and deterministic event ordering so every experiment
// replays exactly from its seed.
//
// Two interchangeable scheduler backends implement the same ordering
// contract — events fire in strict (time, insertion-sequence) order:
//
//   kBinaryHeap     the classic std::priority_queue, O(log n) per op.
//                   Kept as the reference implementation and baseline for
//                   the sciera_bench perf trajectory.
//   kCalendarQueue  a calendar queue / timer wheel: near-future events
//                   land in fixed-width time buckets (O(1) amortized
//                   schedule/pop), far-future events wait in an overflow
//                   heap and migrate into the wheel as it rotates. This is
//                   the default: campaign-scale workloads schedule
//                   millions of near-future events where heap comparisons
//                   dominate.
//
// The equivalence is audited, not assumed: the same seeded scenario must
// produce an identical ScheduleDigest under both backends
// (tests/simcore_test.cc, tools/sciera_bench).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/thread_annotations.h"
#include "common/time.h"

namespace sciera::simnet {

namespace obs_cells {
struct SimulatorGauges;
}  // namespace obs_cells

// Order-sensitive digest of everything a simulator has executed: every
// (time, sequence-number) pair is folded into an FNV-1a style hash as the
// event fires. Two runs of the same seeded scenario must produce identical
// digests; a mismatch means hidden nondeterminism (iteration over
// pointer-keyed containers, uninitialized memory, wall-clock leakage).
struct ScheduleDigest {
  std::uint64_t hash = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  std::uint64_t executed = 0;

  void fold(std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (value >> shift) & 0xFF;
      hash *= 0x100000001B3ULL;  // FNV-1a prime
    }
  }

  friend bool operator==(const ScheduleDigest&, const ScheduleDigest&) =
      default;
};

enum class SchedulerKind : std::uint8_t { kBinaryHeap, kCalendarQueue };

[[nodiscard]] const char* scheduler_kind_name(SchedulerKind kind);

struct SchedulerConfig {
  SchedulerKind kind = SchedulerKind::kCalendarQueue;
  // Calendar-queue geometry. The wheel covers bucket_width * bucket_count
  // of simulated time ahead of the cursor; anything beyond waits in the
  // overflow heap. Defaults suit the SCIERA workloads end to end: link
  // serialization lands within one ~262us bucket, and the horizon
  // (~262us x 4096 buckets ≈ 1.07s of simulated time) also covers the
  // control-plane timescale — workload start windows, daemon TTLs, and
  // healing sweeps run on hundreds of milliseconds to a second, and the
  // previous ~134ms horizon pushed all of those through the overflow
  // heap twice (heap insert + wheel migration), which is how the macro
  // bench briefly measured the calendar queue *behind* the heap it
  // replaced. Both values must be powers of two — the per-push bucket
  // mapping then compiles to shift+mask instead of a 64-bit division.
  Duration bucket_width = Duration{1} << 18;  // 262.144us in ns units
  std::size_t bucket_count = 4096;
};

class Simulator {
 public:
  using Action = std::function<void()>;

  Simulator() : Simulator(SchedulerConfig{}) {}
  explicit Simulator(SchedulerConfig config);
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const {
    sim_thread_role.assert_held();
    return now_;
  }
  [[nodiscard]] SchedulerKind scheduler_kind() const { return config_.kind; }

  // Schedules an action at an absolute time (>= now).
  void at(SimTime when, Action action);
  // Schedules an action after a relative delay (>= 0).
  void after(Duration delay, Action action);

  // Runs until the queue drains or the given time is passed.
  void run_until(SimTime deadline);
  void run_for(Duration span) { run_until(now() + span); }
  // Runs until the queue drains completely.
  void run_all();

  [[nodiscard]] std::size_t pending_events() const {
    sim_thread_role.assert_held();
    return size_;
  }
  [[nodiscard]] std::uint64_t executed_events() const {
    sim_thread_role.assert_held();
    return executed_;
  }

  // Digest of the executed event schedule so far (see ScheduleDigest).
  [[nodiscard]] const ScheduleDigest& schedule_digest() const {
    sim_thread_role.assert_held();
    return digest_;
  }
  [[nodiscard]] std::uint64_t schedule_hash() const {
    return schedule_digest().hash;
  }

  // Publishes pending/executed/overflow depths as obs gauges under the
  // given instance label. Off by default: unit tests create thousands of
  // short-lived simulators and must not flood the registry. ScionNetwork
  // enables this for its simulator.
  void enable_metrics(const std::string& label);

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // FIFO tie-break for same-time events
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  using EventHeap = std::priority_queue<Event, std::vector<Event>, Later>;

  void push(Event event) SCIERA_REQUIRES(sim_thread_role);
  // True when at least one event is pending; positions the calendar cursor
  // so that peek_/pop_ see the earliest event.
  [[nodiscard]] bool prepare_next() SCIERA_REQUIRES(sim_thread_role);
  [[nodiscard]] SimTime peek_next_time() SCIERA_REQUIRES(sim_thread_role);
  // Pops the next event, folds it into the digest, and advances time.
  Event take_next() SCIERA_REQUIRES(sim_thread_role);

  // Calendar-queue internals (config_.kind == kCalendarQueue).
  [[nodiscard]] std::size_t bucket_index(SimTime when) const
      SCIERA_REQUIRES(sim_thread_role);
  void advance_cursor() SCIERA_REQUIRES(sim_thread_role);
  void jump_to_far() SCIERA_REQUIRES(sim_thread_role);
  void update_gauges() SCIERA_REQUIRES(sim_thread_role);

  // config_ and width_shift_ are construction-time constants; everything
  // below is event-queue state owned by the driving thread (today the one
  // global sim_thread_role, one role per shard once the parallel core
  // lands — see common/thread_annotations.h).
  SchedulerConfig config_;
  int width_shift_ = 0;  // log2(bucket_width); widths are powers of two
  SimTime now_ SCIERA_GUARDED_BY(sim_thread_role) = 0;
  std::uint64_t next_seq_ SCIERA_GUARDED_BY(sim_thread_role) = 0;
  std::uint64_t executed_ SCIERA_GUARDED_BY(sim_thread_role) = 0;
  std::size_t size_ SCIERA_GUARDED_BY(sim_thread_role) = 0;
  ScheduleDigest digest_ SCIERA_GUARDED_BY(sim_thread_role);

  // kBinaryHeap backend.
  EventHeap heap_ SCIERA_GUARDED_BY(sim_thread_role);

  // kCalendarQueue backend: `near_` holds the cursor bucket's events as a
  // manual (when, seq) min-heap (std::push_heap/pop_heap over a plain
  // vector, so a whole drained bucket can be adopted via swap + O(n)
  // make_heap and bucket capacities recycle instead of reallocating);
  // `buckets_` hold unordered events within the wheel horizon; `far_`
  // holds everything past the horizon.
  std::vector<Event> near_ SCIERA_GUARDED_BY(sim_thread_role);
  std::vector<std::vector<Event>> buckets_ SCIERA_GUARDED_BY(sim_thread_role);
  // Events currently in buckets_.
  std::size_t buckets_occupied_ SCIERA_GUARDED_BY(sim_thread_role) = 0;
  EventHeap far_ SCIERA_GUARDED_BY(sim_thread_role);
  std::size_t cursor_ SCIERA_GUARDED_BY(sim_thread_role) = 0;
  // Start time of the cursor bucket.
  SimTime wheel_start_ SCIERA_GUARDED_BY(sim_thread_role) = 0;
  // wheel_start_ + bucket_width.
  SimTime near_end_ SCIERA_GUARDED_BY(sim_thread_role) = 0;
  // wheel_start_ + width * count.
  SimTime horizon_end_ SCIERA_GUARDED_BY(sim_thread_role) = 0;

  // Owned, null when disabled.
  obs_cells::SimulatorGauges* gauges_ SCIERA_GUARDED_BY(sim_thread_role) =
      nullptr;
};

}  // namespace sciera::simnet
