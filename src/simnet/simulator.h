// Discrete-event simulator core. This is the substrate that stands in for
// the physical SCIERA network: links with real propagation delays and
// failure schedules, and deterministic event ordering so every experiment
// replays exactly from its seed.
//
// Two interchangeable scheduler backends implement the same ordering
// contract — events fire in strict (time, insertion-sequence) order:
//
//   kBinaryHeap     the classic std::priority_queue, O(log n) per op.
//                   Kept as the reference implementation and baseline for
//                   the sciera_bench perf trajectory.
//   kCalendarQueue  a calendar queue / timer wheel: near-future events
//                   land in fixed-width time buckets (O(1) amortized
//                   schedule/pop), far-future events wait in an overflow
//                   heap and migrate into the wheel as it rotates. This is
//                   the default: campaign-scale workloads schedule
//                   millions of near-future events where heap comparisons
//                   dominate.
//
// Sharded parallel execution (SchedulerConfig::shards > 1): the network
// partitions into shards (see shard.h), each owning a private event queue
// of the configured backend, plus one global queue for machinery that
// spans shards (chaos injection, healing sweeps). Synchronization is
// conservative: shards execute lock-free inside a window bounded by the
// minimum cross-shard link latency (the lookahead the speed of light
// hands us for free on long-haul links), cross-shard messages queue in
// per-shard outboxes, and the driver merges outboxes in fixed shard order
// at every window barrier. The shard->thread mapping is static
// (shard s -> thread s mod T), and the merge is deterministic, so the
// executed schedule — and therefore ScheduleDigest — is byte-identical
// for any thread count, including 1.
//
// The equivalence is audited, not assumed: the same seeded scenario must
// produce an identical ScheduleDigest under both backends and any thread
// count (tests/simcore_test.cc, tests/parallel_test.cc, tools/sciera_bench).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/time.h"
#include "simnet/shard.h"

namespace sciera::simnet {

namespace obs_cells {
struct SimulatorGauges;
}  // namespace obs_cells

// Order-sensitive digest of everything a simulator has executed: every
// (time, sequence-number) pair is folded into an FNV-1a style hash as the
// event fires. Two runs of the same seeded scenario must produce identical
// digests; a mismatch means hidden nondeterminism (iteration over
// pointer-keyed containers, uninitialized memory, wall-clock leakage).
// Sharded runs keep one digest per queue and merge them in queue-id order,
// so the merged digest is a pure function of the per-shard schedules and
// never of thread interleaving.
struct ScheduleDigest {
  std::uint64_t hash = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  std::uint64_t executed = 0;

  void fold(std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (value >> shift) & 0xFF;
      hash *= 0x100000001B3ULL;  // FNV-1a prime
    }
  }

  friend bool operator==(const ScheduleDigest&, const ScheduleDigest&) =
      default;
};

enum class SchedulerKind : std::uint8_t { kBinaryHeap, kCalendarQueue };

[[nodiscard]] const char* scheduler_kind_name(SchedulerKind kind);

struct SchedulerConfig {
  SchedulerKind kind = SchedulerKind::kCalendarQueue;
  // Calendar-queue geometry. The wheel covers bucket_width * bucket_count
  // of simulated time ahead of the cursor; anything beyond waits in the
  // overflow heap. Defaults suit the SCIERA workloads end to end: link
  // serialization lands within one ~262us bucket, and the horizon
  // (~262us x 4096 buckets ≈ 1.07s of simulated time) also covers the
  // control-plane timescale — workload start windows, daemon TTLs, and
  // healing sweeps run on hundreds of milliseconds to a second, and the
  // previous ~134ms horizon pushed all of those through the overflow
  // heap twice (heap insert + wheel migration), which is how the macro
  // bench briefly measured the calendar queue *behind* the heap it
  // replaced. Both values must be powers of two — the per-push bucket
  // mapping then compiles to shift+mask instead of a 64-bit division.
  Duration bucket_width = Duration{1} << 18;  // 262.144us in ns units
  std::size_t bucket_count = 4096;
  // Parallel core geometry. shards == 1 is the classic single-queue core
  // (zero overhead, byte-identical to the pre-shard simulator). shards > 1
  // partitions the event schedule into that many shard queues plus one
  // global queue; threads caps the worker count (clamped to shards).
  std::size_t shards = 1;
  std::size_t threads = 1;
};

// Validates scheduler geometry before a Simulator is built from it:
// calendar buckets must be positive powers of two (the wheel maps times
// with shift+mask; a degenerate geometry silently corrupts the mapping),
// and shard/thread counts must be >= 1. Tools validate user-supplied
// configs with this and exit cleanly; the Simulator constructor enforces
// the same contract with SCIERA_CHECK.
[[nodiscard]] Status validate_scheduler_config(const SchedulerConfig& config);

class Simulator {
 public:
  using Action = std::function<void()>;

  // "No pending event" sentinel for window computations.
  static constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

  Simulator() : Simulator(SchedulerConfig{}) {}
  explicit Simulator(SchedulerConfig config);
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Simulated time of the calling context: the executing shard's clock
  // from inside an event, the global clock otherwise.
  [[nodiscard]] SimTime now() const;
  [[nodiscard]] SchedulerKind scheduler_kind() const { return config_.kind; }
  [[nodiscard]] std::size_t shard_count() const { return shards_; }
  [[nodiscard]] std::size_t thread_count() const { return thread_count_; }

  // The shard-aware scheduling entry point. `domain` names the queue the
  // action executes on: a shard, the global domain, or Domain::current()
  // to inherit the executing event's domain. Scheduling across shards
  // from inside a shard event is deferred to the next window barrier and
  // must respect the lookahead window (`when` at or after the current
  // window's end); violations are clamped and audited
  // ("simnet.cross_shard_lookahead").
  void schedule(Domain domain, SimTime when, Action action);
  void schedule_after(Domain domain, Duration delay, Action action);

  // Legacy single-domain entry points, kept for one PR as shims over
  // schedule(Domain::current(), ...). New code in src/ must name its
  // domain explicitly; the `deprecated-api` lint rule polices call sites.
  void at(SimTime when, Action action) {
    schedule(Domain::current(), when, std::move(action));
  }
  void after(Duration delay, Action action) {
    schedule_after(Domain::current(), delay, std::move(action));
  }

  // Conservative lookahead for cross-shard scheduling: the minimum
  // latency any cross-shard interaction can have. ScionNetwork sets this
  // to the minimum cross-shard link delay after wiring the topology.
  // Must be >= 1 (the default); only meaningful when shards > 1.
  void set_lookahead(Duration lookahead);
  [[nodiscard]] Duration lookahead() const { return lookahead_; }

  // Runs until the queues drain or the given time is passed.
  void run_until(SimTime deadline);
  void run_for(Duration span) { run_until(now() + span); }
  // Runs until the queues drain completely.
  void run_all();

  // Pending/executed counts: per-queue from inside an event (race-free on
  // worker threads), totals across all queues otherwise.
  [[nodiscard]] std::size_t pending_events() const;
  [[nodiscard]] std::uint64_t executed_events() const;

  // Digest of the executed event schedule so far (see ScheduleDigest).
  // Single-shard: the queue's digest verbatim (byte-identical to the
  // pre-shard core). Sharded: per-queue digests folded in queue-id order.
  [[nodiscard]] ScheduleDigest schedule_digest() const;
  [[nodiscard]] std::uint64_t schedule_hash() const {
    return schedule_digest().hash;
  }

  // Publishes pending/executed/overflow depths as obs gauges under the
  // given instance label. Off by default: unit tests create thousands of
  // short-lived simulators and must not flood the registry. ScionNetwork
  // enables this for its simulator.
  void enable_metrics(const std::string& label);

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // FIFO tie-break for same-time events
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  using EventHeap = std::priority_queue<Event, std::vector<Event>, Later>;

  // A cross-shard message parked until the next window barrier.
  struct OutboundEvent {
    std::uint32_t dst;  // destination queue index
    SimTime when;
    Action action;
  };

  // One event queue of the configured backend. Queue 0 is the global
  // domain's (and the only queue when shards == 1); queue 1 + s belongs
  // to shard s. During a window each queue is driven by exactly one
  // thread (static shard->thread mapping); between windows the driver
  // owns all of them — the barrier's mutex hand-off publishes the state.
  struct EventQueue {
    explicit EventQueue(const SchedulerConfig& config);
    EventQueue(EventQueue&&) = default;

    void push(Event event);
    // True when at least one event is pending; positions the calendar
    // cursor so that peek/take see the earliest event.
    [[nodiscard]] bool prepare_next();
    [[nodiscard]] SimTime peek_next_time() const;
    // Pops the next event, folds it into the digest, and advances time.
    Event take_next();

    // Calendar-queue internals (kind == kCalendarQueue).
    [[nodiscard]] std::size_t bucket_index(SimTime when) const;
    void advance_cursor();
    void jump_to_far();

    // Geometry copied from SchedulerConfig at construction.
    SchedulerKind kind;
    Duration bucket_width;
    std::size_t bucket_count;
    int width_shift = 0;  // log2(bucket_width); widths are powers of two

    SimTime now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t size_ = 0;
    ScheduleDigest digest_;

    // kBinaryHeap backend.
    EventHeap heap_;

    // kCalendarQueue backend: `near_` holds the cursor bucket's events as
    // a manual (when, seq) min-heap (std::push_heap/pop_heap over a plain
    // vector, so a whole drained bucket can be adopted via swap + O(n)
    // make_heap and bucket capacities recycle instead of reallocating);
    // `buckets_` hold unordered events within the wheel horizon; `far_`
    // holds everything past the horizon.
    std::vector<Event> near_;
    std::vector<std::vector<Event>> buckets_;
    std::size_t buckets_occupied_ = 0;  // events currently in buckets_
    EventHeap far_;
    std::size_t cursor_ = 0;
    SimTime wheel_start_ = 0;  // start time of the cursor bucket
    SimTime near_end_ = 0;     // wheel_start_ + bucket_width
    SimTime horizon_end_ = 0;  // wheel_start_ + width * count

    // Cross-shard messages produced by this queue's events during the
    // current window; drained by the driver at the barrier in queue-id
    // order, so merge order never depends on thread interleaving.
    std::vector<OutboundEvent> outbox_;
  };

  [[nodiscard]] bool sharded() const { return queues_.size() > 1; }
  // Queue index a Domain resolves to (given the executing context's
  // queue, or kNoContext outside event execution).
  static constexpr std::uint32_t kNoContext = 0xFFFFFFFFu;
  [[nodiscard]] std::uint32_t queue_index(Domain domain,
                                          std::uint32_t ctx_qi) const;

  // Earliest pending time of a queue, kNever when empty. Driver-only.
  [[nodiscard]] SimTime queue_peek(std::uint32_t qi);

  // Sharded driver: alternates exclusive global-event execution with
  // barrier-synchronized shard windows until every queue is past
  // `deadline` (or drained).
  void run_sharded(SimTime deadline);
  // Executes one window [*, window_end) on every shard queue, using the
  // worker pool when thread_count_ > 1.
  void execute_window(SimTime window_end);
  // Drains one queue up to (exclusive) window_end on the calling thread.
  void run_queue_window(std::uint32_t qi, SimTime window_end);
  // Applies parked cross-shard messages in deterministic queue-id order.
  void merge_outboxes();

  // Worker pool: spawned lazily at the first parallel window, parked on
  // pool_cv_ between windows. The driver publishes (round, window_end)
  // under pool_mutex_ and waits on done_cv_; the mutex hand-offs carry
  // the happens-before edges that make per-queue state safe to pass
  // between the driver and workers without per-event locking.
  void start_workers();
  void stop_workers();
  void worker_main(std::size_t worker);

  void update_gauges();

  // config_, shards_, thread_count_, and lookahead_ are set before any
  // event runs; queues_ is structurally fixed after construction and each
  // element is owned by one thread per window as described on EventQueue.
  SchedulerConfig config_;
  std::size_t shards_ = 1;
  std::size_t thread_count_ = 1;
  Duration lookahead_ = 1;
  std::vector<EventQueue> queues_;

  sciera::Mutex pool_mutex_;
  std::condition_variable_any pool_cv_;
  std::condition_variable_any done_cv_;
  std::vector<std::thread> workers_;
  std::uint64_t pool_round_ SCIERA_GUARDED_BY(pool_mutex_) = 0;
  SimTime pool_window_end_ SCIERA_GUARDED_BY(pool_mutex_) = 0;
  std::size_t pool_pending_ SCIERA_GUARDED_BY(pool_mutex_) = 0;
  bool pool_shutdown_ SCIERA_GUARDED_BY(pool_mutex_) = false;

  // Owned, null when disabled.
  obs_cells::SimulatorGauges* gauges_ SCIERA_GUARDED_BY(sim_thread_role) =
      nullptr;
};

}  // namespace sciera::simnet
