// The SCION Orchestrator (Section 4.4): the toolchain that "cut SCION AS
// setup and management from days to a few hours". Modelled as a workflow
// engine over the real network objects:
//   * guided AS onboarding (keys, enrollment, links, bootstrap server),
//   * core management tasks (add certificate, add link),
//   * an aggregated service-status dashboard with per-service health,
//   * the automated certificate-renewal job (with §4.5's open-source CA).
#pragma once

#include <string>
#include <vector>

#include "controlplane/control_plane.h"
#include "endhost/bootstrap_server.h"

namespace sciera::orchestrator {

enum class SetupStep : std::uint8_t {
  kGenerateKeys,
  kRequestCertificate,
  kConfigureBorderRouter,
  kProvisionLinks,
  kDeployBootstrapServer,
  kRegisterSegments,
  kConnectivityCheck,
};

[[nodiscard]] const char* setup_step_name(SetupStep step);

enum class ServiceHealth : std::uint8_t { kHealthy, kDegraded, kDown };

struct ServiceStatus {
  std::string service;  // "control-service", "border-router", ...
  ServiceHealth health = ServiceHealth::kHealthy;
  std::string detail;
};

struct StatusDashboard {
  IsdAs as;
  SimTime generated_at = 0;
  std::vector<ServiceStatus> services;

  [[nodiscard]] bool all_healthy() const;
  [[nodiscard]] std::string render() const;
};

// One operator's view of one AS, driving setup and operations through the
// orchestrator instead of hand-edited configuration.
class Orchestrator {
 public:
  struct SetupReport {
    std::vector<std::pair<SetupStep, bool>> steps;  // step, succeeded
    Duration wall_time = 0;

    [[nodiscard]] bool succeeded() const;
  };

  Orchestrator(controlplane::ScionNetwork& net, IsdAs as);

  // Runs the guided onboarding workflow end to end. Assumes the AS exists
  // in the topology (its L2 circuits are provisioned out of band); the
  // orchestrator does everything the paper lists: certs, router config,
  // bootstrap server, beacon registration, connectivity self-check.
  [[nodiscard]] SetupReport run_setup();

  // Management task: renew this AS's certificate now (delegates to the
  // ISD's CA, §4.5).
  [[nodiscard]] Status renew_certificate();

  // The aggregated status dashboard (§4.4: "easy access to relevant
  // logs, making it easier for new operators to troubleshoot").
  [[nodiscard]] StatusDashboard dashboard();

  [[nodiscard]] const endhost::BootstrapServer* bootstrap_server() const {
    return bootstrap_server_.get();
  }

 private:
  controlplane::ScionNetwork& net_;
  IsdAs as_;
  std::unique_ptr<endhost::BootstrapServer> bootstrap_server_;
};

// Continuous connectivity monitoring (§4.4): "we implemented continuous
// connectivity monitoring from our infrastructure to all connected ASes...
// when an issue arises, our system alerts the affected parties via email."
class Monitor {
 public:
  struct Alert {
    SimTime raised_at = 0;
    IsdAs affected;
    std::string reason;
    bool cleared = false;
    SimTime cleared_at = 0;
  };

  struct Config {
    Duration probe_interval = kMinute;
    // Consecutive failed probes before alerting (avoids flapping mail).
    int failure_threshold = 3;
  };

  Monitor(controlplane::ScionNetwork& net, IsdAs vantage, Config config);
  Monitor(controlplane::ScionNetwork& net, IsdAs vantage)
      : Monitor(net, vantage, Config{}) {}

  // Probes reachability of every AS once (control-plane path existence +
  // data-plane usability) and updates alert state. Returns newly raised
  // alerts.
  std::vector<Alert> probe_all();

  [[nodiscard]] const std::vector<Alert>& alert_log() const { return log_; }
  [[nodiscard]] std::size_t open_alerts() const;

 private:
  controlplane::ScionNetwork& net_;
  IsdAs vantage_;
  Config config_;
  std::map<IsdAs, int> consecutive_failures_;
  std::map<IsdAs, std::size_t> open_alert_index_;
  std::vector<Alert> log_;
};

}  // namespace sciera::orchestrator
