#include "orchestrator/orchestrator.h"

#include "common/strings.h"
#include "topology/parser.h"

namespace sciera::orchestrator {

const char* setup_step_name(SetupStep step) {
  switch (step) {
    case SetupStep::kGenerateKeys: return "generate-keys";
    case SetupStep::kRequestCertificate: return "request-certificate";
    case SetupStep::kConfigureBorderRouter: return "configure-border-router";
    case SetupStep::kProvisionLinks: return "provision-links";
    case SetupStep::kDeployBootstrapServer: return "deploy-bootstrap-server";
    case SetupStep::kRegisterSegments: return "register-segments";
    case SetupStep::kConnectivityCheck: return "connectivity-check";
  }
  return "?";
}

bool StatusDashboard::all_healthy() const {
  for (const auto& service : services) {
    if (service.health != ServiceHealth::kHealthy) return false;
  }
  return true;
}

std::string StatusDashboard::render() const {
  std::string out = strformat("AS %s status @ %s\n", as.to_string().c_str(),
                              format_time(generated_at).c_str());
  for (const auto& service : services) {
    const char* badge = service.health == ServiceHealth::kHealthy ? " OK "
                        : service.health == ServiceHealth::kDegraded
                            ? "WARN"
                            : "DOWN";
    out += strformat("  [%s] %-18s %s\n", badge, service.service.c_str(),
                     service.detail.c_str());
  }
  return out;
}

bool Orchestrator::SetupReport::succeeded() const {
  for (const auto& [step, ok] : steps) {
    if (!ok) return false;
  }
  return !steps.empty();
}

Orchestrator::Orchestrator(controlplane::ScionNetwork& net, IsdAs as)
    : net_(net), as_(as) {}

Orchestrator::SetupReport Orchestrator::run_setup() {
  SetupReport report;
  const SimTime started = net_.sim().now();
  auto* pki = net_.pki(as_.isd());

  // 1-2. Keys + certificate: the network enrolls ASes at construction; a
  // real onboarding re-runs issuance, which we model as a renewal request.
  report.steps.emplace_back(SetupStep::kGenerateKeys,
                            pki != nullptr &&
                                pki->credentials(as_) != nullptr);
  report.steps.emplace_back(SetupStep::kRequestCertificate,
                            renew_certificate().ok());

  // 3-4. Border router configured with every provisioned circuit.
  auto* router = net_.router(as_);
  const auto links = net_.topology().links_of(as_);
  report.steps.emplace_back(SetupStep::kConfigureBorderRouter,
                            router != nullptr);
  bool links_up = !links.empty();
  for (topology::LinkId id : links) {
    links_up = links_up && net_.link(id) != nullptr && net_.link(id)->is_up();
  }
  report.steps.emplace_back(SetupStep::kProvisionLinks, links_up);

  // 5. Bootstrap server serving the signed local topology + TRCs.
  bool bootstrap_ok = false;
  if (pki != nullptr) {
    if (const auto* creds = pki->credentials(as_)) {
      std::vector<cppki::Trc> trcs{pki->trc()};
      bootstrap_server_ = std::make_unique<endhost::BootstrapServer>(
          as_, endhost::local_topology_view(net_.topology(), as_), *creds,
          trcs);
      cppki::TrustStore store;
      bootstrap_ok =
          store.anchor(pki->trc()).ok() &&
          endhost::verify_signed_topology(bootstrap_server_->topology(),
                                          store, net_.sim().now())
              .ok();
    }
  }
  report.steps.emplace_back(SetupStep::kDeployBootstrapServer, bootstrap_ok);

  // 6. Beaconing must have produced segments reaching this AS (cores are
  // origins rather than termini, so they check core segments instead).
  const bool is_core = net_.topology().find_as(as_)->core;
  const bool segments_ok =
      is_core ? !net_.segments().cores_of(as_).empty()
              : !net_.segments().ups_of(as_).empty();
  report.steps.emplace_back(SetupStep::kRegisterSegments, segments_ok);

  // 7. Connectivity self-check: a path to some core AS of the ISD exists
  // and is usable on the data plane.
  bool connectivity = false;
  for (IsdAs core : net_.topology().core_ases(as_.isd())) {
    if (core == as_) {
      connectivity = true;
      break;
    }
    for (const auto& path : net_.paths(as_, core)) {
      if (net_.path_usable(path)) {
        connectivity = true;
        break;
      }
    }
    if (connectivity) break;
  }
  report.steps.emplace_back(SetupStep::kConnectivityCheck, connectivity);

  report.wall_time = net_.sim().now() - started;
  return report;
}

Status Orchestrator::renew_certificate() {
  auto* pki = net_.pki(as_.isd());
  if (pki == nullptr) {
    return Error{Errc::kNotFound, "no PKI for ISD " + std::to_string(as_.isd())};
  }
  const auto* creds = pki->credentials(as_);
  if (creds == nullptr) {
    return Error{Errc::kNotFound, as_.to_string() + " not enrolled"};
  }
  // Force re-issuance through the CA (a renewal, §4.5).
  auto& ca = const_cast<cppki::CertificateAuthority&>(pki->ca());
  auto cert = ca.issue(as_, creds->signing_key.pub, net_.sim().now());
  if (!cert) return cert.error();
  return {};
}

StatusDashboard Orchestrator::dashboard() {
  StatusDashboard dash;
  dash.as = as_;
  dash.generated_at = net_.sim().now();

  // Control service.
  auto* cs = net_.control_service(as_);
  dash.services.push_back(ServiceStatus{
      "control-service",
      cs != nullptr ? ServiceHealth::kHealthy : ServiceHealth::kDown,
      cs != nullptr
          ? strformat("cache %llu hits / %llu misses",
                      static_cast<unsigned long long>(cs->cache_hits()),
                      static_cast<unsigned long long>(cs->cache_misses()))
          : "not running"});

  // Border router + links.
  auto* router = net_.router(as_);
  if (router == nullptr) {
    dash.services.push_back(
        ServiceStatus{"border-router", ServiceHealth::kDown, "not running"});
  } else {
    const auto& stats = router->stats();
    const auto drops = stats.drop_mac + stats.drop_expired +
                       stats.drop_bad_ingress + stats.drop_malformed;
    dash.services.push_back(ServiceStatus{
        "border-router",
        drops > stats.forwarded / 10 ? ServiceHealth::kDegraded
                                     : ServiceHealth::kHealthy,
        strformat("fwd %llu, delivered %llu, drops %llu",
                  static_cast<unsigned long long>(stats.forwarded),
                  static_cast<unsigned long long>(stats.delivered),
                  static_cast<unsigned long long>(drops))});
  }

  std::size_t up_links = 0;
  const auto links = net_.topology().links_of(as_);
  for (topology::LinkId id : links) {
    if (net_.link(id)->is_up()) ++up_links;
  }
  dash.services.push_back(ServiceStatus{
      "links",
      up_links == links.size()
          ? ServiceHealth::kHealthy
          : (up_links == 0 ? ServiceHealth::kDown : ServiceHealth::kDegraded),
      strformat("%zu/%zu circuits up", up_links, links.size())});

  // Certificate freshness.
  const auto* creds = net_.pki(as_.isd())->credentials(as_);
  const SimTime now = net_.sim().now();
  ServiceHealth cert_health = ServiceHealth::kDown;
  std::string cert_detail = "no certificate";
  if (creds != nullptr) {
    if (creds->as_cert.covers(now)) {
      const Duration remaining = creds->as_cert.valid_until - now;
      cert_health = remaining > cppki::kRenewalMargin
                        ? ServiceHealth::kHealthy
                        : ServiceHealth::kDegraded;
      cert_detail = strformat("expires in %.1f days",
                              static_cast<double>(remaining) / kDay);
    } else {
      cert_detail = "EXPIRED";
    }
  }
  dash.services.push_back(
      ServiceStatus{"as-certificate", cert_health, cert_detail});

  // Bootstrap server.
  dash.services.push_back(ServiceStatus{
      "bootstrap-server",
      bootstrap_server_ != nullptr ? ServiceHealth::kHealthy
                                   : ServiceHealth::kDown,
      bootstrap_server_ != nullptr
          ? strformat("%zu requests served",
                      bootstrap_server_->requests_served())
          : "not deployed"});
  return dash;
}

Monitor::Monitor(controlplane::ScionNetwork& net, IsdAs vantage,
                 Config config)
    : net_(net), vantage_(vantage), config_(config) {}

std::vector<Monitor::Alert> Monitor::probe_all() {
  std::vector<Alert> raised;
  for (const auto& as_info : net_.topology().ases()) {
    const IsdAs target = as_info.ia;
    if (target == vantage_) continue;
    bool reachable = false;
    for (const auto& path : net_.paths(vantage_, target)) {
      if (net_.path_usable(path)) {
        reachable = true;
        break;
      }
    }
    if (reachable) {
      consecutive_failures_[target] = 0;
      const auto it = open_alert_index_.find(target);
      if (it != open_alert_index_.end()) {
        log_[it->second].cleared = true;
        log_[it->second].cleared_at = net_.sim().now();
        open_alert_index_.erase(it);
      }
      continue;
    }
    const int failures = ++consecutive_failures_[target];
    if (failures == config_.failure_threshold &&
        !open_alert_index_.contains(target)) {
      Alert alert;
      alert.raised_at = net_.sim().now();
      alert.affected = target;
      alert.reason = strformat("unreachable from %s for %d probes",
                               vantage_.to_string().c_str(), failures);
      open_alert_index_[target] = log_.size();
      log_.push_back(alert);
      raised.push_back(alert);
    }
  }
  return raised;
}

std::size_t Monitor::open_alerts() const { return open_alert_index_.size(); }

}  // namespace sciera::orchestrator
