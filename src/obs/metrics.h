// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms, each keyed by {name, labels}. Components register their
// series once (construction time or first touch) and keep raw pointers to
// the integer cells, so the hot path is a single integer increment with no
// locking and no lookup — the registration map's mutex is only taken when
// a new series is created or a snapshot is exported.
//
// Determinism contract: snapshot() orders series by (name, canonical
// labels), and instance_label() hands out per-kind instance names purely
// from registration order — two processes that construct the same objects
// in the same order export byte-identical snapshots. Counters are relaxed
// atomics so shard worker threads of the parallel core may increment the
// same cell concurrently (a pure sum is interleaving-independent); gauges
// and histograms stay plain integers and remain single-writer (per-shard
// or global-domain owners).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace sciera::obs {

// Label set attached to one series. Order is irrelevant: the registry
// canonicalizes (sorts by key) before using it as part of the series key.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* metric_type_name(MetricType type);

// Monotonic event count. Never reset on the hot path; zero_all() exists
// for delta-based tooling.
class Counter {
 public:
  // Relaxed: counts are pure sums, so no ordering is needed — the window
  // barrier orders any read that feeds a deterministic report.
  void inc(std::uint64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<std::uint64_t> value_{0};
};

// Point-in-time signed level (queue depths, quarantine sizes, ...).
class Gauge {
 public:
  void set(std::int64_t value) { value_ = value; }
  void add(std::int64_t delta) { value_ += delta; }
  [[nodiscard]] std::int64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  std::int64_t value_ = 0;
};

// Fixed-bucket histogram over int64 observations. `bounds` are ascending
// inclusive upper bounds ("le" semantics): an observation lands in the
// first bucket whose bound it does not exceed, or in the implicit
// overflow bucket past the last bound.
class Histogram {
 public:
  void observe(std::int64_t value);

  [[nodiscard]] const std::vector<std::int64_t>& bounds() const {
    return bounds_;
  }
  // i in [0, bounds().size()]; the last index is the overflow bucket.
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_[i];
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::int64_t sum() const { return sum_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<std::int64_t> bounds);

  std::vector<std::int64_t> bounds_;
  std::vector<std::uint64_t> buckets_;  // bounds_.size() + 1
  std::int64_t sum_ = 0;
  std::uint64_t count_ = 0;
};

// One exported series, fully resolved. Histogram buckets are
// non-cumulative here; exporters derive the cumulative "le" form.
struct MetricSample {
  std::string name;
  MetricType type = MetricType::kCounter;
  Labels labels;  // canonical (sorted by key)
  std::uint64_t counter_value = 0;
  std::int64_t gauge_value = 0;
  std::vector<std::int64_t> bounds;
  std::vector<std::uint64_t> buckets;
  std::int64_t sum = 0;
  std::uint64_t count = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry every component reports into.
  static MetricsRegistry& global();

  // Returns the cell for {name, labels}, creating it on first use. The
  // returned reference stays valid for the registry's lifetime (or until
  // reset()). Re-registering an existing key with a different metric type
  // is a programming error (recorded as a check violation; the original
  // cell wins and a detached dummy cell is returned).
  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  // `bounds` must be ascending; only the first registration's bounds are
  // used for a given key.
  Histogram& histogram(std::string_view name, std::vector<std::int64_t> bounds,
                       const Labels& labels = {});

  // Hands out a unique instance name of the given kind: the first caller
  // gets `base` verbatim, later callers get "base#2", "base#3", ... —
  // deterministic across processes as long as construction order is.
  std::string instance_label(std::string_view kind, std::string_view base);

  // Zeroes every cell, keeping series and handles valid (delta tooling).
  void zero_all();
  // Test-only: drops every series and instance name. Invalidates all
  // outstanding cell pointers — only call when no registered component is
  // alive.
  void reset();

  [[nodiscard]] std::vector<MetricSample> snapshot() const;
  [[nodiscard]] std::size_t series() const;

 private:
  struct Series {
    MetricType type = MetricType::kCounter;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  // (metric name, canonical label string) -> series.
  using Key = std::pair<std::string, std::string>;

  Series& find_or_create(std::string_view name, const Labels& labels,
                         MetricType type) SCIERA_REQUIRES(mutex_);

  mutable sciera::Mutex mutex_;
  std::map<Key, Series> series_ SCIERA_GUARDED_BY(mutex_);
  std::map<std::pair<std::string, std::string>, std::uint64_t> instances_
      SCIERA_GUARDED_BY(mutex_);
};

// Canonical (sorted by key) copy of a label set.
[[nodiscard]] Labels canonical_labels(const Labels& labels);

}  // namespace sciera::obs
