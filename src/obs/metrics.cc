#include "obs/metrics.h"

#include <algorithm>

#include "common/check.h"

namespace sciera::obs {
namespace {

// Unambiguous key string for a canonical label set ('\x1f' cannot appear
// in identifiers; values with it would only confuse their own series).
std::string label_key(const Labels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    key += k;
    key += '\x1f';
    key += v;
    key += '\x1f';
  }
  return key;
}

}  // namespace

const char* metric_type_name(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "unknown";
}

Labels canonical_labels(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {
  SCIERA_DCHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
                "obs.histogram_bounds_unsorted");
}

void Histogram::observe(std::int64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  sum_ += value;
  ++count_;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Series& MetricsRegistry::find_or_create(
    std::string_view name, const Labels& labels, MetricType type) {
  Labels canonical = canonical_labels(labels);
  const Key key{std::string{name}, label_key(canonical)};
  auto it = series_.find(key);
  if (it == series_.end()) {
    Series series;
    series.type = type;
    series.labels = std::move(canonical);
    it = series_.emplace(key, std::move(series)).first;
  }
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  const Labels& labels) {
  const sciera::MutexLock lock(mutex_);
  Series& series = find_or_create(name, labels, MetricType::kCounter);
  if (series.type != MetricType::kCounter) {
    count_violation("obs.metric_type_mismatch");
    static Counter orphan;
    return orphan;
  }
  if (!series.counter) series.counter = std::unique_ptr<Counter>(new Counter);
  return *series.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, const Labels& labels) {
  const sciera::MutexLock lock(mutex_);
  Series& series = find_or_create(name, labels, MetricType::kGauge);
  if (series.type != MetricType::kGauge) {
    count_violation("obs.metric_type_mismatch");
    static Gauge orphan;
    return orphan;
  }
  if (!series.gauge) series.gauge = std::unique_ptr<Gauge>(new Gauge);
  return *series.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<std::int64_t> bounds,
                                      const Labels& labels) {
  const sciera::MutexLock lock(mutex_);
  Series& series = find_or_create(name, labels, MetricType::kHistogram);
  if (series.type != MetricType::kHistogram) {
    count_violation("obs.metric_type_mismatch");
    static Histogram orphan{{}};
    return orphan;
  }
  if (!series.histogram) {
    series.histogram =
        std::unique_ptr<Histogram>(new Histogram{std::move(bounds)});
  }
  return *series.histogram;
}

std::string MetricsRegistry::instance_label(std::string_view kind,
                                            std::string_view base) {
  const sciera::MutexLock lock(mutex_);
  const auto n = ++instances_[{std::string{kind}, std::string{base}}];
  if (n == 1) return std::string{base};
  return std::string{base} + "#" + std::to_string(n);
}

void MetricsRegistry::zero_all() {
  const sciera::MutexLock lock(mutex_);
  for (auto& [key, series] : series_) {
    if (series.counter) series.counter->value_ = 0;
    if (series.gauge) series.gauge->value_ = 0;
    if (series.histogram) {
      std::fill(series.histogram->buckets_.begin(),
                series.histogram->buckets_.end(), 0);
      series.histogram->sum_ = 0;
      series.histogram->count_ = 0;
    }
  }
}

void MetricsRegistry::reset() {
  const sciera::MutexLock lock(mutex_);
  series_.clear();
  instances_.clear();
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  const sciera::MutexLock lock(mutex_);
  std::vector<MetricSample> samples;
  samples.reserve(series_.size());
  for (const auto& [key, series] : series_) {
    MetricSample sample;
    sample.name = key.first;
    sample.type = series.type;
    sample.labels = series.labels;
    switch (series.type) {
      case MetricType::kCounter:
        if (series.counter) sample.counter_value = series.counter->value();
        break;
      case MetricType::kGauge:
        if (series.gauge) sample.gauge_value = series.gauge->value();
        break;
      case MetricType::kHistogram:
        if (series.histogram) {
          sample.bounds = series.histogram->bounds();
          sample.buckets = series.histogram->buckets_;
          sample.sum = series.histogram->sum();
          sample.count = series.histogram->count();
        }
        break;
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

std::size_t MetricsRegistry::series() const {
  const sciera::MutexLock lock(mutex_);
  return series_.size();
}

}  // namespace sciera::obs
