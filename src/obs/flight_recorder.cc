#include "obs/flight_recorder.h"

#include <algorithm>

namespace sciera::obs {

const char* trace_type_name(TraceType type) {
  switch (type) {
    case TraceType::kPacketHop: return "packet_hop";
    case TraceType::kPacketDrop: return "packet_drop";
    case TraceType::kScmpEmitted: return "scmp_emitted";
    case TraceType::kBeaconOriginated: return "beacon_originated";
    case TraceType::kPathLookup: return "path_lookup";
    case TraceType::kPathDown: return "path_down";
    case TraceType::kLinkTransition: return "link_transition";
    case TraceType::kProbeBurst: return "probe_burst";
    case TraceType::kChaosInject: return "chaos_inject";
    case TraceType::kLookupDegraded: return "lookup_degraded";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.reserve(capacity_);
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::record(TraceType type, SimTime time, std::uint64_t seq,
                            std::string subject, std::string detail,
                            std::int64_t value) {
  TraceEvent event{type, time, seq, std::move(subject), std::move(detail),
                   value};
  const sciera::MutexLock lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

std::vector<TraceEvent> FlightRecorder::snapshot() const {
  const sciera::MutexLock lock(mutex_);
  std::vector<TraceEvent> events;
  events.reserve(ring_.size());
  // Before the first wrap the ring is in order from slot 0; afterwards the
  // oldest retained event sits at next_.
  const std::size_t start = ring_.size() < capacity_ ? 0 : next_;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    events.push_back(ring_[(start + i) % ring_.size()]);
  }
  return events;
}

std::size_t FlightRecorder::size() const {
  const sciera::MutexLock lock(mutex_);
  return ring_.size();
}

std::uint64_t FlightRecorder::recorded() const {
  const sciera::MutexLock lock(mutex_);
  return recorded_;
}

std::uint64_t FlightRecorder::overwritten() const {
  const sciera::MutexLock lock(mutex_);
  return recorded_ - ring_.size();
}

void FlightRecorder::clear() {
  const sciera::MutexLock lock(mutex_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

}  // namespace sciera::obs
