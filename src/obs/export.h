// Exporters for the observability layer: Prometheus-exposition-style text
// and JSON for metric snapshots, plus text/JSON renderings of the flight
// recorder's trace ring. All output is fully determined by the snapshot
// contents (sorted series, integer values) — byte-identical across
// same-seed runs.
#pragma once

#include <string>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace sciera::obs {

// Prometheus exposition format: one `# TYPE` line per family, then
// `name{label="value"} value` samples; histograms expand to cumulative
// `_bucket{le=...}` samples plus `_sum` and `_count`.
[[nodiscard]] std::string export_text(const MetricsRegistry& registry);

[[nodiscard]] std::string export_json(const MetricsRegistry& registry);

// One line per retained event: seq, sim time (ns), type, subject, detail,
// value — oldest first.
[[nodiscard]] std::string export_trace_text(const FlightRecorder& recorder);

[[nodiscard]] std::string export_trace_json(const FlightRecorder& recorder);

}  // namespace sciera::obs
