// Sim-time flight recorder: a bounded ring buffer of typed trace events
// (packet hops, SCMP emissions, beacon originations, path lookups, link
// transitions, probe bursts). Events carry the simulation time and the
// Simulator's executed-event sequence number at record time, so the
// exported trace has a deterministic total order: same seed, same
// construction order => byte-identical export.
//
// The recorder deliberately has no dependency on simnet — callers pass
// (time, seq) explicitly, which also lets analytic (non-simulated) code
// like the measurement campaign record its own tick-indexed events.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "common/time.h"

namespace sciera::obs {

enum class TraceType : std::uint8_t {
  kPacketHop,         // border router forwarded a packet out an interface
  kPacketDrop,        // in-flight delivery cancelled (e.g. circuit cut)
  kScmpEmitted,       // router originated an SCMP message
  kBeaconOriginated,  // a beaconing sweep installed fresh segments
  kPathLookup,        // daemon / control-service path lookup (hit or miss)
  kPathDown,          // SCMP feedback quarantined a path fingerprint
  kLinkTransition,    // link admin state flipped up/down
  kProbeBurst,        // measurement campaign finished one probe interval
  kChaosInject,       // chaos engine applied a fault-plan event
  kLookupDegraded,    // daemon served a degraded (stale/empty) lookup
};

[[nodiscard]] const char* trace_type_name(TraceType type);

struct TraceEvent {
  TraceType type = TraceType::kPacketHop;
  SimTime time = 0;       // simulation time of the event
  std::uint64_t seq = 0;  // Simulator::executed_events() at record time
  std::string subject;    // emitting component ("br-71-225", link label, ...)
  std::string detail;     // free-form context ("egress=3", "hit", ...)
  std::int64_t value = 0; // optional numeric payload
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;

  explicit FlightRecorder(std::size_t capacity);
  FlightRecorder() : FlightRecorder(kDefaultCapacity) {}

  // The process-wide recorder the instrumented components feed.
  static FlightRecorder& global();

  void record(TraceType type, SimTime time, std::uint64_t seq,
              std::string subject, std::string detail = {},
              std::int64_t value = 0);

  // Retained events, oldest first (at most capacity()).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const;
  // Total events ever recorded / evicted by the ring bound.
  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t overwritten() const;

  void clear();

 private:
  const std::size_t capacity_;  // immutable after construction
  mutable sciera::Mutex mutex_;
  std::vector<TraceEvent> ring_ SCIERA_GUARDED_BY(mutex_);
  // Ring slot the next event lands in.
  std::size_t next_ SCIERA_GUARDED_BY(mutex_) = 0;
  std::uint64_t recorded_ SCIERA_GUARDED_BY(mutex_) = 0;
};

}  // namespace sciera::obs
