#include "obs/export.h"

#include "common/strings.h"

namespace sciera::obs {
namespace {

// Escapes per the Prometheus exposition rules for label values (also a
// valid JSON string body for the characters we emit).
std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

// {label="value",...} with an optional extra label appended (used for the
// histogram "le" label). Empty label sets render as nothing.
std::string label_block(const Labels& labels, std::string_view extra_key = {},
                        std::string_view extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + escape(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += std::string{extra_key} + "=\"" + std::string{extra_value} + "\"";
  }
  out += "}";
  return out;
}

std::string json_labels(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += '"';
    out += escape(k);
    out += "\":\"";
    out += escape(v);
    out += '"';
  }
  out += "}";
  return out;
}

}  // namespace

std::string export_text(const MetricsRegistry& registry) {
  const auto samples = registry.snapshot();
  std::string out;
  std::string current_family;
  for (const auto& sample : samples) {
    if (sample.name != current_family) {
      current_family = sample.name;
      out += "# TYPE " + sample.name + " " +
             metric_type_name(sample.type) + "\n";
    }
    switch (sample.type) {
      case MetricType::kCounter:
        out += sample.name + label_block(sample.labels) +
               strformat(" %llu\n",
                         static_cast<unsigned long long>(sample.counter_value));
        break;
      case MetricType::kGauge:
        out += sample.name + label_block(sample.labels) +
               strformat(" %lld\n",
                         static_cast<long long>(sample.gauge_value));
        break;
      case MetricType::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < sample.bounds.size(); ++i) {
          cumulative += sample.buckets[i];
          out += sample.name + "_bucket" +
                 label_block(sample.labels, "le",
                             std::to_string(sample.bounds[i])) +
                 strformat(" %llu\n",
                           static_cast<unsigned long long>(cumulative));
        }
        cumulative += sample.buckets.empty() ? 0 : sample.buckets.back();
        out += sample.name + "_bucket" +
               label_block(sample.labels, "le", "+Inf") +
               strformat(" %llu\n",
                         static_cast<unsigned long long>(cumulative));
        out += sample.name + "_sum" + label_block(sample.labels) +
               strformat(" %lld\n", static_cast<long long>(sample.sum));
        out += sample.name + "_count" + label_block(sample.labels) +
               strformat(" %llu\n",
                         static_cast<unsigned long long>(sample.count));
        break;
      }
    }
  }
  return out;
}

std::string export_json(const MetricsRegistry& registry) {
  const auto samples = registry.snapshot();
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& sample : samples) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + escape(sample.name) + "\",\"type\":\"" +
           metric_type_name(sample.type) + "\",\"labels\":" +
           json_labels(sample.labels);
    switch (sample.type) {
      case MetricType::kCounter:
        out += strformat(",\"value\":%llu",
                         static_cast<unsigned long long>(sample.counter_value));
        break;
      case MetricType::kGauge:
        out += strformat(",\"value\":%lld",
                         static_cast<long long>(sample.gauge_value));
        break;
      case MetricType::kHistogram: {
        out += ",\"bounds\":[";
        for (std::size_t i = 0; i < sample.bounds.size(); ++i) {
          if (i != 0) out += ",";
          out += std::to_string(sample.bounds[i]);
        }
        out += "],\"buckets\":[";
        for (std::size_t i = 0; i < sample.buckets.size(); ++i) {
          if (i != 0) out += ",";
          out += std::to_string(sample.buckets[i]);
        }
        out += strformat("],\"sum\":%lld,\"count\":%llu",
                         static_cast<long long>(sample.sum),
                         static_cast<unsigned long long>(sample.count));
        break;
      }
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string export_trace_text(const FlightRecorder& recorder) {
  std::string out = strformat(
      "# flight recorder: %llu recorded, %llu overwritten, capacity %zu\n",
      static_cast<unsigned long long>(recorder.recorded()),
      static_cast<unsigned long long>(recorder.overwritten()),
      recorder.capacity());
  for (const auto& event : recorder.snapshot()) {
    out += strformat("%08llu t=%lld %s %s",
                     static_cast<unsigned long long>(event.seq),
                     static_cast<long long>(event.time),
                     trace_type_name(event.type), event.subject.c_str());
    if (!event.detail.empty()) out += " " + event.detail;
    if (event.value != 0) {
      out += strformat(" v=%lld", static_cast<long long>(event.value));
    }
    out += "\n";
  }
  return out;
}

std::string export_trace_json(const FlightRecorder& recorder) {
  std::string out = strformat(
      "{\"recorded\":%llu,\"overwritten\":%llu,\"events\":[",
      static_cast<unsigned long long>(recorder.recorded()),
      static_cast<unsigned long long>(recorder.overwritten()));
  bool first = true;
  for (const auto& event : recorder.snapshot()) {
    if (!first) out += ",";
    first = false;
    out += strformat(
        "{\"seq\":%llu,\"time\":%lld,\"type\":\"%s\",\"subject\":\"%s\","
        "\"detail\":\"%s\",\"value\":%lld}",
        static_cast<unsigned long long>(event.seq),
        static_cast<long long>(event.time), trace_type_name(event.type),
        escape(event.subject).c_str(), escape(event.detail).c_str(),
        static_cast<long long>(event.value));
  }
  out += "]}";
  return out;
}

}  // namespace sciera::obs
