// The IP-Internet baseline: BGP-style path-vector routing over the same
// physical topology. The measurement study (Section 5.4) compares SCMP
// pings over three SCION paths against ICMP pings over "the path defined
// by BGP" — this module computes that single path per AS pair, with
// Gao-Rexford-style export policies and convergence after link failures.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/isd_as.h"
#include "common/time.h"
#include "topology/topology.h"

namespace sciera::bgp {

struct Route {
  // Lower is more preferred: 0 customer-learned, 1 core/peer, 2 provider.
  int pref_class = 3;
  std::vector<IsdAs> as_path;  // from the route's owner to the destination
  std::vector<topology::LinkId> links;
  Duration one_way_delay = 0;

  [[nodiscard]] bool better_than(const Route& other) const;
};

class BgpNetwork {
 public:
  struct Options {
    // Treat core links as sibling/transit links (a Tier-1 backbone
    // consortium). Disabling makes core links strict peering.
    bool core_full_transit = true;
    int max_rounds = 64;
  };

  explicit BgpNetwork(const topology::Topology& topo)
      : BgpNetwork(topo, Options{}) {}
  BgpNetwork(const topology::Topology& topo, Options options);

  // Marks a link up/down and reconverges.
  void set_link_up(topology::LinkId id, bool up);
  void set_link_up(std::string_view label, bool up);
  [[nodiscard]] bool link_up(topology::LinkId id) const;

  // The selected BGP route from src toward dst (nullptr: unreachable).
  [[nodiscard]] const Route* route(IsdAs src, IsdAs dst) const;
  // End-to-end ICMP RTT over the BGP path (propagation only; the caller
  // adds jitter). nullopt when unreachable.
  [[nodiscard]] std::optional<Duration> rtt(IsdAs src, IsdAs dst) const;

  [[nodiscard]] int last_convergence_rounds() const { return rounds_; }
  // Recomputes all routes from scratch (also called by set_link_up).
  void converge();

 private:
  struct Neighbor {
    IsdAs as;
    topology::LinkId link;
    // Relationship of the neighbor from this AS's perspective.
    enum class Rel { kCustomer, kProvider, kCorePeer, kPeer } rel;
  };

  [[nodiscard]] bool exports_to(const Route& route,
                                Neighbor::Rel to_rel) const;

  const topology::Topology& topo_;
  Options options_;
  std::vector<bool> link_state_;
  std::unordered_map<IsdAs, std::vector<Neighbor>> neighbors_;
  // ribs_[src][dst] = selected route.
  std::unordered_map<IsdAs, std::unordered_map<IsdAs, Route>> ribs_;
  int rounds_ = 0;
};

}  // namespace sciera::bgp
