#include "bgp/bgp.h"

#include <algorithm>

namespace sciera::bgp {

using topology::LinkId;
using topology::LinkInfo;
using topology::LinkType;

bool Route::better_than(const Route& other) const {
  if (pref_class != other.pref_class) return pref_class < other.pref_class;
  if (as_path.size() != other.as_path.size()) {
    return as_path.size() < other.as_path.size();
  }
  // Real BGP is delay-blind: equal-length candidates tie-break on router
  // identifiers, not latency. This is precisely why a path-aware network
  // can beat the BGP path (Section 5.4): the deterministic lexicographic
  // tie-break regularly picks a delay-suboptimal route.
  if (as_path != other.as_path) return as_path < other.as_path;
  return links < other.links;
}

BgpNetwork::BgpNetwork(const topology::Topology& topo, Options options)
    : topo_(topo), options_(options) {
  link_state_.assign(topo_.links().size(), true);
  for (const auto& link : topo_.links()) {
    Neighbor::Rel a_sees_b = Neighbor::Rel::kPeer;
    Neighbor::Rel b_sees_a = Neighbor::Rel::kPeer;
    switch (link.type) {
      case LinkType::kCore:
        a_sees_b = b_sees_a = options_.core_full_transit
                                  ? Neighbor::Rel::kCorePeer
                                  : Neighbor::Rel::kPeer;
        break;
      case LinkType::kParentChild:
        a_sees_b = Neighbor::Rel::kCustomer;  // a is the provider
        b_sees_a = Neighbor::Rel::kProvider;
        break;
      case LinkType::kPeering:
        a_sees_b = b_sees_a = Neighbor::Rel::kPeer;
        break;
    }
    neighbors_[link.a].push_back(Neighbor{link.b, link.id, a_sees_b});
    neighbors_[link.b].push_back(Neighbor{link.a, link.id, b_sees_a});
  }
  converge();
}

void BgpNetwork::set_link_up(LinkId id, bool up) {
  if (id < link_state_.size()) {
    link_state_[id] = up;
    converge();
  }
}

void BgpNetwork::set_link_up(std::string_view label, bool up) {
  if (const auto* link = topo_.find_link_by_label(label)) {
    set_link_up(link->id, up);
  }
}

bool BgpNetwork::link_up(LinkId id) const {
  return id < link_state_.size() && link_state_[id];
}

bool BgpNetwork::exports_to(const Route& route, Neighbor::Rel to_rel) const {
  // Gao-Rexford: customer routes go to everyone; peer/provider routes go
  // to customers only. Core-peer (backbone consortium) routes are
  // re-exported to customers and other core peers (full transit).
  switch (route.pref_class) {
    case 0:  // own or customer-learned
      return true;
    case 1:  // learned over a core-peer link
      return to_rel == Neighbor::Rel::kCustomer ||
             to_rel == Neighbor::Rel::kCorePeer;
    case 2:  // learned from a peer or provider
      return to_rel == Neighbor::Rel::kCustomer;
    default:
      return false;
  }
}

void BgpNetwork::converge() {
  ribs_.clear();
  // Seed: every AS originates itself.
  for (const auto& as_info : topo_.ases()) {
    Route self;
    self.pref_class = 0;
    self.as_path = {as_info.ia};
    ribs_[as_info.ia][as_info.ia] = self;
  }

  rounds_ = 0;
  bool changed = true;
  while (changed && rounds_ < options_.max_rounds) {
    changed = false;
    ++rounds_;
    for (const auto& as_info : topo_.ases()) {
      const IsdAs speaker = as_info.ia;
      const auto rib_it = ribs_.find(speaker);
      if (rib_it == ribs_.end()) continue;
      for (const Neighbor& nbr : neighbors_[speaker]) {
        if (!link_state_[nbr.link]) continue;
        const LinkInfo* link = topo_.find_link(nbr.link);
        for (const auto& [dst, route] : rib_it->second) {
          if (!exports_to(route, nbr.rel)) continue;
          // Loop prevention.
          if (std::find(route.as_path.begin(), route.as_path.end(), nbr.as) !=
              route.as_path.end()) {
            continue;
          }
          Route candidate;
          // Preference from the receiver's perspective: what the neighbor
          // is to the receiver (speaker is customer of nbr when nbr sees a
          // customer... invert: receiver's relationship to speaker).
          Neighbor::Rel speaker_rel = Neighbor::Rel::kPeer;
          for (const Neighbor& back : neighbors_[nbr.as]) {
            if (back.link == nbr.link) {
              speaker_rel = back.rel;
              break;
            }
          }
          switch (speaker_rel) {
            case Neighbor::Rel::kCustomer: candidate.pref_class = 0; break;
            case Neighbor::Rel::kCorePeer: candidate.pref_class = 1; break;
            case Neighbor::Rel::kPeer:
            case Neighbor::Rel::kProvider: candidate.pref_class = 2; break;
          }
          candidate.as_path.reserve(route.as_path.size() + 1);
          candidate.as_path.push_back(nbr.as);
          candidate.as_path.insert(candidate.as_path.end(),
                                   route.as_path.begin(),
                                   route.as_path.end());
          candidate.links.reserve(route.links.size() + 1);
          candidate.links.push_back(nbr.link);
          candidate.links.insert(candidate.links.end(), route.links.begin(),
                                 route.links.end());
          candidate.one_way_delay = route.one_way_delay + link->delay;

          Route& current = ribs_[nbr.as][dst];
          if (candidate.better_than(current)) {
            current = candidate;
            changed = true;
          }
        }
      }
    }
  }
}

const Route* BgpNetwork::route(IsdAs src, IsdAs dst) const {
  const auto rib_it = ribs_.find(src);
  if (rib_it == ribs_.end()) return nullptr;
  const auto it = rib_it->second.find(dst);
  if (it == rib_it->second.end() || it->second.pref_class > 2) return nullptr;
  return &it->second;
}

std::optional<Duration> BgpNetwork::rtt(IsdAs src, IsdAs dst) const {
  const Route* r = route(src, dst);
  if (r == nullptr) return std::nullopt;
  // Two-way propagation plus endpoint processing, matching the SCION-side
  // static estimate so the comparison is apples to apples.
  return 2 * r->one_way_delay + 2 * 600 * kMicrosecond;
}

}  // namespace sciera::bgp
