// AES-128 block cipher (FIPS 197), from scratch. The S-box is generated
// programmatically from the GF(2^8) inverse and affine map rather than
// hand-typed, eliminating a whole class of transcription bugs. Used by
// AES-CMAC for SCION hop-field MACs — the forwarding fast path.
#pragma once

#include <array>
#include <cstdint>

#include "common/buffer.h"

namespace sciera::crypto {

class Aes128 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;
  using Block = std::array<std::uint8_t, kBlockSize>;
  using Key = std::array<std::uint8_t, kKeySize>;

  explicit Aes128(const Key& key);

  void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;
  [[nodiscard]] Block encrypt(const Block& in) const;

  // Process-wide count of key expansions run (each construction is one).
  // The key schedule is the expensive part of context setup; the dataplane
  // regression suite asserts it runs once per forwarding key, not once per
  // packet. Monotonic, sim-thread only — tests read deltas.
  [[nodiscard]] static std::uint64_t key_schedules_run();

 private:
  // 11 round keys x 16 bytes.
  std::array<std::uint8_t, 176> round_keys_{};
};

}  // namespace sciera::crypto
