// Ed25519 signatures (RFC 8032), implemented from scratch: GF(2^255-19)
// field arithmetic (51-bit limbs), unified twisted-Edwards point addition,
// variable-time scalar multiplication, and scalar arithmetic mod the group
// order. Variable-time is acceptable here: keys live inside a simulated
// control plane, not on an exposed host. Curve constants (d, 2d, sqrt(-1))
// are computed from first principles at startup, not transcribed.
#pragma once

#include <array>
#include <cstdint>

#include "common/buffer.h"
#include "common/result.h"

namespace sciera::crypto {

struct Ed25519 {
  static constexpr std::size_t kSeedSize = 32;
  static constexpr std::size_t kPublicKeySize = 32;
  static constexpr std::size_t kSignatureSize = 64;

  using Seed = std::array<std::uint8_t, kSeedSize>;
  using PublicKey = std::array<std::uint8_t, kPublicKeySize>;
  using Signature = std::array<std::uint8_t, kSignatureSize>;

  // Derives the public key for a 32-byte seed (the RFC 8032 private key).
  static PublicKey public_key(const Seed& seed);

  static Signature sign(const Seed& seed, BytesView message);

  [[nodiscard]] static bool verify(const PublicKey& pub, BytesView message,
                                   const Signature& sig);
};

// A convenience bundle for PKI code.
struct KeyPair {
  Ed25519::Seed seed{};
  Ed25519::PublicKey pub{};

  static KeyPair from_seed(const Ed25519::Seed& seed) {
    return KeyPair{seed, Ed25519::public_key(seed)};
  }
};

}  // namespace sciera::crypto
