// Derives the SHA-2 round constants from first principles: the fractional
// bits of sqrt(p) and cbrt(p) for the first primes, computed with exact
// integer arithmetic (no floating point, no hand-typed constant tables).
// The FIPS 180-4 definition is K_i = frac(cbrt(prime_i)) * 2^w truncated.
#pragma once

#include <array>
#include <cstdint>

namespace sciera::crypto::detail {

// Minimal 256-bit unsigned integer: exactly what integer root extraction
// for the SHA-2 constants needs, nothing more.
struct U256 {
  // Little-endian 64-bit limbs.
  std::uint64_t limb[4] = {0, 0, 0, 0};

  static U256 from_u128(unsigned __int128 v) {
    U256 r;
    r.limb[0] = static_cast<std::uint64_t>(v);
    r.limb[1] = static_cast<std::uint64_t>(v >> 64);
    return r;
  }

  // Full schoolbook product truncated to 256 bits (callers guarantee the
  // true product fits).
  static U256 mul(const U256& a, const U256& b) {
    std::uint64_t out[8] = {0};
    for (int i = 0; i < 4; ++i) {
      std::uint64_t carry = 0;
      for (int j = 0; j < 4; ++j) {
        unsigned __int128 cur =
            static_cast<unsigned __int128>(a.limb[i]) * b.limb[j] +
            out[i + j] + carry;
        out[i + j] = static_cast<std::uint64_t>(cur);
        carry = static_cast<std::uint64_t>(cur >> 64);
      }
      out[i + 4] += carry;
    }
    U256 r;
    for (int i = 0; i < 4; ++i) r.limb[i] = out[i];
    return r;
  }

  [[nodiscard]] int compare(const U256& other) const {
    for (int i = 3; i >= 0; --i) {
      if (limb[i] != other.limb[i]) return limb[i] < other.limb[i] ? -1 : 1;
    }
    return 0;
  }

  // Shift-left by whole bits (< 256 total; overflow bits are dropped, the
  // callers keep values in range).
  [[nodiscard]] U256 shl(unsigned bits) const {
    U256 r;
    const unsigned word = bits / 64;
    const unsigned rem = bits % 64;
    for (int i = 3; i >= 0; --i) {
      std::uint64_t v = 0;
      const int src = i - static_cast<int>(word);
      if (src >= 0) {
        v = limb[src] << rem;
        if (rem != 0 && src - 1 >= 0) v |= limb[src - 1] >> (64 - rem);
      }
      r.limb[i] = v;
    }
    return r;
  }
};

// floor(frac(sqrt(p)) * 2^fracbits) for fracbits <= 64, via
// isqrt(p << (2*fracbits)) mod 2^fracbits.
inline std::uint64_t sqrt_frac_bits(std::uint64_t p, unsigned fracbits) {
  const U256 target = U256::from_u128(p).shl(2 * fracbits);
  // root <= 2^fracbits * sqrt(p); for p <= 409 that is < 2^(fracbits+5).
  unsigned __int128 lo = 0;
  unsigned __int128 hi = (static_cast<unsigned __int128>(1) << (fracbits + 5));
  while (lo < hi) {
    const unsigned __int128 mid = lo + (hi - lo + 1) / 2;
    const U256 m = U256::from_u128(mid);
    if (U256::mul(m, m).compare(target) <= 0) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  if (fracbits == 64) return static_cast<std::uint64_t>(lo);
  return static_cast<std::uint64_t>(lo) &
         ((std::uint64_t{1} << fracbits) - 1);
}

// floor(frac(cbrt(p)) * 2^fracbits) for fracbits <= 64, via
// icbrt(p << (3*fracbits)) mod 2^fracbits.
inline std::uint64_t cbrt_frac_bits(std::uint64_t p, unsigned fracbits) {
  const U256 target = U256::from_u128(p).shl(3 * fracbits);
  // root <= 2^fracbits * cbrt(p); for p <= 409 that is < 2^(fracbits+4).
  unsigned __int128 lo = 0;
  unsigned __int128 hi = (static_cast<unsigned __int128>(1) << (fracbits + 4));
  while (lo < hi) {
    const unsigned __int128 mid = lo + (hi - lo + 1) / 2;
    const U256 m = U256::from_u128(mid);
    const U256 m3 = U256::mul(U256::mul(m, m), m);
    if (m3.compare(target) <= 0) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  if (fracbits == 64) return static_cast<std::uint64_t>(lo);
  return static_cast<std::uint64_t>(lo) &
         ((std::uint64_t{1} << fracbits) - 1);
}

// First 80 primes, enough for SHA-512's K table.
constexpr std::array<std::uint64_t, 80> kPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263,
    269, 271, 277, 281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349,
    353, 359, 367, 373, 379, 383, 389, 397, 401, 409};

}  // namespace sciera::crypto::detail
