#include "crypto/sha512.h"

#include "crypto/primes_frac.h"

namespace sciera::crypto {
namespace {

std::uint64_t rotr(std::uint64_t x, int n) { return (x >> n) | (x << (64 - n)); }

struct Tables {
  std::array<std::uint64_t, 80> k;
  std::array<std::uint64_t, 8> h0;
  Tables() {
    for (int i = 0; i < 80; ++i) {
      k[i] = detail::cbrt_frac_bits(detail::kPrimes[i], 64);
    }
    for (int i = 0; i < 8; ++i) {
      h0[i] = detail::sqrt_frac_bits(detail::kPrimes[i], 64);
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

Sha512::Sha512() : state_(tables().h0) {}

Sha512& Sha512::update(BytesView data) {
  if (data.empty()) return *this;  // empty span may carry a null data()
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (pending_len_ > 0) {
    const std::size_t take = std::min(kBlockSize - pending_len_, data.size());
    std::memcpy(pending_.data() + pending_len_, data.data(), take);
    pending_len_ += take;
    offset = take;
    if (pending_len_ == kBlockSize) {
      compress(pending_.data());
      pending_len_ = 0;
    }
  }
  while (data.size() - offset >= kBlockSize) {
    compress(data.data() + offset);
    offset += kBlockSize;
  }
  if (offset < data.size()) {
    std::memcpy(pending_.data(), data.data() + offset, data.size() - offset);
    pending_len_ = data.size() - offset;
  }
  return *this;
}

Sha512::Digest Sha512::finish() {
  const std::uint64_t bit_len = total_bytes_ * 8;
  const std::uint8_t pad_one = 0x80;
  update(BytesView{&pad_one, 1});
  static constexpr std::uint8_t kZero[kBlockSize] = {};
  while (pending_len_ != kBlockSize - 16) {
    const std::size_t want =
        pending_len_ < kBlockSize - 16 ? (kBlockSize - 16) - pending_len_
                                       : kBlockSize - pending_len_;
    update(BytesView{kZero, want});
  }
  // 128-bit length; the high 64 bits are always 0 for our message sizes.
  std::uint8_t len_be[16] = {};
  for (int i = 0; i < 8; ++i) {
    len_be[8 + i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(BytesView{len_be, 16});
  Digest digest;
  for (int i = 0; i < 8; ++i) {
    for (int b = 0; b < 8; ++b) {
      digest[static_cast<std::size_t>(i * 8 + b)] =
          static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >>
                                    (56 - 8 * b));
    }
  }
  return digest;
}

Sha512::Digest Sha512::hash(BytesView data) {
  Sha512 hasher;
  hasher.update(data);
  return hasher.finish();
}

void Sha512::compress(const std::uint8_t* block) {
  const auto& k = tables().k;
  std::uint64_t w[80];
  for (int i = 0; i < 16; ++i) {
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) v = (v << 8) | block[i * 8 + b];
    w[i] = v;
  }
  for (int i = 16; i < 80; ++i) {
    const std::uint64_t s0 =
        rotr(w[i - 15], 1) ^ rotr(w[i - 15], 8) ^ (w[i - 15] >> 7);
    const std::uint64_t s1 =
        rotr(w[i - 2], 19) ^ rotr(w[i - 2], 61) ^ (w[i - 2] >> 6);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint64_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint64_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 80; ++i) {
    const std::uint64_t s1 = rotr(e, 14) ^ rotr(e, 18) ^ rotr(e, 41);
    const std::uint64_t ch = (e & f) ^ (~e & g);
    const std::uint64_t t1 = h + s1 + ch + k[static_cast<std::size_t>(i)] + w[i];
    const std::uint64_t s0 = rotr(a, 28) ^ rotr(a, 34) ^ rotr(a, 39);
    const std::uint64_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint64_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

}  // namespace sciera::crypto
