#include "crypto/cmac.h"

#include "crypto/hmac.h"

namespace sciera::crypto {
namespace {

// Doubling in GF(2^128) with the CMAC polynomial (Rb = 0x87).
Aes128::Block dbl(const Aes128::Block& in) {
  Aes128::Block out{};
  std::uint8_t carry = 0;
  for (int i = 15; i >= 0; --i) {
    const std::uint8_t b = in[static_cast<std::size_t>(i)];
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((b << 1) | carry);
    carry = b >> 7;
  }
  if (carry) out[15] ^= 0x87;
  return out;
}

}  // namespace

AesCmac::AesCmac(const Aes128::Key& key) : cipher_(key) {
  Aes128::Block zero{};
  const Aes128::Block l = cipher_.encrypt(zero);
  k1_ = dbl(l);
  k2_ = dbl(k1_);
}

AesCmac::Mac AesCmac::compute(BytesView message) const {
  const std::size_t n_blocks =
      message.empty() ? 1 : (message.size() + 15) / 16;
  const bool complete = !message.empty() && message.size() % 16 == 0;

  Aes128::Block x{};
  for (std::size_t i = 0; i + 1 < n_blocks; ++i) {
    for (int b = 0; b < 16; ++b) {
      x[static_cast<std::size_t>(b)] ^= message[i * 16 + static_cast<std::size_t>(b)];
    }
    x = cipher_.encrypt(x);
  }

  Aes128::Block last{};
  const std::size_t tail_offset = (n_blocks - 1) * 16;
  const std::size_t tail_len = message.size() - std::min(message.size(), tail_offset);
  if (complete) {
    for (int b = 0; b < 16; ++b) {
      last[static_cast<std::size_t>(b)] =
          message[tail_offset + static_cast<std::size_t>(b)] ^ k1_[static_cast<std::size_t>(b)];
    }
  } else {
    for (std::size_t b = 0; b < tail_len; ++b) last[b] = message[tail_offset + b];
    last[tail_len] = 0x80;
    for (int b = 0; b < 16; ++b) last[static_cast<std::size_t>(b)] ^= k2_[static_cast<std::size_t>(b)];
  }
  for (int b = 0; b < 16; ++b) last[static_cast<std::size_t>(b)] ^= x[static_cast<std::size_t>(b)];
  return cipher_.encrypt(last);
}

bool AesCmac::verify(BytesView message, BytesView mac) const {
  // Length policy first: an empty or too-short tag must never reach the
  // comparison (comparing zero bytes would succeed vacuously).
  if (mac.size() < kMinTagLen || mac.size() > std::tuple_size_v<Mac>) {
    return false;
  }
  const Mac computed = compute(message);
  return constant_time_equal(BytesView{computed.data(), mac.size()}, mac);
}

}  // namespace sciera::crypto
