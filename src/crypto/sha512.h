// SHA-512 (FIPS 180-4), required by Ed25519. Round constants derived from
// the fractional bits of cbrt/sqrt of the first 80 primes via exact
// integer arithmetic (see primes_frac.h).
#pragma once

#include <array>
#include <cstdint>

#include "common/buffer.h"

namespace sciera::crypto {

class Sha512 {
 public:
  static constexpr std::size_t kDigestSize = 64;
  static constexpr std::size_t kBlockSize = 128;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha512();

  Sha512& update(BytesView data);
  [[nodiscard]] Digest finish();

  static Digest hash(BytesView data);

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint64_t, 8> state_;
  std::uint64_t total_bytes_ = 0;
  std::array<std::uint8_t, kBlockSize> pending_{};
  std::size_t pending_len_ = 0;
};

}  // namespace sciera::crypto
