#include "crypto/ed25519.h"

#include <cstring>

#include "crypto/sha512.h"

namespace sciera::crypto {
namespace {

// ---------------------------------------------------------------------------
// Field arithmetic over GF(p), p = 2^255 - 19, with 5 x 51-bit limbs.
// ---------------------------------------------------------------------------

struct Fe {
  std::uint64_t v[5] = {0, 0, 0, 0, 0};
};

constexpr std::uint64_t kMask51 = (std::uint64_t{1} << 51) - 1;

Fe fe_zero() { return {}; }
Fe fe_one() {
  Fe r;
  r.v[0] = 1;
  return r;
}

Fe fe_add(const Fe& a, const Fe& b);

void fe_carry(Fe& f);

// a - b + 4p, so limbs never go negative for any weakly-reduced inputs.
Fe fe_sub(const Fe& a, const Fe& b) {
  // 2p in 51-bit limbs: {2^52-38, 2^52-2, 2^52-2, 2^52-2, 2^52-2}.
  constexpr std::uint64_t kTwoP0 = 0xFFFFFFFFFFFDAULL;
  constexpr std::uint64_t kTwoPi = 0xFFFFFFFFFFFFEULL;
  Fe r;
  r.v[0] = a.v[0] + kTwoP0 * 2 - b.v[0];
  r.v[1] = a.v[1] + kTwoPi * 2 - b.v[1];
  r.v[2] = a.v[2] + kTwoPi * 2 - b.v[2];
  r.v[3] = a.v[3] + kTwoPi * 2 - b.v[3];
  r.v[4] = a.v[4] + kTwoPi * 2 - b.v[4];
  fe_carry(r);
  return r;
}

// Weak reduction: brings limbs back under ~2^52.
void fe_carry(Fe& f) {
  std::uint64_t c;
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < 4; ++i) {
      c = f.v[i] >> 51;
      f.v[i] &= kMask51;
      f.v[i + 1] += c;
    }
    c = f.v[4] >> 51;
    f.v[4] &= kMask51;
    f.v[0] += c * 19;
  }
}

Fe fe_add(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + b.v[i];
  fe_carry(r);
  return r;
}

Fe fe_mul(const Fe& a, const Fe& b) {
  using u128 = unsigned __int128;
  const std::uint64_t a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3],
                      a4 = a.v[4];
  const std::uint64_t b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3],
                      b4 = b.v[4];
  const std::uint64_t b1_19 = b1 * 19, b2_19 = b2 * 19, b3_19 = b3 * 19,
                      b4_19 = b4 * 19;

  u128 t0 = (u128)a0 * b0 + (u128)a1 * b4_19 + (u128)a2 * b3_19 +
            (u128)a3 * b2_19 + (u128)a4 * b1_19;
  u128 t1 = (u128)a0 * b1 + (u128)a1 * b0 + (u128)a2 * b4_19 +
            (u128)a3 * b3_19 + (u128)a4 * b2_19;
  u128 t2 = (u128)a0 * b2 + (u128)a1 * b1 + (u128)a2 * b0 +
            (u128)a3 * b4_19 + (u128)a4 * b3_19;
  u128 t3 = (u128)a0 * b3 + (u128)a1 * b2 + (u128)a2 * b1 + (u128)a3 * b0 +
            (u128)a4 * b4_19;
  u128 t4 = (u128)a0 * b4 + (u128)a1 * b3 + (u128)a2 * b2 + (u128)a3 * b1 +
            (u128)a4 * b0;

  Fe r;
  std::uint64_t carry;
  r.v[0] = (std::uint64_t)t0 & kMask51;
  carry = (std::uint64_t)(t0 >> 51);
  t1 += carry;
  r.v[1] = (std::uint64_t)t1 & kMask51;
  carry = (std::uint64_t)(t1 >> 51);
  t2 += carry;
  r.v[2] = (std::uint64_t)t2 & kMask51;
  carry = (std::uint64_t)(t2 >> 51);
  t3 += carry;
  r.v[3] = (std::uint64_t)t3 & kMask51;
  carry = (std::uint64_t)(t3 >> 51);
  t4 += carry;
  r.v[4] = (std::uint64_t)t4 & kMask51;
  carry = (std::uint64_t)(t4 >> 51);
  r.v[0] += carry * 19;
  fe_carry(r);
  return r;
}

Fe fe_sq(const Fe& a) { return fe_mul(a, a); }

// Full reduction into [0, p) and serialization, little-endian 32 bytes.
void fe_tobytes(std::uint8_t out[32], const Fe& in) {
  Fe f = in;
  fe_carry(f);
  // Now limbs < 2^51 + small; subtract p if needed, twice to be safe.
  for (int pass = 0; pass < 2; ++pass) {
    // q = whether f >= p.
    std::uint64_t q = (f.v[0] + 19) >> 51;
    q = (f.v[1] + q) >> 51;
    q = (f.v[2] + q) >> 51;
    q = (f.v[3] + q) >> 51;
    q = (f.v[4] + q) >> 51;
    f.v[0] += 19 * q;
    std::uint64_t carry = f.v[0] >> 51;
    f.v[0] &= kMask51;
    f.v[1] += carry;
    carry = f.v[1] >> 51;
    f.v[1] &= kMask51;
    f.v[2] += carry;
    carry = f.v[2] >> 51;
    f.v[2] &= kMask51;
    f.v[3] += carry;
    carry = f.v[3] >> 51;
    f.v[3] &= kMask51;
    f.v[4] += carry;
    f.v[4] &= kMask51;
  }
  std::uint64_t limbs[4];
  limbs[0] = f.v[0] | (f.v[1] << 51);
  limbs[1] = (f.v[1] >> 13) | (f.v[2] << 38);
  limbs[2] = (f.v[2] >> 26) | (f.v[3] << 25);
  limbs[3] = (f.v[3] >> 39) | (f.v[4] << 12);
  for (int i = 0; i < 4; ++i) {
    for (int b = 0; b < 8; ++b) {
      out[i * 8 + b] = static_cast<std::uint8_t>(limbs[i] >> (8 * b));
    }
  }
}

Fe fe_frombytes(const std::uint8_t in[32]) {
  std::uint64_t limbs[4];
  for (int i = 0; i < 4; ++i) {
    std::uint64_t v = 0;
    for (int b = 7; b >= 0; --b) v = (v << 8) | in[i * 8 + b];
    limbs[i] = v;
  }
  Fe r;
  r.v[0] = limbs[0] & kMask51;
  r.v[1] = ((limbs[0] >> 51) | (limbs[1] << 13)) & kMask51;
  r.v[2] = ((limbs[1] >> 38) | (limbs[2] << 26)) & kMask51;
  r.v[3] = ((limbs[2] >> 25) | (limbs[3] << 39)) & kMask51;
  r.v[4] = (limbs[3] >> 12) & kMask51;  // drops the sign bit (bit 255)
  return r;
}

bool fe_is_zero(const Fe& f) {
  std::uint8_t bytes[32];
  fe_tobytes(bytes, f);
  std::uint8_t acc = 0;
  for (auto b : bytes) acc |= b;
  return acc == 0;
}

bool fe_is_negative(const Fe& f) {
  std::uint8_t bytes[32];
  fe_tobytes(bytes, f);
  return bytes[0] & 1;
}

Fe fe_neg(const Fe& a) { return fe_sub(fe_zero(), a); }

bool fe_equal(const Fe& a, const Fe& b) { return fe_is_zero(fe_sub(a, b)); }

// a^e where e is a 256-bit little-endian exponent.
Fe fe_pow(const Fe& a, const std::uint8_t e[32]) {
  Fe result = fe_one();
  bool any = false;
  for (int bit = 255; bit >= 0; --bit) {
    if (any) result = fe_sq(result);
    if ((e[bit / 8] >> (bit % 8)) & 1) {
      result = any ? fe_mul(result, a) : a;
      any = true;
    }
  }
  return any ? result : fe_one();
}

// Byte-array little-endian subtraction of a small constant; used to build
// the exponents p-2, (p-5)/8 from p's representation.
void bytes_sub_small(std::uint8_t x[32], std::uint32_t value) {
  std::int64_t borrow = value;
  for (int i = 0; i < 32 && borrow != 0; ++i) {
    std::int64_t cur = static_cast<std::int64_t>(x[i]) - (borrow & 0xFF);
    borrow >>= 8;
    if (cur < 0) {
      cur += 256;
      borrow += 1;
    }
    x[i] = static_cast<std::uint8_t>(cur);
  }
}

struct FieldConstants {
  std::uint8_t p_minus_2[32];        // exponent for inversion
  std::uint8_t p_minus_5_div_8[32];  // exponent for sqrt candidate
  Fe d;                              // curve constant
  Fe d2;                             // 2d
  Fe sqrt_m1;                        // sqrt(-1)

  FieldConstants() {
    // p = 2^255 - 19, little-endian bytes: ED FF .. FF 7F.
    std::uint8_t p[32];
    std::memset(p, 0xFF, 32);
    p[0] = 0xED;
    p[31] = 0x7F;

    std::memcpy(p_minus_2, p, 32);
    bytes_sub_small(p_minus_2, 2);

    // (p-5)/8 = 2^252 - 3: compute (p-5) then shift right 3 bits.
    std::uint8_t t[32];
    std::memcpy(t, p, 32);
    bytes_sub_small(t, 5);
    for (int i = 0; i < 32; ++i) {
      std::uint8_t next = (i + 1 < 32) ? t[i + 1] : 0;
      p_minus_5_div_8[i] =
          static_cast<std::uint8_t>((t[i] >> 3) | (next << 5));
    }

    // d = -121665 / 121666 mod p.
    Fe num;
    num.v[0] = 121665;
    num = fe_neg(num);
    Fe den;
    den.v[0] = 121666;
    const Fe den_inv = fe_pow(den, p_minus_2);
    d = fe_mul(num, den_inv);
    fe_carry(d);
    d2 = fe_add(d, d);
    fe_carry(d2);

    // sqrt(-1) = 2^((p-1)/4) mod p. (p-1)/4 = (p-5)/8 * 2 + 1... compute
    // directly: exponent = (p-1)/4 = 2^253 - 5.
    std::uint8_t e[32];
    std::memcpy(e, p, 32);
    bytes_sub_small(e, 1);
    // shift right 2 bits
    std::uint8_t e4[32];
    for (int i = 0; i < 32; ++i) {
      std::uint8_t next = (i + 1 < 32) ? e[i + 1] : 0;
      e4[i] = static_cast<std::uint8_t>((e[i] >> 2) | (next << 6));
    }
    Fe two;
    two.v[0] = 2;
    sqrt_m1 = fe_pow(two, e4);
  }
};

const FieldConstants& fc() {
  static const FieldConstants c;
  return c;
}

Fe fe_invert(const Fe& a) { return fe_pow(a, fc().p_minus_2); }

// ---------------------------------------------------------------------------
// Group: twisted Edwards curve -x^2 + y^2 = 1 + d x^2 y^2, extended
// coordinates (X:Y:Z:T) with x = X/Z, y = Y/Z, T = XY/Z.
// ---------------------------------------------------------------------------

struct GePoint {
  Fe x, y, z, t;
};

GePoint ge_identity() {
  GePoint p;
  p.x = fe_zero();
  p.y = fe_one();
  p.z = fe_one();
  p.t = fe_zero();
  return p;
}

// Unified addition ("add-2008-hwcd-3"): also valid when a == b.
GePoint ge_add(const GePoint& p, const GePoint& q) {
  const Fe a = fe_mul(fe_sub(p.y, p.x), fe_sub(q.y, q.x));
  const Fe b = fe_mul(fe_add(p.y, p.x), fe_add(q.y, q.x));
  const Fe c = fe_mul(fe_mul(p.t, fc().d2), q.t);
  const Fe dd = fe_mul(fe_add(p.z, p.z), q.z);
  const Fe e = fe_sub(b, a);
  const Fe f = fe_sub(dd, c);
  const Fe g = fe_add(dd, c);
  const Fe h = fe_add(b, a);
  GePoint r;
  r.x = fe_mul(e, f);
  r.y = fe_mul(g, h);
  r.t = fe_mul(e, h);
  r.z = fe_mul(f, g);
  return r;
}

GePoint ge_neg(const GePoint& p) {
  GePoint r = p;
  r.x = fe_neg(p.x);
  r.t = fe_neg(p.t);
  return r;
}

// Variable-time scalar multiplication, scalar as 32 little-endian bytes.
GePoint ge_scalar_mult(const GePoint& p, const std::uint8_t scalar[32]) {
  GePoint acc = ge_identity();
  for (int bit = 255; bit >= 0; --bit) {
    acc = ge_add(acc, acc);
    if ((scalar[bit / 8] >> (bit % 8)) & 1) acc = ge_add(acc, p);
  }
  return acc;
}

void ge_compress(std::uint8_t out[32], const GePoint& p) {
  const Fe zinv = fe_invert(p.z);
  const Fe x = fe_mul(p.x, zinv);
  const Fe y = fe_mul(p.y, zinv);
  fe_tobytes(out, y);
  if (fe_is_negative(x)) out[31] |= 0x80;
}

bool ge_decompress(GePoint& out, const std::uint8_t in[32]) {
  const bool sign = (in[31] & 0x80) != 0;
  const Fe y = fe_frombytes(in);
  // x^2 = (y^2 - 1) / (d y^2 + 1)
  const Fe y2 = fe_sq(y);
  const Fe u = fe_sub(y2, fe_one());
  const Fe v = fe_add(fe_mul(fc().d, y2), fe_one());
  // candidate x = u v^3 (u v^7)^((p-5)/8)
  const Fe v3 = fe_mul(fe_sq(v), v);
  const Fe v7 = fe_mul(fe_sq(v3), v);
  const Fe pow = fe_pow(fe_mul(u, v7), fc().p_minus_5_div_8);
  Fe x = fe_mul(fe_mul(u, v3), pow);
  const Fe vxx = fe_mul(v, fe_sq(x));
  if (!fe_equal(vxx, u)) {
    if (fe_equal(vxx, fe_neg(u))) {
      x = fe_mul(x, fc().sqrt_m1);
    } else {
      return false;
    }
  }
  if (fe_is_zero(x) && sign) return false;  // -0 is invalid
  if (fe_is_negative(x) != sign) x = fe_neg(x);
  out.x = x;
  out.y = y;
  out.z = fe_one();
  out.t = fe_mul(x, y);
  return true;
}

const GePoint& ge_base() {
  static const GePoint base = [] {
    // Canonical encoding of the base point: y = 4/5, sign(x) = 0.
    std::uint8_t enc[32];
    std::memset(enc, 0x66, 32);
    enc[0] = 0x58;
    GePoint b;
    const bool ok = ge_decompress(b, enc);
    (void)ok;
    return b;
  }();
  return base;
}

// ---------------------------------------------------------------------------
// Scalar arithmetic mod L = 2^252 + 27742317777372353535851937790883648493.
// Simple 32-bit-limb big integers; signing is off the hot path.
// ---------------------------------------------------------------------------

struct U512 {
  std::uint32_t w[16] = {0};  // little-endian

  static U512 from_bytes(const std::uint8_t* bytes, std::size_t len) {
    U512 r;
    for (std::size_t i = 0; i < len && i < 64; ++i) {
      r.w[i / 4] |= static_cast<std::uint32_t>(bytes[i]) << (8 * (i % 4));
    }
    return r;
  }

  [[nodiscard]] int compare(const U512& o) const {
    for (int i = 15; i >= 0; --i) {
      if (w[i] != o.w[i]) return w[i] < o.w[i] ? -1 : 1;
    }
    return 0;
  }

  void sub(const U512& o) {
    std::int64_t borrow = 0;
    for (int i = 0; i < 16; ++i) {
      std::int64_t cur = static_cast<std::int64_t>(w[i]) - o.w[i] - borrow;
      borrow = cur < 0 ? 1 : 0;
      if (cur < 0) cur += (std::int64_t{1} << 32);
      w[i] = static_cast<std::uint32_t>(cur);
    }
  }

  void add(const U512& o) {
    std::uint64_t carry = 0;
    for (int i = 0; i < 16; ++i) {
      const std::uint64_t cur = static_cast<std::uint64_t>(w[i]) + o.w[i] + carry;
      w[i] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
  }

  [[nodiscard]] bool bit(int i) const {
    return (w[i / 32] >> (i % 32)) & 1;
  }

  void shl1() {
    std::uint32_t carry = 0;
    for (int i = 0; i < 16; ++i) {
      const std::uint32_t next = w[i] >> 31;
      w[i] = (w[i] << 1) | carry;
      carry = next;
    }
  }
};

U512 mul_256(const U512& a, const U512& b) {
  // Schoolbook on the low 8 limbs of each (256x256 -> 512).
  std::uint64_t acc[17] = {0};
  for (int i = 0; i < 8; ++i) {
    std::uint64_t carry = 0;
    for (int j = 0; j < 8; ++j) {
      const std::uint64_t cur =
          acc[i + j] + static_cast<std::uint64_t>(a.w[i]) * b.w[j] + carry;
      acc[i + j] = cur & 0xFFFFFFFF;
      carry = cur >> 32;
    }
    acc[i + 8] += carry;
  }
  U512 r;
  for (int i = 0; i < 16; ++i) r.w[i] = static_cast<std::uint32_t>(acc[i]);
  return r;
}

const U512& order_l() {
  static const U512 l = [] {
    // L = 2^252 + 0x14DEF9DEA2F79CD65812631A5CF5D3ED
    const std::uint8_t low[16] = {0xED, 0xD3, 0xF5, 0x5C, 0x1A, 0x63, 0x12,
                                  0x58, 0xD6, 0x9C, 0xF7, 0xA2, 0xDE, 0xF9,
                                  0xDE, 0x14};
    U512 v = U512::from_bytes(low, 16);
    v.w[7] |= std::uint32_t{1} << 28;  // + 2^252
    return v;
  }();
  return l;
}

// x mod L via binary long division (x up to 512 bits).
U512 mod_l(const U512& x) {
  const U512& l = order_l();
  U512 r;
  for (int bit = 511; bit >= 0; --bit) {
    r.shl1();
    if (x.bit(bit)) r.w[0] |= 1;
    if (r.compare(l) >= 0) r.sub(l);
  }
  return r;
}

void sc_to_bytes(std::uint8_t out[32], const U512& s) {
  for (int i = 0; i < 32; ++i) {
    out[i] = static_cast<std::uint8_t>(s.w[i / 4] >> (8 * (i % 4)));
  }
}

// Reduces a 64-byte little-endian value mod L into 32 bytes.
void sc_reduce(std::uint8_t out[32], const std::uint8_t in[64]) {
  sc_to_bytes(out, mod_l(U512::from_bytes(in, 64)));
}

// out = (a*b + c) mod L, all 32-byte little-endian scalars.
void sc_muladd(std::uint8_t out[32], const std::uint8_t a[32],
               const std::uint8_t b[32], const std::uint8_t c[32]) {
  U512 prod = mul_256(U512::from_bytes(a, 32), U512::from_bytes(b, 32));
  prod.add(U512::from_bytes(c, 32));
  sc_to_bytes(out, mod_l(prod));
}

// Checks s < L (RFC 8032 verification requirement).
bool sc_is_canonical(const std::uint8_t s[32]) {
  const U512 v = U512::from_bytes(s, 32);
  return v.compare(order_l()) < 0;
}

void clamp(std::uint8_t scalar[32]) {
  scalar[0] &= 0xF8;
  scalar[31] &= 0x7F;
  scalar[31] |= 0x40;
}

Sha512::Digest hash3(BytesView a, BytesView b, BytesView c) {
  Sha512 h;
  h.update(a).update(b).update(c);
  return h.finish();
}

}  // namespace

Ed25519::PublicKey Ed25519::public_key(const Seed& seed) {
  auto h = Sha512::hash(BytesView{seed.data(), seed.size()});
  std::uint8_t a[32];
  std::memcpy(a, h.data(), 32);
  clamp(a);
  const GePoint big_a = ge_scalar_mult(ge_base(), a);
  PublicKey pk;
  ge_compress(pk.data(), big_a);
  return pk;
}

Ed25519::Signature Ed25519::sign(const Seed& seed, BytesView message) {
  auto h = Sha512::hash(BytesView{seed.data(), seed.size()});
  std::uint8_t a[32];
  std::memcpy(a, h.data(), 32);
  clamp(a);
  const PublicKey pk = public_key(seed);

  // r = H(prefix || M) mod L
  Sha512 rh;
  rh.update(BytesView{h.data() + 32, 32}).update(message);
  const auto r_hash = rh.finish();
  std::uint8_t r[32];
  sc_reduce(r, r_hash.data());

  // R = r * B
  const GePoint big_r = ge_scalar_mult(ge_base(), r);
  std::uint8_t r_enc[32];
  ge_compress(r_enc, big_r);

  // k = H(R || A || M) mod L
  const auto k_hash = hash3(BytesView{r_enc, 32},
                            BytesView{pk.data(), pk.size()}, message);
  std::uint8_t k[32];
  sc_reduce(k, k_hash.data());

  // s = (r + k*a) mod L
  std::uint8_t s[32];
  sc_muladd(s, k, a, r);

  Signature sig;
  std::memcpy(sig.data(), r_enc, 32);
  std::memcpy(sig.data() + 32, s, 32);
  return sig;
}

bool Ed25519::verify(const PublicKey& pub, BytesView message,
                     const Signature& sig) {
  const std::uint8_t* r_enc = sig.data();
  const std::uint8_t* s = sig.data() + 32;
  if (!sc_is_canonical(s)) return false;

  GePoint a;
  if (!ge_decompress(a, pub.data())) return false;

  const auto k_hash =
      hash3(BytesView{r_enc, 32}, BytesView{pub.data(), pub.size()}, message);
  std::uint8_t k[32];
  sc_reduce(k, k_hash.data());

  // Check encode(s*B + k*(-A)) == R.
  const GePoint sb = ge_scalar_mult(ge_base(), s);
  const GePoint ka = ge_scalar_mult(ge_neg(a), k);
  const GePoint r_check = ge_add(sb, ka);
  std::uint8_t r_check_enc[32];
  ge_compress(r_check_enc, r_check);
  return std::memcmp(r_check_enc, r_enc, 32) == 0;
}

}  // namespace sciera::crypto
