#include "crypto/sha256.h"

#include "crypto/primes_frac.h"

namespace sciera::crypto {
namespace {

std::uint32_t rotr(std::uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

struct Tables {
  std::array<std::uint32_t, 64> k;
  std::array<std::uint32_t, 8> h0;
  Tables() {
    for (int i = 0; i < 64; ++i) {
      k[i] = static_cast<std::uint32_t>(
          detail::cbrt_frac_bits(detail::kPrimes[i], 32));
    }
    for (int i = 0; i < 8; ++i) {
      h0[i] = static_cast<std::uint32_t>(
          detail::sqrt_frac_bits(detail::kPrimes[i], 32));
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

Sha256::Sha256() : state_(tables().h0) {}

Sha256& Sha256::update(BytesView data) {
  if (data.empty()) return *this;  // empty span may carry a null data()
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (pending_len_ > 0) {
    const std::size_t take = std::min(kBlockSize - pending_len_, data.size());
    std::memcpy(pending_.data() + pending_len_, data.data(), take);
    pending_len_ += take;
    offset = take;
    if (pending_len_ == kBlockSize) {
      compress(pending_.data());
      pending_len_ = 0;
    }
  }
  while (data.size() - offset >= kBlockSize) {
    compress(data.data() + offset);
    offset += kBlockSize;
  }
  if (offset < data.size()) {
    std::memcpy(pending_.data(), data.data() + offset, data.size() - offset);
    pending_len_ = data.size() - offset;
  }
  return *this;
}

Sha256::Digest Sha256::finish() {
  const std::uint64_t bit_len = total_bytes_ * 8;
  const std::uint8_t pad_one = 0x80;
  update(BytesView{&pad_one, 1});
  static constexpr std::uint8_t kZero[kBlockSize] = {};
  while (pending_len_ != kBlockSize - 8) {
    const std::size_t want =
        pending_len_ < kBlockSize - 8 ? (kBlockSize - 8) - pending_len_
                                      : kBlockSize - pending_len_;
    update(BytesView{kZero, want});
  }
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(BytesView{len_be, 8});
  Digest digest;
  for (int i = 0; i < 8; ++i) {
    for (int b = 0; b < 4; ++b) {
      digest[static_cast<std::size_t>(i * 4 + b)] =
          static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >>
                                    (24 - 8 * b));
    }
  }
  return digest;
}

Sha256::Digest Sha256::hash(BytesView data) {
  Sha256 hasher;
  hasher.update(data);
  return hasher.finish();
}

void Sha256::compress(const std::uint8_t* block) {
  const auto& k = tables().k;
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + k[static_cast<std::size_t>(i)] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

}  // namespace sciera::crypto
