// SHA-256 (FIPS 180-4), implemented from scratch. Round constants are
// derived at startup from the fractional parts of the cube roots of the
// first 64 primes (the FIPS definition) instead of a hand-typed table.
#pragma once

#include <array>
#include <cstdint>

#include "common/buffer.h"

namespace sciera::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();

  Sha256& update(BytesView data);
  [[nodiscard]] Digest finish();

  static Digest hash(BytesView data);

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::uint64_t total_bytes_ = 0;
  std::array<std::uint8_t, kBlockSize> pending_{};
  std::size_t pending_len_ = 0;
};

}  // namespace sciera::crypto
