#include "crypto/aes128.h"

namespace sciera::crypto {
namespace {

// GF(2^8) multiplication with the AES polynomial x^8+x^4+x^3+x+1 (0x11B).
std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    const bool hi = a & 0x80;
    a = static_cast<std::uint8_t>(a << 1);
    if (hi) a ^= 0x1B;
    b >>= 1;
  }
  return p;
}

struct SBox {
  std::array<std::uint8_t, 256> fwd{};
  SBox() {
    // Multiplicative inverse table via brute force (256x256 is trivial),
    // then the AES affine transform.
    std::array<std::uint8_t, 256> inv{};
    for (int a = 1; a < 256; ++a) {
      for (int b = 1; b < 256; ++b) {
        if (gmul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)) == 1) {
          inv[static_cast<std::size_t>(a)] = static_cast<std::uint8_t>(b);
          break;
        }
      }
    }
    for (int x = 0; x < 256; ++x) {
      const std::uint8_t i = inv[static_cast<std::size_t>(x)];
      std::uint8_t s = 0;
      for (int bit = 0; bit < 8; ++bit) {
        const int v = ((i >> bit) & 1) ^ ((i >> ((bit + 4) % 8)) & 1) ^
                      ((i >> ((bit + 5) % 8)) & 1) ^ ((i >> ((bit + 6) % 8)) & 1) ^
                      ((i >> ((bit + 7) % 8)) & 1) ^ ((0x63 >> bit) & 1);
        s = static_cast<std::uint8_t>(s | (v << bit));
      }
      fwd[static_cast<std::size_t>(x)] = s;
    }
  }
};

const SBox& sbox() {
  static const SBox box;
  return box;
}

std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1B : 0x00));
}

// Not atomic: construction happens on the sim thread (or in single-threaded
// tests); the counter exists so regressions can prove schedule reuse.
std::uint64_t g_key_schedules_run = 0;

}  // namespace

std::uint64_t Aes128::key_schedules_run() { return g_key_schedules_run; }

Aes128::Aes128(const Key& key) {
  ++g_key_schedules_run;
  const auto& s = sbox().fwd;
  std::memcpy(round_keys_.data(), key.data(), 16);
  std::uint8_t rcon = 0x01;
  for (int round = 1; round <= 10; ++round) {
    const std::uint8_t* prev = round_keys_.data() + (round - 1) * 16;
    std::uint8_t* out = round_keys_.data() + round * 16;
    // RotWord + SubWord + Rcon on the last word of the previous round key.
    std::uint8_t t[4] = {s[prev[13]], s[prev[14]], s[prev[15]], s[prev[12]]};
    t[0] ^= rcon;
    rcon = xtime(rcon);
    for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(prev[i] ^ t[i]);
    for (int i = 4; i < 16; ++i) {
      out[i] = static_cast<std::uint8_t>(prev[i] ^ out[i - 4]);
    }
  }
}

void Aes128::encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
  const auto& s = sbox().fwd;
  std::uint8_t state[16];
  for (int i = 0; i < 16; ++i) state[i] = in[i] ^ round_keys_[static_cast<std::size_t>(i)];
  for (int round = 1; round <= 10; ++round) {
    // SubBytes
    for (auto& b : state) b = s[b];
    // ShiftRows (column-major state layout: state[r + 4c])
    std::uint8_t tmp[16];
    for (int c = 0; c < 4; ++c) {
      for (int r = 0; r < 4; ++r) {
        tmp[r + 4 * c] = state[r + 4 * ((c + r) % 4)];
      }
    }
    std::memcpy(state, tmp, 16);
    // MixColumns (skipped in the final round)
    if (round != 10) {
      for (int c = 0; c < 4; ++c) {
        std::uint8_t* col = state + 4 * c;
        const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = static_cast<std::uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
        col[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
        col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
        col[3] = static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
      }
    }
    // AddRoundKey
    const std::uint8_t* rk = round_keys_.data() + round * 16;
    for (int i = 0; i < 16; ++i) state[i] ^= rk[i];
  }
  std::memcpy(out, state, 16);
}

Aes128::Block Aes128::encrypt(const Block& in) const {
  Block out;
  encrypt_block(in.data(), out.data());
  return out;
}

}  // namespace sciera::crypto
