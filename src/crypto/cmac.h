// AES-CMAC (RFC 4493 / NIST SP 800-38B). SCION hop-field MACs use
// AES-CMAC keyed with the AS forwarding key; this is the data-plane
// hot path exercised on every packet at every border router.
#pragma once

#include <array>

#include "common/buffer.h"
#include "crypto/aes128.h"

namespace sciera::crypto {

class AesCmac {
 public:
  using Mac = std::array<std::uint8_t, 16>;

  // Shortest tag verify() accepts. SCION hop fields carry 6-byte
  // truncated MACs (Mac6); anything shorter gives an attacker a
  // better-than-2^-48 forgery bound — and an empty tag would compare
  // zero bytes and trivially "verify".
  static constexpr std::size_t kMinTagLen = 6;

  explicit AesCmac(const Aes128::Key& key);

  [[nodiscard]] Mac compute(BytesView message) const;

  // Constant-time comparison of a truncated tag against the computed
  // MAC. Tags shorter than kMinTagLen or longer than the full MAC are
  // rejected outright (never compared).
  [[nodiscard]] bool verify(BytesView message, BytesView mac) const;

 private:
  Aes128 cipher_;
  Aes128::Block k1_{};
  Aes128::Block k2_{};
};

}  // namespace sciera::crypto
