// HMAC (RFC 2104) over SHA-256, plus an HKDF-style key-derivation helper
// used to derive per-AS forwarding keys from AS master secrets.
#pragma once

#include "common/buffer.h"
#include "crypto/sha256.h"

namespace sciera::crypto {

[[nodiscard]] Sha256::Digest hmac_sha256(BytesView key, BytesView message);

// Single-block HKDF-Expand-style derivation: key material labelled by an
// application string ("scion-forwarding-key" etc.).
[[nodiscard]] Sha256::Digest derive_key(BytesView secret,
                                        std::string_view label);

// Constant-time comparison for MACs and digests.
[[nodiscard]] bool constant_time_equal(BytesView a, BytesView b);

}  // namespace sciera::crypto
