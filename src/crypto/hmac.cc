#include "crypto/hmac.h"

namespace sciera::crypto {

Sha256::Digest hmac_sha256(BytesView key, BytesView message) {
  std::array<std::uint8_t, Sha256::kBlockSize> block_key{};
  if (key.size() > Sha256::kBlockSize) {
    const auto digest = Sha256::hash(key);
    std::memcpy(block_key.data(), digest.data(), digest.size());
  } else if (!key.empty()) {
    std::memcpy(block_key.data(), key.data(), key.size());
  }
  std::array<std::uint8_t, Sha256::kBlockSize> ipad{};
  std::array<std::uint8_t, Sha256::kBlockSize> opad{};
  for (std::size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad[i] = block_key[i] ^ 0x36;
    opad[i] = block_key[i] ^ 0x5C;
  }
  Sha256 inner;
  inner.update(ipad).update(message);
  const auto inner_digest = inner.finish();
  Sha256 outer;
  outer.update(opad).update(inner_digest);
  return outer.finish();
}

Sha256::Digest derive_key(BytesView secret, std::string_view label) {
  Bytes info = bytes_of(label);
  info.push_back(0x01);
  return hmac_sha256(secret, info);
}

bool constant_time_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace sciera::crypto
