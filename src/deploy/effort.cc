#include "deploy/effort.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace sciera::deploy {
namespace {

IsdAs ia(const char* text) { return IsdAs::parse(text).value(); }

}  // namespace

const char* connection_kind_name(ConnectionKind kind) {
  switch (kind) {
    case ConnectionKind::kCoreNewHardware: return "core/new-hardware";
    case ConnectionKind::kCoreReuse: return "core/reuse";
    case ConnectionKind::kCoreReinstall: return "core/reinstall";
    case ConnectionKind::kLeafGeantPlus: return "leaf/geant-plus";
    case ConnectionKind::kLeafVlanMultiParty: return "leaf/vlan-multi-party";
    case ConnectionKind::kLeafSharedVlan: return "leaf/shared-vlan";
    case ConnectionKind::kLeafMultipointVlan: return "leaf/multipoint-vlan";
    case ConnectionKind::kLeafVxlan: return "leaf/vxlan";
  }
  return "?";
}

std::vector<Deployment> sciera_deployments() {
  using K = ConnectionKind;
  // Dates from Figure 3; kinds and party counts from Appendix C.
  return {
      {"GEANT", ia("71-20965"), 2022, 6, K::kCoreNewHardware, 3},
      {"SWITCH", ia("71-559"), 2022, 9, K::kCoreReuse, 2},
      {"SIDN Labs", ia("71-1140"), 2023, 3, K::kLeafGeantPlus, 2},
      {"BRIDGES", ia("71-2:0:35"), 2023, 3, K::kCoreNewHardware, 3},
      {"UVa", ia("71-225"), 2023, 3, K::kLeafVlanMultiParty, 4},
      {"Equinix", ia("71-2:0:48"), 2023, 5, K::kLeafVlanMultiParty, 3},
      {"CybExer", ia("71-2:0:49"), 2023, 7, K::kLeafGeantPlus, 2},
      {"Princeton", ia("71-88"), 2023, 8, K::kLeafVlanMultiParty, 4},
      {"OVGU", ia("71-2:0:42"), 2023, 8, K::kLeafGeantPlus, 2},
      {"Demokritos", ia("71-2546"), 2023, 9, K::kLeafGeantPlus, 2},
      {"SEC", ia("71-2:0:18"), 2023, 10, K::kLeafVxlan, 3},
      {"KISTI CHG", ia("71-2:0:3f"), 2023, 10, K::kCoreReinstall, 3},
      {"UFMS", ia("71-2:0:5c"), 2024, 3, K::kLeafMultipointVlan, 3},
      {"KISTI DJ", ia("71-2:0:3b"), 2024, 5, K::kCoreReinstall, 3},
      {"KISTI SG", ia("71-2:0:3d"), 2024, 8, K::kCoreReinstall, 4},
      {"KISTI AMS", ia("71-2:0:3e"), 2024, 8, K::kCoreReinstall, 3},
      {"CCDCoE", ia("71-203311"), 2024, 9, K::kLeafSharedVlan, 2},
      {"Korea University", ia("71-2:0:4a"), 2024, 11, K::kLeafGeantPlus, 2},
      {"KAUST", ia("71-50999"), 2025, 3, K::kLeafVlanMultiParty, 3},
      {"RNP", ia("71-1916"), 2025, 4, K::kLeafMultipointVlan, 3},
      {"KISTI HK", ia("71-2:0:3c"), 2025, 5, K::kCoreReinstall, 3},
      {"KISTI STL", ia("71-2:0:40"), 2025, 5, K::kCoreReinstall, 3},
      {"NUS", ia("71-2:0:61"), 2025, 6, K::kLeafMultipointVlan, 2},
  };
}

double EffortModel::base_effort(ConnectionKind kind) const {
  switch (kind) {
    case ConnectionKind::kCoreNewHardware: return 16.0;  // months of HW + L2
    case ConnectionKind::kCoreReuse: return 2.5;
    case ConnectionKind::kCoreReinstall: return 8.0;
    case ConnectionKind::kLeafGeantPlus: return 2.0;
    case ConnectionKind::kLeafVlanMultiParty: return 9.0;
    case ConnectionKind::kLeafSharedVlan: return 1.0;
    case ConnectionKind::kLeafMultipointVlan: return 3.0;
    case ConnectionKind::kLeafVxlan: return 5.0;
  }
  return 4.0;
}

std::vector<EffortPoint> effort_timeline(
    const std::vector<Deployment>& deployments, const EffortModel& model) {
  std::vector<Deployment> ordered = deployments;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Deployment& x, const Deployment& y) {
                     return x.timeline_month() < y.timeline_month();
                   });
  std::map<ConnectionKind, int> prior;
  std::vector<EffortPoint> out;
  int total_prior = 0;
  for (const auto& deployment : ordered) {
    const int same_kind = prior[deployment.kind]++;
    // Kind-specific learning plus a slow overall learning effect from the
    // team's accumulated experience and automation (Section 4.4).
    const double kind_factor = std::pow(model.learning_rate, same_kind);
    const double global_factor =
        std::pow(0.985, static_cast<double>(total_prior));
    double effort = model.base_effort(deployment.kind) * kind_factor *
                        global_factor +
                    model.per_party * std::max(0, deployment.parties - 2);
    effort = std::max(effort, model.floor_effort);
    out.push_back(EffortPoint{deployment, effort});
    ++total_prior;
  }
  return out;
}

}  // namespace sciera::deploy
