// Deployment-effort model (Figure 3, Section 5.3, Appendix C): every
// SCIERA AS deployment with its date and connection kind, and a
// learning-curve effort model — first-of-a-kind setups are expensive
// (hardware procurement, L2 circuit negotiation across parties), repeats
// get cheap as the team, the automation (Section 4.4), and the NSPs gain
// experience.
#pragma once

#include <string>
#include <vector>

#include "common/isd_as.h"

namespace sciera::deploy {

enum class ConnectionKind : std::uint8_t {
  kCoreNewHardware,    // new servers + international circuits (GEANT, BRIDGES)
  kCoreReuse,          // experienced operator reusing infra (SWITCH)
  kCoreReinstall,      // reinstalling existing nodes (KISTI ring)
  kLeafGeantPlus,      // one GEANT Plus circuit (CybExer, Demokritos)
  kLeafVlanMultiParty, // point-to-point VLANs across several parties (UVa)
  kLeafSharedVlan,     // reusing existing VLANs (CCDCoE over CybExer's)
  kLeafMultipointVlan, // AL2S multipoint VLAN (post-Princeton US sites)
  kLeafVxlan,          // VXLAN over an open exchange (SEC)
};

[[nodiscard]] const char* connection_kind_name(ConnectionKind kind);

struct Deployment {
  std::string name;
  IsdAs ia;
  int year = 0;
  int month = 0;  // 1..12
  ConnectionKind kind = ConnectionKind::kLeafGeantPlus;
  int parties = 2;  // organisations that had to coordinate

  // Months since January 2022, for plotting.
  [[nodiscard]] double timeline_month() const {
    return static_cast<double>((year - 2022) * 12 + (month - 1));
  }
};

// The Figure 3 deployment history.
[[nodiscard]] std::vector<Deployment> sciera_deployments();

struct EffortModel {
  // Base effort (person-weeks) per connection kind, first deployment.
  double base_effort(ConnectionKind kind) const;
  // Multiplicative reduction per prior same-kind deployment.
  double learning_rate = 0.62;
  // Extra coordination cost per party beyond two.
  double per_party = 1.1;
  // Floor: even routine deployments need some hours.
  double floor_effort = 0.4;
};

struct EffortPoint {
  Deployment deployment;
  double effort = 0;  // person-weeks (relative scale)
};

// Applies the learning-curve model over the chronological deployment
// sequence (the Figure 3 series).
[[nodiscard]] std::vector<EffortPoint> effort_timeline(
    const std::vector<Deployment>& deployments, const EffortModel& model = {});

}  // namespace sciera::deploy
