// The operator survey of Section 5.6: eight anonymous responses across
// three areas (deployment experience, CAPEX, OPEX), encoded as the raw
// records behind the paper's percentages, plus the aggregations that
// regenerate every number the section reports.
#pragma once

#include <string>
#include <vector>

namespace sciera::deploy {

enum class Role : std::uint8_t { kNetworkEngineer, kResearcher };
enum class SetupTime : std::uint8_t {
  kUnderOneMonth,
  kUnderSixMonths,
  kLonger,
};
enum class OpexRating : std::uint8_t { kLower, kComparable, kSlightlyHigher };

struct SurveyResponse {
  int id = 0;
  Role role = Role::kNetworkEngineer;
  bool over_decade_experience = false;
  SetupTime setup_time = SetupTime::kUnderSixMonths;
  bool deployed_without_vendor_support = false;
  bool hardware_under_20k_usd = false;
  bool no_licensing_costs = false;
  bool no_additional_hiring = false;
  OpexRating opex = OpexRating::kComparable;
  // Cost drivers (multi-select).
  bool driver_hardware_maintenance = false;
  bool driver_staff_workload = false;
  bool driver_monitoring = false;
  bool driver_power = false;
  bool sciera_under_10pct_workload = false;
  bool vendor_support_under_3_per_year = false;
};

// The eight responses, consistent with every percentage in Section 5.6.
[[nodiscard]] std::vector<SurveyResponse> survey_responses();

struct SurveySummary {
  int respondents = 0;
  double pct_over_decade_experience = 0;
  double pct_engineers = 0;
  double pct_setup_under_month = 0;
  double pct_setup_under_six_months = 0;  // cumulative with under-month
  double pct_no_vendor_support_needed = 0;
  double pct_hardware_under_20k = 0;
  double pct_no_licensing = 0;
  double pct_no_hiring = 0;
  double pct_opex_comparable_or_lower = 0;
  double pct_driver_hardware = 0;
  double pct_driver_staff = 0;
  double pct_driver_monitoring = 0;
  double pct_driver_power = 0;
  double pct_under_10pct_workload = 0;
  double pct_vendor_support_rare = 0;
};

[[nodiscard]] SurveySummary summarize(
    const std::vector<SurveyResponse>& responses);
[[nodiscard]] std::string render_summary(const SurveySummary& summary);

}  // namespace sciera::deploy
