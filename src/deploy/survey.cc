#include "deploy/survey.h"

#include "common/strings.h"

namespace sciera::deploy {

std::vector<SurveyResponse> survey_responses() {
  // Eight voluntary, anonymous responses. Individual records are chosen so
  // every aggregate matches Section 5.6 exactly:
  //   experience >10y: 4/8; engineers: 4/8; setup <1mo: 3/8, <6mo: +4/8;
  //   no vendor support: 5/8; hw <20k: 6/8; no licensing: 5/8;
  //   no hiring: 6/8; opex <=comparable: 6/8; drivers hw 5/8, staff 4/8,
  //   monitoring 2/8, power 1/8; workload <10%: 7/8; support <3/yr: 5/8.
  using S = SetupTime;
  using O = OpexRating;
  std::vector<SurveyResponse> out;
  auto add = [&](Role role, bool exp10, S setup, bool novendor, bool hw20,
                 bool nolic, bool nohire, O opex, bool d_hw, bool d_staff,
                 bool d_mon, bool d_pow, bool w10, bool rare) {
    SurveyResponse r;
    r.id = static_cast<int>(out.size()) + 1;
    r.role = role;
    r.over_decade_experience = exp10;
    r.setup_time = setup;
    r.deployed_without_vendor_support = novendor;
    r.hardware_under_20k_usd = hw20;
    r.no_licensing_costs = nolic;
    r.no_additional_hiring = nohire;
    r.opex = opex;
    r.driver_hardware_maintenance = d_hw;
    r.driver_staff_workload = d_staff;
    r.driver_monitoring = d_mon;
    r.driver_power = d_pow;
    r.sciera_under_10pct_workload = w10;
    r.vendor_support_under_3_per_year = rare;
    out.push_back(r);
  };
  add(Role::kNetworkEngineer, true, S::kUnderOneMonth, true, true, true,
      true, O::kLower, true, false, false, false, true, true);
  add(Role::kNetworkEngineer, true, S::kUnderOneMonth, true, true, true,
      true, O::kComparable, true, true, false, false, true, true);
  add(Role::kNetworkEngineer, true, S::kUnderOneMonth, true, true, false,
      true, O::kComparable, false, true, true, false, true, true);
  add(Role::kNetworkEngineer, false, S::kUnderSixMonths, true, true, true,
      true, O::kComparable, true, false, false, false, true, true);
  add(Role::kResearcher, true, S::kUnderSixMonths, true, true, true, false,
      O::kLower, false, true, false, false, true, true);
  add(Role::kResearcher, false, S::kUnderSixMonths, false, true, true,
      true, O::kComparable, true, false, true, false, true, false);
  add(Role::kResearcher, false, S::kUnderSixMonths, false, false, false,
      true, O::kSlightlyHigher, true, true, false, true, true, false);
  add(Role::kResearcher, false, S::kLonger, false, false, false, false,
      O::kSlightlyHigher, false, false, false, false, false, false);
  return out;
}

SurveySummary summarize(const std::vector<SurveyResponse>& responses) {
  SurveySummary summary;
  summary.respondents = static_cast<int>(responses.size());
  if (responses.empty()) return summary;
  const double n = static_cast<double>(responses.size());
  auto pct = [n](int count) { return 100.0 * count / n; };
  int exp10 = 0, eng = 0, under_month = 0, under_six = 0, novendor = 0;
  int hw20 = 0, nolic = 0, nohire = 0, opex_ok = 0;
  int d_hw = 0, d_staff = 0, d_mon = 0, d_pow = 0, w10 = 0, rare = 0;
  for (const auto& r : responses) {
    exp10 += r.over_decade_experience;
    eng += r.role == Role::kNetworkEngineer;
    under_month += r.setup_time == SetupTime::kUnderOneMonth;
    under_six += r.setup_time == SetupTime::kUnderSixMonths;
    novendor += r.deployed_without_vendor_support;
    hw20 += r.hardware_under_20k_usd;
    nolic += r.no_licensing_costs;
    nohire += r.no_additional_hiring;
    opex_ok += r.opex != OpexRating::kSlightlyHigher;
    d_hw += r.driver_hardware_maintenance;
    d_staff += r.driver_staff_workload;
    d_mon += r.driver_monitoring;
    d_pow += r.driver_power;
    w10 += r.sciera_under_10pct_workload;
    rare += r.vendor_support_under_3_per_year;
  }
  summary.pct_over_decade_experience = pct(exp10);
  summary.pct_engineers = pct(eng);
  summary.pct_setup_under_month = pct(under_month);
  summary.pct_setup_under_six_months = pct(under_six);
  summary.pct_no_vendor_support_needed = pct(novendor);
  summary.pct_hardware_under_20k = pct(hw20);
  summary.pct_no_licensing = pct(nolic);
  summary.pct_no_hiring = pct(nohire);
  summary.pct_opex_comparable_or_lower = pct(opex_ok);
  summary.pct_driver_hardware = pct(d_hw);
  summary.pct_driver_staff = pct(d_staff);
  summary.pct_driver_monitoring = pct(d_mon);
  summary.pct_driver_power = pct(d_pow);
  summary.pct_under_10pct_workload = pct(w10);
  summary.pct_vendor_support_rare = pct(rare);
  return summary;
}

std::string render_summary(const SurveySummary& s) {
  std::string out;
  out += strformat("Operator survey (n=%d)\n", s.respondents);
  out += strformat("  >10y networking/security experience : %5.1f%%\n",
                   s.pct_over_decade_experience);
  out += strformat("  network engineers (vs researchers)  : %5.1f%%\n",
                   s.pct_engineers);
  out += strformat("  native SCION setup within 1 month   : %5.1f%%\n",
                   s.pct_setup_under_month);
  out += strformat("  setup within 6 months (additional)  : %5.1f%%\n",
                   s.pct_setup_under_six_months);
  out += strformat("  deployed without vendor support     : %5.1f%%\n",
                   s.pct_no_vendor_support_needed);
  out += strformat("  hardware spend under 20k USD        : %5.1f%%\n",
                   s.pct_hardware_under_20k);
  out += strformat("  no software licensing costs         : %5.1f%%\n",
                   s.pct_no_licensing);
  out += strformat("  no additional hiring or training    : %5.1f%%\n",
                   s.pct_no_hiring);
  out += strformat("  OPEX comparable or lower            : %5.1f%%\n",
                   s.pct_opex_comparable_or_lower);
  out += strformat(
      "  cost drivers: hardware %.1f%% staff %.1f%% monitoring %.1f%% power "
      "%.1f%%\n",
      s.pct_driver_hardware, s.pct_driver_staff, s.pct_driver_monitoring,
      s.pct_driver_power);
  out += strformat("  SCIERA under 10%% of op. workload    : %5.1f%%\n",
                   s.pct_under_10pct_workload);
  out += strformat("  vendor support <3 times per year    : %5.1f%%\n",
                   s.pct_vendor_support_rare);
  return out;
}

}  // namespace sciera::deploy
