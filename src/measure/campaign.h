// The 20-day measurement campaign of Section 5.4: scion-go-multiping on
// 11 vantage ASes, pings to all SCIERA participants every interval over
// three SCION paths plus ICMP over BGP, full path probes, and the
// incident schedule the paper reports (maintenance on Jan 21, new EU-US
// links on Jan 25, the KREONET link outage, BRIDGES instability, and the
// UFMS->Equinix SCION detour through GEANT).
//
// Jitter asymmetry is paper-grounded: SCIERA reserves dedicated bandwidth
// for SCION on shared links (Section 4.3.1), so ICMP-over-IP samples see
// more queueing variance than SCMP-over-SCION samples.
#pragma once

#include "measure/multiping.h"
#include "obs/metrics.h"

namespace sciera::measure {

struct Incident {
  enum class Scope : std::uint8_t {
    kBoth,       // physical failure: SCION and IP both lose the link
    kScionOnly,  // no SCION VLAN on the segment (IP unaffected)
    kLinkComesUp  // link was absent before `from` (e.g. new circuits)
  };

  std::string label;
  std::vector<std::string> links;
  SimTime from = 0;
  SimTime to = 0;
  Scope scope = Scope::kBoth;
};

struct CampaignOptions {
  Duration duration = 20 * kDay;
  Duration interval = 10 * kMinute;  // aggregation granularity
  int pings_per_interval = 60;       // 1/s in the paper
  int samples_per_path = 6;          // Monte-Carlo draws per path/interval
  double scion_jitter_sigma = 0.02;
  double ip_jitter_sigma = 0.02;
  // IP congestion (Section 4.3.1: SCION gets reserved bandwidth, IP shares
  // with commodity traffic): a per-interval multiplicative queueing factor
  // of 1 + Exp(mean), with occasional heavy spikes.
  // Congestion is heterogeneous across IP routes: a minority of commodity
  // paths are chronically congested (under-provisioned transits), the rest
  // are clean. This is what produces the paper's Figure 5/6 combination —
  // most pair means comparable, but a fat IP tail that SCION avoids.
  double ip_congested_fraction = 0.42;
  double ip_congestion_mean = 0.22;        // congested pairs
  double ip_spike_probability = 0.50;      // congested pairs
  double ip_clean_congestion_mean = 0.015;  // clean pairs
  double ip_clean_spike_probability = 0.02;
  // The commodity Internet offers direct commercial routes that SCIERA's
  // L2 footprint does not: the ICMP baseline uses the better of the
  // BGP-over-SCIERA-links route and a direct commercial route. Those
  // commercial routes are also unaffected by SCIERA incidents (the paper's
  // "corresponding IP paths exhibit relatively low RTTs" during BRIDGES
  // instability). Commercial routing quality is heterogeneous: most pairs
  // get near-direct routes, but routes to remote R&E sites often detour
  // badly (the IP tail SCION's path choice avoids).
  double commodity_route_stretch = 1.75;       // well-routed pairs
  double commodity_bad_route_stretch = 3.1;   // badly-routed pairs
  double commodity_bad_route_fraction = 0.38;
  double ping_loss = 0.002;
  std::uint64_t seed = 20250117;
  // Paths considered by the prober per pair (multiping probes a bounded
  // set; combination still sees everything for the path-count figures).
  std::size_t probe_top_paths = 40;
  std::size_t max_paths = 250;
  // Reselect the three paths at least this often (plus on any failure).
  int reselect_every = 6;
};

struct PairPaths {
  IsdAs src;
  IsdAs dst;
  std::vector<controlplane::Path> paths;
};

struct CampaignResult {
  std::vector<IntervalRecord> intervals;
  std::vector<PathProbeRecord> probes;
  std::vector<PairPaths> pair_paths;
  Duration duration = 0;
  Duration interval = 0;

  // CSV exports matching the public dataset layout.
  [[nodiscard]] std::string intervals_csv() const;
  [[nodiscard]] std::string probes_csv() const;
};

class Campaign {
 public:
  Campaign(controlplane::ScionNetwork& net, bgp::BgpNetwork& bgp,
           CampaignOptions options);
  Campaign(controlplane::ScionNetwork& net, bgp::BgpNetwork& bgp)
      : Campaign(net, bgp, CampaignOptions{}) {}

  // The Section 5.4 incident schedule, expressed against the SCIERA
  // topology (campaign day 0 = January 17).
  [[nodiscard]] static std::vector<Incident> paper_incidents();

  void set_incidents(std::vector<Incident> incidents) {
    incidents_ = std::move(incidents);
  }
  // Vantage/target ASes; defaults to the paper's 11 vantages pinging the
  // measured participant set.
  void set_sources(std::vector<IsdAs> sources) { sources_ = std::move(sources); }
  void set_targets(std::vector<IsdAs> targets) { targets_ = std::move(targets); }

  [[nodiscard]] CampaignResult run();

 private:
  struct PathMeta {
    Duration static_rtt = 0;
    std::size_t hops = 0;
    std::string fingerprint;
    std::vector<GlobalIfaceId> ifaces_sorted;
    std::vector<topology::LinkId> links;
  };
  struct Pair {
    IsdAs src;
    IsdAs dst;
    Duration commodity_rtt = 0;  // direct commercial-Internet route
    double ip_congestion_mean = 0.0;
    double ip_spike_probability = 0.0;
    std::vector<PathMeta> meta;          // aligned with paths
    std::vector<std::size_t> usable;     // indices, refreshed per epoch
    std::uint64_t usable_epoch = ~0ull;
    std::size_t sel_shortest = 0, sel_fastest = 0, sel_disjoint = 0;
    bool selection_valid = false;
    std::vector<Duration> probe_rtt;     // last probe per path
  };

  void apply_link_event(const std::string& label, bool scion_up, bool ip_up);
  void refresh_usable(Pair& pair);
  void reselect(Pair& pair, Rng& rng);

  struct Metrics {
    obs::Counter* intervals = nullptr;
    obs::Counter* link_events = nullptr;
    obs::Counter* reselections = nullptr;
    obs::Counter* scion_probes = nullptr;
    obs::Counter* ip_probes = nullptr;
    obs::Histogram* scion_rtt_ms = nullptr;
    obs::Histogram* ip_rtt_ms = nullptr;
  };

  controlplane::ScionNetwork& net_;
  bgp::BgpNetwork& bgp_;
  CampaignOptions options_;
  std::vector<Incident> incidents_;
  std::vector<IsdAs> sources_;
  std::vector<IsdAs> targets_;
  std::vector<bool> scion_link_up_;
  std::uint64_t link_epoch_ = 0;
  std::vector<PairPaths> pair_paths_;
  std::vector<Pair> pairs_;
  Metrics metrics_;
};

}  // namespace sciera::measure
