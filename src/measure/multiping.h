// scion-go-multiping (Section 5.4): from each vantage AS, every interval,
// SCMP pings over three SCION paths — the shortest, the fastest, and the
// most disjoint — in parallel with ICMP pings over the BGP path. A full
// path probe refreshes the path set and per-path RTTs every minute (and
// after failures). Pings are sampled analytically from per-path RTT
// distributions (propagation + log-normal jitter), which keeps 20-day
// campaigns tractable while preserving the distributions the figures
// aggregate.
#pragma once

#include <map>
#include <optional>

#include "bgp/bgp.h"
#include "controlplane/control_plane.h"

namespace sciera::measure {

enum class PathChoice : std::uint8_t { kShortest, kFastest, kMostDisjoint };

[[nodiscard]] const char* path_choice_name(PathChoice choice);

// The three-path selection of Section 5.4.
struct ThreePaths {
  const controlplane::Path* shortest = nullptr;
  const controlplane::Path* fastest = nullptr;
  const controlplane::Path* disjoint = nullptr;

  [[nodiscard]] std::vector<const controlplane::Path*> all() const;
};

// Shortest: fewest AS hops, lowest path identifier. Fastest: lowest RTT in
// the last full path probe. Most disjoint: fewest interface IDs shared
// with shortest+fastest.
[[nodiscard]] ThreePaths select_three_paths(
    const std::vector<const controlplane::Path*>& usable,
    const std::map<std::string, Duration>& last_probe_rtts);

// One ping RTT sample for a path: static propagation plus multiplicative
// log-normal jitter that grows with hop count.
[[nodiscard]] Duration sample_path_rtt(const controlplane::Path& path,
                                       double jitter_sigma, Rng& rng);
[[nodiscard]] Duration sample_rtt(Duration base, std::size_t hops,
                                  double jitter_sigma, Rng& rng);

// Per-aggregation-interval record (the 60-second database rows).
struct IntervalRecord {
  SimTime start = 0;
  IsdAs src;
  IsdAs dst;
  // SCION side.
  int scion_sent = 0;
  int scion_ok = 0;
  std::optional<Duration> scion_min_rtt;
  PathChoice scion_best = PathChoice::kShortest;
  // IP side.
  int ip_sent = 0;
  int ip_ok = 0;
  std::optional<Duration> ip_min_rtt;
};

// Full path probe result: the usable path count at a probe instant.
struct PathProbeRecord {
  SimTime time = 0;
  IsdAs src;
  IsdAs dst;
  std::size_t active_paths = 0;
};

}  // namespace sciera::measure
