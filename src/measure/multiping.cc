#include "measure/multiping.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace sciera::measure {

const char* path_choice_name(PathChoice choice) {
  switch (choice) {
    case PathChoice::kShortest: return "shortest";
    case PathChoice::kFastest: return "fastest";
    case PathChoice::kMostDisjoint: return "most-disjoint";
  }
  return "?";
}

std::vector<const controlplane::Path*> ThreePaths::all() const {
  std::vector<const controlplane::Path*> out;
  for (const auto* path : {shortest, fastest, disjoint}) {
    if (path != nullptr) out.push_back(path);
  }
  return out;
}

ThreePaths select_three_paths(
    const std::vector<const controlplane::Path*>& usable,
    const std::map<std::string, Duration>& last_probe_rtts) {
  ThreePaths chosen;
  if (usable.empty()) return chosen;

  // Shortest: fewest AS hops, then lowest path identifier (fingerprint).
  chosen.shortest = *std::min_element(
      usable.begin(), usable.end(),
      [](const controlplane::Path* x, const controlplane::Path* y) {
        if (x->as_sequence.size() != y->as_sequence.size()) {
          return x->as_sequence.size() < y->as_sequence.size();
        }
        return x->fingerprint() < y->fingerprint();
      });

  // Fastest: lowest RTT measured during the last full path probe; fall
  // back to the static estimate for never-probed paths.
  auto probed_rtt = [&](const controlplane::Path* path) {
    const auto it = last_probe_rtts.find(path->fingerprint());
    return it == last_probe_rtts.end() ? path->static_rtt : it->second;
  };
  chosen.fastest = *std::min_element(
      usable.begin(), usable.end(),
      [&](const controlplane::Path* x, const controlplane::Path* y) {
        const Duration rx = probed_rtt(x);
        const Duration ry = probed_rtt(y);
        if (rx != ry) return rx < ry;
        return x->fingerprint() < y->fingerprint();
      });

  // Most disjoint: lowest number of interface IDs shared with the shortest
  // and the fastest paths.
  std::set<GlobalIfaceId> reference;
  for (const auto* path : {chosen.shortest, chosen.fastest}) {
    reference.insert(path->interfaces.begin(), path->interfaces.end());
  }
  auto shared_count = [&](const controlplane::Path* path) {
    std::size_t shared = 0;
    for (const auto& gid : path->interfaces) {
      if (reference.contains(gid)) ++shared;
    }
    return shared;
  };
  chosen.disjoint = *std::min_element(
      usable.begin(), usable.end(),
      [&](const controlplane::Path* x, const controlplane::Path* y) {
        const std::size_t sx = shared_count(x);
        const std::size_t sy = shared_count(y);
        if (sx != sy) return sx < sy;
        return x->fingerprint() < y->fingerprint();
      });
  return chosen;
}

Duration sample_rtt(Duration base, std::size_t hops, double jitter_sigma,
                    Rng& rng) {
  // Jitter accumulates over hops (queueing at each router); a square-root
  // law keeps long paths from exploding.
  const double sigma =
      jitter_sigma * std::sqrt(static_cast<double>(std::max<std::size_t>(hops, 1)));
  return static_cast<Duration>(static_cast<double>(base) *
                               rng.lognormal_median(1.0, sigma));
}

Duration sample_path_rtt(const controlplane::Path& path, double jitter_sigma,
                         Rng& rng) {
  return sample_rtt(path.static_rtt, path.as_sequence.size(), jitter_sigma,
                    rng);
}

}  // namespace sciera::measure
