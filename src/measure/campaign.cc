#include "measure/campaign.h"

#include <algorithm>

#include "common/strings.h"
#include "obs/flight_recorder.h"
#include "topology/sciera_net.h"

namespace sciera::measure {
namespace {

// Shared interface count between two sorted GlobalIfaceId vectors.
std::size_t shared_ifaces(const std::vector<GlobalIfaceId>& a,
                          const std::vector<GlobalIfaceId>& b) {
  std::size_t i = 0, j = 0, shared = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++shared;
      ++i;
      ++j;
    }
  }
  return shared;
}

}  // namespace

Campaign::Campaign(controlplane::ScionNetwork& net, bgp::BgpNetwork& bgp,
                   CampaignOptions options)
    : net_(net), bgp_(bgp), options_(options) {
  auto& registry = obs::MetricsRegistry::global();
  const obs::Labels base{
      {"campaign", registry.instance_label("campaign", "multiping")}};
  metrics_.intervals = &registry.counter("sciera_campaign_intervals_total", base);
  metrics_.link_events =
      &registry.counter("sciera_campaign_link_events_total", base);
  metrics_.reselections =
      &registry.counter("sciera_campaign_reselections_total", base);
  const auto probes = [&](const char* proto) {
    obs::Labels labels = base;
    labels.emplace_back("proto", proto);
    return &registry.counter("sciera_campaign_probes_total", labels);
  };
  metrics_.scion_probes = probes("scion");
  metrics_.ip_probes = probes("ip");
  const std::vector<std::int64_t> ms_bounds{25,  50,  75,  100, 150,
                                            200, 300, 500, 800};
  const auto rtt = [&](const char* proto) {
    obs::Labels labels = base;
    labels.emplace_back("proto", proto);
    return &registry.histogram("sciera_campaign_min_rtt_ms", ms_bounds, labels);
  };
  metrics_.scion_rtt_ms = rtt("scion");
  metrics_.ip_rtt_ms = rtt("ip");
  incidents_ = paper_incidents();
  sources_ = topology::measurement_ases();
  // Targets: every SCIERA participant — "note that we also send ping
  // messages to ASes where the tool is not deployed" (Section 5.4).
  for (const auto& as_info : net_.topology().ases()) {
    targets_.push_back(as_info.ia);
  }
}

std::vector<Incident> Campaign::paper_incidents() {
  using Scope = Incident::Scope;
  std::vector<Incident> incidents;
  auto day = [](double d) { return static_cast<SimTime>(d * kDay); };

  // New EU<->US circuits become available early in the campaign: the links
  // exist in the topology but only come up then (Figure 7's stabilizer;
  // keeping the downtime short also keeps the Figure 9 medians at the
  // maximum for unaffected pairs).
  incidents.push_back({"new-eu-us-links",
                       {"geant-bridges-2", "kisti-ams-bridges"},
                       day(0.5), day(1000), Scope::kLinkComesUp});

  // January 21 (day 4): maintenance affecting several backbone links ->
  // longer paths get selected network-wide (the first Figure 7 spike).
  incidents.push_back({"jan21-maintenance-atlantic",
                       {"geant-bridges", "geant-bridges-2"},
                       day(4.15), day(4.55), Scope::kScionOnly});
  incidents.push_back({"jan21-maintenance-sgams",
                       {"kreonet-sg-ams", "cae1-sg-ams", "geant-kisti-ams"},
                       day(4.3), day(4.75), Scope::kScionOnly});
  // Days 5-7: follow-up maintenance and changes (ratio fluctuation).
  incidents.push_back({"maintenance-geant-sg", {"geant-kisti-sg"},
                       day(5.2), day(5.45), Scope::kScionOnly});
  incidents.push_back({"maintenance-chg", {"bridges-kisti-chg"},
                       day(6.3), day(6.55), Scope::kScionOnly});
  incidents.push_back({"maintenance-switch", {"switch71-switch64"},
                       day(7.1), day(7.25), Scope::kScionOnly});

  // KREONET: the direct link between two core ASes was unavailable for a
  // while, routing traffic around the globe (Figures 6 and 9).
  incidents.push_back({"kreonet-dj-hk-outage", {"kreonet-dj-hk"},
                       day(8.5), day(18.8), Scope::kBoth});

  // BRIDGES instabilities throughout the period (UVa/Princeton/Equinix
  // outliers in Figure 6, UVa<->Equinix deviation in Figure 9).
  incidents.push_back({"bridges-flap-1", {"bridges-equinix"},
                       day(2.0), day(2.4), Scope::kScionOnly});
  incidents.push_back({"bridges-flap-2", {"bridges-uva", "bridges-equinix"},
                       day(7.1), day(7.9), Scope::kScionOnly});
  incidents.push_back({"bridges-flap-3", {"bridges-equinix"},
                       day(12.3), day(13.2), Scope::kScionOnly});
  incidents.push_back({"bridges-flap-4", {"bridges-uva"},
                       day(15.6), day(16.1), Scope::kScionOnly});
  incidents.push_back({"bridges-flap-5", {"bridges-equinix"},
                       day(17.2), day(18.9), Scope::kScionOnly});
  // One of UVa's two BRIDGES uplinks stayed broken for most of the period
  // (the UVa<->Equinix median deviation of Figure 9).
  incidents.push_back({"bridges-uva-vlan-degraded", {"bridges-uva-2"},
                       day(0.6), day(8.2), Scope::kScionOnly});

  // UFMS <-> Equinix: no SCION VLAN on the RNP<->BRIDGES segment for most
  // of the campaign; SCION detours through GEANT while IP goes direct
  // (the Figure 6 outlier annotation). The Internet2 multipoint VLAN that
  // fixes it lands late in the period (Appendix C).
  incidents.push_back({"ufms-equinix-via-geant", {"bridges-rnp"},
                       day(0), day(8.4), Scope::kScionOnly});

  // February 6 (day 20): node upgrades and link maintenance (final spike).
  incidents.push_back({"feb6-upgrades",
                       {"kreonet-ams-chg", "geant-kisti-ams", "geant-bridges",
                        "kreonet-sg-ams"},
                       day(19.65), day(19.95), Scope::kScionOnly});
  return incidents;
}

void Campaign::apply_link_event(const std::string& label, bool scion_up,
                                bool ip_up) {
  const auto* info = net_.topology().find_link_by_label(label);
  if (info == nullptr) return;
  if (scion_link_up_[info->id] != scion_up) {
    scion_link_up_[info->id] = scion_up;
    net_.set_link_up(label, scion_up);  // data plane follows
    ++link_epoch_;
    metrics_.link_events->inc();
  }
  if (bgp_.link_up(info->id) != ip_up) {
    bgp_.set_link_up(info->id, ip_up);
  }
}

void Campaign::refresh_usable(Pair& pair) {
  pair.usable.clear();
  for (std::size_t i = 0; i < pair.meta.size(); ++i) {
    bool up = true;
    for (topology::LinkId id : pair.meta[i].links) {
      if (!scion_link_up_[id]) {
        up = false;
        break;
      }
    }
    if (up) pair.usable.push_back(i);
  }
  pair.usable_epoch = link_epoch_;
  pair.selection_valid = false;
}

void Campaign::reselect(Pair& pair, Rng& rng) {
  if (pair.usable.empty()) {
    pair.selection_valid = false;
    return;
  }
  // Full path probe: refresh per-path RTTs for the probed set.
  const std::size_t considered =
      std::min(pair.usable.size(), options_.probe_top_paths);
  for (std::size_t k = 0; k < considered; ++k) {
    const std::size_t i = pair.usable[k];
    pair.probe_rtt[i] =
        sample_rtt(pair.meta[i].static_rtt, pair.meta[i].hops,
                   options_.scion_jitter_sigma, rng);
  }
  // Shortest: fewest hops, lowest fingerprint (paths are pre-sorted by
  // hops/rtt/fingerprint, so the first usable is the shortest).
  pair.sel_shortest = pair.usable.front();
  // Fastest: lowest probed RTT.
  std::size_t best = pair.usable.front();
  for (std::size_t k = 0; k < considered; ++k) {
    const std::size_t i = pair.usable[k];
    if (pair.probe_rtt[i] < pair.probe_rtt[best]) best = i;
  }
  pair.sel_fastest = best;
  // Most disjoint from shortest+fastest.
  const auto& ref_a = pair.meta[pair.sel_shortest].ifaces_sorted;
  const auto& ref_b = pair.meta[pair.sel_fastest].ifaces_sorted;
  std::size_t best_disjoint = pair.usable.front();
  std::size_t best_shared = SIZE_MAX;
  for (std::size_t k = 0; k < considered; ++k) {
    const std::size_t i = pair.usable[k];
    const std::size_t shared = shared_ifaces(pair.meta[i].ifaces_sorted, ref_a) +
                               shared_ifaces(pair.meta[i].ifaces_sorted, ref_b);
    if (shared < best_shared) {
      best_shared = shared;
      best_disjoint = i;
    }
  }
  pair.sel_disjoint = best_disjoint;
  pair.selection_valid = true;
  metrics_.reselections->inc();
}

CampaignResult Campaign::run() {
  Rng rng{options_.seed, "campaign"};

  scion_link_up_.assign(net_.topology().links().size(), true);

  // Links that only come up mid-campaign start down.
  for (const auto& incident : incidents_) {
    if (incident.scope == Incident::Scope::kLinkComesUp) {
      for (const auto& label : incident.links) {
        apply_link_event(label, false, false);
      }
    }
  }

  // Precompute path sets per ordered pair.
  pairs_.clear();
  pair_paths_.clear();
  controlplane::CombinatorOptions comb;
  comb.max_paths = options_.max_paths;
  for (IsdAs src : sources_) {
    for (IsdAs dst : targets_) {
      if (src == dst) continue;
      PairPaths pp;
      pp.src = src;
      pp.dst = dst;
      pp.paths = net_.paths(src, dst, comb);
      Pair pair;
      pair.src = src;
      pair.dst = dst;
      const auto* src_info = net_.topology().find_as(src);
      const auto* dst_info = net_.topology().find_as(dst);
      // Route and congestion classes are properties of the (unordered)
      // pair: both directions share the same commercial route quality.
      const std::uint64_t lo = std::min(src.packed(), dst.packed());
      const std::uint64_t hi = std::max(src.packed(), dst.packed());
      Rng pair_rng{options_.seed ^ (lo * 0x9E3779B97F4A7C15ULL) ^ hi,
                   "pair-class"};
      const double stretch =
          pair_rng.chance(options_.commodity_bad_route_fraction)
              ? options_.commodity_bad_route_stretch
              : options_.commodity_route_stretch;
      pair.commodity_rtt =
          2 * topology::fiber_delay(
                  topology::great_circle_km(src_info->location,
                                            dst_info->location),
                  stretch) +
          2 * 600 * kMicrosecond;
      if (pair_rng.chance(options_.ip_congested_fraction)) {
        pair.ip_congestion_mean = options_.ip_congestion_mean;
        pair.ip_spike_probability = options_.ip_spike_probability;
      } else {
        pair.ip_congestion_mean = options_.ip_clean_congestion_mean;
        pair.ip_spike_probability = options_.ip_clean_spike_probability;
      }
      for (const auto& path : pp.paths) {
        PathMeta meta;
        meta.static_rtt = path.static_rtt;
        meta.hops = path.as_sequence.size();
        meta.fingerprint = path.fingerprint();
        meta.ifaces_sorted = path.interfaces;
        std::sort(meta.ifaces_sorted.begin(), meta.ifaces_sorted.end());
        meta.links = path.links;
        pair.meta.push_back(std::move(meta));
      }
      pair.probe_rtt.assign(pair.meta.size(), 0);
      pairs_.push_back(std::move(pair));
      pair_paths_.push_back(std::move(pp));
    }
  }

  // Incident event timeline.
  struct Event {
    SimTime at;
    std::string label;
    bool scion_up, ip_up;
  };
  std::vector<Event> events;
  for (const auto& incident : incidents_) {
    for (const auto& label : incident.links) {
      switch (incident.scope) {
        case Incident::Scope::kBoth:
          events.push_back({incident.from, label, false, false});
          events.push_back({incident.to, label, true, true});
          break;
        case Incident::Scope::kScionOnly:
          events.push_back({incident.from, label, false, true});
          events.push_back({incident.to, label, true, true});
          break;
        case Incident::Scope::kLinkComesUp:
          events.push_back({incident.from, label, true, true});
          break;
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& x, const Event& y) { return x.at < y.at; });

  CampaignResult result;
  result.duration = options_.duration;
  result.interval = options_.interval;

  std::size_t next_event = 0;
  int tick = 0;
  for (SimTime now = 0; now < options_.duration;
       now += options_.interval, ++tick) {
    while (next_event < events.size() && events[next_event].at <= now) {
      apply_link_event(events[next_event].label, events[next_event].scion_up,
                       events[next_event].ip_up);
      ++next_event;
    }

    // Registry snapshot before the burst: the per-burst trace event carries
    // the delta in probes sent across all pairs this tick.
    const std::uint64_t burst_base =
        metrics_.scion_probes->value() + metrics_.ip_probes->value();

    for (auto& pair : pairs_) {
      if (pair.usable_epoch != link_epoch_) refresh_usable(pair);
      const bool reselect_now =
          !pair.selection_valid || tick % options_.reselect_every == 0;
      if (reselect_now) reselect(pair, rng);

      IntervalRecord record;
      record.start = now;
      record.src = pair.src;
      record.dst = pair.dst;
      record.scion_sent = options_.pings_per_interval;
      record.ip_sent = options_.pings_per_interval;
      metrics_.intervals->inc();
      metrics_.scion_probes->inc(
          static_cast<std::uint64_t>(record.scion_sent));
      metrics_.ip_probes->inc(static_cast<std::uint64_t>(record.ip_sent));

      if (pair.selection_valid) {
        const std::size_t chosen[3] = {pair.sel_shortest, pair.sel_fastest,
                                       pair.sel_disjoint};
        const PathChoice names[3] = {PathChoice::kShortest,
                                     PathChoice::kFastest,
                                     PathChoice::kMostDisjoint};
        Duration best = INT64_MAX;
        for (int c = 0; c < 3; ++c) {
          const auto& meta = pair.meta[chosen[c]];
          for (int s = 0; s < options_.samples_per_path; ++s) {
            if (rng.chance(options_.ping_loss)) continue;
            const Duration sample = sample_rtt(
                meta.static_rtt, meta.hops, options_.scion_jitter_sigma, rng);
            if (sample < best) {
              best = sample;
              record.scion_best = names[c];
            }
          }
        }
        if (best != INT64_MAX) {
          record.scion_min_rtt = best;
          record.scion_ok = record.scion_sent;  // losses are per-sample
          metrics_.scion_rtt_ms->observe(
              static_cast<std::int64_t>(to_ms(best)));
        }
      } else {
        record.scion_ok = 0;
      }

      {
        // The ICMP path: the better of BGP-over-SCIERA-links and the direct
        // commercial-Internet route (which SCIERA incidents cannot touch).
        const auto bgp_rtt = bgp_.rtt(pair.src, pair.dst);
        Duration ip_base = pair.commodity_rtt;
        std::size_t ip_hops = 4;
        if (bgp_rtt && *bgp_rtt < ip_base) {
          ip_base = *bgp_rtt;
          ip_hops = bgp_.route(pair.src, pair.dst)->as_path.size();
        }
        // Congestion on the shared IP path persists across an interval, so
        // it lifts even the interval's minimum RTT.
        double congestion = 1.0 + rng.exponential(pair.ip_congestion_mean);
        if (rng.chance(pair.ip_spike_probability)) {
          congestion += rng.uniform(0.3, 1.2);
        }
        const auto congested_base =
            static_cast<Duration>(static_cast<double>(ip_base) * congestion);
        Duration best = INT64_MAX;
        for (int s = 0; s < options_.samples_per_path; ++s) {
          if (rng.chance(options_.ping_loss)) continue;
          const Duration sample = sample_rtt(congested_base, ip_hops,
                                             options_.ip_jitter_sigma, rng);
          best = std::min(best, sample);
        }
        if (best != INT64_MAX) {
          record.ip_min_rtt = best;
          record.ip_ok = record.ip_sent;
          metrics_.ip_rtt_ms->observe(static_cast<std::int64_t>(to_ms(best)));
        }
      }

      result.intervals.push_back(record);
      result.probes.push_back(
          PathProbeRecord{now, pair.src, pair.dst, pair.usable.size()});
    }

    obs::FlightRecorder::global().record(
        obs::TraceType::kProbeBurst, now, static_cast<std::uint64_t>(tick),
        "campaign",
        strformat("tick=%d pairs=%zu", tick, pairs_.size()),
        static_cast<std::int64_t>(metrics_.scion_probes->value() +
                                  metrics_.ip_probes->value() - burst_base));
  }
  result.pair_paths = pair_paths_;

  // Restore link state for subsequent users of the shared networks.
  for (std::size_t id = 0; id < scion_link_up_.size(); ++id) {
    if (!scion_link_up_[id]) {
      net_.link(static_cast<topology::LinkId>(id))->set_up(true);
    }
    if (!bgp_.link_up(static_cast<topology::LinkId>(id))) {
      bgp_.set_link_up(static_cast<topology::LinkId>(id), true);
    }
  }
  return result;
}

std::string CampaignResult::intervals_csv() const {
  std::string out =
      "start_s,src,dst,scion_ok,scion_min_rtt_ms,scion_best,ip_ok,ip_min_rtt_"
      "ms\n";
  for (const auto& record : intervals) {
    out += strformat(
        "%lld,%s,%s,%d,%s,%s,%d,%s\n",
        static_cast<long long>(record.start / kSecond),
        record.src.to_string().c_str(), record.dst.to_string().c_str(),
        record.scion_ok,
        record.scion_min_rtt
            ? strformat("%.3f", to_ms(*record.scion_min_rtt)).c_str()
            : "",
        path_choice_name(record.scion_best), record.ip_ok,
        record.ip_min_rtt ? strformat("%.3f", to_ms(*record.ip_min_rtt)).c_str()
                          : "");
  }
  return out;
}

std::string CampaignResult::probes_csv() const {
  std::string out = "time_s,src,dst,active_paths\n";
  for (const auto& probe : probes) {
    out += strformat("%lld,%s,%s,%zu\n",
                     static_cast<long long>(probe.time / kSecond),
                     probe.src.to_string().c_str(),
                     probe.dst.to_string().c_str(), probe.active_paths);
  }
  return out;
}

}  // namespace sciera::measure
