#include "cppki/trc.h"

#include "common/check.h"

namespace sciera::cppki {

Bytes Trc::signing_payload() const {
  Writer w;
  w.str("sciera-trc-v1");
  w.u16(isd);
  w.u32(version.base);
  w.u32(version.serial);
  w.u64(static_cast<std::uint64_t>(valid_from));
  w.u64(static_cast<std::uint64_t>(valid_until));
  w.u32(voting_quorum);
  w.u32(static_cast<std::uint32_t>(roots.size()));
  for (const auto& root : roots) {
    w.u64(root.as.packed());
    w.raw(BytesView{root.voting_key.data(), root.voting_key.size()});
    w.raw(BytesView{root.root_ca_key.data(), root.root_ca_key.size()});
  }
  return std::move(w).take();
}

const TrcRootEntry* Trc::root_for(IsdAs as) const {
  for (const auto& root : roots) {
    if (root.as == as) return &root;
  }
  return nullptr;
}

namespace {

// Counts votes that verify under the given TRC's voting keys; each core AS
// may vote at most once.
std::uint32_t count_valid_votes(const Trc& voted_on, const Trc& key_source) {
  const Bytes payload = voted_on.signing_payload();
  std::uint32_t valid = 0;
  std::vector<IsdAs> seen;
  for (const auto& vote : voted_on.votes) {
    if (std::find(seen.begin(), seen.end(), vote.voter) != seen.end()) continue;
    const auto* root = key_source.root_for(vote.voter);
    if (root == nullptr) continue;
    if (crypto::Ed25519::verify(root->voting_key, payload, vote.signature)) {
      seen.push_back(vote.voter);
      ++valid;
    }
  }
  return valid;
}

Status check_shape(const Trc& trc) {
  if (trc.roots.empty()) {
    return Error{Errc::kVerificationFailed, "TRC has no core ASes"};
  }
  if (trc.valid_until <= trc.valid_from) {
    return Error{Errc::kVerificationFailed, "TRC validity is empty"};
  }
  if (trc.voting_quorum == 0 || trc.voting_quorum > trc.roots.size()) {
    return Error{Errc::kVerificationFailed, "TRC quorum out of range"};
  }
  for (const auto& root : trc.roots) {
    if (root.as.isd() != trc.isd) {
      return Error{Errc::kVerificationFailed,
                   "core AS " + root.as.to_string() + " outside ISD"};
    }
  }
  return {};
}

}  // namespace

Status Trc::verify_base() const {
  if (auto status = check_shape(*this); !status.ok()) return status;
  if (version.serial != 1) {
    return Error{Errc::kVerificationFailed, "base TRC must have serial 1"};
  }
  if (count_valid_votes(*this, *this) < voting_quorum) {
    return Error{Errc::kVerificationFailed,
                 "base TRC lacks a quorum of self-signatures"};
  }
  return {};
}

Status Trc::verify_update(const Trc& previous) const {
  if (auto status = check_shape(*this); !status.ok()) return status;
  if (isd != previous.isd) {
    return Error{Errc::kVerificationFailed, "TRC update crosses ISDs"};
  }
  if (version.base != previous.version.base) {
    return Error{Errc::kVerificationFailed,
                 "TRC update changes base number (requires re-anchoring)"};
  }
  if (version.serial != previous.version.serial + 1) {
    return Error{Errc::kVerificationFailed,
                 "TRC update serial must increment by exactly 1"};
  }
  if (count_valid_votes(*this, previous) < previous.voting_quorum) {
    return Error{Errc::kVerificationFailed,
                 "TRC update lacks quorum of previous voting keys"};
  }
  return {};
}

TrustStore::IsdChain* TrustStore::find(Isd isd) {
  for (auto& chain : chains_) {
    if (chain.isd == isd) return &chain;
  }
  return nullptr;
}

Status TrustStore::anchor(Trc trc) {
  if (auto status = trc.verify_base(); !status.ok()) {
    // Possibly adversarial input: audited, not fatal.
    count_violation("cppki.trc_base_rejected");
    return status;
  }
  if (find(trc.isd) != nullptr) {
    return Error{Errc::kInvalidArgument,
                 "ISD " + std::to_string(trc.isd) + " already anchored"};
  }
  chains_.push_back(IsdChain{trc.isd, {std::move(trc)}});
  return {};
}

Status TrustStore::update(Trc trc) {
  auto* chain = find(trc.isd);
  if (chain == nullptr) {
    return Error{Errc::kNotFound,
                 "no anchored TRC for ISD " + std::to_string(trc.isd)};
  }
  if (auto status = trc.verify_update(chain->trcs.back()); !status.ok()) {
    count_violation("cppki.trc_update_rejected");
    return status;
  }
  // The chain a verified update extends must itself stay well-formed:
  // serials strictly increment from the anchored base.
  SCIERA_DCHECK(trc.version.serial == chain->trcs.back().version.serial + 1,
                "cppki.trc_chain_serial");
  chain->trcs.push_back(std::move(trc));
  return {};
}

const Trc* TrustStore::latest(Isd isd) const {
  for (const auto& chain : chains_) {
    if (chain.isd == isd) return &chain.trcs.back();
  }
  return nullptr;
}

const std::vector<Trc>* TrustStore::chain(Isd isd) const {
  for (const auto& chain : chains_) {
    if (chain.isd == isd) return &chain.trcs;
  }
  return nullptr;
}

}  // namespace sciera::cppki
