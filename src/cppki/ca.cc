#include "cppki/ca.h"

#include "common/rng.h"

namespace sciera::cppki {

CertificateAuthority::CertificateAuthority(IsdAs ca_as, crypto::KeyPair ca_key,
                                           Certificate ca_cert)
    : ca_as_(ca_as), ca_key_(ca_key), ca_cert_(std::move(ca_cert)) {
  auto& registry = obs::MetricsRegistry::global();
  const obs::Labels base{
      {"ca", registry.instance_label("ca", ca_as_.to_string())}};
  issued_ = &registry.counter("sciera_ca_issued_total", base);
  renewed_ = &registry.counter("sciera_ca_renewed_total", base);
  rejected_ = &registry.counter("sciera_ca_rejected_total", base);
}

CertificateAuthority::Stats CertificateAuthority::stats() const {
  return Stats{issued_->value(), renewed_->value(), rejected_->value()};
}

Result<Certificate> CertificateAuthority::issue(
    IsdAs subject, const crypto::Ed25519::PublicKey& subject_key, SimTime now,
    Duration validity) {
  if (subject.isd() != ca_as_.isd()) {
    rejected_->inc();
    return Error{Errc::kInvalidArgument,
                 "CA for ISD " + std::to_string(ca_as_.isd()) +
                     " cannot certify " + subject.to_string()};
  }
  if (validity <= 0) {
    rejected_->inc();
    return Error{Errc::kInvalidArgument, "non-positive validity"};
  }
  if (!ca_cert_.covers(now)) {
    rejected_->inc();
    return Error{Errc::kExpired, "CA certificate expired"};
  }
  Certificate cert;
  cert.type = CertType::kAs;
  cert.subject = subject;
  cert.issuer = ca_as_;
  cert.serial = next_serial_++;
  cert.subject_key = subject_key;
  cert.valid_from = now;
  cert.valid_until = now + validity;
  sign_certificate(cert, ca_key_.seed);

  if (auto [it, inserted] = issued_to_.try_emplace(subject, 1); !inserted) {
    ++it->second;
    renewed_->inc();
  } else {
    issued_->inc();
  }
  return cert;
}

Status verify_chain(const Certificate& as_cert, const Certificate& ca_cert,
                    const Trc& trc, SimTime now) {
  if (as_cert.type != CertType::kAs || ca_cert.type != CertType::kCa) {
    return Error{Errc::kVerificationFailed, "certificate types out of order"};
  }
  if (as_cert.issuer != ca_cert.subject) {
    return Error{Errc::kVerificationFailed,
                 "AS certificate issuer does not match CA certificate"};
  }
  const auto* root = trc.root_for(ca_cert.issuer);
  if (root == nullptr) {
    return Error{Errc::kVerificationFailed,
                 "CA certificate issuer " + ca_cert.issuer.to_string() +
                     " is not a TRC root"};
  }
  if (!trc.covers(now)) {
    return Error{Errc::kExpired, "TRC not valid now"};
  }
  if (auto status = ca_cert.verify(root->root_ca_key, now); !status.ok()) {
    return status;
  }
  return as_cert.verify(ca_cert.subject_key, now);
}

crypto::KeyPair IsdPki::next_key(std::string_view label) {
  Rng rng{key_seed_ + (key_counter_++) * 0x9E37'79B9, label};
  crypto::Ed25519::Seed seed{};
  for (auto& b : seed) b = static_cast<std::uint8_t>(rng.next_u64());
  return crypto::KeyPair::from_seed(seed);
}

IsdPki::IsdPki(Isd isd, std::vector<IsdAs> core_ases, SimTime now,
               Duration trc_validity, std::uint64_t key_seed)
    : isd_(isd), key_seed_(key_seed) {
  root_key_ = next_key("root-ca");

  trc_.isd = isd;
  trc_.version = TrcVersion{1, 1};
  trc_.valid_from = now;
  trc_.valid_until = now + trc_validity;
  trc_.voting_quorum =
      static_cast<std::uint32_t>(core_ases.size() / 2 + 1);
  for (IsdAs core : core_ases) {
    auto voting = next_key("voting");
    voting_keys_.emplace(core, voting);
    trc_.roots.push_back(TrcRootEntry{core, voting.pub, root_key_.pub});
  }
  // All core ASes self-sign the base TRC.
  const Bytes payload = trc_.signing_payload();
  for (IsdAs core : core_ases) {
    trc_.votes.push_back(
        TrcVote{core, crypto::Ed25519::sign(voting_keys_.at(core).seed, payload)});
  }

  // Stand up the CA at the first core AS (the "designated CA AS", §4.5),
  // holding a root-signed CA certificate.
  const IsdAs ca_as = core_ases.front();
  auto ca_key = next_key("ca");
  Certificate ca_cert;
  ca_cert.type = CertType::kCa;
  ca_cert.subject = ca_as;
  ca_cert.issuer = ca_as;  // root entry lives at the same core AS
  ca_cert.serial = 1;
  ca_cert.subject_key = ca_key.pub;
  ca_cert.valid_from = now;
  ca_cert.valid_until = now + trc_validity;
  sign_certificate(ca_cert, root_key_.seed);
  ca_ = std::make_unique<CertificateAuthority>(ca_as, ca_key, ca_cert);
}

Status IsdPki::enroll(IsdAs as, SimTime now) {
  if (as.isd() != isd_) {
    return Error{Errc::kInvalidArgument,
                 as.to_string() + " is outside ISD " + std::to_string(isd_)};
  }
  if (members_.contains(as)) {
    return Error{Errc::kInvalidArgument, as.to_string() + " already enrolled"};
  }
  AsCredentials creds;
  creds.signing_key = next_key("as-signing");
  auto cert = ca_->issue(as, creds.signing_key.pub, now);
  if (!cert) return cert.error();
  creds.as_cert = std::move(cert).value();
  creds.ca_cert = ca_->ca_certificate();
  members_.emplace(as, std::move(creds));
  return {};
}

const AsCredentials* IsdPki::credentials(IsdAs as) const {
  const auto it = members_.find(as);
  return it == members_.end() ? nullptr : &it->second;
}

std::size_t IsdPki::renew_expiring(SimTime now) {
  std::size_t renewed = 0;
  for (auto& [as, creds] : members_) {
    if (creds.as_cert.valid_until - now <= kRenewalMargin) {
      auto cert = ca_->issue(as, creds.signing_key.pub, now);
      if (cert) {
        creds.as_cert = std::move(cert).value();
        ++renewed;
      }
    }
  }
  return renewed;
}

Trc IsdPki::make_trc_update(SimTime now, Duration validity) {
  Trc next = trc_;
  next.version.serial += 1;
  next.valid_from = now;
  next.valid_until = now + validity;
  next.votes.clear();
  const Bytes payload = next.signing_payload();
  for (const auto& root : trc_.roots) {
    next.votes.push_back(TrcVote{
        root.as,
        crypto::Ed25519::sign(voting_keys_.at(root.as).seed, payload)});
  }
  trc_ = next;
  return next;
}

Result<crypto::Ed25519::Signature> IsdPki::sign_as(IsdAs as,
                                                   BytesView payload) const {
  const auto it = members_.find(as);
  if (it == members_.end()) {
    return Error{Errc::kNotFound, as.to_string() + " not enrolled"};
  }
  return crypto::Ed25519::sign(it->second.signing_key.seed, payload);
}

}  // namespace sciera::cppki
