#include "cppki/certificate.h"

#include "common/strings.h"

namespace sciera::cppki {

Bytes Certificate::signing_payload() const {
  Writer w;
  w.str("sciera-cert-v1");
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(subject.packed());
  w.u64(issuer.packed());
  w.u64(serial);
  w.raw(BytesView{subject_key.data(), subject_key.size()});
  w.u64(static_cast<std::uint64_t>(valid_from));
  w.u64(static_cast<std::uint64_t>(valid_until));
  return std::move(w).take();
}

Status Certificate::verify(const crypto::Ed25519::PublicKey& issuer_key,
                           SimTime now) const {
  if (subject.is_zero() || issuer.is_zero()) {
    return Error{Errc::kVerificationFailed, "certificate missing subject/issuer"};
  }
  if (valid_until <= valid_from) {
    return Error{Errc::kVerificationFailed, "certificate validity is empty"};
  }
  if (!covers(now)) {
    return Error{Errc::kExpired,
                 "certificate for " + subject.to_string() + " not valid now"};
  }
  if (!crypto::Ed25519::verify(issuer_key, signing_payload(), signature)) {
    return Error{Errc::kVerificationFailed,
                 "bad signature on certificate for " + subject.to_string()};
  }
  return {};
}

std::string Certificate::to_string() const {
  return strformat("%s cert subject=%s issuer=%s serial=%llu [%s, %s)",
                   type == CertType::kCa ? "CA" : "AS",
                   subject.to_string().c_str(), issuer.to_string().c_str(),
                   static_cast<unsigned long long>(serial),
                   format_time(valid_from).c_str(),
                   format_time(valid_until).c_str());
}

void sign_certificate(Certificate& cert, const crypto::Ed25519::Seed& issuer_seed) {
  cert.signature = crypto::Ed25519::sign(issuer_seed, cert.signing_payload());
}

}  // namespace sciera::cppki
