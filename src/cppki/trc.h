// Trust Root Configuration (TRC): the per-ISD trust anchor defined by the
// core ASes (Section 2). A TRC names the ISD's core ASes, root CA keys and
// voting keys, and the update policy (quorum). Updates are validated by
// "TRC chaining" (Section 4.1.2): a new TRC must carry a quorum of votes
// signed with the *previous* TRC's voting keys.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/isd_as.h"
#include "common/result.h"
#include "common/time.h"
#include "crypto/ed25519.h"

namespace sciera::cppki {

struct TrcVersion {
  std::uint32_t base = 1;
  std::uint32_t serial = 1;

  friend constexpr auto operator<=>(const TrcVersion&, const TrcVersion&) = default;
  [[nodiscard]] std::string to_string() const {
    return std::to_string(base) + "." + std::to_string(serial);
  }
};

struct TrcRootEntry {
  IsdAs as;                                  // a core AS
  crypto::Ed25519::PublicKey voting_key{};   // signs TRC updates
  crypto::Ed25519::PublicKey root_ca_key{};  // signs CA certificates
};

struct TrcVote {
  IsdAs voter;
  crypto::Ed25519::Signature signature{};
};

struct Trc {
  Isd isd = 0;
  TrcVersion version;
  SimTime valid_from = 0;
  SimTime valid_until = 0;
  std::uint32_t voting_quorum = 1;
  std::vector<TrcRootEntry> roots;
  std::vector<TrcVote> votes;

  [[nodiscard]] Bytes signing_payload() const;
  [[nodiscard]] const TrcRootEntry* root_for(IsdAs as) const;
  [[nodiscard]] bool is_core(IsdAs as) const { return root_for(as) != nullptr; }
  [[nodiscard]] bool covers(SimTime now) const {
    return now >= valid_from && now < valid_until;
  }

  // Validates this TRC as an update of `previous` (same ISD, serial + 1,
  // quorum of votes verifying under the previous TRC's voting keys).
  [[nodiscard]] Status verify_update(const Trc& previous) const;

  // Validates a base TRC: self-consistent and self-signed by a quorum of
  // its own voting keys. The *authenticity* of a base TRC still has to be
  // established out of band (Section 4.1.2).
  [[nodiscard]] Status verify_base() const;
};

// Per-host / per-AS store of TRCs, newest-first per ISD, enforcing the
// chaining rule on insertion.
class TrustStore {
 public:
  // Installs a base TRC obtained out of band.
  Status anchor(Trc trc);
  // Installs an update; must chain from the latest TRC for its ISD.
  Status update(Trc trc);

  [[nodiscard]] const Trc* latest(Isd isd) const;
  [[nodiscard]] const std::vector<Trc>* chain(Isd isd) const;
  [[nodiscard]] std::size_t isd_count() const { return chains_.size(); }

 private:
  struct IsdChain {
    Isd isd;
    std::vector<Trc> trcs;  // oldest first
  };
  std::vector<IsdChain> chains_;

  IsdChain* find(Isd isd);
};

}  // namespace sciera::cppki
