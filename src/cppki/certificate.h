// SCION control-plane PKI certificates. Two levels below the TRC:
//   CA certificates   — long-lived, signed by an ISD root key in the TRC;
//   AS certificates   — intentionally short-lived ("typically just a few
//                       days", Section 4.5), signed by a CA, forcing fully
//                       automated issuance and renewal.
#pragma once

#include <cstdint>
#include <string>

#include "common/buffer.h"
#include "common/isd_as.h"
#include "common/result.h"
#include "common/time.h"
#include "crypto/ed25519.h"

namespace sciera::cppki {

enum class CertType : std::uint8_t { kCa = 0, kAs = 1 };

struct Certificate {
  CertType type = CertType::kAs;
  IsdAs subject;
  IsdAs issuer;
  std::uint64_t serial = 0;
  crypto::Ed25519::PublicKey subject_key{};
  SimTime valid_from = 0;
  SimTime valid_until = 0;
  crypto::Ed25519::Signature signature{};

  // Canonical byte encoding of everything covered by the signature.
  [[nodiscard]] Bytes signing_payload() const;

  [[nodiscard]] bool covers(SimTime now) const {
    return now >= valid_from && now < valid_until;
  }

  // Signature check against the purported issuer key; also enforces the
  // mandatory-field rules ("strict formats and mandatory fields", §4.5).
  [[nodiscard]] Status verify(const crypto::Ed25519::PublicKey& issuer_key,
                              SimTime now) const;

  [[nodiscard]] std::string to_string() const;
};

// Signs a certificate in place with the issuer seed.
void sign_certificate(Certificate& cert, const crypto::Ed25519::Seed& issuer_seed);

}  // namespace sciera::cppki
