// The open-source SCION CA of Section 4.5 (smallstep analogue): fully
// automated issuance and renewal of short-lived AS certificates, so that
// both the open-source and the commercial control-plane stacks in one ISD
// interoperate. Also bundles IsdPki, which stands up the whole trust
// hierarchy for an ISD: voting keys, base TRC, CA certs, AS certs.
#pragma once

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cppki/certificate.h"
#include "cppki/trc.h"
#include "obs/metrics.h"

namespace sciera::cppki {

// Default AS-certificate lifetime: "typically just a few days" (§4.5).
inline constexpr Duration kDefaultAsCertValidity = 3 * kDay;
// Renew when less than a third of the lifetime remains.
inline constexpr Duration kRenewalMargin = kDefaultAsCertValidity / 3;

class CertificateAuthority {
 public:
  struct Stats {  // registry-backed snapshot
    std::uint64_t issued = 0;
    std::uint64_t renewed = 0;
    std::uint64_t rejected = 0;
  };

  // A CA is itself a core AS holding a root-signed CA certificate.
  CertificateAuthority(IsdAs ca_as, crypto::KeyPair ca_key,
                       Certificate ca_cert);

  // Issues (or renews) a short-lived AS certificate. Re-issuance for a
  // subject the CA has seen before counts as a renewal.
  Result<Certificate> issue(IsdAs subject,
                            const crypto::Ed25519::PublicKey& subject_key,
                            SimTime now,
                            Duration validity = kDefaultAsCertValidity);

  [[nodiscard]] const Certificate& ca_certificate() const { return ca_cert_; }
  [[nodiscard]] IsdAs ca_as() const { return ca_as_; }
  [[nodiscard]] Stats stats() const;

 private:
  IsdAs ca_as_;
  crypto::KeyPair ca_key_;
  Certificate ca_cert_;
  std::uint64_t next_serial_ = 1;
  std::unordered_map<IsdAs, std::uint64_t> issued_to_;
  obs::Counter* issued_ = nullptr;
  obs::Counter* renewed_ = nullptr;
  obs::Counter* rejected_ = nullptr;
};

// Verifies the full chain AS cert -> CA cert -> TRC root key.
[[nodiscard]] Status verify_chain(const Certificate& as_cert,
                                  const Certificate& ca_cert, const Trc& trc,
                                  SimTime now);

// The credentials of one AS inside an ISD PKI.
struct AsCredentials {
  crypto::KeyPair signing_key;   // control-plane signing (PCBs, topology)
  Certificate as_cert;           // short-lived, CA-signed
  Certificate ca_cert;           // the issuing CA's certificate
};

// Builds and operates a complete single-ISD PKI: base TRC voted by the
// core ASes, one CA per designated CA AS, and AS certificates for every
// member. Renewal is fully automated (renew_expiring).
class IsdPki {
 public:
  IsdPki(Isd isd, std::vector<IsdAs> core_ases, SimTime now,
         Duration trc_validity, std::uint64_t key_seed);

  [[nodiscard]] const Trc& trc() const { return trc_; }
  [[nodiscard]] Isd isd() const { return isd_; }

  // Enrolls an AS: generates its signing key and issues its first cert.
  Status enroll(IsdAs as, SimTime now);

  [[nodiscard]] const AsCredentials* credentials(IsdAs as) const;

  // Automated renewal sweep (the SCION Orchestrator behaviour of §4.4/4.5):
  // every certificate within the renewal margin gets re-issued. Returns
  // the number of certificates renewed.
  std::size_t renew_expiring(SimTime now);

  // Produces a TRC update (serial+1) signed by a quorum of voting keys;
  // callers feed it to TrustStores via update().
  [[nodiscard]] Trc make_trc_update(SimTime now, Duration validity);

  [[nodiscard]] const CertificateAuthority& ca() const { return *ca_; }
  // Signs a payload with an AS's signing key (for PCB/topology signing).
  [[nodiscard]] Result<crypto::Ed25519::Signature> sign_as(
      IsdAs as, BytesView payload) const;

 private:
  Isd isd_;
  Trc trc_;
  std::unordered_map<IsdAs, crypto::KeyPair> voting_keys_;  // lookup-only
  crypto::KeyPair root_key_;  // shared ISD root (held by the first CA AS)
  std::unique_ptr<CertificateAuthority> ca_;
  // Ordered: renew_expiring walks the membership, and each re-issue draws
  // the CA's next serial — hash order would tie serial assignment to the
  // enrollment sequence instead of the AS identifier.
  std::map<IsdAs, AsCredentials> members_;
  std::uint64_t key_seed_;
  std::uint64_t key_counter_ = 0;

  crypto::KeyPair next_key(std::string_view label);
};

}  // namespace sciera::cppki
