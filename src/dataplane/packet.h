// SCION data-plane packet format: common header, address header, and the
// path header (info fields + hop fields), serialized to real bytes with
// bounds-checked parsing. Layout mirrors the SCION header specification;
// every border router on a path parses these bytes.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/isd_as.h"
#include "common/result.h"

namespace sciera::dataplane {

enum class PathType : std::uint8_t { kEmpty = 0, kScion = 1 };

// Payload protocol numbers (next_hdr).
inline constexpr std::uint8_t kProtoUdp = 17;
inline constexpr std::uint8_t kProtoScmp = 202;

using Mac6 = std::array<std::uint8_t, 6>;

// Info field: per-segment metadata (8 bytes on the wire).
struct InfoField {
  bool construction_dir = true;  // C flag: traversal along beaconing dir
  bool peering = false;          // P flag: segment contains a peering hop
  std::uint16_t seg_id = 0;      // beta accumulator for MAC chaining
  std::uint32_t timestamp = 0;   // segment origination time (unix seconds)

  friend bool operator==(const InfoField&, const InfoField&) = default;
};

// Hop field: one AS crossing (12 bytes on the wire).
struct HopField {
  // Peering hop fields (distributed as PCB peer entries) skip the seg_id
  // chaining step; their MAC is computed over the accumulator value that
  // follows the AS's main hop, so entering a segment sideways through a
  // peering link keeps the rest of the chain verifiable.
  bool peering = false;
  std::uint8_t exp_time = 63;        // expiry, in 1/256ths of 24h from ts
  IfaceId cons_ingress = 0;          // ingress in construction direction
  IfaceId cons_egress = 0;           // egress in construction direction
  Mac6 mac{};

  friend bool operator==(const HopField&, const HopField&) = default;
};

// The standard SCION path: up to 3 segments of hop fields.
struct ScionPath {
  std::uint8_t curr_inf = 0;
  std::uint8_t curr_hf = 0;
  std::array<std::uint8_t, 3> seg_len{0, 0, 0};
  std::vector<InfoField> info;
  std::vector<HopField> hops;

  [[nodiscard]] std::size_t num_segments() const { return info.size(); }
  [[nodiscard]] std::size_t num_hops() const { return hops.size(); }
  [[nodiscard]] bool at_end() const { return curr_hf >= hops.size(); }

  [[nodiscard]] const InfoField& current_info() const { return info[curr_inf]; }
  [[nodiscard]] InfoField& current_info() { return info[curr_inf]; }
  [[nodiscard]] const HopField& current_hop() const { return hops[curr_hf]; }

  // Index of the first hop of segment `seg`.
  [[nodiscard]] std::size_t segment_start(std::size_t seg) const;
  // Segment index that hop `hf` belongs to.
  [[nodiscard]] std::size_t segment_of(std::size_t hf) const;
  // True if the current hop is the last hop of its segment.
  [[nodiscard]] bool at_segment_end() const;

  // Advances to the next hop, bumping curr_inf across segment boundaries.
  void advance();

  // Returns the path reversed for the return direction (segments reversed,
  // hop order flipped, C flags toggled) — how SCMP replies travel back.
  [[nodiscard]] ScionPath reversed() const;

  [[nodiscard]] Status validate() const;

  void serialize(Writer& w) const;
  static Result<ScionPath> parse(Reader& r);
  // Parses into `out`, reusing its info/hops allocations (contents
  // replaced). On error `out` is left in an unspecified valid state.
  static Status parse_into(Reader& r, ScionPath& out);

  friend bool operator==(const ScionPath&, const ScionPath&) = default;
};

// Host address inside an AS (modelled as an IPv4-style 32-bit id).
struct Address {
  IsdAs ia;
  std::uint32_t host = 0;

  friend bool operator==(const Address&, const Address&) = default;
  [[nodiscard]] std::string to_string() const;
};

struct ScionPacket {
  // Common header.
  std::uint8_t traffic_class = 0;
  std::uint32_t flow_id = 0;        // 20 bits on the wire
  std::uint8_t next_hdr = kProtoUdp;
  PathType path_type = PathType::kScion;
  std::uint8_t hop_limit = 64;
  // Address header.
  Address dst;
  Address src;
  // Path header.
  ScionPath path;
  // L4 payload (UDP datagram or SCMP message, already serialized).
  Bytes payload;

  [[nodiscard]] Result<Bytes> serialize() const;
  // Serializes into `out`, reusing its allocation (contents replaced).
  // This is the hot-path form: pooled frame buffers round-trip through
  // here without a per-hop heap allocation.
  [[nodiscard]] Status serialize_into(Bytes& out) const;
  static Result<ScionPacket> parse(BytesView bytes);
  // Parses into `out`, reusing its path/payload allocations — the
  // batched-router twin of serialize_into: a pooled scratch packet
  // round-trips through here with zero per-packet heap allocations.
  // On error `out` is left in an unspecified valid state.
  static Status parse_into(BytesView bytes, ScionPacket& out);

  [[nodiscard]] std::size_t wire_size() const;

  friend bool operator==(const ScionPacket&, const ScionPacket&) = default;
};

// UDP payload helpers (next_hdr == kProtoUdp).
struct UdpDatagram {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Bytes data;

  [[nodiscard]] Bytes serialize() const;
  static Result<UdpDatagram> parse(BytesView bytes);
};

}  // namespace sciera::dataplane
