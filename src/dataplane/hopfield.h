// Hop-field MAC computation and chaining (the SCION data-plane security
// core). Each AS derives a forwarding key from its master secret; border
// routers verify every packet's current hop field with one AES-CMAC — an
// "efficient symmetric cryptographic operation" (Section 2).
//
// Chaining: beta_{i+1} = beta_i XOR mac_i[0:2]. A segment's info field
// carries the accumulator (seg_id); traversal against construction
// direction first un-chains (XOR) and then verifies, traversal along
// construction direction verifies and then chains.
#pragma once

#include "crypto/cmac.h"
#include "dataplane/packet.h"

namespace sciera::dataplane {

using FwdKey = crypto::Aes128::Key;

// Derives an AS forwarding key from a master secret.
[[nodiscard]] FwdKey derive_fwd_key(BytesView as_master_secret);

// MAC over (beta, timestamp, exp_time, cons_ingress, cons_egress).
[[nodiscard]] Mac6 compute_hop_mac(const FwdKey& key, std::uint16_t beta,
                                   std::uint32_t timestamp,
                                   const HopField& hop);

[[nodiscard]] bool verify_hop_mac(const FwdKey& key, std::uint16_t beta,
                                  std::uint32_t timestamp,
                                  const HopField& hop);

// beta update applied when moving past a hop in construction direction.
[[nodiscard]] std::uint16_t chain_beta(std::uint16_t beta, const Mac6& mac);

// Hop-field expiry: exp_time encodes a relative expiry of
// (exp_time + 1) * 24h/256 after the segment timestamp.
[[nodiscard]] bool hop_expired(const HopField& hop, std::uint32_t segment_ts,
                               std::uint32_t now_unix);

}  // namespace sciera::dataplane
