// Hop-field MAC computation and chaining (the SCION data-plane security
// core). Each AS derives a forwarding key from its master secret; border
// routers verify every packet's current hop field with one AES-CMAC — an
// "efficient symmetric cryptographic operation" (Section 2).
//
// Chaining: beta_{i+1} = beta_i XOR mac_i[0:2]. A segment's info field
// carries the accumulator (seg_id); traversal against construction
// direction first un-chains (XOR) and then verifies, traversal along
// construction direction verifies and then chains.
//
// Fast path: the AES key schedule plus CMAC subkey derivation is the
// expensive part of a hop MAC, and the forwarding key changes once per
// AS lifetime, not once per packet. HopVerifier keeps the expanded
// context per key; the free functions below route through a bounded
// per-key context cache so control-plane callers (beaconing) get the
// same reuse without holding a verifier.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "crypto/cmac.h"
#include "dataplane/packet.h"
#include "obs/metrics.h"

namespace sciera::dataplane {

using FwdKey = crypto::Aes128::Key;

// Derives an AS forwarding key from a master secret.
[[nodiscard]] FwdKey derive_fwd_key(BytesView as_master_secret);

// Cached hop-MAC context for one forwarding key. The AES key schedule
// and CMAC subkeys are derived once at construction (or rekey()) and
// reused for every packet; on top sits an optional direct-mapped cache
// of finished MACs keyed by the 16-byte MAC input block.
//
// Determinism contract: the cache is pure memoization of a
// deterministic function — a hit returns the bit-identical MAC a miss
// would compute, so caching is invisible to drop decisions and to the
// schedule digest. Eviction is overwrite-on-index-collision: strictly
// size-bounded, no clocks, no recency ordering, identical across runs.
class HopVerifier {
 public:
  struct Config {
    // Direct-mapped MAC-cache slots (power of two; 0 disables caching).
    std::size_t cache_entries = 1024;
    // Pre-fix behavior: rebuild the AES-CMAC context on every call.
    // Exists only as the measurable baseline for the router micro-bench.
    bool per_packet_keyschedule = false;
  };

  struct CacheCounters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  HopVerifier(const FwdKey& key, Config config);
  explicit HopVerifier(const FwdKey& key) : HopVerifier(key, Config{}) {}

  // Key rollover: one fresh schedule, and every cached MAC is dropped —
  // entries minted under the old key must not survive the new one.
  void rekey(const FwdKey& key);

  [[nodiscard]] const FwdKey& key() const { return key_; }

  // MAC over (beta, timestamp, exp_time, cons_ingress, cons_egress).
  [[nodiscard]] Mac6 compute(std::uint16_t beta, std::uint32_t timestamp,
                             const HopField& hop);

  // compute() + constant-time compare against hop.mac; counts the
  // dataplane.hop_mac_mismatch violation on failure.
  [[nodiscard]] bool verify(std::uint16_t beta, std::uint32_t timestamp,
                            const HopField& hop);

  [[nodiscard]] const CacheCounters& cache_counters() const {
    return counters_;
  }

  // Wires registry cells (the border router's per-instance counters)
  // bumped alongside the internal hit/miss counts.
  void set_cache_counters(obs::Counter* hits, obs::Counter* misses) {
    hit_counter_ = hits;
    miss_counter_ = misses;
  }

 private:
  struct CacheEntry {
    std::array<std::uint8_t, 16> block{};
    Mac6 mac{};
    bool valid = false;
  };

  FwdKey key_;
  Config config_;
  crypto::AesCmac cmac_;
  std::vector<CacheEntry> cache_;
  CacheCounters counters_;
  obs::Counter* hit_counter_ = nullptr;
  obs::Counter* miss_counter_ = nullptr;
};

// MAC over (beta, timestamp, exp_time, cons_ingress, cons_egress).
// Routed through a process-wide per-key context cache: one key schedule
// per distinct key, not per call.
[[nodiscard]] Mac6 compute_hop_mac(const FwdKey& key, std::uint16_t beta,
                                   std::uint32_t timestamp,
                                   const HopField& hop);

[[nodiscard]] bool verify_hop_mac(const FwdKey& key, std::uint16_t beta,
                                  std::uint32_t timestamp,
                                  const HopField& hop);

// beta update applied when moving past a hop in construction direction.
[[nodiscard]] std::uint16_t chain_beta(std::uint16_t beta, const Mac6& mac);

// Hop-field expiry: exp_time encodes a relative expiry of
// (exp_time + 1) * 24h/256 after the segment timestamp.
[[nodiscard]] bool hop_expired(const HopField& hop, std::uint32_t segment_ts,
                               std::uint32_t now_unix);

}  // namespace sciera::dataplane
