#include "dataplane/router.h"

#include <algorithm>

#include "common/check.h"
#include "dataplane/frame_pool.h"
#include "common/log.h"
#include "common/strings.h"
#include "obs/flight_recorder.h"

namespace sciera::dataplane {
namespace {

IfaceId effective_ingress(const InfoField& info, const HopField& hop) {
  return info.construction_dir ? hop.cons_ingress : hop.cons_egress;
}

IfaceId effective_egress(const InfoField& info, const HopField& hop) {
  return info.construction_dir ? hop.cons_egress : hop.cons_ingress;
}

const char* scmp_type_name(ScmpType type) {
  switch (type) {
    case ScmpType::kDestinationUnreachable: return "dest_unreachable";
    case ScmpType::kPacketTooBig: return "packet_too_big";
    case ScmpType::kHopLimitExceeded: return "hop_limit_exceeded";
    case ScmpType::kParameterProblem: return "parameter_problem";
    case ScmpType::kExternalInterfaceDown: return "external_iface_down";
    case ScmpType::kInternalConnectivityDown: return "internal_down";
    case ScmpType::kEchoRequest: return "echo_request";
    case ScmpType::kEchoReply: return "echo_reply";
  }
  return "unknown";
}

}  // namespace

BorderRouter::BorderRouter(simnet::Simulator& sim, IsdAs ia, FwdKey fwd_key,
                           Config config)
    : Node("br-" + ia.to_string()),
      sim_(sim),
      ia_(ia),
      config_(config),
      verifier_(fwd_key, config.mac) {
  auto& registry = obs::MetricsRegistry::global();
  const obs::Labels base{
      {"router", registry.instance_label("router", ia.to_string())}};
  const auto counter = [&](const char* name) {
    return &registry.counter(name, base);
  };
  const auto dropped = [&](const char* reason) {
    obs::Labels labels = base;
    labels.emplace_back("reason", reason);
    return &registry.counter("sciera_router_dropped_total", labels);
  };
  metrics_.forwarded = counter("sciera_router_forwarded_total");
  metrics_.delivered = counter("sciera_router_delivered_total");
  metrics_.injected = counter("sciera_router_injected_total");
  metrics_.echo_replies = counter("sciera_router_echo_replies_total");
  metrics_.scmp_errors_sent = counter("sciera_router_scmp_errors_total");
  metrics_.drop_mac = dropped("mac");
  metrics_.drop_expired = dropped("expired");
  metrics_.drop_bad_ingress = dropped("bad_ingress");
  metrics_.drop_no_route = dropped("no_route");
  metrics_.drop_malformed = dropped("malformed");
  metrics_.drop_offline = dropped("offline");
  metrics_.crashes = counter("sciera_router_crashes_total");
  metrics_.batches = counter("sciera_router_batches_total");
  metrics_.batch_packets = counter("sciera_router_batch_packets_total");
  metrics_.mac_cache_hits = counter("sciera_router_mac_cache_hits_total");
  metrics_.mac_cache_misses = counter("sciera_router_mac_cache_misses_total");
  const auto admission_dropped = [&](const char* klass) {
    obs::Labels labels = base;
    labels.emplace_back("class", klass);
    return &registry.counter("sciera_router_admission_dropped_total", labels);
  };
  metrics_.admission_dropped_data = admission_dropped("data");
  metrics_.admission_dropped_control = admission_dropped("control");
  metrics_.scmp_suppressed = &registry.counter(
      "sciera_scmp_suppressed_total", base);
  verifier_.set_cache_counters(metrics_.mac_cache_hits,
                               metrics_.mac_cache_misses);
  data_bucket_ = TokenBucket{config_.admission.data_burst, 0};
  control_bucket_ = TokenBucket{config_.admission.control_burst, 0};
}

void BorderRouter::crash() {
  if (!online_) return;
  online_ = false;
  metrics_.crashes->inc();
  obs::FlightRecorder::global().record(
      obs::TraceType::kChaosInject, sim_.now(), sim_.executed_events(),
      name(), "router crash");
}

BorderRouter::Stats BorderRouter::stats() const {
  return Stats{metrics_.forwarded->value(),
               metrics_.delivered->value(),
               metrics_.injected->value(),
               metrics_.echo_replies->value(),
               metrics_.drop_mac->value(),
               metrics_.drop_expired->value(),
               metrics_.drop_bad_ingress->value(),
               metrics_.drop_no_route->value(),
               metrics_.drop_malformed->value(),
               metrics_.drop_offline->value(),
               metrics_.scmp_errors_sent->value(),
               metrics_.crashes->value(),
               metrics_.batches->value(),
               metrics_.batch_packets->value(),
               metrics_.mac_cache_hits->value(),
               metrics_.mac_cache_misses->value(),
               metrics_.admission_dropped_data->value(),
               metrics_.admission_dropped_control->value(),
               metrics_.scmp_suppressed->value()};
}

bool BorderRouter::take_token(TokenBucket& bucket, double pps, double burst,
                              SimTime now) {
  const double elapsed =
      static_cast<double>(now - bucket.last) / static_cast<double>(kSecond);
  bucket.tokens = std::min(burst, bucket.tokens + elapsed * pps);
  bucket.last = now;
  if (bucket.tokens < 1.0) return false;
  // Bucket levels never reach a digest, and every update happens in the
  // router's deterministic per-packet order within its shard.
  // NOLINTNEXTLINE(float-accumulation) drop decision, not digest state
  bucket.tokens -= 1.0;
  return true;
}

bool BorderRouter::admit(const ScionPacket& packet) {
  const bool control = packet.next_hdr == kProtoScmp;
  const Config::Admission& adm = config_.admission;
  const double pps = control ? adm.control_pps : adm.data_pps;
  if (pps <= 0) return true;  // class unlimited — the legacy default
  TokenBucket& bucket = control ? control_bucket_ : data_bucket_;
  const double burst = control ? adm.control_burst : adm.data_burst;
  if (take_token(bucket, pps, burst, sim_.now())) return true;
  (control ? metrics_.admission_dropped_control
           : metrics_.admission_dropped_data)->inc();
  return false;
}

bool BorderRouter::scmp_budget_ok(IsdAs offender) {
  const std::uint64_t packed = offender.packed();
  const auto slot =
      static_cast<std::size_t>((packed * 0x9E3779B97F4A7C15ULL) >> 58);
  ScmpSlot& entry = scmp_slots_[slot];
  if (!entry.used || entry.ia != packed) {
    entry = ScmpSlot{packed, TokenBucket{config_.scmp_burst, sim_.now()},
                     true};
  }
  return take_token(entry.bucket, config_.scmp_rate_pps, config_.scmp_burst,
                    sim_.now());
}

void BorderRouter::attach_iface(IfaceId iface, simnet::Link* link, int side) {
  ifaces_[iface] = IfaceBinding{link, side};
}

std::uint32_t BorderRouter::now_unix() const {
  return config_.unix_epoch +
         static_cast<std::uint32_t>(sim_.now() / kSecond);
}

Status BorderRouter::inject(const ScionPacket& packet) {
  if (!online_) {
    metrics_.drop_offline->inc();
    return Error{Errc::kUnreachable,
                 "border router " + ia_.to_string() + " is down"};
  }
  if (packet.path_type == PathType::kEmpty) {
    if (packet.dst.ia != ia_) {
      return Error{Errc::kInvalidArgument,
                   "empty path can only reach the local AS"};
    }
    metrics_.injected->inc();
    deliver_local(packet);
    return {};
  }
  if (auto status = packet.path.validate(); !status.ok()) return status;
  metrics_.injected->inc();
  // process() consumes its packet in place; the caller keeps theirs.
  ScionPacket working = packet;
  process(working, /*arrival_iface=*/0, /*from_local=*/true);
  return {};
}

void BorderRouter::receive(const simnet::MessagePtr& message,
                           const simnet::Arrival& arrival) {
  if (!online_) {
    // A crashed router is a silent blackhole: no SCMP, no forwarding —
    // the failure mode end hosts can only detect by timeout.
    metrics_.drop_offline->inc();
    return;
  }
  const auto* frame = dynamic_cast<const UnderlayFrame*>(message.get());
  if (frame == nullptr) {
    metrics_.drop_malformed->inc();
    return;
  }
  auto packet = ScionPacket::parse(frame->scion_bytes);
  if (!packet) {
    metrics_.drop_malformed->inc();
    log_debug("router") << name() << " drops malformed packet: "
                        << packet.error().to_string();
    return;
  }
  if (!admit(packet.value())) return;
  process(packet.value(), arrival.local_iface, /*from_local=*/false);
}

void BorderRouter::receive_batch(std::span<const simnet::MessagePtr> batch,
                                 const simnet::Arrival& arrival) {
  if (!config_.batched) {
    // Scalar referee mode: one receive() per frame, in order — exactly
    // the pre-batching behavior the equivalence suite compares against.
    Node::receive_batch(batch, arrival);
    return;
  }
  if (!online_) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      metrics_.drop_offline->inc();
    }
    return;
  }
  metrics_.batches->inc();
  // Stage 1: parse every frame of the tick into reused scratch slots —
  // a single pass over the frame-pool arena the batch lives in, with no
  // per-packet allocation once the scratch is warm.
  if (batch_scratch_.size() < batch.size()) {
    batch_scratch_.resize(batch.size());
  }
  batch_ok_.assign(batch.size(), 0);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto* frame = dynamic_cast<const UnderlayFrame*>(batch[i].get());
    if (frame == nullptr) {
      metrics_.drop_malformed->inc();
      continue;
    }
    auto status = ScionPacket::parse_into(frame->scion_bytes, batch_scratch_[i]);
    if (!status.ok()) {
      metrics_.drop_malformed->inc();
      log_debug("router") << name() << " drops malformed packet: "
                          << status.error().to_string();
      continue;
    }
    batch_ok_[i] = 1;
  }
  // Stage 2: hop validation → MAC check → forward, in arrival order.
  // Parsing schedules no events, so this staged order produces the same
  // event schedule the scalar parse/process interleaving does.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch_ok_[i] == 0) continue;
    if (!admit(batch_scratch_[i])) continue;
    metrics_.batch_packets->inc();
    process(batch_scratch_[i], arrival.local_iface, /*from_local=*/false);
  }
}

Result<IfaceId> BorderRouter::process_current_hop(ScionPacket& packet,
                                                  IfaceId arrival_iface,
                                                  bool from_local) {
  ScionPath& path = packet.path;
  if (path.at_end()) {
    return Error{Errc::kParseError, "path pointer past the end"};
  }
  // Structural invariant validate() must have established before a packet
  // reaches the forwarding engine; a violation means a packet bypassed
  // validate() or advance() corrupted the info pointer.
  SCIERA_DCHECK(path.curr_inf < path.num_segments(),
                "dataplane.path_inf_bounds");
  InfoField& info = path.current_info();
  const HopField& hop = path.current_hop();

  // beta handling: against construction direction, un-chain first.
  // Peering hop fields never touch the accumulator (see HopField::peering).
  if (!info.construction_dir && !hop.peering) {
    info.seg_id = chain_beta(info.seg_id, hop.mac);
  }
  const std::uint16_t beta = info.seg_id;

  if (hop_expired(hop, info.timestamp, now_unix())) {
    metrics_.drop_expired->inc();
    return Error{Errc::kExpired, "hop field expired"};
  }
  if (!verifier_.verify(beta, info.timestamp, hop)) {
    metrics_.drop_mac->inc();
    return Error{Errc::kVerificationFailed, "hop field MAC mismatch"};
  }
  if (!from_local) {
    const IfaceId expect_in = effective_ingress(info, hop);
    if (expect_in != 0 && expect_in != arrival_iface) {
      metrics_.drop_bad_ingress->inc();
      count_violation("dataplane.bad_ingress");
      return Error{Errc::kVerificationFailed, "wrong ingress interface"};
    }
  }

  // Chain forward when moving along construction direction.
  if (info.construction_dir && !hop.peering) {
    info.seg_id = chain_beta(info.seg_id, hop.mac);
  }
  return effective_egress(info, hop);
}

void BorderRouter::process(ScionPacket& packet, IfaceId arrival_iface,
                           bool from_local) {
  for (;;) {
    auto egress = process_current_hop(packet, arrival_iface, from_local);
    if (!egress) {
      log_debug("router") << name() << " drop: " << egress.error().to_string();
      return;
    }
    ScionPath& path = packet.path;
    const bool last_segment = path.curr_inf + 1u >= path.num_segments();

    // Segment crossovers: when the current hop is the last of its segment
    // and more segments follow, the *same* AS opens the next segment
    // (up/core/down joins and shortcuts). The one exception is a peering
    // exit: the segment boundary is crossed over the peering link, so the
    // packet is forwarded and the neighbor processes the next segment.
    if (path.at_segment_end() && !last_segment) {
      const bool peering_exit = path.current_info().peering &&
                                path.current_hop().peering && *egress != 0;
      if (!peering_exit) {
        path.advance();
        arrival_iface = 0;
        from_local = true;  // intra-AS handover, no ingress check
        continue;
      }
    }

    // Delivery: the hop just processed is the final one of the path (its
    // effective egress is 0 for full segments, or non-zero when the path
    // was cut mid-segment at an on-path destination — Section 2's
    // "shortcuts" also end this way on the return direction).
    const bool last_hop = path.curr_hf + 1u >= path.num_hops();
    if (*egress == 0 || last_hop) {
      // End of path: must be addressed to this AS.
      if (packet.dst.ia != ia_) {
        metrics_.drop_no_route->inc();
        return;
      }
      if (config_.answer_scmp_echo && packet.next_hdr == kProtoScmp) {
        if (auto msg = ScmpMessage::parse(packet.payload);
            msg.ok() && msg->type == ScmpType::kEchoRequest) {
          answer_echo(packet);
          return;
        }
      }
      deliver_local(packet);
      return;
    }

    // TTL-style hop limit: expires at the AS where it reaches zero, which
    // is what the traceroute utility drives.
    if (packet.hop_limit == 0 || --packet.hop_limit == 0) {
      std::uint16_t id = 0, seq = 0;
      if (packet.next_hdr == kProtoScmp) {
        if (auto msg = ScmpMessage::parse(packet.payload); msg.ok()) {
          if (msg->is_error()) return;  // never answer errors with errors
          id = msg->identifier;
          seq = msg->sequence;
        }
      }
      metrics_.scmp_errors_sent->inc();
      // Position the pointer past this AS's hop as forward() would have.
      ScionPacket expired = packet;
      expired.path.advance();
      send_scmp_error(expired, make_hop_limit_exceeded(ia_, id, seq));
      return;
    }

    path.advance();
    forward(packet, *egress);
    return;
  }
}

void BorderRouter::deliver_local(const ScionPacket& packet) {
  metrics_.delivered->inc();
  if (!local_delivery_) return;
  auto delivery = local_delivery_;
  // The endpoint handoff copies the packet (it outlives the scratch slot
  // it may live in); the forwarding fast path never takes this branch
  // for transit traffic, so the copy is off the hot path.
  sim_.schedule_after(simnet::Domain::current(), config_.intra_as_delay,
                      [delivery, packet, &sim = sim_] {
                        delivery(packet, sim.now());
                      });
}

void BorderRouter::forward(const ScionPacket& packet, IfaceId egress) {
  const auto it = ifaces_.find(egress);
  if (it == ifaces_.end()) {
    metrics_.drop_no_route->inc();
    return;
  }
  if (!it->second.link->is_up()) {
    // Data-plane failure: tell the source (SCMP ExternalInterfaceDown).
    metrics_.scmp_errors_sent->inc();
    send_scmp_error(packet, make_external_iface_down(ia_, egress));
    return;
  }
  auto frame = FramePool::global().acquire();
  if (auto status = packet.serialize_into(frame->scion_bytes); !status.ok()) {
    metrics_.drop_malformed->inc();
    return;
  }
  metrics_.forwarded->inc();
  obs::FlightRecorder::global().record(
      obs::TraceType::kPacketHop, sim_.now(), sim_.executed_events(), name(),
      strformat("egress=%u", static_cast<unsigned>(egress)));
  it->second.link->send(it->second.side, frame);
}

void BorderRouter::answer_echo(const ScionPacket& request) {
  auto msg = ScmpMessage::parse(request.payload);
  if (!msg) return;
  ScionPacket reply = reverse_packet(request);
  reply.payload = make_echo_reply(msg.value()).serialize();
  metrics_.echo_replies->inc();
  // The reply's first hop names this AS; process it as a local injection.
  process(reply, /*arrival_iface=*/0, /*from_local=*/true);
}

void BorderRouter::send_scmp_error(const ScionPacket& offending,
                                   ScmpMessage error) {
  if (offending.next_hdr == kProtoScmp) {
    // Never answer SCMP errors with SCMP errors; echo requests are fine to
    // answer but errors about errors would loop.
    if (auto msg = ScmpMessage::parse(offending.payload);
        msg.ok() && msg->is_error()) {
      return;
    }
  }
  // Per-offender error budget: a flood tripping errors at line rate must
  // not amplify into an SCMP storm on the reverse path. stats().
  // scmp_errors_sent counts generation attempts; scmp_suppressed the
  // subset this budget dropped.
  if (config_.scmp_rate_pps > 0 && !scmp_budget_ok(offending.src.ia)) {
    metrics_.scmp_suppressed->inc();
    return;
  }
  obs::FlightRecorder::global().record(
      obs::TraceType::kScmpEmitted, sim_.now(), sim_.executed_events(), name(),
      scmp_type_name(error.type));
  ScionPacket reply = reverse_packet(offending);
  // The offending packet's pointer already advanced past this AS's hop;
  // position the reverse pointer on this AS's hop so the reply starts here.
  const std::size_t total = reply.path.num_hops();
  const std::size_t orig_hf = offending.path.curr_hf;
  if (orig_hf == 0 || orig_hf > total) return;
  reply.path.curr_hf = static_cast<std::uint8_t>(total - orig_hf);
  reply.path.curr_inf =
      static_cast<std::uint8_t>(reply.path.segment_of(reply.path.curr_hf));
  reply.next_hdr = kProtoScmp;
  reply.payload = error.serialize();
  process(reply, /*arrival_iface=*/0, /*from_local=*/true);
}

ScionPacket reverse_packet(const ScionPacket& packet) {
  ScionPacket reply;
  reply.traffic_class = packet.traffic_class;
  reply.flow_id = packet.flow_id;
  reply.next_hdr = packet.next_hdr;
  reply.path_type = packet.path_type;
  reply.dst = packet.src;
  reply.src = packet.dst;
  reply.path = packet.path.reversed();
  return reply;
}

}  // namespace sciera::dataplane
