// Recycling arena for underlay frames. Every hop of every packet used to
// heap-allocate a fresh UnderlayFrame plus its serialized-bytes vector and
// free both when the last receiver dropped the message; at campaign scale
// that is the dominant allocation source of the whole simulator. The pool
// keeps released frames (with their byte buffers' capacity intact) on a
// free list, so steady-state forwarding runs allocation-free: acquire()
// pops a warm frame, ScionPacket::serialize_into() reuses its buffer, and
// the shared_ptr deleter returns it when the delivery completes.
//
// The pool is process-wide and mutex-guarded: under the sharded parallel
// core a frame acquired on one shard can be released by the receiving
// shard's thread (the shared_ptr deleter runs wherever the last reference
// drops), so the free list is genuinely cross-thread. The lock is
// uncontended in single-shard runs and short (pointer push/pop) in
// parallel ones. Determinism is unaffected: recycling changes *where* a
// frame lives, never what the schedule does.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_annotations.h"
#include "dataplane/underlay.h"

namespace sciera::dataplane {

class FramePool {
 public:
  struct Config {
    // Frames kept warm beyond this are freed instead of pooled, bounding
    // the arena after a burst.
    std::size_t max_pooled = 4096;
  };

  struct Stats {  // registry-backed snapshot (mirrored by publish_metrics)
    std::uint64_t acquired = 0;   // total acquire() calls
    std::uint64_t allocated = 0;  // acquires that hit the allocator
    std::uint64_t reused = 0;     // acquires served from the free list
    std::int64_t outstanding = 0;  // acquired and not yet released
    std::int64_t pooled = 0;       // currently on the free list
    std::uint64_t ctrl_allocated = 0;  // control blocks from the allocator
    std::uint64_t ctrl_reused = 0;     // control blocks from the free list
  };

  explicit FramePool(Config config) : config_(config) {}
  FramePool() : FramePool(Config{}) {}
  ~FramePool();
  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  // The process-wide pool the forwarding plane draws from.
  static FramePool& global();

  // Returns a zeroed frame whose scion_bytes keeps the capacity of its
  // previous life. Released back to the pool automatically when the last
  // shared_ptr owner drops.
  [[nodiscard]] std::shared_ptr<UnderlayFrame> acquire();

  [[nodiscard]] Stats stats() const {
    sciera::MutexLock lock(mutex_);
    return stats_;
  }
  // Drops every pooled frame (tests; bounds memory after huge runs).
  void trim();

  // Copies the current stats into sciera_frame_pool_* registry gauges.
  // On-demand rather than live: the process-wide pool outlives registry
  // resets (tests reset the registry between audited runs), so the pool
  // keeps its own counters and exporters publish a snapshot when asked.
  void publish_metrics() const;

 private:
  // Runs in shared_ptr deleters, so it asserts the role itself rather
  // than requiring it (the capture site cannot carry the annotation).
  void release(UnderlayFrame* frame);

  // Allocator handed to the frame shared_ptr so the control block itself
  // recycles through the pool: without it every acquire() heap-allocates
  // one fixed-size shared_ptr node even when the frame is warm. The
  // shared_ptr internals rebind this to their node type; every
  // (de)allocation routes to alloc_ctrl/free_ctrl below.
  template <typename T>
  struct CtrlAlloc {
    using value_type = T;
    FramePool* pool = nullptr;
    explicit CtrlAlloc(FramePool* p) : pool(p) {}
    template <typename U>
    explicit(false) CtrlAlloc(const CtrlAlloc<U>& other) : pool(other.pool) {}
    T* allocate(std::size_t n) {
      return static_cast<T*>(pool->alloc_ctrl(n * sizeof(T)));
    }
    void deallocate(T* ptr, std::size_t n) {
      pool->free_ctrl(ptr, n * sizeof(T));
    }
    friend bool operator==(const CtrlAlloc&, const CtrlAlloc&) = default;
  };

  void* alloc_ctrl(std::size_t size);
  void free_ctrl(void* ptr, std::size_t size);

  Config config_;
  mutable sciera::Mutex mutex_;
  std::vector<std::unique_ptr<UnderlayFrame>> free_list_
      SCIERA_GUARDED_BY(mutex_);
  // Recycled shared_ptr control-block nodes. Single fixed size (the one
  // node type acquire() mints); ctrl_size_ latches it on first use.
  std::vector<void*> ctrl_free_ SCIERA_GUARDED_BY(mutex_);
  std::size_t ctrl_size_ SCIERA_GUARDED_BY(mutex_) = 0;
  Stats stats_ SCIERA_GUARDED_BY(mutex_);
};

}  // namespace sciera::dataplane
