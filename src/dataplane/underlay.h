// The IP-UDP "Layer 2.5" underlay (Sections 2, 4.3.1): SCION packets are
// encapsulated in IP-UDP so they can cross existing intra-AS IP networks
// and L2 circuits unchanged. The frame carries the serialized SCION bytes
// plus the underlay 5-tuple; wire size includes the encap overhead.
#pragma once

#include <cstdint>
#include <string>

#include "common/buffer.h"
#include "simnet/node.h"

namespace sciera::dataplane {

// IPv4 (20) + UDP (8) encapsulation overhead.
inline constexpr std::size_t kUnderlayOverhead = 28;
// The single fixed underlay port the legacy dispatcher listens on
// (Section 4.8); dispatcherless endpoints use ephemeral ports.
inline constexpr std::uint16_t kDispatcherPort = 30041;

struct UnderlayFrame final : simnet::Message {
  Bytes scion_bytes;           // serialized ScionPacket
  std::uint32_t src_ip = 0;    // intra-AS underlay addresses
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = kDispatcherPort;
  std::uint16_t dst_port = kDispatcherPort;

  [[nodiscard]] std::size_t wire_size() const override {
    return scion_bytes.size() + kUnderlayOverhead;
  }
  [[nodiscard]] std::string tag() const override { return "scion/udp"; }
};

}  // namespace sciera::dataplane
