#include "dataplane/packet.h"

#include <algorithm>

#include "common/strings.h"

namespace sciera::dataplane {

std::size_t ScionPath::segment_start(std::size_t seg) const {
  std::size_t start = 0;
  for (std::size_t i = 0; i < seg; ++i) start += seg_len[i];
  return start;
}

std::size_t ScionPath::segment_of(std::size_t hf) const {
  std::size_t acc = 0;
  for (std::size_t seg = 0; seg < info.size(); ++seg) {
    acc += seg_len[seg];
    if (hf < acc) return seg;
  }
  return info.empty() ? 0 : info.size() - 1;
}

bool ScionPath::at_segment_end() const {
  return curr_hf + std::size_t{1} ==
         segment_start(curr_inf) + seg_len[curr_inf];
}

void ScionPath::advance() {
  ++curr_hf;
  if (curr_inf + std::size_t{1} < info.size() &&
      curr_hf >= segment_start(curr_inf) + seg_len[curr_inf]) {
    ++curr_inf;
  }
}

ScionPath ScionPath::reversed() const {
  ScionPath rev;
  rev.info.assign(info.rbegin(), info.rend());
  for (auto& inf : rev.info) inf.construction_dir = !inf.construction_dir;
  for (std::size_t i = 0; i < info.size(); ++i) {
    rev.seg_len[i] = seg_len[info.size() - 1 - i];
  }
  rev.hops.assign(hops.rbegin(), hops.rend());
  rev.curr_inf = 0;
  rev.curr_hf = 0;
  // seg_id accumulators: for a segment that was traversed C=1 and ended
  // with seg_id beta_end, the reverse traversal (now C=0) starts from the
  // same accumulated value. The forwarding engine updates seg_id in the
  // packet as it travels, so the reversing endpoint simply keeps the
  // arrived-at seg_id values; ScionPacket-level reversal handles that by
  // copying the info fields as they arrived.
  return rev;
}

Status ScionPath::validate() const {
  if (info.empty() || info.size() > 3) {
    return Error{Errc::kParseError, "path must have 1..3 segments"};
  }
  std::size_t total = 0;
  for (std::size_t i = 0; i < info.size(); ++i) {
    if (seg_len[i] == 0) {
      return Error{Errc::kParseError, "empty segment in path"};
    }
    total += seg_len[i];
  }
  for (std::size_t i = info.size(); i < 3; ++i) {
    if (seg_len[i] != 0) {
      return Error{Errc::kParseError, "seg_len set for missing segment"};
    }
  }
  if (total != hops.size()) {
    return Error{Errc::kParseError, "seg_len sum != hop count"};
  }
  if (curr_inf >= info.size() || curr_hf > hops.size()) {
    return Error{Errc::kParseError, "path pointers out of range"};
  }
  return {};
}

void ScionPath::serialize(Writer& w) const {
  // PathMeta (4 bytes): currInf(2b) currHF(6b) rsv(6b) segLen0..2(6b each).
  std::uint32_t meta = 0;
  meta |= static_cast<std::uint32_t>(curr_inf & 0x3) << 30;
  meta |= static_cast<std::uint32_t>(curr_hf & 0x3F) << 24;
  meta |= static_cast<std::uint32_t>(seg_len[0] & 0x3F) << 12;
  meta |= static_cast<std::uint32_t>(seg_len[1] & 0x3F) << 6;
  meta |= static_cast<std::uint32_t>(seg_len[2] & 0x3F);
  w.u32(meta);
  for (const auto& inf : info) {
    std::uint8_t flags = 0;
    if (inf.construction_dir) flags |= 0x01;
    if (inf.peering) flags |= 0x02;
    w.u8(flags);
    w.u8(0);  // reserved
    w.u16(inf.seg_id);
    w.u32(inf.timestamp);
  }
  for (const auto& hop : hops) {
    w.u8(hop.peering ? 0x01 : 0x00);
    w.u8(hop.exp_time);
    w.u16(hop.cons_ingress);
    w.u16(hop.cons_egress);
    w.raw(BytesView{hop.mac.data(), hop.mac.size()});
  }
}

Result<ScionPath> ScionPath::parse(Reader& r) {
  ScionPath path;
  if (auto status = parse_into(r, path); !status.ok()) return status.error();
  return path;
}

Status ScionPath::parse_into(Reader& r, ScionPath& path) {
  path.info.clear();
  path.hops.clear();
  auto meta = r.u32();
  if (!meta) return meta.error();
  if (((*meta >> 18) & 0x3F) != 0) {
    return Error{Errc::kParseError, "reserved path-meta bits set"};
  }
  path.curr_inf = static_cast<std::uint8_t>((*meta >> 30) & 0x3);
  path.curr_hf = static_cast<std::uint8_t>((*meta >> 24) & 0x3F);
  path.seg_len[0] = static_cast<std::uint8_t>((*meta >> 12) & 0x3F);
  path.seg_len[1] = static_cast<std::uint8_t>((*meta >> 6) & 0x3F);
  path.seg_len[2] = static_cast<std::uint8_t>(*meta & 0x3F);
  std::size_t segments = 0;
  std::size_t total_hops = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    if (path.seg_len[i] == 0) break;
    ++segments;
    total_hops += path.seg_len[i];
  }
  if (segments == 0) return Error{Errc::kParseError, "path has no segments"};
  for (std::size_t i = 0; i < segments; ++i) {
    auto flags = r.u8();
    auto rsv = r.u8();
    auto seg_id = r.u16();
    auto ts = r.u32();
    if (!flags || !rsv || !seg_id || !ts) {
      return Error{Errc::kParseError, "truncated info field"};
    }
    // Strict parsing: unknown flag bits and reserved bytes must be zero,
    // so no byte of the header is outside either the MAC or the parser.
    if ((*flags & ~0x03) != 0 || *rsv != 0) {
      return Error{Errc::kParseError, "reserved info-field bits set"};
    }
    InfoField inf;
    inf.construction_dir = (*flags & 0x01) != 0;
    inf.peering = (*flags & 0x02) != 0;
    inf.seg_id = *seg_id;
    inf.timestamp = *ts;
    path.info.push_back(inf);
  }
  for (std::size_t i = 0; i < total_hops; ++i) {
    auto flags = r.u8();
    auto exp = r.u8();
    auto ing = r.u16();
    auto egr = r.u16();
    auto mac = r.raw_view(6);
    if (!flags || !exp || !ing || !egr || !mac) {
      return Error{Errc::kParseError, "truncated hop field"};
    }
    if ((*flags & ~0x01) != 0) {
      return Error{Errc::kParseError, "reserved hop-field bits set"};
    }
    HopField hop;
    hop.peering = (*flags & 0x01) != 0;
    hop.exp_time = *exp;
    hop.cons_ingress = *ing;
    hop.cons_egress = *egr;
    std::copy(mac->begin(), mac->end(), hop.mac.begin());
    path.hops.push_back(hop);
  }
  return path.validate();
}

std::string Address::to_string() const {
  return ia.to_string() + "," + strformat("%u.%u.%u.%u", (host >> 24) & 0xFF,
                                          (host >> 16) & 0xFF,
                                          (host >> 8) & 0xFF, host & 0xFF);
}

Result<Bytes> ScionPacket::serialize() const {
  Bytes out;
  if (auto status = serialize_into(out); !status.ok()) return status.error();
  return out;
}

Status ScionPacket::serialize_into(Bytes& out) const {
  if (path_type == PathType::kScion) {
    if (auto status = path.validate(); !status.ok()) return status;
  }
  Writer w{std::move(out)};
  // Common header (12 bytes): version(4b)|tc(8b)|flowid(20b), next_hdr,
  // hop_limit, path_type, payload_len, reserved.
  std::uint32_t vtf = (static_cast<std::uint32_t>(traffic_class) << 20) |
                      (flow_id & 0xFFFFF);
  w.u32(vtf);
  w.u8(next_hdr);
  w.u8(hop_limit);
  w.u8(static_cast<std::uint8_t>(path_type));
  w.u8(0);  // reserved
  w.u32(static_cast<std::uint32_t>(payload.size()));
  // Address header: dst IA, src IA, dst host, src host.
  w.u64(dst.ia.packed());
  w.u64(src.ia.packed());
  w.u32(dst.host);
  w.u32(src.host);
  if (path_type == PathType::kScion) path.serialize(w);
  w.raw(payload);
  out = std::move(w).take();
  return {};
}

Result<ScionPacket> ScionPacket::parse(BytesView bytes) {
  ScionPacket pkt;
  if (auto status = parse_into(bytes, pkt); !status.ok()) {
    return status.error();
  }
  return pkt;
}

Status ScionPacket::parse_into(BytesView bytes, ScionPacket& pkt) {
  Reader r{bytes};
  auto vtf = r.u32();
  auto next = r.u8();
  auto hop_limit = r.u8();
  auto ptype = r.u8();
  auto rsv = r.u8();
  auto payload_len = r.u32();
  if (!vtf || !next || !hop_limit || !ptype || !rsv || !payload_len) {
    return Error{Errc::kParseError, "truncated common header"};
  }
  if (*rsv != 0 || (*vtf >> 28) != 0) {
    return Error{Errc::kParseError, "reserved common-header bits set"};
  }
  pkt.traffic_class = static_cast<std::uint8_t>((*vtf >> 20) & 0xFF);
  pkt.flow_id = *vtf & 0xFFFFF;
  pkt.next_hdr = *next;
  pkt.hop_limit = *hop_limit;
  if (*ptype > static_cast<std::uint8_t>(PathType::kScion)) {
    return Error{Errc::kParseError, "unknown path type"};
  }
  pkt.path_type = static_cast<PathType>(*ptype);
  auto dst_ia = r.u64();
  auto src_ia = r.u64();
  auto dst_host = r.u32();
  auto src_host = r.u32();
  if (!dst_ia || !src_ia || !dst_host || !src_host) {
    return Error{Errc::kParseError, "truncated address header"};
  }
  pkt.dst = Address{IsdAs::from_packed(*dst_ia), *dst_host};
  pkt.src = Address{IsdAs::from_packed(*src_ia), *src_host};
  if (pkt.path_type == PathType::kScion) {
    if (auto status = ScionPath::parse_into(r, pkt.path); !status.ok()) {
      return status;
    }
  } else {
    // A reused scratch packet may carry a stale path; an empty-path
    // parse must leave the same state a freshly parsed packet would.
    pkt.path = ScionPath{};
  }
  auto payload = r.raw_view(*payload_len);
  if (!payload) return payload.error();
  pkt.payload.assign(payload->begin(), payload->end());
  if (r.remaining() != 0) {
    return Error{Errc::kParseError, "trailing bytes after payload"};
  }
  return {};
}

std::size_t ScionPacket::wire_size() const {
  std::size_t size = 12 + 24;  // common + address headers
  if (path_type == PathType::kScion) {
    size += 4 + path.info.size() * 8 + path.hops.size() * 12;
  }
  return size + payload.size();
}

Bytes UdpDatagram::serialize() const {
  Writer w;
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(static_cast<std::uint32_t>(data.size()));
  w.raw(data);
  return std::move(w).take();
}

Result<UdpDatagram> UdpDatagram::parse(BytesView bytes) {
  Reader r{bytes};
  auto src = r.u16();
  auto dst = r.u16();
  auto len = r.u32();
  if (!src || !dst || !len) return Error{Errc::kParseError, "short UDP header"};
  auto data = r.raw(*len);
  if (!data) return data.error();
  UdpDatagram dg;
  dg.src_port = *src;
  dg.dst_port = *dst;
  dg.data = std::move(data).value();
  return dg;
}

}  // namespace sciera::dataplane
