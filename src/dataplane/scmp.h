// SCMP — the SCION Control Message Protocol. The measurement campaign of
// Section 5.4 is built on SCMP echo ("SCMP pings in parallel over three
// SCION paths"); routers emit SCMP errors for data-plane failures such as
// an external interface being down.
#pragma once

#include <cstdint>

#include "common/buffer.h"
#include "common/result.h"
#include "dataplane/packet.h"

namespace sciera::dataplane {

enum class ScmpType : std::uint8_t {
  kDestinationUnreachable = 1,
  kPacketTooBig = 2,
  kHopLimitExceeded = 3,
  kParameterProblem = 4,
  kExternalInterfaceDown = 5,
  kInternalConnectivityDown = 6,
  kEchoRequest = 128,
  kEchoReply = 129,
};

struct ScmpMessage {
  ScmpType type = ScmpType::kEchoRequest;
  std::uint8_t code = 0;
  // Echo: identifier + sequence. Errors: ISD-AS + interface of the failure.
  std::uint16_t identifier = 0;
  std::uint16_t sequence = 0;
  std::uint64_t origin_ia = 0;
  std::uint64_t failed_iface = 0;
  Bytes data;  // echo payload / quoted packet prefix for errors

  [[nodiscard]] Bytes serialize() const;
  static Result<ScmpMessage> parse(BytesView bytes);

  [[nodiscard]] bool is_error() const {
    return static_cast<std::uint8_t>(type) < 128;
  }
};

// Convenience constructors.
[[nodiscard]] ScmpMessage make_echo_request(std::uint16_t id,
                                            std::uint16_t seq,
                                            Bytes payload = {});
[[nodiscard]] ScmpMessage make_echo_reply(const ScmpMessage& request);
[[nodiscard]] ScmpMessage make_external_iface_down(IsdAs origin,
                                                   IfaceId iface);
// Hop-limit expiry at `origin` — the basis of SCION traceroute here. The
// identifier/sequence of the expiring echo probe are echoed back so the
// prober can match responses.
[[nodiscard]] ScmpMessage make_hop_limit_exceeded(IsdAs origin,
                                                  std::uint16_t id,
                                                  std::uint16_t seq);

}  // namespace sciera::dataplane
