// SCION border router: parses arriving underlay frames, verifies the
// current hop field (MAC, expiry, ingress interface), advances the path
// pointers, and forwards out the egress interface — or delivers locally
// over the intra-AS IP underlay (Section 2, "data plane").
//
// One router instance models an AS's border (all interfaces); SCMP errors
// (e.g. external interface down) travel back to the source along the
// reversed path, exactly like echo replies do.
#pragma once

#include <array>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "dataplane/hopfield.h"
#include "dataplane/packet.h"
#include "dataplane/scmp.h"
#include "dataplane/underlay.h"
#include "obs/metrics.h"
#include "simnet/link.h"
#include "simnet/simulator.h"

namespace sciera::dataplane {

class BorderRouter final : public simnet::Node {
 public:
  struct Config {
    // Time to cross the intra-AS fabric to a local host.
    Duration intra_as_delay = 300 * kMicrosecond;
    // Offset mapping sim time 0 to a unix timestamp (for hop expiry).
    std::uint32_t unix_epoch = 1'700'000'000;
    // Whether to answer SCMP echo requests addressed to this AS directly
    // at the border (the usual responder for infrastructure pings).
    bool answer_scmp_echo = true;
    // Fast path: drain a link's same-tick frame batch as one staged pass
    // (parse all, then verify + forward in arrival order) over reused
    // scratch packets. Scalar mode (false) processes frame by frame,
    // parsing into a fresh packet each time — the referee the batched
    // equivalence suite compares digests against. Both orders schedule
    // identical events: parsing schedules nothing.
    bool batched = true;
    // MAC verification context knobs (cache size, bench baseline mode).
    HopVerifier::Config mac{};
    // Overload control (off by default — 0 disables a class's bucket):
    // bounded ingress admission with priority classes. Frames arriving
    // from the wire are classified (SCMP/control vs data) and each class
    // draws from its own token bucket, so a data flood cannot starve the
    // SCMP/control traffic the self-healing control plane needs to keep
    // converging. Admission drops are silent (no SCMP — an overloaded
    // router must not amplify). Local host injections are not admitted
    // here; the host stack polices those.
    struct Admission {
      double data_pps = 0;  // 0 = data class unlimited (legacy)
      double data_burst = 256;
      double control_pps = 0;  // 0 = control class unlimited (legacy)
      double control_burst = 64;
    };
    Admission admission{};
    // SCMP error generation rate limit, per offending source AS (token
    // bucket): a forged flood that trips MAC/link errors at line rate must
    // not amplify into an SCMP storm on the return path. 0 = unlimited.
    double scmp_rate_pps = 0;
    double scmp_burst = 8;
  };

  struct Stats {  // registry-backed snapshot
    std::uint64_t forwarded = 0;
    std::uint64_t delivered = 0;
    std::uint64_t injected = 0;
    std::uint64_t echo_replies = 0;
    std::uint64_t drop_mac = 0;
    std::uint64_t drop_expired = 0;
    std::uint64_t drop_bad_ingress = 0;
    std::uint64_t drop_no_route = 0;
    std::uint64_t drop_malformed = 0;
    std::uint64_t drop_offline = 0;
    std::uint64_t scmp_errors_sent = 0;
    std::uint64_t crashes = 0;
    std::uint64_t batches = 0;        // batched receive_batch invocations
    std::uint64_t batch_packets = 0;  // frames processed via the fast path
    std::uint64_t mac_cache_hits = 0;
    std::uint64_t mac_cache_misses = 0;
    std::uint64_t admission_dropped_data = 0;
    std::uint64_t admission_dropped_control = 0;
    std::uint64_t scmp_suppressed = 0;
  };

  BorderRouter(simnet::Simulator& sim, IsdAs ia, FwdKey fwd_key,
               Config config);
  BorderRouter(simnet::Simulator& sim, IsdAs ia, FwdKey fwd_key)
      : BorderRouter(sim, ia, fwd_key, Config{}) {}

  [[nodiscard]] IsdAs isd_as() const { return ia_; }
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const FwdKey& fwd_key() const { return verifier_.key(); }
  [[nodiscard]] const HopVerifier& verifier() const { return verifier_; }
  // Forwarding-key rollover: re-derives the cached verification context
  // (one key schedule) and invalidates every cached MAC.
  void rekey(const FwdKey& fwd_key) { verifier_.rekey(fwd_key); }

  // Wires a local interface id to one side of a link.
  void attach_iface(IfaceId iface, simnet::Link* link, int side);

  // Crash/restart (chaos fault model). A crashed router blackholes every
  // arriving frame and refuses host injections — silently, with no SCMP,
  // which is exactly what distinguishes a dead router from a dead link on
  // the wire. Restart brings forwarding back; any packet that transited
  // during the crash window is state lost with it.
  void crash();
  void restart() { online_ = true; }
  [[nodiscard]] bool online() const { return online_; }

  // Handler for packets addressed to hosts/services in this AS.
  using LocalDelivery =
      std::function<void(const ScionPacket& packet, SimTime arrival)>;
  void set_local_delivery(LocalDelivery delivery) {
    local_delivery_ = std::move(delivery);
  }

  // Entry point for packets originated by hosts in this AS. The router
  // processes the first hop (which names this AS) and forwards.
  Status inject(const ScionPacket& packet);

  // simnet::Node
  void receive(const simnet::MessagePtr& message,
               const simnet::Arrival& arrival) override;
  void receive_batch(std::span<const simnet::MessagePtr> batch,
                     const simnet::Arrival& arrival) override;

 private:
  struct IfaceBinding {
    simnet::Link* link = nullptr;
    int side = 0;
  };

  // Processes a packet in place (path pointers and seg_id accumulators
  // advance as it transits). The packet is consumed: forwarding
  // serializes it out, local delivery copies it into the handler.
  void process(ScionPacket& packet, IfaceId arrival_iface, bool from_local);
  // Verifies + chains the current hop. Returns the effective egress iface,
  // or an error describing the drop reason.
  Result<IfaceId> process_current_hop(ScionPacket& packet,
                                      IfaceId arrival_iface, bool from_local);
  void deliver_local(const ScionPacket& packet);
  void forward(const ScionPacket& packet, IfaceId egress);
  void send_scmp_error(const ScionPacket& offending, ScmpMessage error);
  void answer_echo(const ScionPacket& request);
  [[nodiscard]] std::uint32_t now_unix() const;

  struct TokenBucket {
    double tokens = 0;
    SimTime last = 0;
  };
  // Refills `bucket` to `now` and takes one token; false = out of budget.
  static bool take_token(TokenBucket& bucket, double pps, double burst,
                         SimTime now);
  // Class-aware ingress admission; counts the drop when it refuses.
  [[nodiscard]] bool admit(const ScionPacket& packet);
  // Per-offender SCMP error budget; false = this error must be suppressed.
  [[nodiscard]] bool scmp_budget_ok(IsdAs offender);

  // Registry cells, registered eagerly at construction under a per-router
  // instance label derived from the ISD-AS.
  struct Metrics {
    obs::Counter* forwarded = nullptr;
    obs::Counter* delivered = nullptr;
    obs::Counter* injected = nullptr;
    obs::Counter* echo_replies = nullptr;
    obs::Counter* drop_mac = nullptr;
    obs::Counter* drop_expired = nullptr;
    obs::Counter* drop_bad_ingress = nullptr;
    obs::Counter* drop_no_route = nullptr;
    obs::Counter* drop_malformed = nullptr;
    obs::Counter* drop_offline = nullptr;
    obs::Counter* scmp_errors_sent = nullptr;
    obs::Counter* crashes = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* batch_packets = nullptr;
    obs::Counter* mac_cache_hits = nullptr;
    obs::Counter* mac_cache_misses = nullptr;
    obs::Counter* admission_dropped_data = nullptr;
    obs::Counter* admission_dropped_control = nullptr;
    obs::Counter* scmp_suppressed = nullptr;
  };

  simnet::Simulator& sim_;
  IsdAs ia_;
  Config config_;
  HopVerifier verifier_;
  std::unordered_map<IfaceId, IfaceBinding> ifaces_;
  LocalDelivery local_delivery_;
  Metrics metrics_;
  bool online_ = true;
  // Reused batch scratch: one parsed packet per slot (grow-only, so a
  // steady-state batch parses with zero heap allocations) plus a parse
  // success flag per slot.
  std::vector<ScionPacket> batch_scratch_;
  std::vector<std::uint8_t> batch_ok_;
  // Per-class admission buckets (primed to their burst at construction).
  TokenBucket data_bucket_;
  TokenBucket control_bucket_;
  // Direct-mapped per-offender SCMP budgets: bounded, clock-free state. A
  // slot collision evicts the previous offender and resets its budget —
  // for a defense knob, bounded memory beats per-source exactness.
  struct ScmpSlot {
    std::uint64_t ia = 0;
    TokenBucket bucket;
    bool used = false;
  };
  std::array<ScmpSlot, 64> scmp_slots_{};
};

// Reverses a packet in place for the return direction (echo replies, SCMP
// errors): swaps addresses, reverses the path, resets the pointers. The
// info-field seg_id accumulators are kept as they arrived, which is
// exactly the state the reverse traversal needs.
[[nodiscard]] ScionPacket reverse_packet(const ScionPacket& packet);

}  // namespace sciera::dataplane
