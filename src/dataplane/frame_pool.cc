#include "dataplane/frame_pool.h"

#include <new>

#include "obs/metrics.h"

namespace sciera::dataplane {

FramePool& FramePool::global() {
  static FramePool pool;
  return pool;
}

FramePool::~FramePool() {
  sciera::MutexLock lock(mutex_);
  for (void* ptr : ctrl_free_) ::operator delete(ptr);
}

std::shared_ptr<UnderlayFrame> FramePool::acquire() {
  UnderlayFrame* frame = nullptr;
  {
    sciera::MutexLock lock(mutex_);
    ++stats_.acquired;
    ++stats_.outstanding;
    if (free_list_.empty()) {
      ++stats_.allocated;
    } else {
      ++stats_.reused;
      frame = free_list_.back().release();
      free_list_.pop_back();
      --stats_.pooled;
    }
  }
  // Allocate outside the lock: the allocator only runs on cold starts and
  // bursts, and there is no reason to serialize it.
  if (frame == nullptr) frame = new UnderlayFrame;
  // The deleter routes the frame back here instead of freeing it, and the
  // allocator recycles the shared_ptr control block through the pool. The
  // pool is a process-lifetime singleton (or outlives every frame in
  // tests), so capturing `this` is safe.
  return std::shared_ptr<UnderlayFrame>(
      frame, [this](UnderlayFrame* released) { release(released); },
      CtrlAlloc<UnderlayFrame>{this});
}

void* FramePool::alloc_ctrl(std::size_t size) {
  {
    sciera::MutexLock lock(mutex_);
    if (ctrl_size_ == 0) ctrl_size_ = size;
    if (size == ctrl_size_ && !ctrl_free_.empty()) {
      void* ptr = ctrl_free_.back();
      ctrl_free_.pop_back();
      ++stats_.ctrl_reused;
      return ptr;
    }
    ++stats_.ctrl_allocated;
  }
  return ::operator new(size);
}

void FramePool::free_ctrl(void* ptr, std::size_t size) {
  {
    sciera::MutexLock lock(mutex_);
    if (size == ctrl_size_ && ctrl_free_.size() < config_.max_pooled) {
      ctrl_free_.push_back(ptr);
      return;
    }
  }
  ::operator delete(ptr);
}

void FramePool::release(UnderlayFrame* frame) {
  {
    sciera::MutexLock lock(mutex_);
    --stats_.outstanding;
    if (free_list_.size() < config_.max_pooled) {
      // Scrub the frame for its next life, keeping the buffer's
      // allocation.
      frame->scion_bytes.clear();
      frame->src_ip = 0;
      frame->dst_ip = 0;
      frame->src_port = kDispatcherPort;
      frame->dst_port = kDispatcherPort;
      free_list_.emplace_back(frame);
      ++stats_.pooled;
      return;
    }
  }
  delete frame;
}

void FramePool::trim() {
  sciera::MutexLock lock(mutex_);
  stats_.pooled -= static_cast<std::int64_t>(free_list_.size());
  free_list_.clear();
  for (void* ptr : ctrl_free_) ::operator delete(ptr);
  ctrl_free_.clear();
}

void FramePool::publish_metrics() const {
  const Stats snapshot = stats();
  auto& registry = obs::MetricsRegistry::global();
  registry.gauge("sciera_frame_pool_acquired")
      .set(static_cast<std::int64_t>(snapshot.acquired));
  registry.gauge("sciera_frame_pool_allocated")
      .set(static_cast<std::int64_t>(snapshot.allocated));
  registry.gauge("sciera_frame_pool_reused")
      .set(static_cast<std::int64_t>(snapshot.reused));
  registry.gauge("sciera_frame_pool_outstanding").set(snapshot.outstanding);
  registry.gauge("sciera_frame_pool_pooled").set(snapshot.pooled);
  registry.gauge("sciera_frame_pool_ctrl_allocated")
      .set(static_cast<std::int64_t>(snapshot.ctrl_allocated));
  registry.gauge("sciera_frame_pool_ctrl_reused")
      .set(static_cast<std::int64_t>(snapshot.ctrl_reused));
}

}  // namespace sciera::dataplane
