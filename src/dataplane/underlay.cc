#include "dataplane/underlay.h"

// UnderlayFrame is header-only; this TU anchors its vtable.
