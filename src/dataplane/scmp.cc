#include "dataplane/scmp.h"

namespace sciera::dataplane {

Bytes ScmpMessage::serialize() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(code);
  w.u16(identifier);
  w.u16(sequence);
  w.u64(origin_ia);
  w.u64(failed_iface);
  w.u32(static_cast<std::uint32_t>(data.size()));
  w.raw(data);
  return std::move(w).take();
}

Result<ScmpMessage> ScmpMessage::parse(BytesView bytes) {
  Reader r{bytes};
  auto type = r.u8();
  auto code = r.u8();
  auto id = r.u16();
  auto seq = r.u16();
  auto origin = r.u64();
  auto iface = r.u64();
  auto len = r.u32();
  if (!type || !code || !id || !seq || !origin || !iface || !len) {
    return Error{Errc::kParseError, "truncated SCMP header"};
  }
  auto data = r.raw(*len);
  if (!data) return data.error();
  ScmpMessage msg;
  msg.type = static_cast<ScmpType>(*type);
  msg.code = *code;
  msg.identifier = *id;
  msg.sequence = *seq;
  msg.origin_ia = *origin;
  msg.failed_iface = *iface;
  msg.data = std::move(data).value();
  return msg;
}

ScmpMessage make_echo_request(std::uint16_t id, std::uint16_t seq,
                              Bytes payload) {
  ScmpMessage msg;
  msg.type = ScmpType::kEchoRequest;
  msg.identifier = id;
  msg.sequence = seq;
  msg.data = std::move(payload);
  return msg;
}

ScmpMessage make_echo_reply(const ScmpMessage& request) {
  ScmpMessage reply = request;
  reply.type = ScmpType::kEchoReply;
  return reply;
}

ScmpMessage make_hop_limit_exceeded(IsdAs origin, std::uint16_t id,
                                    std::uint16_t seq) {
  ScmpMessage msg;
  msg.type = ScmpType::kHopLimitExceeded;
  msg.origin_ia = origin.packed();
  msg.identifier = id;
  msg.sequence = seq;
  return msg;
}

ScmpMessage make_external_iface_down(IsdAs origin, IfaceId iface) {
  ScmpMessage msg;
  msg.type = ScmpType::kExternalInterfaceDown;
  msg.origin_ia = origin.packed();
  msg.failed_iface = iface;
  return msg;
}

}  // namespace sciera::dataplane
