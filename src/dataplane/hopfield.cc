#include "dataplane/hopfield.h"

#include <map>

#include "common/check.h"
#include "common/thread_annotations.h"
#include "crypto/hmac.h"

namespace sciera::dataplane {
namespace {

// One 16-byte input block, zero padded: beta | ts | exp | in | out.
std::array<std::uint8_t, 16> mac_input_block(std::uint16_t beta,
                                             std::uint32_t timestamp,
                                             const HopField& hop) {
  std::array<std::uint8_t, 16> block{};
  block[0] = static_cast<std::uint8_t>(beta >> 8);
  block[1] = static_cast<std::uint8_t>(beta);
  for (int i = 0; i < 4; ++i) {
    block[2 + i] = static_cast<std::uint8_t>(timestamp >> (24 - 8 * i));
  }
  block[6] = hop.exp_time;
  block[7] = static_cast<std::uint8_t>(hop.cons_ingress >> 8);
  block[8] = static_cast<std::uint8_t>(hop.cons_ingress);
  block[9] = static_cast<std::uint8_t>(hop.cons_egress >> 8);
  block[10] = static_cast<std::uint8_t>(hop.cons_egress);
  // The peering flag changes chaining semantics, so it must be covered.
  block[11] = hop.peering ? 1 : 0;
  return block;
}

Mac6 truncate_mac(const crypto::AesCmac::Mac& full) {
  Mac6 mac{};
  std::copy_n(full.begin(), mac.size(), mac.begin());
  return mac;
}

// FNV-1a over the input block — the cache index. Any fixed hash works;
// FNV keeps slot choice identical across runs and platforms.
std::size_t block_slot(const std::array<std::uint8_t, 16>& block,
                       std::size_t mask) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::uint8_t b : block) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(h) & mask;
}

// Per-key contexts backing the free-function entry points (beacon
// construction, tests). Ordered by key bytes for deterministic lifetime;
// bounded by clear-on-full — cardinality is one key per AS, far below
// the cap, so the clear is a safety valve, not a steady-state event.
crypto::AesCmac& context_for(const FwdKey& key) {
  sim_thread_role.assert_held();
  static std::map<FwdKey, crypto::AesCmac> contexts;
  constexpr std::size_t kMaxContexts = 1024;
  auto it = contexts.find(key);
  if (it == contexts.end()) {
    if (contexts.size() >= kMaxContexts) contexts.clear();
    // The fix: one key schedule per distinct key, where this previously
    // ran once per packet.
    it = contexts
             .emplace(key,
                      crypto::AesCmac{key})  // NOLINT(percall-keyschedule) fill-once per key, not per packet
             .first;
  }
  return it->second;
}

}  // namespace

FwdKey derive_fwd_key(BytesView as_master_secret) {
  const auto digest =
      crypto::derive_key(as_master_secret, "scion-forwarding-key-v1");
  FwdKey key{};
  SCIERA_CHECK(digest.size() >= key.size(), "dataplane.fwd_key_derivation");
  std::copy_n(digest.begin(), key.size(), key.begin());
  return key;
}

HopVerifier::HopVerifier(const FwdKey& key, Config config)
    : key_(key), config_(config), cmac_(key) {
  if (config_.cache_entries > 0) {
    SCIERA_CHECK((config_.cache_entries & (config_.cache_entries - 1)) == 0,
                 "dataplane.mac_cache_pow2");
    cache_.resize(config_.cache_entries);
  }
}

void HopVerifier::rekey(const FwdKey& key) {
  key_ = key;
  cmac_ = crypto::AesCmac{key};  // NOLINT(percall-keyschedule) one schedule per rollover
  for (CacheEntry& entry : cache_) entry.valid = false;
}

Mac6 HopVerifier::compute(std::uint16_t beta, std::uint32_t timestamp,
                          const HopField& hop) {
  const auto block = mac_input_block(beta, timestamp, hop);
  if (config_.per_packet_keyschedule) {
    // Measurable pre-fix baseline: redo the whole schedule per packet.
    const crypto::AesCmac cmac{key_};  // NOLINT(percall-keyschedule) bench baseline mode
    return truncate_mac(cmac.compute(block));
  }
  if (cache_.empty()) return truncate_mac(cmac_.compute(block));
  CacheEntry& entry = cache_[block_slot(block, cache_.size() - 1)];
  if (entry.valid && entry.block == block) {
    ++counters_.hits;
    if (hit_counter_ != nullptr) hit_counter_->inc();
    return entry.mac;
  }
  ++counters_.misses;
  if (miss_counter_ != nullptr) miss_counter_->inc();
  entry.block = block;
  entry.mac = truncate_mac(cmac_.compute(block));
  entry.valid = true;
  return entry.mac;
}

bool HopVerifier::verify(std::uint16_t beta, std::uint32_t timestamp,
                         const HopField& hop) {
  const Mac6 expected = compute(beta, timestamp, hop);
  const bool ok = crypto::constant_time_equal(
      BytesView{expected.data(), expected.size()},
      BytesView{hop.mac.data(), hop.mac.size()});
  // Adversary-driven, so non-fatal — but audited: campaigns compare this
  // counter against router drop stats to prove the MAC chain held.
  if (!ok) count_violation("dataplane.hop_mac_mismatch");
  return ok;
}

Mac6 compute_hop_mac(const FwdKey& key, std::uint16_t beta,
                     std::uint32_t timestamp, const HopField& hop) {
  return truncate_mac(
      context_for(key).compute(mac_input_block(beta, timestamp, hop)));
}

bool verify_hop_mac(const FwdKey& key, std::uint16_t beta,
                    std::uint32_t timestamp, const HopField& hop) {
  const Mac6 expected = compute_hop_mac(key, beta, timestamp, hop);
  const bool ok = crypto::constant_time_equal(
      BytesView{expected.data(), expected.size()},
      BytesView{hop.mac.data(), hop.mac.size()});
  if (!ok) count_violation("dataplane.hop_mac_mismatch");
  return ok;
}

std::uint16_t chain_beta(std::uint16_t beta, const Mac6& mac) {
  return beta ^ static_cast<std::uint16_t>((mac[0] << 8) | mac[1]);
}

bool hop_expired(const HopField& hop, std::uint32_t segment_ts,
                 std::uint32_t now_unix) {
  const std::uint32_t ttl =
      (static_cast<std::uint32_t>(hop.exp_time) + 1) * 86400 / 256;
  return now_unix > segment_ts + ttl;
}

}  // namespace sciera::dataplane
