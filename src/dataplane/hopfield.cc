#include "dataplane/hopfield.h"

#include "common/check.h"
#include "crypto/hmac.h"

namespace sciera::dataplane {

FwdKey derive_fwd_key(BytesView as_master_secret) {
  const auto digest =
      crypto::derive_key(as_master_secret, "scion-forwarding-key-v1");
  FwdKey key{};
  SCIERA_CHECK(digest.size() >= key.size(), "dataplane.fwd_key_derivation");
  std::copy_n(digest.begin(), key.size(), key.begin());
  return key;
}

Mac6 compute_hop_mac(const FwdKey& key, std::uint16_t beta,
                     std::uint32_t timestamp, const HopField& hop) {
  // One 16-byte input block, zero padded: beta | ts | exp | in | out.
  std::array<std::uint8_t, 16> block{};
  block[0] = static_cast<std::uint8_t>(beta >> 8);
  block[1] = static_cast<std::uint8_t>(beta);
  for (int i = 0; i < 4; ++i) {
    block[2 + i] = static_cast<std::uint8_t>(timestamp >> (24 - 8 * i));
  }
  block[6] = hop.exp_time;
  block[7] = static_cast<std::uint8_t>(hop.cons_ingress >> 8);
  block[8] = static_cast<std::uint8_t>(hop.cons_ingress);
  block[9] = static_cast<std::uint8_t>(hop.cons_egress >> 8);
  block[10] = static_cast<std::uint8_t>(hop.cons_egress);
  // The peering flag changes chaining semantics, so it must be covered.
  block[11] = hop.peering ? 1 : 0;
  const crypto::AesCmac cmac{key};
  const auto full = cmac.compute(block);
  Mac6 mac{};
  std::copy_n(full.begin(), mac.size(), mac.begin());
  return mac;
}

bool verify_hop_mac(const FwdKey& key, std::uint16_t beta,
                    std::uint32_t timestamp, const HopField& hop) {
  const Mac6 expected = compute_hop_mac(key, beta, timestamp, hop);
  const bool ok = crypto::constant_time_equal(
      BytesView{expected.data(), expected.size()},
      BytesView{hop.mac.data(), hop.mac.size()});
  // Adversary-driven, so non-fatal — but audited: campaigns compare this
  // counter against router drop stats to prove the MAC chain held.
  if (!ok) count_violation("dataplane.hop_mac_mismatch");
  return ok;
}

std::uint16_t chain_beta(std::uint16_t beta, const Mac6& mac) {
  return beta ^ static_cast<std::uint16_t>((mac[0] << 8) | mac[1]);
}

bool hop_expired(const HopField& hop, std::uint32_t segment_ts,
                 std::uint32_t now_unix) {
  const std::uint32_t ttl =
      (static_cast<std::uint32_t>(hop.exp_time) + 1) * 86400 / 256;
  return now_unix > segment_ts + ttl;
}

}  // namespace sciera::dataplane
